package cosmos

// Benchmark harness: one testing.B benchmark per paper table and figure
// (BenchmarkFig02..BenchmarkFig17, BenchmarkTab1..Tab4) plus
// micro-benchmarks of the core structures. The figure benches run the same
// code paths as `cosmos-bench -exp <id>` at a reduced scale so they finish
// in benchmark time; run `go run ./cmd/cosmos-bench -exp all -scale 1` for
// the full-scale reproduction recorded in EXPERIMENTS.md.

import (
	"testing"

	"cosmos/internal/cache"
	"cosmos/internal/core"
	"cosmos/internal/ctr"
	"cosmos/internal/enclave"
	"cosmos/internal/experiments"
	"cosmos/internal/memsys"
	"cosmos/internal/rl"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	lab := experiments.NewLab(experiments.SmallScale())
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Run(lab)
		if err != nil {
			b.Fatal(err)
		}
		if t.String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig02(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig03(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig04(b *testing.B) { benchExperiment(b, "fig4") }
func BenchmarkFig05(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkTab1(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkFig08(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkFig09(b *testing.B) { benchExperiment(b, "fig9") }
func BenchmarkTab2(b *testing.B)  { benchExperiment(b, "tab2") }
func BenchmarkTab3(b *testing.B)  { benchExperiment(b, "tab3") }
func BenchmarkTab4(b *testing.B)  { benchExperiment(b, "tab4") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// --- micro-benchmarks: core structures ---

func BenchmarkCacheAccessLRU(b *testing.B) {
	c := cache.New("bench", 512<<10, 16, cache.NewLRU())
	state := uint64(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		c.Access(state%100000, state&1 == 0, uint16(state>>8))
	}
}

func BenchmarkCacheAccessLCR(b *testing.B) {
	lcr := cache.NewLCR()
	c := cache.New("bench", 128<<10, 16, lcr)
	state := uint64(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		r := c.Access(state%100000, false, 0)
		lcr.SetHint(r.Set, r.Way, state&2 == 0, uint8(state))
	}
}

func BenchmarkQTableUpdate(b *testing.B) {
	t := rl.NewQTable(16384, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := i & 16383
		t.Update(s, i&1, 10, t.MaxQ(s), 0.09, 0.88)
	}
}

func BenchmarkHashState(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		sink += rl.HashState(uint64(i)*64, 16384)
	}
	_ = sink
}

func BenchmarkCETObserve(b *testing.B) {
	lp := core.NewLocalityPredictor(core.DefaultParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lp.Observe(uint64(i) % 100000)
	}
}

func BenchmarkDataPredict(b *testing.B) {
	dp := core.NewDataPredictor(core.DefaultParams())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := dp.Predict(uint64(i) * 64)
		dp.Learn(p, i&1 == 0)
	}
}

func BenchmarkMorphCtrIncrement(b *testing.B) {
	st := ctr.NewStore(ctr.Morph())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Increment(uint64(i) % 4096)
	}
}

func BenchmarkEnclaveWriteRead(b *testing.B) {
	m, err := enclave.New(1<<20, []byte("0123456789abcdef"), ctr.Morph())
	if err != nil {
		b.Fatal(err)
	}
	var line enclave.Line
	copy(line[:], "benchmark payload")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := memsys.Addr(uint64(i) % (1 << 14) * 64)
		if err := m.Write(addr, line); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Read(addr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimStepCosmos(b *testing.B) {
	cfg := sim.DefaultConfig()
	cfg.MC.MemBytes = 1 << 30
	s := sim.New(cfg, secmem.DesignCosmos())
	gen := trace.NewUniform(memsys.Region{Base: 1 << 28, Size: 256 << 20, Elem: 1}, 20, 3, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _ := gen.Next()
		s.Step(a)
	}
}

// BenchmarkSimStepTelemetryDisabled is the regression guard for the
// telemetry fast path: with no sampler, tracer or histogram attached, Step
// must not allocate. The system is warmed first so lazily-materialised
// state (counter blocks, DRAM rows) does not pollute the measurement.
func BenchmarkSimStepTelemetryDisabled(b *testing.B) {
	s, gen := warmedSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _ := gen.Next()
		s.Step(a)
	}
}

// BenchmarkStep is the CI smoke benchmark of the hot loop (see
// .github/workflows/ci.yml): one sub-benchmark per representative design,
// so a regression in the Level-chain walk or the fetch-path composition
// shows up against the recorded baselines.
func BenchmarkStep(b *testing.B) {
	for _, d := range []secmem.Design{
		secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignCosmos(),
	} {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			cfg := sim.DefaultConfig()
			cfg.MC.MemBytes = 1 << 30
			s := sim.New(cfg, d)
			gen := trace.NewUniform(memsys.Region{Base: 1 << 28, Size: 256 << 20, Elem: 1}, 20, 3, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a, _ := gen.Next()
				s.Step(a)
			}
		})
	}
}

// TestStepZeroAllocsTelemetryDisabled pins the same property as a hard
// assertion so `go test` (not just benchmark eyeballing) fails on a
// regression.
func TestStepZeroAllocsTelemetryDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement needs the full warmup")
	}
	s, gen := warmedSystem()
	const stepsPerRun = 100
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < stepsPerRun; i++ {
			a, _ := gen.Next()
			s.Step(a)
		}
	})
	if avg > 0 {
		t.Errorf("disabled-telemetry Step allocates: %.3f allocs per %d steps, want 0", avg, stepsPerRun)
	}
}

// TestStepZeroAllocsAcrossDesigns extends the zero-alloc guard over the
// non-COSMOS paths: the baseline walk (NP), the serialised secure path
// (MorphCtr) and the always-early counter path (EMCC) must not allocate
// either — the Request/Response/fetchPath plumbing is all value-typed.
// The systems run with no span recorder attached (the default), so this is
// also the spans-disabled contract: every span site must stay behind a nil
// check and cost zero allocations when tracing is off.
func TestStepZeroAllocsAcrossDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement needs the full warmup")
	}
	for _, d := range []secmem.Design{
		secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignEMCC(),
	} {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			s, gen := warmedSystemFor(d, 400_000)
			const stepsPerRun = 100
			avg := testing.AllocsPerRun(100, func() {
				for i := 0; i < stepsPerRun; i++ {
					a, _ := gen.Next()
					s.Step(a)
				}
			})
			if avg > 0 {
				t.Errorf("%s Step allocates: %.3f allocs per %d steps, want 0", d.Name, avg, stepsPerRun)
			}
		})
	}
}

// warmedSystem builds a COSMOS system and drives it to a steady state where
// every counter block of the (small) region has materialised.
func warmedSystem() (*sim.System, trace.Generator) {
	return warmedSystemFor(secmem.DesignCosmos(), 400_000)
}

// warmedSystemFor is warmedSystem for an arbitrary design point.
func warmedSystemFor(d secmem.Design, steps int) (*sim.System, trace.Generator) {
	cfg := sim.DefaultConfig()
	cfg.MC.MemBytes = 1 << 30
	s := sim.New(cfg, d)
	gen := trace.NewUniform(memsys.Region{Base: 0, Size: 32 << 20, Elem: 1}, 20, 3, 1)
	for i := 0; i < steps; i++ {
		a, _ := gen.Next()
		s.Step(a)
	}
	return s, gen
}

func BenchmarkWorkloadGenDFS(b *testing.B) {
	gen, err := workloads.Build("DFS", workloads.Options{Threads: 4, GraphNodes: 100_000, GraphDegree: 6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer trace.CloseIfCloser(gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := gen.Next(); !ok {
			b.StopTimer()
			gen, _ = workloads.Build("DFS", workloads.Options{Threads: 4, GraphNodes: 100_000, GraphDegree: 6, Seed: 1})
			b.StartTimer()
		}
	}
}
