// Securekv: a tiny key-value store whose backing pages live in the
// functional secure memory — every value is AES-CTR encrypted, MAC'd and
// Merkle-protected for real. The demo then plays the attacker: it tampers
// with DRAM and mounts a full replay attack, and shows both being caught.
package main

import (
	"fmt"
	"log"

	"cosmos"

	"cosmos/internal/memsys"
)

// kv is a fixed-slot store: key → line index (toy directory kept in
// trusted memory; values live encrypted off-chip).
type kv struct {
	mem  *cosmos.SecureMemory
	dir  map[string]memsys.Addr
	next memsys.Addr
}

func newKV(mem *cosmos.SecureMemory) *kv {
	return &kv{mem: mem, dir: make(map[string]memsys.Addr)}
}

func (s *kv) Put(key, value string) error {
	addr, ok := s.dir[key]
	if !ok {
		addr = s.next
		s.next += 64
		s.dir[key] = addr
	}
	var line cosmos.Line
	copy(line[:], value)
	return s.mem.Write(addr, line)
}

func (s *kv) Get(key string) (string, error) {
	addr, ok := s.dir[key]
	if !ok {
		return "", fmt.Errorf("no such key %q", key)
	}
	line, err := s.mem.Read(addr)
	if err != nil {
		return "", err
	}
	n := 0
	for n < len(line) && line[n] != 0 {
		n++
	}
	return string(line[:n]), nil
}

func main() {
	log.SetFlags(0)
	mem, err := cosmos.NewSecureMemory(1<<20, []byte("0123456789abcdef"))
	if err != nil {
		log.Fatal(err)
	}
	store := newKV(mem)

	fmt.Println("== secure KV store over AES-CTR + MAC + Merkle tree ==")
	store.Put("alice", "balance=100")
	store.Put("bob", "balance=250")
	v, _ := store.Get("alice")
	fmt.Printf("get alice        -> %q\n", v)
	root := mem.Root()
	fmt.Printf("merkle root      -> %x...\n", root[:8])

	// Attack 1: flip a ciphertext bit in DRAM.
	addr := store.dir["alice"]
	mem.TamperCiphertext(addr, func(l *cosmos.Line) { l[3] ^= 0x80 })
	if _, err := store.Get("alice"); err != nil {
		fmt.Printf("bit-flip attack  -> detected: %v\n", err)
	} else {
		log.Fatal("bit-flip attack went UNDETECTED")
	}
	store.Put("alice", "balance=100") // restore

	// Attack 2: full replay. Snapshot alice's rich state, spend the
	// balance, then roll ciphertext+MAC+counters+tree leaf back.
	ct, mac, _ := mem.Snapshot(addr)
	blockState, _ := mem.SnapshotBlock(addr)
	store.Put("alice", "balance=0")
	v, _ = store.Get("alice")
	fmt.Printf("after spend      -> %q\n", v)

	if err := mem.Replay(addr, ct, mac, blockState); err != nil {
		log.Fatal(err)
	}
	if _, err := store.Get("alice"); err != nil {
		fmt.Printf("replay attack    -> detected: %v\n", err)
	} else {
		log.Fatal("replay attack went UNDETECTED")
	}

	// Counter hygiene: rewrite a value many times to force MorphCtr
	// overflow and background re-encryption, then verify integrity holds.
	for i := 0; i < 200; i++ {
		store.Put("bob", fmt.Sprintf("balance=%d", i))
	}
	v, err = store.Get("bob")
	if err != nil {
		log.Fatalf("post-re-encryption read failed: %v", err)
	}
	fmt.Printf("after 200 writes -> %q (re-encryptions: %d)\n", v, mem.Stats.ReEncryptions)
}
