// Mlserve: the §6.3 robustness scenario — regular ML inference workloads on
// secure memory. Runs each model under MorphCtr and COSMOS and verifies
// COSMOS does not regress on the regular-access class it was never tuned
// for, printing the re-encryption pressure that dominates these workloads.
package main

import (
	"flag"
	"fmt"
	"log"

	"cosmos"
)

func main() {
	log.SetFlags(0)
	accesses := flag.Uint64("accesses", 600_000, "accesses per run")
	flag.Parse()

	models := []string{"MLP", "AlexNet", "ResNet", "VGG", "BERT", "Transformer", "DLRM"}
	fmt.Printf("%-12s %10s %10s %8s %14s\n", "model", "MorphCtr", "COSMOS", "gain", "ctr-miss(COS)")
	for _, m := range models {
		np, err := cosmos.Run(cosmos.RunSpec{Workload: m, Design: "NP", Accesses: *accesses})
		if err != nil {
			log.Fatal(err)
		}
		base, err := cosmos.Run(cosmos.RunSpec{Workload: m, Design: "MorphCtr", Accesses: *accesses})
		if err != nil {
			log.Fatal(err)
		}
		cos, err := cosmos.Run(cosmos.RunSpec{Workload: m, Design: "COSMOS", Accesses: *accesses})
		if err != nil {
			log.Fatal(err)
		}
		pb := float64(np.Cycles) / float64(base.Cycles)
		pc := float64(np.Cycles) / float64(cos.Cycles)
		fmt.Printf("%-12s %10.3f %10.3f %+7.1f%% %13.1f%%\n",
			m, pb, pc, 100*(pc/pb-1), 100*cos.CtrMissRate)
	}
	fmt.Println("\n(values are performance normalised to a non-protected system)")
}
