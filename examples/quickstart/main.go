// Quickstart: simulate one graph workload under the MorphCtr baseline and
// full COSMOS, and print the headline comparison — the 60-second tour of
// the library.
package main

import (
	"fmt"
	"log"

	"cosmos"
)

func main() {
	log.SetFlags(0)

	const workload = "DFS"
	fmt.Printf("Running %s under MorphCtr and COSMOS (1M accesses each)...\n\n", workload)

	spec := cosmos.RunSpec{Workload: workload, Accesses: 1_000_000}

	spec.Design = "MorphCtr"
	base, err := cosmos.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	spec.Design = "COSMOS"
	cos, err := cosmos.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %12s %12s\n", "metric", "MorphCtr", "COSMOS")
	fmt.Printf("%-22s %12.3f %12.3f\n", "IPC", base.IPC, cos.IPC)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "CTR cache miss rate", 100*base.CtrMissRate, 100*cos.CtrMissRate)
	fmt.Printf("%-22s %12d %12d\n", "MT node reads", base.Traffic.MTRead, cos.Traffic.MTRead)
	fmt.Printf("%-22s %12.1f %12.1f\n", "SMAT (cycles)", base.SMAT, cos.SMAT)
	if cos.DataPred != nil {
		fmt.Printf("%-22s %12s %11.1f%%\n", "data pred accuracy", "-", 100*cos.DataPred.Accuracy())
	}
	fmt.Printf("\nCOSMOS speedup over MorphCtr: %.2fx\n",
		float64(base.Cycles)/float64(cos.Cycles))
	fmt.Printf("(walk bypasses: %d of %d off-chip reads)\n", cos.Bypassed, cos.OffChipReads)
}
