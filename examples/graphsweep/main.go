// Graphsweep: the workload study from the paper's introduction — run every
// graph algorithm under every design point and print the performance matrix
// normalised to a non-protected system, reproducing the Fig 10 view through
// the public API.
package main

import (
	"flag"
	"fmt"
	"log"

	"cosmos"
)

func main() {
	log.SetFlags(0)
	accesses := flag.Uint64("accesses", 500_000, "accesses per run")
	nodes := flag.Int("nodes", 500_000, "graph vertices")
	flag.Parse()

	algos := []string{"DFS", "BFS", "GC", "PR", "TC", "CC", "SP", "DC"}
	designs := []string{"MorphCtr", "COSMOS-DP", "COSMOS-CP", "COSMOS"}

	fmt.Printf("%-6s", "algo")
	for _, d := range designs {
		fmt.Printf(" %10s", d)
	}
	fmt.Println("   (performance normalised to NP; higher is better)")

	for _, w := range algos {
		np, err := cosmos.Run(cosmos.RunSpec{
			Workload: w, Design: "NP", Accesses: *accesses, GraphNodes: *nodes,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s", w)
		for _, d := range designs {
			r, err := cosmos.Run(cosmos.RunSpec{
				Workload: w, Design: d, Accesses: *accesses, GraphNodes: *nodes,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %10.3f", float64(np.Cycles)/float64(r.Cycles))
		}
		fmt.Println()
	}
}
