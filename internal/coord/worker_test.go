package coord

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"cosmos/internal/runner"
)

func serveCoordinator(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	c.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func newTestWorker(t *testing.T, addr, name string, mut func(*WorkerConfig)) *Worker {
	t.Helper()
	cfg := WorkerConfig{
		Addr:            addr,
		Name:            name,
		Concurrency:     2,
		PollInterval:    10 * time.Millisecond,
		ReconnectBudget: 2 * time.Second,
		Orchestrator:    runner.New(runner.Options{Workers: 2}),
	}
	if mut != nil {
		mut(&cfg)
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestWorkerExecutesCampaign: the real end-to-end loop over HTTP — the
// worker simulates leased cells and the coordinator's Execute returns
// results identical to a local run of the same spec.
func TestWorkerExecutesCampaign(t *testing.T) {
	c, st := newTestCoordinator(t, nil)
	srv := serveCoordinator(t, c)
	w := newTestWorker(t, srv.URL, "w1", nil)

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(wctx) }()

	specs := []runner.Spec{testSpec(10), testSpec(11), testSpec(12)}
	for _, sp := range specs {
		r, err := c.Execute(context.Background(), sp.Key(), sp.DisplayLabel(), sp, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Cross-check against a plain local simulation.
		local, err := runner.New(runner.Options{Workers: 1}).Run(context.Background(), sp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r, local) {
			t.Fatalf("distributed result diverges from local for %s", sp.DisplayLabel())
		}
		if _, ok := st.Get(context.Background(), sp.Key()); !ok {
			t.Fatalf("completed cell %s not in store", sp.Key())
		}
	}
	if ready, _ := w.Ready(); !ready {
		t.Fatal("worker never became ready")
	}

	// Campaign over: the worker drains out on the 410.
	c.Close()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("worker exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not drain after coordinator close")
	}
	executed, uploaded, _, _, _ := w.Stats()
	if executed != 3 || uploaded != 3 {
		t.Fatalf("worker stats: executed=%d uploaded=%d, want 3/3", executed, uploaded)
	}
}

// TestWorkerDrainOnCancel: SIGTERM (context cancel) ends Run with nil — a
// graceful drain, not an error.
func TestWorkerDrainOnCancel(t *testing.T) {
	c, _ := newTestCoordinator(t, nil)
	srv := serveCoordinator(t, c)
	w := newTestWorker(t, srv.URL, "w1", nil)

	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(ctx) }()

	// Let it poll a few times, then drain.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("drain returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not drain on cancel")
	}
}

// TestWorkerLostCoordinator: a coordinator that never answers exhausts the
// reconnect budget and Run fails with ErrLostCoordinator.
func TestWorkerLostCoordinator(t *testing.T) {
	// A listener that is immediately closed: every dial fails fast.
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := srv.URL
	srv.Close()

	w := newTestWorker(t, addr, "w1", func(cfg *WorkerConfig) {
		cfg.ReconnectBudget = 300 * time.Millisecond
	})
	err := w.Run(context.Background())
	if !errors.Is(err, ErrLostCoordinator) {
		t.Fatalf("err = %v, want ErrLostCoordinator", err)
	}
}

// TestWorkerReleasesOnDrain: cancelling mid-execution hands the lease back
// so the cell re-queues immediately instead of waiting out the TTL.
func TestWorkerReleasesOnDrain(t *testing.T) {
	clock := newFakeClock()
	c, _ := newTestCoordinator(t, clock)
	srv := serveCoordinator(t, c)
	// A long cell, so cancel lands mid-simulation.
	spec := testSpec(13)
	spec.Accesses = 5_000_000

	w := newTestWorker(t, srv.URL, "w1", nil)
	ctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(ctx) }()

	execCtx, execCancel := context.WithCancel(context.Background())
	defer execCancel()
	go c.Execute(execCtx, spec.Key(), "long", spec, nil)

	// Wait until the cell is actually leased, then drain the worker.
	waitFor(t, func() bool { return c.Status().Leased == 1 })
	cancel()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
	// The lease came back without any clock advance (no TTL expiry).
	waitFor(t, func() bool {
		s := c.Status()
		return s.Pending == 1 && s.Leased == 0
	})
	if s := c.Status(); s.Released != 1 || s.Expired != 0 {
		t.Fatalf("status = %+v, want 1 release and no expiries", s)
	}
}
