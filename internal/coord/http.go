package coord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"cosmos/internal/runner"
	"cosmos/internal/sim"
)

// Wire protocol, mounted on the coordinator's observability plane:
//
//	POST /coord/lease      {worker}                    → 200 leaseResponse
//	                                                     204 nothing pending (poll again)
//	                                                     410 campaign over (drain and exit)
//	                                                     503 journal not replayed yet
//	POST /coord/heartbeat  {worker,key,lease}          → 200 | 410 lease lost
//	POST /coord/result     {worker,key,lease,spec,
//	                        results,err}               → 200 resultResponse{dup}
//	POST /coord/release    {worker,leases:[{key,lease}]} → 200
//	GET  /coord/status                                 → 200 Status
//
// Everything is plain JSON over the stdlib HTTP stack — the fabric rides
// the same listener as /metrics and /runs, so one address serves both
// humans and workers.

type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseResponse struct {
	Key   string      `json:"key"`
	Label string      `json:"label,omitempty"`
	Spec  runner.Spec `json:"spec"`
	Lease uint64      `json:"lease"`
	TTLMS int64       `json:"ttl_ms"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	Key    string `json:"key"`
	Lease  uint64 `json:"lease"`
}

type resultRequest struct {
	Worker  string      `json:"worker"`
	Key     string      `json:"key"`
	Lease   uint64      `json:"lease"`
	Spec    runner.Spec `json:"spec"`
	Results sim.Results `json:"results"`
	Err     string      `json:"err,omitempty"`
}

type resultResponse struct {
	Dup bool `json:"dup"`
}

type heldLease struct {
	Key   string `json:"key"`
	Lease uint64 `json:"lease"`
}

type releaseRequest struct {
	Worker string      `json:"worker"`
	Leases []heldLease `json:"leases"`
}

// Mount registers the fabric endpoints on mux (pass this as obs
// Config.Attach so the routes share the campaign's observability plane).
func (c *Coordinator) Mount(mux *http.ServeMux) {
	mux.HandleFunc("/coord/lease", c.handleLease)
	mux.HandleFunc("/coord/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/coord/result", c.handleResult)
	mux.HandleFunc("/coord/release", c.handleRelease)
	mux.HandleFunc("/coord/status", c.handleStatus)
}

func decode[T any](w http.ResponseWriter, r *http.Request) (T, bool) {
	var req T
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return req, false
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return req, false
	}
	return req, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[leaseRequest](w, r)
	if !ok {
		return
	}
	if ready, reason := c.Ready(); !ready {
		select {
		case <-c.closed:
			http.Error(w, "campaign over", http.StatusGone)
		default:
			http.Error(w, reason, http.StatusServiceUnavailable)
		}
		return
	}
	g, granted, err := c.Lease(req.Worker)
	if err != nil {
		http.Error(w, "campaign over", http.StatusGone)
		return
	}
	if !granted {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, leaseResponse{
		Key:   g.Key,
		Label: g.Label,
		Spec:  g.Spec,
		Lease: g.Lease,
		TTLMS: int64(g.TTL / time.Millisecond),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[heartbeatRequest](w, r)
	if !ok {
		return
	}
	if !c.Heartbeat(req.Worker, req.Key, req.Lease) {
		http.Error(w, "lease lost", http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[resultRequest](w, r)
	if !ok {
		return
	}
	dup, err := c.Complete(req.Worker, req.Key, req.Lease, req.Spec, req.Results, req.Err)
	if err != nil {
		// Persistence failed: the worker must retry so the result is not
		// lost — 500 keeps it in the upload loop.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, resultResponse{Dup: dup})
}

func (c *Coordinator) handleRelease(w http.ResponseWriter, r *http.Request) {
	req, ok := decode[releaseRequest](w, r)
	if !ok {
		return
	}
	for _, h := range req.Leases {
		c.Release(req.Worker, h.Key, h.Lease)
	}
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.Status())
}
