package coord

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosmos/internal/experiments"
	"cosmos/internal/runner"
	"cosmos/internal/secmem"
	"cosmos/internal/workloads"
)

// TestChaosCampaign is the crown proof of the fabric: a Fig-2 campaign runs
// distributed across three in-process workers while the harness
//
//   - SIGKILLs one worker mid-cell (its transport dies, so even the
//     goodbye release is lost and the lease must expire),
//   - drops and duplicates result uploads on the survivors' transports,
//   - crashes the coordinator mid-campaign and restarts it over the same
//     results dir and journal,
//
// and then asserts the campaign behaved as if nothing happened: the final
// table is byte-identical to a clean single-node run, and the store/journal
// cross-check shows every cell recorded exactly once.
func TestChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign runs real simulations")
	}
	scale := experiments.Scaled(0) // smoke scale: ~50-150ms per cell

	// ── Reference: the same experiment, single node, no fabric at all. ──
	refLab := experiments.NewLab(scale, experiments.WithWorkers(2))
	fig2, err := experiments.ByID("fig2")
	if err != nil {
		t.Fatal(err)
	}
	refTable, err := fig2.Run(refLab)
	if err != nil {
		t.Fatal(err)
	}
	reference := refTable.CSV()

	// The exact cell matrix Fig 2 renders (graph workloads × NP/Morph at
	// the characterization CTR-cache size), so the fabric can be flooded
	// up front instead of one serial cell at a time.
	specs := fig2Specs(scale)

	// ── The distributed run, with chaos. ──
	dir := t.TempDir()
	store, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	const ttl = 500 * time.Millisecond
	coordA, err := New(Config{Store: store, TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	if err := coordA.Recover(); err != nil {
		t.Fatal(err)
	}
	muxA := http.NewServeMux()
	coordA.Mount(muxA)
	srvA := httptest.NewServer(muxA)

	// Every worker dials through a host-rewriting transport, so the
	// coordinator can "move" (crash + restart on a new port) under them.
	victimT := newChaosTransport(srvA.URL)
	flaky2 := newChaosTransport(srvA.URL)
	flaky3 := newChaosTransport(srvA.URL)
	flaky2.flaky.Store(true)
	flaky3.flaky.Store(true)

	newWorker := func(name string, tr *chaosTransport) *Worker {
		w, err := NewWorker(WorkerConfig{
			// Addr is a placeholder: the transport rewrites the host.
			Addr:            srvA.URL,
			Name:            name,
			Concurrency:     1,
			Client:          &http.Client{Transport: tr, Timeout: 10 * time.Second},
			PollInterval:    20 * time.Millisecond,
			ReconnectBudget: 30 * time.Second,
			Orchestrator:    runner.New(runner.Options{Workers: 1}),
		})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	victim := newWorker("w-victim", victimT)
	surv2 := newWorker("w-surv2", flaky2)
	surv3 := newWorker("w-surv3", flaky3)

	victimCtx, killVictim := context.WithCancel(context.Background())
	survCtx, drainSurvivors := context.WithCancel(context.Background())
	var fleet sync.WaitGroup
	workerErrs := make(map[string]error)
	var workerMu sync.Mutex
	runWorker := func(name string, w *Worker, ctx context.Context) {
		fleet.Add(1)
		go func() {
			defer fleet.Done()
			err := w.Run(ctx)
			workerMu.Lock()
			workerErrs[name] = err
			workerMu.Unlock()
		}()
	}
	runWorker("victim", victim, victimCtx)
	runWorker("surv2", surv2, survCtx)
	runWorker("surv3", surv3, survCtx)

	// Campaign phase A: flood the fabric through a lab whose orchestrator
	// delegates to coordinator A.
	ctxA, cancelA := context.WithCancel(context.Background())
	labA := experiments.NewLab(scale,
		experiments.WithContext(ctxA), experiments.WithWorkers(4), experiments.WithStore(store))
	labA.Orchestrator().Executor = coordA
	labADone := make(chan error, 1)
	go func() { labADone <- labA.Orchestrator().RunAll(ctxA, specs) }()

	// Kill the victim the moment it actually holds a lease: cut its
	// transport first (so not even the drain release gets out), then cancel
	// it — the true SIGKILL shape as the coordinator sees it.
	waitFor(t, func() bool {
		for _, l := range coordA.Status().Leases {
			if l.Worker == "w-victim" {
				return true
			}
		}
		return false
	})
	victimT.killed.Store(true)
	killVictim()

	// Let the campaign make real progress (including the victim's cell
	// expiring and being re-leased) before crashing the coordinator.
	waitFor(t, func() bool { return store.Len() >= 4 })
	waitFor(t, func() bool { return coordA.ReLeases() >= 1 })

	// ── Coordinator crash. ──
	cancelA()
	if err := <-labADone; err == nil {
		t.Fatal("lab A survived its context being cancelled")
	}
	coordA.Close()
	srvA.Close()

	// ── Coordinator restart over the same results dir + journal. ──
	coordB, err := New(Config{Store: store, TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	if err := coordB.Recover(); err != nil {
		t.Fatal(err)
	}
	muxB := http.NewServeMux()
	coordB.Mount(muxB)
	srvB := httptest.NewServer(muxB)
	defer srvB.Close()
	// The fleet follows the coordinator to its new address.
	victimT.redirect(srvB.URL)
	flaky2.redirect(srvB.URL)
	flaky3.redirect(srvB.URL)

	labB := experiments.NewLab(scale,
		experiments.WithWorkers(4), experiments.WithStore(store))
	labB.Orchestrator().Executor = coordB
	if err := labB.Orchestrator().RunAll(context.Background(), specs); err != nil {
		t.Fatalf("campaign phase B: %v", err)
	}

	// Render the figure from the completed campaign (store + memo only —
	// every cell is done, so no new leases are needed).
	table, err := fig2.Run(labB)
	if err != nil {
		t.Fatal(err)
	}

	// Campaign over: drain the fleet and let every worker exit.
	coordB.Close()
	drainSurvivors()
	fleetDone := make(chan struct{})
	go func() { fleet.Wait(); close(fleetDone) }()
	select {
	case <-fleetDone:
	case <-time.After(30 * time.Second):
		t.Fatal("fleet did not drain")
	}
	for name, err := range workerErrs {
		if err != nil {
			t.Fatalf("worker %s exited with %v", name, err)
		}
	}

	// ── The assertions. ──

	// 1. Byte-identical table: chaos cost wall-clock, never results.
	if got := table.CSV(); got != reference {
		t.Fatalf("distributed table diverges from single-node reference:\n--- reference ---\n%s\n--- distributed ---\n%s", reference, got)
	}

	// 2. Exactly-once cross-check: every spec landed in the store, and the
	// journal records exactly one non-duplicate completion per key — no
	// more, no less — despite kills, dropped uploads, duplicated uploads
	// and the restart.
	hist, _, err := coordB.journal.Replay()
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range specs {
		key := sp.Key()
		if _, ok := store.Get(context.Background(), key); !ok {
			t.Fatalf("cell %s missing from store", sp.DisplayLabel())
		}
		h := hist[key]
		if h == nil || !h.Done {
			t.Fatalf("cell %s has no journal completion", sp.DisplayLabel())
		}
	}
	doneKeys := 0
	for key, h := range hist {
		if h.Done {
			doneKeys++
			if _, ok := store.Get(context.Background(), key); !ok {
				t.Fatalf("journal says %s done but store has no record", key)
			}
		}
	}
	if doneKeys != len(specs) {
		t.Fatalf("journal records %d completed keys, campaign has %d cells", doneKeys, len(specs))
	}

	// 3. The chaos actually happened: the victim's cell was re-leased, and
	// at least one duplicated/dropped upload produced a no-op duplicate.
	if got := coordB.ReLeases(); got < 1 {
		t.Fatalf("re-leases = %d, want >= 1 (victim kill must have expired a lease)", got)
	}
	dups := 0
	for _, h := range hist {
		dups += h.Dups
	}
	if dups < 1 {
		t.Fatalf("journal dups = %d, want >= 1 (flaky transports must have duplicated an upload)", dups)
	}
	t.Logf("chaos summary: re_leases=%d journal_dups=%d status_b=%+v",
		coordB.ReLeases(), dups, coordB.Status())
}

// fig2Specs rebuilds Fig 2's exact cell matrix (experiments/characterization.go):
// every graph workload under NP and MorphCtr with the 128 KiB
// characterization CTR cache, at the lab scale's access counts.
func fig2Specs(scale experiments.Scale) []runner.Spec {
	var specs []runner.Spec
	for _, w := range workloads.GraphNames() {
		for _, mk := range []func() secmem.Design{secmem.DesignNP, secmem.DesignMorph} {
			d := mk()
			d.CtrCacheBytes = 128 << 10
			specs = append(specs, runner.Spec{
				Workload:    w,
				Design:      d,
				Cores:       4,
				Accesses:    scale.Accesses,
				GraphNodes:  scale.GraphNodes,
				GraphDegree: scale.GraphDegree,
				Seed:        scale.Seed,
			})
		}
	}
	return specs
}

// chaosTransport is the fleet's failure injector: a RoundTripper that can
// be killed (every request errors, as after SIGKILL), made flaky
// (deterministically drop the response of one upload and duplicate
// another), and redirected to a restarted coordinator's new address.
type chaosTransport struct {
	host   atomic.Value // string: current coordinator base URL
	killed atomic.Bool
	flaky  atomic.Bool
	nRes   atomic.Uint64 // /coord/result requests seen
}

func newChaosTransport(base string) *chaosTransport {
	tr := &chaosTransport{}
	tr.host.Store(base)
	return tr
}

func (tr *chaosTransport) redirect(base string) { tr.host.Store(base) }

func (tr *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if tr.killed.Load() {
		return nil, errors.New("chaos: worker killed")
	}
	target, err := url.Parse(tr.host.Load().(string))
	if err != nil {
		return nil, err
	}
	r2 := req.Clone(req.Context())
	r2.URL.Scheme = target.Scheme
	r2.URL.Host = target.Host

	if tr.flaky.Load() && req.URL.Path == "/coord/result" {
		switch tr.nRes.Add(1) {
		case 1:
			// Drop the response: the upload LANDS but the worker never
			// hears, so its retry arrives as a duplicate.
			resp, err := http.DefaultTransport.RoundTrip(r2)
			if err == nil {
				resp.Body.Close()
			}
			return nil, fmt.Errorf("chaos: response dropped")
		case 3:
			// Duplicate the request outright: two identical uploads race.
			// GetBody (set for bytes.Reader bodies) gives each copy its own
			// reader; a Clone alone would share one consumed Body.
			if req.GetBody != nil {
				dup := req.Clone(req.Context())
				dup.URL.Scheme = target.Scheme
				dup.URL.Host = target.Host
				dup.Body, _ = req.GetBody()
				if resp, err := http.DefaultTransport.RoundTrip(dup); err == nil {
					resp.Body.Close()
				}
				r2.Body, _ = req.GetBody()
			}
		}
	}
	return http.DefaultTransport.RoundTrip(r2)
}
