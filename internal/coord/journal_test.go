package coord

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJournalReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	entries := []JournalEntry{
		{T: entryGrant, Key: "a", Worker: "w1", Lease: 1},
		{T: entryExpire, Key: "a", Worker: "w1", Lease: 1},
		{T: entryGrant, Key: "a", Worker: "w2", Lease: 2},
		{T: entryDone, Key: "a", Worker: "w2", Lease: 2},
		{T: entryDone, Key: "a", Worker: "w1", Lease: 1, Dup: true},
		{T: entryGrant, Key: "b", Worker: "w1", Lease: 3},
		{T: entryRelease, Key: "b", Worker: "w1", Lease: 3},
		{T: entryFail, Key: "c", Worker: "w2", Err: "boom"},
		{T: entryDone, Key: "d", Worker: "w3", Lease: 9, Orphan: true},
	}
	for _, e := range entries {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}

	// Replay through a fresh handle, as a restarted coordinator would.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	hist, maxLease, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if maxLease != 9 {
		t.Fatalf("maxLease = %d, want 9", maxLease)
	}
	a := hist["a"]
	if a == nil || a.Grants != 2 || !a.Done || a.Dups != 1 || a.Expires != 1 {
		t.Fatalf("history a = %+v, want 2 grants, done, 1 dup, 1 expire", a)
	}
	b := hist["b"]
	if b == nil || b.Grants != 1 || b.Done || b.Releases != 1 {
		t.Fatalf("history b = %+v, want 1 grant, not done, 1 release", b)
	}
	if c := hist["c"]; c == nil || c.Failed != "boom" {
		t.Fatalf("history c = %+v, want failed=boom", c)
	}
	if d := hist["d"]; d == nil || !d.Done {
		t.Fatalf("history d = %+v, want done (orphan counts as completion)", d)
	}
}

func TestJournalReplayMissingFile(t *testing.T) {
	j := &Journal{path: filepath.Join(t.TempDir(), "never-written.journal")}
	hist, maxLease, err := j.Replay()
	if err != nil || len(hist) != 0 || maxLease != 0 {
		t.Fatalf("missing journal must replay empty: hist=%v max=%d err=%v", hist, maxLease, err)
	}
}

// TestJournalReplayTornTail: a coordinator killed mid-append leaves a
// partial line; replay keeps every whole entry and never errors.
func TestJournalReplayTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalEntry{T: entryGrant, Key: "a", Worker: "w1", Lease: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalEntry{T: entryDone, Key: "a", Worker: "w1", Lease: 1}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":"cosmos-coord-v1","t":"grant","key":"trun`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	hist, _, err := j.Replay()
	if err != nil {
		t.Fatalf("torn tail must not fail replay: %v", err)
	}
	if a := hist["a"]; a == nil || a.Grants != 1 || !a.Done {
		t.Fatalf("intact prefix lost behind torn tail: %+v", a)
	}
	if _, leaked := hist["trun"]; leaked {
		t.Fatal("partial entry parsed as real")
	}
}

// TestJournalSecondNonDupDone: a second bare done for the same key (a
// journal that should be impossible to write, but replay must not trust
// that) is folded into the dup count, preserving the exactly-once ledger.
func TestJournalSecondNonDupDone(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coord.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(JournalEntry{T: entryDone, Key: "a", Worker: "w1", Lease: 1})
	j.Append(JournalEntry{T: entryDone, Key: "a", Worker: "w2", Lease: 2})
	hist, _, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if a := hist["a"]; a == nil || !a.Done || a.Dups != 1 {
		t.Fatalf("history a = %+v, want done with 1 dup", a)
	}
}
