package coord

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"cosmos/internal/runner"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
)

// fakeClock is an injectable, advanceable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testSpec(seed uint64) runner.Spec {
	return runner.Spec{Workload: "mcf", Design: secmem.DesignNP(), Accesses: 1000, Seed: seed}
}

// testResults builds a distinguishable (but fake) result payload; the
// coordinator treats results as opaque bytes to persist.
func testResults(cycles uint64) sim.Results {
	return sim.Results{Cycles: cycles, Accesses: 1000}
}

func newTestCoordinator(t *testing.T, clock *fakeClock) (*Coordinator, *runner.Store) {
	t.Helper()
	st, err := runner.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Store: st, TTL: 10 * time.Second}
	if clock != nil {
		cfg.Clock = clock.Now
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, st
}

// execAsync starts Execute in the background and returns channels with its
// outcome.
func execAsync(ctx context.Context, c *Coordinator, spec runner.Spec) (<-chan sim.Results, <-chan error) {
	resCh := make(chan sim.Results, 1)
	errCh := make(chan error, 1)
	go func() {
		r, err := c.Execute(ctx, spec.Key(), "cell", spec, nil)
		resCh <- r
		errCh <- err
	}()
	return resCh, errCh
}

func TestLeaseGrantCompleteLifecycle(t *testing.T) {
	clock := newFakeClock()
	c, st := newTestCoordinator(t, clock)
	spec := testSpec(1)
	key := spec.Key()

	startedCh := make(chan struct{})
	resCh := make(chan sim.Results, 1)
	go func() {
		r, err := c.Execute(context.Background(), key, "cell", spec, func() { close(startedCh) })
		if err != nil {
			t.Error(err)
		}
		resCh <- r
	}()

	// The cell must become leasable.
	var g Grant
	waitFor(t, func() bool {
		var granted bool
		var err error
		g, granted, err = c.Lease("w1")
		if err != nil {
			t.Fatal(err)
		}
		return granted
	})
	if g.Key != key || g.Lease == 0 || g.TTL != 10*time.Second {
		t.Fatalf("grant = %+v", g)
	}
	select {
	case <-startedCh:
	case <-time.After(2 * time.Second):
		t.Fatal("started callback never fired on first grant")
	}
	if !reflect.DeepEqual(g.Spec, spec) {
		t.Fatal("grant carries a different spec")
	}

	// Heartbeats extend the lease.
	if !c.Heartbeat("w1", key, g.Lease) {
		t.Fatal("live lease heartbeat rejected")
	}

	want := testResults(42)
	dup, err := c.Complete("w1", key, g.Lease, spec, want, "")
	if err != nil || dup {
		t.Fatalf("complete: dup=%v err=%v", dup, err)
	}
	got := <-resCh
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Execute returned %+v, want %+v", got, want)
	}
	// Persist-then-acknowledge: the store already has the record.
	if r, ok := st.Get(context.Background(), key); !ok || !reflect.DeepEqual(r, want) {
		t.Fatalf("store missing completed cell: ok=%v r=%+v", ok, r)
	}
	s := c.Status()
	if s.Completed != 1 || s.Done != 1 || s.Granted != 1 || s.ReLeases != 0 {
		t.Fatalf("status = %+v", s)
	}
}

// TestLeaseExpiryReLease: a worker that stops heartbeating loses its cell
// to the next Lease call; its stale heartbeat and upload are then handled
// as zombie traffic (upload accepted once, duplicate after).
func TestLeaseExpiryReLease(t *testing.T) {
	clock := newFakeClock()
	c, _ := newTestCoordinator(t, clock)
	spec := testSpec(2)
	key := spec.Key()
	resCh, errCh := execAsync(context.Background(), c, spec)

	var g1 Grant
	waitFor(t, func() bool {
		var ok bool
		g1, ok, _ = c.Lease("w1")
		return ok
	})

	// TTL passes with no heartbeat: the next lease poll re-grants to w2.
	clock.Advance(11 * time.Second)
	var g2 Grant
	waitFor(t, func() bool {
		var ok bool
		g2, ok, _ = c.Lease("w2")
		return ok
	})
	if g2.Key != key || g2.Lease == g1.Lease {
		t.Fatalf("re-lease got %+v (original %+v)", g2, g1)
	}
	if c.Heartbeat("w1", key, g1.Lease) {
		t.Fatal("stale lease heartbeat accepted")
	}
	if c.ReLeases() != 1 {
		t.Fatalf("ReLeases = %d, want 1", c.ReLeases())
	}

	// The zombie (w1) uploads first: accepted — results are deterministic,
	// and refusing would only delay the campaign.
	want := testResults(7)
	dup, err := c.Complete("w1", key, g1.Lease, spec, want, "")
	if err != nil || dup {
		t.Fatalf("zombie upload: dup=%v err=%v", dup, err)
	}
	if got := <-resCh; !reflect.DeepEqual(got, want) {
		t.Fatalf("Execute got %+v", got)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// w2 finishes later: pure duplicate, exactly-once recording holds.
	dup, err = c.Complete("w2", key, g2.Lease, spec, want, "")
	if err != nil || !dup {
		t.Fatalf("post-completion upload: dup=%v err=%v", dup, err)
	}
	s := c.Status()
	if s.Completed != 1 || s.Duplicates != 1 || s.Expired != 1 {
		t.Fatalf("status = %+v", s)
	}

	// The journal cross-check: exactly one non-dup done for the key.
	hist, _, err := c.journal.Replay()
	if err != nil {
		t.Fatal(err)
	}
	h := hist[key]
	if h == nil || !h.Done || h.Dups != 1 || h.Grants != 2 {
		t.Fatalf("journal history = %+v, want done once, 1 dup, 2 grants", h)
	}
}

func TestDoubleCompleteSameWorker(t *testing.T) {
	c, _ := newTestCoordinator(t, nil)
	spec := testSpec(3)
	key := spec.Key()
	execAsync(context.Background(), c, spec)
	var g Grant
	waitFor(t, func() bool {
		var ok bool
		g, ok, _ = c.Lease("w1")
		return ok
	})
	if dup, err := c.Complete("w1", key, g.Lease, spec, testResults(1), ""); dup || err != nil {
		t.Fatalf("first complete: dup=%v err=%v", dup, err)
	}
	// A retried upload (the worker never saw the first 200) must be a no-op.
	if dup, err := c.Complete("w1", key, g.Lease, spec, testResults(1), ""); !dup || err != nil {
		t.Fatalf("second complete: dup=%v err=%v", dup, err)
	}
	if s := c.Status(); s.Completed != 1 || s.Duplicates != 1 {
		t.Fatalf("status = %+v", s)
	}
}

// TestZombieUploadAcrossRestart: coordinator A grants a cell and "crashes";
// coordinator B recovers from the same journal+store; the worker's upload
// lands on B, which never enqueued the key. B accepts it as an orphan; a
// retry is a duplicate.
func TestZombieUploadAcrossRestart(t *testing.T) {
	st, err := runner.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(4)
	key := spec.Key()

	a, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Recover(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	_, errCh := execAsync(ctx, a, spec)
	var g Grant
	waitFor(t, func() bool {
		var ok bool
		g, ok, _ = a.Lease("w1")
		return ok
	})
	cancel() // the campaign context dies with coordinator A
	if err := <-errCh; err == nil {
		t.Fatal("Execute survived its context")
	}
	a.Close()

	b, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// The worker (which never heard about the crash) uploads to B.
	want := testResults(9)
	dup, err := b.Complete("w1", key, g.Lease, spec, want, "")
	if err != nil || dup {
		t.Fatalf("orphan upload: dup=%v err=%v", dup, err)
	}
	if r, ok := st.Get(context.Background(), key); !ok || !reflect.DeepEqual(r, want) {
		t.Fatalf("orphan result not persisted: ok=%v", ok)
	}
	if s := b.Status(); s.Orphans != 1 || s.Completed != 1 {
		t.Fatalf("status = %+v", s)
	}
	// Upload retry: now a duplicate, still flagged orphan-side.
	if dup, err := b.Complete("w1", key, g.Lease, spec, want, ""); !dup || err != nil {
		t.Fatalf("orphan retry: dup=%v err=%v", dup, err)
	}

	// Cross-restart ledger: the grant came from A, the single non-dup done
	// from B, and replay sees exactly one completion.
	hist, maxLease, err := b.journal.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if h := hist[key]; h == nil || !h.Done || h.Grants != 1 || h.Dups != 1 {
		t.Fatalf("ledger = %+v, want 1 grant, done once, 1 dup", h)
	}
	if maxLease != g.Lease {
		t.Fatalf("maxLease = %d, want %d", maxLease, g.Lease)
	}

	// And an Execute on B for the already-done key returns instantly.
	if r, err := b.Execute(context.Background(), key, "cell", spec, nil); err != nil || !reflect.DeepEqual(r, want) {
		t.Fatalf("Execute after orphan completion: r=%+v err=%v", r, err)
	}
}

// TestReleaseRequeues: a draining worker hands its lease back and the cell
// is immediately grantable again — no TTL wait.
func TestReleaseRequeues(t *testing.T) {
	c, _ := newTestCoordinator(t, nil)
	spec := testSpec(5)
	key := spec.Key()
	execAsync(context.Background(), c, spec)
	var g Grant
	waitFor(t, func() bool {
		var ok bool
		g, ok, _ = c.Lease("w1")
		return ok
	})
	c.Release("w1", key, g.Lease)
	g2, ok, err := c.Lease("w2")
	if err != nil || !ok || g2.Key != key || g2.Lease == g.Lease {
		t.Fatalf("release did not requeue: ok=%v g2=%+v err=%v", ok, g2, err)
	}
	// A stale release (after re-grant) is ignored.
	c.Release("w1", key, g.Lease)
	if s := c.Status(); s.Leased != 1 || s.Released != 1 {
		t.Fatalf("status = %+v", s)
	}
}

// TestWorkerErrorFailsCell: a real execution error (not a drain) surfaces
// through Execute and marks the cell failed.
func TestWorkerErrorFailsCell(t *testing.T) {
	c, _ := newTestCoordinator(t, nil)
	spec := testSpec(6)
	key := spec.Key()
	_, errCh := execAsync(context.Background(), c, spec)
	var g Grant
	waitFor(t, func() bool {
		var ok bool
		g, ok, _ = c.Lease("w1")
		return ok
	})
	if dup, err := c.Complete("w1", key, g.Lease, spec, sim.Results{}, "spec exploded"); dup || err != nil {
		t.Fatalf("fail upload: dup=%v err=%v", dup, err)
	}
	err := <-errCh
	if err == nil || err.Error() != "coord: worker w1: spec exploded" {
		t.Fatalf("Execute error = %v", err)
	}
	if s := c.Status(); s.Failed != 1 {
		t.Fatalf("status = %+v", s)
	}
}

func TestClosedCoordinator(t *testing.T) {
	c, _ := newTestCoordinator(t, nil)
	c.Close()
	if _, _, err := c.Lease("w1"); err != ErrClosed {
		t.Fatalf("Lease after close: %v", err)
	}
	if _, err := c.Execute(context.Background(), "k", "l", testSpec(7), nil); err != ErrClosed {
		t.Fatalf("Execute after close: %v", err)
	}
	if ready, _ := c.Ready(); ready {
		t.Fatal("closed coordinator reports ready")
	}
}

func TestNotReadyBeforeRecover(t *testing.T) {
	st, err := runner.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if ready, reason := c.Ready(); ready || reason == "" {
		t.Fatalf("unrecovered coordinator ready=%v reason=%q", ready, reason)
	}
	if _, ok, err := c.Lease("w1"); ok || err != nil {
		t.Fatalf("unready coordinator leased: ok=%v err=%v", ok, err)
	}
}

// waitFor polls cond until it holds or the test times out; Execute enqueues
// from a goroutine, so grants become available asynchronously.
// waitFor polls cond until it holds. The deadline is generous because the
// race detector on a small CI box slows real simulations by an order of
// magnitude; correctness tests must not double as latency tests.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
