package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/runner"
	"cosmos/internal/sim"
)

// ErrLostCoordinator reports a worker that could not reach its coordinator
// for longer than the reconnect budget. cosmos-bench maps it to exit code 3
// so supervisors can tell "coordinator died" from "campaign failed".
var ErrLostCoordinator = errors.New("coord: lost coordinator")

// errFenced marks a cell abandoned because the worker could not keep its
// lease alive: the coordinator has (or soon will have) re-leased it, so the
// worker neither uploads nor releases — it just moves on.
var errFenced = errors.New("coord: lease fenced")

// WorkerConfig parameterises a Worker.
type WorkerConfig struct {
	// Addr is the coordinator's base URL (e.g. "http://127.0.0.1:9090").
	// Required.
	Addr string
	// Name identifies this worker in leases, journal entries and /runs.
	// Required.
	Name string
	// Concurrency is how many cells run at once; 1 when zero or less.
	Concurrency int
	// Client lets tests inject chaos transports; http.DefaultClient-alike
	// with a sane timeout when nil.
	Client *http.Client
	// Logger defaults to slog.Default().
	Logger *slog.Logger
	// PollInterval is the sleep between empty lease polls (default 250ms,
	// jittered ±50%).
	PollInterval time.Duration
	// ReconnectBudget bounds how long the worker tolerates an unreachable
	// coordinator before giving up with ErrLostCoordinator (default 60s).
	ReconnectBudget time.Duration
	// Orchestrator executes leased cells; a store-less orchestrator with
	// Workers=Concurrency when nil. (The coordinator owns persistence —
	// workers never write the results dir.)
	Orchestrator *runner.Orchestrator
}

// Worker pulls leases from a coordinator, executes them through the
// ordinary runner path, and streams results back with retry. It degrades
// gracefully: an unreachable coordinator is retried with jittered backoff
// up to the reconnect budget; a cancelled context (SIGTERM) releases held
// leases and drains.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client
	log    *slog.Logger
	orch   *runner.Orchestrator

	ready atomic.Bool // first successful coordinator contact

	// lastContact is the wall time of the last successful HTTP exchange
	// (any status counts — only transport failures mean "unreachable").
	lastContact atomic.Int64

	executed  atomic.Uint64
	uploaded  atomic.Uint64
	dups      atomic.Uint64
	fenced    atomic.Uint64
	releasedN atomic.Uint64
}

// NewWorker builds a worker for cfg.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Addr == "" {
		return nil, errors.New("coord: WorkerConfig.Addr is required")
	}
	if cfg.Name == "" {
		return nil, errors.New("coord: WorkerConfig.Name is required")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.ReconnectBudget <= 0 {
		cfg.ReconnectBudget = 60 * time.Second
	}
	orch := cfg.Orchestrator
	if orch == nil {
		orch = runner.New(runner.Options{Workers: cfg.Concurrency})
	}
	w := &Worker{cfg: cfg, client: cfg.Client, log: cfg.Logger, orch: orch}
	w.lastContact.Store(time.Now().UnixNano())
	return w, nil
}

// Ready reports whether the worker has successfully contacted its
// coordinator at least once (the /readyz condition in -join mode).
func (w *Worker) Ready() (bool, string) {
	if !w.ready.Load() {
		return false, "not yet joined to coordinator"
	}
	return true, ""
}

// Stats reports the worker's cumulative cell accounting.
func (w *Worker) Stats() (executed, uploaded, dups, fenced, released uint64) {
	return w.executed.Load(), w.uploaded.Load(), w.dups.Load(), w.fenced.Load(), w.releasedN.Load()
}

// Run joins the campaign and processes cells until the coordinator reports
// the campaign over (nil), the context is cancelled (nil — a drain is a
// graceful exit), or the coordinator stays unreachable past the reconnect
// budget (ErrLostCoordinator).
func (w *Worker) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, w.cfg.Concurrency)
	for i := 0; i < w.cfg.Concurrency; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.loop(ctx)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// loop is one lease-execute-upload slot.
func (w *Worker) loop(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil // drain: nothing held at the top of the loop
		}
		grant, state, err := w.lease(ctx)
		switch state {
		case leaseGone:
			return nil // campaign over
		case leaseEmpty:
			if err := w.sleep(ctx, jitter(w.cfg.PollInterval)); err != nil {
				return nil
			}
			continue
		case leaseErr:
			if err != nil {
				return err // reconnect budget exhausted
			}
			if err := w.sleep(ctx, jitter(w.cfg.PollInterval)); err != nil {
				return nil
			}
			continue
		}
		if err := w.process(ctx, grant); err != nil {
			return err
		}
	}
}

type leaseState int

const (
	leaseGranted leaseState = iota
	leaseEmpty
	leaseGone
	leaseErr
)

func (w *Worker) lease(ctx context.Context) (leaseResponse, leaseState, error) {
	var resp leaseResponse
	status, body, err := w.post(ctx, "/coord/lease", leaseRequest{Worker: w.cfg.Name})
	if err != nil {
		if lost := w.checkBudget(); lost != nil {
			return resp, leaseErr, lost
		}
		return resp, leaseErr, nil
	}
	switch status {
	case http.StatusOK:
		if err := json.Unmarshal(body, &resp); err != nil {
			w.log.Warn("undecodable lease response", "err", err)
			return resp, leaseErr, nil
		}
		return resp, leaseGranted, nil
	case http.StatusNoContent, http.StatusServiceUnavailable:
		return resp, leaseEmpty, nil
	case http.StatusGone:
		return resp, leaseGone, nil
	default:
		w.log.Warn("unexpected lease status", "status", status)
		return resp, leaseErr, nil
	}
}

// process executes one granted cell and uploads its result.
func (w *Worker) process(ctx context.Context, g leaseResponse) error {
	// Version-skew guard: the spec must hash to the key the coordinator
	// granted, or worker and coordinator disagree about what the cell IS.
	if got := g.Spec.Key(); got != g.Key {
		w.log.Error("spec hash mismatch (version skew?)", "granted", g.Key, "computed", got)
		return w.upload(ctx, g, sim.Results{},
			fmt.Sprintf("spec key mismatch: granted %s, worker computed %s", g.Key, got))
	}

	ttl := time.Duration(g.TTLMS) * time.Millisecond
	cellCtx, cancelCell := context.WithCancel(ctx)
	defer cancelCell()
	fenced := &atomic.Bool{}
	stopHB := w.heartbeatLoop(cellCtx, g, ttl, func() {
		fenced.Store(true)
		cancelCell()
	})

	res, execErr := w.orch.Run(cellCtx, g.Spec)
	stopHB()

	switch {
	case fenced.Load():
		// Lease lost: the cell belongs to someone else now. Abandon it.
		w.fenced.Add(1)
		w.log.Warn("lease fenced mid-execution, abandoning cell", "key", g.Key)
		return nil
	case ctx.Err() != nil:
		// SIGTERM drain: hand the lease back so the cell re-queues at once
		// instead of waiting out the TTL.
		w.release(g)
		return nil
	case execErr != nil:
		w.log.Error("cell execution failed", "key", g.Key, "err", execErr)
		return w.upload(ctx, g, sim.Results{}, execErr.Error())
	default:
		w.executed.Add(1)
		return w.upload(ctx, g, res, "")
	}
}

// heartbeatLoop extends the lease at TTL/3 and fences (via onFence) when
// the lease is reported lost or no heartbeat has succeeded for a full TTL.
// The returned stop function synchronously ends the loop.
func (w *Worker) heartbeatLoop(ctx context.Context, g leaseResponse, ttl time.Duration, onFence func()) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		lastOK := time.Now()
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-ctx.Done():
				return
			case <-t.C:
			}
			status, _, err := w.post(ctx, "/coord/heartbeat",
				heartbeatRequest{Worker: w.cfg.Name, Key: g.Key, Lease: g.Lease})
			switch {
			case err == nil && status == http.StatusOK:
				lastOK = time.Now()
			case err == nil && status == http.StatusGone:
				onFence()
				return
			default:
				// Transport trouble: self-fence once the lease must have
				// expired on the coordinator side — holding on any longer
				// risks racing a re-leased twin for side effects.
				if time.Since(lastOK) > ttl {
					onFence()
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// upload streams a result (or execution error) to the coordinator,
// retrying transport failures and 5xx with jittered backoff until the
// reconnect budget runs out.
func (w *Worker) upload(ctx context.Context, g leaseResponse, res sim.Results, execErr string) error {
	req := resultRequest{
		Worker:  w.cfg.Name,
		Key:     g.Key,
		Lease:   g.Lease,
		Spec:    g.Spec,
		Results: res,
		Err:     execErr,
	}
	backoff := 50 * time.Millisecond
	for {
		status, body, err := w.post(ctx, "/coord/result", req)
		if err == nil {
			switch {
			case status == http.StatusOK:
				w.uploaded.Add(1)
				var resp resultResponse
				if json.Unmarshal(body, &resp) == nil && resp.Dup {
					w.dups.Add(1)
				}
				return nil
			case status == http.StatusGone:
				return nil // campaign over; result already durable elsewhere
			case status >= 400 && status < 500:
				w.log.Error("coordinator rejected upload", "key", g.Key, "status", status)
				return nil
			}
			// 5xx: persistence failed coordinator-side; retry below.
		}
		if ctx.Err() != nil {
			// Drain mid-upload: the lease will expire and the cell
			// re-executes elsewhere — determinism makes that safe.
			w.release(g)
			return nil
		}
		if lost := w.checkBudget(); lost != nil {
			return lost
		}
		if err := w.sleep(ctx, jitter(backoff)); err != nil {
			w.release(g)
			return nil
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

// release hands a held lease back (best effort, short deadline — used on
// drain, when the worker's own context is already cancelled).
func (w *Worker) release(g leaseResponse) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _, err := w.post(ctx, "/coord/release", releaseRequest{
		Worker: w.cfg.Name,
		Leases: []heldLease{{Key: g.Key, Lease: g.Lease}},
	})
	if err == nil {
		w.releasedN.Add(1)
	}
	// A failed release is fine: the lease TTL re-queues the cell anyway.
}

// post sends one JSON request and returns (status, body, transport error).
// Any HTTP response — success or not — counts as coordinator contact.
func (w *Worker) post(ctx context.Context, path string, payload any) (int, []byte, error) {
	b, err := json.Marshal(payload)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Addr+path, bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, nil, err
	}
	w.lastContact.Store(time.Now().UnixNano())
	w.ready.Store(true)
	return resp.StatusCode, body, nil
}

// checkBudget returns ErrLostCoordinator once the coordinator has been
// unreachable longer than the reconnect budget.
func (w *Worker) checkBudget() error {
	last := time.Unix(0, w.lastContact.Load())
	if down := time.Since(last); down > w.cfg.ReconnectBudget {
		return fmt.Errorf("%w: unreachable for %v (budget %v)",
			ErrLostCoordinator, down.Round(time.Second), w.cfg.ReconnectBudget)
	}
	return nil
}

func (w *Worker) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitter spreads d over [d/2, 3d/2) so a fleet of workers does not
// synchronise its polling against the coordinator.
func jitter(d time.Duration) time.Duration {
	return d/2 + rand.N(d)
}
