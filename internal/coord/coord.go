// Package coord is the fault-tolerant distributed campaign fabric: a
// lease-based coordinator that hands simulation cells to remote workers and
// a worker loop that executes them through the ordinary runner path.
//
// The design leans entirely on two properties the repo already guarantees:
//
//   - determinism: identical Specs produce bit-identical Results wherever
//     they run, so executing a cell twice (a re-leased cell whose original
//     worker was merely slow, a zombie upload from a presumed-dead worker)
//     is wasteful but never wrong;
//   - content addressing: cells are keyed by the spec's canonical hash and
//     results land in the content-addressed store via atomic renames, so
//     duplicate uploads overwrite a record with identical bytes.
//
// Exactly-once therefore means exactly-once *recording*: the coordinator
// accepts at-least-once execution from the fleet and collapses it to one
// non-duplicate completion per key in the store and journal. Leases carry a
// TTL extended by heartbeats; a lease whose deadline passes goes back on the
// pending queue and is granted to the next worker. Workers self-fence: a
// worker that cannot refresh its lease stops trusting it, so a grant's
// authority and the coordinator's willingness to wait expire together.
package coord

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/runner"
	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
)

// DefaultTTL is the lease time-to-live when Config.TTL is zero. Workers
// heartbeat at TTL/3, so a worker must miss three beats before its cell is
// re-leased.
const DefaultTTL = 10 * time.Second

// ErrClosed reports an Execute or Lease against a coordinator that has shut
// down.
var ErrClosed = errors.New("coord: coordinator closed")

// Config parameterises a Coordinator.
type Config struct {
	// Store receives completed results (persist-then-acknowledge: a result
	// is durable before the uploading worker hears success). Required.
	Store *runner.Store
	// JournalPath overrides the ledger location; default is
	// <store dir>/coord.journal.
	JournalPath string
	// TTL is the lease time-to-live; DefaultTTL when zero.
	TTL time.Duration
	// Logger defaults to slog.Default().
	Logger *slog.Logger
	// Clock is injectable for lease-expiry tests; time.Now when nil.
	Clock func() time.Time
}

// cellState is the lease state machine:
//
//	pending ──grant──▶ leased ──complete──▶ done
//	   ▲                 │  │
//	   └──expire/release─┘  └──fail (worker reported a real error)──▶ failed
type cellState int

const (
	statePending cellState = iota
	stateLeased
	stateDone
	stateFailed
)

func (s cellState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateLeased:
		return "leased"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	}
	return "unknown"
}

// cell is one unit of campaign work, identified by its spec key.
type cell struct {
	key   string
	label string
	spec  runner.Spec

	state    cellState
	worker   string    // holder while leased
	lease    uint64    // current lease id; stale ids heartbeat into the void
	deadline time.Time // lease expiry while leased
	leasedAt time.Time
	grants   int // grants by THIS coordinator incarnation

	// started is the orchestrator's queue-wait/exec-time split callback,
	// fired exactly once on the first grant.
	started      func()
	startedFired bool

	results sim.Results
	err     error
	done    chan struct{} // closed when the cell reaches done or failed
}

// Coordinator owns the campaign work queue. It implements runner.Executor:
// plug it into an Orchestrator and every leader run is enqueued for the
// worker fleet instead of simulated locally, while the orchestrator keeps
// its store-first lookup, memoisation and singleflight dedup.
type Coordinator struct {
	cfg     Config
	ttl     time.Duration
	journal *Journal
	log     *slog.Logger
	now     func() time.Time

	ready  atomic.Bool
	closed chan struct{}
	once   sync.Once

	mu      sync.Mutex
	cells   map[string]*cell
	pending []string            // FIFO of pending cell keys
	hist    map[string]*History // journal replay: prior incarnations
	seq     uint64              // lease id source, seeded past replayed ids
	workers map[string]*workerInfo

	// Fleet counters (this incarnation; ReLeases folds in history).
	granted    uint64
	expired    uint64
	released   uint64
	completed  uint64
	duplicates uint64
	orphans    uint64
	failed     uint64
}

type workerInfo struct {
	lastSeen time.Time
	held     int
}

// New builds a coordinator over cfg. It is not ready until Recover has
// replayed the journal; serve it on /readyz via Ready.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, errors.New("coord: Config.Store is required")
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.JournalPath == "" {
		cfg.JournalPath = cfg.Store.Dir() + "/coord.journal"
	}
	j, err := OpenJournal(cfg.JournalPath)
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:     cfg,
		ttl:     cfg.TTL,
		journal: j,
		log:     cfg.Logger,
		now:     cfg.Clock,
		closed:  make(chan struct{}),
		cells:   make(map[string]*cell),
		hist:    make(map[string]*History),
		workers: make(map[string]*workerInfo),
	}, nil
}

// Recover replays the journal so accounting (grant counts, re-leases,
// completions) continues across a coordinator restart, then marks the
// coordinator ready. Results need no recovery: they live in the store, and
// the orchestrator's store-first lookup skips completed cells entirely.
func (c *Coordinator) Recover() error {
	hist, maxLease, err := c.journal.Replay()
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.hist = hist
	if maxLease > c.seq {
		// Never reissue a lease id a prior incarnation handed out: a zombie
		// holding an old grant must not collide with a fresh one.
		c.seq = maxLease
	}
	replayed := len(hist)
	c.mu.Unlock()
	c.ready.Store(true)
	if replayed > 0 {
		c.log.Info("coordinator recovered journal", "keys", replayed, "max_lease", maxLease)
	}
	return nil
}

// Ready reports whether the journal has been replayed; until then the
// coordinator refuses to serve leases and /readyz returns 503.
func (c *Coordinator) Ready() (bool, string) {
	select {
	case <-c.closed:
		return false, "coordinator closed"
	default:
	}
	if !c.ready.Load() {
		return false, "journal not yet replayed"
	}
	return true, ""
}

// Close shuts the work queue: pending Execute calls fail, lease requests
// report gone (410) so polling workers drain and exit cleanly.
func (c *Coordinator) Close() {
	c.once.Do(func() { close(c.closed) })
}

// Execute implements runner.Executor: enqueue the cell and block until a
// worker completes it, the context ends, or the coordinator closes.
func (c *Coordinator) Execute(ctx context.Context, key, label string, spec runner.Spec, started func()) (sim.Results, error) {
	c.mu.Lock()
	cl := c.cells[key]
	if cl == nil {
		cl = &cell{
			key:     key,
			label:   label,
			spec:    spec,
			state:   statePending,
			started: started,
			done:    make(chan struct{}),
		}
		c.cells[key] = cl
		c.pending = append(c.pending, key)
	} else if cl.started == nil {
		// The cell pre-exists (an orphan upload landed before Execute, or a
		// prior campaign on this incarnation enqueued it); adopt the new
		// caller's callback if none is pending.
		cl.started = started
		cl.startedFired = false
	}
	done := cl.done
	c.mu.Unlock()

	select {
	case <-done:
	case <-ctx.Done():
		return sim.Results{}, ctx.Err()
	case <-c.closed:
		return sim.Results{}, ErrClosed
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cl.state == stateFailed {
		return sim.Results{}, cl.err
	}
	return cl.results, nil
}

// Grant is one lease handed to a worker.
type Grant struct {
	Key   string
	Label string
	Spec  runner.Spec
	Lease uint64
	TTL   time.Duration
}

// Lease hands the oldest pending cell to worker. ok=false with a nil error
// means nothing is pending right now (poll again); ErrClosed means the
// campaign is over and the worker should exit.
func (c *Coordinator) Lease(worker string) (Grant, bool, error) {
	select {
	case <-c.closed:
		return Grant{}, false, ErrClosed
	default:
	}
	if !c.ready.Load() {
		return Grant{}, false, nil
	}
	now := c.now()

	c.mu.Lock()
	c.touchLocked(worker, now)
	expired := c.expireLocked(now)
	var cl *cell
	for len(c.pending) > 0 {
		key := c.pending[0]
		c.pending = c.pending[1:]
		if cand := c.cells[key]; cand != nil && cand.state == statePending {
			cl = cand
			break
		}
	}
	if cl == nil {
		c.mu.Unlock()
		for _, e := range expired {
			c.appendJournal(e)
		}
		return Grant{}, false, nil
	}
	c.seq++
	cl.state = stateLeased
	cl.worker = worker
	cl.lease = c.seq
	cl.leasedAt = now
	cl.deadline = now.Add(c.ttl)
	cl.grants++
	c.granted++
	if w := c.workers[worker]; w != nil {
		w.held++
	}
	var fireStarted func()
	if !cl.startedFired && cl.started != nil {
		cl.startedFired = true
		fireStarted = cl.started
	}
	g := Grant{Key: cl.key, Label: cl.label, Spec: cl.spec, Lease: cl.lease, TTL: c.ttl}
	c.mu.Unlock()

	// Outside the coordinator mutex: the callback walks back into the
	// orchestrator/RunTable lock hierarchy, and the journal does file I/O.
	if fireStarted != nil {
		fireStarted()
	}
	for _, e := range expired {
		c.appendJournal(e)
	}
	c.appendJournal(JournalEntry{T: entryGrant, Key: g.Key, Worker: worker, Lease: g.Lease})
	return g, true, nil
}

// Heartbeat extends the lease deadline. ok=false tells the worker the lease
// is lost (expired and possibly re-granted): it must stop trusting the
// grant and abandon or self-fence the cell.
func (c *Coordinator) Heartbeat(worker, key string, lease uint64) bool {
	now := c.now()
	c.mu.Lock()
	c.touchLocked(worker, now)
	expired := c.expireLocked(now)
	ok := false
	if cl := c.cells[key]; cl != nil && cl.state == stateLeased && cl.lease == lease {
		cl.deadline = now.Add(c.ttl)
		ok = true
	}
	c.mu.Unlock()
	for _, e := range expired {
		c.appendJournal(e)
	}
	return ok
}

// Complete records a cell's outcome. Results are persisted to the store
// BEFORE the cell is marked done (persist-then-acknowledge), so a success
// response means the result is durable. Duplicate completions — a zombie
// worker whose lease expired, a retried upload that already landed — are
// no-ops reported as dup=true. Completions for keys this incarnation never
// enqueued (a worker finishing across a coordinator restart) are accepted
// as orphans: the results are deterministic and content-addressed, so
// storing them is always correct.
func (c *Coordinator) Complete(worker, key string, lease uint64, spec runner.Spec, res sim.Results, workerErr string) (dup bool, err error) {
	now := c.now()

	if workerErr != "" {
		return false, c.completeFailed(worker, key, now, workerErr)
	}

	// Fast duplicate path: skip the store write if the cell is already done.
	c.mu.Lock()
	c.touchLocked(worker, now)
	if cl := c.cells[key]; cl != nil && cl.state == stateDone {
		c.duplicates++
		c.mu.Unlock()
		c.appendJournal(JournalEntry{T: entryDone, Key: key, Worker: worker, Lease: lease, Dup: true})
		return true, nil
	}
	c.mu.Unlock()

	// Persist first. Store writes are atomic and idempotent, so two racing
	// uploads of the same key write identical bytes.
	if perr := c.cfg.Store.Put(context.Background(), key, spec, res); perr != nil {
		return false, fmt.Errorf("coord: persist %s: %w", key, perr)
	}

	c.mu.Lock()
	cl := c.cells[key]
	orphan := false
	switch {
	case cl == nil:
		// Post-restart zombie: this incarnation never enqueued the key.
		orphan = true
		c.orphans++
		if h := c.hist[key]; h != nil && h.Done {
			// A prior incarnation already recorded it: duplicate.
			c.duplicates++
			c.mu.Unlock()
			c.appendJournal(JournalEntry{T: entryDone, Key: key, Worker: worker, Lease: lease, Dup: true, Orphan: true})
			return true, nil
		}
		cl = &cell{key: key, spec: spec, state: stateDone, results: res, done: make(chan struct{})}
		close(cl.done)
		c.cells[key] = cl
		c.completed++
	case cl.state == stateDone:
		c.duplicates++
		c.mu.Unlock()
		c.appendJournal(JournalEntry{T: entryDone, Key: key, Worker: worker, Lease: lease, Dup: true})
		return true, nil
	default:
		if cl.state == stateLeased && cl.worker == worker && cl.lease == lease {
			c.dropHeldLocked(worker)
		}
		cl.state = stateDone
		cl.results = res
		cl.err = nil
		c.completed++
		close(cl.done)
	}
	c.mu.Unlock()
	c.appendJournal(JournalEntry{T: entryDone, Key: key, Worker: worker, Lease: lease, Orphan: orphan})
	return false, nil
}

// completeFailed records a worker-reported execution error (a validation
// failure, a panic — not a lost coordinator or a cancelled worker, which
// release instead). The campaign surfaces it through Execute.
func (c *Coordinator) completeFailed(worker, key string, now time.Time, workerErr string) error {
	c.mu.Lock()
	c.touchLocked(worker, now)
	cl := c.cells[key]
	if cl == nil || cl.state == stateDone || cl.state == stateFailed {
		c.mu.Unlock()
		return nil // too late to matter; done wins over a racing failure
	}
	if cl.state == stateLeased && cl.worker == worker {
		c.dropHeldLocked(worker)
	}
	cl.state = stateFailed
	cl.err = fmt.Errorf("coord: worker %s: %s", worker, workerErr)
	c.failed++
	close(cl.done)
	c.mu.Unlock()
	c.appendJournal(JournalEntry{T: entryFail, Key: key, Worker: worker, Err: workerErr})
	return nil
}

// Release returns a still-held lease to the pending queue (a draining
// worker giving back work it will not finish). Stale leases are ignored.
func (c *Coordinator) Release(worker, key string, lease uint64) {
	now := c.now()
	c.mu.Lock()
	c.touchLocked(worker, now)
	cl := c.cells[key]
	if cl == nil || cl.state != stateLeased || cl.lease != lease {
		c.mu.Unlock()
		return
	}
	cl.state = statePending
	cl.worker = ""
	// Front of the queue: the cell has already waited out one grant, so it
	// should not also wait out the whole backlog again.
	c.pending = append([]string{key}, c.pending...)
	c.released++
	c.dropHeldLocked(worker)
	c.mu.Unlock()
	c.appendJournal(JournalEntry{T: entryRelease, Key: key, Worker: worker, Lease: lease})
}

// expireLocked re-queues every lease whose deadline has passed and returns
// the journal entries to append once the caller drops c.mu. Called on each
// lease/heartbeat, so expiry latency is bounded by the fleet's poll
// interval — no background sweeper goroutine to leak.
func (c *Coordinator) expireLocked(now time.Time) []JournalEntry {
	var entries []JournalEntry
	for _, cl := range c.cells {
		if cl.state == stateLeased && now.After(cl.deadline) {
			c.log.Warn("lease expired, re-queueing cell",
				"key", cl.key, "worker", cl.worker, "lease", cl.lease)
			entries = append(entries, JournalEntry{
				T: entryExpire, Key: cl.key, Worker: cl.worker, Lease: cl.lease,
			})
			c.dropHeldLocked(cl.worker)
			cl.state = statePending
			cl.worker = ""
			// Re-queue at the front: an expired cell is the campaign's
			// oldest work, and the chaos bar (re-lease latency bounded by
			// TTL + one poll interval) depends on it not re-joining the
			// back of the backlog.
			c.pending = append([]string{cl.key}, c.pending...)
			c.expired++
		}
	}
	return entries
}

func (c *Coordinator) touchLocked(worker string, now time.Time) {
	w := c.workers[worker]
	if w == nil {
		w = &workerInfo{}
		c.workers[worker] = w
	}
	w.lastSeen = now
}

func (c *Coordinator) dropHeldLocked(worker string) {
	if w := c.workers[worker]; w != nil && w.held > 0 {
		w.held--
	}
}

func (c *Coordinator) appendJournal(e JournalEntry) {
	if err := c.journal.Append(e); err != nil {
		// Accounting loss only: results are durable in the store.
		c.log.Warn("journal append failed", "t", e.T, "key", e.Key, "err", err)
	}
}

// WorkerStatus is one fleet member's occupancy as seen by the coordinator.
type WorkerStatus struct {
	Name       string  `json:"name"`
	Held       int     `json:"held"`
	LastSeenMS float64 `json:"last_seen_ms"` // age of last contact
}

// LeaseStatus is one outstanding lease.
type LeaseStatus struct {
	Key    string  `json:"key"`
	Label  string  `json:"label,omitempty"`
	Worker string  `json:"worker"`
	AgeMS  float64 `json:"age_ms"`
	Grants int     `json:"grants"` // grants this incarnation (>1 ⇒ re-leased)
}

// Status is the coordinator's public state, merged into /runs and served on
// /coord/status.
type Status struct {
	Ready      bool           `json:"ready"`
	Pending    int            `json:"pending"`
	Leased     int            `json:"leased"`
	Done       int            `json:"done"`
	Failed     int            `json:"failed"`
	Granted    uint64         `json:"granted"`
	Expired    uint64         `json:"expired"`
	Released   uint64         `json:"released"`
	Completed  uint64         `json:"completed"`
	Duplicates uint64         `json:"duplicates"`
	Orphans    uint64         `json:"orphans"`
	ReLeases   int            `json:"re_leases"`
	Workers    []WorkerStatus `json:"workers,omitempty"`
	Leases     []LeaseStatus  `json:"leases,omitempty"`
}

// ReLeases counts cells granted more than once, across every coordinator
// incarnation sharing the journal: Σ max(0, grants−1) over live cells plus
// the same sum over replayed history for keys not re-enqueued here.
func (c *Coordinator) ReLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reLeasesLocked()
}

func (c *Coordinator) reLeasesLocked() int {
	n := 0
	for key, cl := range c.cells {
		g := cl.grants
		if h := c.hist[key]; h != nil {
			g += h.Grants
		}
		if g > 1 {
			n += g - 1
		}
	}
	for key, h := range c.hist {
		if _, live := c.cells[key]; !live && h.Grants > 1 {
			n += h.Grants - 1
		}
	}
	return n
}

// Status snapshots the queue, fleet occupancy and lease ages.
func (c *Coordinator) Status() Status {
	now := c.now()
	ready, _ := c.Ready()
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Ready:      ready,
		Granted:    c.granted,
		Expired:    c.expired,
		Released:   c.released,
		Completed:  c.completed,
		Duplicates: c.duplicates,
		Orphans:    c.orphans,
		ReLeases:   c.reLeasesLocked(),
	}
	for _, cl := range c.cells {
		switch cl.state {
		case statePending:
			s.Pending++
		case stateLeased:
			s.Leased++
			s.Leases = append(s.Leases, LeaseStatus{
				Key:    cl.key,
				Label:  cl.label,
				Worker: cl.worker,
				AgeMS:  float64(now.Sub(cl.leasedAt)) / float64(time.Millisecond),
				Grants: cl.grants,
			})
		case stateDone:
			s.Done++
		case stateFailed:
			s.Failed++
		}
	}
	for name, w := range c.workers {
		s.Workers = append(s.Workers, WorkerStatus{
			Name:       name,
			Held:       w.held,
			LastSeenMS: float64(now.Sub(w.lastSeen)) / float64(time.Millisecond),
		})
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Name < s.Workers[j].Name })
	sort.Slice(s.Leases, func(i, j int) bool { return s.Leases[i].Key < s.Leases[j].Key })
	return s
}

// RegisterMetrics exposes the fabric counters on the observability plane's
// /metrics endpoint under the coord scope.
func (c *Coordinator) RegisterMetrics(reg *telemetry.Registry) {
	sc := reg.Scope("coord")
	snap := func(pick func(Status) float64) func() float64 {
		return func() float64 { return pick(c.Status()) }
	}
	sc.CounterFunc("granted", func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.granted })
	sc.CounterFunc("expired", func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.expired })
	sc.CounterFunc("released", func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.released })
	sc.CounterFunc("completed", func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.completed })
	sc.CounterFunc("duplicates", func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.duplicates })
	sc.CounterFunc("orphans", func() uint64 { c.mu.Lock(); defer c.mu.Unlock(); return c.orphans })
	sc.Gauge("pending", snap(func(s Status) float64 { return float64(s.Pending) }))
	sc.Gauge("leased", snap(func(s Status) float64 { return float64(s.Leased) }))
	sc.Gauge("workers", snap(func(s Status) float64 { return float64(len(s.Workers)) }))
	sc.Gauge("re_leases", snap(func(s Status) float64 { return float64(s.ReLeases) }))
}
