package coord

import (
	"bufio"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"time"

	"cosmos/internal/flock"
)

// The journal is the coordinator's append-only ledger, written next to the
// result store (<results-dir>/coord.journal): one JSONL entry per lease
// grant, expiry, voluntary release, completion and failure. It exists for
// two reasons:
//
//   - restart continuity: a coordinator reopened over the same directory
//     replays the journal to recover per-cell grant counts, re-lease
//     totals and completion history, so the campaign's accounting (and the
//     ≥1-re-lease chaos assertions) survive a coordinator crash — the
//     results themselves are the store's job;
//   - the exactly-once cross-check: every store-indexed key must have
//     exactly one non-duplicate "done" entry. Zombie and duplicated
//     uploads land as dup entries, so the ledger proves no cell's results
//     were recorded twice and none were lost.
//
// Appends go through the same flock(2) discipline as the store index, so a
// second process sharing the directory cannot interleave torn lines.
// Entries are not fsynced: losing the tail on a host crash costs only
// accounting (a re-lease counter, a dup tally), never results.

// journalVersion stamps every entry; unknown versions are skipped on
// replay rather than misread.
const journalVersion = "cosmos-coord-v1"

// Entry kinds.
const (
	entryGrant   = "grant"
	entryExpire  = "expire"
	entryRelease = "release"
	entryDone    = "done"
	entryFail    = "fail"
)

// JournalEntry is one line of coord.journal.
type JournalEntry struct {
	V      string `json:"v"`
	T      string `json:"t"` // grant | expire | release | done | fail
	Key    string `json:"key"`
	Worker string `json:"worker,omitempty"`
	Lease  uint64 `json:"lease,omitempty"`
	// Dup marks a done entry for a cell whose results were already
	// recorded (zombie or duplicated upload): a no-op by construction.
	Dup bool `json:"dup,omitempty"`
	// Orphan marks a done entry uploaded for a cell the (restarted)
	// coordinator had not enqueued yet — accepted because results are
	// deterministic and content-addressed.
	Orphan   bool   `json:"orphan,omitempty"`
	Err      string `json:"err,omitempty"`
	AtUnixMS int64  `json:"at_unix_ms"`
}

// Journal appends and replays the coordinator ledger.
type Journal struct {
	path string
	now  func() time.Time

	mu sync.Mutex
}

// OpenJournal opens (creating if needed) the ledger at path.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("coord: open journal %s: %w", path, err)
	}
	f.Close()
	return &Journal{path: path, now: time.Now}, nil
}

// Path returns the ledger's file path.
func (j *Journal) Path() string { return j.path }

func (j *Journal) lockPath() string { return j.path + ".lock" }

// Append writes one entry under the cross-process lock. Errors are
// surfaced but the coordinator treats them as non-fatal accounting loss:
// the store, not the journal, is the source of truth for results.
func (j *Journal) Append(e JournalEntry) error {
	e.V = journalVersion
	e.AtUnixMS = j.now().UnixMilli()
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("coord: encode journal entry: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return flock.With(j.lockPath(), func() error {
		f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		_, err = f.Write(append(line, '\n'))
		return err
	})
}

// History is the replayed per-key ledger state.
type History struct {
	// Grants counts lease grants across all coordinator incarnations.
	Grants int
	// Done reports whether a non-duplicate completion was recorded.
	Done bool
	// Dups counts duplicate (no-op) completions.
	Dups int
	// Expires / Releases count lost and voluntarily returned leases.
	Expires  int
	Releases int
	// Failed carries the terminal error of a failed cell ("" = none).
	Failed string
}

// Replay reads the whole ledger, tolerating a torn tail and unknown
// versions exactly like the store index: damaged entries cost their own
// accounting only. Returns per-key history plus the highest lease id seen,
// so a restarted coordinator never reissues a live lease id.
func (j *Journal) Replay() (map[string]*History, uint64, error) {
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return map[string]*History{}, 0, nil
		}
		return nil, 0, fmt.Errorf("coord: open journal: %w", err)
	}
	defer f.Close()

	hist := make(map[string]*History)
	var maxLease uint64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.V != journalVersion || e.Key == "" {
			continue
		}
		h := hist[e.Key]
		if h == nil {
			h = &History{}
			hist[e.Key] = h
		}
		if e.Lease > maxLease {
			maxLease = e.Lease
		}
		switch e.T {
		case entryGrant:
			h.Grants++
		case entryExpire:
			h.Expires++
		case entryRelease:
			h.Releases++
		case entryDone:
			if e.Dup {
				h.Dups++
			} else if h.Done {
				// A second non-dup done for the same key would break the
				// exactly-once ledger; keep it visible as a dup rather than
				// silently folding it away.
				h.Dups++
				slog.Warn("coord: journal carries a second completion for a key, counting as duplicate",
					"key", e.Key)
			} else {
				h.Done = true
			}
		case entryFail:
			h.Failed = e.Err
		}
	}
	if err := sc.Err(); err != nil {
		slog.Warn("coord: journal read stopped early, keeping parsed prefix",
			"path", j.path, "entries", len(hist), "err", err)
	}
	return hist, maxLease, nil
}
