// Package core implements COSMOS itself — the paper's contribution: the
// RL-based CTR locality predictor with its CTR Evaluation Table (Algorithm
// 1), the RL-based data location predictor (Algorithm 3), their reward and
// hyper-parameter sets (Table 1), and the hardware storage accounting
// (Table 2). The LCR replacement policy they drive lives in internal/cache;
// the secure-memory controller wiring lives in internal/secmem.
package core

import (
	"fmt"

	"cosmos/internal/rl"
)

// DataRewards are the four rewards of the data location predictor (§4.1.2):
// rows are the actual location, columns the prediction.
type DataRewards struct {
	Hi float64 // R_D_hi: predicted on-chip,  was on-chip  (correct)
	Mo float64 // R_D_mo: predicted off-chip, was off-chip (correct)
	Ho float64 // R_D_ho: predicted off-chip, was on-chip  (penalty)
	Mi float64 // R_D_mi: predicted on-chip,  was off-chip (penalty)
}

// CtrRewards are the six rewards of the CTR locality predictor (§4.1.1).
type CtrRewards struct {
	Hg float64 // R_C_hg: CET hit,  predicted good (correct)
	Hb float64 // R_C_hb: CET hit,  predicted bad  (penalty)
	Mb float64 // R_C_mb: CET miss, predicted bad  (correct)
	Mg float64 // R_C_mg: CET miss, predicted good (penalty)
	Eg float64 // R_C_eg: CET eviction, was predicted good (penalty)
	Eb float64 // R_C_eb: CET eviction, was predicted bad  (correct)
}

// Hyper holds one predictor's learning hyper-parameters.
type Hyper struct {
	Alpha   float64
	Gamma   float64
	Epsilon float64
}

// Params bundles everything Table 1 specifies plus the structure sizes of
// Table 2, and optionally swaps either predictor's decision engine for a
// non-default rl.Policy.
type Params struct {
	Data        Hyper
	Ctr         Hyper
	DataRewards DataRewards
	CtrRewards  CtrRewards

	QStates    int // entries per Q-table (Table 2: 16,384)
	CETEntries int // Table 2: 8,192
	// CETWindow is the ±window (in counter blocks) of the nearby-state
	// check in Algorithm 1 line 9.
	CETWindow uint64

	Seed uint64

	// DataPolicy and CtrPolicy select non-default policies for the data
	// location and CTR locality predictors. nil means the paper's tabular
	// Q-learning built from the fields above — and, being omitempty
	// pointers, the nil case is invisible to JSON hashing, so every
	// pre-policy runner spec key survives unchanged.
	DataPolicy *rl.PolicySpec `json:",omitempty"`
	CtrPolicy  *rl.PolicySpec `json:",omitempty"`
}

// Validate rejects parameter sets the predictors cannot be built from —
// today that means invalid policy specs (unknown kinds, bad shapes).
func (p *Params) Validate() error {
	if err := p.DataPolicy.Validate(); err != nil {
		return fmt.Errorf("core: data policy: %w", err)
	}
	if err := p.CtrPolicy.Validate(); err != nil {
		return fmt.Errorf("core: ctr policy: %w", err)
	}
	return nil
}

// DefaultParams returns the tuned values of Table 1 with the structure
// sizes of Table 2.
func DefaultParams() Params {
	return Params{
		Data:        Hyper{Alpha: 0.09, Gamma: 0.88, Epsilon: 0.1},
		Ctr:         Hyper{Alpha: 0.05, Gamma: 0.35, Epsilon: 0.001},
		DataRewards: DataRewards{Hi: 9, Mo: 12, Ho: -20, Mi: -30},
		CtrRewards:  CtrRewards{Hg: 13, Hb: -12, Mb: 20, Mg: -16, Eg: -22, Eb: 26},
		QStates:     16384,
		CETEntries:  8192,
		CETWindow:   32,
		Seed:        1,
	}
}

// Overhead itemises COSMOS's on-chip storage (Table 2). lcrLines is the
// line count of the LCR-CTR cache (each line carries 1 prediction bit and
// an 8-bit score).
type Overhead struct {
	DataQTableBytes int
	CtrQTableBytes  int
	CETBytes        int
	LCRBytes        int
}

// Total sums the components.
func (o Overhead) Total() int {
	return o.DataQTableBytes + o.CtrQTableBytes + o.CETBytes + o.LCRBytes
}

// ComputeOverhead derives the storage budget from the parameters: two
// Q-tables at 16 bits/entry, CET entries at 65 bits (64-bit address + 1
// prediction bit), and 9 bits per LCR-CTR cache line.
func ComputeOverhead(p Params, lcrLines int) Overhead {
	return Overhead{
		DataQTableBytes: p.QStates * 16 / 8,
		CtrQTableBytes:  p.QStates * 16 / 8,
		CETBytes:        p.CETEntries * 65 / 8,
		LCRBytes:        lcrLines * 9 / 8,
	}
}

// AreaPower records the 28nm SRAM-compiler estimates the paper reports for
// each COSMOS structure (§4.6: 0.9V, 25C, 3GHz). These are technology
// statements, reproduced as constants and totalled for the tab-power
// experiment.
type AreaPower struct {
	Component string
	AreaMM2   float64
	PowerMW   float64
}

// PaperAreaPower returns the §4.6 component estimates.
func PaperAreaPower() []AreaPower {
	return []AreaPower{
		{Component: "Data Q-table", AreaMM2: 0.057, PowerMW: 45.29},
		{Component: "CTR Q-table", AreaMM2: 0.057, PowerMW: 45.29},
		{Component: "CET", AreaMM2: 0.116, PowerMW: 92.00},
		{Component: "LCR-CTR cache", AreaMM2: 0.030, PowerMW: 24.06},
	}
}

// TotalAreaPower sums the component estimates (§4.6 reports 0.260 mm² and
// 206.65 mW).
func TotalAreaPower() (areaMM2, powerMW float64) {
	for _, c := range PaperAreaPower() {
		areaMM2 += c.AreaMM2
		powerMW += c.PowerMW
	}
	return areaMM2, powerMW
}
