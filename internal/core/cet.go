package core

// CET is the CTR Evaluation Table (§4.1.1): a small LRU-managed buffer of
// recent CTR accesses, each recorded with the RL state and action taken.
// It answers the "was this CTR (or a spatial neighbour within ±window
// blocks) accessed recently?" question that grades locality predictions,
// and it reports evictions so stale predictions can be penalised
// (Algorithm 1 lines 19-23).
//
// The ±window neighbourhood test is implemented with block-index buckets of
// width 64 ≥ window, so each lookup probes at most three buckets instead of
// hashing 65 candidate addresses — semantically identical to Algorithm 1
// line 9, O(1) per access.
type CET struct {
	capacity int
	window   uint64

	byBlock map[uint64]*cetEntry
	buckets map[uint64]map[*cetEntry]struct{}

	// intrusive LRU list: mru is the most recently inserted entry
	// ("CET.head" in Algorithm 1), lru the eviction candidate.
	mru, lru *cetEntry
	size     int
}

type cetEntry struct {
	block  uint64
	state  int
	action int

	prev, next *cetEntry // prev = more recent
}

// CETRecord is the (state, action) pair stored per entry, surfaced on
// eviction and by Head.
type CETRecord struct {
	Block  uint64
	State  int
	Action int
}

// NewCET builds a table with the given capacity and neighbourhood window.
func NewCET(capacity int, window uint64) *CET {
	if capacity < 1 {
		capacity = 1
	}
	return &CET{
		capacity: capacity,
		window:   window,
		byBlock:  make(map[uint64]*cetEntry, capacity),
		buckets:  make(map[uint64]map[*cetEntry]struct{}),
	}
}

// Len reports the current number of entries.
func (c *CET) Len() int { return c.size }

// Clear empties the table, keeping its capacity and window.
func (c *CET) Clear() {
	clear(c.byBlock)
	clear(c.buckets)
	c.mru, c.lru = nil, nil
	c.size = 0
}

// Capacity reports the configured entry count.
func (c *CET) Capacity() int { return c.capacity }

func (c *CET) bucketOf(block uint64) uint64 { return block >> 6 }

// HitNearby reports whether any resident entry lies within ±window counter
// blocks of block (Algorithm 1 lines 9-10).
func (c *CET) HitNearby(block uint64) bool {
	b := c.bucketOf(block)
	for _, probe := range [3]uint64{b - 1, b, b + 1} {
		for e := range c.buckets[probe] {
			d := e.block - block
			if e.block < block {
				d = block - e.block
			}
			if d <= c.window {
				return true
			}
		}
	}
	return false
}

// Head returns the most recently inserted record — Algorithm 1's
// (CET.head.state, CET.head.action) bootstrap — and ok=false when empty.
func (c *CET) Head() (CETRecord, bool) {
	if c.mru == nil {
		return CETRecord{}, false
	}
	return CETRecord{Block: c.mru.block, State: c.mru.state, Action: c.mru.action}, true
}

// Insert records (block, state, action) as the newest entry. If the block
// is already resident its record is refreshed and promoted. When the table
// overflows, the least recently inserted entry is evicted and returned so
// the caller can apply the eviction reward.
func (c *CET) Insert(block uint64, state, action int) (evicted CETRecord, wasEvicted bool) {
	if e, ok := c.byBlock[block]; ok {
		e.state, e.action = state, action
		c.unlink(e)
		c.pushFront(e)
		return CETRecord{}, false
	}
	e := &cetEntry{block: block, state: state, action: action}
	c.byBlock[block] = e
	bk := c.bucketOf(block)
	set := c.buckets[bk]
	if set == nil {
		set = make(map[*cetEntry]struct{})
		c.buckets[bk] = set
	}
	set[e] = struct{}{}
	c.pushFront(e)
	c.size++

	if c.size <= c.capacity {
		return CETRecord{}, false
	}
	victim := c.lru
	c.remove(victim)
	return CETRecord{Block: victim.block, State: victim.state, Action: victim.action}, true
}

func (c *CET) pushFront(e *cetEntry) {
	e.prev = nil
	e.next = c.mru
	if c.mru != nil {
		c.mru.prev = e
	}
	c.mru = e
	if c.lru == nil {
		c.lru = e
	}
}

func (c *CET) unlink(e *cetEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.mru = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.lru = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *CET) remove(e *cetEntry) {
	c.unlink(e)
	delete(c.byBlock, e.block)
	bk := c.bucketOf(e.block)
	delete(c.buckets[bk], e)
	if len(c.buckets[bk]) == 0 {
		delete(c.buckets, bk)
	}
	c.size--
}

// StorageBits reports the hardware cost: 65 bits per entry (64-bit address
// + 1 prediction bit), per Table 2.
func (c *CET) StorageBits() int { return c.capacity * 65 }
