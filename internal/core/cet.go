package core

import "math/bits"

// CET is the CTR Evaluation Table (§4.1.1): a small LRU-managed buffer of
// recent CTR accesses, each recorded with the RL state and action taken.
// It answers the "was this CTR (or a spatial neighbour within ±window
// blocks) accessed recently?" question that grades locality predictions,
// and it reports evictions so stale predictions can be penalised
// (Algorithm 1 lines 19-23).
//
// Storage is a fixed slab of entries linked into an intrusive index-based
// LRU list (no per-entry allocation), with two indexes over it:
//
//   - byBlock maps a counter-block number to its slab index (at most one
//     entry per block — Insert refreshes in place);
//   - buckets maps block>>6 to a 64-bit occupancy bitmap, bit i set iff an
//     entry for block (bucket<<6)|i is resident.
//
// The ±window neighbourhood test of Algorithm 1 line 9 then reduces to
// masking the occupancy bitmaps of the (at most three, for window < 64)
// buckets the range overlaps — O(1) bit arithmetic per lookup, no
// candidate iteration, and order-independent (hence deterministic).
type CET struct {
	capacity int
	window   uint64

	// entries is the slab; it holds capacity+1 slots because Insert links
	// the new entry before evicting the LRU victim.
	entries []cetEntry
	free    int32 // free-list head, chained through cetEntry.next
	byBlock cetIndex
	buckets cetIndex

	// intrusive LRU list: mru is the most recently inserted entry
	// ("CET.head" in Algorithm 1), lru the eviction candidate. -1 = empty.
	mru, lru int32
	size     int
}

type cetEntry struct {
	block  uint64
	state  int32
	action int32

	prev, next int32 // prev = more recent; -1 terminates
}

// CETRecord is the (state, action) pair stored per entry, surfaced on
// eviction and by Head.
type CETRecord struct {
	Block  uint64
	State  int
	Action int
}

// NewCET builds a table with the given capacity and neighbourhood window.
func NewCET(capacity int, window uint64) *CET {
	if capacity < 1 {
		capacity = 1
	}
	c := &CET{
		capacity: capacity,
		window:   window,
		entries:  make([]cetEntry, capacity+1),
	}
	c.byBlock.init(capacity)
	c.buckets.init(capacity)
	c.reset()
	return c
}

// cetIndex is a linear-probing open-addressed uint64→uint64 table sized for
// a fixed entry budget, replacing the runtime maps on the per-CTR-access
// path: the CET churns one insert and one delete per steady-state miss, and
// at a ≤¼ load factor a probe is one or two array reads with no hashing
// dispatch. Deletion backward-shifts the cluster (no tombstones), so probe
// lengths stay short forever. Keys are counter-block derived and therefore
// far below the reserved cetEmpty sentinel.
type cetIndex struct {
	keys []uint64
	vals []uint64
	mask uint64
}

const cetEmpty = ^uint64(0)

func (t *cetIndex) init(capacity int) {
	size := 4
	for size < 4*capacity {
		size <<= 1
	}
	t.keys = make([]uint64, size)
	t.vals = make([]uint64, size)
	t.mask = uint64(size - 1)
	t.clear()
}

func (t *cetIndex) clear() {
	for i := range t.keys {
		t.keys[i] = cetEmpty
	}
}

func (t *cetIndex) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & t.mask
}

// get returns the value for key (ok=false when absent).
func (t *cetIndex) get(key uint64) (uint64, bool) {
	for i := t.home(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			return t.vals[i], true
		case cetEmpty:
			return 0, false
		}
	}
}

// put inserts or replaces key's value.
func (t *cetIndex) put(key, val uint64) {
	for i := t.home(key); ; i = (i + 1) & t.mask {
		if t.keys[i] == key || t.keys[i] == cetEmpty {
			t.keys[i], t.vals[i] = key, val
			return
		}
	}
}

// orBit ORs bit into key's value, inserting the key if absent — one probe
// instead of a get followed by a put.
func (t *cetIndex) orBit(key, bit uint64) {
	for i := t.home(key); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case key:
			t.vals[i] |= bit
			return
		case cetEmpty:
			t.keys[i], t.vals[i] = key, bit
			return
		}
	}
}

// del removes key if present, backward-shifting the probe cluster so
// lookups never need tombstones.
func (t *cetIndex) del(key uint64) {
	i := t.home(key)
	for {
		switch t.keys[i] {
		case cetEmpty:
			return
		case key:
			goto found
		}
		i = (i + 1) & t.mask
	}
found:
	for {
		t.keys[i] = cetEmpty
		j := i
		for {
			j = (j + 1) & t.mask
			k := t.keys[j]
			if k == cetEmpty {
				return
			}
			// Shift k into the hole unless it already sits in its probe
			// range [home(k), j] without crossing the hole.
			h := t.home(k)
			if (j-h)&t.mask >= (j-i)&t.mask {
				t.keys[i], t.vals[i] = k, t.vals[j]
				i = j
				break
			}
		}
	}
}

// len counts resident keys (test/validation use only — linear).
func (t *cetIndex) len() int {
	n := 0
	for _, k := range t.keys {
		if k != cetEmpty {
			n++
		}
	}
	return n
}

// reset rebuilds the free list and empties the LRU chain.
func (c *CET) reset() {
	for i := range c.entries {
		c.entries[i].next = int32(i) + 1
	}
	c.entries[len(c.entries)-1].next = -1
	c.free = 0
	c.mru, c.lru = -1, -1
	c.size = 0
}

// Len reports the current number of entries.
func (c *CET) Len() int { return c.size }

// Clear empties the table, keeping its capacity and window.
func (c *CET) Clear() {
	c.byBlock.clear()
	c.buckets.clear()
	c.reset()
}

// Capacity reports the configured entry count.
func (c *CET) Capacity() int { return c.capacity }

func (c *CET) bucketOf(block uint64) uint64 { return block >> 6 }

// HitNearby reports whether any resident entry lies within ±window counter
// blocks of block (Algorithm 1 lines 9-10).
func (c *CET) HitNearby(block uint64) bool {
	lo := block - c.window
	if lo > block { // underflow: clamp to 0
		lo = 0
	}
	hi := block + c.window
	if hi < block { // overflow: clamp to max
		hi = ^uint64(0)
	}
	for b := lo >> 6; ; b++ {
		if m, _ := c.buckets.get(b); m != 0 {
			// Intersect [lo,hi] with this bucket's 64-block span and
			// build the corresponding bit range.
			lob, hib := uint64(0), uint64(63)
			if b == lo>>6 {
				lob = lo & 63
			}
			if b == hi>>6 {
				hib = hi & 63
			}
			rangeMask := (^uint64(0) << lob) & (^uint64(0) >> (63 - hib))
			if m&rangeMask != 0 {
				return true
			}
		}
		if b == hi>>6 {
			return false
		}
	}
}

// Head returns the most recently inserted record — Algorithm 1's
// (CET.head.state, CET.head.action) bootstrap — and ok=false when empty.
func (c *CET) Head() (CETRecord, bool) {
	if c.mru < 0 {
		return CETRecord{}, false
	}
	e := &c.entries[c.mru]
	return CETRecord{Block: e.block, State: int(e.state), Action: int(e.action)}, true
}

// Insert records (block, state, action) as the newest entry. If the block
// is already resident its record is refreshed and promoted. When the table
// overflows, the least recently inserted entry is evicted and returned so
// the caller can apply the eviction reward.
func (c *CET) Insert(block uint64, state, action int) (evicted CETRecord, wasEvicted bool) {
	if v, ok := c.byBlock.get(block); ok {
		i := int32(v)
		e := &c.entries[i]
		e.state, e.action = int32(state), int32(action)
		c.unlink(i)
		c.pushFront(i)
		return CETRecord{}, false
	}
	i := c.free
	c.free = c.entries[i].next
	e := &c.entries[i]
	e.block, e.state, e.action = block, int32(state), int32(action)
	c.byBlock.put(block, uint64(i))
	c.buckets.orBit(block>>6, 1<<(block&63))
	c.pushFront(i)
	c.size++

	if c.size <= c.capacity {
		return CETRecord{}, false
	}
	vi := c.lru
	v := c.entries[vi]
	c.remove(vi)
	return CETRecord{Block: v.block, State: int(v.state), Action: int(v.action)}, true
}

func (c *CET) pushFront(i int32) {
	e := &c.entries[i]
	e.prev = -1
	e.next = c.mru
	if c.mru >= 0 {
		c.entries[c.mru].prev = i
	}
	c.mru = i
	if c.lru < 0 {
		c.lru = i
	}
}

func (c *CET) unlink(i int32) {
	e := &c.entries[i]
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	} else {
		c.mru = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	} else {
		c.lru = e.prev
	}
	e.prev, e.next = -1, -1
}

func (c *CET) remove(i int32) {
	c.unlink(i)
	e := &c.entries[i]
	c.byBlock.del(e.block)
	bk := e.block >> 6
	m, _ := c.buckets.get(bk)
	if m &^= 1 << (e.block & 63); m == 0 {
		c.buckets.del(bk)
	} else {
		c.buckets.put(bk, m)
	}
	e.next = c.free
	c.free = i
	c.size--
}

// occupancyCheck (tests only) verifies the bitmap index against byBlock.
func (c *CET) occupancyCheck() bool {
	n := 0
	for s, k := range c.buckets.keys {
		if k != cetEmpty {
			n += bits.OnesCount64(c.buckets.vals[s])
		}
	}
	if n != c.byBlock.len() {
		return false
	}
	for s, k := range c.byBlock.keys {
		if k == cetEmpty {
			continue
		}
		if c.entries[int32(c.byBlock.vals[s])].block != k {
			return false
		}
		if m, _ := c.buckets.get(k >> 6); m&(1<<(k&63)) == 0 {
			return false
		}
	}
	return true
}

// StorageBits reports the hardware cost: 65 bits per entry (64-bit address
// + 1 prediction bit), per Table 2.
func (c *CET) StorageBits() int { return c.capacity * 65 }
