package core

import (
	"testing"

	"cosmos/internal/rl"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.Data.Alpha != 0.09 || p.Data.Gamma != 0.88 || p.Data.Epsilon != 0.1 {
		t.Errorf("data hyper-parameters %+v do not match Table 1", p.Data)
	}
	if p.Ctr.Alpha != 0.05 || p.Ctr.Gamma != 0.35 || p.Ctr.Epsilon != 0.001 {
		t.Errorf("ctr hyper-parameters %+v do not match Table 1", p.Ctr)
	}
	dr := p.DataRewards
	if dr.Mo != 12 || dr.Mi != -30 || dr.Ho != -20 || dr.Hi != 9 {
		t.Errorf("data rewards %+v do not match Table 1", dr)
	}
	cr := p.CtrRewards
	if cr.Hg != 13 || cr.Hb != -12 || cr.Mg != -16 || cr.Mb != 20 || cr.Eg != -22 || cr.Eb != 26 {
		t.Errorf("ctr rewards %+v do not match Table 1", cr)
	}
}

func TestComputeOverheadMatchesTable2(t *testing.T) {
	p := DefaultParams()
	// Table 2 line items: 32KB + 32KB Q-tables, 66KB CET.
	o := ComputeOverhead(p, 128*1024/64) // 128KB LCR-CTR cache → 2048 lines
	if o.DataQTableBytes != 32*1024 {
		t.Errorf("data Q-table = %d bytes, want 32KB", o.DataQTableBytes)
	}
	if o.CtrQTableBytes != 32*1024 {
		t.Errorf("ctr Q-table = %d bytes, want 32KB", o.CtrQTableBytes)
	}
	if o.CETBytes != 8192*65/8 {
		t.Errorf("CET = %d bytes", o.CETBytes)
	}
	if o.Total() <= o.DataQTableBytes+o.CtrQTableBytes {
		t.Error("total must include CET and LCR metadata")
	}
}

// --- CET ---

func TestCETInsertAndHit(t *testing.T) {
	c := NewCET(4, 32)
	if c.HitNearby(100) {
		t.Fatal("empty CET must miss")
	}
	c.Insert(100, 1, 1)
	if !c.HitNearby(100) {
		t.Fatal("exact block must hit")
	}
	if !c.HitNearby(132) || !c.HitNearby(68) {
		t.Fatal("±32 window must hit")
	}
	if c.HitNearby(133) || c.HitNearby(67) {
		t.Fatal("outside ±32 must miss")
	}
}

func TestCETWindowAcrossBuckets(t *testing.T) {
	// Bucket width is 64; a block near a bucket edge must still see
	// neighbours in the adjacent bucket.
	c := NewCET(8, 32)
	c.Insert(63, 0, 0) // bucket 0
	if !c.HitNearby(64) || !c.HitNearby(95) {
		t.Fatal("cross-bucket neighbourhood lookup failed")
	}
	if c.HitNearby(96) {
		t.Fatal("96 is 33 away from 63 — must miss")
	}
}

func TestCETLRUEviction(t *testing.T) {
	c := NewCET(3, 0)
	c.Insert(1, 10, 0)
	c.Insert(2, 20, 1)
	c.Insert(3, 30, 0)
	ev, was := c.Insert(4, 40, 1)
	if !was || ev.Block != 1 || ev.State != 10 {
		t.Fatalf("evicted %+v, want block 1", ev)
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.HitNearby(1) {
		t.Fatal("evicted block must miss")
	}
}

func TestCETReinsertPromotes(t *testing.T) {
	c := NewCET(3, 0)
	c.Insert(1, 0, 0)
	c.Insert(2, 0, 0)
	c.Insert(3, 0, 0)
	c.Insert(1, 5, 1) // refresh block 1 → now MRU
	head, ok := c.Head()
	if !ok || head.Block != 1 || head.State != 5 || head.Action != 1 {
		t.Fatalf("head %+v, want refreshed block 1", head)
	}
	ev, was := c.Insert(4, 0, 0)
	if !was || ev.Block != 2 {
		t.Fatalf("evicted %+v, want block 2 (1 was promoted)", ev)
	}
	if c.Len() != 3 {
		t.Fatal("size drifted on reinsert")
	}
}

func TestCETHeadTracksMRU(t *testing.T) {
	c := NewCET(10, 0)
	if _, ok := c.Head(); ok {
		t.Fatal("empty CET has no head")
	}
	c.Insert(7, 70, 1)
	c.Insert(8, 80, 0)
	head, _ := c.Head()
	if head.Block != 8 {
		t.Fatalf("head = %d, want 8", head.Block)
	}
}

func TestCETStorageBits(t *testing.T) {
	c := NewCET(8192, 32)
	if c.StorageBits() != 8192*65 {
		t.Fatalf("storage = %d bits", c.StorageBits())
	}
}

func TestCETChurn(t *testing.T) {
	// Hammer with a large address space; size must never exceed capacity
	// and bucket bookkeeping must not leak.
	c := NewCET(64, 32)
	rng := rl.NewRand(3)
	for i := 0; i < 20000; i++ {
		c.Insert(rng.Uint64()%100000, i, i&1)
		if c.Len() > 64 {
			t.Fatal("CET exceeded capacity")
		}
	}
	if n := c.buckets.len(); n > 64 {
		t.Fatalf("bucket index leaked: %d buckets for 64 entries", n)
	}
}

// --- Data location predictor ---

func TestDataPredictorLearnsStablePattern(t *testing.T) {
	// Addresses in region A are always on-chip; region B always off-chip.
	p := DefaultParams()
	p.Data.Epsilon = 0.05
	dp := NewDataPredictor(p)
	rng := rl.NewRand(5)
	addrOf := func(region int) uint64 {
		base := uint64(region) << 30
		return base + uint64(rng.Intn(4096))*64
	}
	for i := 0; i < 60000; i++ {
		region := rng.Intn(2)
		pred := dp.Predict(addrOf(region))
		dp.Learn(pred, region == 1)
	}
	// Grade the learned policy greedily.
	dp2 := dp
	correct, total := 0, 0
	for i := 0; i < 4000; i++ {
		region := rng.Intn(2)
		s := rl.HashState(addrOf(region), 16384)
		a, _ := dp2.Table().Best(s)
		if (a == ActionOffChip) == (region == 1) {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.85 {
		t.Fatalf("greedy accuracy %.2f after training, want ≥0.85", acc)
	}
	if dp.Stats.Accuracy() < 0.7 {
		t.Fatalf("online accuracy %.2f, want ≥0.7", dp.Stats.Accuracy())
	}
}

func TestDataPredictorStatsDecomposition(t *testing.T) {
	p := DefaultParams()
	p.Data.Epsilon = 0
	dp := NewDataPredictor(p)
	pred := dp.Predict(0x1000)
	r := dp.Learn(pred, pred.OffChip) // grade as correct either way
	if r != p.DataRewards.Hi && r != p.DataRewards.Mo {
		t.Fatalf("correct prediction reward = %v", r)
	}
	if dp.Stats.Total() != 1 {
		t.Fatalf("stats total = %d", dp.Stats.Total())
	}
	pred2 := dp.Predict(0x2000)
	r2 := dp.Learn(pred2, !pred2.OffChip)
	if r2 != p.DataRewards.Ho && r2 != p.DataRewards.Mi {
		t.Fatalf("incorrect prediction reward = %v", r2)
	}
	if dp.Stats.Accuracy() != 0.5 {
		t.Fatalf("accuracy = %v", dp.Stats.Accuracy())
	}
}

func TestDataPredictorExplorationRate(t *testing.T) {
	p := DefaultParams() // ε = 0.1
	dp := NewDataPredictor(p)
	for i := 0; i < 20000; i++ {
		dp.Predict(uint64(i) * 64)
	}
	r := dp.ExplorationRate()
	if r < 0.08 || r > 0.12 {
		t.Fatalf("exploration rate %v, want ≈0.1", r)
	}
}

// --- CTR locality predictor ---

func TestLocalityPredictorLearnsHotVsCold(t *testing.T) {
	// Hot counter blocks recur rapidly (CET hits); cold blocks never
	// recur. The predictor should classify hot as good, cold as bad.
	p := DefaultParams()
	p.CETEntries = 256
	lp := NewLocalityPredictor(p)
	rng := rl.NewRand(7)
	hot := []uint64{1000, 2000, 3000, 4000}
	coldNext := uint64(1 << 20)
	for i := 0; i < 60000; i++ {
		if rng.Intn(2) == 0 {
			lp.Observe(hot[rng.Intn(len(hot))])
		} else {
			lp.Observe(coldNext)
			coldNext += 100 // outside any window, never repeats
		}
	}
	table := lp.Table()
	for _, h := range hot {
		s := rl.HashState(h<<6, table.States())
		if a, _ := table.Best(s); a != ActionGoodLocality {
			t.Errorf("hot block %d classified bad (Q: %v/%v)", h,
				table.Q(s, 0), table.Q(s, 1))
		}
	}
	// Cold states should lean bad: sample some.
	bad := 0
	for i := 0; i < 200; i++ {
		s := rl.HashState((uint64(1<<20)+uint64(i)*100)<<6, table.States())
		if a, _ := table.Best(s); a == ActionBadLocality {
			bad++
		}
	}
	if bad < 150 {
		t.Errorf("only %d/200 cold states classified bad", bad)
	}
	if lp.Stats.CETHits == 0 || lp.Stats.CETMisses == 0 || lp.Stats.Evictions == 0 {
		t.Errorf("stats not exercised: %+v", lp.Stats)
	}
}

func TestLocalityPredictorSpatialNeighbourhood(t *testing.T) {
	// Accesses marching within a ±32-block window must register CET hits
	// (spatial locality), even though no block repeats exactly.
	p := DefaultParams()
	lp := NewLocalityPredictor(p)
	for i := uint64(0); i < 1000; i++ {
		lp.Observe(5000 + i%16) // tight window
	}
	if lp.Stats.CETHits < 900 {
		t.Fatalf("spatial window produced only %d hits", lp.Stats.CETHits)
	}
}

func TestLocalityPredictorGoodFraction(t *testing.T) {
	var s CtrStats
	if s.GoodFraction() != 0 {
		t.Fatal("empty stats")
	}
	s = CtrStats{PredGood: 20, PredBad: 80}
	if s.GoodFraction() != 0.2 {
		t.Fatalf("good fraction %v", s.GoodFraction())
	}
}

func TestClassificationScoreRange(t *testing.T) {
	p := DefaultParams()
	lp := NewLocalityPredictor(p)
	for i := uint64(0); i < 5000; i++ {
		c := lp.Observe(i % 64)
		_ = c.Good
		// Score is uint8 by construction; just ensure Observe is total.
	}
	if lp.Stats.PredGood+lp.Stats.PredBad != 5000 {
		t.Fatal("every access must be classified")
	}
}

func TestPaperAreaPowerTotals(t *testing.T) {
	a, p := TotalAreaPower()
	if a < 0.259 || a > 0.261 {
		t.Errorf("total area %.3f mm², §4.6 says 0.260", a)
	}
	if p < 206 || p > 207 {
		t.Errorf("total power %.2f mW, §4.6 says 206.65", p)
	}
	if len(PaperAreaPower()) != 4 {
		t.Error("four components expected")
	}
}
