package core

import (
	"testing"
	"testing/quick"

	"cosmos/internal/rl"
)

// Property tests of the CET against a slow reference model.

type refCET struct {
	capacity int
	window   uint64
	order    []CETRecord // index 0 = MRU
}

func (r *refCET) hitNearby(block uint64) bool {
	for _, e := range r.order {
		d := e.Block - block
		if e.Block < block {
			d = block - e.Block
		}
		if d <= r.window {
			return true
		}
	}
	return false
}

func (r *refCET) insert(block uint64, state, action int) (CETRecord, bool) {
	for i, e := range r.order {
		if e.Block == block {
			r.order = append(r.order[:i], r.order[i+1:]...)
			r.order = append([]CETRecord{{Block: block, State: state, Action: action}}, r.order...)
			return CETRecord{}, false
		}
	}
	r.order = append([]CETRecord{{Block: block, State: state, Action: action}}, r.order...)
	if len(r.order) > r.capacity {
		ev := r.order[len(r.order)-1]
		r.order = r.order[:len(r.order)-1]
		return ev, true
	}
	return CETRecord{}, false
}

func TestCETMatchesReferenceModel(t *testing.T) {
	const capacity, window = 16, 32
	cet := NewCET(capacity, window)
	ref := &refCET{capacity: capacity, window: window}
	rng := rl.NewRand(11)

	for i := 0; i < 30000; i++ {
		block := rng.Uint64() % 4000 // dense enough to exercise windows
		// Interleave lookups and inserts.
		if i%3 == 0 {
			probe := rng.Uint64() % 4000
			if got, want := cet.HitNearby(probe), ref.hitNearby(probe); got != want {
				t.Fatalf("step %d: HitNearby(%d) = %v, ref %v", i, probe, got, want)
			}
		}
		evGot, okGot := cet.Insert(block, int(block%100), int(block%2))
		evWant, okWant := ref.insert(block, int(block%100), int(block%2))
		if okGot != okWant || (okGot && evGot != evWant) {
			t.Fatalf("step %d: Insert(%d) evicted (%+v,%v), ref (%+v,%v)",
				i, block, evGot, okGot, evWant, okWant)
		}
		hGot, okH := cet.Head()
		if !okH || hGot.Block != ref.order[0].Block {
			t.Fatalf("step %d: head %+v, ref %+v", i, hGot, ref.order[0])
		}
		if cet.Len() != len(ref.order) {
			t.Fatalf("step %d: len %d, ref %d", i, cet.Len(), len(ref.order))
		}
		if i%997 == 0 && !cet.occupancyCheck() {
			t.Fatalf("step %d: occupancy bitmaps out of sync with the entry index", i)
		}
	}
	if !cet.occupancyCheck() {
		t.Fatal("final occupancy bitmaps out of sync with the entry index")
	}
}

func TestCETNeverExceedsCapacityProperty(t *testing.T) {
	f := func(blocks []uint32) bool {
		c := NewCET(8, 4)
		for _, b := range blocks {
			c.Insert(uint64(b), 0, 0)
			if c.Len() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCETWindowSymmetryProperty(t *testing.T) {
	// If block b is resident, HitNearby(b±d) for d ≤ window must hit.
	f := func(bRaw uint32, dRaw uint8) bool {
		b := uint64(bRaw) + 64 // keep b-d positive
		d := uint64(dRaw) % 33 // window is 32
		c := NewCET(4, 32)
		c.Insert(b, 0, 0)
		return c.HitNearby(b+d) && c.HitNearby(b-d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCETOutsideWindowProperty(t *testing.T) {
	f := func(bRaw uint32, dRaw uint16) bool {
		b := uint64(bRaw) + 100000
		d := uint64(dRaw)%1000 + 33 // strictly beyond the ±32 window
		c := NewCET(4, 32)
		c.Insert(b, 0, 0)
		return !c.HitNearby(b+d) && !c.HitNearby(b-d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
