package core

import (
	"fmt"

	"cosmos/internal/rl"
	"cosmos/internal/telemetry"
)

// Action encoding shared by both predictors: for the data location
// predictor action 1 = off-chip; for the CTR locality predictor action 1 =
// good locality.
const (
	ActionOnChip  = 0
	ActionOffChip = 1

	ActionBadLocality  = 0
	ActionGoodLocality = 1
)

// DataPredictor is the RL-based data location predictor (Algorithm 3): on
// every L1 miss it predicts whether the line is on-chip (L2/LLC) or
// off-chip (DRAM), enabling early CTR access for off-chip predictions.
//
// The decision engine is any rl.Policy — tabular Q-learning by default
// (the paper's design), or a perceptron/MLP selected via Params.DataPolicy.
type DataPredictor struct {
	policy  rl.Policy
	rewards DataRewards

	Stats DataStats
}

// DataStats decomposes predictions for the Fig 12 study.
type DataStats struct {
	PredOnCorrect  uint64 // predicted on-chip, was on-chip
	PredOnWrong    uint64 // predicted on-chip, was off-chip
	PredOffCorrect uint64 // predicted off-chip, was off-chip
	PredOffWrong   uint64 // predicted off-chip, was on-chip
}

// Total returns the number of graded predictions.
func (s DataStats) Total() uint64 {
	return s.PredOnCorrect + s.PredOnWrong + s.PredOffCorrect + s.PredOffWrong
}

// Accuracy returns overall prediction correctness (Fig 12's headline).
func (s DataStats) Accuracy() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.PredOnCorrect+s.PredOffCorrect) / float64(t)
}

// NewDataPredictor builds the predictor from the parameter set: the tabular
// default when p.DataPolicy is nil, otherwise the policy the spec selects.
func NewDataPredictor(p Params) *DataPredictor {
	return &DataPredictor{
		policy:  buildPolicy(p.DataPolicy, p, p.Data, p.Seed^0xDA7A),
		rewards: p.DataRewards,
	}
}

// buildPolicy materialises a predictor's policy. A nil spec reproduces the
// historical construction exactly (same table size, hyper-parameters, and
// seed stream). A non-nil spec inherits the surrounding Params as defaults
// for unset tabular fields, then goes through rl.NewPolicy; the spec was
// validated on the config path, so a failure here is a programming error
// and panics like the cache-policy registry does.
func buildPolicy(spec *rl.PolicySpec, p Params, h Hyper, seed uint64) rl.Policy {
	if spec == nil {
		return rl.NewAgent(rl.NewQTable(p.QStates, 2), h.Alpha, h.Gamma, h.Epsilon, seed)
	}
	sp := *spec
	if sp.Frozen == nil && (sp.Kind == rl.KindTabular || sp.Kind == "") {
		if sp.Kind == "" {
			sp.Kind = rl.KindTabular
		}
		if sp.States == 0 {
			sp.States = p.QStates
		}
		if sp.Alpha == 0 {
			sp.Alpha = h.Alpha
		}
		if sp.Gamma == 0 {
			sp.Gamma = h.Gamma
		}
		if sp.Epsilon == 0 {
			sp.Epsilon = h.Epsilon
		}
	}
	pol, err := rl.NewPolicy(sp, seed)
	if err != nil {
		panic(fmt.Sprintf("core: invalid policy spec: %v", err))
	}
	return pol
}

// Prediction carries the key and state/action pair so the outcome can be
// graded later (decision and training run as parallel processes, §4.4).
type Prediction struct {
	Key     uint64
	State   int
	Action  int
	OffChip bool
}

// Predict derives the missing line's state and selects the policy's action
// (Algorithm 3 lines 2-3).
func (p *DataPredictor) Predict(addr uint64) Prediction {
	d := p.policy.Act(addr)
	return Prediction{Key: addr, State: d.State, Action: d.Action, OffChip: d.Action == ActionOffChip}
}

// Learn grades the prediction against the actual data location and applies
// the policy update (Algorithm 3 lines 8-20). It returns the reward assigned.
func (p *DataPredictor) Learn(pred Prediction, actualOffChip bool) float64 {
	var r float64
	switch {
	case !actualOffChip && pred.Action == ActionOnChip:
		r = p.rewards.Hi
		p.Stats.PredOnCorrect++
	case !actualOffChip && pred.Action == ActionOffChip:
		r = p.rewards.Ho
		p.Stats.PredOffWrong++
	case actualOffChip && pred.Action == ActionOffChip:
		r = p.rewards.Mo
		p.Stats.PredOffCorrect++
	default: // off-chip, predicted on-chip
		r = p.rewards.Mi
		p.Stats.PredOnWrong++
	}
	// Bootstrap on the actual location's value in the same state
	// (Algorithm 3 lines 19-20).
	actual := ActionOnChip
	if actualOffChip {
		actual = ActionOffChip
	}
	next := p.policy.Value(pred.Key, pred.State, actual)
	p.policy.Learn(rl.Transition{Key: pred.Key, State: pred.State, Action: pred.Action, Reward: r, Next: next})
	return r
}

// ExplorationRate reports the observed exploration fraction (0 for the
// deterministic policy kinds).
func (p *DataPredictor) ExplorationRate() float64 { return p.policy.ExplorationRate() }

// RegisterMetrics registers the prediction quadrant counters, per-interval
// accuracy/precision/recall (off-chip = positive class), and the policy's
// own metrics — the time-resolved view of the Fig 12 study and of RL
// convergence.
func (p *DataPredictor) RegisterMetrics(s *telemetry.Scope) {
	st := &p.Stats
	s.Counter("pred_on_correct", &st.PredOnCorrect)
	s.Counter("pred_on_wrong", &st.PredOnWrong)
	s.Counter("pred_off_correct", &st.PredOffCorrect)
	s.Counter("pred_off_wrong", &st.PredOffWrong)
	s.Rate("accuracy",
		func() uint64 { return st.PredOnCorrect + st.PredOffCorrect },
		func() uint64 { return st.Total() })
	s.Rate("off_precision",
		func() uint64 { return st.PredOffCorrect },
		func() uint64 { return st.PredOffCorrect + st.PredOffWrong })
	s.Rate("off_recall",
		func() uint64 { return st.PredOffCorrect },
		func() uint64 { return st.PredOffCorrect + st.PredOnWrong })
	p.policy.RegisterMetrics(s.Scope("agent"))
}

// Policy exposes the underlying decision engine (for freezing, snapshots,
// and the offline training loop).
func (p *DataPredictor) Policy() rl.Policy { return p.policy }

// AttachRecorder tees every future Learn transition to sink — the hook the
// transition-log dump and in-process trainers use.
func (p *DataPredictor) AttachRecorder(sink func(rl.Transition)) {
	p.policy = rl.WithRecorder(p.policy, sink)
}

// Table exposes the Q-table when the policy is tabular (for quantization
// studies and tests); nil for other policy kinds.
func (p *DataPredictor) Table() *rl.QTable {
	if ag, ok := p.policy.(*rl.Agent); ok {
		return ag.Table
	}
	return nil
}

// Reset discards the learned policy state (crash model: the predictor's
// SRAM state is volatile and not checkpointed; frozen policies model ROM
// and survive). Statistics are kept — they describe the run, not the
// hardware.
func (p *DataPredictor) Reset() { p.policy.Reset() }

// LocalityPredictor is the RL-based CTR locality predictor (Algorithm 1):
// on every CTR access it classifies the counter block as good or bad
// locality; the CET grades those classifications over a temporal window.
type LocalityPredictor struct {
	policy  rl.Policy
	cet     *CET
	rewards CtrRewards

	Stats CtrStats
}

// CtrStats decomposes classifications for the Fig 13 study.
type CtrStats struct {
	PredGood  uint64
	PredBad   uint64
	CETHits   uint64
	CETMisses uint64
	Evictions uint64
}

// GoodFraction is the share of CTR accesses classified good locality.
func (s CtrStats) GoodFraction() float64 {
	t := s.PredGood + s.PredBad
	if t == 0 {
		return 0
	}
	return float64(s.PredGood) / float64(t)
}

// NewLocalityPredictor builds the predictor with its CET: tabular by
// default, or the policy Params.CtrPolicy selects.
func NewLocalityPredictor(p Params) *LocalityPredictor {
	return &LocalityPredictor{
		policy:  buildPolicy(p.CtrPolicy, p, p.Ctr, p.Seed^0xC7C7),
		cet:     NewCET(p.CETEntries, p.CETWindow),
		rewards: p.CtrRewards,
	}
}

// CET exposes the evaluation table (for the Fig 9 sweep).
func (p *LocalityPredictor) CET() *CET { return p.cet }

// Policy exposes the underlying decision engine.
func (p *LocalityPredictor) Policy() rl.Policy { return p.policy }

// AttachRecorder tees every future Learn transition to sink.
func (p *LocalityPredictor) AttachRecorder(sink func(rl.Transition)) {
	p.policy = rl.WithRecorder(p.policy, sink)
}

// Table exposes the Q-table when the policy is tabular; nil otherwise.
func (p *LocalityPredictor) Table() *rl.QTable {
	if ag, ok := p.policy.(*rl.Agent); ok {
		return ag.Table
	}
	return nil
}

// Reset discards the learned policy state and the CET contents (crash
// model: both live in volatile SRAM). Statistics are kept.
func (p *LocalityPredictor) Reset() {
	p.policy.Reset()
	p.cet.Clear()
}

// RegisterMetrics registers the locality classification counters, the
// per-interval good-locality share and CET hit rate, and the policy's own
// metrics — the time-resolved view of the Fig 13 study.
func (p *LocalityPredictor) RegisterMetrics(s *telemetry.Scope) {
	st := &p.Stats
	s.Counter("pred_good", &st.PredGood)
	s.Counter("pred_bad", &st.PredBad)
	s.Counter("cet_hits", &st.CETHits)
	s.Counter("cet_misses", &st.CETMisses)
	s.Counter("cet_evictions", &st.Evictions)
	s.Rate("good_fraction",
		func() uint64 { return st.PredGood },
		func() uint64 { return st.PredGood + st.PredBad })
	s.Rate("cet_hit_rate",
		func() uint64 { return st.CETHits },
		func() uint64 { return st.CETHits + st.CETMisses })
	p.policy.RegisterMetrics(s.Scope("agent"))
}

// Classification is the predictor's output for one CTR access: the
// good/bad locality tag and the 8-bit confidence score the LCR-CTR cache
// stores with the line.
type Classification struct {
	Good  bool
	Score uint8
}

// Observe runs Algorithm 1 for one CTR access, identified by its counter
// block index: decide, grade against the CET, update the policy, insert
// into the CET, and process any CET eviction.
func (p *LocalityPredictor) Observe(ctrBlock uint64) Classification {
	key := ctrBlock << 6
	d := p.policy.Act(key)
	s, a := d.State, d.Action
	good := a == ActionGoodLocality
	if good {
		p.Stats.PredGood++
	} else {
		p.Stats.PredBad++
	}

	// Training: grade against the CET neighbourhood (lines 9-15).
	var r float64
	if p.cet.HitNearby(ctrBlock) {
		p.Stats.CETHits++
		if good {
			r = p.rewards.Hg
		} else {
			r = p.rewards.Hb
		}
	} else {
		p.Stats.CETMisses++
		if good {
			r = p.rewards.Mg
		} else {
			r = p.rewards.Mb
		}
	}

	// Bootstrap on the CET head (lines 16-17).
	var next float64
	if head, ok := p.cet.Head(); ok {
		next = p.policy.Value(head.Block<<6, head.State, head.Action)
	}
	p.policy.Learn(rl.Transition{Key: key, State: s, Action: a, Reward: r, Next: next})

	// Insert and settle any eviction (lines 18-23).
	if ev, evicted := p.cet.Insert(ctrBlock, s, a); evicted {
		p.Stats.Evictions++
		var re float64
		if ev.Action == ActionGoodLocality {
			re = p.rewards.Eg
		} else {
			re = p.rewards.Eb
		}
		p.policy.Learn(rl.Transition{Key: ev.Block << 6, State: ev.State, Action: ev.Action, Reward: re, Next: next})
	}

	return Classification{Good: good, Score: p.policy.Score(key, s, a)}
}
