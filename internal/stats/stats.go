// Package stats renders experiment results as aligned text tables and CSV,
// the output format of the cosmos-bench harness.
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table builder.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; values are formatted with %v, floats with 3 decimals.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Write(&b)
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values: cells containing
// commas, quotes or newlines are quoted with embedded quotes doubled
// (telemetry scope names and free-form labels may contain any of them).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// csvEscape quotes a cell if it contains a comma, quote, CR or LF.
func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// Ratio formats a speedup/slowdown ratio.
func Ratio(f float64) string { return fmt.Sprintf("%.3fx", f) }
