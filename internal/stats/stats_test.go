package stats

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.Row("a", 1)
	tb.Row("longer-name", 0.12345)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "0.123") {
		t.Error("float not formatted to 3 decimals")
	}
	// Columns align: "value" starts at the same offset in every row.
	idx := strings.Index(lines[1], "value")
	if idx < 0 {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[3][idx:], "1") {
		t.Errorf("misaligned column:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.Row("x", 2)
	csv := tb.CSV()
	if csv != "a,b\nx,2\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "metric,with,commas", "value")
	tb.Row(`say "hi"`, "a,b")
	tb.Row("multi\nline", "plain")
	out := tb.CSV()
	want := "\"metric,with,commas\",value\n" +
		"\"say \"\"hi\"\"\",\"a,b\"\n" +
		"\"multi\nline\",plain\n"
	if out != want {
		t.Fatalf("csv = %q, want %q", out, want)
	}
	// Round-trip through the stdlib reader to prove it re-parses.
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatalf("quoted CSV does not re-parse: %v", err)
	}
	if recs[1][0] != `say "hi"` || recs[1][1] != "a,b" {
		t.Errorf("round-trip row = %v", recs[1])
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.256) != "25.6%" {
		t.Errorf("Pct: %s", Pct(0.256))
	}
	if Ratio(1.25) != "1.250x" {
		t.Errorf("Ratio: %s", Ratio(1.25))
	}
}
