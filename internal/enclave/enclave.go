// Package enclave is a functional (bit-accurate, not timing) implementation
// of AES-CTR secure memory as described in §2.1 of the paper: every 64-byte
// line is encrypted with a one-time pad AES_Enc(PA ‖ CTR), authenticated
// with a MAC = Hash(ciphertext ‖ PA ‖ CTR), and the counters are protected
// by a real Merkle tree whose root stays on-chip. Reads detect data
// tampering, MAC forgery, counter tampering and replay. The package also
// handles MorphCtr counter overflow by re-encrypting the live lines of the
// overflowing block.
//
// The timing simulator (internal/secmem, internal/sim) models the latencies
// of this machinery; this package executes it for real, and the two are
// cross-checked in tests.
package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"cosmos/internal/ctr"
	"cosmos/internal/integrity"
	"cosmos/internal/memsys"
)

// LineSize is the protected granularity (one cache line).
const LineSize = memsys.LineSize

// Line is one 64-byte plaintext or ciphertext block.
type Line = [LineSize]byte

// MAC is a truncated 64-bit authentication tag, matching the paper's
// "64 bits each" MAC configuration (Table 3).
type MAC = [8]byte

// Errors reported by Read when verification fails.
var (
	ErrMACMismatch    = errors.New("enclave: MAC verification failed (data or metadata tampered)")
	ErrTreeMismatch   = errors.New("enclave: Merkle tree verification failed (counter tampered or replayed)")
	ErrOutOfRange     = errors.New("enclave: address out of range")
	ErrNotLineAligned = errors.New("enclave: address not line aligned")
)

// Memory is an encrypted, integrity-protected memory. All stored state —
// ciphertext, MACs, counters and interior tree nodes — is conceptually in
// untrusted DRAM and can be tampered with through the Tamper* methods; only
// the AES key and the tree root are trusted.
type Memory struct {
	size   uint64
	block  cipher.Block
	lines  map[uint64]Line // ciphertext per line number
	macs   map[uint64]MAC
	ctrs   *ctr.Store
	tree   *integrity.HashTree
	layout *integrity.SecureLayout

	// Stats counts crypto operations for the examples.
	Stats Stats
}

// Stats counts functional secure-memory events.
type Stats struct {
	Reads         uint64
	Writes        uint64
	ReEncryptions uint64
	ReEncLines    uint64
	VerifyFails   uint64
}

// New creates a protected memory of size bytes (rounded up to a counter
// block) keyed by the 16-byte AES key, using the given counter scheme.
func New(size uint64, key []byte, scheme ctr.Scheme) (*Memory, error) {
	if size == 0 {
		return nil, errors.New("enclave: zero size")
	}
	blk, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("enclave: %w", err)
	}
	store := ctr.NewStore(scheme)
	layout := integrity.NewSecureLayout(size, scheme.LinesPerBlock)
	m := &Memory{
		size:   size,
		block:  blk,
		lines:  make(map[uint64]Line),
		macs:   make(map[uint64]MAC),
		ctrs:   store,
		tree:   integrity.NewHashTree(scheme.CtrBlocksFor(size), 8),
		layout: layout,
	}
	return m, nil
}

// Size returns the protected capacity in bytes.
func (m *Memory) Size() uint64 { return m.size }

// Root returns the trusted Merkle root (e.g. for attestation display).
func (m *Memory) Root() integrity.Digest { return m.tree.Root() }

func (m *Memory) checkAddr(addr memsys.Addr) (uint64, error) {
	if uint64(addr)%LineSize != 0 {
		return 0, ErrNotLineAligned
	}
	if uint64(addr) >= m.size {
		return 0, ErrOutOfRange
	}
	return addr.Line(), nil
}

// pad generates the one-time pad AES_Enc(PA ‖ CTR_M ‖ CTR_m) for a 64-byte
// line: four AES blocks keyed by the line address, major, minor and block
// ordinal.
func (m *Memory) pad(line uint64, major uint64, minor uint32) Line {
	var out Line
	var in [16]byte
	for i := 0; i < LineSize/16; i++ {
		binary.LittleEndian.PutUint64(in[0:], line<<memsys.LineOffsetBits) // PA
		binary.LittleEndian.PutUint32(in[8:], minor)
		binary.LittleEndian.PutUint32(in[12:], uint32(i))
		// fold the major counter into the PA word's upper entropy
		binary.LittleEndian.PutUint64(in[0:], (line<<memsys.LineOffsetBits)^(major<<1)^(major>>7))
		m.block.Encrypt(out[i*16:(i+1)*16], in[:])
	}
	return out
}

func xorLine(a, b Line) Line {
	var out Line
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// mac computes Hash(ciphertext ‖ PA ‖ CTR) truncated to 64 bits.
func (m *Memory) mac(line uint64, ct Line, major uint64, minor uint32) MAC {
	h := sha256.New()
	h.Write(ct[:])
	var meta [20]byte
	binary.LittleEndian.PutUint64(meta[0:], line<<memsys.LineOffsetBits)
	binary.LittleEndian.PutUint64(meta[8:], major)
	binary.LittleEndian.PutUint32(meta[16:], minor)
	h.Write(meta[:])
	var out MAC
	copy(out[:], h.Sum(nil))
	return out
}

func (m *Memory) leafDigest(blockIdx uint64) integrity.Digest {
	return integrity.LeafDigest(m.ctrs.BlockDigestInput(blockIdx))
}

// Write encrypts and stores one line, incrementing its counter first (the
// anti-replay timestamping of §1) and updating the MAC and Merkle tree. A
// counter overflow transparently re-encrypts the live lines of the block
// under the new major counter.
func (m *Memory) Write(addr memsys.Addr, plain Line) error {
	line, err := m.checkAddr(addr)
	if err != nil {
		return err
	}
	m.Stats.Writes++

	blockIdx := m.ctrs.BlockOf(line)
	if m.ctrs.WillOverflow(line) {
		if err := m.reEncrypt(blockIdx, line); err != nil {
			return err
		}
	}
	m.ctrs.Increment(line)
	major, minor := m.ctrs.Value(line)
	ct := xorLine(plain, m.pad(line, major, minor))
	m.lines[line] = ct
	m.macs[line] = m.mac(line, ct, major, minor)
	m.tree.SetLeaf(blockIdx, m.leafDigest(blockIdx))
	return nil
}

// reEncrypt decrypts every live line of the block under the old counters
// and re-encrypts under the post-overflow values, exactly the background
// work the timing model charges as extra 64B DRAM requests.
func (m *Memory) reEncrypt(blockIdx, trigger uint64) error {
	live := m.ctrs.LiveLines(blockIdx)
	plains := make(map[uint64]Line, len(live))
	for _, l := range live {
		major, minor := m.ctrs.Value(l)
		ct, ok := m.lines[l]
		if !ok {
			continue
		}
		plains[l] = xorLine(ct, m.pad(l, major, minor))
	}
	// Advance the major counter by overflowing through the store.
	ov, _ := m.ctrs.Increment(trigger)
	if !ov {
		return errors.New("enclave: internal: expected overflow")
	}
	m.Stats.ReEncryptions++
	for l, p := range plains {
		if l == trigger {
			continue // rewritten by the caller with the new data
		}
		m.Stats.ReEncLines++
		major, minor := m.ctrs.Value(l)
		ct := xorLine(p, m.pad(l, major, minor))
		m.lines[l] = ct
		m.macs[l] = m.mac(l, ct, major, minor)
	}
	m.tree.SetLeaf(blockIdx, m.leafDigest(blockIdx))
	return nil
}

// Read fetches, verifies and decrypts one line. It returns ErrTreeMismatch
// if the counter block fails Merkle verification (tamper/replay) and
// ErrMACMismatch if the ciphertext fails authentication.
func (m *Memory) Read(addr memsys.Addr) (Line, error) {
	var zero Line
	line, err := m.checkAddr(addr)
	if err != nil {
		return zero, err
	}
	m.Stats.Reads++

	blockIdx := m.ctrs.BlockOf(line)
	if !m.ctrs.BlockExists(blockIdx) {
		// No write ever landed in this counter block: the whole block
		// reads as zero and there is nothing to verify yet.
		return zero, nil
	}
	if !m.tree.Verify(blockIdx, m.leafDigest(blockIdx)) {
		m.Stats.VerifyFails++
		return zero, ErrTreeMismatch
	}
	major, minor := m.ctrs.Value(line)
	ct, written := m.lines[line]
	if !written {
		// Never written: defined to read as zero.
		return zero, nil
	}
	if m.mac(line, ct, major, minor) != m.macs[line] {
		m.Stats.VerifyFails++
		return zero, ErrMACMismatch
	}
	return xorLine(ct, m.pad(line, major, minor)), nil
}

// --- attacker surface (fault injection for tests and demos) ---

// TamperCiphertext flips stored ciphertext bytes, modelling a physical
// attacker writing DRAM.
func (m *Memory) TamperCiphertext(addr memsys.Addr, mutate func(*Line)) error {
	line, err := m.checkAddr(addr)
	if err != nil {
		return err
	}
	ct := m.lines[line]
	mutate(&ct)
	m.lines[line] = ct
	return nil
}

// TamperMAC overwrites the stored MAC for a line.
func (m *Memory) TamperMAC(addr memsys.Addr, tag MAC) error {
	line, err := m.checkAddr(addr)
	if err != nil {
		return err
	}
	m.macs[line] = tag
	return nil
}

// Snapshot captures the ciphertext+MAC of a line so a test can later replay
// it (the classic replay attack the Merkle tree must defeat).
func (m *Memory) Snapshot(addr memsys.Addr) (Line, MAC, error) {
	line, err := m.checkAddr(addr)
	if err != nil {
		return Line{}, MAC{}, err
	}
	return m.lines[line], m.macs[line], nil
}

// BlockState captures everything an attacker can roll back for one counter
// block: the counter values themselves and the stored (untrusted) tree leaf.
type BlockState struct {
	major  uint64
	minors []uint32
	leaf   integrity.Digest
}

// SnapshotBlock captures the full untrusted state of the counter block
// covering addr, for use with Replay.
func (m *Memory) SnapshotBlock(addr memsys.Addr) (BlockState, error) {
	line, err := m.checkAddr(addr)
	if err != nil {
		return BlockState{}, err
	}
	bi := m.ctrs.BlockOf(line)
	maj, min := m.ctrs.SnapshotBlock(bi)
	return BlockState{major: maj, minors: min, leaf: m.leafDigest(bi)}, nil
}

// Replay performs a complete replay attack against one line: it restores a
// previously captured ciphertext+MAC pair, rolls the counters back to their
// stale values AND rewrites the stored tree leaf — everything an attacker
// with full DRAM access can do. Only the on-chip root remains out of reach,
// and it is what catches the attack.
func (m *Memory) Replay(addr memsys.Addr, ct Line, tag MAC, stale BlockState) error {
	line, err := m.checkAddr(addr)
	if err != nil {
		return err
	}
	bi := m.ctrs.BlockOf(line)
	m.lines[line] = ct
	m.macs[line] = tag
	m.ctrs.RestoreBlock(bi, stale.major, stale.minors)
	m.tree.CorruptNode(0, bi, stale.leaf)
	return nil
}

// LeafDigestOf exposes the current leaf digest for Snapshot/Replay tests.
func (m *Memory) LeafDigestOf(addr memsys.Addr) (integrity.Digest, error) {
	line, err := m.checkAddr(addr)
	if err != nil {
		return integrity.Digest{}, err
	}
	return m.leafDigest(m.ctrs.BlockOf(line)), nil
}

// CounterOf reports the (major, minor) counter for a line (for examples).
func (m *Memory) CounterOf(addr memsys.Addr) (major uint64, minor uint32, err error) {
	line, err := m.checkAddr(addr)
	if err != nil {
		return 0, 0, err
	}
	major, minor = m.ctrs.Value(line)
	return major, minor, nil
}
