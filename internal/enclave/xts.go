package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"

	"cosmos/internal/memsys"
)

// XTSMemory is an AES-XTS-style encrypted memory, the counter-free scheme
// used by SGXv2 and AMD SEV that the paper discusses in §2.1. It derives a
// per-location tweak from the physical address, so it needs no counters, no
// counter cache and no Merkle tree — but, as the paper notes, it provides
// no integrity or freshness: identical plaintext at the same address always
// encrypts to identical ciphertext (the ciphertext side channel of
// CIPHERLEAKS), and replayed ciphertext decrypts cleanly. The tests
// demonstrate both weaknesses against the CTR+MT Memory, reproducing the
// paper's argument for the more expensive design.
type XTSMemory struct {
	size     uint64
	dataKey  cipher.Block
	tweakKey cipher.Block
	lines    map[uint64]Line

	Stats Stats
}

// NewXTS creates an XTS-protected memory with independent data and tweak
// keys (the two-key model of §2.1).
func NewXTS(size uint64, dataKey, tweakKey []byte) (*XTSMemory, error) {
	if size == 0 {
		return nil, errors.New("enclave: zero size")
	}
	dk, err := aes.NewCipher(dataKey)
	if err != nil {
		return nil, err
	}
	tk, err := aes.NewCipher(tweakKey)
	if err != nil {
		return nil, err
	}
	return &XTSMemory{size: size, dataKey: dk, tweakKey: tk, lines: make(map[uint64]Line)}, nil
}

// Size returns the protected capacity.
func (m *XTSMemory) Size() uint64 { return m.size }

func (m *XTSMemory) checkAddr(addr memsys.Addr) (uint64, error) {
	if uint64(addr)%LineSize != 0 {
		return 0, ErrNotLineAligned
	}
	if uint64(addr) >= m.size {
		return 0, ErrOutOfRange
	}
	return addr.Line(), nil
}

// tweak derives the XEX tweak for block j of a line from the physical
// address (tweak = AES_Enc(K2, PA ‖ j)).
func (m *XTSMemory) tweak(line uint64, j int) [16]byte {
	var in, out [16]byte
	binary.LittleEndian.PutUint64(in[0:], line<<memsys.LineOffsetBits)
	binary.LittleEndian.PutUint32(in[8:], uint32(j))
	m.tweakKey.Encrypt(out[:], in[:])
	return out
}

func (m *XTSMemory) crypt(line uint64, in Line, encrypt bool) Line {
	var out Line
	var buf [16]byte
	for j := 0; j < LineSize/16; j++ {
		tw := m.tweak(line, j)
		for k := 0; k < 16; k++ {
			buf[k] = in[j*16+k] ^ tw[k]
		}
		if encrypt {
			m.dataKey.Encrypt(buf[:], buf[:])
		} else {
			m.dataKey.Decrypt(buf[:], buf[:])
		}
		for k := 0; k < 16; k++ {
			out[j*16+k] = buf[k] ^ tw[k]
		}
	}
	return out
}

// Write encrypts and stores one line. No counter is consumed and no
// metadata is updated — the efficiency XTS trades integrity for.
func (m *XTSMemory) Write(addr memsys.Addr, plain Line) error {
	line, err := m.checkAddr(addr)
	if err != nil {
		return err
	}
	m.Stats.Writes++
	m.lines[line] = m.crypt(line, plain, true)
	return nil
}

// Read decrypts one line. There is no verification to fail: tampered or
// replayed ciphertext decrypts without any error signal.
func (m *XTSMemory) Read(addr memsys.Addr) (Line, error) {
	var zero Line
	line, err := m.checkAddr(addr)
	if err != nil {
		return zero, err
	}
	m.Stats.Reads++
	ct, ok := m.lines[line]
	if !ok {
		return zero, nil
	}
	return m.crypt(line, ct, false), nil
}

// Snapshot captures the raw ciphertext of a line (attacker's view of DRAM).
func (m *XTSMemory) Snapshot(addr memsys.Addr) (Line, error) {
	line, err := m.checkAddr(addr)
	if err != nil {
		return Line{}, err
	}
	return m.lines[line], nil
}

// Restore writes raw ciphertext back — the replay attack, which XTS cannot
// detect.
func (m *XTSMemory) Restore(addr memsys.Addr, ct Line) error {
	line, err := m.checkAddr(addr)
	if err != nil {
		return err
	}
	m.lines[line] = ct
	return nil
}
