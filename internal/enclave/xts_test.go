package enclave

import (
	"testing"

	"cosmos/internal/ctr"
	"cosmos/internal/memsys"
)

func newXTS(t *testing.T) *XTSMemory {
	t.Helper()
	m, err := NewXTS(1<<20, []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestXTSRoundTrip(t *testing.T) {
	m := newXTS(t)
	p := lineOf("xts protected data")
	if err := m.Write(0x400, p); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x400)
	if err != nil || got != p {
		t.Fatalf("round trip: %v", err)
	}
	ct, _ := m.Snapshot(0x400)
	if ct == p {
		t.Fatal("XTS did not encrypt")
	}
}

func TestXTSSpatialUniqueness(t *testing.T) {
	// Different addresses → different tweaks → different ciphertext.
	m := newXTS(t)
	p := lineOf("same plaintext")
	m.Write(0, p)
	m.Write(64, p)
	a, _ := m.Snapshot(0)
	b, _ := m.Snapshot(64)
	if a == b {
		t.Fatal("XTS tweak failed to separate addresses")
	}
}

func TestXTSCiphertextSideChannel(t *testing.T) {
	// §2.1 / CIPHERLEAKS: rewriting identical plaintext at the same
	// address yields the *same* ciphertext under XTS — an observer of
	// DRAM learns when a value returns to a previous state. AES-CTR's
	// counters prevent exactly this.
	xts := newXTS(t)
	p := lineOf("account balance: 100")
	xts.Write(0x80, p)
	ct1, _ := xts.Snapshot(0x80)
	xts.Write(0x80, lineOf("account balance: 0"))
	xts.Write(0x80, p)
	ct2, _ := xts.Snapshot(0x80)
	if ct1 != ct2 {
		t.Fatal("XTS is deterministic per location; equal plaintext must repeat ciphertext")
	}

	ctrMem, err := New(1<<20, testKey, ctr.Morph())
	if err != nil {
		t.Fatal(err)
	}
	ctrMem.Write(0x80, p)
	c1, _, _ := ctrMem.Snapshot(0x80)
	ctrMem.Write(0x80, lineOf("account balance: 0"))
	ctrMem.Write(0x80, p)
	c2, _, _ := ctrMem.Snapshot(0x80)
	if c1 == c2 {
		t.Fatal("AES-CTR must never repeat ciphertext (counter advanced)")
	}
}

func TestXTSCannotDetectReplay(t *testing.T) {
	// The replay the Merkle tree catches in TestDetectsReplayAttack goes
	// completely unnoticed under XTS: the stale balance decrypts cleanly.
	m := newXTS(t)
	addr := memsys.Addr(0x400)
	rich := lineOf("balance=100")
	m.Write(addr, rich)
	stale, _ := m.Snapshot(addr)

	m.Write(addr, lineOf("balance=0"))
	m.Restore(addr, stale) // attacker replays old DRAM contents

	got, err := m.Read(addr)
	if err != nil {
		t.Fatalf("XTS has no integrity check to fail: %v", err)
	}
	if got != rich {
		t.Fatal("replayed ciphertext should decrypt to the stale value")
	}
	// This silent success IS the vulnerability — the paper's argument
	// for AES-CTR+MT despite its counter-cache cost.
}

func TestXTSCannotDetectTampering(t *testing.T) {
	m := newXTS(t)
	m.Write(0, lineOf("important"))
	ct, _ := m.Snapshot(0)
	ct[5] ^= 0xff
	m.Restore(0, ct)
	got, err := m.Read(0)
	if err != nil {
		t.Fatal("XTS read never errors")
	}
	if got == lineOf("important") {
		t.Fatal("tampering should at least garble the plaintext")
	}
}

func TestXTSValidation(t *testing.T) {
	m := newXTS(t)
	if err := m.Write(3, Line{}); err != ErrNotLineAligned {
		t.Fatal("alignment check")
	}
	if _, err := m.Read(1 << 20); err != ErrOutOfRange {
		t.Fatal("range check")
	}
	if _, err := NewXTS(0, testKey, testKey); err == nil {
		t.Fatal("zero size")
	}
	if _, err := NewXTS(64, []byte("bad"), testKey); err == nil {
		t.Fatal("bad data key")
	}
	if _, err := NewXTS(64, testKey, []byte("bad")); err == nil {
		t.Fatal("bad tweak key")
	}
	if m.Size() != 1<<20 {
		t.Fatal("size")
	}
	if got, err := m.Read(0x9000); err != nil || got != (Line{}) {
		t.Fatal("unwritten XTS line reads zero")
	}
}
