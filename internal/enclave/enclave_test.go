package enclave

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"cosmos/internal/ctr"
	"cosmos/internal/memsys"
)

var testKey = []byte("0123456789abcdef")

func newMem(t *testing.T, scheme ctr.Scheme) *Memory {
	t.Helper()
	m, err := New(1<<20, testKey, scheme)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func lineOf(s string) Line {
	var l Line
	copy(l[:], s)
	return l
}

func TestWriteReadRoundTrip(t *testing.T) {
	m := newMem(t, ctr.Morph())
	want := lineOf("hello secure world")
	if err := m.Write(0x1000, want); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("decrypted plaintext differs")
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	m := newMem(t, ctr.Morph())
	plain := lineOf("confidential data!")
	m.Write(0x40, plain)
	ct, _, err := m.Snapshot(0x40)
	if err != nil {
		t.Fatal(err)
	}
	if ct == plain {
		t.Fatal("ciphertext equals plaintext — no encryption happened")
	}
	if bytes.Contains(ct[:], []byte("confidential")) {
		t.Fatal("plaintext leaked into ciphertext")
	}
}

func TestSameDataDifferentCiphertextAcrossWrites(t *testing.T) {
	// Counter-mode freshness: rewriting identical plaintext must yield a
	// different ciphertext (the counter advanced).
	m := newMem(t, ctr.Morph())
	p := lineOf("same bytes")
	m.Write(0, p)
	ct1, _, _ := m.Snapshot(0)
	m.Write(0, p)
	ct2, _, _ := m.Snapshot(0)
	if ct1 == ct2 {
		t.Fatal("OTP reuse: identical ciphertext for successive writes")
	}
}

func TestSameDataDifferentAddressDifferentCiphertext(t *testing.T) {
	// Spatial uniqueness: the PA is folded into the pad.
	m := newMem(t, ctr.Morph())
	p := lineOf("same bytes")
	m.Write(0, p)
	m.Write(64, p)
	ct1, _, _ := m.Snapshot(0)
	ct2, _, _ := m.Snapshot(64)
	if ct1 == ct2 {
		t.Fatal("identical ciphertext at different addresses")
	}
}

func TestUnwrittenLineReadsZero(t *testing.T) {
	m := newMem(t, ctr.Morph())
	got, err := m.Read(0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if got != (Line{}) {
		t.Fatal("unwritten line must read zero")
	}
}

func TestAddressValidation(t *testing.T) {
	m := newMem(t, ctr.Morph())
	if err := m.Write(33, Line{}); !errors.Is(err, ErrNotLineAligned) {
		t.Fatalf("unaligned write: %v", err)
	}
	if _, err := m.Read(1 << 20); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range read: %v", err)
	}
}

func TestDetectsCiphertextTampering(t *testing.T) {
	m := newMem(t, ctr.Morph())
	m.Write(0x80, lineOf("integrity matters"))
	m.TamperCiphertext(0x80, func(l *Line) { l[5] ^= 0xff })
	if _, err := m.Read(0x80); !errors.Is(err, ErrMACMismatch) {
		t.Fatalf("tampered ciphertext: err = %v, want MAC mismatch", err)
	}
	if m.Stats.VerifyFails == 0 {
		t.Fatal("verify failure not counted")
	}
}

func TestDetectsMACForgery(t *testing.T) {
	m := newMem(t, ctr.Morph())
	m.Write(0x80, lineOf("x"))
	m.TamperMAC(0x80, MAC{1, 2, 3, 4, 5, 6, 7, 8})
	if _, err := m.Read(0x80); !errors.Is(err, ErrMACMismatch) {
		t.Fatalf("forged MAC: err = %v", err)
	}
}

func TestDetectsReplayAttack(t *testing.T) {
	m := newMem(t, ctr.Morph())
	addr := memsys.Addr(0x400)

	m.Write(addr, lineOf("balance=100"))
	oldCT, oldMAC, _ := m.Snapshot(addr)
	oldBlock, err := m.SnapshotBlock(addr)
	if err != nil {
		t.Fatal(err)
	}

	m.Write(addr, lineOf("balance=0"))

	// Full replay: attacker restores stale ciphertext, MAC, counters and
	// the stored tree leaf.
	if err := m.Replay(addr, oldCT, oldMAC, oldBlock); err != nil {
		t.Fatal(err)
	}
	_, err = m.Read(addr)
	if !errors.Is(err, ErrTreeMismatch) {
		t.Fatalf("replay attack: err = %v, want tree mismatch", err)
	}
}

func TestReplayOfCurrentStateStillReads(t *testing.T) {
	// Sanity: "replaying" the *current* state is a no-op and must verify.
	m := newMem(t, ctr.Morph())
	addr := memsys.Addr(0x400)
	m.Write(addr, lineOf("v1"))
	ct, tag, _ := m.Snapshot(addr)
	blk, _ := m.SnapshotBlock(addr)
	m.Replay(addr, ct, tag, blk)
	got, err := m.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != lineOf("v1") {
		t.Fatal("current-state replay should decrypt normally")
	}
}

func TestCounterOverflowReEncryptsSiblings(t *testing.T) {
	// Split scheme (capacity 127) keeps the test fast. Write one sibling
	// once, then hammer another line past overflow; the sibling must
	// still decrypt correctly afterwards.
	m := newMem(t, ctr.Split())
	sib := memsys.Addr(64)
	hot := memsys.Addr(0)
	m.Write(sib, lineOf("sibling survives"))
	for i := 0; i < 130; i++ {
		if err := m.Write(hot, lineOf("hot line")); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats.ReEncryptions == 0 {
		t.Fatal("expected at least one block re-encryption")
	}
	got, err := m.Read(sib)
	if err != nil {
		t.Fatalf("sibling read after re-encryption: %v", err)
	}
	if got != lineOf("sibling survives") {
		t.Fatal("sibling plaintext corrupted by re-encryption")
	}
	maj, _, _ := m.CounterOf(hot)
	if maj == 0 {
		t.Fatal("major counter should have advanced")
	}
	got, err = m.Read(hot)
	if err != nil || got != lineOf("hot line") {
		t.Fatalf("hot line after overflow: %v", err)
	}
}

func TestRootChangesOnEveryWrite(t *testing.T) {
	m := newMem(t, ctr.Morph())
	r0 := m.Root()
	m.Write(0, lineOf("a"))
	r1 := m.Root()
	m.Write(8192, lineOf("b"))
	r2 := m.Root()
	if r0 == r1 || r1 == r2 || r0 == r2 {
		t.Fatal("root must change with every counter update")
	}
}

func TestManyLinesRoundTripProperty(t *testing.T) {
	m := newMem(t, ctr.Morph())
	f := func(lineIdx uint16, payload []byte) bool {
		addr := memsys.Addr(uint64(lineIdx) % (1 << 20 / 64) * 64)
		var p Line
		copy(p[:], payload)
		if err := m.Write(addr, p); err != nil {
			return false
		}
		got, err := m.Read(addr)
		return err == nil && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDifferentKeysDifferentCiphertext(t *testing.T) {
	m1, _ := New(4096, []byte("0123456789abcdef"), ctr.Morph())
	m2, _ := New(4096, []byte("fedcba9876543210"), ctr.Morph())
	p := lineOf("keyed")
	m1.Write(0, p)
	m2.Write(0, p)
	ct1, _, _ := m1.Snapshot(0)
	ct2, _, _ := m2.Snapshot(0)
	if ct1 == ct2 {
		t.Fatal("different keys must produce different ciphertext")
	}
}

func TestBadKeyRejected(t *testing.T) {
	if _, err := New(4096, []byte("short"), ctr.Morph()); err == nil {
		t.Fatal("5-byte AES key must be rejected")
	}
	if _, err := New(0, testKey, ctr.Morph()); err == nil {
		t.Fatal("zero size must be rejected")
	}
}

func TestStatsCounting(t *testing.T) {
	m := newMem(t, ctr.Morph())
	m.Write(0, Line{})
	m.Write(0, Line{})
	m.Read(0)
	if m.Stats.Writes != 2 || m.Stats.Reads != 1 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}
