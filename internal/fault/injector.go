package fault

import (
	"math"

	"cosmos/internal/integrity"
	"cosmos/internal/telemetry"
)

// Outcome is what the memory controller must do about one fetch after
// consulting the fault plane.
type Outcome struct {
	// Injected: this fetch drew a fault and the fetched value was corrupt.
	Injected bool
	// Detected: the integrity check caught the corruption (always true for
	// injected faults on covered kinds — detection is 100% by
	// construction, because the verify runs against the functional shadow
	// the injection corrupted).
	Detected bool
	// Silent: the corruption had no integrity machinery to catch it (data
	// faults on an unprotected design or outside the secure region).
	Silent bool
	// Retries is how many re-fetch/re-verify attempts the controller must
	// charge on the timing path: 1 for a transient fault (the retry
	// succeeds), MaxRetries for a persistent one (every retry fails).
	Retries uint64
	// Poisoned: the retries were exhausted and the line is quarantined —
	// graceful degradation instead of a halt. Poisoned lines never fault
	// again (there is nothing left to corrupt) and poisoned counter lines
	// force a re-encryption of their block.
	Poisoned bool
}

// Event is one integrity violation, published to the Notify hook (SSE
// "fault" events, test logs).
type Event struct {
	Step    uint64 `json:"step"`
	Kind    string `json:"kind"`
	Line    uint64 `json:"line"`
	Addr    uint64 `json:"addr"`
	Outcome string `json:"outcome"` // "transient" | "poisoned" | "silent" | "crash"
	Retries uint64 `json:"retries"`
}

// Report is the flat counter set a fault campaign produces. It rides in
// sim.Results (comparable, so Results equality semantics are preserved) and
// its JSON field names match the telemetry metric names, which the obs
// bridge exposes as the cosmos_fault_* Prometheus families.
type Report struct {
	Injected          uint64 `json:"injected_total"`
	Detected          uint64 `json:"detected_total"`
	Silent            uint64 `json:"silent_total"`
	TransientRepaired uint64 `json:"transient_repaired_total"`
	Poisoned          uint64 `json:"poisoned_total"`
	Refetches         uint64 `json:"refetch_total"`
	RetryCycles       uint64 `json:"retry_cycles_total"`

	DataDetected uint64 `json:"data_detected_total"`
	CtrDetected  uint64 `json:"ctr_detected_total"`
	MACDetected  uint64 `json:"mac_detected_total"`
	MTDetected   uint64 `json:"mt_detected_total"`

	CrashStep       uint64 `json:"crash_step,omitempty"`
	RecoveryCycles  uint64 `json:"recovery_cycles,omitempty"`
	RecoveryFetches uint64 `json:"recovery_fetches,omitempty"`
	CrashLinesLost  uint64 `json:"crash_lines_lost,omitempty"`
}

// Injector draws the fault stream and runs the detect/retry/poison policy.
// It is attached to one secmem.Engine (single simulation, single
// goroutine); separate simulations build separate Injectors from the same
// Config and observe the same stream.
type Injector struct {
	cfg    Config
	thresh [numKinds]uint64 // rate mapped onto the full uint64 range; 0 = kind off

	maxRetries      uint64
	transientThresh uint64

	step    uint64
	crashed bool

	shadow   *integrity.Shadow
	poisoned map[uint64]bool

	rep Report

	// Notify, when non-nil, receives every integrity violation and the
	// crash event as it happens. Set it before the run starts.
	Notify func(Event)
}

// NewInjector builds an injector for cfg (which must Validate).
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rates, err := cfg.kindRates()
	if err != nil {
		return nil, err
	}
	in := &Injector{
		cfg:      cfg,
		shadow:   integrity.NewShadow(),
		poisoned: make(map[uint64]bool),
	}
	for k, r := range rates {
		in.thresh[k] = probThreshold(r)
	}
	in.maxRetries = uint64(cfg.MaxRetries)
	if in.maxRetries == 0 {
		in.maxRetries = DefaultMaxRetries
	}
	pct := cfg.TransientPct
	switch {
	case pct == 0:
		pct = DefaultTransientPct
	case pct < 0:
		pct = 0
	}
	in.transientThresh = probThreshold(float64(pct) / 100)
	return in, nil
}

// probThreshold maps a probability onto the uint64 draw range: a draw
// strictly below the threshold fires.
func probThreshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return math.MaxUint64
	}
	return uint64(p * float64(1<<63) * 2)
}

// Config returns the configuration the injector was built from.
func (in *Injector) Config() Config { return in.cfg }

// CrashDropRL reports whether a crash also clears the RL tables.
func (in *Injector) CrashDropRL() bool { return in.cfg.CrashDropRL }

// BeginStep advances the fault stream to access number step. The simulator
// calls it once per access before any memory work; everything the access
// triggers (metadata walks, writebacks, retries) draws at this coordinate.
func (in *Injector) BeginStep(step uint64) { in.step = step }

// CrashDue reports whether the configured crash point fires at this step.
// It returns true exactly once.
func (in *Injector) CrashDue(step uint64) bool {
	return in.cfg.CrashAt != 0 && !in.crashed && step >= in.cfg.CrashAt
}

// RecordCrash books the recovery cost of the crash the engine just
// replayed and publishes the crash event.
func (in *Injector) RecordCrash(step, cycles, fetches, linesLost uint64) {
	in.crashed = true
	in.rep.CrashStep = step
	in.rep.RecoveryCycles = cycles
	in.rep.RecoveryFetches = fetches
	in.rep.CrashLinesLost = linesLost
	if in.Notify != nil {
		in.Notify(Event{Step: step, Kind: "crash", Outcome: "crash", Retries: fetches})
	}
}

// AddRetryCycles accumulates the measured DRAM latency of fault retries
// (charged by the engine, which owns the DRAM model).
func (in *Injector) AddRetryCycles(cycles uint64) { in.rep.RetryCycles += cycles }

// pcgDraw is one draw of the fault stream at (seed^salt, kind, step, line):
// the coordinates are folded into a PCG-style LCG state (the PCG64
// multiplier) and finished with an avalanche output permutation so nearby
// coordinates decorrelate. Stateless by construction — the draw depends
// only on its inputs, never on call order.
func pcgDraw(seed, salt uint64, k Kind, step, line uint64) uint64 {
	const mul = 6364136223846793005
	s := seed ^ salt
	s = s*mul + (uint64(k)+1)*0x9E3779B97F4A7C15
	s = s*mul + step + 1
	s = s*mul + line + 1
	s ^= s >> 33
	s *= 0xFF51AFD7ED558CCD
	s ^= s >> 33
	s *= 0xC4CEB9FE1A85EC53
	s ^= s >> 33
	return s
}

// Salts separate the independent random decisions made per coordinate.
const (
	saltInject    = 0xC0FFEE
	saltTransient = 0xFACADE
)

// shadowKey folds (kind, line) into one shadow/poison key.
func shadowKey(k Kind, line uint64) uint64 {
	return uint64(k)<<60 | line&(1<<60-1)
}

// inWindow applies the configured step and address windows.
func (in *Injector) inWindow(line uint64) bool {
	if in.step < in.cfg.StepFrom || (in.cfg.StepTo != 0 && in.step >= in.cfg.StepTo) {
		return false
	}
	addr := line << 6
	if addr < in.cfg.AddrFrom || (in.cfg.AddrTo != 0 && addr >= in.cfg.AddrTo) {
		return false
	}
	return true
}

// OnFetch rolls the fault stream for one DRAM fetch of a kind-k object at
// the given line and runs the detection policy. detectable says whether the
// design has integrity machinery covering this object (false for data
// fetches on an unprotected design or outside the secure region — those
// corruptions are silent). The caller charges Outcome.Retries re-fetches on
// its timing path and honours Poisoned.
func (in *Injector) OnFetch(k Kind, line uint64, detectable bool) Outcome {
	th := in.thresh[k]
	if th == 0 || !in.inWindow(line) {
		return Outcome{}
	}
	key := shadowKey(k, line)
	if in.poisoned[key] {
		return Outcome{} // quarantined: nothing left to corrupt
	}
	draw := pcgDraw(in.cfg.Seed, saltInject, k, in.step, line)
	if draw >= th {
		return Outcome{}
	}

	// The fault materialises: corrupt the functional shadow with a
	// draw-derived nonzero mask, then verify the fetch against it.
	in.shadow.Corrupt(key, draw|1)
	in.rep.Injected++
	out := Outcome{Injected: true}

	if !detectable {
		// No counter/MAC/MT covers this object: the corruption is
		// consumed silently and stays resident in the shadow.
		in.rep.Silent++
		out.Silent = true
		in.emit(k, line, "silent", 0)
		return out
	}

	if _, ok := in.shadow.Check(key); ok {
		// Unreachable with a nonzero mask; kept as the honest verify.
		return out
	}
	out.Detected = true
	in.rep.Detected++
	in.countKind(k)

	if pcgDraw(in.cfg.Seed, saltTransient, k, in.step, line) < in.transientThresh {
		// Transient: one re-fetch returns a clean value.
		out.Retries = 1
		in.rep.Refetches++
		in.rep.TransientRepaired++
		in.shadow.Repair(key)
		in.emit(k, line, "transient", 1)
		return out
	}
	// Persistent: every retry re-reads the same corrupt cell; after the
	// bounded budget the line is poisoned and the value quarantined.
	out.Retries = in.maxRetries
	in.rep.Refetches += in.maxRetries
	out.Poisoned = true
	in.rep.Poisoned++
	in.poisoned[key] = true
	in.shadow.Repair(key) // quarantine: the region is retired, not trusted
	in.emit(k, line, "poisoned", in.maxRetries)
	return out
}

func (in *Injector) countKind(k Kind) {
	switch k {
	case KindData:
		in.rep.DataDetected++
	case KindCtr:
		in.rep.CtrDetected++
	case KindMAC:
		in.rep.MACDetected++
	case KindMT:
		in.rep.MTDetected++
	}
}

func (in *Injector) emit(k Kind, line uint64, outcome string, retries uint64) {
	if in.Notify == nil {
		return
	}
	in.Notify(Event{
		Step: in.step, Kind: k.String(), Line: line, Addr: line << 6,
		Outcome: outcome, Retries: retries,
	})
}

// Report snapshots the campaign counters.
func (in *Injector) Report() Report { return in.rep }

// PoisonedLines reports how many lines are currently quarantined.
func (in *Injector) PoisonedLines() int { return len(in.poisoned) }

// ShadowCorrupted reports how many objects currently fail verification
// (undetected silent corruptions).
func (in *Injector) ShadowCorrupted() int { return in.shadow.Corrupted() }

// ResetStats zeroes the report counters (warmup semantics) while keeping
// the poisoned set and shadow state.
func (in *Injector) ResetStats() { in.rep = Report{} }

// RegisterMetrics exposes the campaign counters under the given scope
// (conventionally the registry root's "fault" scope, so the Prometheus
// bridge emits them as the cosmos_fault_* families).
func (in *Injector) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("injected_total", &in.rep.Injected)
	s.Counter("detected_total", &in.rep.Detected)
	s.Counter("silent_total", &in.rep.Silent)
	s.Counter("transient_repaired_total", &in.rep.TransientRepaired)
	s.Counter("poisoned_total", &in.rep.Poisoned)
	s.Counter("refetch_total", &in.rep.Refetches)
	s.Counter("retry_cycles_total", &in.rep.RetryCycles)
	s.Counter("data_detected_total", &in.rep.DataDetected)
	s.Counter("ctr_detected_total", &in.rep.CtrDetected)
	s.Counter("mac_detected_total", &in.rep.MACDetected)
	s.Counter("mt_detected_total", &in.rep.MTDetected)
	s.Counter("recovery_cycles", &in.rep.RecoveryCycles)
	s.Counter("recovery_fetches", &in.rep.RecoveryFetches)
	if in.cfg.CrashAt != 0 {
		s.CounterFunc("crash_step", func() uint64 { return in.rep.CrashStep })
	}
	s.CounterFunc("shadow_corrupted", func() uint64 { return uint64(in.shadow.Corrupted()) })
	s.CounterFunc("poisoned_lines", func() uint64 { return uint64(len(in.poisoned)) })
}
