// Package fault is the deterministic fault-injection subsystem: a seeded
// injector that corrupts DRAM-resident objects (data lines, counter blocks,
// MAC entries, Merkle-tree nodes) as they are fetched, a functional shadow
// (internal/integrity.Shadow) that makes the corruption detectable rather
// than cosmetic, and a crash/restore point that drops the memory
// controller's volatile state mid-run.
//
// The fault stream is a pure function of (seed, kind, step, line): whether a
// given fetch faults never depends on call order, design point, worker
// count, or what faulted before. Every design evaluated under the same
// fault configuration therefore sees the same adversity, which is what
// makes cross-design recovery-cost comparisons meaningful.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies what object a fault corrupts.
type Kind uint8

const (
	// KindData corrupts a data cache line in DRAM.
	KindData Kind = iota
	// KindCtr corrupts an encryption-counter block.
	KindCtr
	// KindMAC corrupts a MAC entry.
	KindMAC
	// KindMT corrupts a Merkle-tree node.
	KindMT

	numKinds
)

var kindNames = [numKinds]string{"data", "ctr", "mac", "mt"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindByName resolves a kind name; the error lists the valid names.
func KindByName(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown kind %q (valid: %s)",
		name, strings.Join(kindNames[:], ", "))
}

// Config describes one fault campaign. It is part of the runner spec hash,
// so every field must keep a stable JSON encoding; the zero value (all
// fields omitted) means "no faults" and hashes identically to a spec
// without a fault section at all.
type Config struct {
	// Seed selects the fault stream. Two runs with equal Seed (and equal
	// rates/windows) draw identical faults at identical (kind, step, line)
	// coordinates.
	Seed uint64 `json:"seed,omitempty"`
	// Rate is the per-fetch fault probability applied to every enabled
	// kind that has no per-kind override in Kinds. 0 disables rate-driven
	// injection (CrashAt may still be set).
	Rate float64 `json:"rate,omitempty"`
	// Kinds selects which kinds fault, comma-separated, each optionally
	// carrying its own rate: "data,ctr:1e-4,mac,mt". Empty enables all
	// kinds at Rate.
	Kinds string `json:"kinds,omitempty"`
	// StepFrom/StepTo bound the injection window in access steps
	// (half-open; StepTo 0 = unbounded).
	StepFrom uint64 `json:"step_from,omitempty"`
	StepTo   uint64 `json:"step_to,omitempty"`
	// AddrFrom/AddrTo bound the injection window in byte addresses of the
	// fetched object (half-open; AddrTo 0 = unbounded). Metadata kinds are
	// filtered by their metadata addresses, which live above the data
	// region.
	AddrFrom uint64 `json:"addr_from,omitempty"`
	AddrTo   uint64 `json:"addr_to,omitempty"`
	// MaxRetries bounds the re-fetch/re-verify attempts spent on a
	// persistent fault before the line is poisoned. 0 means the default
	// (3).
	MaxRetries int `json:"max_retries,omitempty"`
	// TransientPct is the percentage of injected faults that are
	// transient (repaired by a single re-fetch). 0 means the default
	// (50); negative means none — every fault is persistent and ends in a
	// poisoned line.
	TransientPct int `json:"transient_pct,omitempty"`
	// CrashAt, when nonzero, crashes the memory controller just before
	// access number CrashAt: all volatile metadata state (counter caches,
	// MAC caches, prefetch marks) is lost and the recovery protocol's cost
	// is charged to every thread.
	CrashAt uint64 `json:"crash_at,omitempty"`
	// CrashDropRL also clears the RL predictor tables at the crash point,
	// modelling designs whose learned state is not checkpointed.
	CrashDropRL bool `json:"crash_drop_rl,omitempty"`
}

// DefaultMaxRetries is the bounded-retry budget when MaxRetries is 0.
const DefaultMaxRetries = 3

// DefaultTransientPct is the transient share when TransientPct is 0.
const DefaultTransientPct = 50

// Enabled reports whether the configuration injects anything at all. A
// disabled config must leave the simulator bit-identical to a fault-free
// run, so sim.New skips building an Injector entirely.
func (c *Config) Enabled() bool {
	if c == nil {
		return false
	}
	return c.Rate > 0 || c.CrashAt > 0
}

// Validate rejects configurations the injector cannot honour, with errors
// that name the offending field.
func (c Config) Validate() error {
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("fault: rate %g outside [0, 1]", c.Rate)
	}
	if _, err := c.kindRates(); err != nil {
		return err
	}
	if c.StepTo != 0 && c.StepTo <= c.StepFrom {
		return fmt.Errorf("fault: empty step window [%d, %d)", c.StepFrom, c.StepTo)
	}
	if c.AddrTo != 0 && c.AddrTo <= c.AddrFrom {
		return fmt.Errorf("fault: empty address window [%#x, %#x)", c.AddrFrom, c.AddrTo)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: negative max_retries %d", c.MaxRetries)
	}
	if c.TransientPct > 100 {
		return fmt.Errorf("fault: transient_pct %d above 100", c.TransientPct)
	}
	return nil
}

// kindRates resolves the Kinds spec into a per-kind probability table.
func (c Config) kindRates() ([numKinds]float64, error) {
	var rates [numKinds]float64
	if strings.TrimSpace(c.Kinds) == "" {
		for k := range rates {
			rates[k] = c.Rate
		}
		return rates, nil
	}
	for _, item := range strings.Split(c.Kinds, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, rateStr, hasRate := strings.Cut(item, ":")
		k, err := KindByName(strings.TrimSpace(name))
		if err != nil {
			return rates, err
		}
		r := c.Rate
		if hasRate {
			r, err = strconv.ParseFloat(strings.TrimSpace(rateStr), 64)
			if err != nil {
				return rates, fmt.Errorf("fault: bad rate in %q: %v", item, err)
			}
			if r < 0 || r > 1 {
				return rates, fmt.Errorf("fault: rate %g in %q outside [0, 1]", r, item)
			}
		}
		rates[k] = r
	}
	return rates, nil
}

// EnabledKinds lists the kinds with a nonzero rate, in kind order (a stable
// summary for logs and docs).
func (c Config) EnabledKinds() []string {
	rates, err := c.kindRates()
	if err != nil {
		return nil
	}
	var out []string
	for k, r := range rates {
		if r > 0 {
			out = append(out, Kind(k).String())
		}
	}
	return out
}
