package fault

import (
	"strings"
	"testing"
)

func TestEnabledNilSafe(t *testing.T) {
	var c *Config
	if c.Enabled() {
		t.Fatal("nil config reports enabled")
	}
	if (&Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if !(&Config{Rate: 0.1}).Enabled() {
		t.Fatal("rate-only config reports disabled")
	}
	if !(&Config{CrashAt: 100}).Enabled() {
		t.Fatal("crash-only config reports disabled")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring of the error
	}{
		{"rate above one", Config{Rate: 1.5}, "outside [0, 1]"},
		{"negative rate", Config{Rate: -0.1}, "outside [0, 1]"},
		{"unknown kind", Config{Rate: 0.1, Kinds: "data,bogus"}, `unknown kind "bogus"`},
		{"bad kind rate", Config{Kinds: "ctr:nope"}, "bad rate"},
		{"kind rate above one", Config{Kinds: "ctr:2"}, "outside [0, 1]"},
		{"empty step window", Config{Rate: 0.1, StepFrom: 10, StepTo: 5}, "empty step window"},
		{"empty addr window", Config{Rate: 0.1, AddrFrom: 64, AddrTo: 64}, "empty address window"},
		{"negative retries", Config{Rate: 0.1, MaxRetries: -1}, "max_retries"},
		{"transient above 100", Config{Rate: 0.1, TransientPct: 101}, "transient_pct"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted invalid config", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := (Config{Rate: 0.5, Kinds: "data, ctr:1e-4 ,mt", StepFrom: 5, StepTo: 100}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestKindRates(t *testing.T) {
	rates, err := Config{Rate: 0.25, Kinds: "data,ctr:1e-4,mt"}.kindRates()
	if err != nil {
		t.Fatal(err)
	}
	if rates[KindData] != 0.25 || rates[KindMT] != 0.25 {
		t.Fatalf("listed kinds without override should inherit Rate: %v", rates)
	}
	if rates[KindCtr] != 1e-4 {
		t.Fatalf("ctr override lost: %v", rates)
	}
	if rates[KindMAC] != 0 {
		t.Fatalf("unlisted kind should be off: %v", rates)
	}

	all, err := Config{Rate: 0.5}.kindRates()
	if err != nil {
		t.Fatal(err)
	}
	for k, r := range all {
		if r != 0.5 {
			t.Fatalf("empty Kinds should enable every kind at Rate: kind %d has %g", k, r)
		}
	}

	kinds := Config{Rate: 0.5, Kinds: "mt,data"}.EnabledKinds()
	if len(kinds) != 2 || kinds[0] != "data" || kinds[1] != "mt" {
		t.Fatalf("EnabledKinds not in kind order: %v", kinds)
	}
}

func TestKindByName(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Fatalf("KindByName(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := KindByName("rowhammer"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestDrawStateless is the determinism bedrock: a draw depends only on its
// coordinates, never on call order or interleaving.
func TestDrawStateless(t *testing.T) {
	type coord struct {
		k          Kind
		step, line uint64
	}
	coords := []coord{
		{KindData, 0, 0}, {KindCtr, 1, 7}, {KindMAC, 99, 12345},
		{KindMT, 7, 7}, {KindData, 7, 7},
	}
	first := make([]uint64, len(coords))
	for i, c := range coords {
		first[i] = pcgDraw(42, saltInject, c.k, c.step, c.line)
	}
	// Replay in reverse with unrelated draws interleaved.
	for i := len(coords) - 1; i >= 0; i-- {
		c := coords[i]
		pcgDraw(42, saltTransient, c.k, c.step+1, c.line)
		if got := pcgDraw(42, saltInject, c.k, c.step, c.line); got != first[i] {
			t.Fatalf("draw at %+v changed across call orders: %#x vs %#x", c, got, first[i])
		}
	}
	// Different kinds at the same (step, line) must decorrelate.
	if pcgDraw(42, saltInject, KindMT, 7, 7) == pcgDraw(42, saltInject, KindData, 7, 7) {
		t.Fatal("kind does not influence the draw")
	}
	// Different seeds must give different streams.
	if pcgDraw(1, saltInject, KindData, 7, 7) == pcgDraw(2, saltInject, KindData, 7, 7) {
		t.Fatal("seed does not influence the draw")
	}
}

func TestProbThresholdBounds(t *testing.T) {
	if probThreshold(0) != 0 {
		t.Fatal("rate 0 must never fire")
	}
	if probThreshold(1) != ^uint64(0) {
		t.Fatal("rate 1 must always fire")
	}
	half := probThreshold(0.5)
	if half < 1<<62 || half > 3<<62 {
		t.Fatalf("rate 0.5 threshold implausible: %#x", half)
	}
}

func TestOnFetchRateBounds(t *testing.T) {
	// Rate 1: every in-window fetch faults and (detectable) is detected.
	in, err := NewInjector(Config{Seed: 7, Rate: 1, TransientPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	in.BeginStep(3)
	out := in.OnFetch(KindCtr, 42, true)
	if !out.Injected || !out.Detected || !out.Poisoned {
		t.Fatalf("rate-1 persistent fetch: %+v", out)
	}
	if out.Retries != DefaultMaxRetries {
		t.Fatalf("persistent fault retries = %d, want %d", out.Retries, DefaultMaxRetries)
	}
	// The poisoned line is quarantined: it never faults again.
	in.BeginStep(4)
	if again := in.OnFetch(KindCtr, 42, true); again.Injected {
		t.Fatalf("poisoned line re-injected: %+v", again)
	}
	if in.PoisonedLines() != 1 {
		t.Fatalf("PoisonedLines = %d", in.PoisonedLines())
	}

	// Rate 0 via kind filter: a disabled kind never fires.
	off, err := NewInjector(Config{Seed: 7, Rate: 1, Kinds: "ctr"})
	if err != nil {
		t.Fatal(err)
	}
	off.BeginStep(0)
	for line := uint64(0); line < 1000; line++ {
		if out := off.OnFetch(KindData, line, true); out.Injected {
			t.Fatalf("disabled kind fired at line %d", line)
		}
	}
}

func TestOnFetchTransient(t *testing.T) {
	// TransientPct 100: every fault is repaired by one retry.
	in, err := NewInjector(Config{Seed: 11, Rate: 1, TransientPct: 100})
	if err != nil {
		t.Fatal(err)
	}
	in.BeginStep(0)
	out := in.OnFetch(KindData, 5, true)
	if !out.Injected || !out.Detected || out.Poisoned || out.Retries != 1 {
		t.Fatalf("transient fault: %+v", out)
	}
	if in.ShadowCorrupted() != 0 {
		t.Fatal("repaired fault left shadow corrupt")
	}
	rep := in.Report()
	if rep.TransientRepaired != 1 || rep.Refetches != 1 || rep.DataDetected != 1 {
		t.Fatalf("report after transient: %+v", rep)
	}
}

func TestOnFetchSilent(t *testing.T) {
	in, err := NewInjector(Config{Seed: 3, Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	in.Notify = func(ev Event) { events = append(events, ev) }
	in.BeginStep(9)
	out := in.OnFetch(KindData, 77, false)
	if !out.Injected || out.Detected || !out.Silent || out.Retries != 0 {
		t.Fatalf("silent fault: %+v", out)
	}
	if in.ShadowCorrupted() != 1 {
		t.Fatal("silent corruption should stay resident in the shadow")
	}
	rep := in.Report()
	if rep.Silent != 1 || rep.Detected != 0 {
		t.Fatalf("report after silent fault: %+v", rep)
	}
	if len(events) != 1 || events[0].Outcome != "silent" || events[0].Line != 77 {
		t.Fatalf("events: %+v", events)
	}
}

func TestWindows(t *testing.T) {
	in, err := NewInjector(Config{Seed: 5, Rate: 1, StepFrom: 10, StepTo: 20, AddrFrom: 64 * 100, AddrTo: 64 * 200})
	if err != nil {
		t.Fatal(err)
	}
	fire := func(step, line uint64) bool {
		in.BeginStep(step)
		return in.OnFetch(KindData, line, true).Injected
	}
	if fire(9, 150) {
		t.Fatal("fired before step window")
	}
	if fire(20, 150) {
		t.Fatal("fired at step window end (half-open)")
	}
	if fire(15, 99) {
		t.Fatal("fired below address window")
	}
	if fire(15, 200) {
		t.Fatal("fired at address window end (half-open)")
	}
	if !fire(15, 150) {
		t.Fatal("did not fire inside both windows at rate 1")
	}
}

// TestInjectorDeterminism: two injectors from the same config, driven with
// the same fetch sequence, produce identical reports and event logs.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 99, Rate: 0.3, Kinds: "data,ctr:0.6,mt"}
	drive := func() (Report, []Event) {
		in, err := NewInjector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var events []Event
		in.Notify = func(ev Event) { events = append(events, ev) }
		for step := uint64(0); step < 500; step++ {
			in.BeginStep(step)
			in.OnFetch(KindData, step%37, true)
			in.OnFetch(KindCtr, step%11, true)
			in.OnFetch(KindMT, step%5, true)
		}
		return in.Report(), events
	}
	r1, e1 := drive()
	r2, e2 := drive()
	if r1 != r2 {
		t.Fatalf("reports diverge:\n%+v\n%+v", r1, r2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("event counts diverge: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	if r1.Injected == 0 {
		t.Fatal("campaign injected nothing; rates too low for the test to mean anything")
	}
	if r1.Detected+r1.Silent != r1.Injected {
		t.Fatalf("accounting: detected %d + silent %d != injected %d", r1.Detected, r1.Silent, r1.Injected)
	}
	if r1.Silent != 0 {
		t.Fatalf("all fetches were detectable, yet %d silent", r1.Silent)
	}
}

func TestResetStatsKeepsPoison(t *testing.T) {
	in, err := NewInjector(Config{Seed: 1, Rate: 1, TransientPct: -1})
	if err != nil {
		t.Fatal(err)
	}
	in.BeginStep(0)
	in.OnFetch(KindMAC, 8, true)
	in.ResetStats()
	if rep := in.Report(); rep != (Report{}) {
		t.Fatalf("stats not reset: %+v", rep)
	}
	if in.PoisonedLines() != 1 {
		t.Fatal("ResetStats must keep the poisoned set (warmup semantics)")
	}
}

func TestCrashDueOnce(t *testing.T) {
	in, err := NewInjector(Config{CrashAt: 100})
	if err != nil {
		t.Fatal(err)
	}
	if in.CrashDue(99) {
		t.Fatal("crash fired early")
	}
	if !in.CrashDue(100) {
		t.Fatal("crash did not fire at CrashAt")
	}
	in.RecordCrash(100, 5000, 12, 34)
	if in.CrashDue(101) {
		t.Fatal("crash fired twice")
	}
	rep := in.Report()
	if rep.CrashStep != 100 || rep.RecoveryCycles != 5000 || rep.RecoveryFetches != 12 || rep.CrashLinesLost != 34 {
		t.Fatalf("crash report: %+v", rep)
	}
}
