package watch

import (
	"math"
	"testing"

	"cosmos/internal/telemetry"
)

// feed drives the dog with a synthetic single-signal series, one row per
// value, as a gauge named "sig" (no normalisation).
func feed(d *Dog, series []float64) {
	for i, v := range series {
		d.ObserveRow(telemetry.Row{
			Interval: i,
			Accesses: uint64(i+1) * 1000,
			Delta:    1000,
			Values:   map[string]float64{"sig": v},
		})
	}
}

// noise is a fixed pseudo-random sequence around mean 10, std ~1 — the
// same every run (tests must be deterministic, and the package bans
// runtime randomness anyway).
func noise(n int, seed uint64) []float64 {
	out := make([]float64, n)
	x := seed
	for i := range out {
		// xorshift64
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		u := float64(x%2000)/1000 - 1 // [-1, 1)
		out[i] = 10 + u
	}
	return out
}

func TestWatchdogStepChangeDetected(t *testing.T) {
	events := []Event{}
	d := New(nil, Config{
		Signals: []string{"sig"},
		Notify:  func(ev Event) { events = append(events, ev) },
	})
	series := append(noise(20, 42), make([]float64, 10)...)
	for i := 20; i < 30; i++ {
		series[i] = 25 + noise(1, uint64(i))[0] - 10 // step to ~25
	}
	feed(d, series)

	if d.AnomalyCount() == 0 {
		t.Fatal("step change raised no anomaly")
	}
	if d.PhaseCount() == 0 {
		t.Fatal("sustained step change tripped no phase change")
	}
	// The issue's bar: detection within two intervals of the change.
	first := -1
	for _, ev := range events {
		if first == -1 || ev.Interval < first {
			first = ev.Interval
		}
	}
	if first < 20 || first > 21 {
		t.Fatalf("first detection at interval %d, want 20 or 21", first)
	}

	sn := d.Snapshot()
	if len(sn.Phases) < 2 {
		t.Fatalf("snapshot has %d phases, want >= 2", len(sn.Phases))
	}
	p0 := sn.Phases[0]
	if p0.EndInterval == -1 {
		t.Fatal("phase 0 still open after a phase change")
	}
	if sn.Phases[1].Trigger != "sig" {
		t.Fatalf("phase 1 trigger = %q, want sig", sn.Phases[1].Trigger)
	}
	s0, ok := p0.Signals["sig"]
	if !ok || s0.N == 0 || math.Abs(s0.Mean-10) > 3 {
		t.Fatalf("phase 0 summary = %+v, want mean near 10", s0)
	}
	if sn.Phases[len(sn.Phases)-1].EndInterval != -1 {
		t.Fatal("last phase must be open")
	}
}

func TestWatchdogPureNoiseNeverAlarms(t *testing.T) {
	d := New(nil, Config{Signals: []string{"sig"}})
	feed(d, noise(500, 7))
	if n := d.AnomalyCount(); n != 0 {
		t.Fatalf("pure noise raised %d anomalies", n)
	}
	if n := d.PhaseCount(); n != 0 {
		t.Fatalf("pure noise tripped %d phase changes", n)
	}
	sn := d.Snapshot()
	if len(sn.Phases) != 1 || sn.Rows != 500 {
		t.Fatalf("snapshot = %d phases / %d rows, want 1/500", len(sn.Phases), sn.Rows)
	}
}

func TestWatchdogConstantThenBurst(t *testing.T) {
	// A fault-burst shape: a counter flat at zero, then a burst. The
	// constant series has zero variance; the epsilon floor must make the
	// burst an immediate anomaly, not a division blow-up.
	var events []Event
	reg := telemetry.NewRegistry()
	var injected uint64
	reg.Root().Scope("fault").Counter("injected_total", &injected)
	d := New(reg, Config{
		Signals: []string{"fault.injected_total"},
		Notify:  func(ev Event) { events = append(events, ev) },
	})
	for i := 0; i < 15; i++ {
		v := 0.0
		if i >= 12 {
			v = 40 // injections per interval during the burst
		}
		d.ObserveRow(telemetry.Row{
			Interval: i, Accesses: uint64(i+1) * 1000, Delta: 1000,
			Values: map[string]float64{"fault.injected_total": v},
		})
	}
	if d.AnomalyCount() == 0 {
		t.Fatal("fault burst raised no anomaly")
	}
	if events[0].Interval != 12 {
		t.Fatalf("burst detected at interval %d, want 12 (within two intervals)", events[0].Interval)
	}
	if events[0].Kind != "anomaly" || events[0].Signal != "fault.injected_total" {
		t.Fatalf("event = %+v", events[0])
	}
}

func TestWatchdogCounterNormalisation(t *testing.T) {
	// A counter tracked through a registry is normalised per access: a
	// short final interval with proportionally fewer counts must NOT
	// read as a drop.
	reg := telemetry.NewRegistry()
	var c uint64
	reg.Root().Scope("sim").Counter("offchip_reads", &c)
	d := New(reg, Config{Signals: []string{"sim.offchip_reads"}})
	for i := 0; i < 20; i++ {
		d.ObserveRow(telemetry.Row{
			Interval: i, Accesses: uint64(i+1) * 1000, Delta: 1000,
			Values: map[string]float64{"sim.offchip_reads": 300},
		})
	}
	// Flush row: 1/10th the interval, 1/10th the delta — same rate.
	d.ObserveRow(telemetry.Row{
		Interval: 20, Accesses: 20_100, Delta: 100,
		Values: map[string]float64{"sim.offchip_reads": 30},
	})
	if n := d.AnomalyCount(); n != 0 {
		t.Fatalf("proportional flush row raised %d anomalies", n)
	}
}

func TestWatchdogIgnoresMissingSignals(t *testing.T) {
	d := New(nil, Config{}) // default signal set, none present in rows
	feed(d, noise(50, 3))   // only "sig", which is not tracked
	sn := d.Snapshot()
	if sn.AnomalyCount != 0 || sn.PhaseChanges != 0 {
		t.Fatalf("untracked rows alarmed: %+v", sn)
	}
	if len(sn.Signals) != len(DefaultSignals()) {
		t.Fatalf("signals = %v", sn.Signals)
	}
}

func TestWatchdogMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	d := New(nil, Config{Signals: []string{"sig"}})
	d.RegisterMetrics(reg.Root().Scope("watch"))
	series := append(noise(20, 42), 100, 100, 100, 100, 100)
	feed(d, series)
	var anomalies, phases, rows float64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "watch.anomalies":
			anomalies = s.Value()
		case "watch.phase_changes":
			phases = s.Value()
		case "watch.rows":
			rows = s.Value()
		}
	}
	if anomalies == 0 || phases == 0 {
		t.Fatalf("metrics: anomalies %v phases %v", anomalies, phases)
	}
	if rows != float64(len(series)) {
		t.Fatalf("rows metric %v, want %d", rows, len(series))
	}
}
