// Package watch is the online phase/anomaly watchdog: a CUSUM + rolling-z
// change detector consuming the interval sampler's time-series in-process
// (telemetry.SamplerConfig.Observer), with no disk or serialisation
// round-trip. It answers two questions the raw time-series leaves to
// offline analysis: "did this interval look wildly unlike the run so far?"
// (anomaly — a fault burst, a CTR-occupancy swing) and "has the run's
// steady-state behaviour shifted?" (phase change — a workload switch, a
// working-set migration).
//
// The math, per tracked signal, within the current phase:
//
//	Welford running mean/variance over the phase's samples;
//	z    = (x − mean) / max(std, ε)           after MinSamples warmup
//	anomaly      when |z| > Z
//	CUSUM  S⁺ = max(0, S⁺ + min(z, clamp) − K)
//	       S⁻ = max(0, S⁻ − max(z, −clamp) − K)
//	phase change when S⁺ > H or S⁻ > H
//
// z is winsorised at ±clamp before entering the CUSUM sums so one wild
// interval raises an anomaly but cannot flip the phase alone — a sustained
// shift of ~1σ crosses H within a few intervals. A phase change closes the
// current segment and resets every signal's statistics, so detection
// re-learns the new regime. Counter signals are normalised to per-access
// rates before detection (the final partial interval would otherwise read
// as a spurious step).
package watch

import (
	"math"
	"sync"

	"cosmos/internal/telemetry"
)

// Config tunes a Dog. The zero value is usable: DefaultSignals, and the
// default thresholds below.
type Config struct {
	// Signals are the sampler metric names to track. Signals absent from
	// a row (e.g. "fault.injected_total" on a fault-free run) are
	// silently ignored. Empty = DefaultSignals().
	Signals []string
	// MinSamples is the per-phase warmup before the detector may alarm
	// (default 8 intervals).
	MinSamples int
	// Z is the rolling-z anomaly threshold in phase standard deviations
	// (default 6).
	Z float64
	// K is the CUSUM slack in standard deviations: drift below K/interval
	// is absorbed (default 0.5).
	K float64
	// H is the CUSUM decision threshold (default 8): a sustained 1σ shift
	// fires in ≈ H/(1−K) intervals after warmup.
	H float64
	// Notify, when non-nil, receives every event synchronously on the
	// simulation goroutine (wire it to slog and the SSE broker).
	Notify func(Event)
}

// DefaultSignals are the run-health signals tracked when Config.Signals is
// empty: off-chip pressure, mean fetch latency, CTR-cache locality, walk
// bypass behaviour and fault activity.
func DefaultSignals() []string {
	return []string{
		"sim.offchip_reads",
		"sim.avg_fetch_lat",
		"sim.bypass_rate",
		"secmem.ctr.miss_rate",
		"fault.injected_total",
	}
}

const (
	defaultMinSamples = 8
	defaultZ          = 6
	defaultK          = 0.5
	defaultH          = 8
	// zClamp winsorises the CUSUM increment; anomalies still see raw z.
	zClamp = 4
)

// Event is one detection: Kind "anomaly" or "phase_change".
type Event struct {
	Kind     string  `json:"kind"`
	Signal   string  `json:"signal"`
	Interval int     `json:"interval"`
	Accesses uint64  `json:"accesses"`
	Value    float64 `json:"value"`
	Mean     float64 `json:"mean"`
	Std      float64 `json:"std"`
	Z        float64 `json:"z"`
	// Phase is the phase index the event happened in; for a phase_change
	// it is the index of the NEW phase just opened.
	Phase int `json:"phase"`
}

// SignalSummary is one signal's distribution over one phase.
type SignalSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// PhaseInfo is one detected segment of the run.
type PhaseInfo struct {
	Index         int    `json:"index"`
	StartInterval int    `json:"start_interval"`
	EndInterval   int    `json:"end_interval"` // -1 while the phase is open
	StartAccesses uint64 `json:"start_accesses"`
	EndAccesses   uint64 `json:"end_accesses"`
	// Trigger names the signal whose CUSUM opened this phase ("" for
	// phase 0).
	Trigger string                   `json:"trigger,omitempty"`
	Signals map[string]SignalSummary `json:"signals"`
}

// Snapshot is the /phases payload for one run.
type Snapshot struct {
	Signals      []string    `json:"signals"`
	Rows         int         `json:"rows"`
	AnomalyCount uint64      `json:"anomaly_count"`
	PhaseChanges uint64      `json:"phase_changes"`
	Phases       []PhaseInfo `json:"phases"`
	// Anomalies keeps the most recent detections (bounded; see maxKept).
	Anomalies []Event `json:"anomalies"`
}

// maxKept bounds the retained anomaly list in a Snapshot.
const maxKept = 64

// sigState is one signal's per-phase detector state plus its current-phase
// summary accumulator.
type sigState struct {
	name    string
	counter bool // normalise by the interval's access delta

	n          int
	mean, m2   float64
	sPos, sNeg float64

	sum      float64
	min, max float64
}

func (st *sigState) reset() {
	st.n, st.mean, st.m2 = 0, 0, 0
	st.sPos, st.sNeg = 0, 0
	st.sum, st.min, st.max = 0, 0, 0
}

// Dog is the watchdog instance for one run. ObserveRow is driven from the
// simulation goroutine; Snapshot may be called concurrently (the obs
// plane), so all mutable state is mutex-guarded.
type Dog struct {
	cfg  Config
	reg  *telemetry.Registry
	sigs []*sigState

	mu        sync.Mutex
	rows      int
	phases    []PhaseInfo
	anomalies []Event

	// Prometheus-facing counters (registered under the "watch" scope).
	anomalyCount uint64
	phaseCount   uint64
	rowCount     uint64
}

// New builds a watchdog over the run's registry (used to classify signals
// as counters for per-access normalisation; rates and gauges pass through).
func New(reg *telemetry.Registry, cfg Config) *Dog {
	if len(cfg.Signals) == 0 {
		cfg.Signals = DefaultSignals()
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = defaultMinSamples
	}
	if cfg.Z <= 0 {
		cfg.Z = defaultZ
	}
	if cfg.K <= 0 {
		cfg.K = defaultK
	}
	if cfg.H <= 0 {
		cfg.H = defaultH
	}
	d := &Dog{cfg: cfg, reg: reg}
	for _, name := range cfg.Signals {
		st := &sigState{name: name}
		if reg != nil {
			if k, ok := reg.Kind(name); ok && k == telemetry.KindCounter {
				st.counter = true
			}
		}
		d.sigs = append(d.sigs, st)
	}
	d.phases = []PhaseInfo{{Index: 0, EndInterval: -1}}
	return d
}

// RegisterMetrics exposes the watchdog's own counters under the scope
// (conventionally "watch", yielding the cosmos_watch_* Prometheus
// families).
func (d *Dog) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("anomalies", &d.anomalyCount)
	s.Counter("phase_changes", &d.phaseCount)
	s.Counter("rows", &d.rowCount)
	s.Gauge("phase", func() float64 {
		d.mu.Lock()
		defer d.mu.Unlock()
		return float64(len(d.phases) - 1)
	})
}

// ObserveRow consumes one sampler row: update every tracked signal's phase
// statistics, raise anomalies, and on a CUSUM trip close the current phase.
// Wire it as telemetry.SamplerConfig.Observer.
func (d *Dog) ObserveRow(row telemetry.Row) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rows++
	d.rowCount++
	cur := &d.phases[len(d.phases)-1]
	if cur.Signals == nil {
		cur.Signals = make(map[string]SignalSummary, len(d.sigs))
		cur.StartInterval = row.Interval
		cur.StartAccesses = row.Accesses - row.Delta
	}
	cur.EndAccesses = row.Accesses

	var trip *sigState
	var tripEv Event
	for _, st := range d.sigs {
		x, ok := row.Values[st.name]
		if !ok {
			continue
		}
		if st.counter && row.Delta > 0 {
			x /= float64(row.Delta) // per-access rate
		}
		// Phase summary (all samples, including warmup).
		if st.n == 0 {
			st.min, st.max = x, x
		} else {
			st.min = math.Min(st.min, x)
			st.max = math.Max(st.max, x)
		}
		st.sum += x

		if st.n >= d.cfg.MinSamples {
			std := math.Sqrt(st.m2 / float64(st.n-1))
			eps := 1e-9 + 1e-6*math.Abs(st.mean)
			if std < eps {
				std = eps
			}
			z := (x - st.mean) / std
			if math.Abs(z) > d.cfg.Z {
				d.anomalyCount++
				ev := Event{
					Kind: "anomaly", Signal: st.name,
					Interval: row.Interval, Accesses: row.Accesses,
					Value: x, Mean: st.mean, Std: std, Z: z,
					Phase: len(d.phases) - 1,
				}
				d.keep(ev)
				if d.cfg.Notify != nil {
					d.cfg.Notify(ev)
				}
			}
			zc := math.Max(math.Min(z, zClamp), -zClamp)
			st.sPos = math.Max(0, st.sPos+zc-d.cfg.K)
			st.sNeg = math.Max(0, st.sNeg-zc-d.cfg.K)
			if (st.sPos > d.cfg.H || st.sNeg > d.cfg.H) && trip == nil {
				trip = st
				tripEv = Event{
					Kind: "phase_change", Signal: st.name,
					Interval: row.Interval, Accesses: row.Accesses,
					Value: x, Mean: st.mean, Std: std, Z: z,
					Phase: len(d.phases),
				}
			}
		}
		// Welford update (anomalous samples included: the phase's own
		// statistics must track what actually happened in it).
		st.n++
		delta := x - st.mean
		st.mean += delta / float64(st.n)
		st.m2 += delta * (x - st.mean)
		cur.Signals[st.name] = SignalSummary{
			N: st.n, Mean: st.sum / float64(st.n), Min: st.min, Max: st.max,
		}
	}

	if trip != nil {
		cur.EndInterval = row.Interval
		d.phaseCount++
		for _, st := range d.sigs {
			st.reset()
		}
		d.phases = append(d.phases, PhaseInfo{
			Index:         len(d.phases),
			StartInterval: row.Interval + 1,
			EndInterval:   -1,
			StartAccesses: row.Accesses,
			EndAccesses:   row.Accesses,
			Trigger:       trip.name,
		})
		d.keep(tripEv)
		if d.cfg.Notify != nil {
			d.cfg.Notify(tripEv)
		}
	}
}

// keep appends ev to the bounded anomaly list (callers hold d.mu).
func (d *Dog) keep(ev Event) {
	if len(d.anomalies) >= maxKept {
		copy(d.anomalies, d.anomalies[1:])
		d.anomalies = d.anomalies[:maxKept-1]
	}
	d.anomalies = append(d.anomalies, ev)
}

// AnomalyCount reports the anomalies raised so far.
func (d *Dog) AnomalyCount() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.anomalyCount
}

// PhaseCount reports the phase changes detected so far.
func (d *Dog) PhaseCount() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.phaseCount
}

// Snapshot returns the watchdog's current view: detected segments with
// per-phase signal summaries plus the recent anomaly list. Safe to call
// while the run executes.
func (d *Dog) Snapshot() Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	sn := Snapshot{
		Signals:      d.cfg.Signals,
		Rows:         d.rows,
		AnomalyCount: d.anomalyCount,
		PhaseChanges: d.phaseCount,
		Phases:       make([]PhaseInfo, len(d.phases)),
		Anomalies:    append([]Event(nil), d.anomalies...),
	}
	for i, p := range d.phases {
		cp := p
		cp.Signals = make(map[string]SignalSummary, len(p.Signals))
		for k, v := range p.Signals {
			cp.Signals[k] = v
		}
		sn.Phases[i] = cp
	}
	return sn
}
