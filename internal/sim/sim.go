// Package sim is the multi-core system simulator: a composed chain of
// memory-hierarchy levels (per-core L1 and L2 caches, a shared LLC) ending
// in the secure memory controller (internal/secmem), driven by workload
// access streams. It accounts per-thread cycles with a simple out-of-order
// overlap model and produces the metrics every paper figure is built from:
// IPC, cache miss rates, CTR cache behaviour, DRAM traffic decomposition
// and SMAT (Eq 1-2).
package sim

import (
	"context"
	"fmt"
	"time"

	"cosmos/internal/cache"
	"cosmos/internal/core"
	"cosmos/internal/dram"
	"cosmos/internal/fault"
	"cosmos/internal/memsys"
	"cosmos/internal/prefetch"
	"cosmos/internal/secmem"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
)

// LevelSpec describes one on-chip cache level of the hierarchy. Levels are
// listed top (closest to the core) first; Shared levels are instantiated
// once and banked by every core, private levels once per core. Private
// levels may not sit below shared ones.
type LevelSpec struct {
	Name   string `json:"name"`
	Bytes  int    `json:"bytes"`
	Ways   int    `json:"ways"`
	Lat    uint64 `json:"lat"`
	Shared bool   `json:"shared,omitempty"`
}

// Config is the Table 3 machine.
type Config struct {
	Cores int

	L1Bytes, L1Ways   int
	L2Bytes, L2Ways   int
	LLCBytes, LLCWays int
	L1Lat, L2Lat      uint64
	LLCLat            uint64

	// Levels optionally replaces the L1/L2/LLC fields above with an
	// arbitrary on-chip hierarchy (top first). Nil means the classic
	// three-level machine built from the scalar fields.
	Levels []LevelSpec `json:",omitempty"`

	// NonMemCycles is the compute time each access group carries (the
	// non-memory instructions between memory references).
	NonMemCycles uint64
	// InstrPerAccess converts accesses to instructions for IPC.
	InstrPerAccess uint64
	// MLP divides off-chip stall time, modelling OoO overlap of misses.
	MLP uint64

	MC secmem.Config

	// Fault, when non-nil and enabled, attaches the deterministic fault
	// plane (internal/fault) to the memory controller. Nil — or an all-zero
	// config — keeps the simulation bit-identical to a fault-free build.
	Fault *fault.Config `json:",omitempty"`
}

// Validate rejects configurations that would otherwise panic deep inside
// Step: non-power-of-two cache geometry, zero latencies, degenerate core or
// overlap counts, bad DRAM geometry and unusable fault campaigns. The CLIs
// and the runner call it before building a System.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: cores %d must be at least 1", c.Cores)
	}
	if c.MLP < 1 {
		return fmt.Errorf("sim: mlp %d must be at least 1", c.MLP)
	}
	if c.InstrPerAccess < 1 {
		return fmt.Errorf("sim: instr-per-access %d must be at least 1", c.InstrPerAccess)
	}
	specs := c.levelSpecs()
	if len(specs) == 0 {
		return fmt.Errorf("sim: empty level chain")
	}
	shared := false
	for _, sp := range specs {
		if sp.Name == "" {
			return fmt.Errorf("sim: unnamed cache level")
		}
		if err := cache.ValidateGeometry(sp.Name, sp.Bytes, sp.Ways); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		if sp.Lat == 0 {
			return fmt.Errorf("sim: level %q has zero latency", sp.Name)
		}
		if sp.Shared {
			shared = true
		} else if shared {
			return fmt.Errorf("sim: private level %q below a shared level", sp.Name)
		}
	}
	mc := c.MC
	mc.Cores = c.Cores // New overwrites it the same way
	if err := mc.Validate(); err != nil {
		return err
	}
	if c.Fault != nil {
		if err := c.Fault.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// levelSpecs resolves the on-chip hierarchy: the explicit Levels list when
// set, otherwise the classic L1/L2/LLC machine.
func (c Config) levelSpecs() []LevelSpec {
	if len(c.Levels) > 0 {
		return c.Levels
	}
	return []LevelSpec{
		{Name: "l1", Bytes: c.L1Bytes, Ways: c.L1Ways, Lat: c.L1Lat},
		{Name: "l2", Bytes: c.L2Bytes, Ways: c.L2Ways, Lat: c.L2Lat},
		{Name: "llc", Bytes: c.LLCBytes, Ways: c.LLCWays, Lat: c.LLCLat, Shared: true},
	}
}

// DefaultConfig returns the paper's 4-core setup (Table 3).
func DefaultConfig() Config {
	return Config{
		Cores:          4,
		L1Bytes:        32 << 10,
		L1Ways:         2,
		L2Bytes:        1 << 20,
		L2Ways:         8,
		LLCBytes:       8 << 20,
		LLCWays:        16,
		L1Lat:          2,
		L2Lat:          20,
		LLCLat:         128,
		NonMemCycles:   4,
		InstrPerAccess: 4,
		MLP:            4,
		MC:             secmem.DefaultConfig(),
	}
}

// EightCore scales the default to the Fig 15 8-core / 16MB-LLC machine.
func EightCore() Config {
	c := DefaultConfig()
	c.Cores = 8
	c.LLCBytes = 16 << 20
	c.MC.Cores = 8
	return c
}

type levelStats struct {
	accesses uint64
	misses   uint64
}

func (l levelStats) missRate() float64 {
	if l.accesses == 0 {
		return 0
	}
	return float64(l.misses) / float64(l.accesses)
}

// System is one simulated machine instance.
type System struct {
	cfg    Config
	design secmem.Design

	// chains[c] is core c's view of the on-chip hierarchy, top first:
	// private levels are distinct per core, the tail from sharedFrom on is
	// the same Level values in every chain. Each level's writeback link is
	// wired to the next; the last level drains into the secure-memory
	// terminal. The chains are held concretely so the step hot path probes
	// them without interface dispatch; Chain exposes the memsys.Level view.
	chains     [][]*cache.Level
	specs      []LevelSpec
	lats       []uint64 // specs[i].Lat, indexed like chains[c]
	sharedFrom int
	// sharedSink is what the last private level drains into: the top
	// shared level, or the terminal when every level is private. The
	// batched engine replays deferred shared writebacks into it.
	sharedSink memsys.Level
	mc         *secmem.Engine
	terminal   *secmem.Level

	// plan is the per-design fetch-plan profile, precomputed at New so
	// planFetch does not re-derive the design/region decision per miss.
	plan planProfile

	// parallelCores > 1 selects the epoch-barrier parallel engine for
	// RunContext (see parallel.go); Results stay bit-identical.
	parallelCores int
	par           *parEngine

	l1Lat   uint64 // level-0 lookup cost, charged on every access
	walkLat uint64 // serial cost of the levels below level 0

	threadCycles []uint64
	demand       []levelStats // indexed like chains[c]

	accesses     uint64
	reads        uint64
	writes       uint64
	offChipReads uint64
	fetchLatSum  uint64
	bypassed     uint64 // accesses that skipped the L2/LLC walk latency

	// Telemetry (all nil when disabled — the fast path costs one branch).
	sampler   *telemetry.Sampler
	tracer    *telemetry.Tracer
	fetchHist *telemetry.Histogram
	phases    *telemetry.Phases
	spans     *telemetry.SpanRecorder

	// faults, when non-nil, is the attached fault plane (also wired into
	// the memory controller engine).
	faults *fault.Injector
}

// New builds a system for the given design point: the secure-memory
// terminal, then the on-chip levels bottom-up so each can be handed its
// downstream writeback link.
func New(cfg Config, design secmem.Design) *System {
	cfg.MC.Cores = cfg.Cores
	s := &System{cfg: cfg, design: design}
	s.specs = cfg.levelSpecs()
	s.mc = secmem.NewEngine(cfg.MC, design)
	s.terminal = secmem.NewLevel(s.mc)
	if cfg.Fault.Enabled() {
		in, err := fault.NewInjector(*cfg.Fault)
		if err != nil {
			panic(fmt.Sprintf("sim: %v", err)) // Config.Validate catches this earlier
		}
		s.faults = in
		s.mc.AttachFaults(in)
	}

	s.sharedFrom = len(s.specs)
	for i, sp := range s.specs {
		if sp.Shared {
			s.sharedFrom = i
			break
		}
	}
	for i := s.sharedFrom; i < len(s.specs); i++ {
		if !s.specs[i].Shared {
			panic(fmt.Sprintf("sim: private level %q below shared level %q",
				s.specs[i].Name, s.specs[s.sharedFrom].Name))
		}
	}

	newLevel := func(sp LevelSpec, down memsys.Level) *cache.Level {
		return cache.NewLevel(cache.New(sp.Name, sp.Bytes, sp.Ways, cache.NewLRU()), sp.Lat, down)
	}

	// Shared tail, built once.
	var down memsys.Level = s.terminal
	shared := make([]*cache.Level, len(s.specs)-s.sharedFrom)
	for i := len(s.specs) - 1; i >= s.sharedFrom; i-- {
		l := newLevel(s.specs[i], down)
		shared[i-s.sharedFrom] = l
		down = l
	}
	sharedTop := down

	// Private prefix, per core, linked onto the shared tail.
	s.chains = make([][]*cache.Level, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		chain := make([]*cache.Level, len(s.specs))
		copy(chain[s.sharedFrom:], shared)
		down := sharedTop
		for i := s.sharedFrom - 1; i >= 0; i-- {
			l := newLevel(s.specs[i], down)
			chain[i] = l
			down = l
		}
		s.chains[c] = chain
	}
	// What the private prefix drains into: the top shared level, or the
	// terminal when every level is private (empty shared tail).
	s.sharedSink = sharedTop

	s.plan = newPlanProfile(cfg, design)

	s.lats = make([]uint64, len(s.specs))
	for i, sp := range s.specs {
		s.lats[i] = sp.Lat
	}
	s.l1Lat = s.lats[0]
	for _, l := range s.lats[1:] {
		s.walkLat += l
	}

	s.demand = make([]levelStats, len(s.specs))
	s.threadCycles = make([]uint64, cfg.Cores)
	return s
}

// MC exposes the memory controller (for experiment harnesses).
func (s *System) MC() *secmem.Engine { return s.mc }

// Faults exposes the attached fault injector (nil when faults are
// disabled), e.g. to hook its Notify callback up to an event broker.
func (s *System) Faults() *fault.Injector { return s.faults }

// Chain returns core c's on-chip hierarchy, top (L1) first. Shared levels
// appear in every core's chain as the same Level value; the secure-memory
// terminal is not included (see Terminal).
func (s *System) Chain(c int) []memsys.Level {
	out := make([]memsys.Level, len(s.chains[c]))
	for i, l := range s.chains[c] {
		out[i] = l
	}
	return out
}

// SetParallelCores selects the execution engine RunContext uses: n > 1
// enables the deterministic epoch-barrier parallel engine with up to n
// worker goroutines (capped at the config's core count); 0 or 1 keeps the
// serial engine. Results are bit-identical either way — the knob trades
// wall-clock for CPUs, never semantics — so it is deliberately not part of
// the runner's spec hash. The parallel engine silently falls back to serial
// when it cannot preserve bit-identicality or has nothing to parallelise:
// single-core configs, hierarchies with no private levels, or an attached
// interval sampler or span recorder (both observe per-access state).
func (s *System) SetParallelCores(n int) { s.parallelCores = n }

// ParallelCores reports the configured engine knob (see SetParallelCores).
func (s *System) ParallelCores() int { return s.parallelCores }

// Terminal returns the secure-memory level the last on-chip level drains
// into.
func (s *System) Terminal() memsys.Level { return s.terminal }

// RegisterMetrics registers the whole system's metric set under root:
// run-level access counters and derived rates, the off-chip fetch-latency
// histogram, every hierarchy level (private levels under their core's
// scope, shared levels at root), and everything the memory controller
// exports (CTR pipeline, traffic classes, DRAM, RL predictors). Call once
// after New and before the first sampled access.
func (s *System) RegisterMetrics(root *telemetry.Scope) {
	sys := root.Scope("sim")
	sys.Counter("accesses", &s.accesses)
	sys.Counter("reads", &s.reads)
	sys.Counter("writes", &s.writes)
	sys.Counter("offchip_reads", &s.offChipReads)
	sys.Counter("bypassed", &s.bypassed)
	sys.RateOf("bypass_rate", &s.bypassed, &s.offChipReads)
	sys.RateOf("avg_fetch_lat", &s.fetchLatSum, &s.offChipReads)
	sys.Gauge("ipc", func() float64 { return s.Results("").IPC })
	s.fetchHist = sys.Histogram("fetch_latency")

	for c := 0; c < s.cfg.Cores; c++ {
		coreScope := root.Scope(fmt.Sprintf("core%d", c))
		for i := 0; i < s.sharedFrom; i++ {
			s.chains[c][i].RegisterMetrics(coreScope.Scope(s.specs[i].Name))
		}
	}
	for i := s.sharedFrom; i < len(s.specs); i++ {
		s.chains[0][i].RegisterMetrics(root.Scope(s.specs[i].Name))
	}
	s.mc.RegisterMetrics(root.Scope("secmem"))
	if s.faults != nil {
		s.faults.RegisterMetrics(root.Scope("fault"))
	}
}

// AttachSampler enables interval sampling during Run. The sampler must be
// built over a registry this system registered into.
func (s *System) AttachSampler(sp *telemetry.Sampler) { s.sampler = sp }

// AttachTracer enables event tracing of off-chip accesses: for every
// off-chip fetch the three racing chains (walk / ctr / data, see
// fetchpath.go) are recorded as Chrome trace_event slices on the owning
// core's lane.
func (s *System) AttachTracer(tr *telemetry.Tracer) {
	s.tracer = tr
	for c := 0; c < s.cfg.Cores; c++ {
		tr.SetProcessName(c, fmt.Sprintf("core%d", c))
		tr.SetThreadName(c, tidFetch, "fetch")
		tr.SetThreadName(c, tidWalk, "walk")
		tr.SetThreadName(c, tidCtr, "ctr")
		tr.SetThreadName(c, tidData, "data")
	}
}

// AttachSpans enables access-level span tracing: every Step feeds the
// recorder's per-cause latency histograms, and a deterministic 1-in-N
// subset of accesses gets a full span tree (see telemetry.SpanRecorder).
// The recorder is also attached to the memory controller so metadata-path
// events (counter misses, MT walks, MAC fetches, fault retries,
// re-encryption storms) annotate the same trees. Nil (the default) keeps
// Step allocation-free and the Results bit-identical.
func (s *System) AttachSpans(rec *telemetry.SpanRecorder) {
	s.spans = rec
	s.mc.AttachSpans(rec)
}

// AttachPhases enables wall-time attribution during RunContext: decode
// (generator NextBlock), step (the simulator loop) and report (sampler
// flush + Results assembly) wall time plus a simulated-access count
// accumulate into p, which may be shared across systems (campaign-level
// attribution). Both engines time each decode block (serial) or epoch
// (parallel) once per phase from the driving goroutine — per-core workers
// never touch the accumulator, so parallel runs merge instead of racing —
// and the access order, the Results and the per-step semantics are
// identical to an unattributed run while the timing overhead stays at two
// clock reads per block. Nil (the default) skips the clock reads.
func (s *System) AttachPhases(p *telemetry.Phases) { s.phases = p }

// phaseBlock is the decode-ahead block size of the serial run loop.
const phaseBlock = 256

// Trace track ids within one core's lane: the critical-path envelope plus
// the three racing chains of an off-chip access.
const (
	tidFetch = iota
	tidWalk
	tidCtr
	tidData
)

// Step processes one access and returns its critical-path latency: walk the
// core's level chain until a hit (writebacks cascade inside the levels),
// and on an all-miss compose the off-chip fetch path and advance the thread
// clock. The walk runs on concrete *cache.Level values via Probe — no
// interface dispatch or Request/Response traffic on the hit path.
func (s *System) Step(a memsys.Access) uint64 {
	c := int(a.Thread) % s.cfg.Cores
	if s.faults != nil {
		// Pin the fault stream to this access's index so every draw the
		// access triggers is a pure function of (seed, kind, step, line),
		// then fire the crash point if it is due.
		s.faults.BeginStep(s.accesses)
		if s.faults.CrashDue(s.accesses) {
			s.crash()
		}
	}
	now := s.threadCycles[c]
	write := a.Type == memsys.Write
	line := a.Addr.Line()
	chain := s.chains[c]

	if s.spans != nil {
		s.spans.MaybeBegin(s.accesses, c, line)
	}
	s.accesses++
	if write {
		s.writes++
	} else {
		s.reads++
	}

	// Top level: the only one that sees the store bit.
	s.demand[0].accesses++
	lat := s.l1Lat
	if chain[0].Probe(line, write, a.Region, c, now) {
		if s.spans != nil {
			s.spans.EndAccess(lat)
		}
		s.advance(c, write, a.Dep, lat)
		return lat
	}
	s.demand[0].misses++
	if s.spans != nil {
		s.spans.LevelMiss(s.specs[0].Name, 0, s.l1Lat)
	}

	// Miss at the top: open the fetch plan (location prediction, early
	// counter issue), then walk the lower levels.
	plan := s.planFetch(c, now, line, a.Addr)

	for i := 1; i < len(chain); i++ {
		s.demand[i].accesses++
		hit := chain[i].Probe(line, false, a.Region, c, now)
		lat += s.lats[i]
		if hit {
			s.gradeOnChipHit(plan, now, a.Addr, write, i == len(chain)-1)
			if s.spans != nil {
				s.spans.EndAccess(lat)
			}
			s.advance(c, write, a.Dep, lat)
			return lat
		}
		s.demand[i].misses++
		if s.spans != nil {
			s.spans.LevelMiss(s.specs[i].Name, lat-s.lats[i], s.lats[i])
		}
	}

	// Off-chip: resolve the plan into the timed fetch path.
	path := s.composeFetch(c, now, line, a.Addr, plan)
	fetchEnd := path.finish()
	lat = s.l1Lat + fetchEnd
	s.offChipReads++
	s.fetchLatSum += fetchEnd
	if path.predictedOff {
		s.bypassed++
	}

	if s.fetchHist != nil {
		s.fetchHist.Observe(fetchEnd)
	}
	if s.tracer != nil {
		s.traceFetch(c, now, path)
	}
	if s.spans != nil {
		s.spans.NoteFetch(s.l1Lat, path.walkLat, path.ctrStart(), path.ctrLat,
			path.dataStart(), path.dataLat, fetchEnd,
			path.secure, path.ctrHit, path.predictedOff)
		s.spans.EndAccess(lat)
	}

	s.advance(c, write, a.Dep, lat)
	return lat
}

// crash fires the configured crash point: the memory controller loses its
// volatile metadata state (and, when configured, the RL tables), the
// recovery protocol replays, and its serial cost stalls every thread — so
// recovery latency shows up directly in Cycles and IPC.
func (s *System) crash() {
	var now uint64
	for _, cyc := range s.threadCycles {
		if cyc > now {
			now = cyc
		}
	}
	cycles, fetches, lost := s.mc.Crash(now, s.faults.CrashDropRL())
	s.faults.RecordCrash(s.accesses, cycles, fetches, lost)
	for i := range s.threadCycles {
		s.threadCycles[i] = now + cycles
	}
}

// advance applies the cycle cost of one access group to its thread: compute
// cycles plus the memory stall, with off-chip stalls divided by the MLP
// overlap factor. Dependent loads (pointer chasing) get no overlap; writes
// retire through the store buffer (L1 latency only).
func (s *System) advance(c int, write, dep bool, lat uint64) {
	stall := lat
	switch {
	case write:
		stall = s.l1Lat
	case dep:
		// serialising load: the full latency lands on the thread
	case lat > s.l1Lat:
		stall = s.l1Lat + (lat-s.l1Lat)/s.cfg.MLP
	}
	s.threadCycles[c] += s.cfg.NonMemCycles + stall
}

// Warmup drives the system for n accesses and then clears every
// measurement, keeping all learned state: cache contents, Q-tables, CET.
// Use it to measure steady-state behaviour without the cold-start
// transient.
func (s *System) Warmup(gen trace.Generator, n uint64) {
	for i := uint64(0); i < n; i++ {
		a, ok := gen.Next()
		if !ok {
			break
		}
		s.Step(a)
	}
	s.ResetStats()
}

// ResetStats zeroes measurements (not learned state); see Warmup.
func (s *System) ResetStats() {
	for i := range s.demand {
		s.demand[i] = levelStats{}
	}
	s.accesses, s.reads, s.writes = 0, 0, 0
	s.offChipReads, s.fetchLatSum, s.bypassed = 0, 0, 0
	for i := range s.threadCycles {
		s.threadCycles[i] = 0
	}
	for c := range s.chains {
		for i := 0; i < s.sharedFrom; i++ {
			s.chains[c][i].ResetStats()
		}
	}
	for i := s.sharedFrom; i < len(s.specs); i++ {
		s.chains[0][i].ResetStats()
	}
	s.mc.ResetStats()
}

// Run drives the system from a generator for at most maxAccesses. When a
// sampler is attached, every registered metric is snapshotted each interval
// boundary and the final partial interval is flushed before the results are
// computed.
func (s *System) Run(gen trace.Generator, maxAccesses uint64) Results {
	r, _ := s.RunContext(context.Background(), gen, maxAccesses)
	return r
}

// CancelCheckEvery bounds the cancellation latency of RunContext: the
// context is consulted at least once per this many steps (the engines poll
// per decode block or per epoch, both smaller or equal), so a cancellation
// lands mid-simulation after at most this many additional accesses.
const CancelCheckEvery = 4096

// RunContext is Run with cooperative cancellation and block decoding:
// accesses are pulled from the generator a block at a time (through
// trace.NextBlock, so BlockGenerator implementations decode in bulk) and
// stepped a block at a time. Workload generators are pure streams — they
// never observe simulator state — so decoding up to a block ahead cannot
// change the access sequence. The context is checked once per block, and on
// cancellation the partial Results accumulated so far are returned together
// with ctx.Err(); a Background (or otherwise non-cancellable) context costs
// nothing — its nil Done channel skips the poll entirely.
//
// When SetParallelCores enabled the parallel engine (and no sampler is
// attached), the run is delegated to the epoch-barrier engine in
// parallel.go; Results are bit-identical either way.
func (s *System) RunContext(ctx context.Context, gen trace.Generator, maxAccesses uint64) (Results, error) {
	defer trace.CloseIfCloser(gen)
	if s.parallelEligible() {
		return s.runParallel(ctx, gen, maxAccesses)
	}
	done := ctx.Done()
	timed := s.phases != nil
	var t0, t1 time.Time
	var buf [phaseBlock]memsys.Access
	for s.accesses < maxAccesses {
		want := maxAccesses - s.accesses
		if want > phaseBlock {
			want = phaseBlock
		}
		if timed {
			t0 = time.Now()
		}
		n := 0
		for uint64(n) < want {
			m := trace.NextBlock(gen, buf[n:want])
			if m == 0 {
				break
			}
			n += m
		}
		if timed {
			t1 = time.Now()
		}
		for i := 0; i < n; i++ {
			s.Step(buf[i])
			if s.sampler != nil {
				s.sampler.MaybeSample(s.accesses)
			}
		}
		if timed {
			t2 := time.Now()
			s.phases.Add(telemetry.PhaseDecode, t1.Sub(t0))
			s.phases.Add(telemetry.PhaseStep, t2.Sub(t1))
			s.phases.AddAccesses(uint64(n))
		}
		if n == 0 {
			break
		}
		if done != nil {
			select {
			case <-done:
				return s.finishRun(gen.Name()), ctx.Err()
			default:
			}
		}
	}
	return s.finishRun(gen.Name()), nil
}

// finishRun flushes the sampler and assembles Results, booking the wall
// time as the report phase when attribution is on.
func (s *System) finishRun(workload string) Results {
	var t0 time.Time
	if s.phases != nil {
		t0 = time.Now()
	}
	if s.sampler != nil {
		s.sampler.Flush(s.accesses)
	}
	res := s.Results(workload)
	if s.phases != nil {
		s.phases.Add(telemetry.PhaseReport, time.Since(t0))
	}
	return res
}

// Results snapshots every metric the experiment harness consumes.
type Results struct {
	Design   string
	Workload string

	Accesses     uint64
	Reads        uint64
	Writes       uint64
	Instructions uint64
	Cycles       uint64
	IPC          float64

	L1MissRate  float64
	L2MissRate  float64
	LLCMissRate float64

	CtrAccesses  uint64
	CtrMissRate  float64
	OffChipReads uint64
	Bypassed     uint64
	// BypassRate is the fraction of off-chip reads whose L2/LLC walk was
	// bypassed by an off-chip prediction (Bypassed / OffChipReads).
	BypassRate float64
	// AvgFetchLat is the mean off-chip fetch latency in cycles, measured
	// from the L1-miss point to data ready (FetchLatSum / OffChipReads).
	AvgFetchLat float64

	Traffic secmem.Traffic
	DRAM    dram.Stats

	DataPred *core.DataStats
	CtrPred  *core.CtrStats
	Prefetch prefetch.Stats

	// Fault carries the fault campaign's outcome (injections, detections,
	// retries, poisoned lines, crash recovery cost). Nil when the run had
	// no fault plane attached, so fault-free Results are unchanged.
	Fault *fault.Report `json:",omitempty"`

	// Tail carries the per-cause latency distributions (p50/p95/p99/p999)
	// when a span recorder was attached. Nil otherwise, so span-free
	// Results are byte-identical to earlier builds.
	Tail *telemetry.TailReport `json:",omitempty"`

	SMAT float64
}

// Results computes the final metrics. Miss rates map the level chain onto
// the fixed report fields: level 0 is L1, level 1 is L2, the last level is
// the LLC.
func (s *System) Results(workload string) Results {
	var maxCycles uint64
	for _, cyc := range s.threadCycles {
		if cyc > maxCycles {
			maxCycles = cyc
		}
	}
	res := Results{
		Design:       s.design.Name,
		Workload:     workload,
		Accesses:     s.accesses,
		Reads:        s.reads,
		Writes:       s.writes,
		Instructions: s.accesses * s.cfg.InstrPerAccess,
		Cycles:       maxCycles,
		L1MissRate:   s.demand[0].missRate(),
		CtrAccesses:  s.mc.CtrHits + s.mc.CtrMisses,
		CtrMissRate:  s.mc.CtrMissRate(),
		OffChipReads: s.offChipReads,
		Bypassed:     s.bypassed,
		Traffic:      s.mc.Traffic,
		DRAM:         s.mc.DRAMStats(),
		Prefetch:     s.mc.PrefetchStats(),
	}
	if len(s.demand) > 1 {
		res.L2MissRate = s.demand[1].missRate()
		res.LLCMissRate = s.demand[len(s.demand)-1].missRate()
	}
	if maxCycles > 0 {
		res.IPC = float64(res.Instructions) / float64(maxCycles)
	}
	if s.offChipReads > 0 {
		res.BypassRate = float64(s.bypassed) / float64(s.offChipReads)
		res.AvgFetchLat = float64(s.fetchLatSum) / float64(s.offChipReads)
	}
	if s.mc.DataPred != nil {
		st := s.mc.DataPred.Stats
		res.DataPred = &st
	}
	if s.mc.CtrPred != nil {
		st := s.mc.CtrPred.Stats
		res.CtrPred = &st
	}
	if s.faults != nil {
		rep := s.faults.Report()
		res.Fault = &rep
	}
	if s.spans != nil {
		res.Tail = s.spans.Report()
	}
	res.SMAT = s.smat()
	return res
}

// smat evaluates Eq 1-2 with measured miss rates and the machine's
// configured latencies; DRAM terms use the model's best-case read latency
// plus an activation blend from the observed row-hit rate. The walked term
// folds over the level chain from the innermost level outward.
func (s *System) smat() float64 {
	cfg := s.cfg
	d := s.mc.DRAMStats()
	rowHit := d.RowHitRate()
	dramLat := float64(cfg.MC.DRAM.TCAS+cfg.MC.DRAM.TBus+cfg.MC.DRAM.Queue)*rowHit +
		float64(cfg.MC.DRAM.TRP+cfg.MC.DRAM.TRCD+cfg.MC.DRAM.TCAS+cfg.MC.DRAM.TBus+cfg.MC.DRAM.Queue)*(1-rowHit)

	var ctrTerm float64
	if s.design.Secure {
		mrCtr := s.mc.CtrMissRate()
		verify := float64(cfg.MC.AuthLat)
		ctrTerm = float64(cfg.MC.CtrHitLat) + mrCtr*(dramLat+verify)
		ctrTerm += float64(cfg.MC.AESLat)
	}

	// Bypass share (§6.1.3): the fraction of L1 misses that skip the
	// L2/LLC walk entirely and go straight to the CTR cache and DRAM.
	var b float64
	if s.demand[0].misses > 0 {
		b = float64(s.bypassed) / float64(s.demand[0].misses)
	}
	direct := ctrTerm + dramLat
	walked := direct
	for i := len(s.specs) - 1; i >= 1; i-- {
		walked = float64(s.lats[i]) + s.demand[i].missRate()*walked
	}
	return float64(s.l1Lat) + s.demand[0].missRate()*((1-b)*walked+b*direct)
}
