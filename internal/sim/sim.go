// Package sim is the multi-core system simulator: per-core L1 and L2
// caches, a shared LLC, and the secure memory controller (internal/secmem),
// driven by workload access streams. It accounts per-thread cycles with a
// simple out-of-order overlap model and produces the metrics every paper
// figure is built from: IPC, cache miss rates, CTR cache behaviour, DRAM
// traffic decomposition and SMAT (Eq 1-2).
package sim

import (
	"context"
	"fmt"

	"cosmos/internal/cache"
	"cosmos/internal/core"
	"cosmos/internal/dram"
	"cosmos/internal/memsys"
	"cosmos/internal/prefetch"
	"cosmos/internal/secmem"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
)

// Config is the Table 3 machine.
type Config struct {
	Cores int

	L1Bytes, L1Ways   int
	L2Bytes, L2Ways   int
	LLCBytes, LLCWays int
	L1Lat, L2Lat      uint64
	LLCLat            uint64

	// NonMemCycles is the compute time each access group carries (the
	// non-memory instructions between memory references).
	NonMemCycles uint64
	// InstrPerAccess converts accesses to instructions for IPC.
	InstrPerAccess uint64
	// MLP divides off-chip stall time, modelling OoO overlap of misses.
	MLP uint64

	MC secmem.Config
}

// DefaultConfig returns the paper's 4-core setup (Table 3).
func DefaultConfig() Config {
	return Config{
		Cores:          4,
		L1Bytes:        32 << 10,
		L1Ways:         2,
		L2Bytes:        1 << 20,
		L2Ways:         8,
		LLCBytes:       8 << 20,
		LLCWays:        16,
		L1Lat:          2,
		L2Lat:          20,
		LLCLat:         128,
		NonMemCycles:   4,
		InstrPerAccess: 4,
		MLP:            4,
		MC:             secmem.DefaultConfig(),
	}
}

// EightCore scales the default to the Fig 15 8-core / 16MB-LLC machine.
func EightCore() Config {
	c := DefaultConfig()
	c.Cores = 8
	c.LLCBytes = 16 << 20
	c.MC.Cores = 8
	return c
}

type levelStats struct {
	accesses uint64
	misses   uint64
}

func (l levelStats) missRate() float64 {
	if l.accesses == 0 {
		return 0
	}
	return float64(l.misses) / float64(l.accesses)
}

// System is one simulated machine instance.
type System struct {
	cfg    Config
	design secmem.Design

	l1s []*cache.Cache
	l2s []*cache.Cache
	llc *cache.Cache
	mc  *secmem.Engine

	threadCycles []uint64
	demand       [3]levelStats // L1, L2, LLC

	accesses     uint64
	reads        uint64
	writes       uint64
	offChipReads uint64
	fetchLatSum  uint64
	bypassed     uint64 // accesses that skipped the L2/LLC walk latency

	// Telemetry (all nil when disabled — the fast path costs one branch).
	sampler   *telemetry.Sampler
	tracer    *telemetry.Tracer
	fetchHist *telemetry.Histogram
}

// New builds a system for the given design point.
func New(cfg Config, design secmem.Design) *System {
	cfg.MC.Cores = cfg.Cores
	s := &System{cfg: cfg, design: design}
	for c := 0; c < cfg.Cores; c++ {
		s.l1s = append(s.l1s, cache.New("l1", cfg.L1Bytes, cfg.L1Ways, cache.NewLRU()))
		s.l2s = append(s.l2s, cache.New("l2", cfg.L2Bytes, cfg.L2Ways, cache.NewLRU()))
	}
	s.llc = cache.New("llc", cfg.LLCBytes, cfg.LLCWays, cache.NewLRU())
	s.mc = secmem.NewEngine(cfg.MC, design)
	s.threadCycles = make([]uint64, cfg.Cores)
	return s
}

// MC exposes the memory controller (for experiment harnesses).
func (s *System) MC() *secmem.Engine { return s.mc }

// RegisterMetrics registers the whole system's metric set under root:
// run-level access counters and derived rates, the off-chip fetch-latency
// histogram, per-core L1/L2 and shared-LLC cache metrics, and everything the
// memory controller exports (CTR pipeline, traffic classes, DRAM, RL
// predictors). Call once after New and before the first sampled access.
func (s *System) RegisterMetrics(root *telemetry.Scope) {
	sys := root.Scope("sim")
	sys.Counter("accesses", &s.accesses)
	sys.Counter("reads", &s.reads)
	sys.Counter("writes", &s.writes)
	sys.Counter("offchip_reads", &s.offChipReads)
	sys.Counter("bypassed", &s.bypassed)
	sys.RateOf("bypass_rate", &s.bypassed, &s.offChipReads)
	sys.RateOf("avg_fetch_lat", &s.fetchLatSum, &s.offChipReads)
	sys.Gauge("ipc", func() float64 { return s.Results("").IPC })
	s.fetchHist = sys.Histogram("fetch_latency")

	for c := 0; c < s.cfg.Cores; c++ {
		core := root.Scope(fmt.Sprintf("core%d", c))
		s.l1s[c].RegisterMetrics(core.Scope("l1"))
		s.l2s[c].RegisterMetrics(core.Scope("l2"))
	}
	s.llc.RegisterMetrics(root.Scope("llc"))
	s.mc.RegisterMetrics(root.Scope("secmem"))
}

// AttachSampler enables interval sampling during Run. The sampler must be
// built over a registry this system registered into.
func (s *System) AttachSampler(sp *telemetry.Sampler) { s.sampler = sp }

// AttachTracer enables event tracing of off-chip accesses: for every
// off-chip fetch the three racing chains (walk / ctr / data, see Step) are
// recorded as Chrome trace_event slices on the owning core's lane.
func (s *System) AttachTracer(tr *telemetry.Tracer) {
	s.tracer = tr
	for c := 0; c < s.cfg.Cores; c++ {
		tr.SetProcessName(c, fmt.Sprintf("core%d", c))
		tr.SetThreadName(c, tidFetch, "fetch")
		tr.SetThreadName(c, tidWalk, "walk")
		tr.SetThreadName(c, tidCtr, "ctr")
		tr.SetThreadName(c, tidData, "data")
	}
}

// Trace track ids within one core's lane: the critical-path envelope plus
// the three racing chains of an off-chip access.
const (
	tidFetch = iota
	tidWalk
	tidCtr
	tidData
)

const sigWB uint16 = 59999

// wbToL2 installs a dirty line evicted from L1 into L2, cascading evictions
// down the hierarchy. Writebacks do not fetch from DRAM.
func (s *System) wbToL2(c int, now uint64, line uint64) {
	r := s.l2s[c].Access(line, true, sigWB)
	if r.Evicted && r.EvictedDirty {
		s.wbToLLC(c, now, r.EvictedLine)
	}
}

func (s *System) wbToLLC(c int, now uint64, line uint64) {
	r := s.llc.Access(line, true, sigWB)
	if r.Evicted && r.EvictedDirty {
		s.wbToDRAM(c, now, r.EvictedLine)
	}
}

// wbToDRAM writes a line back to memory: the data write, the counter
// increment (with possible re-encryption) and the MAC update.
func (s *System) wbToDRAM(c int, now uint64, line uint64) {
	addr := memsys.LineToAddr(line)
	s.mc.DataDRAM(now, addr, true)
	if s.design.Secure && s.mc.InSecureRegion(addr) {
		s.mc.CtrAccess(c, now, line, true)
		s.mc.MACAccess(c, now, line, true)
	}
}

// Step processes one access and returns its critical-path latency.
func (s *System) Step(a memsys.Access) uint64 {
	c := int(a.Thread) % s.cfg.Cores
	now := s.threadCycles[c]
	write := a.Type == memsys.Write
	line := a.Addr.Line()

	s.accesses++
	if write {
		s.writes++
	} else {
		s.reads++
	}

	// L1
	s.demand[0].accesses++
	r1 := s.l1s[c].Access(line, write, a.Region)
	if r1.Evicted && r1.EvictedDirty {
		s.wbToL2(c, now, r1.EvictedLine)
	}
	if r1.Hit {
		lat := s.cfg.L1Lat
		s.advance(c, write, a.Dep, lat)
		return lat
	}
	s.demand[0].misses++

	// L1 miss: early CTR access / data location prediction. Accesses
	// outside a bounded secure region (SGXv1-style EPC) take the
	// non-protected path.
	secure := s.design.Secure && s.mc.InSecureRegion(a.Addr)
	var pred core.Prediction
	predictedOff := false
	earlyCtr := false
	var ctrRes secmem.CtrResult
	switch s.design.Early {
	case secmem.EarlyPredicted:
		pred = s.mc.DataPred.Predict(uint64(a.Addr))
		predictedOff = pred.OffChip
		if predictedOff && secure {
			ctrRes = s.mc.CtrAccess(c, now, line, false)
			earlyCtr = true
		}
	case secmem.EarlyAll:
		if secure {
			ctrRes = s.mc.CtrAccess(c, now, line, false)
			earlyCtr = true
		}
	}

	// L2
	s.demand[1].accesses++
	r2 := s.l2s[c].Access(line, false, a.Region)
	if r2.Evicted && r2.EvictedDirty {
		s.wbToLLC(c, now, r2.EvictedLine)
	}
	if r2.Hit {
		if s.design.Early == secmem.EarlyPredicted {
			s.mc.DataPred.Learn(pred, false)
			if predictedOff && !write {
				s.mc.WastedFetch(now, a.Addr)
			}
		}
		lat := s.cfg.L1Lat + s.cfg.L2Lat
		s.advance(c, write, a.Dep, lat)
		return lat
	}
	s.demand[1].misses++

	// LLC
	s.demand[2].accesses++
	r3 := s.llc.Access(line, false, a.Region)
	if r3.Evicted && r3.EvictedDirty {
		s.wbToDRAM(c, now, r3.EvictedLine)
	}
	if r3.Hit {
		if s.design.Early == secmem.EarlyPredicted {
			s.mc.DataPred.Learn(pred, false)
			if predictedOff {
				s.mc.WastedFetch(now, a.Addr)
			}
		}
		lat := s.cfg.L1Lat + s.cfg.L2Lat + s.cfg.LLCLat
		s.advance(c, write, a.Dep, lat)
		return lat
	}
	s.demand[2].misses++

	// Off-chip. All timing below is measured from t0 = the L1-miss
	// point. Three event chains race:
	//
	//   data:  the DRAM read. Memory controllers issue it speculatively
	//          in parallel with the LLC tag lookup (it starts after the
	//          L2 miss for normal walks, right at t0 for predicted-off
	//          bypasses — gated by the concurrent walk's confirmation).
	//   ctr:   the counter pipeline + OTP generation (AES). It starts
	//          at t0 for early designs (EMCC, predicted-off COSMOS) and
	//          only after the LLC miss is detected for the baseline —
	//          that serialisation is exactly what COSMOS removes.
	//   walk:  the L2+LLC lookups, which must confirm the miss before
	//          any speculative data can retire.
	if s.design.Early == secmem.EarlyPredicted {
		s.mc.DataPred.Learn(pred, true)
	}
	walkLat := s.cfg.L2Lat + s.cfg.LLCLat
	if !earlyCtr && secure {
		ctrRes = s.mc.CtrAccess(c, now, line, false)
	}

	dataLat := s.mc.DataDRAM(now, a.Addr, false)
	var ctrReady uint64
	if secure {
		s.mc.MACAccess(c, now, line, false)
		otp := ctrRes.Latency + s.cfg.MC.AESLat
		if earlyCtr {
			ctrReady = otp // counter pipeline started at t0
		} else {
			ctrReady = walkLat + otp // serialised behind the walk
		}
	}

	var dataReady uint64
	if predictedOff {
		// Speculative fetch issued at t0; usable once the walk
		// confirms the miss.
		dataReady = max64(walkLat, dataLat)
		s.bypassed++
	} else {
		// Without a prediction the DRAM read cannot issue before the
		// LLC reports the miss (gem5-classic serialisation).
		dataReady = walkLat + dataLat
	}

	fetchEnd := max64(dataReady, ctrReady)
	if secure {
		fetchEnd++ // final OTP XOR
	}
	lat := s.cfg.L1Lat + fetchEnd
	s.offChipReads++
	s.fetchLatSum += fetchEnd

	if s.fetchHist != nil {
		s.fetchHist.Observe(fetchEnd)
	}
	if s.tracer != nil {
		s.traceFetch(c, now, walkLat, dataLat, fetchEnd, ctrRes, secure, earlyCtr, predictedOff)
	}

	s.advance(c, write, a.Dep, lat)
	return lat
}

// traceFetch records the racing chains of one off-chip access as slices on
// the core's lane, timestamped in thread cycles from t0 = the L1-miss point.
func (s *System) traceFetch(c int, now, walkLat, dataLat, fetchEnd uint64, ctrRes secmem.CtrResult, secure, earlyCtr, predictedOff bool) {
	t0 := now + s.cfg.L1Lat
	s.tracer.Slice(c, tidFetch, "fetch", "offchip", t0, fetchEnd)
	s.tracer.Slice(c, tidWalk, "l2+llc walk", "offchip", t0, walkLat)
	if secure {
		ctrStart := t0
		if !earlyCtr {
			ctrStart += walkLat // serialised behind the walk
		}
		name := "ctr+otp"
		if ctrRes.Hit {
			name = "ctr hit+otp"
		}
		s.tracer.Slice(c, tidCtr, name, "offchip", ctrStart, ctrRes.Latency+s.cfg.MC.AESLat)
	}
	dataStart := t0
	name := "dram (speculative)"
	if !predictedOff {
		dataStart += walkLat // issue gated on the LLC miss
		name = "dram"
	}
	s.tracer.Slice(c, tidData, name, "offchip", dataStart, dataLat)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// advance applies the cycle cost of one access group to its thread: compute
// cycles plus the memory stall, with off-chip stalls divided by the MLP
// overlap factor. Dependent loads (pointer chasing) get no overlap; writes
// retire through the store buffer (L1 latency only).
func (s *System) advance(c int, write, dep bool, lat uint64) {
	stall := lat
	switch {
	case write:
		stall = s.cfg.L1Lat
	case dep:
		// serialising load: the full latency lands on the thread
	case lat > s.cfg.L1Lat:
		stall = s.cfg.L1Lat + (lat-s.cfg.L1Lat)/s.cfg.MLP
	}
	s.threadCycles[c] += s.cfg.NonMemCycles + stall
}

// Warmup drives the system for n accesses and then clears every
// measurement, keeping all learned state: cache contents, Q-tables, CET.
// Use it to measure steady-state behaviour without the cold-start
// transient.
func (s *System) Warmup(gen trace.Generator, n uint64) {
	for i := uint64(0); i < n; i++ {
		a, ok := gen.Next()
		if !ok {
			break
		}
		s.Step(a)
	}
	s.ResetStats()
}

// ResetStats zeroes measurements (not learned state); see Warmup.
func (s *System) ResetStats() {
	s.demand = [3]levelStats{}
	s.accesses, s.reads, s.writes = 0, 0, 0
	s.offChipReads, s.fetchLatSum, s.bypassed = 0, 0, 0
	for i := range s.threadCycles {
		s.threadCycles[i] = 0
	}
	for _, c := range s.l1s {
		c.Stats = cache.Stats{}
	}
	for _, c := range s.l2s {
		c.Stats = cache.Stats{}
	}
	s.llc.Stats = cache.Stats{}
	s.mc.ResetStats()
}

// Run drives the system from a generator for at most maxAccesses. When a
// sampler is attached, every registered metric is snapshotted each interval
// boundary and the final partial interval is flushed before the results are
// computed.
func (s *System) Run(gen trace.Generator, maxAccesses uint64) Results {
	r, _ := s.RunContext(context.Background(), gen, maxAccesses)
	return r
}

// CancelCheckEvery is the cancellation-poll cadence of RunContext: the
// context is consulted once per this many steps, so a cancellation lands
// mid-simulation after at most this many additional accesses. A power of
// two; at ~10M steps/s the poll itself is unmeasurable.
const CancelCheckEvery = 4096

// RunContext is Run with cooperative cancellation: the context is checked
// every CancelCheckEvery steps, and on cancellation the partial Results
// accumulated so far are returned together with ctx.Err(). A Background
// (or otherwise non-cancellable) context costs nothing: its nil Done
// channel skips the poll entirely.
func (s *System) RunContext(ctx context.Context, gen trace.Generator, maxAccesses uint64) (Results, error) {
	defer trace.CloseIfCloser(gen)
	done := ctx.Done()
	var steps uint64
	for s.accesses < maxAccesses {
		a, ok := gen.Next()
		if !ok {
			break
		}
		s.Step(a)
		if s.sampler != nil {
			s.sampler.MaybeSample(s.accesses)
		}
		steps++
		if done != nil && steps&(CancelCheckEvery-1) == 0 {
			select {
			case <-done:
				if s.sampler != nil {
					s.sampler.Flush(s.accesses)
				}
				return s.Results(gen.Name()), ctx.Err()
			default:
			}
		}
	}
	if s.sampler != nil {
		s.sampler.Flush(s.accesses)
	}
	return s.Results(gen.Name()), nil
}

// Results snapshots every metric the experiment harness consumes.
type Results struct {
	Design   string
	Workload string

	Accesses     uint64
	Reads        uint64
	Writes       uint64
	Instructions uint64
	Cycles       uint64
	IPC          float64

	L1MissRate  float64
	L2MissRate  float64
	LLCMissRate float64

	CtrAccesses  uint64
	CtrMissRate  float64
	OffChipReads uint64
	Bypassed     uint64
	// BypassRate is the fraction of off-chip reads whose L2/LLC walk was
	// bypassed by an off-chip prediction (Bypassed / OffChipReads).
	BypassRate float64
	// AvgFetchLat is the mean off-chip fetch latency in cycles, measured
	// from the L1-miss point to data ready (FetchLatSum / OffChipReads).
	AvgFetchLat float64

	Traffic secmem.Traffic
	DRAM    dram.Stats

	DataPred *core.DataStats
	CtrPred  *core.CtrStats
	Prefetch prefetch.Stats

	SMAT float64
}

// Results computes the final metrics.
func (s *System) Results(workload string) Results {
	var maxCycles uint64
	for _, cyc := range s.threadCycles {
		if cyc > maxCycles {
			maxCycles = cyc
		}
	}
	res := Results{
		Design:       s.design.Name,
		Workload:     workload,
		Accesses:     s.accesses,
		Reads:        s.reads,
		Writes:       s.writes,
		Instructions: s.accesses * s.cfg.InstrPerAccess,
		Cycles:       maxCycles,
		L1MissRate:   s.demand[0].missRate(),
		L2MissRate:   s.demand[1].missRate(),
		LLCMissRate:  s.demand[2].missRate(),
		CtrAccesses:  s.mc.CtrHits + s.mc.CtrMisses,
		CtrMissRate:  s.mc.CtrMissRate(),
		OffChipReads: s.offChipReads,
		Bypassed:     s.bypassed,
		Traffic:      s.mc.Traffic,
		DRAM:         s.mc.DRAMStats(),
		Prefetch:     s.mc.PrefetchStats(),
	}
	if maxCycles > 0 {
		res.IPC = float64(res.Instructions) / float64(maxCycles)
	}
	if s.offChipReads > 0 {
		res.BypassRate = float64(s.bypassed) / float64(s.offChipReads)
		res.AvgFetchLat = float64(s.fetchLatSum) / float64(s.offChipReads)
	}
	if s.mc.DataPred != nil {
		st := s.mc.DataPred.Stats
		res.DataPred = &st
	}
	if s.mc.CtrPred != nil {
		st := s.mc.CtrPred.Stats
		res.CtrPred = &st
	}
	res.SMAT = s.smat()
	return res
}

// smat evaluates Eq 1-2 with measured miss rates and the machine's
// configured latencies; DRAM terms use the model's best-case read latency
// plus an activation blend from the observed row-hit rate.
func (s *System) smat() float64 {
	cfg := s.cfg
	d := s.mc.DRAMStats()
	rowHit := d.RowHitRate()
	dramLat := float64(cfg.MC.DRAM.TCAS+cfg.MC.DRAM.TBus+cfg.MC.DRAM.Queue)*rowHit +
		float64(cfg.MC.DRAM.TRP+cfg.MC.DRAM.TRCD+cfg.MC.DRAM.TCAS+cfg.MC.DRAM.TBus+cfg.MC.DRAM.Queue)*(1-rowHit)

	mrL1 := s.demand[0].missRate()
	mrL2 := s.demand[1].missRate()
	mrLLC := s.demand[2].missRate()

	var ctrTerm float64
	if s.design.Secure {
		mrCtr := s.mc.CtrMissRate()
		verify := float64(cfg.MC.AuthLat)
		ctrTerm = float64(cfg.MC.CtrHitLat) + mrCtr*(dramLat+verify)
		ctrTerm += float64(cfg.MC.AESLat)
	}

	// Bypass share (§6.1.3): the fraction of L1 misses that skip the
	// L2/LLC walk entirely and go straight to the CTR cache and DRAM.
	var b float64
	if s.demand[0].misses > 0 {
		b = float64(s.bypassed) / float64(s.demand[0].misses)
	}
	walked := float64(cfg.L2Lat) + mrL2*(float64(cfg.LLCLat)+mrLLC*(ctrTerm+dramLat))
	direct := ctrTerm + dramLat
	return float64(cfg.L1Lat) + mrL1*((1-b)*walked+b*direct)
}
