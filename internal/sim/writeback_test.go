package sim

import (
	"testing"

	"cosmos/internal/cache"
	"cosmos/internal/secmem"
	"cosmos/internal/trace"
)

// TestDRAMWriteConservation checks the system-level writeback conservation
// property over every registered design: DRAM write traffic decomposes
// exactly into LLC dirty evictions (the data writes) plus the
// secure-metadata writes the controller generates (counter writebacks, MAC
// writebacks, re-encryption bursts). Nothing else may write DRAM, and no
// dirty eviction may be dropped or double-counted.
func TestDRAMWriteConservation(t *testing.T) {
	for _, d := range secmem.AllDesigns() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			s := New(testConfig(), d)
			gen := trace.NewUniform(region(1<<26, 256<<20), 30, 11, 4)
			r := s.Run(trace.Limit(gen, 120000), 120000)

			chain := s.Chain(0)
			llc := chain[len(chain)-1].(*cache.Level).Cache()
			if llc.Stats.Writebacks == 0 {
				t.Fatal("no LLC dirty evictions; property vacuous")
			}
			if got, want := r.Traffic.DataWrite, llc.Stats.Writebacks; got != want {
				t.Fatalf("data DRAM writes %d != LLC dirty evictions %d", got, want)
			}
			meta := r.Traffic.CtrWrite + r.Traffic.MACWrite + r.Traffic.ReEncWrite
			if got, want := r.DRAM.Writes, r.Traffic.DataWrite+meta; got != want {
				t.Fatalf("DRAM writes %d != data %d + metadata %d",
					got, r.Traffic.DataWrite, meta)
			}
			if !d.Secure && meta != 0 {
				t.Fatalf("non-secure design generated %d metadata writes", meta)
			}
		})
	}
}
