package sim

import (
	"context"
	"errors"
	"testing"

	"cosmos/internal/secmem"
	"cosmos/internal/trace"
)

func TestRunContextCancelBounded(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := New(testConfig(), secmem.DesignCosmos())
	gen := trace.NewUniform(region(1<<28, 256<<20), 10, 7, 1)
	const max = 10_000_000 // far more than a cancelled run may consume
	r, err := s.RunContext(ctx, trace.Limit(gen, max), max)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is polled every CancelCheckEvery steps: a pre-cancelled
	// context must stop at the very first poll.
	if r.Accesses == 0 || r.Accesses > CancelCheckEvery {
		t.Fatalf("cancelled run consumed %d accesses, want (0, %d]", r.Accesses, CancelCheckEvery)
	}
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	run := func(viaCtx bool) Results {
		s := New(testConfig(), secmem.DesignCosmos())
		gen := trace.NewUniform(region(1<<28, 256<<20), 10, 7, 1)
		if viaCtx {
			r, err := s.RunContext(context.Background(), trace.Limit(gen, 30_000), 30_000)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		return s.Run(trace.Limit(gen, 30_000), 30_000)
	}
	a, b := run(false), run(true)
	if a.Cycles != b.Cycles || a.Traffic != b.Traffic {
		t.Fatal("RunContext with a background context must match Run exactly")
	}
}
