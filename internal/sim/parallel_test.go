package sim

import (
	"reflect"
	"testing"

	"cosmos/internal/fault"
	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
	"cosmos/internal/trace"
)

// engineGen builds the shared workload for the engine-equivalence tests: a
// four-thread interleave of mixed access patterns with enough writes that
// dirty writebacks escape the private levels and cross into the shared
// tail, exercising the deferred-writeback replay.
func engineGen() trace.Generator {
	r := memsys.Region{Base: 1 << 28, Size: 64 << 20, Elem: 1}
	return trace.NewInterleave("mix", []trace.Generator{
		trace.NewUniform(r, 40, 11, 1),
		trace.NewZipf(r, 1<<16, 0.9, 7, 2),
		trace.NewSequential(r, 3, 3),
		trace.NewPointerChase(r, 1<<14, 5, 4),
	}, 17)
}

// engineRun executes one run under the chosen engine. parallelCores <= 0
// selects the raw scalar engine (gen.Next + Step, no block decoding);
// 1 selects the serial block-decoded RunContext loop; > 1 the epoch-barrier
// parallel engine. Small private caches force writeback traffic.
func engineRun(t *testing.T, design secmem.Design, parallelCores int, fc *fault.Config, accesses uint64) (Results, []fault.Event) {
	t.Helper()
	cfg := testConfig()
	cfg.L1Bytes = 16 << 10
	cfg.L2Bytes = 128 << 10
	cfg.LLCBytes = 512 << 10
	cfg.Fault = fc
	s := New(cfg, design)
	var events []fault.Event
	if in := s.Faults(); in != nil {
		in.Notify = func(ev fault.Event) { events = append(events, ev) }
	}
	gen := trace.Limit(engineGen(), accesses)
	if parallelCores <= 0 {
		for {
			a, ok := gen.Next()
			if !ok {
				break
			}
			s.Step(a)
		}
		return s.Results(gen.Name()), events
	}
	s.SetParallelCores(parallelCores)
	if parallelCores > 1 && !s.parallelEligible() {
		t.Fatalf("parallel engine unexpectedly ineligible (cores=%d)", parallelCores)
	}
	return s.Run(gen, accesses), events
}

// TestEngineEquivalence is the tentpole property: for every design point,
// the scalar engine, the block-decoded serial engine and the epoch-barrier
// parallel engine (1, 4 and 8 requested workers) produce DeepEqual-identical
// Results on the same workload.
func TestEngineEquivalence(t *testing.T) {
	const accesses = 40_000
	for _, d := range secmem.AllDesigns() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			want, _ := engineRun(t, d, 0, nil, accesses)
			if want.Accesses != accesses {
				t.Fatalf("scalar engine ran %d accesses, want %d", want.Accesses, accesses)
			}
			for _, pc := range []int{1, 4, 8} {
				got, _ := engineRun(t, d, pc, nil, accesses)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("parallel-cores %d diverged from scalar:\nscalar %+v\nengine %+v", pc, want, got)
				}
			}
		})
	}
}

// TestEngineEquivalenceUnderFaults extends the property to fault campaigns:
// with a nonzero fault seed the Results, the fault report and the full
// ordered violation log must be identical across engines — fault draws are
// a pure function of the global access index, which every engine replays in
// the same order. A crash point is included so mid-epoch recovery is
// exercised under the parallel engine.
func TestEngineEquivalenceUnderFaults(t *testing.T) {
	const accesses = 40_000
	fc := &fault.Config{Seed: 13, Rate: 2e-4, CrashAt: 17_777}
	for _, d := range []secmem.Design{secmem.DesignCosmos(), secmem.DesignMorph()} {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			want, wantEv := engineRun(t, d, 0, fc, accesses)
			if want.Fault == nil || want.Fault.Injected == 0 {
				t.Fatalf("campaign injected nothing: %+v", want.Fault)
			}
			for _, pc := range []int{1, 4, 8} {
				got, gotEv := engineRun(t, d, pc, fc, accesses)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("parallel-cores %d diverged under faults:\nscalar %+v\nengine %+v", pc, want, got)
				}
				if !reflect.DeepEqual(wantEv, gotEv) {
					t.Fatalf("parallel-cores %d violation log diverged: %d vs %d events", pc, len(wantEv), len(gotEv))
				}
			}
		})
	}
}

// TestParallelAllPrivateHierarchy covers the sharedSink = terminal case: a
// hierarchy with no shared on-chip level at all, where every escaped
// writeback drains straight into the secure-memory terminal.
func TestParallelAllPrivateHierarchy(t *testing.T) {
	mk := func(pc int) Results {
		cfg := testConfig()
		cfg.Levels = []LevelSpec{
			{Name: "l1", Bytes: 16 << 10, Ways: 2, Lat: 2},
			{Name: "l2", Bytes: 64 << 10, Ways: 4, Lat: 20},
		}
		s := New(cfg, secmem.DesignCosmos())
		s.SetParallelCores(pc)
		if pc > 1 && !s.parallelEligible() {
			t.Fatalf("all-private hierarchy must be parallel-eligible")
		}
		return s.Run(trace.Limit(engineGen(), 30_000), 30_000)
	}
	want := mk(1)
	if got := mk(4); !reflect.DeepEqual(want, got) {
		t.Fatalf("all-private hierarchy diverged:\nserial %+v\nparallel %+v", want, got)
	}
}

// TestParallelFallsBackToSerial enumerates the fallback conditions: the
// knob off, a single-core config, a hierarchy with no private levels, and
// an attached sampler all must run the serial engine.
func TestParallelFallsBackToSerial(t *testing.T) {
	s := New(testConfig(), secmem.DesignNP())
	if s.parallelEligible() {
		t.Fatal("eligible with the knob off")
	}
	s.SetParallelCores(4)
	if !s.parallelEligible() {
		t.Fatal("ineligible with knob on, multi-core, private levels present")
	}

	cfg := testConfig()
	cfg.Cores = 1
	cfg.MC.Cores = 1
	one := New(cfg, secmem.DesignNP())
	one.SetParallelCores(4)
	if one.parallelEligible() {
		t.Fatal("single-core config must fall back to serial")
	}

	cfg = testConfig()
	cfg.Levels = []LevelSpec{{Name: "llc", Bytes: 1 << 20, Ways: 8, Lat: 30, Shared: true}}
	shared := New(cfg, secmem.DesignNP())
	shared.SetParallelCores(4)
	if shared.parallelEligible() {
		t.Fatal("shared-only hierarchy must fall back to serial")
	}
}
