package sim

import (
	"reflect"
	"testing"

	"cosmos/internal/fault"
	"cosmos/internal/secmem"
	"cosmos/internal/trace"
)

// faultRun executes a small COSMOS campaign under the given fault config
// (nil = fault-free) and returns the Results plus the violation event log.
// The on-chip caches are shrunk so dirty writebacks (and hence dirty
// counter-cache lines) exist within the short run.
func faultRun(t *testing.T, fc *fault.Config, accesses uint64) (Results, []fault.Event) {
	t.Helper()
	cfg := testConfig()
	cfg.L2Bytes = 128 << 10
	cfg.LLCBytes = 512 << 10
	cfg.Fault = fc
	s := New(cfg, secmem.DesignCosmos())
	var events []fault.Event
	if in := s.Faults(); in != nil {
		in.Notify = func(ev fault.Event) { events = append(events, ev) }
	}
	gen := trace.NewUniform(region(1<<28, 256<<20), 10, 11, 1)
	return s.Run(trace.Limit(gen, accesses), accesses), events
}

// TestFaultRateZeroBitIdentical is the hard invariant of the fault plane: a
// zero-rate config must not even build an injector, and the Results must be
// bit-identical to a run with no fault section at all.
func TestFaultRateZeroBitIdentical(t *testing.T) {
	base, _ := faultRun(t, nil, 30000)
	zero, _ := faultRun(t, &fault.Config{Seed: 9}, 30000)
	if !reflect.DeepEqual(base, zero) {
		t.Fatalf("fault-rate 0 perturbed the Results:\nbase %+v\nzero %+v", base, zero)
	}
	cfg := testConfig()
	cfg.Fault = &fault.Config{Seed: 9}
	if s := New(cfg, secmem.DesignCosmos()); s.Faults() != nil {
		t.Fatal("zero-rate config built an injector")
	}
	if base.Fault != nil {
		t.Fatal("fault-free Results must carry no fault report")
	}
}

// TestFaultDetectionAccounting checks the 100%-detection contract: on a
// secure design every injected corruption of a covered kind is detected
// exactly once — Detected+Silent == Injected with Silent == 0, the per-kind
// detections sum to the total, and every detection ends either transient or
// poisoned.
func TestFaultDetectionAccounting(t *testing.T) {
	r, events := faultRun(t, &fault.Config{Seed: 13, Rate: 2e-4}, 60000)
	rep := r.Fault
	if rep == nil {
		t.Fatal("fault campaign produced no report")
	}
	if rep.Injected == 0 {
		t.Fatal("campaign injected nothing; rate too low for the run length")
	}
	if rep.Detected+rep.Silent != rep.Injected {
		t.Fatalf("detected %d + silent %d != injected %d", rep.Detected, rep.Silent, rep.Injected)
	}
	if rep.Silent != 0 {
		t.Fatalf("COSMOS covers every fetched object, yet %d faults were silent", rep.Silent)
	}
	if sum := rep.DataDetected + rep.CtrDetected + rep.MACDetected + rep.MTDetected; sum != rep.Detected {
		t.Fatalf("per-kind detections sum to %d, want %d", sum, rep.Detected)
	}
	if rep.TransientRepaired+rep.Poisoned != rep.Detected {
		t.Fatalf("transient %d + poisoned %d != detected %d",
			rep.TransientRepaired, rep.Poisoned, rep.Detected)
	}
	if rep.Refetches == 0 || rep.RetryCycles == 0 {
		t.Fatalf("detected faults must charge retries: %+v", rep)
	}
	if uint64(len(events)) != rep.Injected {
		t.Fatalf("event log has %d entries for %d injections", len(events), rep.Injected)
	}
}

// TestFaultSilentOnUnprotectedDesign: the NP baseline has no integrity
// machinery, so data corruptions pass through undetected and accumulate in
// the functional shadow.
func TestFaultSilentOnUnprotectedDesign(t *testing.T) {
	cfg := testConfig()
	cfg.Fault = &fault.Config{Seed: 13, Rate: 2e-4, Kinds: "data"}
	s := New(cfg, secmem.DesignNP())
	gen := trace.NewUniform(region(1<<28, 256<<20), 10, 11, 1)
	r := s.Run(trace.Limit(gen, 60000), 60000)
	rep := r.Fault
	if rep == nil || rep.Injected == 0 {
		t.Fatalf("campaign injected nothing: %+v", rep)
	}
	if rep.Detected != 0 {
		t.Fatalf("NP cannot detect anything, yet Detected = %d", rep.Detected)
	}
	if rep.Silent != rep.Injected {
		t.Fatalf("silent %d != injected %d", rep.Silent, rep.Injected)
	}
	if s.Faults().ShadowCorrupted() == 0 {
		t.Fatal("silent corruptions must stay resident in the shadow")
	}
}

// TestFaultDeterminism: the fault stream is a pure function of the seed, so
// two runs under the same config agree on everything — Results, the fault
// report, and the full ordered violation log.
func TestFaultDeterminism(t *testing.T) {
	fc := &fault.Config{Seed: 21, Rate: 3e-4}
	r1, e1 := faultRun(t, fc, 40000)
	r2, e2 := faultRun(t, fc, 40000)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("Results diverge under the same fault seed:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("violation logs diverge: %d vs %d events", len(e1), len(e2))
	}
	r3, _ := faultRun(t, &fault.Config{Seed: 22, Rate: 3e-4}, 40000)
	if reflect.DeepEqual(r1.Fault, r3.Fault) {
		t.Fatal("different seeds produced the identical campaign")
	}
}

// TestCrashRecovery: a -crash-at run completes, books the crash coordinates
// and a nonzero recovery cost, and is slower end-to-end than the same run
// without the crash.
func TestCrashRecovery(t *testing.T) {
	clean, _ := faultRun(t, nil, 30000)
	crashed, events := faultRun(t, &fault.Config{CrashAt: 15000}, 30000)
	rep := crashed.Fault
	if rep == nil {
		t.Fatal("crash run produced no fault report")
	}
	if rep.CrashStep != 15000 {
		t.Fatalf("CrashStep = %d, want 15000", rep.CrashStep)
	}
	if rep.RecoveryCycles == 0 || rep.RecoveryFetches == 0 || rep.CrashLinesLost == 0 {
		t.Fatalf("recovery cost not booked: %+v", rep)
	}
	if crashed.Cycles <= clean.Cycles {
		t.Fatalf("crash run cycles %d should exceed clean run %d", crashed.Cycles, clean.Cycles)
	}
	var sawCrash bool
	for _, ev := range events {
		if ev.Outcome == "crash" {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("crash event not published to the Notify hook")
	}
}

// TestCrashDropRL: losing the learned tables at the crash point must not
// break the run; the predictor relearns from scratch.
func TestCrashDropRL(t *testing.T) {
	r, _ := faultRun(t, &fault.Config{CrashAt: 15000, CrashDropRL: true}, 30000)
	if r.Fault == nil || r.Fault.RecoveryCycles == 0 {
		t.Fatalf("crash-drop-rl run did not book recovery: %+v", r.Fault)
	}
	if r.DataPred == nil || r.DataPred.Total() == 0 {
		t.Fatal("predictor dead after table reset")
	}
}

// TestPoisonedLinesDegradeGracefully forces every fault persistent: lines
// get quarantined, counter poisonings force block re-encryptions, and the
// run still completes.
func TestPoisonedLinesDegradeGracefully(t *testing.T) {
	r, events := faultRun(t, &fault.Config{Seed: 5, Rate: 3e-4, TransientPct: -1}, 40000)
	rep := r.Fault
	if rep == nil || rep.Detected == 0 {
		t.Fatalf("campaign detected nothing: %+v", rep)
	}
	if rep.TransientRepaired != 0 {
		t.Fatalf("TransientPct -1 must disable transients: %+v", rep)
	}
	if rep.Poisoned != rep.Detected {
		t.Fatalf("poisoned %d != detected %d", rep.Poisoned, rep.Detected)
	}
	for _, ev := range events {
		if ev.Outcome == "transient" {
			t.Fatalf("transient event under TransientPct -1: %+v", ev)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutate := func(f func(*Config)) error {
		cfg := testConfig()
		f(&cfg)
		return cfg.Validate()
	}
	cases := []struct {
		name string
		f    func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"zero mlp", func(c *Config) { c.MLP = 0 }},
		{"zero instr-per-access", func(c *Config) { c.InstrPerAccess = 0 }},
		{"non-power-of-two L1", func(c *Config) { c.L1Bytes = 48 << 10 }},
		{"zero L2 latency", func(c *Config) { c.L2Lat = 0 }},
		{"zero mem", func(c *Config) { c.MC.MemBytes = 0 }},
		{"bad ctr cache", func(c *Config) { c.MC.CtrCacheBytes = 100 }},
		{"bad dram row", func(c *Config) { c.MC.DRAM.RowBytes = 100 }},
		{"bad fault rate", func(c *Config) { c.Fault = &fault.Config{Rate: 2} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := mutate(tc.f); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
