package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
)

// telemetryGen builds a wide uniform access stream that misses on-chip
// caches often enough to exercise the whole off-chip pipeline.
func telemetryGen() trace.Generator {
	return trace.NewUniform(memsys.Region{Base: 0, Size: 512 << 20, Elem: 1}, 20, 4, 7)
}

func TestRunEmitsIntervalTimeSeries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MC.MemBytes = 1 << 30
	s := New(cfg, secmem.DesignCosmos())

	reg := telemetry.NewRegistry()
	s.RegisterMetrics(reg.Root())

	var jsonl, csvOut strings.Builder
	sp, err := telemetry.NewSampler(reg, telemetry.SamplerConfig{
		Interval: 10_000, JSONL: &jsonl, CSV: &csvOut,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachSampler(sp)

	const accesses = 25_000
	s.Run(trace.Limit(telemetryGen(), accesses), accesses)
	if err := sp.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 3 { // 10k, 20k, final partial 25k
		t.Fatalf("got %d JSONL rows, want 3", len(lines))
	}
	var last map[string]any
	for _, line := range lines {
		last = nil
		if err := json.Unmarshal([]byte(line), &last); err != nil {
			t.Fatalf("unparseable JSONL row: %v\n%s", err, line)
		}
	}
	if got := last["accesses"].(float64); got != accesses {
		t.Errorf("final row accesses = %v, want %d", got, accesses)
	}

	// The acceptance-criteria metric set must be present: per-core cache
	// miss rates, CTR cache hit rate, both predictor headline metrics.
	for _, key := range []string{
		"core0.l1.miss_rate", "core3.l2.miss_rate", "llc.miss_rate",
		"secmem.ctr.hit_rate",
		"secmem.data_pred.accuracy", "secmem.ctr_pred.good_fraction",
		"secmem.data_pred.agent.q_coverage",
		"secmem.traffic.total", "secmem.dram.row_hit_rate",
		"sim.fetch_latency.count", "sim.avg_fetch_lat", "sim.bypass_rate",
	} {
		if _, ok := last[key]; !ok {
			t.Errorf("time-series row missing %q", key)
		}
	}

	// A busy uniform stream must actually move the core metrics.
	if v := last["core0.l1.miss_rate"].(float64); v <= 0 || v > 1 {
		t.Errorf("core0.l1.miss_rate = %v, want in (0, 1]", v)
	}
	if v := last["sim.fetch_latency.count"].(float64); v == 0 {
		t.Error("fetch latency histogram saw no off-chip accesses")
	}
	if v := last["secmem.data_pred.agent.q_coverage"].(float64); v <= 0 {
		t.Error("Q-table coverage stayed at zero despite learning")
	}

	// CSV sink: same row count, header first, parseable shape.
	csvLines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(csvLines) != 4 {
		t.Fatalf("got %d CSV lines, want header + 3 rows", len(csvLines))
	}
	if !strings.HasPrefix(csvLines[0], "interval,accesses,delta,") {
		t.Errorf("CSV header = %q", csvLines[0])
	}
}

func TestRunRecordsChromeTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MC.MemBytes = 1 << 30
	s := New(cfg, secmem.DesignCosmos())

	tr := telemetry.NewTracer(0)
	s.AttachTracer(tr)
	s.Run(trace.Limit(telemetryGen(), 20_000), 20_000)

	if tr.Events() == 0 {
		t.Fatal("no trace events recorded for an off-chip-heavy run")
	}
	var out strings.Builder
	if err := tr.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []telemetry.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	chains := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			chains[ev.Name] = true
		}
	}
	for _, want := range []string{"fetch", "l2+llc walk"} {
		if !chains[want] {
			t.Errorf("trace missing %q slices; saw %v", want, chains)
		}
	}
	// The data chain appears under one of its two labels.
	if !chains["dram"] && !chains["dram (speculative)"] {
		t.Errorf("trace missing data-chain slices; saw %v", chains)
	}
}

// TestTelemetryDoesNotPerturbResults pins the zero-cost claim functionally:
// an instrumented run must produce bit-identical results to a bare one.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	run := func(instrument bool) Results {
		cfg := DefaultConfig()
		cfg.MC.MemBytes = 1 << 30
		s := New(cfg, secmem.DesignCosmos())
		if instrument {
			reg := telemetry.NewRegistry()
			s.RegisterMetrics(reg.Root())
			var sink strings.Builder
			sp, err := telemetry.NewSampler(reg, telemetry.SamplerConfig{Interval: 5_000, JSONL: &sink})
			if err != nil {
				t.Fatal(err)
			}
			s.AttachSampler(sp)
			s.AttachTracer(telemetry.NewTracer(0))
		}
		return s.Run(trace.Limit(telemetryGen(), 15_000), 15_000)
	}
	bare, instrumented := run(false), run(true)
	// Compare the predictor stats by value, then the rest of the structs
	// (which are otherwise pointer-free and directly comparable).
	if (bare.DataPred == nil) != (instrumented.DataPred == nil) ||
		(bare.DataPred != nil && *bare.DataPred != *instrumented.DataPred) {
		t.Errorf("telemetry changed data predictor stats: %+v vs %+v", bare.DataPred, instrumented.DataPred)
	}
	if (bare.CtrPred == nil) != (instrumented.CtrPred == nil) ||
		(bare.CtrPred != nil && *bare.CtrPred != *instrumented.CtrPred) {
		t.Errorf("telemetry changed ctr predictor stats: %+v vs %+v", bare.CtrPred, instrumented.CtrPred)
	}
	bare.DataPred, bare.CtrPred = nil, nil
	instrumented.DataPred, instrumented.CtrPred = nil, nil
	if bare != instrumented {
		t.Errorf("telemetry changed simulation results:\nbare:         %+v\ninstrumented: %+v", bare, instrumented)
	}
}
