package sim

import (
	"testing"

	"cosmos/internal/secmem"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

// goldenRun reproduces exactly what `cosmos-sim -design <d> -workload <w>
// -accesses 300000 -graph-nodes 300000 -seed 42` executes.
func goldenRun(t *testing.T, designName, workload string) Results {
	t.Helper()
	d, err := secmem.DesignByName(designName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MC.Seed = 42
	cfg.MC.Params.Seed = 42
	gen, err := workloads.Build(workload, workloads.Options{
		Threads: 4, Seed: 42, GraphNodes: 300000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg, d)
	return s.Run(trace.Limit(gen, 300000), 300000)
}

// The golden values below were captured from the pre-refactor simulator at
// the same commit the Level-chain rewrite branched from. The refactor must
// preserve them bit-for-bit: any drift here means the request-path
// abstraction changed the timing model, not just its structure.

func TestGoldenSecureDesign(t *testing.T) {
	r := goldenRun(t, "COSMOS", "DFS")
	check := func(name string, got, want any) {
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("Cycles", r.Cycles, uint64(5028126))
	check("IPC", r.IPC, 0.2386575038095704)
	check("L1MissRate", r.L1MissRate, 0.43781333333333333)
	check("L2MissRate", r.L2MissRate, 0.9812553295163845)
	check("LLCMissRate", r.LLCMissRate, 0.8414441116680375)
	check("CtrAccesses", r.CtrAccesses, uint64(128600))
	check("CtrMissRate", r.CtrMissRate, 0.7881726283048212)
	check("OffChipReads", r.OffChipReads, uint64(108447))
	check("Bypassed", r.Bypassed, uint64(84689))
	check("AvgFetchLat", r.AvgFetchLat, 681.3356939334421)
	check("SMAT", r.SMAT, 157.13540344112553)
	check("Traffic", r.Traffic, secmem.Traffic{
		DataRead: 108447, DataWrite: 834,
		CtrRead: 101359, CtrWrite: 797,
		MTRead: 28514, MACRead: 97904, MACWrite: 795,
		WastedDataFetch: 19314,
	})
	check("DRAM.Reads", r.DRAM.Reads, uint64(355538))
	check("DRAM.Writes", r.DRAM.Writes, uint64(2426))
	if r.DataPred == nil || r.DataPred.PredOffCorrect != 84689 {
		t.Errorf("DataPred = %+v, want PredOffCorrect 84689", r.DataPred)
	}
}

func TestGoldenBaselineDesign(t *testing.T) {
	r := goldenRun(t, "NP", "mcf")
	check := func(name string, got, want any) {
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("Cycles", r.Cycles, uint64(18250284))
	check("IPC", r.IPC, 0.06575240144208166)
	check("L1MissRate", r.L1MissRate, 0.72729)
	check("L2MissRate", r.L2MissRate, 0.9967275777200292)
	check("LLCMissRate", r.LLCMissRate, 0.982186294390568)
	check("CtrAccesses", r.CtrAccesses, uint64(0))
	check("OffChipReads", r.OffChipReads, uint64(213599))
	check("Bypassed", r.Bypassed, uint64(0))
	check("AvgFetchLat", r.AvgFetchLat, 851.8353643977734)
	check("SMAT", r.SMAT, 211.79386610549642)
	check("Traffic", r.Traffic, secmem.Traffic{DataRead: 213599, DataWrite: 1214})
	check("DRAM.Writes", r.DRAM.Writes, uint64(1214))
}
