package sim

import (
	"reflect"
	"testing"

	"cosmos/internal/rl"
	"cosmos/internal/secmem"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

// policyRun executes one COSMOS simulation with the given policy pair on
// both predictor roles, optionally on the parallel engine.
func policyRun(t *testing.T, data, ctr *rl.PolicySpec, parallelCores int) Results {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MC.Seed = 42
	cfg.MC.Params.Seed = 42
	cfg.MC.Params.DataPolicy = data
	cfg.MC.Params.CtrPolicy = ctr
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	gen, err := workloads.Build("DFS", workloads.Options{
		Threads: 4, Seed: 42, GraphNodes: 60000, GraphDegree: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg, secmem.DesignCosmos())
	if parallelCores > 1 {
		s.SetParallelCores(parallelCores)
	}
	return s.Run(trace.Limit(gen, 150000), 150000)
}

// frozenSpec trains nothing: a freshly initialised policy frozen as-is is
// enough to pin the deploy path — determinism must not depend on what the
// weights are.
func frozenSpec(t *testing.T, kind string, seed uint64) *rl.PolicySpec {
	t.Helper()
	p, err := rl.NewPolicy(rl.PolicySpec{Kind: kind}, seed)
	if err != nil {
		t.Fatal(err)
	}
	sn := p.Snapshot()
	return &rl.PolicySpec{Kind: kind, Frozen: &sn}
}

// TestFrozenPolicyDeterminism pins the policy zoo's core deployment
// guarantee: a frozen perceptron/MLP pair produces bit-identical Results
// across repeated runs and across serial vs epoch-barrier parallel engines
// at any worker count (the -parallel-cores contract extends to every
// policy kind, not just the tabular default).
func TestFrozenPolicyDeterminism(t *testing.T) {
	for _, kind := range []string{rl.KindPerceptron, rl.KindMLP} {
		t.Run(kind, func(t *testing.T) {
			data := frozenSpec(t, kind, 7)
			ctr := frozenSpec(t, kind, 8)
			base := policyRun(t, data, ctr, 0)
			if again := policyRun(t, data, ctr, 0); !reflect.DeepEqual(again, base) {
				t.Errorf("frozen %s drifted across serial runs:\n  %+v\nvs\n  %+v", kind, base, again)
			}
			for _, cores := range []int{2, 4} {
				if par := policyRun(t, data, ctr, cores); !reflect.DeepEqual(par, base) {
					t.Errorf("frozen %s differs on parallel engine (%d workers):\n  %+v\nvs\n  %+v",
						kind, cores, base, par)
				}
			}
		})
	}
}

// TestOnlinePolicyDeterminism covers the learning (unfrozen) perceptron and
// MLP: both are exploration-free deterministic learners, so repeated runs
// must also be bit-identical — seed-sensitivity is confined to the tabular
// kind's ε-greedy stream.
func TestOnlinePolicyDeterminism(t *testing.T) {
	for _, kind := range []string{rl.KindPerceptron, rl.KindMLP} {
		t.Run(kind, func(t *testing.T) {
			spec := &rl.PolicySpec{Kind: kind}
			base := policyRun(t, spec, spec, 0)
			if again := policyRun(t, spec, spec, 0); !reflect.DeepEqual(again, base) {
				t.Errorf("online %s drifted across runs", kind)
			}
			if par := policyRun(t, spec, spec, 4); !reflect.DeepEqual(par, base) {
				t.Errorf("online %s differs on parallel engine", kind)
			}
		})
	}
}
