package sim

import (
	"cosmos/internal/core"
	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
)

// This file composes the off-chip critical path. An L1 miss opens a
// fetchPlan (location prediction, early counter issue); if every on-chip
// level misses, the plan is resolved into a fetchPath — the timed record of
// the three racing chains measured from t0 = the L1-miss point:
//
//   data:  the DRAM read. Memory controllers issue it speculatively in
//          parallel with the LLC tag lookup (it starts after the last
//          on-chip miss for normal walks, right at t0 for predicted-off
//          bypasses — gated by the concurrent walk's confirmation).
//   ctr:   the counter pipeline + OTP generation (AES). It starts at t0
//          for early designs (EMCC, predicted-off COSMOS) and only after
//          the last on-chip miss for the baseline — that serialisation is
//          exactly what COSMOS removes.
//   walk:  the lower on-chip lookups (L2+LLC), which must confirm the miss
//          before any speculative data can retire.
//
// Both the timing model (Step charges finish() to the thread) and the
// telemetry tracer (traceFetch draws one slice per chain) consume the same
// fetchPath value, so the two can never disagree about the path's shape.

// planProfile is the per-design half of the fetch plan, precomputed once at
// New: which early-issue mode the design runs and how the secure-region
// test resolves. planFetch consults it instead of re-deriving the decision
// from the design and engine config on every miss.
type planProfile struct {
	early secmem.EarlyMode
	// secureAll short-circuits the region test: every address is protected
	// (a secure design with no SGXv1-style bound configured).
	secureAll bool
	// secureBound is the protected-range limit for bounded secure designs;
	// 0 for non-secure designs, making the per-miss test a single compare.
	secureBound uint64
}

// newPlanProfile resolves the design's fetch-plan profile against the
// machine config.
func newPlanProfile(cfg Config, design secmem.Design) planProfile {
	p := planProfile{early: design.Early}
	if design.Secure {
		if cfg.MC.SecureRegionBytes == 0 {
			p.secureAll = true
		} else {
			p.secureBound = cfg.MC.SecureRegionBytes
		}
	}
	return p
}

// fetchPlan is the decision state opened at the L1-miss point, before the
// lower levels are probed.
type fetchPlan struct {
	// secure marks addresses inside the protected region; outside it the
	// access takes the non-protected path regardless of design.
	secure bool
	// pred is the data-location prediction (EarlyPredicted designs only).
	pred core.Prediction
	// predictedOff means the walk is bypassed: the DRAM read issues at t0.
	predictedOff bool
	// earlyCtr means the counter pipeline was started at t0.
	earlyCtr bool
	// ctrRes is the early counter access result when earlyCtr is set.
	ctrRes secmem.CtrResult
}

// planFetch opens the fetch plan for an L1 miss: consult the data-location
// predictor and start the counter pipeline early where the design allows.
// The design/region decision comes from the profile precomputed at New.
func (s *System) planFetch(c int, now uint64, line uint64, addr memsys.Addr) fetchPlan {
	var p fetchPlan
	p.secure = s.plan.secureAll || uint64(addr) < s.plan.secureBound
	switch s.plan.early {
	case secmem.EarlyPredicted:
		p.pred = s.mc.DataPred.Predict(uint64(addr))
		p.predictedOff = p.pred.OffChip
		if p.predictedOff && p.secure {
			p.ctrRes = s.mc.CtrAccess(c, now, line, false)
			p.earlyCtr = true
		}
	case secmem.EarlyAll:
		if p.secure {
			p.ctrRes = s.mc.CtrAccess(c, now, line, false)
			p.earlyCtr = true
		}
	}
	return p
}

// gradeOnChipHit settles the plan when a lower on-chip level hits: the
// predictor learns the access stayed on chip, and a predicted-off bypass
// that already launched a speculative DRAM read is charged as wasted. Store
// misses that hit before the last level skip the wasted-fetch charge (the
// store buffer absorbs them); by the last level the speculative read has
// issued either way.
func (s *System) gradeOnChipHit(p fetchPlan, now uint64, addr memsys.Addr, write, lastLevel bool) {
	if s.plan.early != secmem.EarlyPredicted {
		return
	}
	s.mc.DataPred.Learn(p.pred, false)
	if p.predictedOff && (lastLevel || !write) {
		s.mc.WastedFetch(now, addr)
	}
}

// fetchPath is the resolved off-chip critical path: the chain lengths of
// one fetch, all relative to t0 = the L1-miss point.
type fetchPath struct {
	// walkLat is the serial cost of the lower on-chip lookups.
	walkLat uint64
	// dataLat is the DRAM read cost.
	dataLat uint64
	// ctrLat is the counter pipeline + AES cost (secure only).
	ctrLat uint64
	// ctrHit records whether the counter was cached (trace labelling).
	ctrHit bool

	secure       bool
	earlyCtr     bool
	predictedOff bool
}

// ctrStart is when the counter chain begins: t0 for early issue, after the
// walk otherwise.
func (f fetchPath) ctrStart() uint64 {
	if f.earlyCtr {
		return 0
	}
	return f.walkLat
}

// ctrReady is when the OTP is available. Zero for non-secure paths, which
// never wait on it.
func (f fetchPath) ctrReady() uint64 {
	if !f.secure {
		return 0
	}
	return f.ctrStart() + f.ctrLat
}

// dataStart is when the DRAM read issues: t0 for predicted-off bypasses,
// after the walk otherwise.
func (f fetchPath) dataStart() uint64 {
	if f.predictedOff {
		return 0
	}
	return f.walkLat
}

// dataReady is when the data line can retire: a speculative read is usable
// only once the walk confirms the miss; a serialised read simply lands
// after walk + DRAM.
func (f fetchPath) dataReady() uint64 {
	if f.predictedOff {
		return max64(f.walkLat, f.dataLat)
	}
	return f.walkLat + f.dataLat
}

// finish is the fetch's critical-path end: the later of data and OTP, plus
// the final OTP XOR on secure paths.
func (f fetchPath) finish() uint64 {
	end := max64(f.dataReady(), f.ctrReady())
	if f.secure {
		end++
	}
	return end
}

// composeFetch resolves an all-miss plan into the timed path: the predictor
// learns the miss, the counter pipeline runs (now, if it did not start
// early), and the DRAM read and MAC fetch are issued. Call order is part of
// the timing model — DRAM bank state is shared between the data, counter
// and MAC streams.
func (s *System) composeFetch(c int, now uint64, line uint64, addr memsys.Addr, p fetchPlan) fetchPath {
	if s.plan.early == secmem.EarlyPredicted {
		s.mc.DataPred.Learn(p.pred, true)
	}
	f := fetchPath{
		walkLat:      s.walkLat,
		secure:       p.secure,
		earlyCtr:     p.earlyCtr,
		predictedOff: p.predictedOff,
	}
	ctrRes := p.ctrRes
	if !p.earlyCtr && p.secure {
		ctrRes = s.mc.CtrAccess(c, now, line, false)
	}
	f.dataLat = s.mc.DataDRAM(now, addr, false)
	if p.secure {
		s.mc.MACAccess(c, now, line, false)
		f.ctrLat = ctrRes.Latency + s.cfg.MC.AESLat
		f.ctrHit = ctrRes.Hit
	}
	return f
}

// traceFetch records the racing chains of one off-chip access as slices on
// the core's lane, timestamped in thread cycles from t0 = the L1-miss point.
func (s *System) traceFetch(c int, now uint64, f fetchPath) {
	t0 := now + s.l1Lat
	s.tracer.Slice(c, tidFetch, "fetch", "offchip", t0, f.finish())
	s.tracer.Slice(c, tidWalk, "l2+llc walk", "offchip", t0, f.walkLat)
	if f.secure {
		name := "ctr+otp"
		if f.ctrHit {
			name = "ctr hit+otp"
		}
		s.tracer.Slice(c, tidCtr, name, "offchip", t0+f.ctrStart(), f.ctrLat)
	}
	name := "dram (speculative)"
	if !f.predictedOff {
		name = "dram"
	}
	s.tracer.Slice(c, tidData, name, "offchip", t0+f.dataStart(), f.dataLat)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
