package sim

import (
	"context"
	"sync"
	"time"

	"cosmos/internal/cache"
	"cosmos/internal/memsys"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
)

// The epoch-barrier parallel engine. Each epoch of at most epochSize
// decoded accesses runs in two phases:
//
//	Phase A (parallel): per-core workers replay their own core's accesses
//	against the core's private cache levels only — probe, fill, and the
//	private part of the writeback cascade. A dirty victim that would leave
//	the private prefix is captured (with the level whose access emitted
//	it) instead of forwarded. Private cache state is touched only by the
//	owning core's own access subsequence, and none of these operations
//	read the thread clock or any shared structure, so each lane's outcome
//	is independent of worker count and scheduling.
//
//	Phase B (serial): the epoch is walked in global decode order doing
//	everything else exactly as the scalar Step does — fault stream
//	pinning and crash points, global counters, the fetch plan, shared
//	level probes, deferred writeback replay at its exact intra-access
//	position, off-chip fetch composition, and thread-clock advancement.
//	Every mutation of shared state (LLC, counter/MAC caches, DRAM bank
//	timers, predictors, fault injector) therefore happens in the same
//	order, under the same `now`, as in a serial run.
//
// Together the two phases produce bit-identical Results for any worker
// count, including fault campaigns (fault draws are pure functions of the
// global access index, which Phase B owns). The crash point only drops
// memory-controller metadata — never private data caches — so Phase A work
// that precedes a mid-epoch crash remains valid.
const epochSize = 4096

// escapedWB is a dirty victim that left the private prefix during Phase A:
// stage is the private level whose demand access (or its cascade) emitted
// it, fixing the replay position inside the access.
type escapedWB struct {
	stage int8
	line  uint64
}

// privOutcome is Phase A's record for one access: the private level that
// hit (-1 when all private levels missed) and the slice of the owning
// lane's escaped writebacks this access produced.
type privOutcome struct {
	hitLevel int8
	wbStart  int32
	wbEnd    int32
}

// coreLane is one core's Phase A state: its private cache prefix, the
// epoch positions it owns, and its escaped-writeback buffer. A lane is
// touched by exactly one worker per epoch.
type coreLane struct {
	caches []*cache.Cache
	idxs   []int32
	wbs    []escapedWB
}

type parEngine struct {
	lanes    []coreLane
	buf      []memsys.Access
	outcomes []privOutcome
	workers  int
}

// parallelEligible reports whether RunContext should use the parallel
// engine: it is enabled, there is more than one core and at least one
// private level to farm out, and neither an interval sampler nor a span
// recorder is attached (both observe per-access intermediate state in
// global access order, which only the serial engine reproduces).
func (s *System) parallelEligible() bool {
	return s.parallelCores > 1 && s.cfg.Cores > 1 && s.sharedFrom > 0 &&
		s.sampler == nil && s.spans == nil
}

// parEngine lazily builds (and caches) the engine scratch state.
func (s *System) parEngine() *parEngine {
	e := s.par
	if e == nil {
		e = &parEngine{
			lanes:    make([]coreLane, s.cfg.Cores),
			buf:      make([]memsys.Access, epochSize),
			outcomes: make([]privOutcome, epochSize),
		}
		for c := range e.lanes {
			caches := make([]*cache.Cache, s.sharedFrom)
			for i := 0; i < s.sharedFrom; i++ {
				caches[i] = s.chains[c][i].Cache()
			}
			e.lanes[c].caches = caches
		}
		s.par = e
	}
	e.workers = s.parallelCores
	if e.workers > s.cfg.Cores {
		e.workers = s.cfg.Cores
	}
	return e
}

// runParallel is the epoch-barrier counterpart of RunContext's serial loop.
// Phase timing happens on this goroutine only: decode books as PhaseDecode,
// Phase A + Phase B wall time books as PhaseStep, so campaign-level phase
// accumulators merge cleanly instead of racing across workers.
func (s *System) runParallel(ctx context.Context, gen trace.Generator, maxAccesses uint64) (Results, error) {
	e := s.parEngine()
	done := ctx.Done()
	timed := s.phases != nil
	var t0, t1 time.Time
	for s.accesses < maxAccesses {
		want := maxAccesses - s.accesses
		if want > epochSize {
			want = epochSize
		}
		if timed {
			t0 = time.Now()
		}
		n := 0
		for uint64(n) < want {
			m := trace.NextBlock(gen, e.buf[n:want])
			if m == 0 {
				break
			}
			n += m
		}
		if timed {
			t1 = time.Now()
		}
		if n > 0 {
			s.phaseA(e, n)
			s.phaseB(e, n)
		}
		if timed {
			t2 := time.Now()
			s.phases.Add(telemetry.PhaseDecode, t1.Sub(t0))
			s.phases.Add(telemetry.PhaseStep, t2.Sub(t1))
			s.phases.AddAccesses(uint64(n))
		}
		if n == 0 {
			break
		}
		if done != nil {
			select {
			case <-done:
				return s.finishRun(gen.Name()), ctx.Err()
			default:
			}
		}
	}
	return s.finishRun(gen.Name()), nil
}

// phaseA partitions the epoch by core and runs the private-level work on
// up to e.workers goroutines. Worker w owns every core c with c ≡ w
// (mod workers); each lane is processed sequentially in decode order.
func (s *System) phaseA(e *parEngine, n int) {
	cores := s.cfg.Cores
	for c := range e.lanes {
		e.lanes[c].idxs = e.lanes[c].idxs[:0]
		e.lanes[c].wbs = e.lanes[c].wbs[:0]
	}
	for i := 0; i < n; i++ {
		c := int(e.buf[i].Thread) % cores
		e.lanes[c].idxs = append(e.lanes[c].idxs, int32(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for c := w; c < cores; c += e.workers {
				s.privateLane(&e.lanes[c], e)
			}
		}(w)
	}
	wg.Wait()
}

// privateLane replays one core's epoch subsequence against its private
// cache prefix, mirroring the scalar walk exactly: the top level sees the
// store bit, lower levels probe read-only, each miss fills, and each dirty
// victim cascades — installs into the next private level, or is captured
// once it would cross into the shared tail.
func (s *System) privateLane(ln *coreLane, e *parEngine) {
	sf := s.sharedFrom
	for _, i := range ln.idxs {
		a := e.buf[i]
		out := &e.outcomes[i]
		out.hitLevel = -1
		out.wbStart = int32(len(ln.wbs))
		line := a.Addr.Line()
		res := ln.caches[0].Access(line, a.Type == memsys.Write, a.Region)
		if res.Evicted && res.EvictedDirty {
			ln.cascade(1, 0, res.EvictedLine, sf)
		}
		if res.Hit {
			out.hitLevel = 0
		} else {
			for li := 1; li < sf; li++ {
				res = ln.caches[li].Access(line, false, a.Region)
				if res.Evicted && res.EvictedDirty {
					ln.cascade(li+1, int8(li), res.EvictedLine, sf)
				}
				if res.Hit {
					out.hitLevel = int8(li)
					break
				}
			}
		}
		out.wbEnd = int32(len(ln.wbs))
	}
}

// cascade forwards a dirty victim down the private prefix starting at
// level `into`, capturing it (tagged with the originating stage) once it
// escapes into the shared tail. Matches cache.Level's cascade, which
// installs writebacks as stores under memsys.SigWriteback.
func (ln *coreLane) cascade(into int, stage int8, line uint64, sharedFrom int) {
	for into < sharedFrom {
		r := ln.caches[into].Access(line, true, memsys.SigWriteback)
		if !r.Evicted || !r.EvictedDirty {
			return
		}
		line = r.EvictedLine
		into++
	}
	ln.wbs = append(ln.wbs, escapedWB{stage: stage, line: line})
}

// phaseB walks the epoch serially in global decode order, performing
// everything the scalar Step does except the private-level probes (already
// done in Phase A): fault/crash points, counters, fetch planning, shared
// probes, deferred writeback replay, off-chip composition, clock advance.
func (s *System) phaseB(e *parEngine, n int) {
	cores := s.cfg.Cores
	for i := 0; i < n; i++ {
		a := e.buf[i]
		c := int(a.Thread) % cores
		ln := &e.lanes[c]
		out := e.outcomes[i]
		if s.faults != nil {
			s.faults.BeginStep(s.accesses)
			if s.faults.CrashDue(s.accesses) {
				s.crash()
			}
		}
		now := s.threadCycles[c]
		write := a.Type == memsys.Write
		line := a.Addr.Line()

		s.accesses++
		if write {
			s.writes++
		} else {
			s.reads++
		}

		s.demand[0].accesses++
		wbs := ln.wbs[out.wbStart:out.wbEnd]
		wbs = s.replayWBs(wbs, 0, c, now)
		lat := s.l1Lat
		if out.hitLevel == 0 {
			s.advance(c, write, a.Dep, lat)
			continue
		}
		s.demand[0].misses++

		plan := s.planFetch(c, now, line, a.Addr)

		chain := s.chains[c]
		hit := false
		for li := 1; li < len(chain); li++ {
			s.demand[li].accesses++
			var lvlHit bool
			if li < s.sharedFrom {
				wbs = s.replayWBs(wbs, int8(li), c, now)
				lvlHit = out.hitLevel == int8(li)
			} else {
				lvlHit = chain[li].Probe(line, false, a.Region, c, now)
			}
			lat += s.lats[li]
			if lvlHit {
				s.gradeOnChipHit(plan, now, a.Addr, write, li == len(chain)-1)
				s.advance(c, write, a.Dep, lat)
				hit = true
				break
			}
			s.demand[li].misses++
		}
		if hit {
			continue
		}

		path := s.composeFetch(c, now, line, a.Addr, plan)
		fetchEnd := path.finish()
		lat = s.l1Lat + fetchEnd
		s.offChipReads++
		s.fetchLatSum += fetchEnd
		if path.predictedOff {
			s.bypassed++
		}
		if s.fetchHist != nil {
			s.fetchHist.Observe(fetchEnd)
		}
		if s.tracer != nil {
			s.traceFetch(c, now, path)
		}
		s.advance(c, write, a.Dep, lat)
	}
}

// replayWBs forwards the deferred shared writebacks recorded for the given
// stage into the shared sink, at the same point in the access where the
// scalar cascade would have delivered them.
func (s *System) replayWBs(wbs []escapedWB, stage int8, c int, now uint64) []escapedWB {
	for len(wbs) > 0 && wbs[0].stage == stage {
		s.sharedSink.Writeback(memsys.Request{
			Line:  wbs[0].line,
			Write: true,
			Sig:   memsys.SigWriteback,
			Core:  c,
			Now:   now,
		})
		wbs = wbs[1:]
	}
	return wbs
}
