package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cosmos/internal/secmem"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden span-tree testdata")

// spanRun is goldenRun with a span recorder attached: COSMOS on mcf,
// pinned seed, sampling 1 access in 2000 and keeping the 4 slowest trees.
func spanRun(t *testing.T, rec *telemetry.SpanRecorder) Results {
	t.Helper()
	d, err := secmem.DesignByName("COSMOS")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MC.Seed = 42
	cfg.MC.Params.Seed = 42
	gen, err := workloads.Build("mcf", workloads.Options{Threads: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	s := New(cfg, d)
	if rec != nil {
		s.AttachSpans(rec)
	}
	return s.Run(trace.Limit(gen, 100000), 100000)
}

// TestSpanGoldenCosmosMcf pins the span trees of a COSMOS/mcf run: the
// slowest sampled exemplars, with full child structure, must match the
// committed JSON byte-for-byte. Sampling is a pure function of the access
// stream, so any drift means the timing model or the span assembly changed.
// Regenerate with `go test ./internal/sim/ -run SpanGolden -update`.
func TestSpanGoldenCosmosMcf(t *testing.T) {
	rec := telemetry.NewSpanRecorder(2000, 4)
	r := spanRun(t, rec)

	if rec.Sampled() != 50 {
		t.Fatalf("sampled %d trees from 100000 accesses at 1-in-2000, want 50", rec.Sampled())
	}
	if r.Tail == nil {
		t.Fatal("Results.Tail nil with a recorder attached")
	}
	got, err := json.MarshalIndent(rec.TopSpans(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "span_cosmos_mcf.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("span trees drifted from %s (run with -update to regenerate):\n%s", path, got)
	}
}

// TestSpanTreeShape sanity-checks the exemplar structure the golden pins:
// roots are access spans whose duration equals the reported total, off-chip
// trees carry a fetch node with walk, counter and data children, and the
// tail block's percentiles are coherent.
func TestSpanTreeShape(t *testing.T) {
	rec := telemetry.NewSpanRecorder(2000, 4)
	r := spanRun(t, rec)

	top := rec.TopSpans()
	if len(top) != 4 {
		t.Fatalf("top-K kept %d exemplars, want 4", len(top))
	}
	sawFetch := false
	for _, a := range top {
		if a.Root.Cause != telemetry.CauseAccess || a.Root.Dur != a.Total {
			t.Fatalf("exemplar %d root = %+v, want access/%d", a.Index, a.Root, a.Total)
		}
		for _, ch := range a.Root.Children {
			if ch.Cause != telemetry.CauseFetch {
				continue
			}
			sawFetch = true
			var walk, ctr, data bool
			for _, g := range ch.Children {
				switch g.Cause {
				case telemetry.CauseWalk:
					walk = true
				case telemetry.CauseCtrHit, telemetry.CauseCtrMiss:
					ctr = true
				case telemetry.CauseDataDRAM:
					data = true
				}
			}
			if !walk || !ctr || !data {
				t.Fatalf("fetch node of access %d missing chains (walk %v ctr %v data %v): %+v",
					a.Index, walk, ctr, data, ch.Children)
			}
		}
	}
	if !sawFetch {
		t.Fatal("no off-chip exemplar among the slowest trees")
	}

	acc := r.Tail.Stat("access")
	fetch := r.Tail.Stat("fetch")
	if acc == nil || acc.Count != r.Accesses {
		t.Fatalf("access stat = %+v, want count %d", acc, r.Accesses)
	}
	if fetch == nil || fetch.Count != r.OffChipReads {
		t.Fatalf("fetch stat = %+v, want count %d", fetch, r.OffChipReads)
	}
	if fetch.P99 < fetch.P50 || fetch.P999 < fetch.P99 || float64(fetch.Max) < fetch.P999 {
		t.Fatalf("incoherent fetch percentiles: %+v", fetch)
	}
	if r.Tail.Stat("ctr_hit") == nil && r.Tail.Stat("ctr_miss") == nil {
		t.Fatal("no counter distribution in the tail block")
	}
}

// TestResultsIdenticalWithSpans is the zero-cost contract's other half:
// attaching a recorder must not perturb the simulation — Results (minus the
// Tail block itself) are byte-identical with and without spans.
func TestResultsIdenticalWithSpans(t *testing.T) {
	plain := spanRun(t, nil)
	spanned := spanRun(t, telemetry.NewSpanRecorder(64, 8))
	if spanned.Tail == nil {
		t.Fatal("spanned run has no Tail")
	}
	spanned.Tail = nil
	a, _ := json.Marshal(plain)
	b, _ := json.Marshal(spanned)
	if string(a) != string(b) {
		t.Errorf("Results differ with spans attached:\n%s\n%s", a, b)
	}
}
