package sim

import (
	"testing"

	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
	"cosmos/internal/trace"
)

// TestCustomHierarchy runs a four-level on-chip chain (an extra private L3
// between L2 and the shared LLC) through Config.Levels — the capability the
// Level abstraction exists to provide: new cache levels without touching
// the core loop.
func TestCustomHierarchy(t *testing.T) {
	cfg := testConfig()
	cfg.Levels = []LevelSpec{
		{Name: "l1", Bytes: 32 << 10, Ways: 2, Lat: 2},
		{Name: "l2", Bytes: 256 << 10, Ways: 8, Lat: 12},
		{Name: "l3", Bytes: 1 << 20, Ways: 8, Lat: 30},
		{Name: "llc", Bytes: 8 << 20, Ways: 16, Lat: 128, Shared: true},
	}
	s := New(cfg, secmem.DesignCosmos())
	if got := len(s.Chain(0)); got != 4 {
		t.Fatalf("chain has %d levels, want 4", got)
	}

	gen := trace.NewUniform(region(1<<26, 128<<20), 20, 9, 1)
	r := s.Run(trace.Limit(gen, 60000), 60000)
	if r.Accesses != 60000 || r.Cycles == 0 {
		t.Fatalf("custom hierarchy did not run: %+v", r)
	}
	// Report mapping: L2 is level 1, the LLC slot reports the last level.
	if r.L2MissRate == 0 || r.LLCMissRate == 0 {
		t.Fatalf("miss-rate mapping broken: L2 %v LLC %v", r.L2MissRate, r.LLCMissRate)
	}
	if r.SMAT <= float64(cfg.Levels[0].Lat) {
		t.Fatalf("SMAT %v did not fold the custom chain", r.SMAT)
	}

	// The chain still services hits top-down: an immediate re-access costs
	// exactly the level-0 lookup.
	s2 := New(cfg, secmem.DesignNP())
	probe := memsys.Access{Addr: 0x40000}
	s2.Step(probe) // cold fill — lands in every level
	if lat := s2.Step(probe); lat != cfg.Levels[0].Lat {
		t.Fatalf("immediate re-access should hit level 0, lat %d", lat)
	}
}

// TestPrivateBelowSharedPanics pins the construction invariant: once a
// level is shared, everything below it must be shared too.
func TestPrivateBelowSharedPanics(t *testing.T) {
	cfg := testConfig()
	cfg.Levels = []LevelSpec{
		{Name: "l1", Bytes: 32 << 10, Ways: 2, Lat: 2},
		{Name: "l2", Bytes: 1 << 20, Ways: 8, Lat: 20, Shared: true},
		{Name: "llc", Bytes: 8 << 20, Ways: 16, Lat: 128},
	}
	defer func() {
		if recover() == nil {
			t.Fatal("private level below a shared one must panic")
		}
	}()
	New(cfg, secmem.DesignNP())
}

// TestDefaultLevelsMatchScalarFields checks that the implicit three-level
// hierarchy and an explicit Levels list describing the same machine produce
// identical results.
func TestDefaultLevelsMatchScalarFields(t *testing.T) {
	run := func(cfg Config) Results {
		s := New(cfg, secmem.DesignCosmos())
		gen := trace.NewUniform(region(1<<26, 64<<20), 15, 3, 1)
		return s.Run(trace.Limit(gen, 40000), 40000)
	}
	implicit := testConfig()
	explicit := testConfig()
	explicit.Levels = []LevelSpec{
		{Name: "l1", Bytes: explicit.L1Bytes, Ways: explicit.L1Ways, Lat: explicit.L1Lat},
		{Name: "l2", Bytes: explicit.L2Bytes, Ways: explicit.L2Ways, Lat: explicit.L2Lat},
		{Name: "llc", Bytes: explicit.LLCBytes, Ways: explicit.LLCWays, Lat: explicit.LLCLat, Shared: true},
	}
	a, b := run(implicit), run(explicit)
	// Predictor stats live behind pointers: compare the values, then strip
	// the pointers so the remaining struct compares with ==.
	if (a.DataPred == nil) != (b.DataPred == nil) || (a.CtrPred == nil) != (b.CtrPred == nil) {
		t.Fatal("predictor presence diverged between implicit and explicit levels")
	}
	if a.DataPred != nil && *a.DataPred != *b.DataPred {
		t.Fatalf("DataPred diverged: %+v vs %+v", *a.DataPred, *b.DataPred)
	}
	if a.CtrPred != nil && *a.CtrPred != *b.CtrPred {
		t.Fatalf("CtrPred diverged: %+v vs %+v", *a.CtrPred, *b.CtrPred)
	}
	a.DataPred, a.CtrPred, b.DataPred, b.CtrPred = nil, nil, nil, nil
	if a != b {
		t.Fatalf("explicit Levels diverged from scalar fields:\n%+v\n%+v", a, b)
	}
}
