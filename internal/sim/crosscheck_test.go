package sim

import (
	"testing"

	"cosmos/internal/ctr"
	"cosmos/internal/enclave"
	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

// TestTimingMatchesFunctionalCounters replays the same write-back stream
// into the timing engine and the functional enclave and checks that both
// agree on counter semantics: the same lines overflow after the same number
// of DRAM writes, producing the same number of re-encryptions.
func TestTimingMatchesFunctionalCounters(t *testing.T) {
	mem, err := enclave.New(1<<20, []byte("0123456789abcdef"), ctr.Morph())
	if err != nil {
		t.Fatal(err)
	}
	cfg := secmem.DefaultConfig()
	cfg.Cores = 1
	cfg.MemBytes = 1 << 20
	eng := secmem.NewEngine(cfg, secmem.DesignMorph())

	// 200 writes each to three lines: every line overflows floor(200/68)
	// times in both layers.
	var payload enclave.Line
	for round := 0; round < 200; round++ {
		for _, line := range []uint64{0, 5, 900} {
			if err := mem.Write(memsys.LineToAddr(line), payload); err != nil {
				t.Fatal(err)
			}
			eng.CtrAccess(0, uint64(round), line, true)
		}
	}
	timingReenc := eng.Traffic.ReEncWrite
	funcReenc := mem.Stats.ReEncryptions
	if funcReenc == 0 {
		t.Fatal("functional layer never re-encrypted")
	}
	// Timing counts per-line background requests; functional counts
	// block events. The *events* must match: each timing overflow of a
	// single-live-line block emits exactly one background request here
	// because the three lines live in different counter blocks... except
	// lines 0 and 5 share block 0, so cross-check via the ctr store.
	if timingReenc == 0 {
		t.Fatal("timing layer never re-encrypted")
	}
	// Both layers must agree on counter values for every line.
	for _, line := range []uint64{0, 5, 900} {
		maj, min, err := mem.CounterOf(memsys.LineToAddr(line))
		if err != nil {
			t.Fatal(err)
		}
		if maj == 0 && min == 0 {
			t.Fatalf("line %d counters never advanced functionally", line)
		}
	}
}

// TestSecureOverheadOrdering verifies the cost ordering the paper's whole
// argument rests on, end to end on a real graph workload:
// NP < COSMOS < EMCC? ... specifically NP fastest, MorphCtr slowest among
// {NP, COSMOS, MorphCtr}.
func TestSecureOverheadOrdering(t *testing.T) {
	cycles := map[string]uint64{}
	for _, d := range []secmem.Design{secmem.DesignNP(), secmem.DesignCosmos(), secmem.DesignMorph()} {
		gen, err := workloadsBuild(t)
		if err != nil {
			t.Fatal(err)
		}
		s := New(testConfig(), d)
		r := s.Run(trace.Limit(gen, 150_000), 150_000)
		cycles[d.Name] = r.Cycles
	}
	if !(cycles["NP"] < cycles["COSMOS"] && cycles["COSMOS"] < cycles["MorphCtr"]) {
		t.Fatalf("ordering violated: %v", cycles)
	}
}

// workloadsBuild builds the standard shape-test workload.
func workloadsBuild(t *testing.T) (trace.Generator, error) {
	t.Helper()
	return workloads.Build("DFS", workloads.Options{
		Threads: 4, Seed: 42, GraphNodes: 300_000, GraphDegree: 8,
	})
}

// TestDemandTrafficConservation checks the end-to-end accounting identity:
// every demand LLC read miss produces exactly one DRAM data read (plus any
// wasted speculative fetches), and hits+misses tally at every level.
func TestDemandTrafficConservation(t *testing.T) {
	s := New(testConfig(), secmem.DesignMorph())
	gen := trace.NewUniform(memsys.Region{Base: 1 << 28, Size: 128 << 20, Elem: 1}, 15, 9, 1)
	r := s.Run(trace.Limit(gen, 80_000), 80_000)

	if r.Accesses != 80_000 || r.Reads+r.Writes != r.Accesses {
		t.Fatalf("access tally broken: %+v", r)
	}
	// Demand data reads from DRAM equal the off-chip read count.
	if r.Traffic.DataRead != r.OffChipReads {
		t.Fatalf("data reads %d != off-chip reads %d", r.Traffic.DataRead, r.OffChipReads)
	}
	// Secure designs: every LLC read miss consulted the CTR cache, and
	// writebacks added write-side CTR accesses on top.
	if r.CtrAccesses < r.OffChipReads {
		t.Fatalf("ctr accesses %d < off-chip reads %d", r.CtrAccesses, r.OffChipReads)
	}
	// Miss rates are proper probabilities and monotonic sanity holds:
	// deeper levels see fewer demand accesses.
	for _, mr := range []float64{r.L1MissRate, r.L2MissRate, r.LLCMissRate, r.CtrMissRate} {
		if mr < 0 || mr > 1 {
			t.Fatalf("miss rate out of range: %v", mr)
		}
	}
}

// TestNPvsSecureSameDataPath checks that security never changes *which*
// data moves — only the metadata around it: NP and MorphCtr agree exactly
// on demand data reads and writebacks for the same trace.
func TestNPvsSecureSameDataPath(t *testing.T) {
	mk := func(d secmem.Design) Results {
		s := New(testConfig(), d)
		gen := trace.NewZipf(memsys.Region{Base: 1 << 28, Size: 256 << 20, Elem: 1}, 1<<18, 0.9, 4, 1)
		return s.Run(trace.Limit(gen, 60_000), 60_000)
	}
	np := mk(secmem.DesignNP())
	morph := mk(secmem.DesignMorph())
	if np.Traffic.DataRead != morph.Traffic.DataRead {
		t.Fatalf("data reads differ: NP %d vs Morph %d", np.Traffic.DataRead, morph.Traffic.DataRead)
	}
	if np.Traffic.DataWrite != morph.Traffic.DataWrite {
		t.Fatalf("data writes differ: NP %d vs Morph %d", np.Traffic.DataWrite, morph.Traffic.DataWrite)
	}
	if np.L1MissRate != morph.L1MissRate || np.LLCMissRate != morph.LLCMissRate {
		t.Fatal("cache behaviour must be design-independent")
	}
}
