package sim

import (
	"testing"

	"cosmos/internal/cache"
	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
)

// TestEightCoreGeometry pins the Fig 15 machine: 8 cores, the LLC doubled
// to 16MB, and the MC sized for 8 per-core metadata caches.
func TestEightCoreGeometry(t *testing.T) {
	cfg := EightCore()
	if cfg.Cores != 8 {
		t.Fatalf("Cores = %d, want 8", cfg.Cores)
	}
	if cfg.LLCBytes != 16<<20 {
		t.Fatalf("LLCBytes = %d, want 16MB", cfg.LLCBytes)
	}
	if cfg.MC.Cores != 8 {
		t.Fatalf("MC.Cores = %d, want 8", cfg.MC.Cores)
	}
	// Everything else stays at the Table 3 defaults.
	def := DefaultConfig()
	if cfg.L1Bytes != def.L1Bytes || cfg.L2Bytes != def.L2Bytes || cfg.MLP != def.MLP {
		t.Fatal("EightCore must only scale cores and LLC")
	}

	s := New(cfg, secmem.DesignCosmos())
	llc := s.Chain(0)[2].(*cache.Level).Cache()
	if llc.SizeBytes() != 16<<20 {
		t.Fatalf("built LLC is %d bytes, want 16MB", llc.SizeBytes())
	}
	// The LLC is one shared level in every core's chain; L1/L2 are private.
	for c := 1; c < 8; c++ {
		if s.Chain(c)[2] != s.Chain(0)[2] {
			t.Fatalf("core %d has a private LLC", c)
		}
		if s.Chain(c)[0] == s.Chain(0)[0] || s.Chain(c)[1] == s.Chain(0)[1] {
			t.Fatalf("core %d shares a private level with core 0", c)
		}
	}
}

// TestEightCoreThreadMapping checks thread→core assignment past the default
// 4 threads: thread t runs on core t mod 8, so 16 threads load all 8 cores
// twice and none beyond that.
func TestEightCoreThreadMapping(t *testing.T) {
	s := New(EightCore(), secmem.DesignNP())
	for tid := 0; tid < 16; tid++ {
		// Distinct cold lines so every step costs the same full path.
		s.Step(memsys.Access{Addr: memsys.Addr(uint64(tid) << 20), Thread: uint8(tid)})
	}
	busy := 0
	for c, cyc := range s.threadCycles {
		if cyc == 0 {
			t.Fatalf("core %d idle after 16 threads", c)
		}
		busy++
	}
	if busy != 8 {
		t.Fatalf("%d cores busy, want 8", busy)
	}
	// Threads 8..15 wrapped onto cores 0..7: each core advanced twice as
	// far as a single cold access would.
	one := New(EightCore(), secmem.DesignNP())
	one.Step(memsys.Access{Addr: 1 << 20, Thread: 0})
	single := one.threadCycles[0]
	for c, cyc := range s.threadCycles {
		if cyc <= single {
			t.Fatalf("core %d cycles %d suggest only one thread landed there (single access = %d)",
				c, cyc, single)
		}
	}
}
