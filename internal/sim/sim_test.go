package sim

import (
	"testing"

	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.MC.MemBytes = 1 << 30
	return cfg
}

func region(base memsys.Addr, size uint64) memsys.Region {
	return memsys.Region{Base: base, Size: size, Elem: 1}
}

func TestL1HitFastPath(t *testing.T) {
	s := New(testConfig(), secmem.DesignNP())
	a := memsys.Access{Addr: 0x1000}
	s.Step(a) // cold miss
	lat := s.Step(a)
	if lat != s.cfg.L1Lat {
		t.Fatalf("L1 hit latency %d, want %d", lat, s.cfg.L1Lat)
	}
}

func TestMissCascadeLatencies(t *testing.T) {
	s := New(testConfig(), secmem.DesignNP())
	lat := s.Step(memsys.Access{Addr: 0x40000})
	// Cold miss: L1 + L2 + max(LLC, DRAM) — the DRAM read overlaps the
	// LLC lookup.
	if lat < s.cfg.L1Lat+s.cfg.L2Lat+s.cfg.LLCLat {
		t.Fatalf("cold miss latency %d too small", lat)
	}
	r := s.Results("t")
	if r.L1MissRate != 1 || r.L2MissRate != 1 || r.LLCMissRate != 1 {
		t.Fatalf("cold miss rates: %v %v %v", r.L1MissRate, r.L2MissRate, r.LLCMissRate)
	}
	if r.Traffic.DataRead != 1 {
		t.Fatalf("data reads = %d", r.Traffic.DataRead)
	}
}

func TestSecureDesignCostsMore(t *testing.T) {
	// The same random workload must run slower under MorphCtr than NP.
	run := func(d secmem.Design) Results {
		s := New(testConfig(), d)
		gen := trace.NewUniform(region(1<<28, 256<<20), 10, 7, 1)
		return s.Run(trace.Limit(gen, 60000), 60000)
	}
	np := run(secmem.DesignNP())
	morph := run(secmem.DesignMorph())
	if morph.Cycles <= np.Cycles {
		t.Fatalf("MorphCtr cycles %d should exceed NP %d", morph.Cycles, np.Cycles)
	}
	if morph.CtrMissRate == 0 {
		t.Fatal("random 256MB stream must miss the CTR cache")
	}
	if morph.Traffic.MTRead == 0 || morph.Traffic.MACRead == 0 {
		t.Fatalf("secure traffic missing: %+v", morph.Traffic)
	}
	if np.Traffic.MTRead != 0 {
		t.Fatal("NP must have zero metadata traffic")
	}
	if morph.SMAT <= np.SMAT {
		t.Fatalf("SMAT: morph %v should exceed np %v", morph.SMAT, np.SMAT)
	}
}

func TestWritebacksGenerateCounterTraffic(t *testing.T) {
	s := New(testConfig(), secmem.DesignMorph())
	// Write-heavy stream over a footprint far beyond the LLC forces
	// dirty LLC evictions → DRAM writes + counter increments.
	gen := trace.NewUniform(region(1<<28, 64<<20), 100, 3, 1)
	r := s.Run(trace.Limit(gen, 80000), 80000)
	if r.Traffic.DataWrite == 0 {
		t.Fatal("no writebacks reached DRAM")
	}
}

func TestCosmosBypassesWalk(t *testing.T) {
	s := New(testConfig(), secmem.DesignCosmos())
	gen := trace.NewUniform(region(1<<28, 256<<20), 0, 9, 1)
	r := s.Run(trace.Limit(gen, 60000), 60000)
	if r.Bypassed == 0 {
		t.Fatal("COSMOS never bypassed the on-chip walk")
	}
	if r.DataPred == nil || r.DataPred.Total() == 0 {
		t.Fatal("data predictions not graded")
	}
	// A uniform far-larger-than-LLC stream is overwhelmingly off-chip;
	// the predictor should learn that and be mostly correct.
	if acc := r.DataPred.Accuracy(); acc < 0.6 {
		t.Fatalf("data prediction accuracy %v too low on a trivially off-chip stream", acc)
	}
	if r.CtrPred == nil {
		t.Fatal("COSMOS must run the locality predictor")
	}
}

func TestEarlyAccessImprovesCtrHitRateOnHotStream(t *testing.T) {
	// A zipf-skewed stream: hot lines live in L1/L2, so the baseline CTR
	// cache (fed only by LLC misses) sees cold counters, while early
	// access (fed by L1 misses) sees the hot mid-tier too.
	mk := func() trace.Generator {
		return trace.Limit(trace.NewZipf(region(1<<28, 512<<20), 1<<20, 0.8, 5, 1), 150000)
	}
	base := New(testConfig(), secmem.DesignMorph()).Run(mk(), 150000)
	early := New(testConfig(), secmem.DesignEMCC()).Run(mk(), 150000)
	if early.CtrMissRate >= base.CtrMissRate {
		t.Fatalf("early CTR access should reduce miss rate: early %.3f vs base %.3f",
			early.CtrMissRate, base.CtrMissRate)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Results {
		s := New(testConfig(), secmem.DesignCosmos())
		gen := trace.NewUniform(region(1<<28, 128<<20), 20, 11, 1)
		return s.Run(trace.Limit(gen, 30000), 30000)
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.CtrMissRate != b.CtrMissRate || a.Traffic != b.Traffic {
		t.Fatal("simulation must be deterministic")
	}
}

func TestThreadsMapToCores(t *testing.T) {
	cfg := testConfig()
	s := New(cfg, secmem.DesignNP())
	for th := uint8(0); th < 4; th++ {
		s.Step(memsys.Access{Addr: memsys.Addr(0x100000 + uint64(th)*64), Thread: th})
	}
	busy := 0
	for _, cyc := range s.threadCycles {
		if cyc > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("%d cores advanced, want 4", busy)
	}
}

func TestRunStopsAtGeneratorEnd(t *testing.T) {
	s := New(testConfig(), secmem.DesignNP())
	gen := trace.Limit(trace.NewSequential(region(1<<28, 64<<10), 0, 1), 500)
	r := s.Run(gen, 1<<40)
	if r.Accesses != 500 {
		t.Fatalf("ran %d accesses, want 500", r.Accesses)
	}
	if r.IPC <= 0 {
		t.Fatal("IPC must be positive")
	}
}

func TestEightCoreConfig(t *testing.T) {
	cfg := EightCore()
	if cfg.Cores != 8 || cfg.LLCBytes != 16<<20 {
		t.Fatalf("EightCore: %+v", cfg)
	}
	cfg.MC.MemBytes = 1 << 30
	s := New(cfg, secmem.DesignCosmos())
	gen, err := workloads.Build("BFS", workloads.Options{Threads: 8, GraphNodes: 3000, GraphDegree: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run(trace.Limit(gen, 20000), 20000)
	if r.Accesses == 0 {
		t.Fatal("8-core run produced nothing")
	}
}

func TestGraphWorkloadEndToEnd(t *testing.T) {
	for _, design := range []secmem.Design{secmem.DesignMorph(), secmem.DesignCosmos()} {
		cfg := testConfig()
		s := New(cfg, design)
		gen, err := workloads.Build("DFS", workloads.Options{Threads: 4, GraphNodes: 5000, GraphDegree: 6, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		r := s.Run(trace.Limit(gen, 50000), 50000)
		if r.Accesses != 50000 {
			t.Fatalf("%s: accesses %d", design.Name, r.Accesses)
		}
		if r.L1MissRate <= 0 || r.L1MissRate >= 1 {
			t.Fatalf("%s: degenerate L1 miss rate %v", design.Name, r.L1MissRate)
		}
		if design.Secure && r.CtrAccesses == 0 {
			t.Fatalf("%s: no CTR accesses", design.Name)
		}
	}
}
