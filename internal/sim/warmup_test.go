package sim

import (
	"testing"

	"cosmos/internal/cache"
	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

func TestWarmupClearsMeasurementsKeepsState(t *testing.T) {
	cfg := testConfig()
	s := New(cfg, secmem.DesignCosmos())
	gen := trace.NewUniform(region(1<<28, 64<<20), 10, 5, 1)
	s.Warmup(gen, 20000)

	r := s.Results("warm")
	if r.Accesses != 0 || r.Cycles != 0 || r.Traffic.Total() != 0 {
		t.Fatalf("warmup left measurements: %+v", r)
	}
	if r.DataPred != nil && r.DataPred.Total() != 0 {
		t.Fatal("predictor stats not cleared")
	}
	// Learned state survives: the first post-warmup access to a recently
	// touched hot line should hit on-chip.
	l1 := s.Chain(0)[0].(*cache.Level).Cache()
	hits0 := l1.Stats.Hits
	probe := memsys.Access{Addr: 1 << 28}
	s.Step(probe)
	s.Step(probe)
	if l1.Stats.Hits == hits0 {
		t.Fatal("caches were flushed by warmup")
	}
}

func TestWarmupImprovesSteadyStateAccuracy(t *testing.T) {
	// With warmup, the measured prediction accuracy excludes the
	// learning transient, so it should be at least as high as without.
	mk := func(warm uint64) float64 {
		s := New(testConfig(), secmem.DesignCosmos())
		gen := trace.NewUniform(region(1<<28, 256<<20), 0, 9, 1)
		if warm > 0 {
			s.Warmup(gen, warm)
		}
		r := s.Run(trace.Limit(gen, 40000), 40000)
		return r.DataPred.Accuracy()
	}
	cold := mk(0)
	warm := mk(40000)
	if warm+0.02 < cold {
		t.Fatalf("warmed accuracy %.3f unexpectedly below cold %.3f", warm, cold)
	}
}

func TestMixedWorkloadRuns(t *testing.T) {
	gen, err := workloads.BuildMix([]string{"mcf", "canneal", "omnetpp", "DLRM"}, workloads.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testConfig(), secmem.DesignCosmos())
	r := s.Run(trace.Limit(gen, 40000), 40000)
	if r.Accesses != 40000 {
		t.Fatalf("mix ran %d accesses", r.Accesses)
	}
	// All four cores must have been exercised.
	busy := 0
	for _, cyc := range s.threadCycles {
		if cyc > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Fatalf("%d cores busy, want 4", busy)
	}
}

func TestMixRejectsUnknownMember(t *testing.T) {
	if _, err := workloads.BuildMix([]string{"mcf", "nope"}, workloads.Options{}); err == nil {
		t.Fatal("unknown mix member must error")
	}
}

func TestRMCCDesignRuns(t *testing.T) {
	d, err := secmem.DesignByName("RMCC")
	if err != nil {
		t.Fatal(err)
	}
	s := New(testConfig(), d)
	gen := trace.NewZipf(region(1<<28, 256<<20), 1<<18, 0.9, 5, 1)
	r := s.Run(trace.Limit(gen, 60000), 60000)
	if r.CtrAccesses == 0 {
		t.Fatal("RMCC must access counters")
	}
	// On a skewed stream the frequency-retaining metadata cache should
	// not be worse than plain LRU by much; sanity-check it functions.
	if r.CtrMissRate <= 0 || r.CtrMissRate >= 1 {
		t.Fatalf("degenerate RMCC ctr miss rate %v", r.CtrMissRate)
	}
}

func TestSMATBypassFoldsIn(t *testing.T) {
	// With a high bypass share, COSMOS's SMAT should drop below the
	// baseline's on an off-chip-heavy stream.
	mk := func(d secmem.Design) Results {
		s := New(testConfig(), d)
		gen := trace.NewUniform(region(1<<28, 512<<20), 0, 7, 1)
		return s.Run(trace.Limit(gen, 60000), 60000)
	}
	base := mk(secmem.DesignMorph())
	cos := mk(secmem.DesignCosmos())
	if cos.Bypassed == 0 {
		t.Fatal("no bypasses on a uniform off-chip stream")
	}
	if cos.SMAT >= base.SMAT {
		t.Fatalf("COSMOS SMAT %.1f should beat MorphCtr %.1f with %.0f%% bypass",
			cos.SMAT, base.SMAT, 100*float64(cos.Bypassed)/float64(cos.OffChipReads))
	}
}

func TestBoundedSecureRegion(t *testing.T) {
	// With the protected range below all workload addresses, a "secure"
	// design must behave exactly like NP: zero metadata traffic.
	cfg := testConfig()
	cfg.MC.SecureRegionBytes = 4096
	s := New(cfg, secmem.DesignMorph())
	gen := trace.NewUniform(region(1<<28, 64<<20), 10, 3, 1)
	r := s.Run(trace.Limit(gen, 20000), 20000)
	if r.CtrAccesses != 0 || r.Traffic.MTRead != 0 || r.Traffic.MACRead != 0 {
		t.Fatalf("out-of-region accesses generated metadata traffic: %+v", r.Traffic)
	}

	// With the range covering the workload, metadata traffic appears.
	cfg.MC.SecureRegionBytes = 1 << 30
	s2 := New(cfg, secmem.DesignMorph())
	gen2 := trace.NewUniform(region(1<<28, 64<<20), 10, 3, 1)
	r2 := s2.Run(trace.Limit(gen2, 20000), 20000)
	if r2.CtrAccesses == 0 {
		t.Fatal("in-region accesses must be protected")
	}
}
