// Package integrity models the integrity machinery of AES-CTR secure memory:
// the address layout of the counter region, MAC region and Merkle-tree (MT)
// node levels used by the timing simulator, and a real hash tree
// (HashTree) used by the functional enclave to detect tampering and replay.
package integrity

import (
	"fmt"

	"cosmos/internal/memsys"
)

// TreeLayout maps counter blocks to the DRAM addresses of their Merkle-tree
// ancestors. Leaves are the counter blocks themselves (stored in the CTR
// region); levels 1..top are 64-byte MT nodes, each covering Arity children;
// the single top node is the root, held on-chip and never fetched.
type TreeLayout struct {
	Arity      int
	LeafBlocks uint64

	levels     []uint64      // node count per level, level 0 = leaves
	levelBase  []memsys.Addr // DRAM base address per level (levels ≥ 1)
	totalNodes uint64
	shift      uint // log2(Arity) when Arity is a power of two, else 0
	fetch      int  // highest level PathNodes emits (root excluded)
}

// NewTreeLayout builds the layout for a tree over leafBlocks counter blocks
// with the given arity (8 children per 64B node), placing MT nodes starting
// at base.
func NewTreeLayout(leafBlocks uint64, arity int, base memsys.Addr) *TreeLayout {
	if leafBlocks == 0 || arity < 2 {
		panic(fmt.Sprintf("integrity: invalid tree leafBlocks=%d arity=%d", leafBlocks, arity))
	}
	t := &TreeLayout{Arity: arity, LeafBlocks: leafBlocks}
	t.levels = append(t.levels, leafBlocks)
	n := leafBlocks
	for n > 1 {
		n = (n + uint64(arity) - 1) / uint64(arity)
		t.levels = append(t.levels, n)
	}
	t.levelBase = make([]memsys.Addr, len(t.levels))
	addr := base
	for lvl := 1; lvl < len(t.levels); lvl++ {
		t.levelBase[lvl] = addr
		addr += memsys.Addr(t.levels[lvl] * memsys.LineSize)
		t.totalNodes += t.levels[lvl]
	}
	// The top level is the on-chip root (count 1) whenever the tree has any
	// levels at all; PathNodes stops just below it.
	t.fetch = len(t.levels) - 2
	if arity&(arity-1) == 0 {
		for 1<<t.shift < arity {
			t.shift++
		}
	}
	return t
}

// Depth returns the number of MT levels above the leaves (including the
// root level). A single-leaf tree has depth 0.
func (t *TreeLayout) Depth() int { return len(t.levels) - 1 }

// NodeCount returns the total number of MT nodes (all levels above leaves).
func (t *TreeLayout) NodeCount() uint64 { return t.totalNodes }

// NodeAddr returns the DRAM address of node idx at level lvl (lvl ≥ 1).
func (t *TreeLayout) NodeAddr(lvl int, idx uint64) memsys.Addr {
	return t.levelBase[lvl] + memsys.Addr(idx*memsys.LineSize)
}

// PathNodes returns the DRAM addresses of the MT nodes that must be fetched
// to verify counter block leaf — its ancestors from level 1 up to, but not
// including, the on-chip root. The result is ordered leaf-side first.
func (t *TreeLayout) PathNodes(leaf uint64, buf []memsys.Addr) []memsys.Addr {
	buf = buf[:0]
	idx := leaf
	if t.shift != 0 {
		// Power-of-two arity (the normal case): the per-level parent step is
		// a shift, and the root test is precomputed into t.fetch.
		for lvl := 1; lvl <= t.fetch; lvl++ {
			idx >>= t.shift
			buf = append(buf, t.levelBase[lvl]+memsys.Addr(idx*memsys.LineSize))
		}
		return buf
	}
	for lvl := 1; lvl <= t.fetch; lvl++ {
		idx /= uint64(t.Arity)
		buf = append(buf, t.NodeAddr(lvl, idx))
	}
	return buf
}

// StorageBytes reports the DRAM footprint of all MT nodes.
func (t *TreeLayout) StorageBytes() uint64 { return t.totalNodes * memsys.LineSize }

// SecureLayout places the metadata regions for a protected memory of
// dataBytes: counters, MACs and MT nodes live above the data region.
type SecureLayout struct {
	DataBytes uint64
	CtrBase   memsys.Addr
	MACBase   memsys.Addr
	MTBase    memsys.Addr
	Tree      *TreeLayout

	linesPerCtrBlock uint64
}

// NewSecureLayout lays out metadata for a data region of dataBytes covered
// by counter blocks of linesPerBlock lines each, with an arity-8 MT.
func NewSecureLayout(dataBytes uint64, linesPerBlock int) *SecureLayout {
	if dataBytes == 0 || linesPerBlock <= 0 {
		panic("integrity: invalid secure layout")
	}
	lines := (dataBytes + memsys.LineSize - 1) / memsys.LineSize
	ctrBlocks := (lines + uint64(linesPerBlock) - 1) / uint64(linesPerBlock)
	macBlocks := (lines + 7) / 8 // 8 × 64-bit MACs per 64B block

	l := &SecureLayout{DataBytes: dataBytes, linesPerCtrBlock: uint64(linesPerBlock)}
	l.CtrBase = memsys.Addr(dataBytes)
	l.MACBase = l.CtrBase + memsys.Addr(ctrBlocks*memsys.LineSize)
	l.MTBase = l.MACBase + memsys.Addr(macBlocks*memsys.LineSize)
	l.Tree = NewTreeLayout(ctrBlocks, 8, l.MTBase)
	return l
}

// LinesPerBlock returns how many data lines one counter block covers.
func (l *SecureLayout) LinesPerBlock() uint64 { return l.linesPerCtrBlock }

// CtrBlockOf maps a data line to its counter-block index.
func (l *SecureLayout) CtrBlockOf(dataLine uint64) uint64 {
	return dataLine / l.linesPerCtrBlock
}

// CtrAddr returns the DRAM address of the counter block covering dataLine.
func (l *SecureLayout) CtrAddr(dataLine uint64) memsys.Addr {
	return l.CtrBase + memsys.Addr(l.CtrBlockOf(dataLine)*memsys.LineSize)
}

// MACAddr returns the DRAM address of the MAC block covering dataLine
// (one MAC fetch authenticates 8 data lines — §5 of the paper).
func (l *SecureLayout) MACAddr(dataLine uint64) memsys.Addr {
	return l.MACBase + memsys.Addr((dataLine/8)*memsys.LineSize)
}

// MetadataBytes reports the total metadata footprint (counters, MACs, MT).
func (l *SecureLayout) MetadataBytes() uint64 {
	return uint64(l.MTBase-l.CtrBase) + l.Tree.StorageBytes()
}
