package integrity

// Shadow is the lightweight functional mirror the fault plane verifies
// against. Instead of materialising every counter, MAC and MT hash (the
// full-fidelity HashTree exists for that), it tracks only the *difference*
// between what DRAM holds and what it should hold: a corruption XORs a
// nonzero mask onto a key's delta, and a verify passes exactly when the
// delta is zero. That gives real end-to-end semantics — an injected flip is
// detected because the stored value genuinely no longer matches the
// expected one, and flipping the same bit twice genuinely cancels out —
// at O(live faults) memory instead of O(memory size).
type Shadow struct {
	delta map[uint64]uint64
}

// NewShadow returns an empty (uncorrupted) shadow.
func NewShadow() *Shadow {
	return &Shadow{delta: make(map[uint64]uint64)}
}

// Corrupt XORs mask onto the value stored under key. A zero mask is a
// no-op (the stored value would still verify).
func (s *Shadow) Corrupt(key, mask uint64) {
	if mask == 0 {
		return
	}
	d := s.delta[key] ^ mask
	if d == 0 {
		delete(s.delta, key)
		return
	}
	s.delta[key] = d
}

// Check verifies the value stored under key against its expected value,
// returning the residual delta and whether the check passed.
func (s *Shadow) Check(key uint64) (delta uint64, ok bool) {
	d := s.delta[key]
	return d, d == 0
}

// Repair restores the value under key to its expected value (a re-fetch
// from a good replica, or a re-encryption under a fresh counter).
func (s *Shadow) Repair(key uint64) {
	delete(s.delta, key)
}

// Corrupted reports how many keys currently fail verification.
func (s *Shadow) Corrupted() int { return len(s.delta) }
