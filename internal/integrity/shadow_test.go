package integrity

import "testing"

func TestShadowCorruptCheckRepair(t *testing.T) {
	s := NewShadow()
	if _, ok := s.Check(7); !ok {
		t.Fatal("pristine object must verify")
	}
	s.Corrupt(7, 0xDEAD)
	if delta, ok := s.Check(7); ok || delta != 0xDEAD {
		t.Fatalf("corrupted object verified: delta=%#x ok=%v", delta, ok)
	}
	if s.Corrupted() != 1 {
		t.Fatalf("Corrupted = %d", s.Corrupted())
	}
	s.Repair(7)
	if _, ok := s.Check(7); !ok {
		t.Fatal("repaired object must verify")
	}
	if s.Corrupted() != 0 {
		t.Fatalf("Corrupted = %d after repair", s.Corrupted())
	}
}

func TestShadowXORSemantics(t *testing.T) {
	s := NewShadow()
	// Two identical corruptions cancel: the bit flips flip back.
	s.Corrupt(3, 0xFF)
	s.Corrupt(3, 0xFF)
	if _, ok := s.Check(3); !ok {
		t.Fatal("self-cancelling corruption must verify")
	}
	if s.Corrupted() != 0 {
		t.Fatal("cancelled entry must not linger in the map")
	}
	// A zero mask is a no-op, not an entry.
	s.Corrupt(4, 0)
	if s.Corrupted() != 0 {
		t.Fatal("zero-mask corruption created an entry")
	}
	// Distinct keys are independent.
	s.Corrupt(1, 0x0F)
	s.Corrupt(2, 0xF0)
	if s.Corrupted() != 2 {
		t.Fatalf("Corrupted = %d, want 2", s.Corrupted())
	}
	s.Repair(1)
	if _, ok := s.Check(2); ok {
		t.Fatal("repairing one key must not repair another")
	}
}
