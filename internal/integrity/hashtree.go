package integrity

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Digest is a SHA-256 hash value.
type Digest = [32]byte

// HashTree is a real Merkle tree over counter-block digests. Interior nodes
// live in untrusted storage (they would sit in DRAM); only the root copy is
// trusted. Verify recomputes the leaf-to-root chain from untrusted nodes and
// compares against the trusted root, exactly the check that defeats replay
// attacks in AES-CTR+MT secure memory.
//
// The tree is sparse: absent nodes take precomputed all-zero-subtree
// defaults, so a 4M-leaf tree costs memory only for blocks actually written.
type HashTree struct {
	arity  int
	levels []uint64
	nodes  []map[uint64]Digest // untrusted node storage per level; level 0 = leaves
	root   Digest              // trusted on-chip root
	def    []Digest            // default digest per level (all-zero subtree)
}

// NewHashTree builds a tree over leafCount leaves with the given arity.
func NewHashTree(leafCount uint64, arity int) *HashTree {
	if leafCount == 0 || arity < 2 {
		panic(fmt.Sprintf("integrity: invalid hash tree leaves=%d arity=%d", leafCount, arity))
	}
	t := &HashTree{arity: arity}
	t.levels = append(t.levels, leafCount)
	n := leafCount
	for n > 1 {
		n = (n + uint64(arity) - 1) / uint64(arity)
		t.levels = append(t.levels, n)
	}
	t.nodes = make([]map[uint64]Digest, len(t.levels))
	for i := range t.nodes {
		t.nodes[i] = make(map[uint64]Digest)
	}
	t.def = make([]Digest, len(t.levels))
	t.def[0] = sha256.Sum256([]byte("cosmos-empty-leaf"))
	for lvl := 1; lvl < len(t.levels); lvl++ {
		t.def[lvl] = t.hashChildren(lvl, 0, func(uint64) Digest { return t.def[lvl-1] })
	}
	t.root = t.node(len(t.levels)-1, 0)
	return t
}

func (t *HashTree) node(lvl int, idx uint64) Digest {
	if d, ok := t.nodes[lvl][idx]; ok {
		return d
	}
	return t.def[lvl]
}

// hashChildren computes the parent digest at (lvl, idx) from a child-fetch
// function; the level and index are folded in to pin node positions.
func (t *HashTree) hashChildren(lvl int, idx uint64, child func(uint64) Digest) Digest {
	h := sha256.New()
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(lvl))
	binary.LittleEndian.PutUint64(hdr[8:], idx)
	h.Write(hdr[:])
	first := idx * uint64(t.arity)
	for c := uint64(0); c < uint64(t.arity); c++ {
		ci := first + c
		if ci < t.levels[lvl-1] {
			d := child(ci)
			h.Write(d[:])
		}
	}
	var out Digest
	copy(out[:], h.Sum(nil))
	return out
}

// SetLeaf installs a new leaf digest (a counter block changed) and updates
// the ancestor chain plus the trusted root — the MT update a secure memory
// controller performs on every counter increment.
func (t *HashTree) SetLeaf(leaf uint64, d Digest) {
	if leaf >= t.levels[0] {
		panic(fmt.Sprintf("integrity: leaf %d out of range %d", leaf, t.levels[0]))
	}
	t.nodes[0][leaf] = d
	idx := leaf
	for lvl := 1; lvl < len(t.levels); lvl++ {
		idx /= uint64(t.arity)
		t.nodes[lvl][idx] = t.hashChildren(lvl, idx, func(ci uint64) Digest { return t.node(lvl-1, ci) })
	}
	t.root = t.node(len(t.levels)-1, 0)
}

// Verify checks that the claimed leaf digest is authentic: it must match the
// stored (untrusted) leaf, and the recomputed chain of parent hashes over
// untrusted nodes must land exactly on the trusted root. Any tampering with
// the leaf, an interior node, or a replay of stale values fails the check.
func (t *HashTree) Verify(leaf uint64, claimed Digest) bool {
	if leaf >= t.levels[0] {
		return false
	}
	if t.node(0, leaf) != claimed {
		return false
	}
	if len(t.levels) == 1 { // single leaf: the leaf is the root
		return claimed == t.root
	}
	idx := leaf
	for lvl := 1; lvl < len(t.levels); lvl++ {
		idx /= uint64(t.arity)
		want := t.hashChildren(lvl, idx, func(ci uint64) Digest { return t.node(lvl-1, ci) })
		if lvl == len(t.levels)-1 {
			return want == t.root
		}
		if t.node(lvl, idx) != want {
			return false
		}
	}
	return false // unreachable
}

// Root returns the trusted on-chip root digest.
func (t *HashTree) Root() Digest { return t.root }

// Depth returns the number of levels above the leaves.
func (t *HashTree) Depth() int { return len(t.levels) - 1 }

// CorruptNode overwrites an untrusted stored node, simulating a physical
// attacker flipping bits in DRAM. Used by fault-injection tests.
func (t *HashTree) CorruptNode(lvl int, idx uint64, d Digest) {
	t.nodes[lvl][idx] = d
}

// LeafDigest hashes raw leaf content (a serialised counter block) into the
// tree's digest domain.
func LeafDigest(content []byte) Digest { return sha256.Sum256(content) }
