package integrity

import (
	"testing"
	"testing/quick"

	"cosmos/internal/memsys"
)

func TestTreeLayoutDepth(t *testing.T) {
	cases := []struct {
		leaves uint64
		depth  int
		nodes  uint64
	}{
		{1, 0, 0},
		{8, 1, 1},
		{9, 2, 2 + 1},
		{64, 2, 8 + 1},
		{4194304, 8, 0}, // 32GB MorphCtr: 8^8 > 4.2M ≥ 8^7
	}
	for _, c := range cases {
		tl := NewTreeLayout(c.leaves, 8, 0)
		if tl.Depth() != c.depth {
			t.Errorf("leaves=%d depth=%d, want %d", c.leaves, tl.Depth(), c.depth)
		}
		if c.nodes != 0 && tl.NodeCount() != c.nodes {
			t.Errorf("leaves=%d nodes=%d, want %d", c.leaves, tl.NodeCount(), c.nodes)
		}
	}
}

func TestPathExcludesRoot(t *testing.T) {
	tl := NewTreeLayout(64, 8, 1<<30)
	var buf []memsys.Addr
	p := tl.PathNodes(17, buf)
	// 64 leaves: level1 has 8 nodes (fetched), level2 is the root (not).
	if len(p) != 1 {
		t.Fatalf("path length %d, want 1", len(p))
	}
	if p[0] != tl.NodeAddr(1, 17/8) {
		t.Fatalf("path node %#x, want level-1 node %d", uint64(p[0]), 17/8)
	}
	// Single-level tree: path is empty (root covers the leaves directly).
	small := NewTreeLayout(8, 8, 0)
	if len(small.PathNodes(3, nil)) != 0 {
		t.Fatal("8-leaf tree path should be empty (root only)")
	}
}

func TestPathNodesShareAncestors(t *testing.T) {
	tl := NewTreeLayout(4096, 8, 0) // depth 4: levels 512, 64, 8, root
	a := tl.PathNodes(0, nil)
	b := append([]memsys.Addr(nil), tl.PathNodes(7, nil)...)
	if len(a) != 3 {
		t.Fatalf("depth-4 tree should fetch 3 nodes, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("leaves 0 and 7 share all ancestors; differ at level %d", i+1)
		}
	}
	c := tl.PathNodes(8, nil)
	if c[0] == a[0] {
		t.Fatal("leaves 0 and 8 must differ at level 1")
	}
	if c[1] != a[1] {
		t.Fatal("leaves 0 and 8 share the level-2 ancestor")
	}
}

func TestPathAddressesDisjointLevels(t *testing.T) {
	tl := NewTreeLayout(4096, 8, 4096)
	f := func(leafRaw uint16) bool {
		leaf := uint64(leafRaw) % 4096
		p := tl.PathNodes(leaf, nil)
		seen := map[memsys.Addr]bool{}
		for _, a := range p {
			if seen[a] || a%memsys.LineSize != 0 {
				return false
			}
			seen[a] = true
		}
		return len(p) == tl.Depth()-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecureLayoutRegions(t *testing.T) {
	l := NewSecureLayout(1<<20, 128) // 1MB data, MorphCtr coverage
	lines := uint64(1<<20) / 64      // 16384
	ctrBlocks := lines / 128         // 128
	if l.CtrBase != memsys.Addr(1<<20) {
		t.Fatal("CTR region must start after data")
	}
	if uint64(l.MACBase-l.CtrBase) != ctrBlocks*64 {
		t.Fatalf("ctr region size %d", l.MACBase-l.CtrBase)
	}
	if uint64(l.MTBase-l.MACBase) != (lines/8)*64 {
		t.Fatalf("mac region size %d", l.MTBase-l.MACBase)
	}
	if l.CtrBlockOf(0) != 0 || l.CtrBlockOf(128) != 1 {
		t.Fatal("CtrBlockOf wrong")
	}
	if l.CtrAddr(129) != l.CtrBase+64 {
		t.Fatal("CtrAddr wrong")
	}
	if l.MACAddr(8) != l.MACBase+64 {
		t.Fatal("MACAddr wrong")
	}
	if l.MetadataBytes() == 0 {
		t.Fatal("metadata bytes")
	}
}

func TestPaperMTDepth32GB(t *testing.T) {
	// §3.1: 32GB / 64B = 537M lines; /128 = 4.2M counter blocks. With an
	// 8-ary tree that is 8 levels — the paper quotes ~22 *binary*-tree
	// levels; our 8-ary tree fetches ⌈log8(4.2M)⌉−1 = 7 nodes per miss.
	l := NewSecureLayout(32<<30, 128)
	if l.Tree.Depth() != 8 {
		t.Fatalf("32GB MorphCtr tree depth = %d, want 8", l.Tree.Depth())
	}
	if got := len(l.Tree.PathNodes(123456, nil)); got != 7 {
		t.Fatalf("path fetches %d nodes, want 7", got)
	}
}

// --- HashTree (functional) ---

func TestHashTreeVerifyRoundTrip(t *testing.T) {
	ht := NewHashTree(100, 8)
	d1 := LeafDigest([]byte("block 7 v1"))
	ht.SetLeaf(7, d1)
	if !ht.Verify(7, d1) {
		t.Fatal("fresh leaf must verify")
	}
	if ht.Verify(7, LeafDigest([]byte("block 7 v0"))) {
		t.Fatal("stale digest must fail (replay)")
	}
	if ht.Verify(8, d1) {
		t.Fatal("wrong leaf index must fail")
	}
}

func TestHashTreeUpdateChangesRoot(t *testing.T) {
	ht := NewHashTree(64, 8)
	r0 := ht.Root()
	ht.SetLeaf(0, LeafDigest([]byte("a")))
	r1 := ht.Root()
	if r0 == r1 {
		t.Fatal("root must change after a leaf update")
	}
	ht.SetLeaf(0, LeafDigest([]byte("b")))
	if ht.Root() == r1 {
		t.Fatal("root must change after second update")
	}
}

func TestHashTreeDetectsInteriorTampering(t *testing.T) {
	ht := NewHashTree(4096, 8)
	d := LeafDigest([]byte("counter block"))
	ht.SetLeaf(1000, d)
	if !ht.Verify(1000, d) {
		t.Fatal("setup")
	}
	// Attacker rewrites the level-1 ancestor in DRAM.
	ht.CorruptNode(1, 1000/8, LeafDigest([]byte("evil")))
	if ht.Verify(1000, d) {
		t.Fatal("interior tampering must be detected")
	}
}

func TestHashTreeDetectsLeafReplay(t *testing.T) {
	ht := NewHashTree(512, 8)
	old := LeafDigest([]byte("ctr=5"))
	ht.SetLeaf(9, old)
	ht.SetLeaf(9, LeafDigest([]byte("ctr=6")))
	// Attacker rolls the stored leaf back to the old digest.
	ht.CorruptNode(0, 9, old)
	if ht.Verify(9, old) {
		t.Fatal("replayed counter must fail verification against the root")
	}
}

func TestHashTreeIndependentLeaves(t *testing.T) {
	ht := NewHashTree(256, 8)
	dA := LeafDigest([]byte("A"))
	dB := LeafDigest([]byte("B"))
	ht.SetLeaf(3, dA)
	ht.SetLeaf(200, dB)
	if !ht.Verify(3, dA) || !ht.Verify(200, dB) {
		t.Fatal("both leaves must verify after independent updates")
	}
}

func TestHashTreeSingleLeaf(t *testing.T) {
	ht := NewHashTree(1, 8)
	d := LeafDigest([]byte("only"))
	ht.SetLeaf(0, d)
	if !ht.Verify(0, d) {
		t.Fatal("single-leaf verify")
	}
	if ht.Verify(0, LeafDigest([]byte("other"))) {
		t.Fatal("single-leaf reject")
	}
	if ht.Depth() != 0 {
		t.Fatal("single-leaf depth must be 0")
	}
}

func TestHashTreeOutOfRange(t *testing.T) {
	ht := NewHashTree(10, 8)
	if ht.Verify(10, Digest{}) {
		t.Fatal("out-of-range leaf must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetLeaf out of range must panic")
		}
	}()
	ht.SetLeaf(10, Digest{})
}

func TestHashTreePropertyAnyLeafRoundTrips(t *testing.T) {
	ht := NewHashTree(1000, 8)
	f := func(leafRaw uint16, content []byte) bool {
		leaf := uint64(leafRaw) % 1000
		d := LeafDigest(content)
		ht.SetLeaf(leaf, d)
		return ht.Verify(leaf, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
