package graph

import (
	"testing"

	"cosmos/internal/memsys"
	"cosmos/internal/trace"
)

// collect drains a generator completely (bounded) into a slice.
func collect(t *testing.T, gen trace.Generator, bound int) []memsys.Access {
	t.Helper()
	out := make([]memsys.Access, 0, 1024)
	for len(out) < bound {
		a, ok := gen.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
	t.Fatalf("stream exceeded bound %d", bound)
	return nil
}

// TestAllAlgorithmsDeterministic replays every algorithm twice and demands
// byte-identical access streams — the property every experiment in the
// repository rests on.
func TestAllAlgorithmsDeterministic(t *testing.T) {
	g := NewBarabasiAlbert(2000, 4, 3)
	builders := map[string]func(w *Workspace) trace.Generator{
		"BFS": func(w *Workspace) trace.Generator { gen, _ := BFS(w, 5); return gen },
		"DFS": func(w *Workspace) trace.Generator { gen, _ := DFS(w, 5); return gen },
		"PR":  func(w *Workspace) trace.Generator { gen, _ := PageRank(w, 3); return gen },
		"CC":  func(w *Workspace) trace.Generator { gen, _ := ConnectedComponents(w, 10); return gen },
		"SP":  func(w *Workspace) trace.Generator { gen, _ := ShortestPath(w, 0, 10); return gen },
		"GC":  func(w *Workspace) trace.Generator { gen, _ := GraphColoring(w); return gen },
		"TC":  func(w *Workspace) trace.Generator { gen, _ := TriangleCounting(w); return gen },
		"DC":  func(w *Workspace) trace.Generator { gen, _ := DegreeCentrality(w); return gen },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			w1 := NewWorkspace(g, 2, 1<<30)
			w2 := NewWorkspace(g, 2, 1<<30)
			a := collect(t, trace.Limit(build(w1), 30000), 30001)
			b := collect(t, trace.Limit(build(w2), 30000), 30001)
			if len(a) != len(b) {
				t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("streams diverge at %d: %v vs %v", i, a[i], b[i])
				}
			}
		})
	}
}

func TestScatterChangesAddressesNotResults(t *testing.T) {
	g := NewBarabasiAlbert(1000, 4, 9)
	ws := NewWorkspace(g, 1, 1<<30)
	wp := NewPackedWorkspace(g, 1, 1<<30)

	genS, resS := TriangleCounting(ws)
	genP, resP := TriangleCounting(wp)
	collect(t, genS, 1<<26)
	collect(t, genP, 1<<26)
	if resS.Count() != resP.Count() {
		t.Fatalf("layout changed the computed result: %d vs %d", resS.Count(), resP.Count())
	}
}

func TestScatterIsBijectiveOverRing(t *testing.T) {
	g := NewBarabasiAlbert(500, 3, 1)
	w := NewWorkspace(g, 1, 1<<30)
	seen := map[uint64]uint32{}
	for v := uint32(0); v < uint32(g.N); v++ {
		idx := w.vIdx(v)
		if prev, dup := seen[idx]; dup {
			t.Fatalf("vIdx collision: vertices %d and %d both map to %d", prev, v, idx)
		}
		if idx > w.vMask {
			t.Fatalf("vIdx(%d) = %d beyond ring %d", v, idx, w.vMask)
		}
		seen[idx] = v
	}
}

func TestPackedWorkspaceIdentityMapping(t *testing.T) {
	g := NewBarabasiAlbert(100, 3, 1)
	w := NewPackedWorkspace(g, 1, 1<<30)
	for v := uint32(0); v < 100; v++ {
		if w.vIdx(v) != uint64(v) {
			t.Fatal("packed layout must use identity vertex mapping")
		}
	}
	if w.edgeIdx(3, 2) != uint64(g.Offsets[3])+2 {
		t.Fatal("packed layout must use CSR edge offsets")
	}
}

func TestEdgeChunksContiguous(t *testing.T) {
	g := NewBarabasiAlbert(300, 4, 2)
	w := NewWorkspace(g, 1, 1<<30)
	// Within one vertex's list, consecutive edges are consecutive
	// elements (one heap allocation), even under scattering.
	for v := uint32(0); v < 300; v += 17 {
		deg := g.Degree(v)
		for i := 1; i < deg; i++ {
			if w.edgeIdx(v, i) != w.edgeIdx(v, i-1)+1 {
				t.Fatalf("vertex %d: edge chunk not contiguous at slot %d", v, i)
			}
		}
	}
}

func TestWeightOfRange(t *testing.T) {
	for i := uint32(0); i < 1000; i++ {
		w := weightOf(i)
		if w < 1 || w > 16 {
			t.Fatalf("weightOf(%d) = %d outside [1,16]", i, w)
		}
	}
}
