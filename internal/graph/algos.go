package graph

import (
	"sync/atomic"

	"cosmos/internal/memsys"
	"cosmos/internal/trace"
)

// Region signatures: each logical data structure gets a distinct tag that
// stands in for the PC of the accessing instruction.
const (
	SigOffsets uint16 = 1
	SigEdges   uint16 = 2
	SigProp    uint16 = 3
	SigProp2   uint16 = 4
	SigWork    uint16 = 5
	SigVisited uint16 = 6
	SigWeights uint16 = 7
)

// Workspace binds a graph to a synthetic address-space layout so algorithm
// runs can emit the address of every logical load and store: per-vertex
// object records (degree/offset, properties, visited flags), scattered
// adjacency-list chunks, per-thread worklists, and an edge-weight array for
// SP.
//
// Layout realism: GraphBIG stores graphs as heap-allocated vertex and edge
// objects, so the memory position of a vertex is uncorrelated with its ID.
// We reproduce that with a hash permutation (Scatter, on by default): vertex
// v's records live at permuted index, and each adjacency list occupies its
// own scattered chunk. Turning Scatter off yields a packed CSR layout — the
// ablation benches compare the two.
type Workspace struct {
	G       *Graph
	Threads int
	Scatter bool

	offsets memsys.Region
	edges   memsys.Region
	weights memsys.Region
	prop    memsys.Region
	prop2   memsys.Region
	visited []memsys.Region // per thread
	work    []memsys.Region // per thread

	vMask     uint64 // permutation ring size - 1 (power of two ≥ N)
	edgeLines uint64 // lines in the edges region
}

// NewWorkspace lays out the graph's arrays starting at base, partitioned for
// the given thread count, with heap-style scattering enabled.
func NewWorkspace(g *Graph, threads int, base memsys.Addr) *Workspace {
	return newWorkspace(g, threads, base, true)
}

// NewPackedWorkspace lays the arrays out as packed CSR (no scattering) —
// the layout-ablation variant.
func NewPackedWorkspace(g *Graph, threads int, base memsys.Addr) *Workspace {
	return newWorkspace(g, threads, base, false)
}

func newWorkspace(g *Graph, threads int, base memsys.Addr, scatter bool) *Workspace {
	if threads < 1 {
		threads = 1
	}
	l := memsys.NewLayout(base)
	w := &Workspace{G: g, Threads: threads, Scatter: scatter}
	n := uint64(g.N)
	pow2 := uint64(1)
	for pow2 < n+1 {
		pow2 <<= 1
	}
	w.vMask = pow2 - 1
	// Vertex records are multi-line heap objects (GraphBIG keeps
	// per-vertex property objects, not packed scalars); edge records are
	// 16-byte list nodes (target + weight + next pointer).
	w.offsets = l.Alloc("offsets", pow2, vertexObjBytes)
	// Edge region: sized 2× the packed edge count (rounded to lines) so
	// scattered chunks rarely wrap.
	edgeLines := (uint64(len(g.Edges))*edgeObjBytes/memsys.LineSize + 1) * 2
	ep := uint64(1)
	for ep < edgeLines {
		ep <<= 1
	}
	w.edgeLines = ep
	w.edges = l.Alloc("edges", ep*edgesPerLine, edgeObjBytes)
	w.weights = l.Alloc("weights", ep*edgesPerLine, edgeObjBytes)
	w.prop = l.Alloc("prop", pow2, vertexObjBytes)
	w.prop2 = l.Alloc("prop2", pow2, vertexObjBytes)
	for t := 0; t < threads; t++ {
		w.visited = append(w.visited, l.Alloc("visited", pow2, vertexObjBytes))
		w.work = append(w.work, l.Alloc("work", n+1, 4))
	}
	return w
}

// Object sizes modelling GraphBIG's heap representation: each vertex is a
// C++ property object (fields, vector headers, adjacency-list head and
// allocator metadata — a few cache lines), each edge a 16-byte list node.
const (
	vertexObjBytes = 256
	edgeObjBytes   = 16
	edgesPerLine   = memsys.LineSize / edgeObjBytes
)

// vIdx maps a vertex ID to its record index: a bijective multiplicative
// permutation over the power-of-two ring when scattering, identity when
// packed.
func (w *Workspace) vIdx(v uint32) uint64 {
	if !w.Scatter {
		return uint64(v)
	}
	return (uint64(v)*0x9E3779B1 + 0x7F4A7C15) & w.vMask
}

// edgeIdx maps edge slot i of vertex u to an element index in the edges
// region: each vertex's list occupies a contiguous chunk placed at a hashed
// line offset (its own heap allocation).
func (w *Workspace) edgeIdx(u uint32, i int) uint64 {
	if !w.Scatter {
		return uint64(w.G.Offsets[u]) + uint64(i)
	}
	chunkLine := (uint64(u)*0x85EBCA6B + 0xC2B2AE35) & (w.edgeLines - 1)
	return chunkLine*edgesPerLine + uint64(i)
}

// Footprint returns the total bytes of the laid-out arrays.
func (w *Workspace) Footprint() uint64 {
	total := w.offsets.Size + w.edges.Size + w.weights.Size + w.prop.Size + w.prop2.Size
	for t := range w.visited {
		total += w.visited[t].Size + w.work[t].Size
	}
	return total
}

// weightOf derives a deterministic edge weight in [1,16].
func weightOf(edgeIdx uint32) uint32 { return edgeIdx%16 + 1 }

// emitter wraps the push callback with typed load/store helpers.
type emitter struct {
	emit   func(memsys.Access)
	thread uint8
}

func (e emitter) load(r memsys.Region, i uint64, sig uint16) {
	e.emit(memsys.Access{Addr: r.At(i), Type: memsys.Read, Thread: e.thread, Region: sig})
}

func (e emitter) store(r memsys.Region, i uint64, sig uint16) {
	e.emit(memsys.Access{Addr: r.At(i), Type: memsys.Write, Thread: e.thread, Region: sig})
}

// neighbors emits the loads performed to walk u's adjacency (offset pair +
// each edge word) and returns the adjacency slice.
func (e emitter) neighbors(w *Workspace, u uint32) []uint32 {
	e.load(w.offsets, w.vIdx(u), SigOffsets)
	return w.G.Neighbors(u)
}

// rangeFor splits [0, n) into `threads` contiguous chunks.
func rangeFor(n, threads, t int) (lo, hi uint32) {
	lo = uint32(n * t / threads)
	hi = uint32(n * (t + 1) / threads)
	return lo, hi
}

// interleaved wraps per-thread push programs into a single deterministic
// generator.
func (w *Workspace) interleaved(name string, chunk int, programs []func(e emitter)) trace.Generator {
	gens := make([]trace.Generator, len(programs))
	for t := range programs {
		prog := programs[t]
		th := uint8(t)
		gens[t] = trace.FromFunc(name, func(emit func(memsys.Access)) {
			prog(emitter{emit: emit, thread: th})
		})
	}
	return trace.NewInterleave(name, gens, chunk)
}

// singleProgram runs one deterministic program that interleaves work for
// every logical thread itself (used by the algorithms whose threads share
// mutable state — CC, SP, GC). A single producer goroutine eliminates the
// scheduling-dependent data races that per-thread producers would have, so
// the emitted trace is exactly reproducible; the program interleaves
// per-thread work at vertex granularity to preserve the multi-core access
// mix.
func (w *Workspace) singleProgram(name string, run func(es []emitter)) trace.Generator {
	return trace.FromFunc(name, func(emit func(memsys.Access)) {
		es := make([]emitter, w.Threads)
		for t := range es {
			es[t] = emitter{emit: emit, thread: uint8(t)}
		}
		run(es)
	})
}

// forEachInterleaved visits every vertex exactly once, interleaving the
// thread partitions at vertex granularity (thread 0's i-th vertex, thread
// 1's i-th vertex, ...), which is how the merged trace of barrier-free
// parallel threads looks without depending on real scheduling.
func forEachInterleaved(n, threads int, visit func(t int, u uint32)) {
	span := (n + threads - 1) / threads
	for i := 0; i < span; i++ {
		for t := 0; t < threads; t++ {
			lo, hi := rangeFor(n, threads, t)
			u := lo + uint32(i)
			if u < hi {
				visit(t, u)
			}
		}
	}
}

// InterleaveChunk is the per-thread burst length used when merging thread
// streams; it approximates the reorder window of interleaved cores.
const InterleaveChunk = 64

// --- BFS ---

// BFSResult carries the computed levels for correctness checks (thread 0's
// traversal).
type BFSResult struct {
	Level []int32 // -1 if unreached by thread 0's BFS
}

// BFS runs one breadth-first traversal per thread, each from a different
// root, matching GraphBIG's multi-instance configuration. Every offset,
// edge, visited-flag and queue operation is emitted.
func BFS(w *Workspace, seed uint64) (trace.Generator, *BFSResult) {
	res := &BFSResult{Level: make([]int32, w.G.N)}
	for i := range res.Level {
		res.Level[i] = -1
	}
	programs := make([]func(emitter), w.Threads)
	for t := 0; t < w.Threads; t++ {
		t := t
		root := uint32((seed + uint64(t)*2654435761) % uint64(w.G.N))
		programs[t] = func(e emitter) {
			n := w.G.N
			level := make([]int32, n)
			for i := range level {
				level[i] = -1
			}
			queue := make([]uint32, 0, n)
			level[root] = 0
			queue = append(queue, root)
			e.store(w.visited[t], w.vIdx(root), SigVisited)
			e.store(w.work[t], 0, SigWork)
			for head := 0; head < len(queue); head++ {
				u := queue[head]
				e.load(w.work[t], uint64(head), SigWork)
				adj := e.neighbors(w, u)
				for i, v := range adj {
					e.load(w.edges, w.edgeIdx(u, i), SigEdges)
					e.load(w.visited[t], w.vIdx(v), SigVisited)
					if level[v] < 0 {
						level[v] = level[u] + 1
						e.store(w.visited[t], w.vIdx(v), SigVisited)
						e.store(w.work[t], uint64(len(queue)), SigWork)
						queue = append(queue, v)
					}
				}
			}
			if t == 0 {
				copy(res.Level, level)
			}
		}
	}
	return w.interleaved("BFS", InterleaveChunk, programs), res
}

// --- DFS ---

// DFSResult reports how many vertices thread 0's traversal reached.
type DFSResult struct {
	VisitedCount int
	Preorder     []uint32 // thread 0's preorder sequence
}

// DFS runs one iterative depth-first traversal per thread from distinct
// roots — the benchmark the paper tunes COSMOS on.
func DFS(w *Workspace, seed uint64) (trace.Generator, *DFSResult) {
	res := &DFSResult{}
	programs := make([]func(emitter), w.Threads)
	for t := 0; t < w.Threads; t++ {
		t := t
		root := uint32((seed + uint64(t)*40503) % uint64(w.G.N))
		programs[t] = func(e emitter) {
			n := w.G.N
			visited := make([]bool, n)
			stack := make([]uint32, 0, 1024)
			var preorder []uint32
			stack = append(stack, root)
			e.store(w.work[t], 0, SigWork)
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				e.load(w.work[t], uint64(len(stack)), SigWork)
				e.load(w.visited[t], w.vIdx(u), SigVisited)
				if visited[u] {
					continue
				}
				visited[u] = true
				preorder = append(preorder, u)
				e.store(w.visited[t], w.vIdx(u), SigVisited)
				adj := e.neighbors(w, u)
				for i := len(adj) - 1; i >= 0; i-- {
					v := adj[i]
					e.load(w.edges, w.edgeIdx(u, i), SigEdges)
					e.load(w.visited[t], w.vIdx(v), SigVisited)
					if !visited[v] {
						e.store(w.work[t], uint64(len(stack)), SigWork)
						stack = append(stack, v)
					}
				}
			}
			if t == 0 {
				res.VisitedCount = len(preorder)
				res.Preorder = preorder
			}
		}
	}
	return w.interleaved("DFS", InterleaveChunk, programs), res
}

// --- PageRank ---

// PRResult carries the final ranks (fixed-point ×1e6, stored atomically).
type PRResult struct {
	Ranks []uint32 // rank × 1e6
}

// PageRank runs `iters` Jacobi iterations, vertex-partitioned: every thread
// reads the shared rank array at its in-neighbours (irregular gathers) and
// writes its own slice of the next-rank array.
func PageRank(w *Workspace, iters int) (trace.Generator, *PRResult) {
	n := w.G.N
	const scale = 1e6
	cur := make([]uint32, n)
	next := make([]uint32, n)
	for i := range cur {
		cur[i] = uint32(scale / float64(n) * 1e3) // rank×1e9/n keeps precision
	}
	res := &PRResult{Ranks: cur}
	programs := make([]func(emitter), w.Threads)
	for t := 0; t < w.Threads; t++ {
		t := t
		programs[t] = func(e emitter) {
			lo, hi := rangeFor(n, w.Threads, t)
			for it := 0; it < iters; it++ {
				src, dst := cur, next
				if it%2 == 1 {
					src, dst = next, cur
				}
				srcReg, dstReg := w.prop, w.prop2
				if it%2 == 1 {
					srcReg, dstReg = w.prop2, w.prop
				}
				for u := lo; u < hi; u++ {
					var sum uint64
					adj := e.neighbors(w, u)
					for i, v := range adj {
						e.load(w.edges, w.edgeIdx(u, i), SigEdges)
						// gather: rank[v]/deg[v]
						e.load(srcReg, w.vIdx(v), SigProp)
						e.load(w.offsets, w.vIdx(v), SigOffsets)
						d := w.G.Degree(v)
						if d > 0 {
							sum += uint64(atomic.LoadUint32(&src[v])) / uint64(d)
						}
					}
					newRank := uint64(0.15*scale*1e3/float64(n)) + uint64(0.85*float64(sum))
					atomic.StoreUint32(&dst[u], uint32(newRank))
					e.store(dstReg, w.vIdx(u), SigProp2)
				}
			}
			if iters%2 == 1 {
				// final values live in `next`; mirror into cur for res
				for u := lo; u < hi; u++ {
					atomic.StoreUint32(&cur[u], atomic.LoadUint32(&next[u]))
				}
			}
		}
	}
	return w.interleaved("PR", InterleaveChunk, programs), res
}

// --- Connected Components (label propagation) ---

// CCResult carries the converged labels.
type CCResult struct {
	Labels []uint32
}

// ConnectedComponents runs label propagation to a fixed point: each sweep
// every vertex reads its neighbours' labels and adopts the minimum. Work is
// vertex-interleaved across the logical threads; rounds cap at maxRounds.
func ConnectedComponents(w *Workspace, maxRounds int) (trace.Generator, *CCResult) {
	n := w.G.N
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	res := &CCResult{Labels: labels}
	gen := w.singleProgram("CC", func(es []emitter) {
		for round := 0; round < maxRounds; round++ {
			changed := false
			forEachInterleaved(n, w.Threads, func(t int, u uint32) {
				e := es[t]
				e.load(w.prop, w.vIdx(u), SigProp)
				min := labels[u]
				adj := e.neighbors(w, u)
				for i, v := range adj {
					e.load(w.edges, w.edgeIdx(u, i), SigEdges)
					e.load(w.prop, w.vIdx(v), SigProp)
					if labels[v] < min {
						min = labels[v]
					}
				}
				if min < labels[u] {
					labels[u] = min
					e.store(w.prop, w.vIdx(u), SigProp)
					changed = true
				}
			})
			if !changed {
				break
			}
		}
	})
	return gen, res
}

// --- Shortest Path (Bellman-Ford sweeps) ---

// SPResult carries the converged distances from the root.
type SPResult struct {
	Dist []uint32 // ^uint32(0) = unreachable
}

// ShortestPath relaxes edges in vertex-interleaved sweeps (Bellman-Ford
// style) from a single root, reading dist[v] for every neighbour — the
// irregular gather the paper's SP benchmark performs.
func ShortestPath(w *Workspace, root uint32, maxRounds int) (trace.Generator, *SPResult) {
	n := w.G.N
	const inf = ^uint32(0)
	dist := make([]uint32, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	res := &SPResult{Dist: dist}
	gen := w.singleProgram("SP", func(es []emitter) {
		for round := 0; round < maxRounds; round++ {
			changed := false
			forEachInterleaved(n, w.Threads, func(t int, u uint32) {
				e := es[t]
				e.load(w.prop, w.vIdx(u), SigProp)
				du := dist[u]
				if du == inf {
					return
				}
				adj := e.neighbors(w, u)
				for i, v := range adj {
					ei := uint64(w.G.Offsets[u]) + uint64(i)
					e.load(w.edges, w.edgeIdx(u, i), SigEdges)
					e.load(w.weights, w.edgeIdx(u, i), SigWeights)
					nd := du + weightOf(uint32(ei))
					e.load(w.prop, w.vIdx(v), SigProp)
					if nd < dist[v] {
						dist[v] = nd
						e.store(w.prop, w.vIdx(v), SigProp)
						changed = true
					}
				}
			})
			if !changed {
				break
			}
		}
	})
	return gen, res
}

// --- Graph Coloring (greedy, Jones-Plassmann flavoured) ---

// GCResult carries the assigned colors.
type GCResult struct {
	Colors []uint32
}

// GraphColoring greedily colors vertices in a vertex-interleaved sweep:
// each vertex reads all neighbour colors and picks the smallest free one;
// a second sweep resolves boundary conflicts the interleaving introduced.
func GraphColoring(w *Workspace) (trace.Generator, *GCResult) {
	n := w.G.N
	colors := make([]uint32, n)
	const uncolored = ^uint32(0)
	for i := range colors {
		colors[i] = uncolored
	}
	res := &GCResult{Colors: colors}
	gen := w.singleProgram("GC", func(es []emitter) {
		colorOf := func(e emitter, u uint32) {
			adj := e.neighbors(w, u)
			used := make(map[uint32]bool, len(adj))
			for i, v := range adj {
				e.load(w.edges, w.edgeIdx(u, i), SigEdges)
				e.load(w.prop, w.vIdx(v), SigProp)
				if c := colors[v]; c != uncolored {
					used[c] = true
				}
			}
			c := uint32(0)
			for used[c] {
				c++
			}
			colors[u] = c
			e.store(w.prop, w.vIdx(u), SigProp)
		}
		forEachInterleaved(n, w.Threads, func(t int, u uint32) {
			colorOf(es[t], u)
		})
		// conflict-resolution sweep: recolor any vertex sharing a color
		// with a smaller-indexed neighbour
		forEachInterleaved(n, w.Threads, func(t int, u uint32) {
			e := es[t]
			cu := colors[u]
			e.load(w.prop, w.vIdx(u), SigProp)
			adj := e.neighbors(w, u)
			for i, v := range adj {
				e.load(w.edges, w.edgeIdx(u, i), SigEdges)
				e.load(w.prop, w.vIdx(v), SigProp)
				if v < u && colors[v] == cu {
					colorOf(e, u)
					break
				}
			}
		})
	})
	return gen, res
}

// --- Triangle Counting ---

// TCResult carries the triangle count. Read it only after the generator is
// fully drained (the producer channels closing establish the necessary
// happens-before edge).
type TCResult struct {
	total uint64
}

// Count returns the number of triangles found so far.
func (r *TCResult) Count() uint64 { return atomic.LoadUint64(&r.total) }

// TriangleCounting merge-intersects sorted adjacency lists per edge (u,v)
// with u<v — long dual streaming reads through the edge array with poor
// temporal locality, exactly the paper's TC profile.
func TriangleCounting(w *Workspace) (trace.Generator, *TCResult) {
	res := &TCResult{}
	programs := make([]func(emitter), w.Threads)
	for t := 0; t < w.Threads; t++ {
		t := t
		programs[t] = func(e emitter) {
			lo, hi := rangeFor(w.G.N, w.Threads, t)
			var local uint64
			for u := lo; u < hi; u++ {
				adjU := e.neighbors(w, u)
				for i, v := range adjU {
					e.load(w.edges, w.edgeIdx(u, i), SigEdges)
					if v <= u {
						continue
					}
					adjV := e.neighbors(w, v)
					// emit the merge's reads: both lists streamed
					ai, bi := 0, 0
					for ai < len(adjU) && bi < len(adjV) {
						e.load(w.edges, w.edgeIdx(u, ai), SigEdges)
						e.load(w.edges, w.edgeIdx(v, bi), SigEdges)
						x, y := adjU[ai], adjV[bi]
						switch {
						case x < y:
							ai++
						case y < x:
							bi++
						default:
							if x > v {
								local++
							}
							ai++
							bi++
						}
					}
				}
			}
			atomic.AddUint64(&res.total, local)
		}
	}
	return w.interleaved("TC", InterleaveChunk, programs), res
}

// --- Degree Centrality ---

// DCResult carries per-vertex degree centrality (in+out degree).
type DCResult struct {
	Centrality []uint32
}

// DegreeCentrality computes each vertex's centrality (in+out degree) by
// walking its own adjacency lists, GraphBIG-style: scattered vertex-object
// reads, per-vertex edge-list scans, one property write per vertex.
func DegreeCentrality(w *Workspace) (trace.Generator, *DCResult) {
	n := w.G.N
	cent := make([]uint32, n)
	res := &DCResult{Centrality: cent}
	programs := make([]func(emitter), w.Threads)
	for t := 0; t < w.Threads; t++ {
		t := t
		programs[t] = func(e emitter) {
			lo, hi := rangeFor(n, w.Threads, t)
			for u := lo; u < hi; u++ {
				adj := e.neighbors(w, u)
				// count the list by walking it (the in-list and
				// out-list coincide in our symmetric representation)
				deg := uint32(0)
				for i := range adj {
					e.load(w.edges, w.edgeIdx(u, i), SigEdges)
					deg++
				}
				atomic.StoreUint32(&cent[u], 2*deg)
				e.store(w.prop, w.vIdx(u), SigProp)
			}
		}
	}
	return w.interleaved("DC", InterleaveChunk, programs), res
}
