// Package graph implements the paper's graph workloads from scratch: a CSR
// graph representation, scale-free (Barabási–Albert) and uniform random
// generators standing in for the GitHub developer social network dataset,
// and the eight GraphBIG algorithms — DFS, BFS, Graph Coloring (GC),
// PageRank (PR), Triangle Counting (TC), Connected Components (CC),
// Shortest Path (SP) and Degree Centrality (DC) — each instrumented to emit
// every logical load/store against a realistic virtual address layout, and
// each partitioned across worker threads the way the paper runs them
// (4 threads).
package graph

import (
	"fmt"
	"sort"

	"cosmos/internal/rl"
)

// Graph is an undirected graph in compressed sparse row form. Edges appear
// in both directions.
type Graph struct {
	N       int
	Offsets []uint32 // length N+1
	Edges   []uint32 // length 2×(undirected edge count)
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v uint32) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// Neighbors returns the adjacency slice of vertex v.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// NumEdges returns the number of directed edge slots (2× undirected edges).
func (g *Graph) NumEdges() int { return len(g.Edges) }

// FromEdgeList builds a symmetric CSR graph from undirected edge pairs.
// Self-loops are dropped; parallel edges are kept (they occur in social
// graphs and only add stream weight).
func FromEdgeList(n int, edges [][2]uint32) *Graph {
	deg := make([]uint32, n+1)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		deg[e[0]+1]++
		deg[e[1]+1]++
	}
	offsets := make([]uint32, n+1)
	for i := 1; i <= n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	adj := make([]uint32, offsets[n])
	fill := make([]uint32, n)
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		u, v := e[0], e[1]
		adj[offsets[u]+fill[u]] = v
		fill[u]++
		adj[offsets[v]+fill[v]] = u
		fill[v]++
	}
	g := &Graph{N: n, Offsets: offsets, Edges: adj}
	// Sort each adjacency list so triangle counting can merge-intersect,
	// as GraphBIG does.
	for u := 0; u < n; u++ {
		sortU32(adj[offsets[u]:offsets[u+1]])
	}
	return g
}

// NewBarabasiAlbert generates a scale-free graph by preferential attachment:
// each new vertex attaches m edges to existing vertices chosen proportional
// to degree. This reproduces the power-law degree distribution of the
// GitHub developer social network the paper evaluates on.
func NewBarabasiAlbert(n, m int, seed uint64) *Graph {
	if n < 2 || m < 1 {
		panic(fmt.Sprintf("graph: invalid BA parameters n=%d m=%d", n, m))
	}
	if m >= n {
		m = n - 1
	}
	rng := rl.NewRand(seed)
	edges := make([][2]uint32, 0, n*m)
	// Repeated-endpoint list: sampling uniformly from it is sampling
	// proportional to degree.
	endpoints := make([]uint32, 0, 2*n*m)
	// Seed clique over the first m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, [2]uint32{uint32(u), uint32(v)})
			endpoints = append(endpoints, uint32(u), uint32(v))
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := map[uint32]bool{}
		order := make([]uint32, 0, m)
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if t != uint32(u) && !chosen[t] {
				chosen[t] = true
				order = append(order, t)
			}
		}
		for _, v := range order {
			edges = append(edges, [2]uint32{uint32(u), v})
			endpoints = append(endpoints, uint32(u), v)
		}
	}
	return FromEdgeList(n, edges)
}

// NewUniformRandom generates an Erdős–Rényi-style graph with the given
// average degree (uniform endpoints).
func NewUniformRandom(n, avgDegree int, seed uint64) *Graph {
	if n < 2 || avgDegree < 1 {
		panic("graph: invalid uniform parameters")
	}
	rng := rl.NewRand(seed)
	m := n * avgDegree / 2
	edges := make([][2]uint32, 0, m)
	for i := 0; i < m; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			v = (v + 1) % uint32(n)
		}
		edges = append(edges, [2]uint32{u, v})
	}
	return FromEdgeList(n, edges)
}

// GitHubLike returns a graph with the scale of the GitHub developer social
// network dataset (Rozemberczki et al.: 37,700 nodes, 289,003 edges): a BA
// graph with matching node count and average degree.
func GitHubLike(seed uint64) *Graph {
	return NewBarabasiAlbert(37700, 8, seed)
}

// ConnectedComponentsRef computes component labels with a sequential
// union-find — the reference answer the instrumented CC algorithm is
// checked against.
func ConnectedComponentsRef(g *Graph) []uint32 {
	parent := make([]uint32, g.N)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := uint32(0); u < uint32(g.N); u++ {
		for _, v := range g.Neighbors(u) {
			ru, rv := find(u), find(v)
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
		}
	}
	labels := make([]uint32, g.N)
	for i := range labels {
		labels[i] = find(uint32(i))
	}
	return labels
}

// TriangleCountRef counts triangles with the standard sorted-intersection
// method — the reference for the instrumented TC algorithm.
func TriangleCountRef(g *Graph) uint64 {
	var count uint64
	for u := uint32(0); u < uint32(g.N); u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			count += intersectGreater(g.Neighbors(u), g.Neighbors(v), v)
		}
	}
	return count
}

// intersectGreater counts common neighbours w of u and v with w > min, so
// each triangle u<v<w is counted exactly once. Adjacency lists are sorted,
// enabling the two-pointer merge GraphBIG uses.
func intersectGreater(a, b []uint32, min uint32) uint64 {
	var c uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		x, y := a[i], b[j]
		switch {
		case x < y:
			i++
		case y < x:
			j++
		default:
			if x > min {
				c++
			}
			i++
			j++
		}
	}
	return c
}

func sortU32(s []uint32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
