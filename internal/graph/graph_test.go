package graph

import (
	"testing"

	"cosmos/internal/memsys"
	"cosmos/internal/trace"
)

func smallGraph() *Graph {
	// Two triangles joined by a bridge, plus an isolated pair:
	// 0-1-2-0, 2-3, 3-4-5-3, 6-7
	return FromEdgeList(8, [][2]uint32{
		{0, 1}, {1, 2}, {2, 0},
		{2, 3},
		{3, 4}, {4, 5}, {5, 3},
		{6, 7},
	})
}

func drainAll(t *testing.T, g trace.Generator, max int) []memsys.Access {
	t.Helper()
	var out []memsys.Access
	for i := 0; i < max; i++ {
		a, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
	t.Fatalf("generator exceeded %d accesses", max)
	return nil
}

func TestFromEdgeListCSR(t *testing.T) {
	g := smallGraph()
	if g.N != 8 || g.NumEdges() != 16 {
		t.Fatalf("N=%d E=%d", g.N, g.NumEdges())
	}
	if g.Degree(2) != 3 {
		t.Fatalf("deg(2)=%d, want 3", g.Degree(2))
	}
	nb := g.Neighbors(2)
	want := []uint32{0, 1, 3} // sorted adjacency
	if len(nb) != 3 {
		t.Fatalf("neighbors(2) = %v", nb)
	}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("neighbors(2) = %v, want %v (sorted)", nb, want)
		}
	}
	if g.Degree(6) != 1 || g.Neighbors(6)[0] != 7 {
		t.Fatal("isolated pair wrong")
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	g := FromEdgeList(3, [][2]uint32{{0, 0}, {0, 1}})
	if g.NumEdges() != 2 {
		t.Fatalf("self loop not dropped: E=%d", g.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := NewBarabasiAlbert(2000, 4, 7)
	if g.N != 2000 {
		t.Fatal("node count")
	}
	// Average degree ≈ 2m = 8.
	avg := float64(g.NumEdges()) / float64(g.N)
	if avg < 6 || avg > 10 {
		t.Fatalf("avg degree %.1f, want ≈8", avg)
	}
	// Power-law: the max degree should far exceed the average.
	maxDeg := 0
	for v := uint32(0); v < uint32(g.N); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < avg*5 {
		t.Fatalf("max degree %d vs avg %.1f — no heavy tail", maxDeg, avg)
	}
	// Determinism.
	g2 := NewBarabasiAlbert(2000, 4, 7)
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Fatal("BA generation must be deterministic")
		}
	}
}

func TestUniformRandomShape(t *testing.T) {
	g := NewUniformRandom(1000, 10, 3)
	avg := float64(g.NumEdges()) / float64(g.N)
	if avg < 8 || avg > 12 {
		t.Fatalf("avg degree %.1f, want ≈10", avg)
	}
}

func TestGitHubLikeScale(t *testing.T) {
	g := GitHubLike(1)
	if g.N != 37700 {
		t.Fatalf("N=%d, want 37700", g.N)
	}
	undirected := g.NumEdges() / 2
	if undirected < 250000 || undirected > 330000 {
		t.Fatalf("edges=%d, want ≈289k", undirected)
	}
}

func TestWorkspaceLayoutDisjoint(t *testing.T) {
	g := smallGraph()
	w := NewWorkspace(g, 2, 1<<30)
	regs := []memsys.Region{w.offsets, w.edges, w.weights, w.prop, w.prop2}
	regs = append(regs, w.visited...)
	regs = append(regs, w.work...)
	for i := range regs {
		for j := i + 1; j < len(regs); j++ {
			a, b := regs[i], regs[j]
			if a.Base < b.Base+memsys.Addr(b.Size) && b.Base < a.Base+memsys.Addr(a.Size) {
				t.Fatalf("regions %s and %s overlap", a.Name, b.Name)
			}
		}
	}
	if w.Footprint() == 0 {
		t.Fatal("footprint")
	}
}

func TestBFSLevels(t *testing.T) {
	g := smallGraph()
	w := NewWorkspace(g, 1, 1<<30)
	gen, res := BFS(w, 0) // thread 0 root = 0
	drainAll(t, gen, 1<<20)
	want := []int32{0, 1, 1, 2, 3, 3, -1, -1}
	for v, l := range res.Level {
		if l != want[v] {
			t.Fatalf("level[%d] = %d, want %d (all: %v)", v, l, want[v], res.Level)
		}
	}
}

func TestDFSVisitsComponent(t *testing.T) {
	g := smallGraph()
	w := NewWorkspace(g, 1, 1<<30)
	gen, res := DFS(w, 0)
	drainAll(t, gen, 1<<20)
	if res.VisitedCount != 6 {
		t.Fatalf("DFS from 0 visited %d, want 6 (component size)", res.VisitedCount)
	}
	if res.Preorder[0] != 0 {
		t.Fatal("preorder must start at the root")
	}
	seen := map[uint32]bool{}
	for _, v := range res.Preorder {
		if seen[v] {
			t.Fatalf("vertex %d visited twice", v)
		}
		seen[v] = true
	}
}

func TestConnectedComponentsMatchesRef(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := NewBarabasiAlbert(300, 3, seed)
		w := NewWorkspace(g, 4, 1<<30)
		gen, res := ConnectedComponents(w, 100)
		drainAll(t, gen, 1<<24)
		ref := ConnectedComponentsRef(g)
		// Same partition: labels equal iff ref labels equal.
		for u := 0; u < g.N; u++ {
			for _, v := range g.Neighbors(uint32(u)) {
				if (ref[u] == ref[v]) != (res.Labels[u] == res.Labels[v]) {
					t.Fatalf("seed %d: CC disagree at edge %d-%d", seed, u, v)
				}
			}
		}
	}
}

func TestTriangleCountingMatchesRef(t *testing.T) {
	g := smallGraph()
	w := NewWorkspace(g, 2, 1<<30)
	gen, res := TriangleCounting(w)
	drainAll(t, gen, 1<<20)
	if res.Count() != 2 {
		t.Fatalf("TC = %d, want 2", res.Count())
	}
	ba := NewBarabasiAlbert(200, 4, 9)
	wba := NewWorkspace(ba, 4, 1<<30)
	gen2, res2 := TriangleCounting(wba)
	drainAll(t, gen2, 1<<26)
	if ref := TriangleCountRef(ba); res2.Count() != ref {
		t.Fatalf("TC on BA graph = %d, ref = %d", res2.Count(), ref)
	}
}

func TestShortestPathCorrect(t *testing.T) {
	g := smallGraph()
	w := NewWorkspace(g, 2, 1<<30)
	gen, res := ShortestPath(w, 0, 50)
	drainAll(t, gen, 1<<22)
	const inf = ^uint32(0)
	if res.Dist[0] != 0 {
		t.Fatal("dist to root must be 0")
	}
	if res.Dist[6] != inf || res.Dist[7] != inf {
		t.Fatal("disconnected vertices must stay at infinity")
	}
	// Triangle inequality along every edge with our weight function.
	for u := uint32(0); u < uint32(g.N); u++ {
		if res.Dist[u] == inf {
			continue
		}
		for i, v := range g.Neighbors(u) {
			ei := g.Offsets[u] + uint32(i)
			if res.Dist[v] != inf && res.Dist[v] > res.Dist[u]+weightOf(ei) {
				t.Fatalf("relaxable edge %d->%d remains: %d > %d+%d",
					u, v, res.Dist[v], res.Dist[u], weightOf(ei))
			}
		}
	}
}

func TestGraphColoringProper(t *testing.T) {
	for _, threads := range []int{1, 4} {
		g := NewBarabasiAlbert(400, 3, 5)
		w := NewWorkspace(g, threads, 1<<30)
		gen, res := GraphColoring(w)
		drainAll(t, gen, 1<<24)
		conflicts := 0
		for u := uint32(0); u < uint32(g.N); u++ {
			for _, v := range g.Neighbors(u) {
				if v > u && res.Colors[u] == res.Colors[v] {
					conflicts++
				}
			}
		}
		// Single-threaded greedy must be perfectly proper; the parallel
		// version resolves almost all conflicts in its fix-up sweep.
		if threads == 1 && conflicts != 0 {
			t.Fatalf("sequential coloring has %d conflicts", conflicts)
		}
		if conflicts > g.N/50 {
			t.Fatalf("parallel coloring left %d conflicts", conflicts)
		}
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := smallGraph()
	w := NewWorkspace(g, 2, 1<<30)
	gen, res := DegreeCentrality(w)
	drainAll(t, gen, 1<<20)
	for v := uint32(0); v < uint32(g.N); v++ {
		want := uint32(2 * g.Degree(v)) // in + out degree, symmetric graph
		if res.Centrality[v] != want {
			t.Fatalf("centrality[%d] = %d, want %d", v, res.Centrality[v], want)
		}
	}
}

func TestPageRankMassAndHubs(t *testing.T) {
	g := NewBarabasiAlbert(500, 4, 11)
	w := NewWorkspace(g, 4, 1<<30)
	gen, res := PageRank(w, 10)
	drainAll(t, gen, 1<<26)
	var sum uint64
	for _, r := range res.Ranks {
		sum += uint64(r)
	}
	if sum == 0 {
		t.Fatal("all ranks zero")
	}
	// The highest-degree vertex should out-rank the median vertex.
	maxDegV, maxDeg := uint32(0), 0
	for v := uint32(0); v < uint32(g.N); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDegV, maxDeg = v, d
		}
	}
	median := res.Ranks[250]
	if res.Ranks[maxDegV] <= median {
		t.Fatalf("hub rank %d should exceed median rank %d", res.Ranks[maxDegV], median)
	}
}

func TestAccessStreamsStayInRegions(t *testing.T) {
	g := NewBarabasiAlbert(300, 3, 2)
	w := NewWorkspace(g, 4, 1<<30)
	lo := memsys.Addr(1 << 30)
	hi := lo + memsys.Addr(w.Footprint()) + 100*memsys.PageSize
	check := func(name string, gen trace.Generator) {
		n := 0
		for {
			a, ok := gen.Next()
			if !ok {
				break
			}
			n++
			if n > 1<<24 {
				t.Fatalf("%s: unbounded stream", name)
			}
			if a.Addr < lo || a.Addr >= hi {
				t.Fatalf("%s: access %#x outside workspace", name, uint64(a.Addr))
			}
			if a.Thread >= 4 {
				t.Fatalf("%s: bad thread %d", name, a.Thread)
			}
		}
		if n == 0 {
			t.Fatalf("%s: empty stream", name)
		}
	}
	gb, _ := BFS(w, 1)
	check("bfs", gb)
	gd, _ := DFS(w, 1)
	check("dfs", gd)
	gt2, _ := TriangleCounting(w)
	check("tc", gt2)
	gdc, _ := DegreeCentrality(w)
	check("dc", gdc)
}
