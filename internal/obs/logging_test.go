package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line does not parse: %v\n%s", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != float64(1) {
		t.Fatalf("record = %v", rec)
	}

	buf.Reset()
	l, err = NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("filtered out")
	l.Warn("kept")
	if s := buf.String(); strings.Contains(s, "filtered out") || !strings.Contains(s, "kept") {
		t.Fatalf("level filtering broken:\n%s", s)
	}
}

func TestNewLoggerRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Error("unknown format must error")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("unknown level must error")
	}
}
