package obs

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"cosmos/internal/telemetry"
)

// Prometheus text-format exposition (version 0.0.4) bridged from the
// telemetry registry.
//
// Mapping rules:
//
//   - every family is prefixed "cosmos_" and the dotted telemetry path is
//     flattened with underscores: "secmem.ctr.hits" → cosmos_secmem_ctr_hits;
//   - a leading per-core scope becomes a label instead of a name: the four
//     metrics core{0..3}.l1.misses collapse into one family
//     cosmos_l1_misses{core="N"} so dashboards aggregate across cores
//     without regexes;
//   - counters expose as counter, gauges as gauge, telemetry rates as the
//     cumulative ratio num/den in a gauge (scrape-to-scrape rates belong to
//     PromQL), histograms as native Prometheus histograms whose le bounds
//     are the log2 bucket upper bounds.
//
// Any character outside [a-zA-Z0-9_:] is replaced by '_'; two telemetry
// names that collide after sanitization share one family (the first
// registered wins the TYPE line).

// MetricsContentType is the Content-Type of the /metrics response.
const MetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// corePrefix recognises a leading per-core scope component ("core12") and
// returns the core id.
func corePrefix(s string) (id string, ok bool) {
	if !strings.HasPrefix(s, "core") {
		return "", false
	}
	d := s[len("core"):]
	if d == "" {
		return "", false
	}
	for _, r := range d {
		if r < '0' || r > '9' {
			return "", false
		}
	}
	return d, true
}

// sanitizeMetricName maps an arbitrary telemetry path component string onto
// the Prometheus metric-name charset: every rune outside [a-zA-Z0-9_:]
// becomes '_'. Idempotent.
func sanitizeMetricName(s string) string {
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil {
			b = append([]byte{}, s[:i]...)
		}
		b = append(b, '_')
	}
	if b == nil {
		return s
	}
	return string(b)
}

// promName splits one telemetry metric name into its Prometheus family name
// and label pairs.
func promName(name string) (family, labels string) {
	parts := strings.Split(name, ".")
	if len(parts) > 1 {
		if id, ok := corePrefix(parts[0]); ok {
			labels = `core="` + id + `"`
			parts = parts[1:]
		}
	}
	return "cosmos_" + sanitizeMetricName(strings.Join(parts, "_")), labels
}

type promSample struct {
	labels string
	s      telemetry.Sample
}

type promFamily struct {
	name    string
	source  string // the (core-stripped) telemetry path, for the HELP line
	kind    telemetry.Kind
	samples []promSample
}

func promType(k telemetry.Kind) string {
	switch k {
	case telemetry.KindCounter:
		return "counter"
	case telemetry.KindHistogram:
		return "histogram"
	}
	return "gauge"
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteMetrics writes the registry's current values as Prometheus text
// exposition. Families are emitted in sorted name order, samples within a
// family in registration order, so equal registry states produce identical
// output (the golden-file contract).
func WriteMetrics(w io.Writer, reg *telemetry.Registry) error {
	fams := make(map[string]*promFamily)
	var order []string
	for _, s := range reg.Snapshot() {
		name, labels := promName(s.Name)
		f := fams[name]
		if f == nil {
			source := s.Name
			if labels != "" {
				source = s.Name[strings.Index(s.Name, ".")+1:]
			}
			f = &promFamily{name: name, source: source, kind: s.Kind}
			fams[name] = f
			order = append(order, name)
		}
		f.samples = append(f.samples, promSample{labels: labels, s: s})
	}
	sort.Strings(order)

	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := fams[name]
		fmt.Fprintf(bw, "# HELP %s COSMOS telemetry %s %q\n", f.name, f.kind, f.source)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, promType(f.kind))
		for _, ps := range f.samples {
			writeSample(bw, f.name, ps)
		}
	}
	return bw.Flush()
}

func writeSample(w *bufio.Writer, name string, ps promSample) {
	brace := func(extra string) string {
		switch {
		case ps.labels == "" && extra == "":
			return ""
		case ps.labels == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + ps.labels + "}"
		}
		return "{" + ps.labels + "," + extra + "}"
	}
	switch ps.s.Kind {
	case telemetry.KindCounter:
		fmt.Fprintf(w, "%s%s %d\n", name, brace(""), ps.s.Counter)
	case telemetry.KindGauge, telemetry.KindRate:
		fmt.Fprintf(w, "%s%s %s\n", name, brace(""), formatFloat(ps.s.Value()))
	case telemetry.KindHistogram:
		h := ps.s.Hist
		last := -1
		for i, c := range h.Buckets {
			if c > 0 {
				last = i
			}
		}
		var cum uint64
		for i := 0; i <= last; i++ {
			cum += h.Buckets[i]
			_, hi := telemetry.BucketBounds(i)
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(`le="`+strconv.FormatUint(hi, 10)+`"`), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, brace(`le="+Inf"`), h.Count)
		fmt.Fprintf(w, "%s_sum%s %d\n", name, brace(""), h.Sum)
		fmt.Fprintf(w, "%s_count%s %d\n", name, brace(""), h.Count)
	}
}

// writeProcessMetrics appends the plane's own process-level gauges to a
// /metrics response: uptime, goroutines and heap, enough to see that a
// multi-hour campaign is alive and not leaking.
func writeProcessMetrics(w io.Writer, start time.Time) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP cosmos_process_uptime_seconds Seconds since the observability plane started\n")
	fmt.Fprintf(w, "# TYPE cosmos_process_uptime_seconds gauge\n")
	fmt.Fprintf(w, "cosmos_process_uptime_seconds %s\n", formatFloat(time.Since(start).Seconds()))
	fmt.Fprintf(w, "# HELP cosmos_go_goroutines Live goroutine count\n")
	fmt.Fprintf(w, "# TYPE cosmos_go_goroutines gauge\n")
	fmt.Fprintf(w, "cosmos_go_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP cosmos_go_heap_alloc_bytes Bytes of allocated heap objects\n")
	fmt.Fprintf(w, "# TYPE cosmos_go_heap_alloc_bytes gauge\n")
	fmt.Fprintf(w, "cosmos_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
}
