package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cosmos/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestSanitizeMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"hits", "hits"},
		{"queue_wait_us", "queue_wait_us"},
		{"a:b", "a:b"},
		{"row-hit rate", "row_hit_rate"},
		{"walk/bypass%", "walk_bypass_"},
		{"", ""},
		{"λmetric", "__metric"}, // multi-byte runes sanitize per byte
	}
	for _, c := range cases {
		if got := sanitizeMetricName(c.in); got != c.want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestSanitizeMetricNameProperties checks the two contract properties over a
// generated corpus: the output only contains [a-zA-Z0-9_:], and sanitizing is
// idempotent.
func TestSanitizeMetricNameProperties(t *testing.T) {
	valid := func(s string) bool {
		for i := 0; i < len(s); i++ {
			c := s[i]
			ok := c == '_' || c == ':' ||
				('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
			if !ok {
				return false
			}
		}
		return true
	}
	var corpus []string
	for b := 0; b < 256; b++ {
		corpus = append(corpus,
			string([]byte{byte(b)}),
			"x"+string([]byte{byte(b)})+"y",
			strings.Repeat(string([]byte{byte(b)}), 3))
	}
	corpus = append(corpus, "l1.misses", "core0.l1", "fetch latency (cycles)", "ünïcode.metric")
	for _, in := range corpus {
		got := sanitizeMetricName(in)
		if !valid(got) {
			t.Fatalf("sanitizeMetricName(%q) = %q: invalid output rune", in, got)
		}
		if len(got) != len(in) {
			t.Fatalf("sanitizeMetricName(%q) = %q: length changed", in, got)
		}
		if again := sanitizeMetricName(got); again != got {
			t.Fatalf("not idempotent: %q → %q → %q", in, got, again)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := []struct {
		in, family, labels string
	}{
		{"sim.accesses", "cosmos_sim_accesses", ""},
		{"secmem.ctr.hits", "cosmos_secmem_ctr_hits", ""},
		{"core0.l1.misses", "cosmos_l1_misses", `core="0"`},
		{"core12.lcr.evictions", "cosmos_lcr_evictions", `core="12"`},
		// "core" without digits is an ordinary scope, not a label.
		{"core.thing", "cosmos_core_thing", ""},
		{"corex.thing", "cosmos_corex_thing", ""},
		// A bare metric name never becomes a label.
		{"core1", "cosmos_core1", ""},
	}
	for _, c := range cases {
		family, labels := promName(c.in)
		if family != c.family || labels != c.labels {
			t.Errorf("promName(%q) = (%q, %q), want (%q, %q)", c.in, family, labels, c.family, c.labels)
		}
	}
}

// goldenRegistry builds a registry exercising every metric kind and the
// core-scope label collapse, with fixed values.
func goldenRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	root := reg.Root()

	var accesses uint64 = 1_000_000
	root.Scope("sim").Counter("accesses", &accesses)

	for core, misses := range []uint64{10, 20, 30, 40} {
		v := misses
		root.Scope("core"+string(rune('0'+core))).Scope("l1").Counter("misses", &v)
	}

	sm := root.Scope("secmem")
	sm.Gauge("occupancy", func() float64 { return 0.5 })
	var hits, lookups uint64 = 75, 100
	sm.RateOf("hit_rate", &hits, &lookups)

	h := root.Scope("dram").Histogram("fetch latency (cycles)")
	for _, v := range []uint64{1, 2, 3, 100, 200} {
		h.Observe(v)
	}
	return reg
}

func TestWriteMetricsGolden(t *testing.T) {
	var out bytes.Buffer
	if err := WriteMetrics(&out, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	got := out.Bytes()

	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/metrics exposition diverged from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteMetricsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteMetrics(&a, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	if err := WriteMetrics(&b, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two expositions of equal registries differ")
	}
}

func TestWriteMetricsCoreCollapse(t *testing.T) {
	var out bytes.Buffer
	if err := WriteMetrics(&out, goldenRegistry()); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if n := strings.Count(s, "# TYPE cosmos_l1_misses counter"); n != 1 {
		t.Errorf("per-core counters must collapse into one family, got %d TYPE lines", n)
	}
	for _, want := range []string{
		`cosmos_l1_misses{core="0"} 10`,
		`cosmos_l1_misses{core="3"} 40`,
		"cosmos_secmem_hit_rate 0.75",
		`cosmos_dram_fetch_latency__cycles__bucket{le="+Inf"} 5`,
		"cosmos_dram_fetch_latency__cycles__sum 306",
		"cosmos_dram_fetch_latency__cycles__count 5",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("exposition is missing %q\n%s", want, s)
		}
	}
}
