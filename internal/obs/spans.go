package obs

import (
	"log/slog"
	"net/http"
	"sort"
	"sync"

	"cosmos/internal/telemetry"
	"cosmos/internal/watch"
)

// This file is the tail-latency half of the plane: /spans serves the top-K
// slowest access span trees and per-cause percentiles of every attached
// recorder, /phases the watchdog's detected phase segments and anomalies.
// Both read live state — recorders and dogs are safe to snapshot while the
// run executes — so a hung or slow campaign can be diagnosed in place.

// SpanHub collects the span recorders of concurrently executing runs, keyed
// by run label, for the /spans endpoint. The zero value is unusable; use
// NewSpanHub. Register/Drop are cheap and may be called per run.
type SpanHub struct {
	mu   sync.Mutex
	recs map[string]*telemetry.SpanRecorder
}

// NewSpanHub creates an empty hub.
func NewSpanHub() *SpanHub { return &SpanHub{recs: make(map[string]*telemetry.SpanRecorder)} }

// Register attaches a run's recorder under its label, replacing any
// previous recorder with the same label (re-runs of one cell).
func (h *SpanHub) Register(label string, rec *telemetry.SpanRecorder) {
	if rec == nil {
		return
	}
	h.mu.Lock()
	h.recs[label] = rec
	h.mu.Unlock()
}

// Drop removes a run's recorder (finished runs keep serving until dropped;
// the cmds typically keep them for post-run inspection).
func (h *SpanHub) Drop(label string) {
	h.mu.Lock()
	delete(h.recs, label)
	h.mu.Unlock()
}

// RunSpans is one run's entry in the /spans document.
type RunSpans struct {
	Run  string                 `json:"run"`
	Tail *telemetry.TailReport  `json:"tail"`
	Top  []telemetry.AccessSpan `json:"top"`
}

// Snapshot renders every registered recorder, sorted by label.
func (h *SpanHub) Snapshot() []RunSpans {
	h.mu.Lock()
	labels := make([]string, 0, len(h.recs))
	recs := make([]*telemetry.SpanRecorder, 0, len(h.recs))
	for l, r := range h.recs {
		labels = append(labels, l)
		recs = append(recs, r)
	}
	h.mu.Unlock()
	out := make([]RunSpans, len(labels))
	for i := range labels {
		out[i] = RunSpans{Run: labels[i], Tail: recs[i].Report(), Top: recs[i].TopSpans()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out
}

// WatchHub collects the watchdogs of concurrently executing runs for the
// /phases endpoint, keyed by run label.
type WatchHub struct {
	mu   sync.Mutex
	dogs map[string]*watch.Dog
}

// NewWatchHub creates an empty hub.
func NewWatchHub() *WatchHub { return &WatchHub{dogs: make(map[string]*watch.Dog)} }

// Register attaches a run's watchdog under its label.
func (h *WatchHub) Register(label string, d *watch.Dog) {
	if d == nil {
		return
	}
	h.mu.Lock()
	h.dogs[label] = d
	h.mu.Unlock()
}

// Drop removes a run's watchdog.
func (h *WatchHub) Drop(label string) {
	h.mu.Lock()
	delete(h.dogs, label)
	h.mu.Unlock()
}

// RunPhases is one run's entry in the /phases document.
type RunPhases struct {
	Run string `json:"run"`
	watch.Snapshot
}

// Snapshot renders every registered watchdog, sorted by label.
func (h *WatchHub) Snapshot() []RunPhases {
	h.mu.Lock()
	labels := make([]string, 0, len(h.dogs))
	dogs := make([]*watch.Dog, 0, len(h.dogs))
	for l, d := range h.dogs {
		labels = append(labels, l)
		dogs = append(dogs, d)
	}
	h.mu.Unlock()
	out := make([]RunPhases, len(labels))
	for i := range labels {
		out[i] = RunPhases{Run: labels[i], Snapshot: dogs[i].Snapshot()}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Run < out[j].Run })
	return out
}

// WatchNotifier builds a watch.Config Notify hook that logs each detection
// and, when a broker is attached, publishes it as one "phase" or "anomaly"
// SSE event wrapping the event with the run's label. Either logger or
// broker may be nil.
func WatchNotifier(logger *slog.Logger, b *Broker, label string) func(watch.Event) {
	return func(ev watch.Event) {
		if logger != nil {
			logger.Warn("watchdog detection",
				"run", label, "kind", ev.Kind, "signal", ev.Signal,
				"interval", ev.Interval, "value", ev.Value,
				"mean", ev.Mean, "z", ev.Z, "phase", ev.Phase)
		}
		if b != nil {
			b.Publish(ev.Kind, struct {
				Run   string      `json:"run"`
				Event watch.Event `json:"event"`
			}{label, ev})
		}
	}
}

func (s *Server) handleSpans(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Spans == nil {
		writeJSON(w, []RunSpans{})
		return
	}
	writeJSON(w, s.cfg.Spans.Snapshot())
}

func (s *Server) handlePhases(w http.ResponseWriter, _ *http.Request) {
	if s.cfg.Watch == nil {
		writeJSON(w, []RunPhases{})
		return
	}
	writeJSON(w, s.cfg.Watch.Snapshot())
}
