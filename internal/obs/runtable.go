package obs

import (
	"sort"
	"sync"
	"time"

	"cosmos/internal/runner"
	"cosmos/internal/telemetry"
)

// RunTable is the live state of a campaign: one Cell per run-request key,
// maintained from the orchestrator's Lifecycle transitions and served as
// JSON on /runs (and, transition by transition, on /events). It is the
// answer to "what is this multi-hour cosmos-bench actually doing right
// now": which cells are waiting, which are executing on a worker, what
// finished where (executed / memo / store) and how long everything took.
type RunTable struct {
	workers int
	broker  *Broker          // optional: transitions are also published here
	now     func() time.Time // injectable for tests
	phases  *telemetry.Phases

	mu      sync.Mutex
	cells   map[string]*Cell
	order   []string // insertion order, for stable /runs output
	sources map[string]int
	execSum time.Duration // over executed cells, for the ETA estimate
	execN   int
}

// Cell is the state of one run request.
type Cell struct {
	Key    string `json:"key"`
	Label  string `json:"label"`
	Status string `json:"status"` // "queued" | "running" | "done" | "failed"
	// Source is set once done: "executed", "memoised", "restored" or
	// "deduplicated".
	Source      string `json:"source,omitempty"`
	QueueWaitMS int64  `json:"queue_wait_ms"`
	ExecMS      int64  `json:"exec_ms"`
	// StartedUnixMS / FinishedUnixMS are wall-clock unix milliseconds of
	// the first and terminal transition (0 = not reached yet).
	StartedUnixMS  int64 `json:"started_unix_ms"`
	FinishedUnixMS int64 `json:"finished_unix_ms,omitempty"`
	// RunningSinceUnixMS is when the cell acquired its worker slot (0 =
	// never ran); the ETA uses it to credit in-flight cells their elapsed
	// time.
	RunningSinceUnixMS int64 `json:"running_since_unix_ms,omitempty"`
	// Perf is the executed cell's wall-time attribution (decode / step /
	// store / report, simulated accesses/sec), set at completion.
	Perf  *telemetry.PhaseBreakdown `json:"perf,omitempty"`
	Error string                    `json:"error,omitempty"`
}

// NewRunTable creates a run table for a pool of the given worker capacity.
// broker may be nil (no /events fan-out).
func NewRunTable(workers int, broker *Broker) *RunTable {
	if workers < 1 {
		workers = 1
	}
	return &RunTable{
		workers: workers,
		broker:  broker,
		now:     time.Now,
		cells:   make(map[string]*Cell),
		sources: make(map[string]int),
	}
}

// Observe is the runner Lifecycle hook: assign it to Orchestrator.Lifecycle
// (or wrap it). Safe for concurrent use.
func (t *RunTable) Observe(tr runner.Transition) {
	nowMS := t.now().UnixMilli()

	t.mu.Lock()
	c := t.cells[tr.Key]
	if c == nil {
		c = &Cell{Key: tr.Key, Label: tr.Label, StartedUnixMS: nowMS}
		t.cells[tr.Key] = c
		t.order = append(t.order, tr.Key)
	}
	switch tr.Phase {
	case runner.PhaseQueued:
		c.Status = "queued"
	case runner.PhaseRunning:
		c.Status = "running"
		c.QueueWaitMS = tr.QueueWait.Milliseconds()
		c.RunningSinceUnixMS = nowMS
	case runner.PhaseDone:
		src := tr.Source.String()
		t.sources[src]++
		// A deduplicated follower finishing after its leader must not
		// overwrite the leader's terminal state.
		if c.Status == "done" || c.Status == "failed" {
			break
		}
		if tr.Err != nil {
			c.Status = "failed"
			c.Error = tr.Err.Error()
		} else {
			c.Status = "done"
		}
		c.Source = src
		c.QueueWaitMS = tr.QueueWait.Milliseconds()
		c.ExecMS = tr.ExecTime.Milliseconds()
		c.FinishedUnixMS = nowMS
		if tr.Perf != nil {
			perf := *tr.Perf
			c.Perf = &perf
		}
		if tr.Err == nil && tr.Source == runner.SourceExecuted {
			t.execSum += tr.ExecTime
			t.execN++
		}
	}
	snapshot := *c
	t.mu.Unlock()

	if t.broker != nil {
		t.broker.Publish("run", snapshot)
	}
}

// Snapshot is the JSON shape of /runs.
type Snapshot struct {
	Workers int `json:"workers"`
	// Occupancy: cells currently holding a worker slot / waiting for one.
	Running int `json:"running"`
	Queued  int `json:"queued"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// Sources counts terminal transitions by origin, including
	// deduplicated followers of cells listed once below.
	Sources map[string]int `json:"sources"`
	// MeanExecMS is the mean simulation time of executed cells; ETASeconds
	// estimates the remaining wall time: queued cells cost the mean,
	// currently-running cells the mean minus their elapsed time (floored at
	// zero), summed and divided across the worker pool. -1 = no estimate
	// yet.
	MeanExecMS float64 `json:"mean_exec_ms"`
	ETASeconds float64 `json:"eta_seconds"`
	// Perf is the campaign-level wall-time attribution (AttachPhases).
	Perf  *telemetry.PhaseBreakdown `json:"perf,omitempty"`
	Cells []Cell                    `json:"cells"`
}

// Snapshot returns the current table state, cells in first-seen order.
func (t *RunTable) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		Workers: t.workers,
		Sources: make(map[string]int, len(t.sources)),
		Cells:   make([]Cell, 0, len(t.order)),
	}
	for k, v := range t.sources {
		s.Sources[k] = v
	}
	for _, key := range t.order {
		c := *t.cells[key]
		s.Cells = append(s.Cells, c)
		switch c.Status {
		case "running":
			s.Running++
		case "queued":
			s.Queued++
		case "done":
			s.Done++
		case "failed":
			s.Failed++
		}
	}
	s.MeanExecMS, s.ETASeconds = t.etaLocked()
	if t.phases != nil {
		b := t.phases.Breakdown()
		s.Perf = &b
	}
	return s
}

// AttachPhases includes the campaign-level wall-time attribution in every
// /runs snapshot. Call before serving.
func (t *RunTable) AttachPhases(p *telemetry.Phases) { t.phases = p }

// Progress reports terminal vs known cells and current worker occupancy.
func (t *RunTable) Progress() (done, total, running int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, key := range t.order {
		switch t.cells[key].Status {
		case "done", "failed":
			done++
		case "running":
			running++
		}
	}
	return done, len(t.order), running
}

// ETA estimates the remaining campaign wall time from the completed-cell
// execution-time mean: a queued cell still costs the full mean, but a
// currently-running cell only costs the mean minus the time it has already
// been running (floored at zero — a cell that overshoots the mean is
// treated as about to finish rather than pushing the estimate up), with the
// summed remaining work divided across the worker pool. ok is false until
// at least one cell has executed (restored and memoised cells are nearly
// free and excluded from the mean).
func (t *RunTable) ETA() (eta time.Duration, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, sec := t.etaLocked()
	if sec < 0 {
		return 0, false
	}
	return time.Duration(sec * float64(time.Second)), true
}

func (t *RunTable) etaLocked() (meanMS, etaSeconds float64) {
	if t.execN == 0 {
		return -1, -1
	}
	mean := t.execSum / time.Duration(t.execN)
	nowMS := t.now().UnixMilli()
	var remaining time.Duration
	for _, key := range t.order {
		c := t.cells[key]
		switch c.Status {
		case "queued":
			remaining += mean
		case "running":
			left := mean
			if c.RunningSinceUnixMS > 0 {
				left -= time.Duration(nowMS-c.RunningSinceUnixMS) * time.Millisecond
			}
			if left > 0 {
				remaining += left
			}
		}
	}
	eta := remaining / time.Duration(t.workers)
	return float64(mean.Milliseconds()), eta.Seconds()
}

// SortedSources returns the observed sources in name order (for stable
// summary lines).
func (t *RunTable) SortedSources() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.sources))
	for k := range t.sources {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
