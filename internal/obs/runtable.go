package obs

import (
	"sort"
	"sync"
	"time"

	"cosmos/internal/runner"
)

// RunTable is the live state of a campaign: one Cell per run-request key,
// maintained from the orchestrator's Lifecycle transitions and served as
// JSON on /runs (and, transition by transition, on /events). It is the
// answer to "what is this multi-hour cosmos-bench actually doing right
// now": which cells are waiting, which are executing on a worker, what
// finished where (executed / memo / store) and how long everything took.
type RunTable struct {
	workers int
	broker  *Broker          // optional: transitions are also published here
	now     func() time.Time // injectable for tests

	mu      sync.Mutex
	cells   map[string]*Cell
	order   []string // insertion order, for stable /runs output
	sources map[string]int
	execSum time.Duration // over executed cells, for the ETA estimate
	execN   int
}

// Cell is the state of one run request.
type Cell struct {
	Key    string `json:"key"`
	Label  string `json:"label"`
	Status string `json:"status"` // "queued" | "running" | "done" | "failed"
	// Source is set once done: "executed", "memoised", "restored" or
	// "deduplicated".
	Source      string `json:"source,omitempty"`
	QueueWaitMS int64  `json:"queue_wait_ms"`
	ExecMS      int64  `json:"exec_ms"`
	// StartedUnixMS / FinishedUnixMS are wall-clock unix milliseconds of
	// the first and terminal transition (0 = not reached yet).
	StartedUnixMS  int64  `json:"started_unix_ms"`
	FinishedUnixMS int64  `json:"finished_unix_ms,omitempty"`
	Error          string `json:"error,omitempty"`
}

// NewRunTable creates a run table for a pool of the given worker capacity.
// broker may be nil (no /events fan-out).
func NewRunTable(workers int, broker *Broker) *RunTable {
	if workers < 1 {
		workers = 1
	}
	return &RunTable{
		workers: workers,
		broker:  broker,
		now:     time.Now,
		cells:   make(map[string]*Cell),
		sources: make(map[string]int),
	}
}

// Observe is the runner Lifecycle hook: assign it to Orchestrator.Lifecycle
// (or wrap it). Safe for concurrent use.
func (t *RunTable) Observe(tr runner.Transition) {
	nowMS := t.now().UnixMilli()

	t.mu.Lock()
	c := t.cells[tr.Key]
	if c == nil {
		c = &Cell{Key: tr.Key, Label: tr.Label, StartedUnixMS: nowMS}
		t.cells[tr.Key] = c
		t.order = append(t.order, tr.Key)
	}
	switch tr.Phase {
	case runner.PhaseQueued:
		c.Status = "queued"
	case runner.PhaseRunning:
		c.Status = "running"
		c.QueueWaitMS = tr.QueueWait.Milliseconds()
	case runner.PhaseDone:
		src := tr.Source.String()
		t.sources[src]++
		// A deduplicated follower finishing after its leader must not
		// overwrite the leader's terminal state.
		if c.Status == "done" || c.Status == "failed" {
			break
		}
		if tr.Err != nil {
			c.Status = "failed"
			c.Error = tr.Err.Error()
		} else {
			c.Status = "done"
		}
		c.Source = src
		c.QueueWaitMS = tr.QueueWait.Milliseconds()
		c.ExecMS = tr.ExecTime.Milliseconds()
		c.FinishedUnixMS = nowMS
		if tr.Err == nil && tr.Source == runner.SourceExecuted {
			t.execSum += tr.ExecTime
			t.execN++
		}
	}
	snapshot := *c
	t.mu.Unlock()

	if t.broker != nil {
		t.broker.Publish("run", snapshot)
	}
}

// Snapshot is the JSON shape of /runs.
type Snapshot struct {
	Workers int `json:"workers"`
	// Occupancy: cells currently holding a worker slot / waiting for one.
	Running int `json:"running"`
	Queued  int `json:"queued"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// Sources counts terminal transitions by origin, including
	// deduplicated followers of cells listed once below.
	Sources map[string]int `json:"sources"`
	// MeanExecMS is the mean simulation time of executed cells; ETASeconds
	// estimates the remaining wall time (mean × remaining cells / workers).
	// -1 = no estimate yet.
	MeanExecMS float64 `json:"mean_exec_ms"`
	ETASeconds float64 `json:"eta_seconds"`
	Cells      []Cell  `json:"cells"`
}

// Snapshot returns the current table state, cells in first-seen order.
func (t *RunTable) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		Workers: t.workers,
		Sources: make(map[string]int, len(t.sources)),
		Cells:   make([]Cell, 0, len(t.order)),
	}
	for k, v := range t.sources {
		s.Sources[k] = v
	}
	for _, key := range t.order {
		c := *t.cells[key]
		s.Cells = append(s.Cells, c)
		switch c.Status {
		case "running":
			s.Running++
		case "queued":
			s.Queued++
		case "done":
			s.Done++
		case "failed":
			s.Failed++
		}
	}
	s.MeanExecMS, s.ETASeconds = t.etaLocked()
	return s
}

// Progress reports terminal vs known cells and current worker occupancy.
func (t *RunTable) Progress() (done, total, running int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, key := range t.order {
		switch t.cells[key].Status {
		case "done", "failed":
			done++
		case "running":
			running++
		}
	}
	return done, len(t.order), running
}

// ETA estimates the remaining campaign wall time as the completed-cell
// execution-time mean × remaining cells, divided across the worker pool.
// ok is false until at least one cell has executed (restored and memoised
// cells are nearly free and excluded from the mean).
func (t *RunTable) ETA() (eta time.Duration, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, sec := t.etaLocked()
	if sec < 0 {
		return 0, false
	}
	return time.Duration(sec * float64(time.Second)), true
}

func (t *RunTable) etaLocked() (meanMS, etaSeconds float64) {
	if t.execN == 0 {
		return -1, -1
	}
	mean := t.execSum / time.Duration(t.execN)
	remaining := 0
	for _, key := range t.order {
		switch t.cells[key].Status {
		case "queued", "running":
			remaining++
		}
	}
	eta := mean * time.Duration(remaining) / time.Duration(t.workers)
	return float64(mean.Milliseconds()), eta.Seconds()
}

// SortedSources returns the observed sources in name order (for stable
// summary lines).
func (t *RunTable) SortedSources() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.sources))
	for k := range t.sources {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
