package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cosmos/internal/fault"
	"cosmos/internal/telemetry"
)

// TestFaultMetricsExposition checks the obs leg of the fault plane: an
// injector registered under the registry root's "fault" scope shows up in
// the /metrics exposition as the cosmos_fault_* families, with the detection
// counters carrying the campaign's numbers.
func TestFaultMetricsExposition(t *testing.T) {
	in, err := fault.NewInjector(fault.Config{Seed: 3, Rate: 1, TransientPct: 100})
	if err != nil {
		t.Fatal(err)
	}
	in.BeginStep(0)
	in.OnFetch(fault.KindCtr, 10, true)
	in.BeginStep(1)
	in.OnFetch(fault.KindData, 11, true)

	reg := telemetry.NewRegistry()
	in.RegisterMetrics(reg.Root().Scope("fault"))
	var out bytes.Buffer
	if err := WriteMetrics(&out, reg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"# TYPE cosmos_fault_detected_total counter",
		"cosmos_fault_injected_total 2",
		"cosmos_fault_detected_total 2",
		"cosmos_fault_silent_total 0",
		"cosmos_fault_transient_repaired_total 2",
		"cosmos_fault_ctr_detected_total 1",
		"cosmos_fault_data_detected_total 1",
		"cosmos_fault_refetch_total 2",
		"cosmos_fault_poisoned_lines 0",
		"cosmos_fault_shadow_corrupted 0",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("exposition is missing %q\n%s", want, s)
		}
	}
}

// TestFaultNotifierPublishes: the broker adapter wraps each violation with
// the run label and delivers it as one SSE "fault" event.
func TestFaultNotifierPublishes(t *testing.T) {
	b := NewBroker()
	defer b.Close()
	ch, cancel := b.Subscribe()
	defer cancel()

	notify := b.FaultNotifier("mcf_COSMOS_fault")
	notify(fault.Event{Step: 42, Kind: "ctr", Line: 7, Addr: 7 << 6, Outcome: "transient", Retries: 1})

	ev := <-ch
	if ev.Type != "fault" {
		t.Fatalf("event type = %q", ev.Type)
	}
	var payload struct {
		Run   string      `json:"run"`
		Event fault.Event `json:"event"`
	}
	if err := json.Unmarshal(ev.Data, &payload); err != nil {
		t.Fatalf("fault event payload not JSON: %v\n%s", err, ev.Data)
	}
	if payload.Run != "mcf_COSMOS_fault" {
		t.Fatalf("run label = %q", payload.Run)
	}
	if payload.Event.Step != 42 || payload.Event.Kind != "ctr" || payload.Event.Outcome != "transient" {
		t.Fatalf("event = %+v", payload.Event)
	}
}
