package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"cosmos/internal/fault"
)

// Broker is the fan-out hub of the /events SSE stream: producers Publish
// typed events (run lifecycle transitions, interval-sampler snapshots),
// every subscribed HTTP client receives them in publish order. Slow
// subscribers drop events rather than stall the campaign: each subscription
// has a bounded buffer and the SSE id field exposes gaps, so a tailing
// script can detect loss.
type Broker struct {
	mu      sync.Mutex
	subs    map[chan Event]struct{}
	closed  bool
	seq     uint64
	dropped atomic.Uint64
}

// Event is one server-sent event: a monotonically increasing ID, an event
// type ("run", "sample", ...) and a single-line JSON payload.
type Event struct {
	ID   uint64
	Type string
	Data []byte
}

// subBuffer bounds each subscriber's in-flight event queue.
const subBuffer = 256

// NewBroker creates an empty broker.
func NewBroker() *Broker {
	return &Broker{subs: make(map[chan Event]struct{})}
}

// Subscribe registers a new subscriber and returns its event channel plus a
// cancel function. The channel is closed by cancel or by Close; a closed
// channel is the subscriber's signal to finish its stream.
func (b *Broker) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, subBuffer)
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			if _, ok := b.subs[ch]; ok {
				delete(b.subs, ch)
				close(ch)
			}
			b.mu.Unlock()
		})
	}
	return ch, cancel
}

// Publish marshals v and delivers it to every subscriber. Events are
// numbered in publish order; a subscriber whose buffer is full loses this
// event (counted in Dropped). Publishing to a closed broker is a no-op.
func (b *Broker) Publish(typ string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	b.publishRaw(typ, data)
}

func (b *Broker) publishRaw(typ string, data []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	ev := Event{ID: b.seq, Type: typ, Data: data}
	for ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.dropped.Add(1)
		}
	}
}

// FaultNotifier adapts the broker into a fault.Injector Notify hook: every
// integrity violation (and the crash event) is published as one "fault"
// event wrapping the violation with the run's label, so one /events stream
// carries the interleaved fault logs of every executing simulation.
func (b *Broker) FaultNotifier(label string) func(fault.Event) {
	return func(ev fault.Event) {
		b.Publish("fault", struct {
			Run   string      `json:"run"`
			Event fault.Event `json:"event"`
		}{label, ev})
	}
}

// Dropped reports how many subscriber deliveries were lost to full buffers.
func (b *Broker) Dropped() uint64 { return b.dropped.Load() }

// Subscribers reports the current subscriber count.
func (b *Broker) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Close ends the stream: every subscriber channel is closed (their SSE
// handlers finish their responses) and later Publish/Subscribe calls become
// no-ops. Idempotent.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
}

// SampleWriter adapts the broker into an interval-sampler JSONL sink: every
// line the sampler writes is published as one "sample" event wrapping the
// row with the run's label, so one /events stream can carry the interleaved
// time-series of every concurrently executing simulation.
func (b *Broker) SampleWriter(label string) io.Writer {
	prefix, _ := json.Marshal(label)
	return &sampleWriter{b: b, prefix: prefix}
}

type sampleWriter struct {
	b      *Broker
	prefix []byte // the JSON-encoded run label
}

// Write publishes each complete JSONL line. The sampler writes one full
// line (including the trailing newline) per call, so no partial-line
// buffering is needed; defensively, anything not newline-terminated is
// still published as-is.
func (w *sampleWriter) Write(p []byte) (int, error) {
	for _, line := range bytes.Split(bytes.TrimRight(p, "\n"), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var buf bytes.Buffer
		buf.Grow(len(w.prefix) + len(line) + 24)
		buf.WriteString(`{"run":`)
		buf.Write(w.prefix)
		buf.WriteString(`,"stats":`)
		buf.Write(line)
		buf.WriteString(`}`)
		w.b.publishRaw("sample", buf.Bytes())
	}
	return len(p), nil
}
