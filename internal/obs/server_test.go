package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestHealthzAndBuildz(t *testing.T) {
	srv := NewServer(Config{Component: "cosmos-test"})
	for _, path := range []string{"/healthz", "/buildz"} {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status = %d", path, rec.Code)
		}
		var got map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got["component"] != "cosmos-test" {
			t.Fatalf("%s component = %v", path, got["component"])
		}
	}
}

func TestMetricsEndpointServesProcessMetrics(t *testing.T) {
	srv := NewServer(Config{Component: "cosmos-test", Registry: goldenRegistry()})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != MetricsContentType {
		t.Fatalf("content-type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"cosmos_sim_accesses 1000000", "cosmos_process_uptime_seconds", "cosmos_go_goroutines"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// sseFrame is one parsed id/event/data frame.
type sseFrame struct {
	id    uint64
	event string
	data  string
}

// readFrames consumes SSE frames until the stream ends, skipping comments
// and the retry hint.
func readFrames(r io.Reader, into chan<- sseFrame) error {
	sc := bufio.NewScanner(r)
	var f sseFrame
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if f.event != "" || f.data != "" {
				into <- f
			}
			f = sseFrame{}
		case strings.HasPrefix(line, "id: "):
			f.id, _ = strconv.ParseUint(line[4:], 10, 64)
		case strings.HasPrefix(line, "event: "):
			f.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			f.data = line[6:]
		}
	}
	return sc.Err()
}

// TestEventsStream checks the SSE contract end to end over a real listener:
// events arrive in publish order with monotonically increasing ids, sampler
// lines surface as labelled "sample" events, and Shutdown mid-stream ends
// the response cleanly (EOF, not a reset).
func TestEventsStream(t *testing.T) {
	broker := NewBroker()
	srv := NewServer(Config{Component: "cosmos-test", Events: broker, Heartbeat: time.Hour})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}

	frames := make(chan sseFrame, 16)
	readErr := make(chan error, 1)
	go func() {
		defer close(frames)
		readErr <- readFrames(resp.Body, frames)
	}()

	// Publishing only begins once the subscriber is registered — the HTTP
	// handler runs concurrently with this test body.
	waitSubscribed(t, broker)
	for i := 0; i < 3; i++ {
		broker.Publish("run", map[string]int{"n": i})
	}
	broker.SampleWriter("mcf_COSMOS").Write([]byte(`{"sim.accesses":100}` + "\n"))

	var got []sseFrame
	for len(got) < 4 {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatalf("stream ended early after %d frames", len(got))
			}
			got = append(got, f)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d frames", len(got))
		}
	}
	for i, f := range got {
		if i > 0 && f.id <= got[i-1].id {
			t.Fatalf("ids must increase: %d after %d", f.id, got[i-1].id)
		}
	}
	for i := 0; i < 3; i++ {
		want := fmt.Sprintf(`{"n":%d}`, i)
		if got[i].event != "run" || got[i].data != want {
			t.Fatalf("frame %d = %+v, want run %s", i, got[i], want)
		}
	}
	if got[3].event != "sample" || got[3].data != `{"run":"mcf_COSMOS","stats":{"sim.accesses":100}}` {
		t.Fatalf("sample frame = %+v", got[3])
	}

	// Graceful shutdown mid-stream: the handler sees the broker close and
	// finishes its response, so the reader gets clean EOF.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-readErr:
		if err != nil {
			t.Fatalf("stream did not end cleanly: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream still open after shutdown")
	}
}

func waitSubscribed(t *testing.T, b *Broker) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for b.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no subscriber appeared")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBrokerDropsOnFullBuffer(t *testing.T) {
	b := NewBroker()
	ch, cancel := b.Subscribe()
	defer cancel()
	for i := 0; i < subBuffer+10; i++ {
		b.Publish("run", i)
	}
	if b.Dropped() != 10 {
		t.Fatalf("dropped = %d", b.Dropped())
	}
	// The buffered prefix is intact and in order.
	first := <-ch
	if first.ID != 1 {
		t.Fatalf("first id = %d", first.ID)
	}
}

func TestBrokerCloseIdempotentAndTerminal(t *testing.T) {
	b := NewBroker()
	ch, _ := b.Subscribe()
	b.Close()
	b.Close()
	if _, ok := <-ch; ok {
		t.Fatal("subscriber channel must be closed")
	}
	// Post-close subscriptions get an already-closed channel.
	ch2, cancel2 := b.Subscribe()
	cancel2()
	if _, ok := <-ch2; ok {
		t.Fatal("post-close subscription must be closed")
	}
	b.Publish("run", 1) // must not panic
}
