// Package obs is the opt-in live observability plane of the COSMOS cmds:
// one HTTP server exposing the state of a running simulation or campaign
// while it runs, instead of only after it exits.
//
// Endpoints:
//
//	/metrics      Prometheus text exposition bridged from the telemetry
//	              registry (plus process-level gauges)
//	/healthz      liveness: {"status":"ok", ...} — the process is up
//	/readyz       readiness: 200 once the component can serve (journal
//	              replayed, fleet joined), 503 with a reason before that
//	/buildz       build/runtime identity: go version, GOOS/GOARCH, VCS
//	              revision, GOMAXPROCS, pid, uptime
//	/runs         live JSON of the campaign run table (per-cell status,
//	              queue-wait/exec times, source counts, worker occupancy,
//	              ETA)
//	/events       SSE stream of run lifecycle transitions, interval-
//	              sampler snapshots, fault events and watchdog detections
//	/spans        top-K slowest access span trees plus per-cause latency
//	              percentiles of every attached span recorder
//	/phases       the online watchdog's detected phase segments and
//	              anomalies per run
//	/debug/pprof  the standard profiling endpoints
//	/coord/*      when serving a distributed campaign, the lease fabric
//	              (mounted via Config.Attach; see internal/coord)
//
// The plane is strictly opt-in (the cmds only start it when -listen is
// set) and additive: it reads counters the simulator already maintains, so
// the simulation hot path is untouched and disabled-telemetry runs remain
// allocation-free and bit-identical. See DESIGN.md §8.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"cosmos/internal/telemetry"
)

// Config wires a Server to the process it observes. Every field except
// Component is optional: a nil Registry serves only process metrics, a nil
// Runs serves an empty table, a nil Events serves a stream that only ever
// heartbeats.
type Config struct {
	// Component names the serving cmd ("cosmos-bench") in /healthz and
	// /buildz.
	Component string
	// Registry is the telemetry metric set served on /metrics.
	Registry *telemetry.Registry
	// Runs is the live campaign run table served on /runs.
	Runs *RunTable
	// Events is the broker behind /events.
	Events *Broker
	// Spans is the span-recorder hub served on /spans.
	Spans *SpanHub
	// Watch is the watchdog hub served on /phases.
	Watch *WatchHub
	// Logger defaults to slog.Default().
	Logger *slog.Logger
	// Heartbeat is the SSE keep-alive comment cadence (default 15s).
	Heartbeat time.Duration
	// Ready gates /readyz: nil means always ready; otherwise a false
	// return (with a reason) serves 503 until the component reports ready
	// (a coordinator replaying its journal, a worker not yet joined).
	// /healthz stays pure liveness either way.
	Ready func() (bool, string)
	// Coord, when set, is merged into /runs as a "coord" object so one
	// endpoint shows the whole distributed campaign (queue depths, fleet
	// occupancy, lease ages, re-lease counts).
	Coord func() any
	// Attach, when set, registers extra routes on the server mux before it
	// starts (the coordinator mounts /coord/* here without obs importing
	// it).
	Attach func(*http.ServeMux)
}

// Server is the observability-plane HTTP server.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	srv   *http.Server
	ln    net.Listener
	start time.Time
}

// NewServer builds the server and its routes without listening yet.
func NewServer(cfg Config) *Server {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	s := &Server{cfg: cfg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/buildz", s.handleBuildz)
	s.mux.HandleFunc("/runs", s.handleRuns)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/spans", s.handleSpans)
	s.mux.HandleFunc("/phases", s.handlePhases)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if cfg.Attach != nil {
		cfg.Attach(s.mux)
	}
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// Handler exposes the route mux (tests drive it through httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (":0" picks a free port) and serves in the
// background until Shutdown.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.cfg.Logger.Error("observability server failed", "err", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns a curl-able base URL for the bound address.
func (s *Server) URL() string {
	addr := s.Addr()
	if addr == "" {
		return ""
	}
	if host, port, err := net.SplitHostPort(addr); err == nil {
		if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
			return "http://localhost:" + port
		}
	}
	return "http://" + addr
}

// Shutdown stops the plane gracefully: the event broker closes first (so
// open SSE streams finish their responses), then the HTTP server drains
// within ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.cfg.Events != nil {
		s.cfg.Events.Close()
	}
	if s.ln == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", MetricsContentType)
	if s.cfg.Registry != nil {
		if err := WriteMetrics(w, s.cfg.Registry); err != nil {
			return
		}
	}
	writeProcessMetrics(w, s.start)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"status":    "ok",
		"component": s.cfg.Component,
		"uptime_s":  time.Since(s.start).Seconds(),
	})
}

// handleReadyz is readiness, distinct from /healthz liveness: a live
// process may still be warming up (journal replay, fleet join). Load
// balancers and smoke tests poll this before sending work.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reason := true, ""
	if s.cfg.Ready != nil {
		ready, reason = s.cfg.Ready()
	}
	if !ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{
			"status":    "not ready",
			"reason":    reason,
			"component": s.cfg.Component,
		})
		return
	}
	writeJSON(w, map[string]any{
		"status":    "ready",
		"component": s.cfg.Component,
		"uptime_s":  time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleBuildz(w http.ResponseWriter, _ *http.Request) {
	info := map[string]any{
		"component":  s.cfg.Component,
		"go":         runtime.Version(),
		"os":         runtime.GOOS,
		"arch":       runtime.GOARCH,
		"cpus":       runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"pid":        os.Getpid(),
		"uptime_s":   time.Since(s.start).Seconds(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info["module"] = bi.Main.Path
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision", "vcs.time", "vcs.modified":
				info[kv.Key] = kv.Value
			}
		}
	}
	writeJSON(w, info)
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	snap := Snapshot{Sources: map[string]int{}, Cells: []Cell{}}
	if s.cfg.Runs != nil {
		snap = s.cfg.Runs.Snapshot()
	}
	if s.cfg.Coord == nil {
		writeJSON(w, snap)
		return
	}
	// Embed the coordinator's fabric view alongside the run table so one
	// endpoint covers the whole distributed campaign.
	writeJSON(w, struct {
		Snapshot
		Coord any `json:"coord"`
	}{Snapshot: snap, Coord: s.cfg.Coord()})
}

// handleEvents serves the SSE stream: every broker event becomes one
// `id/event/data` frame, with comment heartbeats in between. The response
// ends when the client goes away or the broker closes (server shutdown) —
// the stream always terminates cleanly mid-campaign kill.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	fmt.Fprint(w, "retry: 2000\n\n")
	fl.Flush()

	if s.cfg.Events == nil {
		<-r.Context().Done()
		return
	}
	ch, cancel := s.cfg.Events.Subscribe()
	defer cancel()
	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return // broker closed: graceful end of stream
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, ev.Data)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
