package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"cosmos/internal/runner"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
)

// fakeClock advances one millisecond per reading, so cell timestamps are
// deterministic and distinct.
type fakeClock struct{ ms int64 }

func (c *fakeClock) now() time.Time {
	c.ms++
	return time.UnixMilli(c.ms)
}

func newTestTable(workers int) *RunTable {
	tbl := NewRunTable(workers, nil)
	tbl.now = (&fakeClock{}).now
	return tbl
}

func TestRunTableLifecycle(t *testing.T) {
	tbl := newTestTable(2)

	tbl.Observe(runner.Transition{Key: "a", Label: "mcf_COSMOS", Phase: runner.PhaseQueued})
	tbl.Observe(runner.Transition{Key: "b", Label: "DFS_COSMOS", Phase: runner.PhaseQueued})
	s := tbl.Snapshot()
	if s.Queued != 2 || s.Running != 0 || s.Done != 0 {
		t.Fatalf("after queueing: %+v", s)
	}
	if s.ETASeconds != -1 || s.MeanExecMS != -1 {
		t.Fatalf("ETA before any execution must be -1, got %+v", s)
	}

	tbl.Observe(runner.Transition{Key: "a", Label: "mcf_COSMOS", Phase: runner.PhaseRunning, QueueWait: 5 * time.Millisecond})
	done, total, running := tbl.Progress()
	if done != 0 || total != 2 || running != 1 {
		t.Fatalf("progress = (%d,%d,%d)", done, total, running)
	}

	tbl.Observe(runner.Transition{
		Key: "a", Label: "mcf_COSMOS", Phase: runner.PhaseDone,
		Source: runner.SourceExecuted, QueueWait: 5 * time.Millisecond, ExecTime: 4 * time.Second,
	})
	s = tbl.Snapshot()
	if s.Done != 1 || s.Queued != 1 {
		t.Fatalf("after one done: %+v", s)
	}
	if s.MeanExecMS != 4000 {
		t.Fatalf("mean exec = %v", s.MeanExecMS)
	}
	// One queued cell remaining, mean 4s, two workers → 2s.
	if eta, ok := tbl.ETA(); !ok || eta != 2*time.Second {
		t.Fatalf("eta = %v ok=%v", eta, ok)
	}

	cell := s.Cells[0]
	if cell.Status != "done" || cell.Source != "executed" || cell.QueueWaitMS != 5 || cell.ExecMS != 4000 {
		t.Fatalf("cell = %+v", cell)
	}
	if cell.StartedUnixMS == 0 || cell.FinishedUnixMS == 0 || cell.FinishedUnixMS <= cell.StartedUnixMS {
		t.Fatalf("timestamps = %+v", cell)
	}
}

// setClock is a clock pinned to an explicit instant (unlike fakeClock it
// does not advance per reading), for tests that reason about elapsed time.
type setClock struct{ t time.Time }

func (c *setClock) now() time.Time { return c.t }

// TestRunTableETACreditsRunningCells pins the ETA fix: a cell that has
// already been running for a while only costs the mean minus its elapsed
// time, and one that overshot the mean costs nothing — previously every
// running cell was billed the full mean and the estimate jumped at each
// worker handoff.
func TestRunTableETACreditsRunningCells(t *testing.T) {
	clock := &setClock{t: time.UnixMilli(1_000)}
	tbl := NewRunTable(1, nil)
	tbl.now = clock.now

	// One executed cell establishes a 10s mean.
	tbl.Observe(runner.Transition{Key: "a", Label: "a", Phase: runner.PhaseQueued})
	tbl.Observe(runner.Transition{Key: "a", Label: "a", Phase: runner.PhaseRunning})
	tbl.Observe(runner.Transition{Key: "a", Label: "a", Phase: runner.PhaseDone,
		Source: runner.SourceExecuted, ExecTime: 10 * time.Second})

	// b starts running at t=2s; c stays queued.
	clock.t = time.UnixMilli(2_000)
	tbl.Observe(runner.Transition{Key: "b", Label: "b", Phase: runner.PhaseQueued})
	tbl.Observe(runner.Transition{Key: "b", Label: "b", Phase: runner.PhaseRunning})
	tbl.Observe(runner.Transition{Key: "c", Label: "c", Phase: runner.PhaseQueued})

	// At t=6s, b has 4s elapsed: remaining = (10−4) + 10 = 16s on 1 worker.
	clock.t = time.UnixMilli(6_000)
	if eta, ok := tbl.ETA(); !ok || eta != 16*time.Second {
		t.Fatalf("eta = %v ok=%v, want 16s", eta, ok)
	}

	// At t=20s, b overshot the mean: floored at zero, only c counts.
	clock.t = time.UnixMilli(20_000)
	if eta, ok := tbl.ETA(); !ok || eta != 10*time.Second {
		t.Fatalf("eta after overshoot = %v ok=%v, want 10s", eta, ok)
	}

	snap := tbl.Snapshot()
	if snap.Cells[1].RunningSinceUnixMS != 2_000 {
		t.Fatalf("running-since = %v, want 2000", snap.Cells[1].RunningSinceUnixMS)
	}
}

// TestRunTablePerfBreakdown checks the campaign Phases attachment and the
// per-cell Perf attribution survive a snapshot round.
func TestRunTablePerfBreakdown(t *testing.T) {
	tbl := newTestTable(1)
	ph := telemetry.NewPhases()
	ph.Add(telemetry.PhaseStep, 2*time.Second)
	ph.AddAccesses(1000)
	tbl.AttachPhases(ph)

	pb := ph.Breakdown()
	tbl.Observe(runner.Transition{Key: "a", Label: "a", Phase: runner.PhaseQueued})
	tbl.Observe(runner.Transition{Key: "a", Label: "a", Phase: runner.PhaseDone,
		Source: runner.SourceExecuted, ExecTime: time.Second, Perf: &pb})

	s := tbl.Snapshot()
	if s.Perf == nil || s.Perf.StepMS != 2000 || s.Perf.Accesses != 1000 {
		t.Fatalf("snapshot perf = %+v", s.Perf)
	}
	if s.Cells[0].Perf == nil || s.Cells[0].Perf.StepMS != 2000 {
		t.Fatalf("cell perf = %+v", s.Cells[0].Perf)
	}
}

// TestRunTableParallelEnginePerf runs one real campaign cell on the serial
// engine and one on the epoch-barrier parallel engine and checks the perf
// attribution surface agrees: the per-cell /runs Perf breakdown books the
// run's accesses exactly once (coordinator-side phase counters, not a
// per-core sum), the campaign Phases accumulator — the source of the
// cosmos-bench progress `rate` — agrees, and Results stay bit-identical.
func TestRunTableParallelEnginePerf(t *testing.T) {
	run := func(parallelCores int) (Cell, uint64, sim.Results) {
		tbl := NewRunTable(1, nil)
		o := runner.New(runner.Options{Workers: 1, ParallelCores: parallelCores})
		o.Lifecycle = tbl.Observe
		o.Phases = telemetry.NewPhases()
		tbl.AttachPhases(o.Phases)
		res, err := o.Run(context.Background(), runner.Spec{
			Workload: "mcf", Design: secmem.DesignCosmos(), Accesses: 20_000, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := tbl.Snapshot()
		if len(s.Cells) != 1 || s.Cells[0].Source != "executed" {
			t.Fatalf("parallelCores=%d: snapshot = %+v", parallelCores, s)
		}
		return s.Cells[0], o.Phases.Accesses(), res
	}

	serial, serialAcc, serialRes := run(1)
	par, parAcc, parRes := run(4)

	for _, c := range []struct {
		mode string
		cell Cell
		acc  uint64
	}{{"serial", serial, serialAcc}, {"parallel", par, parAcc}} {
		if c.cell.Perf == nil {
			t.Fatalf("%s: executed cell has no perf breakdown", c.mode)
		}
		// Exactly the run's accesses: neither dropped nor double-booked by
		// per-core workers.
		if c.cell.Perf.Accesses != 20_000 {
			t.Fatalf("%s: cell perf accesses = %d, want 20000", c.mode, c.cell.Perf.Accesses)
		}
		if c.cell.Perf.StepMS < 0 || c.cell.Perf.AccessesPerSec <= 0 {
			t.Fatalf("%s: cell perf = %+v", c.mode, c.cell.Perf)
		}
		if c.acc != 20_000 {
			t.Fatalf("%s: campaign accesses = %d, want 20000", c.mode, c.acc)
		}
	}
	if !reflect.DeepEqual(serialRes, parRes) {
		t.Fatalf("parallel engine diverged from serial Results:\nserial:   %+v\nparallel: %+v", serialRes, parRes)
	}
}

func TestRunTableDedupFollowerKeepsLeaderState(t *testing.T) {
	tbl := newTestTable(1)
	tbl.Observe(runner.Transition{Key: "a", Label: "x", Phase: runner.PhaseQueued})
	tbl.Observe(runner.Transition{Key: "a", Label: "x", Phase: runner.PhaseDone,
		Source: runner.SourceExecuted, ExecTime: time.Second})
	// A deduplicated follower of the same key finishes after the leader: the
	// cell keeps its executed terminal state, only the source tally grows.
	tbl.Observe(runner.Transition{Key: "a", Label: "x", Phase: runner.PhaseDone,
		Source: runner.SourceDeduplicated})
	s := tbl.Snapshot()
	if len(s.Cells) != 1 || s.Cells[0].Source != "executed" {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Sources["executed"] != 1 || s.Sources["deduplicated"] != 1 {
		t.Fatalf("sources = %+v", s.Sources)
	}
}

func TestRunTableFailedCell(t *testing.T) {
	tbl := newTestTable(1)
	tbl.Observe(runner.Transition{Key: "a", Label: "x", Phase: runner.PhaseQueued})
	tbl.Observe(runner.Transition{Key: "a", Label: "x", Phase: runner.PhaseDone,
		Source: runner.SourceExecuted, Err: errTest})
	s := tbl.Snapshot()
	if s.Failed != 1 || s.Cells[0].Status != "failed" || s.Cells[0].Error != "boom" {
		t.Fatalf("snapshot = %+v", s)
	}
	// Failed executions must not pollute the ETA mean.
	if s.MeanExecMS != -1 {
		t.Fatalf("mean after failure only = %v", s.MeanExecMS)
	}
}

var errTest = errFixed("boom")

type errFixed string

func (e errFixed) Error() string { return string(e) }

// TestRunsEndpointRoundTrip drives /runs through the real handler and checks
// the JSON decodes back into the Snapshot that produced it.
func TestRunsEndpointRoundTrip(t *testing.T) {
	tbl := newTestTable(3)
	tbl.Observe(runner.Transition{Key: "k1", Label: "mcf_COSMOS", Phase: runner.PhaseQueued})
	tbl.Observe(runner.Transition{Key: "k1", Label: "mcf_COSMOS", Phase: runner.PhaseRunning, QueueWait: time.Millisecond})
	tbl.Observe(runner.Transition{Key: "k1", Label: "mcf_COSMOS", Phase: runner.PhaseDone,
		Source: runner.SourceExecuted, ExecTime: 2 * time.Second})
	tbl.Observe(runner.Transition{Key: "k2", Label: "mcf_NP", Phase: runner.PhaseDone, Source: runner.SourceRestored})
	tbl.Observe(runner.Transition{Key: "k3", Label: "DFS_COSMOS", Phase: runner.PhaseQueued})

	srv := NewServer(Config{Component: "test", Runs: tbl})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/runs", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}

	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want := tbl.Snapshot()
	if got.Workers != want.Workers || got.Done != want.Done || got.Queued != want.Queued {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
	if len(got.Cells) != 3 || got.Cells[0].Label != "mcf_COSMOS" || got.Cells[1].Source != "restored" {
		t.Fatalf("cells = %+v", got.Cells)
	}
	if got.Sources["executed"] != 1 || got.Sources["restored"] != 1 {
		t.Fatalf("sources = %+v", got.Sources)
	}
	if got.ETASeconds != want.ETASeconds {
		t.Fatalf("eta %v != %v", got.ETASeconds, want.ETASeconds)
	}
}

func TestRunsEndpointEmptyWithoutTable(t *testing.T) {
	srv := NewServer(Config{Component: "test"})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/runs", nil))
	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Cells == nil || len(got.Cells) != 0 {
		t.Fatalf("want empty cell list, got %+v", got)
	}
}
