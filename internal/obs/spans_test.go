package obs

import (
	"bufio"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosmos/internal/telemetry"
	"cosmos/internal/watch"
)

func TestSpansEndpoint(t *testing.T) {
	hub := NewSpanHub()
	rec := telemetry.NewSpanRecorder(1, 4)
	for i := uint64(0); i < 6; i++ {
		rec.MaybeBegin(i, 0, 100+i)
		rec.Note(telemetry.CauseCtrMiss, 90, 0)
		rec.NoteFetch(2, 148, 148, 90, 148, 40, 300+i, true, false, false)
		rec.EndAccess(302 + i)
	}
	hub.Register("mcf_COSMOS", rec)

	srv := NewServer(Config{Component: "cosmos-test", Spans: hub})
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/spans", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/spans status = %d", w.Code)
	}
	var got []RunSpans
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Run != "mcf_COSMOS" {
		t.Fatalf("runs = %+v", got)
	}
	if len(got[0].Top) != 4 {
		t.Fatalf("top-K = %d exemplars, want 4", len(got[0].Top))
	}
	if got[0].Top[0].Total != 307 {
		t.Fatalf("slowest exemplar total = %d, want 307", got[0].Top[0].Total)
	}
	if st := got[0].Tail.Stat("fetch"); st == nil || st.Count != 6 || st.P99 == 0 {
		t.Fatalf("fetch tail stat = %+v", st)
	}

	// Dropping the run empties the document again.
	hub.Drop("mcf_COSMOS")
	w = httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/spans", nil))
	if body := strings.TrimSpace(w.Body.String()); body != "[]" && body != "null" {
		t.Fatalf("dropped hub body = %q", body)
	}
}

func TestSpansEndpointWithoutHub(t *testing.T) {
	srv := NewServer(Config{Component: "cosmos-test"})
	for _, path := range []string{"/spans", "/phases"} {
		w := httptest.NewRecorder()
		srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		if w.Code != http.StatusOK {
			t.Fatalf("%s status = %d", path, w.Code)
		}
		if body := strings.TrimSpace(w.Body.String()); body != "[]" {
			t.Fatalf("%s body = %q, want []", path, body)
		}
	}
}

func TestPhasesEndpoint(t *testing.T) {
	hub := NewWatchHub()
	dog := watch.New(nil, watch.Config{Signals: []string{"sig"}})
	for i := 0; i < 25; i++ {
		v := 10.0
		if i >= 20 {
			v = 100
		}
		dog.ObserveRow(telemetry.Row{
			Interval: i, Accesses: uint64(i+1) * 1000, Delta: 1000,
			Values: map[string]float64{"sig": v},
		})
	}
	hub.Register("mcf_COSMOS", dog)

	srv := NewServer(Config{Component: "cosmos-test", Watch: hub})
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/phases", nil))
	var got []RunPhases
	if err := json.Unmarshal(w.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Run != "mcf_COSMOS" {
		t.Fatalf("runs = %+v", got)
	}
	if got[0].AnomalyCount == 0 || got[0].PhaseChanges == 0 {
		t.Fatalf("snapshot = %+v, want detections", got[0].Snapshot)
	}
	if len(got[0].Phases) < 2 || len(got[0].Anomalies) == 0 {
		t.Fatalf("phases/anomalies = %d/%d", len(got[0].Phases), len(got[0].Anomalies))
	}
}

func TestWatchNotifierPublishes(t *testing.T) {
	broker := NewBroker()
	ch, cancel := broker.Subscribe()
	defer cancel()

	var logBuf strings.Builder
	logger := slog.New(slog.NewTextHandler(&logBuf, nil))
	notify := WatchNotifier(logger, broker, "mcf_COSMOS")
	notify(watch.Event{Kind: "anomaly", Signal: "sim.avg_fetch_lat", Interval: 12, Z: 7.5, Phase: 0})
	notify(watch.Event{Kind: "phase_change", Signal: "sim.avg_fetch_lat", Interval: 13, Phase: 1})

	ev := <-ch
	if ev.Type != "anomaly" {
		t.Fatalf("event type = %q, want anomaly", ev.Type)
	}
	var payload struct {
		Run   string      `json:"run"`
		Event watch.Event `json:"event"`
	}
	if err := json.Unmarshal(ev.Data, &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Run != "mcf_COSMOS" || payload.Event.Signal != "sim.avg_fetch_lat" {
		t.Fatalf("payload = %+v", payload)
	}
	if ev2 := <-ch; ev2.Type != "phase_change" {
		t.Fatalf("second event type = %q, want phase_change", ev2.Type)
	}
	if !strings.Contains(logBuf.String(), "watchdog detection") ||
		!strings.Contains(logBuf.String(), "sim.avg_fetch_lat") {
		t.Fatalf("log output = %q", logBuf.String())
	}

	// Nil logger and nil broker are both fine.
	WatchNotifier(nil, nil, "x")(watch.Event{Kind: "anomaly"})
}

// TestEventsKeepaliveReachesSlowSubscriber pins the idle-stream contract:
// a subscriber that receives no events still sees periodic `: keep-alive`
// comment lines, so proxies with idle timeouts keep the stream open.
func TestEventsKeepaliveReachesSlowSubscriber(t *testing.T) {
	broker := NewBroker()
	srv := NewServer(Config{
		Component: "cosmos-test",
		Events:    broker,
		Heartbeat: 20 * time.Millisecond,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(t.Context())

	resp, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// A slow subscriber: read raw lines one at a time, never publish. At
	// least two heartbeats must arrive well before a 15s default would.
	lines := make(chan string, 32)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	keepalives := 0
	deadline := time.After(5 * time.Second)
	for keepalives < 2 {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream ended before two keepalives")
			}
			if strings.HasPrefix(line, ":") {
				keepalives++
			}
		case <-deadline:
			t.Fatalf("saw %d keepalives in 5s, want 2", keepalives)
		}
	}

	// The stream still delivers real events after idling.
	waitSubscribed(t, broker)
	broker.Publish("run", map[string]int{"n": 1})
	eventDeadline := time.After(5 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream ended before the published event")
			}
			if line == `data: {"n":1}` {
				return
			}
		case <-eventDeadline:
			t.Fatal("published event never arrived after keepalives")
		}
	}
}
