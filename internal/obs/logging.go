package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. format is "text" (logfmt-ish,
// human-first) or "json" (one machine-parseable object per line); level is
// one of "debug", "info", "warn", "error".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (have debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (have text, json)", format)
	}
	return slog.New(h), nil
}

// SetupLogger is the cmd entry point for structured logging: it builds a
// stderr logger tagged with the component name, installs it as the slog
// default (so library packages logging through slog.Default inherit it) and
// returns it.
func SetupLogger(component, format, level string) (*slog.Logger, error) {
	l, err := NewLogger(os.Stderr, format, level)
	if err != nil {
		return nil, err
	}
	l = l.With("component", component)
	slog.SetDefault(l)
	return l, nil
}
