package cache

import (
	"math/rand"
	"testing"

	"cosmos/internal/memsys"
	"cosmos/internal/telemetry"
)

// wbSink is a terminal Level that records every writeback it absorbs.
type wbSink struct {
	writebacks uint64
	accesses   uint64
	lines      map[uint64]uint64
}

func newWBSink() *wbSink { return &wbSink{lines: map[uint64]uint64{}} }

func (s *wbSink) Name() string    { return "sink" }
func (s *wbSink) Latency() uint64 { return 0 }
func (s *wbSink) Access(r memsys.Request) memsys.Response {
	s.accesses++
	return memsys.Response{Hit: true}
}
func (s *wbSink) Writeback(r memsys.Request) {
	s.writebacks++
	s.lines[r.Line]++
}
func (s *wbSink) RegisterMetrics(*telemetry.Scope) {}
func (s *wbSink) ResetStats()                      { s.writebacks, s.accesses = 0, 0 }

// wbTap wraps a Level and counts the writebacks delivered to it, so a test
// can observe the traffic crossing each link of a chain.
type wbTap struct {
	memsys.Level
	received uint64
}

func (t *wbTap) Writeback(r memsys.Request) {
	t.received++
	t.Level.Writeback(r)
}

// TestWritebackConservation drives a randomized access stream through a
// three-level chain and checks the conservation property: every dirty
// eviction a level produces is delivered to exactly one place — the level
// directly below it — and nothing else ever reaches the terminal.
func TestWritebackConservation(t *testing.T) {
	sink := newWBSink()
	l3 := NewLevel(New("l3", 32<<10, 4, NewLRU()), 10, sink)
	tap3 := &wbTap{Level: l3}
	l2 := NewLevel(New("l2", 16<<10, 4, NewLRU()), 5, tap3)
	tap2 := &wbTap{Level: l2}
	l1 := NewLevel(New("l1", 4<<10, 2, NewLRU()), 1, tap2)

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200000; i++ {
		r := memsys.Request{
			Line:  uint64(rng.Intn(1 << 14)),
			Write: rng.Intn(100) < 35,
			Sig:   uint16(rng.Intn(8)),
			Core:  0,
			Now:   uint64(i),
		}
		l1.Access(r)
	}

	if l1.Cache().Stats.Writebacks == 0 {
		t.Fatal("stream produced no dirty evictions; property vacuous")
	}
	if got, want := tap2.received, l1.Cache().Stats.Writebacks; got != want {
		t.Fatalf("l2 received %d writebacks, l1 emitted %d", got, want)
	}
	if got, want := tap3.received, l2.Cache().Stats.Writebacks; got != want {
		t.Fatalf("l3 received %d writebacks, l2 emitted %d", got, want)
	}
	if got, want := sink.writebacks, l3.Cache().Stats.Writebacks; got != want {
		t.Fatalf("terminal received %d writebacks, l3 emitted %d", got, want)
	}
	if sink.accesses != 0 {
		t.Fatalf("terminal saw %d demand accesses from a writeback-only chain", sink.accesses)
	}
}

// TestWritebackInstallIsDirty checks that an arriving writeback installs
// the line dirty: evicting it later must forward it down, not drop it.
func TestWritebackInstallIsDirty(t *testing.T) {
	sink := newWBSink()
	// Direct-mapped single-set cache: any two distinct lines conflict.
	lv := NewLevel(New("lv", 64, 1, NewLRU()), 1, sink)

	lv.Writeback(memsys.Request{Line: 1, Write: true, Sig: memsys.SigWriteback})
	lv.Writeback(memsys.Request{Line: 2, Write: true, Sig: memsys.SigWriteback})
	if sink.writebacks != 1 || sink.lines[1] != 1 {
		t.Fatalf("displaced dirty install must land below exactly once; sink saw %v", sink.lines)
	}
}
