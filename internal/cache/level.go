package cache

import (
	"cosmos/internal/memsys"
	"cosmos/internal/telemetry"
)

// Level adapts a Cache to the memsys.Level interface, binding it into a
// hierarchy chain: a fixed lookup latency and a downstream level that
// receives this cache's dirty victims. The writeback walk is generic — any
// dirty eviction, whether caused by a demand fill or by an arriving
// writeback, is forwarded to down.Writeback, which cascades recursively
// until a terminal level absorbs the line.
type Level struct {
	cache *Cache
	lat   uint64
	down  memsys.Level
}

// NewLevel wraps c as a hierarchy level with the given lookup latency.
// down receives dirty victims; it must be non-nil unless the cache can
// never hold dirty lines.
func NewLevel(c *Cache, lat uint64, down memsys.Level) *Level {
	return &Level{cache: c, lat: lat, down: down}
}

// Cache exposes the underlying tag store (stats, policy hints).
func (l *Level) Cache() *Cache { return l.cache }

// Down returns the level this cache writes dirty victims to.
func (l *Level) Down() memsys.Level { return l.down }

// Name implements memsys.Level.
func (l *Level) Name() string { return l.cache.Name() }

// Latency implements memsys.Level.
func (l *Level) Latency() uint64 { return l.lat }

// Probe is the devirtualized hot path: identical semantics to Access —
// lookup, fill on miss, dirty-victim cascade — without Request/Response
// struct traffic or interface dispatch at the call site. The simulator's
// step engine calls it on concrete *Level chains; adapters and the fault
// plane keep using Access.
func (l *Level) Probe(line uint64, write bool, sig uint16, core int, now uint64) bool {
	hit, _, _, evLine, evicted, evDirty := l.cache.probe(line, write, sig)
	if evicted && evDirty && l.down != nil {
		l.down.Writeback(memsys.Request{
			Line:  evLine,
			Write: true,
			Sig:   memsys.SigWriteback,
			Core:  core,
			Now:   now,
		})
	}
	return hit
}

// Access performs a demand lookup and cascades any dirty victim down the
// chain before returning.
func (l *Level) Access(r memsys.Request) memsys.Response {
	res := l.cache.Access(r.Line, r.Write, r.Sig)
	l.cascade(res, r)
	return memsys.Response{
		Hit:          res.Hit,
		Latency:      l.lat,
		Evicted:      res.Evicted,
		EvictedLine:  res.EvictedLine,
		EvictedDirty: res.EvictedDirty,
	}
}

// Writeback installs a dirty victim from the level above. The install is a
// store (the line is dirty here now); its own victim cascades further down.
func (l *Level) Writeback(r memsys.Request) {
	res := l.cache.Access(r.Line, true, memsys.SigWriteback)
	l.cascade(res, r)
}

// cascade forwards a dirty victim to the downstream level.
func (l *Level) cascade(res Result, r memsys.Request) {
	if res.Evicted && res.EvictedDirty && l.down != nil {
		l.down.Writeback(memsys.Request{
			Line:  res.EvictedLine,
			Write: true,
			Sig:   memsys.SigWriteback,
			Core:  r.Core,
			Now:   r.Now,
		})
	}
}

// RegisterMetrics implements memsys.Level.
func (l *Level) RegisterMetrics(s *telemetry.Scope) { l.cache.RegisterMetrics(s) }

// ResetStats implements memsys.Level.
func (l *Level) ResetStats() { l.cache.Stats = Stats{} }
