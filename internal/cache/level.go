package cache

import (
	"cosmos/internal/memsys"
	"cosmos/internal/telemetry"
)

// Level adapts a Cache to the memsys.Level interface, binding it into a
// hierarchy chain: a fixed lookup latency and a downstream level that
// receives this cache's dirty victims. The writeback walk is generic — any
// dirty eviction, whether caused by a demand fill or by an arriving
// writeback, is forwarded to down.Writeback, which cascades recursively
// until a terminal level absorbs the line.
type Level struct {
	cache *Cache
	lat   uint64
	down  memsys.Level
}

// NewLevel wraps c as a hierarchy level with the given lookup latency.
// down receives dirty victims; it must be non-nil unless the cache can
// never hold dirty lines.
func NewLevel(c *Cache, lat uint64, down memsys.Level) *Level {
	return &Level{cache: c, lat: lat, down: down}
}

// Cache exposes the underlying tag store (stats, policy hints).
func (l *Level) Cache() *Cache { return l.cache }

// Down returns the level this cache writes dirty victims to.
func (l *Level) Down() memsys.Level { return l.down }

// Name implements memsys.Level.
func (l *Level) Name() string { return l.cache.Name() }

// Latency implements memsys.Level.
func (l *Level) Latency() uint64 { return l.lat }

// Access performs a demand lookup and cascades any dirty victim down the
// chain before returning.
func (l *Level) Access(r memsys.Request) memsys.Response {
	res := l.cache.Access(r.Line, r.Write, r.Sig)
	l.cascade(res, r)
	return memsys.Response{
		Hit:          res.Hit,
		Latency:      l.lat,
		Evicted:      res.Evicted,
		EvictedLine:  res.EvictedLine,
		EvictedDirty: res.EvictedDirty,
	}
}

// Writeback installs a dirty victim from the level above. The install is a
// store (the line is dirty here now); its own victim cascades further down.
func (l *Level) Writeback(r memsys.Request) {
	res := l.cache.Access(r.Line, true, memsys.SigWriteback)
	l.cascade(res, r)
}

// cascade forwards a dirty victim to the downstream level.
func (l *Level) cascade(res Result, r memsys.Request) {
	if res.Evicted && res.EvictedDirty && l.down != nil {
		l.down.Writeback(memsys.Request{
			Line:  res.EvictedLine,
			Write: true,
			Sig:   memsys.SigWriteback,
			Core:  r.Core,
			Now:   r.Now,
		})
	}
}

// RegisterMetrics implements memsys.Level.
func (l *Level) RegisterMetrics(s *telemetry.Scope) { l.cache.RegisterMetrics(s) }

// ResetStats implements memsys.Level.
func (l *Level) ResetStats() { l.cache.Stats = Stats{} }
