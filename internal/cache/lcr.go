package cache

// LCR is the paper's locality-centric replacement policy (Algorithm 2).
// Every line carries a 1-bit locality flag (1 = good locality, 0 = bad) and
// an 8-bit locality score, both supplied by the RL-based CTR locality
// predictor via SetHint. Eviction targets, in order:
//
//  1. among bad-locality lines, the one with the HIGHEST bad score
//     (most confidently bad);
//  2. if every line is good, the one with the LOWEST good score
//     (least confidently good).
//
// Falling back to LRU order breaks ties so behaviour stays deterministic.
type LCR struct {
	ways  int
	flag  []bool
	score []uint8
	stamp []uint64
	clock uint64
}

// NewLCR returns the LCR policy. Lines inserted before any hint arrives are
// treated as bad locality with a neutral score, matching the hardware where
// the prediction bit accompanies the fill.
func NewLCR() *LCR { return &LCR{} }

// Name implements Policy.
func (p *LCR) Name() string { return "LCR" }

// Reset implements Policy.
func (p *LCR) Reset(sets, ways int) {
	p.ways = ways
	n := sets * ways
	p.flag = make([]bool, n)
	p.score = make([]uint8, n)
	p.stamp = make([]uint64, n)
	p.clock = 0
}

func (p *LCR) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// OnHit implements Policy.
func (p *LCR) OnHit(set, way int, _ Event) { p.touch(set, way) }

// OnInsert implements Policy: default to bad locality / neutral score until
// the predictor hint lands.
func (p *LCR) OnInsert(set, way int, _ Event) {
	i := set*p.ways + way
	p.flag[i] = false
	p.score[i] = 128
	p.touch(set, way)
}

// OnEvict implements Policy.
func (p *LCR) OnEvict(int, int) {}

// SetHint attaches the predictor's locality classification to a resident
// line: good=true marks good locality; score is the 8-bit confidence from
// the CTR Q-table.
func (p *LCR) SetHint(set, way int, good bool, score uint8) {
	i := set*p.ways + way
	p.flag[i] = good
	p.score[i] = score
}

// Hint reports the current flag/score of a line (for tests and stats).
func (p *LCR) Hint(set, way int) (good bool, score uint8) {
	i := set*p.ways + way
	return p.flag[i], p.score[i]
}

// Victim implements Algorithm 2: a bad-locality line with the highest score
// wins eviction; when every line is good, the lowest score loses (ties break
// to the older stamp). Both candidates are tracked in one pass — the good
// candidate only matters when no bad line exists, i.e. when every way is
// good, so restricting it to good ways is equivalent to the two-pass form.
// Score and stamp are packed into one comparison key per way (score in the
// top bits, stamp below), so each way costs a single compare: maximizing
// score|^stamp prefers the higher bad score and, on equal scores, the older
// stamp; minimizing score|stamp does the mirror image for good lines. The
// 56-bit stamp field wraps only after 7×10^16 touches, far beyond any run.
func (p *LCR) Victim(set int) int {
	const stampMask = 1<<56 - 1
	base := set * p.ways
	evictBad, evictGood := -1, -1
	var bestBad, bestGood uint64
	for w := 0; w < p.ways; w++ {
		i := base + w
		if !p.flag[i] {
			k := uint64(p.score[i])<<56 | ^p.stamp[i]&stampMask
			if evictBad < 0 || k > bestBad {
				evictBad, bestBad = w, k
			}
		} else {
			k := uint64(p.score[i])<<56 | p.stamp[i]&stampMask
			if evictGood < 0 || k < bestGood {
				evictGood, bestGood = w, k
			}
		}
	}
	if evictBad >= 0 {
		return evictBad
	}
	return evictGood
}

// StorageBitsPerLine is the LCR metadata cost per cache line (Table 2:
// 1 prediction bit + 8 score bits).
const StorageBitsPerLine = 9
