package cache

// LCR is the paper's locality-centric replacement policy (Algorithm 2).
// Every line carries a 1-bit locality flag (1 = good locality, 0 = bad) and
// an 8-bit locality score, both supplied by the RL-based CTR locality
// predictor via SetHint. Eviction targets, in order:
//
//  1. among bad-locality lines, the one with the HIGHEST bad score
//     (most confidently bad);
//  2. if every line is good, the one with the LOWEST good score
//     (least confidently good).
//
// Falling back to LRU order breaks ties so behaviour stays deterministic.
type LCR struct {
	ways  int
	flag  []bool
	score []uint8
	stamp []uint64
	clock uint64
}

// NewLCR returns the LCR policy. Lines inserted before any hint arrives are
// treated as bad locality with a neutral score, matching the hardware where
// the prediction bit accompanies the fill.
func NewLCR() *LCR { return &LCR{} }

// Name implements Policy.
func (p *LCR) Name() string { return "LCR" }

// Reset implements Policy.
func (p *LCR) Reset(sets, ways int) {
	p.ways = ways
	n := sets * ways
	p.flag = make([]bool, n)
	p.score = make([]uint8, n)
	p.stamp = make([]uint64, n)
	p.clock = 0
}

func (p *LCR) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// OnHit implements Policy.
func (p *LCR) OnHit(set, way int, _ Event) { p.touch(set, way) }

// OnInsert implements Policy: default to bad locality / neutral score until
// the predictor hint lands.
func (p *LCR) OnInsert(set, way int, _ Event) {
	i := set*p.ways + way
	p.flag[i] = false
	p.score[i] = 128
	p.touch(set, way)
}

// OnEvict implements Policy.
func (p *LCR) OnEvict(int, int) {}

// SetHint attaches the predictor's locality classification to a resident
// line: good=true marks good locality; score is the 8-bit confidence from
// the CTR Q-table.
func (p *LCR) SetHint(set, way int, good bool, score uint8) {
	i := set*p.ways + way
	p.flag[i] = good
	p.score[i] = score
}

// Hint reports the current flag/score of a line (for tests and stats).
func (p *LCR) Hint(set, way int) (good bool, score uint8) {
	i := set*p.ways + way
	return p.flag[i], p.score[i]
}

// Victim implements Algorithm 2.
func (p *LCR) Victim(set int) int {
	base := set * p.ways
	evict := -1
	maxBad := -1
	minGood := 256
	var evictStamp uint64
	for w := 0; w < p.ways; w++ {
		i := base + w
		if !p.flag[i] { // bad locality: highest score wins eviction
			s := int(p.score[i])
			if s > maxBad || (s == maxBad && p.stamp[i] < evictStamp) {
				evict, maxBad, evictStamp = w, s, p.stamp[i]
			}
		}
	}
	if evict >= 0 {
		return evict
	}
	for w := 0; w < p.ways; w++ { // all good: lowest score is evicted
		i := base + w
		s := int(p.score[i])
		if evict < 0 || s < minGood || (s == minGood && p.stamp[i] < evictStamp) {
			evict, minGood, evictStamp = w, s, p.stamp[i]
		}
	}
	return evict
}

// StorageBitsPerLine is the LCR metadata cost per cache line (Table 2:
// 1 prediction bit + 8 score bits).
const StorageBitsPerLine = 9
