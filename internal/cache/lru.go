package cache

// LRU is the classic least-recently-used policy, the paper's baseline for
// both the CTR cache (Table 3) and the data hierarchy.
type LRU struct {
	ways  int
	stamp []uint64 // sets*ways last-touch sequence numbers
	clock uint64
}

// NewLRU returns a new LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// Reset implements Policy.
func (p *LRU) Reset(sets, ways int) {
	p.ways = ways
	p.stamp = make([]uint64, sets*ways)
	p.clock = 0
}

func (p *LRU) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// OnHit implements Policy.
func (p *LRU) OnHit(set, way int, _ Event) { p.touch(set, way) }

// OnInsert implements Policy.
func (p *LRU) OnInsert(set, way int, _ Event) { p.touch(set, way) }

// OnEvict implements Policy.
func (p *LRU) OnEvict(int, int) {}

// Victim implements Policy: the way with the oldest timestamp.
func (p *LRU) Victim(set int) int {
	base := set * p.ways
	victim, oldest := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if p.stamp[base+w] < oldest {
			victim, oldest = w, p.stamp[base+w]
		}
	}
	return victim
}

// Random evicts a pseudo-random way; it is the degenerate baseline used in
// ablation benches.
type Random struct {
	ways  int
	state uint64
}

// NewRandom returns a Random policy with a fixed seed for reproducibility.
func NewRandom(seed uint64) *Random { return &Random{state: seed | 1} }

// Name implements Policy.
func (p *Random) Name() string { return "Random" }

// Reset implements Policy.
func (p *Random) Reset(_, ways int) { p.ways = ways }

// OnHit implements Policy.
func (p *Random) OnHit(int, int, Event) {}

// OnInsert implements Policy.
func (p *Random) OnInsert(int, int, Event) {}

// OnEvict implements Policy.
func (p *Random) OnEvict(int, int) {}

// Victim implements Policy.
func (p *Random) Victim(int) int {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(p.ways))
}
