package cache

import "math/bits"

// LRU is the classic least-recently-used policy, the paper's baseline for
// both the CTR cache (Table 3) and the data hierarchy.
//
// For associativities up to 16 the full recency order of a set is packed
// into one uint64 — nibble 0 holds the MRU way, nibble ways-1 the LRU way —
// so Victim is a single shift instead of a stamp scan and a touch is a
// branch-free nibble rotation. Wider caches fall back to per-line stamps.
// Both representations yield identical victims: the order vector starts as
// the reversed identity permutation, which reproduces the stamp scan's
// lowest-index-first choice among never-touched ways.
type LRU struct {
	ways  int
	order []uint64 // per-set packed recency (ways <= 16), MRU in nibble 0
	stamp []uint64 // sets*ways last-touch sequence numbers (ways > 16)
	clock uint64
}

// Nibble-SWAR constants: repeated 0x1 and 0x8 in every 4-bit lane.
const (
	nibLSB = 0x1111111111111111
	nibMSB = 0x8888888888888888
)

// NewLRU returns a new LRU policy.
func NewLRU() *LRU { return &LRU{} }

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// Reset implements Policy.
func (p *LRU) Reset(sets, ways int) {
	p.ways = ways
	p.order, p.stamp, p.clock = nil, nil, 0
	if ways <= 16 {
		// Reversed identity: way 0 sits at the LRU end, matching the stamp
		// scan's preference for the lowest untouched way.
		var id uint64
		for w := 0; w < ways; w++ {
			id |= uint64(ways-1-w) << (4 * uint(w))
		}
		p.order = make([]uint64, sets)
		for s := range p.order {
			p.order[s] = id
		}
		return
	}
	p.stamp = make([]uint64, sets*ways)
}

// touch promotes (set, way) to MRU. On the packed path the way's nibble is
// located with a SWAR zero-nibble scan (exact for the lowest zero lane, and
// each way appears exactly once) and rotated to lane 0.
func (p *LRU) touch(set, way int) {
	if p.order != nil {
		o := p.order[set]
		x := o ^ uint64(way)*nibLSB
		b := uint(bits.TrailingZeros64((x-nibLSB)&^x&nibMSB)) &^ 3
		p.order[set] = (o&(1<<b-1))<<4 | uint64(way) | o&^(1<<(b+4)-1)
		return
	}
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// OnHit implements Policy.
func (p *LRU) OnHit(set, way int, _ Event) { p.touch(set, way) }

// OnInsert implements Policy.
func (p *LRU) OnInsert(set, way int, _ Event) { p.touch(set, way) }

// OnEvict implements Policy.
func (p *LRU) OnEvict(int, int) {}

// Victim implements Policy: the least recently touched way.
func (p *LRU) Victim(set int) int {
	if p.order != nil {
		return int(p.order[set] >> (4 * uint(p.ways-1)) & 0xF)
	}
	base := set * p.ways
	victim, oldest := 0, p.stamp[base]
	for w := 1; w < p.ways; w++ {
		if p.stamp[base+w] < oldest {
			victim, oldest = w, p.stamp[base+w]
		}
	}
	return victim
}

// Random evicts a pseudo-random way; it is the degenerate baseline used in
// ablation benches.
type Random struct {
	ways  int
	state uint64
}

// NewRandom returns a Random policy with a fixed seed for reproducibility.
func NewRandom(seed uint64) *Random { return &Random{state: seed | 1} }

// Name implements Policy.
func (p *Random) Name() string { return "Random" }

// Reset implements Policy.
func (p *Random) Reset(_, ways int) { p.ways = ways }

// OnHit implements Policy.
func (p *Random) OnHit(int, int, Event) {}

// OnInsert implements Policy.
func (p *Random) OnInsert(int, int, Event) {}

// OnEvict implements Policy.
func (p *Random) OnEvict(int, int) {}

// Victim implements Policy.
func (p *Random) Victim(int) int {
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(p.ways))
}
