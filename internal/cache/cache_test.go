package cache

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New("l1", 32*1024, 2, NewLRU())
	if c.Sets() != 256 || c.Ways() != 2 {
		t.Fatalf("32KB/2w: sets=%d ways=%d, want 256/2", c.Sets(), c.Ways())
	}
	if c.SizeBytes() != 32*1024 {
		t.Fatalf("SizeBytes=%d", c.SizeBytes())
	}
	llc := New("llc", 8<<20, 16, NewLRU())
	if llc.Sets() != 8192 {
		t.Fatalf("8MB/16w: sets=%d, want 8192", llc.Sets())
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	bad := [][2]int{{0, 2}, {100, 3}, {96 * 1024, 2} /* 768 sets: not pow2 */}
	for _, g := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) should panic", g[0], g[1])
				}
			}()
			New("x", g[0], g[1], NewLRU())
		}()
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := New("c", 4096, 4, NewLRU())
	if r := c.Access(100, false, 0); r.Hit {
		t.Fatal("first access must miss")
	}
	if r := c.Access(100, false, 0); !r.Hit {
		t.Fatal("second access must hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestDirtyWriteback(t *testing.T) {
	// Direct-mapped 64B cache: 1 set, 1 way.
	c := New("c", 64, 1, NewLRU())
	c.Access(1, true, 0) // dirty fill
	r := c.Access(2, false, 0)
	if !r.Evicted || !r.EvictedDirty {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if r.EvictedLine != 1 {
		t.Fatalf("evicted line = %d, want 1", r.EvictedLine)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
	// Clean eviction.
	r = c.Access(3, false, 0)
	if !r.Evicted || r.EvictedDirty {
		t.Fatalf("expected clean eviction, got %+v", r)
	}
}

func TestEvictedLineReconstruction(t *testing.T) {
	c := New("c", 64*8, 1, NewLRU()) // 8 sets, direct-mapped
	f := func(raw uint32) bool {
		line := uint64(raw)
		c.Access(line, false, 0)
		r := c.Access(line+8, false, 0) // same set (8 sets), different tag
		return r.Evicted && r.EvictedLine == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLRUOrder(t *testing.T) {
	c := New("c", 64*4, 4, NewLRU()) // 1 set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.Access(i, false, 0)
	}
	c.Access(0, false, 0) // 0 is now MRU; LRU order: 1,2,3,0
	r := c.Access(10, false, 0)
	if !r.Evicted || r.EvictedLine != 1 {
		t.Fatalf("LRU should evict line 1, got %+v", r)
	}
	r = c.Access(11, false, 0)
	if r.EvictedLine != 2 {
		t.Fatalf("next LRU victim should be 2, got %d", r.EvictedLine)
	}
}

func TestContainsDoesNotDisturb(t *testing.T) {
	c := New("c", 64*4, 4, NewLRU())
	for i := uint64(0); i < 4; i++ {
		c.Access(i, false, 0)
	}
	if !c.Contains(0) || c.Contains(99) {
		t.Fatal("Contains wrong")
	}
	before := c.Stats
	c.Contains(0) // must not touch LRU state or stats
	if c.Stats != before {
		t.Fatal("Contains must not change stats")
	}
	r := c.Access(10, false, 0)
	if r.EvictedLine != 0 {
		t.Fatalf("victim should still be 0 (Contains must not refresh LRU), got %d", r.EvictedLine)
	}
}

func TestInvalidateAndFlush(t *testing.T) {
	c := New("c", 64*4, 4, NewLRU())
	c.Access(1, true, 0)
	c.Access(2, false, 0)
	if p, d := c.Invalidate(1); !p || !d {
		t.Fatal("invalidate dirty line")
	}
	if p, _ := c.Invalidate(1); p {
		t.Fatal("double invalidate should miss")
	}
	if c.Contains(1) {
		t.Fatal("line still present after invalidate")
	}
	c.Access(3, true, 0)
	if d := c.Flush(); d != 1 {
		t.Fatalf("flush dropped %d dirty lines, want 1", d)
	}
	if c.Contains(2) || c.Contains(3) {
		t.Fatal("flush must empty the cache")
	}
}

func TestSetIndexingIsolation(t *testing.T) {
	// Lines mapping to different sets must not evict each other.
	c := New("c", 64*16, 1, NewLRU()) // 16 sets direct-mapped
	for i := uint64(0); i < 16; i++ {
		if r := c.Access(i, false, 0); r.Evicted {
			t.Fatalf("line %d caused eviction in an empty cache", i)
		}
	}
	for i := uint64(0); i < 16; i++ {
		if r := c.Access(i, false, 0); !r.Hit {
			t.Fatalf("line %d should hit", i)
		}
	}
}

// --- policy behaviour ---

func policyNames() map[string]func() Policy {
	return map[string]func() Policy{
		"LRU":        func() Policy { return NewLRU() },
		"Random":     func() Policy { return NewRandom(1) },
		"RRIP":       func() Policy { return NewRRIP() },
		"SHiP":       func() Policy { return NewSHiP() },
		"Mockingjay": func() Policy { return NewMockingjay() },
		"LCR":        func() Policy { return NewLCR() },
	}
}

func TestAllPoliciesFunctional(t *testing.T) {
	// Every policy must keep the cache coherent under a mixed workload:
	// hits for recently accessed lines, victims always valid ways.
	for name, mk := range policyNames() {
		t.Run(name, func(t *testing.T) {
			c := New("c", 16*1024, 8, mk())
			state := uint64(12345)
			for i := 0; i < 50000; i++ {
				state ^= state << 13
				state ^= state >> 7
				state ^= state << 17
				line := state % 4096
				c.Access(line, state&1 == 0, uint16(line>>4))
			}
			if c.Stats.Hits == 0 {
				t.Error("policy produced zero hits on a 4096-line footprint")
			}
			if c.Stats.Accesses != 50000 {
				t.Errorf("accesses = %d", c.Stats.Accesses)
			}
			if c.Stats.Hits+c.Stats.Misses != c.Stats.Accesses {
				t.Error("hits+misses != accesses")
			}
		})
	}
}

func TestRRIPIsScanResistant(t *testing.T) {
	// A small hot set plus a long streaming scan. LRU lets the scan wipe
	// out the hot lines; SRRIP inserts scans at distant RRPV while hits
	// promote hot lines to 0, so the hot set survives.
	run := func(p Policy) float64 {
		c := New("c", 64*8, 8, p) // 1 set, 8 ways
		scan := uint64(1000)
		for rep := 0; rep < 500; rep++ {
			for h := uint64(0); h < 4; h++ {
				c.Access(h, false, 1)
				c.Access(h, false, 1)
			}
			for s := 0; s < 12; s++ { // scan longer than capacity
				c.Access(scan, false, 2)
				scan++
			}
		}
		return c.Stats.HitRate()
	}
	lru := run(NewLRU())
	rrip := run(NewRRIP())
	if rrip <= lru {
		t.Errorf("RRIP hit rate (%v) should beat LRU (%v) under scans", rrip, lru)
	}
}

func TestSHiPLearnsDeadRegions(t *testing.T) {
	// Region A lines are reused; region B lines are touched once. SHiP
	// should learn to insert B lines dead, protecting A.
	ship := NewSHiP()
	c := New("c", 64*8, 8, ship)
	hot := []uint64{0, 1, 2, 3}
	cold := uint64(100)
	for i := 0; i < 4000; i++ {
		for _, h := range hot {
			c.Access(h, false, 7) // signature 7: reused
		}
		c.Access(cold, false, 999) // signature 999: streaming
		cold++
	}
	// After warmup, hot lines should hit nearly always.
	h0 := c.Stats.Hits
	a0 := c.Stats.Accesses
	for i := 0; i < 1000; i++ {
		for _, h := range hot {
			c.Access(h, false, 7)
		}
		c.Access(cold, false, 999)
		cold++
	}
	hotHits := float64(c.Stats.Hits-h0) / float64(c.Stats.Accesses-a0)
	if hotHits < 0.75 {
		t.Errorf("steady-state hit rate %v, want ≥0.75 (hot lines protected)", hotHits)
	}
}

func TestMockingjayPrefersDistantReuse(t *testing.T) {
	mj := NewMockingjay()
	c := New("c", 64*4, 4, mj)
	// Short-reuse lines (sig 1) and a one-shot stream (sig 2).
	for i := 0; i < 3000; i++ {
		c.Access(0, false, 1)
		c.Access(1, false, 1)
		c.Access(uint64(1000+i), false, 2)
	}
	// Lines 0 and 1 should be resident virtually always now.
	h0 := c.Stats.Hits
	for i := 0; i < 500; i++ {
		c.Access(0, false, 1)
		c.Access(1, false, 1)
		c.Access(uint64(50000+i), false, 2)
	}
	gained := c.Stats.Hits - h0
	if gained < 900 { // 1000 hot accesses in the tail
		t.Errorf("hot lines hit %d/1000 in steady state", gained)
	}
}

func TestLCRVictimSelection(t *testing.T) {
	lcr := NewLCR()
	c := New("c", 64*4, 4, lcr) // 1 set, 4 ways
	for i := uint64(0); i < 4; i++ {
		c.Access(i, false, 0)
	}
	// ways hold lines 0..3. Mark: way0 good/200, way1 bad/50, way2 bad/220, way3 good/10.
	lcr.SetHint(0, 0, true, 200)
	lcr.SetHint(0, 1, false, 50)
	lcr.SetHint(0, 2, false, 220)
	lcr.SetHint(0, 3, true, 10)
	if v := lcr.Victim(0); v != 2 {
		t.Fatalf("victim = way %d, want 2 (highest-scored bad line)", v)
	}
	lcr.SetHint(0, 2, true, 150)
	if v := lcr.Victim(0); v != 1 {
		t.Fatalf("victim = way %d, want 1 (only bad line)", v)
	}
	lcr.SetHint(0, 1, true, 90)
	if v := lcr.Victim(0); v != 3 {
		t.Fatalf("victim = way %d, want 3 (lowest-scored good line)", v)
	}
}

func TestLCRDefaultsToBadOnInsert(t *testing.T) {
	lcr := NewLCR()
	c := New("c", 64*2, 2, lcr)
	c.Access(0, false, 0)
	good, score := lcr.Hint(0, 0)
	if good || score != 128 {
		t.Fatalf("fresh insert hint = (%v,%d), want (false,128)", good, score)
	}
}

func TestLCRRetainsGoodLocalityLines(t *testing.T) {
	// Good-flagged lines must survive a stream of bad-flagged fills.
	lcr := NewLCR()
	c := New("c", 64*8, 8, lcr)
	c.Access(42, false, 0)
	// find its way and mark good with max confidence
	for w := 0; w < 8; w++ {
		if c.Contains(42) {
			break
		}
	}
	res := c.Access(42, false, 0)
	lcr.SetHint(res.Set, res.Way, true, 255)
	for i := uint64(100); i < 400; i++ {
		r := c.Access(i, false, 0)
		lcr.SetHint(r.Set, r.Way, false, 100)
	}
	if !c.Contains(42) {
		t.Error("good-locality line was evicted while bad lines streamed through")
	}
}

func TestStatsRates(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 || s.HitRate() != 0 {
		t.Error("empty stats should report 0 rates")
	}
	s = Stats{Accesses: 10, Hits: 3, Misses: 7}
	if s.MissRate() != 0.7 || s.HitRate() != 0.3 {
		t.Errorf("rates: %v %v", s.MissRate(), s.HitRate())
	}
}
