package cache

// LFU evicts the least-frequently-used line, with an aging shift so stale
// hot lines eventually decay. It underpins the RMCC-like baseline (§6.2 of
// the paper): RMCC retains frequently accessed counters near the memory
// controller, which an aged-LFU metadata cache approximates.
type LFU struct {
	ways   int
	count  []uint32
	stamp  []uint64
	clock  uint64
	agePer uint64 // halve counts every agePer touches
}

// NewLFU returns an aged LFU policy.
func NewLFU() *LFU { return &LFU{agePer: 8192} }

// Name implements Policy.
func (p *LFU) Name() string { return "LFU" }

// Reset implements Policy.
func (p *LFU) Reset(sets, ways int) {
	p.ways = ways
	p.count = make([]uint32, sets*ways)
	p.stamp = make([]uint64, sets*ways)
	p.clock = 0
}

func (p *LFU) tick(set, way int) {
	p.clock++
	i := set*p.ways + way
	p.stamp[i] = p.clock
	if p.count[i] < 1<<30 {
		p.count[i]++
	}
	if p.clock%p.agePer == 0 {
		for j := range p.count {
			p.count[j] >>= 1
		}
	}
}

// OnHit implements Policy.
func (p *LFU) OnHit(set, way int, _ Event) { p.tick(set, way) }

// OnInsert implements Policy.
func (p *LFU) OnInsert(set, way int, _ Event) {
	p.count[set*p.ways+way] = 0
	p.tick(set, way)
}

// OnEvict implements Policy.
func (p *LFU) OnEvict(int, int) {}

// Victim implements Policy: lowest count, oldest stamp breaking ties.
func (p *LFU) Victim(set int) int {
	base := set * p.ways
	victim := 0
	for w := 1; w < p.ways; w++ {
		vi, wi := base+victim, base+w
		if p.count[wi] < p.count[vi] ||
			(p.count[wi] == p.count[vi] && p.stamp[wi] < p.stamp[vi]) {
			victim = w
		}
	}
	return victim
}

// DRRIP is dynamic RRIP (Jaleel et al.): set-dueling between SRRIP and
// BRRIP (bimodal long-insertion) so thrashing working sets degrade to
// scan-through behaviour. Included for the ablation benches.
type DRRIP struct {
	ways  int
	sets  int
	maxRR uint8
	rrpv  []uint8

	psel    int // policy selector: ≥0 favours SRRIP
	pselMax int
	brCtr   uint32 // BRRIP bimodal counter
}

// NewDRRIP returns the dynamic policy with 2-bit RRPVs.
func NewDRRIP() *DRRIP { return &DRRIP{maxRR: 3, pselMax: 1 << 9} }

// Name implements Policy.
func (p *DRRIP) Name() string { return "DRRIP" }

// Reset implements Policy.
func (p *DRRIP) Reset(sets, ways int) {
	p.sets, p.ways = sets, ways
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = p.maxRR
	}
	p.psel = 0
}

// leader classifies a set: 0 = SRRIP leader, 1 = BRRIP leader, 2 = follower.
func (p *DRRIP) leader(set int) int {
	switch set & 63 {
	case 0:
		return 0
	case 32:
		return 1
	}
	return 2
}

// OnHit implements Policy.
func (p *DRRIP) OnHit(set, way int, _ Event) {
	p.rrpv[set*p.ways+way] = 0
}

// OnInsert implements Policy.
func (p *DRRIP) OnInsert(set, way int, _ Event) {
	useBR := false
	switch p.leader(set) {
	case 0: // SRRIP leader: a miss here is a point against SRRIP
		if p.psel > -p.pselMax {
			p.psel--
		}
	case 1:
		if p.psel < p.pselMax {
			p.psel++
		}
		useBR = true
	default:
		useBR = p.psel > 0
	}
	i := set*p.ways + way
	if useBR {
		// BRRIP: distant insertion, occasionally long (1/32).
		p.brCtr++
		if p.brCtr%32 == 0 {
			p.rrpv[i] = p.maxRR - 1
		} else {
			p.rrpv[i] = p.maxRR
		}
	} else {
		p.rrpv[i] = p.maxRR - 1
	}
}

// OnEvict implements Policy.
func (p *DRRIP) OnEvict(int, int) {}

// Victim implements Policy.
func (p *DRRIP) Victim(set int) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] >= p.maxRR {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}
