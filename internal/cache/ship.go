package cache

// SHiP implements signature-based hit prediction (Wu et al. MICRO'11) as
// configured in the paper's Fig 5 study: a 16,384-entry SHCT of saturating
// counters indexed by the access signature, driving RRIP insertion with a
// maximum RRPV of 7.
type SHiP struct {
	ways  int
	maxRR uint8
	rrpv  []uint8

	shctSize int
	shct     []uint8 // 3-bit saturating counters

	sig    []uint16 // per-line inserting signature
	reused []bool   // per-line outcome bit
}

// SHiP hardware parameters from §3.3 of the paper.
const (
	shipSHCTEntries = 16384
	shipMaxRRPV     = 7
	shipCtrMax      = 7
)

// NewSHiP returns SHiP with the paper's table sizes.
func NewSHiP() *SHiP {
	return &SHiP{maxRR: shipMaxRRPV, shctSize: shipSHCTEntries}
}

// Name implements Policy.
func (p *SHiP) Name() string { return "SHiP" }

// Reset implements Policy.
func (p *SHiP) Reset(sets, ways int) {
	p.ways = ways
	n := sets * ways
	p.rrpv = make([]uint8, n)
	for i := range p.rrpv {
		p.rrpv[i] = p.maxRR
	}
	p.shct = make([]uint8, p.shctSize)
	for i := range p.shct {
		p.shct[i] = 1 // weakly no-reuse
	}
	p.sig = make([]uint16, n)
	p.reused = make([]bool, n)
}

func (p *SHiP) shctIndex(sig uint16) int { return int(sig) & (p.shctSize - 1) }

// OnHit implements Policy: promote and train the signature toward reuse.
func (p *SHiP) OnHit(set, way int, _ Event) {
	i := set*p.ways + way
	p.rrpv[i] = 0
	if !p.reused[i] {
		p.reused[i] = true
		if c := &p.shct[p.shctIndex(p.sig[i])]; *c < shipCtrMax {
			*c++
		}
	}
}

// OnInsert implements Policy: insertion RRPV depends on the signature's
// learned reuse behaviour.
func (p *SHiP) OnInsert(set, way int, ev Event) {
	i := set*p.ways + way
	p.sig[i] = ev.Sig
	p.reused[i] = false
	if p.shct[p.shctIndex(ev.Sig)] == 0 {
		p.rrpv[i] = p.maxRR // predicted dead on arrival
	} else {
		p.rrpv[i] = p.maxRR - 1
	}
}

// OnEvict implements Policy: an eviction without reuse trains the signature
// toward no-reuse.
func (p *SHiP) OnEvict(set, way int) {
	i := set*p.ways + way
	if !p.reused[i] {
		if c := &p.shct[p.shctIndex(p.sig[i])]; *c > 0 {
			*c--
		}
	}
}

// Victim implements Policy (RRIP scan with aging).
func (p *SHiP) Victim(set int) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] >= p.maxRR {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}
