package cache

// Mockingjay approximates the Mockingjay replacement policy (Shah, Jain &
// Lin, HPCA'22) as described in the paper's Fig 5 study: a sampled cache of
// 4,096 entries dynamically learns reuse distances per signature; every
// cached line carries an estimated time of arrival (ETA) and the victim is
// the line with the largest ETA.
type Mockingjay struct {
	ways int
	eta  []uint64 // per-line estimated next-arrival time

	// Reuse-distance predictor: per-signature exponential average.
	rdp      []float64
	rdpValid []bool

	// Sampler: maps sampled line tags to their last access time + sig.
	samplerSize int
	samplerKey  []uint64
	samplerTime []uint64
	samplerSig  []uint16
	samplerUsed []bool

	defaultRD uint64
}

// Mockingjay parameters from §3.3 of the paper (4,096-entry sampler).
const (
	mjSamplerEntries = 4096
	mjRDPEntries     = 4096
	mjDefaultRD      = 1 << 14
)

// NewMockingjay returns the policy with the paper's sampler size.
func NewMockingjay() *Mockingjay {
	return &Mockingjay{samplerSize: mjSamplerEntries, defaultRD: mjDefaultRD}
}

// Name implements Policy.
func (p *Mockingjay) Name() string { return "Mockingjay" }

// Reset implements Policy.
func (p *Mockingjay) Reset(sets, ways int) {
	p.ways = ways
	p.eta = make([]uint64, sets*ways)
	p.rdp = make([]float64, mjRDPEntries)
	p.rdpValid = make([]bool, mjRDPEntries)
	p.samplerKey = make([]uint64, p.samplerSize)
	p.samplerTime = make([]uint64, p.samplerSize)
	p.samplerSig = make([]uint16, p.samplerSize)
	p.samplerUsed = make([]bool, p.samplerSize)
}

func (p *Mockingjay) predictRD(sig uint16) uint64 {
	i := int(sig) & (mjRDPEntries - 1)
	if !p.rdpValid[i] {
		return p.defaultRD
	}
	return uint64(p.rdp[i])
}

func (p *Mockingjay) train(sig uint16, observedRD uint64) {
	i := int(sig) & (mjRDPEntries - 1)
	if !p.rdpValid[i] {
		p.rdp[i] = float64(observedRD)
		p.rdpValid[i] = true
		return
	}
	p.rdp[i] = 0.75*p.rdp[i] + 0.25*float64(observedRD)
}

// sample records the access in the sampled cache (direct-mapped by tag) and
// trains the RDP when the same line recurs.
func (p *Mockingjay) sample(ev Event) {
	slot := int(ev.Tag % uint64(p.samplerSize))
	if p.samplerUsed[slot] && p.samplerKey[slot] == ev.Tag {
		p.train(p.samplerSig[slot], ev.Seq-p.samplerTime[slot])
	}
	p.samplerKey[slot] = ev.Tag
	p.samplerTime[slot] = ev.Seq
	p.samplerSig[slot] = ev.Sig
	p.samplerUsed[slot] = true
}

// OnHit implements Policy.
func (p *Mockingjay) OnHit(set, way int, ev Event) {
	p.sample(ev)
	p.eta[set*p.ways+way] = ev.Seq + p.predictRD(ev.Sig)
}

// OnInsert implements Policy.
func (p *Mockingjay) OnInsert(set, way int, ev Event) {
	p.sample(ev)
	p.eta[set*p.ways+way] = ev.Seq + p.predictRD(ev.Sig)
}

// OnEvict implements Policy.
func (p *Mockingjay) OnEvict(int, int) {}

// Victim implements Policy: evict the line expected to return furthest in
// the future.
func (p *Mockingjay) Victim(set int) int {
	base := set * p.ways
	victim, worst := 0, p.eta[base]
	for w := 1; w < p.ways; w++ {
		if p.eta[base+w] > worst {
			victim, worst = w, p.eta[base+w]
		}
	}
	return victim
}
