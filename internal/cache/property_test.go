package cache

import (
	"testing"

	"cosmos/internal/rl"
)

// refLRU is a slow, obviously-correct LRU cache used to verify the packed
// implementation under random workloads.
type refLRU struct {
	sets, ways int
	lines      [][]refLine // per set, index 0 = MRU
}

type refLine struct {
	line  uint64
	dirty bool
}

func newRefLRU(sets, ways int) *refLRU {
	return &refLRU{sets: sets, ways: ways, lines: make([][]refLine, sets)}
}

func (r *refLRU) access(line uint64, write bool) (hit bool, evicted uint64, evDirty, didEvict bool) {
	set := int(line % uint64(r.sets))
	s := r.lines[set]
	for i := range s {
		if s[i].line == line {
			entry := s[i]
			entry.dirty = entry.dirty || write
			copy(s[1:i+1], s[:i])
			s[0] = entry
			return true, 0, false, false
		}
	}
	entry := refLine{line: line, dirty: write}
	if len(s) < r.ways {
		r.lines[set] = append([]refLine{entry}, s...)
		return false, 0, false, false
	}
	victim := s[len(s)-1]
	copy(s[1:], s[:len(s)-1])
	s[0] = entry
	return false, victim.line, victim.dirty, true
}

func TestCacheMatchesReferenceLRU(t *testing.T) {
	const sets, ways = 16, 4
	c := New("c", sets*ways*64, ways, NewLRU())
	ref := newRefLRU(sets, ways)
	rng := rl.NewRand(21)

	for i := 0; i < 100000; i++ {
		line := rng.Uint64() % 256
		write := rng.Intn(3) == 0
		got := c.Access(line, write, 0)
		hit, evLine, evDirty, didEvict := ref.access(line, write)
		if got.Hit != hit {
			t.Fatalf("step %d line %d: hit=%v ref=%v", i, line, got.Hit, hit)
		}
		if got.Evicted != didEvict {
			t.Fatalf("step %d line %d: evicted=%v ref=%v", i, line, got.Evicted, didEvict)
		}
		if didEvict && (got.EvictedLine != evLine || got.EvictedDirty != evDirty) {
			t.Fatalf("step %d line %d: victim (%d,%v), ref (%d,%v)",
				i, line, got.EvictedLine, got.EvictedDirty, evLine, evDirty)
		}
	}
}

func TestAllPoliciesVictimAlwaysValid(t *testing.T) {
	// Fuzz every policy: victims must always index a valid way, and the
	// cache must never lose a line it claims to hold.
	for name, mk := range policyNames() {
		t.Run(name, func(t *testing.T) {
			c := New("c", 8*1024, 4, mk())
			rng := rl.NewRand(5)
			recent := map[uint64]bool{}
			for i := 0; i < 30000; i++ {
				line := rng.Uint64() % 2048
				r := c.Access(line, rng.Intn(2) == 0, uint16(line))
				if !c.Contains(line) {
					t.Fatalf("line %d absent immediately after access", line)
				}
				if r.Evicted {
					delete(recent, r.EvictedLine)
				}
				recent[line] = true
			}
		})
	}
}

func TestLCRStorageConstant(t *testing.T) {
	if StorageBitsPerLine != 9 {
		t.Fatalf("LCR metadata is %d bits/line, Table 2 says 9", StorageBitsPerLine)
	}
}
