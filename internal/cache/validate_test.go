package cache

import (
	"strings"
	"testing"
)

func TestValidateGeometry(t *testing.T) {
	ok := []struct {
		size, ways int
	}{
		{32 << 10, 8}, {1 << 20, 16}, {64, 1}, {512, 8},
	}
	for _, c := range ok {
		if err := ValidateGeometry("t", c.size, c.ways); err != nil {
			t.Errorf("ValidateGeometry(%d, %d) rejected valid geometry: %v", c.size, c.ways, err)
		}
	}
	bad := []struct {
		size, ways int
		want       string
	}{
		{0, 8, "must be positive"},
		{-64, 8, "must be positive"},
		{32 << 10, 0, "must be positive"},
		{32 << 10, -2, "must be positive"},
		{100, 1, "not a multiple"},
		{48 << 10, 8, "not a power of two"},
	}
	for _, c := range bad {
		err := ValidateGeometry("t", c.size, c.ways)
		if err == nil {
			t.Errorf("ValidateGeometry(%d, %d) accepted invalid geometry", c.size, c.ways)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ValidateGeometry(%d, %d) = %q, want mention of %q", c.size, c.ways, err, c.want)
		}
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted non-power-of-two set count")
		}
	}()
	New("bad", 48<<10, 8, NewLRU())
}

func TestFlushLines(t *testing.T) {
	c := New("t", 64*16, 2, NewLRU()) // 8 sets x 2 ways
	c.Access(10, false, 0)
	c.Access(20, true, 0)
	c.Access(30, false, 0)
	got := map[uint64]bool{}
	c.FlushLines(func(line uint64, dirty bool) {
		got[line] = dirty
		// Re-entrancy: the callback may refill the cache (crash recovery
		// walks the tree, which touches the metadata cache).
		c.Access(line+100, false, 0)
	})
	want := map[uint64]bool{10: false, 20: true, 30: false}
	if len(got) != len(want) {
		t.Fatalf("FlushLines visited %v, want %v", got, want)
	}
	for line, dirty := range want {
		if got[line] != dirty {
			t.Fatalf("line %d dirty = %v, want %v (all: %v)", line, got[line], dirty, got)
		}
	}
	// The refills from inside the callback survive; the originals are gone.
	if r := c.Access(20, false, 0); r.Hit {
		t.Fatal("flushed line still resident")
	}
	if r := c.Access(110, false, 0); !r.Hit {
		t.Fatal("callback refill was lost")
	}
}
