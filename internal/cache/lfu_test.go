package cache

import "testing"

func TestLFURetainsHotLines(t *testing.T) {
	lfu := NewLFU()
	c := New("c", 64*4, 4, lfu) // 1 set, 4 ways
	// Make lines 0 and 1 hot.
	for i := 0; i < 50; i++ {
		c.Access(0, false, 0)
		c.Access(1, false, 0)
	}
	c.Access(2, false, 0)
	c.Access(3, false, 0)
	// A streaming sequence must evict among the cold lines only.
	for i := uint64(10); i < 40; i++ {
		c.Access(i, false, 0)
	}
	if !c.Contains(0) || !c.Contains(1) {
		t.Fatal("LFU evicted hot lines during a scan")
	}
}

func TestLFUAgingAllowsTurnover(t *testing.T) {
	lfu := NewLFU()
	lfu.agePer = 64 // age fast for the test
	c := New("c", 64*2, 2, lfu)
	for i := 0; i < 100; i++ {
		c.Access(0, false, 0) // very hot... for a while
	}
	c.Access(1, false, 0)
	// Now line 1 becomes the hot one; aging must let it displace 0's
	// legacy count eventually.
	for i := 0; i < 400; i++ {
		c.Access(1, false, 0)
		c.Access(uint64(10+i%2), false, 0) // churn pressure
	}
	if !c.Contains(1) {
		t.Fatal("new hot line not retained")
	}
}

func TestLFUVictimTieBreak(t *testing.T) {
	lfu := NewLFU()
	c := New("c", 64*3, 3, lfu)
	c.Access(0, false, 0)
	c.Access(1, false, 0)
	c.Access(2, false, 0)
	// Equal counts: the oldest (0) is the victim.
	r := c.Access(9, false, 0)
	if r.EvictedLine != 0 {
		t.Fatalf("victim %d, want 0 (oldest at equal frequency)", r.EvictedLine)
	}
}

func TestDRRIPFunctional(t *testing.T) {
	c := New("c", 32*1024, 8, NewDRRIP())
	state := uint64(7)
	for i := 0; i < 100000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		c.Access(state%8192, false, uint16(state))
	}
	if c.Stats.Hits == 0 || c.Stats.Hits+c.Stats.Misses != c.Stats.Accesses {
		t.Fatalf("stats broken: %+v", c.Stats)
	}
}

func TestDRRIPBeatsSRRIPOnThrash(t *testing.T) {
	// Cyclic working set slightly larger than the cache: SRRIP thrashes
	// (hit rate ≈ 0); DRRIP's BRRIP mode retains a fraction.
	run := func(p Policy) float64 {
		c := New("c", 64*16*64, 16, p) // 64 sets × 16 ways = 1024 lines
		for rep := 0; rep < 60; rep++ {
			for i := uint64(0); i < 1500; i++ { // 1.5× capacity
				c.Access(i, false, 1)
			}
		}
		return c.Stats.HitRate()
	}
	srrip := run(NewRRIP())
	drrip := run(NewDRRIP())
	if drrip <= srrip {
		t.Fatalf("DRRIP (%v) should beat SRRIP (%v) on a thrashing loop", drrip, srrip)
	}
}
