package cache

// RRIP implements static re-reference interval prediction (SRRIP, Jaleel et
// al. ISCA'10) as configured in the paper's Fig 5 study: 2-bit RRPVs with
// insertion value 2 and maximum 3.
type RRIP struct {
	ways   int
	maxRR  uint8
	insRR  uint8
	rrpv   []uint8
	hitPro bool // promote to RRPV 0 on hit (hit-priority)
}

// NewRRIP builds SRRIP with the paper's parameters (insert 2, max 3).
func NewRRIP() *RRIP { return &RRIP{maxRR: 3, insRR: 2, hitPro: true} }

// NewRRIPWith allows custom insertion/max RRPV for ablation benches.
func NewRRIPWith(insert, max uint8) *RRIP {
	if insert > max {
		insert = max
	}
	return &RRIP{maxRR: max, insRR: insert, hitPro: true}
}

// Name implements Policy.
func (p *RRIP) Name() string { return "RRIP" }

// Reset implements Policy.
func (p *RRIP) Reset(sets, ways int) {
	p.ways = ways
	p.rrpv = make([]uint8, sets*ways)
	for i := range p.rrpv {
		p.rrpv[i] = p.maxRR
	}
}

// OnHit implements Policy.
func (p *RRIP) OnHit(set, way int, _ Event) {
	if p.hitPro {
		p.rrpv[set*p.ways+way] = 0
	} else if v := &p.rrpv[set*p.ways+way]; *v > 0 {
		*v--
	}
}

// OnInsert implements Policy.
func (p *RRIP) OnInsert(set, way int, _ Event) {
	p.rrpv[set*p.ways+way] = p.insRR
}

// OnEvict implements Policy.
func (p *RRIP) OnEvict(int, int) {}

// Victim implements Policy: find a way at max RRPV, aging the set until one
// appears.
func (p *RRIP) Victim(set int) int {
	base := set * p.ways
	for {
		for w := 0; w < p.ways; w++ {
			if p.rrpv[base+w] >= p.maxRR {
				return w
			}
		}
		for w := 0; w < p.ways; w++ {
			p.rrpv[base+w]++
		}
	}
}
