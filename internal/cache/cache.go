// Package cache implements the set-associative caches used throughout the
// simulator — data caches (L1/L2/LLC), the counter (CTR) cache, and the
// locality-centric LCR-CTR cache — with pluggable replacement policies:
// LRU, Random, RRIP, SHiP, Mockingjay and the paper's LCR policy
// (Algorithm 2).
package cache

import (
	"fmt"

	"cosmos/internal/telemetry"
)

// Policy decides which way of a set to evict and observes hits, fills and
// evictions so it can maintain its own recency/reuse state. Policies are
// sized by Reset before first use.
type Policy interface {
	Name() string
	// Reset (re)initialises the policy for a cache with the given geometry.
	Reset(sets, ways int)
	// OnHit is invoked when an access hits way `way` of set `set`.
	OnHit(set, way int, ev Event)
	// OnInsert is invoked when a line is filled into way `way` of `set`.
	OnInsert(set, way int, ev Event)
	// OnEvict is invoked just before the line in (set, way) is replaced.
	OnEvict(set, way int)
	// Victim selects the way to evict from a full set.
	Victim(set int) int
}

// Event carries access context to the policy: the line tag, a region
// signature standing in for the PC (used by SHiP and Mockingjay), and the
// cache-local access sequence number.
type Event struct {
	Tag uint64
	Sig uint16
	Seq uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Stats accumulates hit/miss/traffic counters for one cache.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns Misses/Accesses (0 if no accesses).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns Hits/Accesses (0 if no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative cache indexed by cache-line number
// (byte address >> 6). It is a tag store only: data payloads live in the
// functional layer (internal/enclave), not here.
type Cache struct {
	name  string
	sets  int
	ways  int
	lines []line // sets*ways, row-major
	pol   Policy
	seq   uint64

	Stats Stats
}

// Result reports the outcome of an Access.
type Result struct {
	Hit          bool
	Set, Way     int
	Evicted      bool
	EvictedLine  uint64 // line number of the victim, valid when Evicted
	EvictedDirty bool
}

// ValidateGeometry checks a (size, ways) pair the way New would, but returns
// a descriptive error instead of panicking. Config validation calls it so
// bad geometry is rejected at the API boundary rather than deep in Step.
func ValidateGeometry(name string, sizeBytes, ways int) error {
	const lineSize = 64
	if sizeBytes <= 0 {
		return fmt.Errorf("cache %s: size %d must be positive", name, sizeBytes)
	}
	if ways <= 0 {
		return fmt.Errorf("cache %s: ways %d must be positive", name, ways)
	}
	if sizeBytes%(ways*lineSize) != 0 {
		return fmt.Errorf("cache %s: size %d not a multiple of ways(%d) x %dB lines",
			name, sizeBytes, ways, lineSize)
	}
	sets := sizeBytes / (ways * lineSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d (size %d / ways %d) not a power of two",
			name, sets, sizeBytes, ways)
	}
	return nil
}

// New builds a cache of sizeBytes capacity with the given associativity and
// 64-byte lines. The number of sets must come out a power of two.
func New(name string, sizeBytes, ways int, pol Policy) *Cache {
	if err := ValidateGeometry(name, sizeBytes, ways); err != nil {
		panic(err.Error())
	}
	sets := sizeBytes / (ways * 64)
	c := &Cache{name: name, sets: sets, ways: ways, lines: make([]line, sets*ways), pol: pol}
	pol.Reset(sets, ways)
	return c
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * 64 }

// Policy exposes the replacement policy (e.g. to feed LCR hints).
func (c *Cache) Policy() Policy { return c.pol }

func (c *Cache) index(lineNum uint64) (set int, tag uint64) {
	return int(lineNum & uint64(c.sets-1)), lineNum >> uint(log2(c.sets))
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// RegisterMetrics registers this cache's hit/miss/eviction/writeback
// counters and per-interval hit/miss rates under the given telemetry scope.
// The counters are sampled by pointer, so registration adds no cost to
// Access.
func (c *Cache) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("accesses", &c.Stats.Accesses)
	s.Counter("hits", &c.Stats.Hits)
	s.Counter("misses", &c.Stats.Misses)
	s.Counter("evictions", &c.Stats.Evictions)
	s.Counter("writebacks", &c.Stats.Writebacks)
	s.RateOf("hit_rate", &c.Stats.Hits, &c.Stats.Accesses)
	s.RateOf("miss_rate", &c.Stats.Misses, &c.Stats.Accesses)
}

// Access performs a load or store of the given cache-line number, filling on
// miss and evicting per the policy. sig tags the access's code region.
func (c *Cache) Access(lineNum uint64, write bool, sig uint16) Result {
	c.Stats.Accesses++
	c.seq++
	set, tag := c.index(lineNum)
	base := set * c.ways
	ev := Event{Tag: tag, Sig: sig, Seq: c.seq}

	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			c.Stats.Hits++
			if write {
				ln.dirty = true
			}
			c.pol.OnHit(set, w, ev)
			return Result{Hit: true, Set: set, Way: w}
		}
	}

	c.Stats.Misses++
	res := Result{Set: set}
	// Prefer an invalid way.
	way := -1
	for w := 0; w < c.ways; w++ {
		if !c.lines[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = c.pol.Victim(set)
		if way < 0 || way >= c.ways {
			panic(fmt.Sprintf("cache %s: policy %s returned invalid victim %d", c.name, c.pol.Name(), way))
		}
		victim := &c.lines[base+way]
		c.Stats.Evictions++
		res.Evicted = true
		res.EvictedLine = victim.tag<<uint(log2(c.sets)) | uint64(set)
		res.EvictedDirty = victim.dirty
		if victim.dirty {
			c.Stats.Writebacks++
		}
		c.pol.OnEvict(set, way)
	}
	c.lines[base+way] = line{tag: tag, valid: true, dirty: write}
	c.pol.OnInsert(set, way, ev)
	res.Way = way
	return res
}

// Contains probes for the line without disturbing replacement state or
// statistics. It is used to validate data-location predictions.
func (c *Cache) Contains(lineNum uint64) bool {
	set, tag := c.index(lineNum)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].valid && c.lines[base+w].tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line if present, returning whether it was dirty.
func (c *Cache) Invalidate(lineNum uint64) (present, dirty bool) {
	set, tag := c.index(lineNum)
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			d := ln.dirty
			ln.valid = false
			ln.dirty = false
			return true, d
		}
	}
	return false, false
}

// Flush invalidates every line, returning the number of dirty lines dropped.
func (c *Cache) Flush() (dirty int) {
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			dirty++
		}
		c.lines[i] = line{}
	}
	return dirty
}

// FlushLines invalidates every line and reports each former resident to fn.
// The tag array is cleared before the first callback, so fn may refill the
// cache (crash recovery re-verifies dirty metadata, which walks back through
// this cache) without the walk observing stale entries.
func (c *Cache) FlushLines(fn func(lineNum uint64, dirty bool)) {
	type victim struct {
		line  uint64
		dirty bool
	}
	victims := make([]victim, 0, len(c.lines))
	shift := uint(log2(c.sets))
	for i := range c.lines {
		if !c.lines[i].valid {
			continue
		}
		set := i / c.ways
		victims = append(victims, victim{
			line:  c.lines[i].tag<<shift | uint64(set),
			dirty: c.lines[i].dirty,
		})
		c.lines[i] = line{}
	}
	for _, v := range victims {
		fn(v.line, v.dirty)
	}
}
