// Package cache implements the set-associative caches used throughout the
// simulator — data caches (L1/L2/LLC), the counter (CTR) cache, and the
// locality-centric LCR-CTR cache — with pluggable replacement policies:
// LRU, Random, RRIP, SHiP, Mockingjay and the paper's LCR policy
// (Algorithm 2).
package cache

import (
	"fmt"
	"math/bits"

	"cosmos/internal/telemetry"
)

// Policy decides which way of a set to evict and observes hits, fills and
// evictions so it can maintain its own recency/reuse state. Policies are
// sized by Reset before first use.
type Policy interface {
	Name() string
	// Reset (re)initialises the policy for a cache with the given geometry.
	Reset(sets, ways int)
	// OnHit is invoked when an access hits way `way` of set `set`.
	OnHit(set, way int, ev Event)
	// OnInsert is invoked when a line is filled into way `way` of `set`.
	OnInsert(set, way int, ev Event)
	// OnEvict is invoked just before the line in (set, way) is replaced.
	OnEvict(set, way int)
	// Victim selects the way to evict from a full set.
	Victim(set int) int
}

// Event carries access context to the policy: the line tag, a region
// signature standing in for the PC (used by SHiP and Mockingjay), and the
// cache-local access sequence number.
type Event struct {
	Tag uint64
	Sig uint16
	Seq uint64
}

// Stats accumulates hit/miss/traffic counters for one cache.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns Misses/Accesses (0 if no accesses).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns Hits/Accesses (0 if no accesses).
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is a set-associative cache indexed by cache-line number
// (byte address >> 6). It is a tag store only: data payloads live in the
// functional layer (internal/enclave), not here.
//
// The tag store is laid out for the probe loop: one contiguous uint64 tag
// array (sets*ways, row-major) plus per-set valid/dirty bitmasks, so a
// lookup scans packed tags guided by a popcount walk over the valid mask
// and victim selection finds a free way with one trailing-zeros
// instruction. Set index and tag shift are precomputed at construction.
type Cache struct {
	name  string
	sets  int
	ways  int
	shift uint   // log2(sets): tag = line >> shift
	mask  uint64 // sets - 1
	wmask uint64 // ways low bits set: the full-set valid mask

	tags  []uint64 // sets*ways line tags, row-major
	valid []uint64 // per-set way-occupancy bitmask
	dirty []uint64 // per-set dirty bitmask
	// partial holds the low byte of every way's tag, eight ways packed per
	// uint64 (pw words per set), so a lookup compares all ways at once with
	// a SWAR zero-byte scan and only candidate ways touch the full tag
	// array. Bytes of invalid ways are stale; candidates are verified
	// against the valid mask and the full tag, so stale or colliding bytes
	// cost one extra compare, never a wrong answer.
	partial []uint64
	pw      int // partial words per set: (ways+7)/8

	pol Policy
	// lru is set when pol is the plain LRU policy; its touch/victim
	// callbacks are then inlined on the hot path instead of dispatched
	// through the Policy interface. Semantics are identical.
	lru *LRU
	seq uint64

	// MRU-repeat memo (LRU caches only): the line, set and way of the most
	// recent access. A repeat of that line is answered without lookup or
	// policy work — the line is necessarily still resident (the most
	// recently touched way is never the eviction victim, and any fill that
	// displaces it retargets the memo) and already at the MRU position, so
	// only the hit counters and the dirty bit need updating. lastLine is
	// ^0 when no memo is valid.
	lastLine         uint64
	lastSet, lastWay int

	Stats Stats
}

// Result reports the outcome of an Access.
type Result struct {
	Hit          bool
	Set, Way     int
	Evicted      bool
	EvictedLine  uint64 // line number of the victim, valid when Evicted
	EvictedDirty bool
}

// ValidateGeometry checks a (size, ways) pair the way New would, but returns
// a descriptive error instead of panicking. Config validation calls it so
// bad geometry is rejected at the API boundary rather than deep in Step.
func ValidateGeometry(name string, sizeBytes, ways int) error {
	const lineSize = 64
	if sizeBytes <= 0 {
		return fmt.Errorf("cache %s: size %d must be positive", name, sizeBytes)
	}
	if ways <= 0 {
		return fmt.Errorf("cache %s: ways %d must be positive", name, ways)
	}
	if ways > 64 {
		return fmt.Errorf("cache %s: ways %d exceeds the supported maximum of 64", name, ways)
	}
	if sizeBytes%(ways*lineSize) != 0 {
		return fmt.Errorf("cache %s: size %d not a multiple of ways(%d) x %dB lines",
			name, sizeBytes, ways, lineSize)
	}
	sets := sizeBytes / (ways * lineSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d (size %d / ways %d) not a power of two",
			name, sets, sizeBytes, ways)
	}
	return nil
}

// New builds a cache of sizeBytes capacity with the given associativity and
// 64-byte lines. The number of sets must come out a power of two; ways is
// capped at 64 (the bitmask width).
func New(name string, sizeBytes, ways int, pol Policy) *Cache {
	if err := ValidateGeometry(name, sizeBytes, ways); err != nil {
		panic(err.Error())
	}
	sets := sizeBytes / (ways * 64)
	pw := (ways + 7) / 8
	c := &Cache{
		name:    name,
		sets:    sets,
		ways:    ways,
		shift:   uint(log2(sets)),
		mask:    uint64(sets - 1),
		wmask:   ^uint64(0) >> (64 - uint(ways)),
		tags:    make([]uint64, sets*ways),
		valid:   make([]uint64, sets),
		dirty:   make([]uint64, sets),
		partial: make([]uint64, sets*pw),
		pw:      pw,
		pol:     pol,
	}
	if l, ok := pol.(*LRU); ok {
		c.lru = l
	}
	c.lastLine = ^uint64(0)
	pol.Reset(sets, ways)
	return c
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SizeBytes returns the capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * 64 }

// Policy exposes the replacement policy (e.g. to feed LCR hints).
func (c *Cache) Policy() Policy { return c.pol }

func (c *Cache) index(lineNum uint64) (set int, tag uint64) {
	return int(lineNum & c.mask), lineNum >> c.shift
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// SWAR constants: lsb repeats 0x01 in every byte, msb repeats 0x80.
const (
	swarLSB = 0x0101010101010101
	swarMSB = 0x8080808080808080
)

// findWay returns the way holding tag in set, or -1. The partial-tag words
// narrow the search with a SWAR zero-byte scan — a miss usually costs one
// word load per eight ways instead of a tag walk — and each candidate is
// confirmed against the valid mask and the full tag. The zero-byte trick can
// flag false positives in bytes above a true zero byte (borrow propagation);
// they fail the confirm and cost nothing else. Fills are miss-only, so at
// most one valid way can match and candidate order is irrelevant.
func (c *Cache) findWay(base, set int, valid, tag uint64) int {
	pb := uint64(uint8(tag)) * swarLSB
	pbase := set * c.pw
	for wd := 0; wd < c.pw; wd++ {
		x := c.partial[pbase+wd] ^ pb
		for m := (x - swarLSB) &^ x & swarMSB; m != 0; m &= m - 1 {
			w := wd<<3 | bits.TrailingZeros64(m)>>3
			if valid>>uint(w)&1 != 0 && c.tags[base+w] == tag {
				return w
			}
		}
	}
	return -1
}

// setPartial records the low tag byte of (set, way) in the packed array.
func (c *Cache) setPartial(set, way int, b uint8) {
	i := set*c.pw + way>>3
	sh := uint(way&7) * 8
	c.partial[i] = c.partial[i]&^(0xff<<sh) | uint64(b)<<sh
}

// RegisterMetrics registers this cache's hit/miss/eviction/writeback
// counters and per-interval hit/miss rates under the given telemetry scope.
// The counters are sampled by pointer, so registration adds no cost to
// Access.
func (c *Cache) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("accesses", &c.Stats.Accesses)
	s.Counter("hits", &c.Stats.Hits)
	s.Counter("misses", &c.Stats.Misses)
	s.Counter("evictions", &c.Stats.Evictions)
	s.Counter("writebacks", &c.Stats.Writebacks)
	s.RateOf("hit_rate", &c.Stats.Hits, &c.Stats.Accesses)
	s.RateOf("miss_rate", &c.Stats.Misses, &c.Stats.Accesses)
}

// Access performs a load or store of the given cache-line number, filling on
// miss and evicting per the policy. sig tags the access's code region.
func (c *Cache) Access(lineNum uint64, write bool, sig uint16) Result {
	hit, set, way, evLine, ev, evDirty := c.probe(lineNum, write, sig)
	return Result{Hit: hit, Set: set, Way: way, Evicted: ev, EvictedLine: evLine, EvictedDirty: evDirty}
}

// probe is the access engine behind Access: identical semantics, but the
// outcome comes back in registers instead of a Result struct, which is what
// the Level.Probe hot path wants — the struct fill-and-copy is measurable at
// simulator access rates. Exported callers go through the Access wrapper.
func (c *Cache) probe(lineNum uint64, write bool, sig uint16) (hit bool, set, way int, evictedLine uint64, evicted, evictedDirty bool) {
	if lineNum == c.lastLine {
		// MRU repeat: resident and already MRU — the lookup and the
		// recency touch are both no-ops.
		c.Stats.Accesses++
		c.Stats.Hits++
		if write {
			c.dirty[c.lastSet] |= 1 << uint(c.lastWay)
		}
		return true, c.lastSet, c.lastWay, 0, false, false
	}
	c.Stats.Accesses++
	c.seq++
	set = int(lineNum & c.mask)
	tag := lineNum >> c.shift
	base := set * c.ways

	if w := c.findWay(base, set, c.valid[set], tag); w >= 0 {
		c.Stats.Hits++
		if write {
			c.dirty[set] |= 1 << uint(w)
		}
		if c.lru != nil {
			c.lru.touch(set, w)
			c.lastLine, c.lastSet, c.lastWay = lineNum, set, w
		} else {
			c.pol.OnHit(set, w, Event{Tag: tag, Sig: sig, Seq: c.seq})
		}
		return true, set, w, 0, false, false
	}

	c.Stats.Misses++
	// Prefer an invalid way (the lowest, matching the old linear scan).
	if inv := ^c.valid[set] & c.wmask; inv != 0 {
		way = bits.TrailingZeros64(inv)
	} else {
		if c.lru != nil {
			way = c.lru.Victim(set)
		} else {
			way = c.pol.Victim(set)
			if way < 0 || way >= c.ways {
				panic(fmt.Sprintf("cache %s: policy %s returned invalid victim %d", c.name, c.pol.Name(), way))
			}
		}
		c.Stats.Evictions++
		evicted = true
		evictedLine = c.tags[base+way]<<c.shift | uint64(set)
		evictedDirty = c.dirty[set]>>uint(way)&1 != 0
		if evictedDirty {
			c.Stats.Writebacks++
		}
		if c.lru == nil {
			c.pol.OnEvict(set, way)
		}
	}
	c.tags[base+way] = tag
	c.setPartial(set, way, uint8(tag))
	c.valid[set] |= 1 << uint(way)
	if write {
		c.dirty[set] |= 1 << uint(way)
	} else {
		c.dirty[set] &^= 1 << uint(way)
	}
	if c.lru != nil {
		c.lru.touch(set, way)
		c.lastLine, c.lastSet, c.lastWay = lineNum, set, way
	} else {
		c.pol.OnInsert(set, way, Event{Tag: tag, Sig: sig, Seq: c.seq})
	}
	return false, set, way, evictedLine, evicted, evictedDirty
}

// Contains probes for the line without disturbing replacement state or
// statistics. It is used to validate data-location predictions.
func (c *Cache) Contains(lineNum uint64) bool {
	set, tag := c.index(lineNum)
	return c.findWay(set*c.ways, set, c.valid[set], tag) >= 0
}

// Invalidate drops the line if present, returning whether it was dirty.
func (c *Cache) Invalidate(lineNum uint64) (present, dirty bool) {
	set, tag := c.index(lineNum)
	w := c.findWay(set*c.ways, set, c.valid[set], tag)
	if w < 0 {
		return false, false
	}
	bit := uint64(1) << uint(w)
	d := c.dirty[set]&bit != 0
	c.valid[set] &^= bit
	c.dirty[set] &^= bit
	c.lastLine = ^uint64(0)
	return true, d
}

// Flush invalidates every line, returning the number of dirty lines dropped.
func (c *Cache) Flush() (dirty int) {
	c.lastLine = ^uint64(0)
	for s := 0; s < c.sets; s++ {
		dirty += bits.OnesCount64(c.valid[s] & c.dirty[s])
		c.valid[s] = 0
		c.dirty[s] = 0
	}
	return dirty
}

// FlushLines invalidates every line and reports each former resident to fn.
// The tag array is cleared before the first callback, so fn may refill the
// cache (crash recovery re-verifies dirty metadata, which walks back through
// this cache) without the walk observing stale entries.
func (c *Cache) FlushLines(fn func(lineNum uint64, dirty bool)) {
	c.lastLine = ^uint64(0)
	type victim struct {
		line  uint64
		dirty bool
	}
	victims := make([]victim, 0, c.sets*c.ways)
	for s := 0; s < c.sets; s++ {
		vm, dm := c.valid[s], c.dirty[s]
		c.valid[s] = 0
		c.dirty[s] = 0
		for ; vm != 0; vm &= vm - 1 {
			w := bits.TrailingZeros64(vm)
			victims = append(victims, victim{
				line:  c.tags[s*c.ways+w]<<c.shift | uint64(s),
				dirty: dm>>uint(w)&1 != 0,
			})
		}
	}
	for _, v := range victims {
		fn(v.line, v.dirty)
	}
}
