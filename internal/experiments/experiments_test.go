package experiments

import (
	"context"
	"strings"
	"testing"

	"cosmos/internal/runner"
	"cosmos/internal/secmem"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "tab1", "fig8", "fig9",
		"tab2", "tab3", "tab4", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17",
		"abl-layout", "abl-traversal", "abl-lcr", "abl-quant", "abl-mee", "abl-hyper",
		"tab-power", "ext-epc", "policy-matrix"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Gen == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("fig2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestScales(t *testing.T) {
	small, def := SmallScale(), DefaultScale()
	if small.Accesses >= def.Accesses || small.GraphNodes >= def.GraphNodes {
		t.Fatal("small scale must be smaller")
	}
	if len(def.Fig8Points) == 0 || def.Fig8Points[len(def.Fig8Points)-1] != def.Accesses {
		t.Fatal("fig8 checkpoints must end at the access budget")
	}
	if s := Scaled(0); s.Accesses != small.Accesses {
		t.Fatal("Scaled(0) should be SmallScale")
	}
	if s := Scaled(0.5); s.Accesses != def.Accesses/2 {
		t.Fatalf("Scaled(0.5) accesses = %d", s.Accesses)
	}
	if s := Scaled(2); s.Accesses != def.Accesses*2 {
		t.Fatal("Scaled(2) should double")
	}
}

func TestLabMemoisation(t *testing.T) {
	l := NewLab(SmallScale())
	a := l.run("mcf", secmem.DesignNP(), runOpts{})
	if got := l.Orchestrator().Stats().Executed; got != 1 {
		t.Fatalf("first run executed %d simulations, want 1", got)
	}
	b := l.run("mcf", secmem.DesignNP(), runOpts{})
	st := l.Orchestrator().Stats()
	if st.Executed != 1 || st.Memoised != 1 {
		t.Fatalf("identical run was not memoised: %+v", st)
	}
	if a.Cycles != b.Cycles {
		t.Fatal("memoised result differs")
	}
	l.run("mcf", secmem.DesignMorph(), runOpts{})
	if got := l.Orchestrator().Stats().Executed; got != 2 {
		t.Fatalf("distinct design should execute a new simulation, executed=%d", got)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestLabCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := NewLab(SmallScale(), WithContext(ctx))
	r := l.run("mcf", secmem.DesignNP(), runOpts{})
	if err := l.Err(); err == nil {
		t.Fatal("cancelled lab must record an error")
	}
	if r.Cycles != 0 {
		t.Fatal("cancelled run must return zero results")
	}
	// Once failed, experiments report the error instead of a table.
	e, _ := ByID("tab1")
	if _, err := e.Run(l); err == nil {
		t.Fatal("Experiment.Run on a failed lab must error")
	}
}

func TestLabResume(t *testing.T) {
	sc := Scale{GraphNodes: 40_000, GraphDegree: 4, Accesses: 30_000, Seed: 42,
		Fig8Points: []uint64{30_000}}
	dir := t.TempDir()

	st1, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := NewLab(sc, WithStore(st1))
	e, _ := ByID("fig10")
	a, err := e.Run(first)
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Orchestrator().Stats().Executed; got == 0 {
		t.Fatal("first lab should have executed simulations")
	}

	st2, err := runner.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	second := NewLab(sc, WithStore(st2))
	b, err := e.Run(second)
	if err != nil {
		t.Fatal(err)
	}
	stats := second.Orchestrator().Stats()
	if stats.Executed != 0 {
		t.Fatalf("resumed lab executed %d simulations, want 0", stats.Executed)
	}
	if stats.Restored == 0 {
		t.Fatal("resumed lab restored nothing from the store")
	}
	if a.String() != b.String() {
		t.Fatalf("restored table differs from computed one:\n%s\nvs\n%s", a, b)
	}
}

func TestPerfNormalisation(t *testing.T) {
	l := NewLab(SmallScale())
	p := l.perf("canneal", secmem.DesignMorph(), runOpts{})
	if p <= 0 || p >= 1 {
		t.Fatalf("MorphCtr perf vs NP = %v, want in (0,1)", p)
	}
}

// TestKeyShapes verifies — at small scale — the directional claims the full
// reproduction must exhibit.
func TestKeyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs several simulations")
	}
	l := NewLab(SmallScale())

	// Fig 2 shape: secure memory inflates traffic and misses CTRs.
	morph := l.run("DFS", secmem.DesignMorph(), runOpts{ctrBytes: charCtrBytes})
	np := l.run("DFS", secmem.DesignNP(), runOpts{ctrBytes: charCtrBytes})
	if morph.Traffic.Total() <= np.Traffic.Total() {
		t.Error("fig2: MorphCtr must add traffic over NP")
	}
	if morph.CtrMissRate < 0.3 {
		t.Errorf("fig2: CTR miss rate %.2f too low for irregular workload", morph.CtrMissRate)
	}

	// Fig 10 shape: full COSMOS beats the MorphCtr baseline.
	base := l.perf("DFS", secmem.DesignMorph(), runOpts{})
	cos := l.perf("DFS", secmem.DesignCosmos(), runOpts{})
	if cos <= base {
		t.Errorf("fig10: COSMOS (%.3f) must beat MorphCtr (%.3f)", cos, base)
	}

	// Fig 16 shape (small-scale direction): EMCC beats the baseline.
	// COSMOS overtakes EMCC only at full scale, once EMCC's 4x-larger
	// CTR cache saturates (see EXPERIMENTS.md).
	emcc := l.perf("DFS", secmem.DesignEMCC(), runOpts{})
	if emcc <= base {
		t.Errorf("fig16: EMCC (%.3f) must beat MorphCtr (%.3f)", emcc, base)
	}

	// Fig 12 shape: data predictor is usefully accurate.
	full := l.run("DFS", secmem.DesignCosmos(), runOpts{})
	if full.DataPred == nil || full.DataPred.Accuracy() < 0.5 {
		t.Error("fig12: data prediction accuracy below coin flip")
	}

	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestTablesRender(t *testing.T) {
	l := NewLab(SmallScale())
	for _, id := range []string{"tab1", "tab2", "tab3", "tab4"} {
		e, _ := ByID(id)
		tbl, err := e.Run(l)
		if err != nil {
			t.Fatal(err)
		}
		out := tbl.String()
		if !strings.Contains(out, "==") || len(out) < 50 {
			t.Errorf("%s rendered %q", id, out)
		}
	}
}

func TestTab2MatchesPaperStructure(t *testing.T) {
	e, _ := ByID("tab2")
	tbl, err := e.Run(NewLab(SmallScale()))
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, want := range []string{"Data Q-Table", "CTR Q-Table", "CET", "LCR-CTR cache", "32768", "66560"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab2 missing %q:\n%s", want, out)
		}
	}
}

// TestEveryExperimentRuns executes the complete registry at smoke scale:
// no experiment may fail or render an empty table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	sc := Scale{GraphNodes: 60_000, GraphDegree: 4, Accesses: 60_000, Seed: 42,
		Fig8Points: []uint64{30_000, 60_000}}
	l := NewLab(sc)
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(l)
			if err != nil {
				t.Fatal(err)
			}
			if out == nil || len(out.String()) < 40 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestPrewarmMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the evaluation matrix twice")
	}
	sc := Scale{GraphNodes: 40_000, GraphDegree: 4, Accesses: 30_000, Seed: 42,
		Fig8Points: []uint64{30_000}}
	serial := NewLab(sc)
	parallel := NewLab(sc, WithWorkers(8))
	if err := Prewarm(parallel); err != nil {
		t.Fatal(err)
	}
	// Any figure rendered from the prewarmed lab must equal the serial one.
	for _, id := range []string{"fig10", "fig16", "fig17"} {
		e, _ := ByID(id)
		a, err := e.Run(serial)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Fatalf("%s differs between serial and prewarmed labs:\n%s\nvs\n%s", id, a, b)
		}
	}
}
