package experiments

import (
	"strings"
	"testing"

	"cosmos/internal/secmem"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig5", "tab1", "fig8", "fig9",
		"tab2", "tab3", "tab4", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17",
		"abl-layout", "abl-traversal", "abl-lcr", "abl-quant", "abl-mee", "abl-hyper",
		"tab-power", "ext-epc"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("fig2"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestScales(t *testing.T) {
	small, def := SmallScale(), DefaultScale()
	if small.Accesses >= def.Accesses || small.GraphNodes >= def.GraphNodes {
		t.Fatal("small scale must be smaller")
	}
	if len(def.Fig8Points) == 0 || def.Fig8Points[len(def.Fig8Points)-1] != def.Accesses {
		t.Fatal("fig8 checkpoints must end at the access budget")
	}
	if s := Scaled(0); s.Accesses != small.Accesses {
		t.Fatal("Scaled(0) should be SmallScale")
	}
	if s := Scaled(0.5); s.Accesses != def.Accesses/2 {
		t.Fatalf("Scaled(0.5) accesses = %d", s.Accesses)
	}
	if s := Scaled(2); s.Accesses != def.Accesses*2 {
		t.Fatal("Scaled(2) should double")
	}
}

func TestLabMemoisation(t *testing.T) {
	l := NewLab(SmallScale())
	a := l.run("mcf", secmem.DesignNP(), runOpts{})
	before := len(l.cache)
	b := l.run("mcf", secmem.DesignNP(), runOpts{})
	if len(l.cache) != before {
		t.Fatal("identical run was not memoised")
	}
	if a.Cycles != b.Cycles {
		t.Fatal("memoised result differs")
	}
	l.run("mcf", secmem.DesignMorph(), runOpts{})
	if len(l.cache) != before+1 {
		t.Fatal("distinct design should add a cache entry")
	}
}

func TestPerfNormalisation(t *testing.T) {
	l := NewLab(SmallScale())
	p := l.perf("canneal", secmem.DesignMorph(), runOpts{})
	if p <= 0 || p >= 1 {
		t.Fatalf("MorphCtr perf vs NP = %v, want in (0,1)", p)
	}
}

// TestKeyShapes verifies — at small scale — the directional claims the full
// reproduction must exhibit.
func TestKeyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test runs several simulations")
	}
	l := NewLab(SmallScale())

	// Fig 2 shape: secure memory inflates traffic and misses CTRs.
	morph := l.run("DFS", secmem.DesignMorph(), runOpts{ctrBytes: charCtrBytes})
	np := l.run("DFS", secmem.DesignNP(), runOpts{ctrBytes: charCtrBytes})
	if morph.Traffic.Total() <= np.Traffic.Total() {
		t.Error("fig2: MorphCtr must add traffic over NP")
	}
	if morph.CtrMissRate < 0.3 {
		t.Errorf("fig2: CTR miss rate %.2f too low for irregular workload", morph.CtrMissRate)
	}

	// Fig 10 shape: full COSMOS beats the MorphCtr baseline.
	base := l.perf("DFS", secmem.DesignMorph(), runOpts{})
	cos := l.perf("DFS", secmem.DesignCosmos(), runOpts{})
	if cos <= base {
		t.Errorf("fig10: COSMOS (%.3f) must beat MorphCtr (%.3f)", cos, base)
	}

	// Fig 16 shape (small-scale direction): EMCC beats the baseline.
	// COSMOS overtakes EMCC only at full scale, once EMCC's 4x-larger
	// CTR cache saturates (see EXPERIMENTS.md).
	emcc := l.perf("DFS", secmem.DesignEMCC(), runOpts{})
	if emcc <= base {
		t.Errorf("fig16: EMCC (%.3f) must beat MorphCtr (%.3f)", emcc, base)
	}

	// Fig 12 shape: data predictor is usefully accurate.
	full := l.run("DFS", secmem.DesignCosmos(), runOpts{})
	if full.DataPred == nil || full.DataPred.Accuracy() < 0.5 {
		t.Error("fig12: data prediction accuracy below coin flip")
	}
}

func TestTablesRender(t *testing.T) {
	l := NewLab(SmallScale())
	for _, id := range []string{"tab1", "tab2", "tab3", "tab4"} {
		e, _ := ByID(id)
		out := e.Run(l).String()
		if !strings.Contains(out, "==") || len(out) < 50 {
			t.Errorf("%s rendered %q", id, out)
		}
	}
}

func TestTab2MatchesPaperStructure(t *testing.T) {
	e, _ := ByID("tab2")
	out := e.Run(NewLab(SmallScale())).String()
	for _, want := range []string{"Data Q-Table", "CTR Q-Table", "CET", "LCR-CTR cache", "32768", "66560"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab2 missing %q:\n%s", want, out)
		}
	}
}

// TestEveryExperimentRuns executes the complete registry at smoke scale:
// no experiment may panic or render an empty table.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	sc := Scale{GraphNodes: 60_000, GraphDegree: 4, Accesses: 60_000, Seed: 42,
		Fig8Points: []uint64{30_000, 60_000}}
	l := NewLab(sc)
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out := e.Run(l)
			if out == nil || len(out.String()) < 40 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestPrewarmMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the evaluation matrix twice")
	}
	sc := Scale{GraphNodes: 40_000, GraphDegree: 4, Accesses: 30_000, Seed: 42,
		Fig8Points: []uint64{30_000}}
	serial := NewLab(sc)
	parallel := NewLab(sc)
	Prewarm(parallel, 8)
	// Any figure rendered from the prewarmed lab must equal the serial one.
	for _, id := range []string{"fig10", "fig16", "fig17"} {
		e, _ := ByID(id)
		a := e.Run(serial)
		b := e.Run(parallel)
		if a.String() != b.String() {
			t.Fatalf("%s differs between serial and prewarmed labs:\n%s\nvs\n%s", id, a, b)
		}
	}
}
