// Package experiments regenerates every table and figure of the paper's
// evaluation: each Fig*/Tab* function runs the required simulations and
// renders the same rows/series the paper reports. Results are memoised per
// (workload, design, configuration) so composite figures share runs.
//
// Absolute numbers differ from the paper's gem5 testbed; EXPERIMENTS.md
// records measured-vs-paper values and the shape checks.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

// Scale sizes the experiments: the full scale reproduces the paper's
// regime (counter working sets far beyond every CTR cache); smaller scales
// run fast for tests and benchmarks.
type Scale struct {
	GraphNodes  int
	GraphDegree int
	Accesses    uint64
	Seed        uint64
	// Fig8Points are the access checkpoints of the Fig 8 learning curve.
	Fig8Points []uint64
}

// DefaultScale is the full reproduction scale (~seconds per run).
func DefaultScale() Scale {
	return Scale{
		GraphNodes:  2_000_000,
		GraphDegree: 8,
		Accesses:    2_000_000,
		Seed:        42,
		Fig8Points:  []uint64{400_000, 800_000, 1_200_000, 1_600_000, 2_000_000},
	}
}

// SmallScale runs each experiment in well under a second, for tests and
// testing.B benchmarks. Shapes soften at this scale but stay directional.
func SmallScale() Scale {
	return Scale{
		GraphNodes:  300_000,
		GraphDegree: 8,
		Accesses:    400_000,
		Seed:        42,
		Fig8Points:  []uint64{100_000, 200_000, 300_000, 400_000},
	}
}

// Scaled interpolates between SmallScale (factor 0) and beyond DefaultScale
// (factor ≥ 1) for the cosmos-bench -scale flag.
func Scaled(factor float64) Scale {
	if factor <= 0 {
		return SmallScale()
	}
	d := DefaultScale()
	d.GraphNodes = int(float64(d.GraphNodes) * factor)
	if d.GraphNodes < 50_000 {
		d.GraphNodes = 50_000
	}
	d.Accesses = uint64(float64(d.Accesses) * factor)
	if d.Accesses < 100_000 {
		d.Accesses = 100_000
	}
	d.Fig8Points = nil
	for i := 1; i <= 5; i++ {
		d.Fig8Points = append(d.Fig8Points, d.Accesses*uint64(i)/5)
	}
	return d
}

// Lab runs and memoises simulations for one Scale.
type Lab struct {
	Scale Scale

	// Instrument, when non-nil, is invoked for every simulation the lab
	// actually executes (memoised recalls are not re-instrumented), after
	// the System is built and before it runs. label identifies the run
	// (workload, design and option tweaks, filename-safe). The returned
	// cleanup, if non-nil, runs after the simulation finishes — close files
	// there. Instrument may be called concurrently from Prewarm workers.
	Instrument func(label string, s *sim.System) func()

	mu    sync.Mutex
	cache map[string]sim.Results
}

// NewLab creates a result-sharing experiment context.
func NewLab(sc Scale) *Lab {
	return &Lab{Scale: sc, cache: make(map[string]sim.Results)}
}

// runOpts tweaks one simulation beyond the design defaults.
type runOpts struct {
	cores     int
	ctrBytes  int
	ctrPolicy string
	ctrPf     string
}

// run executes (or recalls) one workload × design simulation.
func (l *Lab) run(workload string, design secmem.Design, opt runOpts) sim.Results {
	if opt.cores == 0 {
		opt.cores = 4
	}
	key := fmt.Sprintf("%s|%s|%+v", workload, design.Name, opt)
	l.mu.Lock()
	if r, ok := l.cache[key]; ok {
		l.mu.Unlock()
		return r
	}
	l.mu.Unlock()

	if opt.ctrBytes != 0 {
		design.CtrCacheBytes = opt.ctrBytes
	}
	if opt.ctrPolicy != "" {
		design.CtrPolicy = opt.ctrPolicy
	}
	if opt.ctrPf != "" {
		design.CtrPrefetcher = opt.ctrPf
	}

	cfg := sim.DefaultConfig()
	if opt.cores == 8 {
		cfg = sim.EightCore()
	} else {
		cfg.Cores = opt.cores
	}
	cfg.MC.Seed = l.Scale.Seed
	cfg.MC.Params.Seed = l.Scale.Seed

	gen, err := workloads.Build(workload, workloads.Options{
		Threads:     opt.cores,
		Seed:        l.Scale.Seed,
		GraphNodes:  l.Scale.GraphNodes,
		GraphDegree: l.Scale.GraphDegree,
	})
	if err != nil {
		panic(err) // workload names are internal constants
	}
	s := sim.New(cfg, design)
	if l.Instrument != nil {
		if cleanup := l.Instrument(runLabel(workload, design.Name, opt), s); cleanup != nil {
			defer cleanup()
		}
	}
	r := s.Run(trace.Limit(gen, l.Scale.Accesses), l.Scale.Accesses)

	l.mu.Lock()
	l.cache[key] = r
	l.mu.Unlock()
	return r
}

// runLabel builds a filename-safe identifier for one simulation: workload
// and design, plus any non-default option tweaks.
func runLabel(workload, design string, opt runOpts) string {
	label := workload + "_" + design
	if opt.cores != 0 && opt.cores != 4 {
		label += fmt.Sprintf("_c%d", opt.cores)
	}
	if opt.ctrBytes != 0 {
		label += fmt.Sprintf("_ctr%dk", opt.ctrBytes>>10)
	}
	if opt.ctrPolicy != "" {
		label += "_" + opt.ctrPolicy
	}
	if opt.ctrPf != "" {
		label += "_" + opt.ctrPf
	}
	var b []byte
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-', r == '.':
			b = append(b, byte(r))
		default:
			b = append(b, '-')
		}
	}
	return string(b)
}

// perf returns performance normalised to the non-protected system
// (cycles_NP / cycles_design, 1.0 = NP speed), the metric of Figs 10 and
// 15-17.
func (l *Lab) perf(workload string, design secmem.Design, opt runOpts) float64 {
	np := l.run(workload, secmem.DesignNP(), opt)
	d := l.run(workload, design, opt)
	if d.Cycles == 0 {
		return 0
	}
	return float64(np.Cycles) / float64(d.Cycles)
}

// Perf exposes the NP-normalised performance of a design on a workload at
// this lab's scale — the Fig 10 metric — for external tools and probes.
func (l *Lab) Perf(workload string, design secmem.Design) float64 {
	return l.perf(workload, design, runOpts{})
}

// Run exposes one memoised simulation for external consumers.
func (l *Lab) Run(workload string, design secmem.Design) sim.Results {
	return l.run(workload, design, runOpts{})
}

// Experiment binds an id to its generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(l *Lab) *stats.Table
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Memory traffic & CTR miss: NP vs MorphCtr (graph algorithms)", Fig2},
		{"fig3", "CTR cache size vs miss rate (DFS, PR, GC)", Fig3},
		{"fig4", "CTR access after L1 vs after LLC", Fig4},
		{"fig5", "Prefetchers & replacement policies on the CTR cache (DFS)", Fig5},
		{"tab1", "Reward values and hyper-parameters", Tab1},
		{"fig8", "Prediction correctness & CTR miss vs accesses (BFS, MLP)", Fig8},
		{"fig9", "CET size vs good-locality share & LCR-CTR miss rate (DFS)", Fig9},
		{"tab2", "Storage overhead of COSMOS", Tab2},
		{"tab3", "Simulation settings", Tab3},
		{"tab4", "COSMOS design variations", Tab4},
		{"fig10", "Performance normalised to NP (all designs)", Fig10},
		{"fig11", "CTR cache miss rate per design", Fig11},
		{"fig12", "Data location prediction distribution & accuracy", Fig12},
		{"fig13", "Good-locality CTR share: COSMOS vs COSMOS-CP", Fig13},
		{"fig14", "Secure Memory Access Time (SMAT)", Fig14},
		{"fig15", "Scalability: 4-core vs 8-core", Fig15},
		{"fig16", "COSMOS vs idealised EMCC", Fig16},
		{"fig17", "Regular ML workloads: MorphCtr vs COSMOS", Fig17},
		{"abl-layout", "Ablation: heap-scattered vs packed CSR layout", AblLayout},
		{"abl-traversal", "Ablation: MT traversal accounting", AblTraversal},
		{"abl-lcr", "Ablation: CTR replacement policies at equal capacity", AblLCR},
		{"abl-quant", "Ablation: float vs 8-bit Q-value decisions", AblQuantization},
		{"abl-mee", "Ablation: Bonsai/MorphCtr vs SGX-MEE-style metadata", AblMEE},
		{"abl-hyper", "Ablation: hyper-parameter sensitivity around Table 1", AblHyper},
		{"tab-power", "Area and power accounting (§4.6)", TabPower},
		{"ext-epc", "Extension: SGXv1-style secure-region sweep", ExtEPC},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
