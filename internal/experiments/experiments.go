// Package experiments regenerates every table and figure of the paper's
// evaluation: each Fig*/Tab* function runs the required simulations and
// renders the same rows/series the paper reports.
//
// All simulations flow through the internal/runner orchestrator: results
// are memoised and deduplicated per canonical spec hash so composite
// figures share runs, a Lab built WithStore resumes a killed campaign from
// disk, and a Lab built WithContext aborts mid-simulation on cancellation.
//
// Absolute numbers differ from the paper's gem5 testbed; EXPERIMENTS.md
// records measured-vs-paper values and the shape checks.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"cosmos/internal/fault"
	"cosmos/internal/rl"
	"cosmos/internal/runner"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
)

// Scale sizes the experiments: the full scale reproduces the paper's
// regime (counter working sets far beyond every CTR cache); smaller scales
// run fast for tests and benchmarks.
type Scale struct {
	GraphNodes  int
	GraphDegree int
	Accesses    uint64
	Seed        uint64
	// Fig8Points are the access checkpoints of the Fig 8 learning curve.
	Fig8Points []uint64
}

// DefaultScale is the full reproduction scale (~seconds per run).
func DefaultScale() Scale {
	return Scale{
		GraphNodes:  2_000_000,
		GraphDegree: 8,
		Accesses:    2_000_000,
		Seed:        42,
		Fig8Points:  []uint64{400_000, 800_000, 1_200_000, 1_600_000, 2_000_000},
	}
}

// SmallScale runs each experiment in well under a second, for tests and
// testing.B benchmarks. Shapes soften at this scale but stay directional.
func SmallScale() Scale {
	return Scale{
		GraphNodes:  300_000,
		GraphDegree: 8,
		Accesses:    400_000,
		Seed:        42,
		Fig8Points:  []uint64{100_000, 200_000, 300_000, 400_000},
	}
}

// Scaled interpolates between SmallScale (factor 0) and beyond DefaultScale
// (factor ≥ 1) for the cosmos-bench -scale flag.
func Scaled(factor float64) Scale {
	if factor <= 0 {
		return SmallScale()
	}
	d := DefaultScale()
	d.GraphNodes = int(float64(d.GraphNodes) * factor)
	if d.GraphNodes < 50_000 {
		d.GraphNodes = 50_000
	}
	d.Accesses = uint64(float64(d.Accesses) * factor)
	if d.Accesses < 100_000 {
		d.Accesses = 100_000
	}
	d.Fig8Points = nil
	for i := 1; i <= 5; i++ {
		d.Fig8Points = append(d.Fig8Points, d.Accesses*uint64(i)/5)
	}
	return d
}

// Lab runs simulations for one Scale through the shared run orchestrator:
// results are memoised and singleflight-deduplicated per canonical spec
// hash, optionally persisted to a results directory for resume, and every
// simulation honours the lab's context.
//
// A Lab accumulates the first error any of its simulations hits (including
// cancellation); once failed, subsequent runs short-circuit so a cancelled
// campaign drains within a bounded number of simulation steps. Experiment.Run
// surfaces that error.
type Lab struct {
	Scale Scale

	// Instrument, when non-nil, is invoked for every simulation the lab
	// actually executes (memoised recalls are not re-instrumented), after
	// the System is built and before it runs. label identifies the run
	// (workload, design and option tweaks, filename-safe). The returned
	// cleanup, if non-nil, runs after the simulation finishes — close files
	// there. Instrument may be called concurrently from Prewarm workers.
	Instrument func(label string, s *sim.System) func()

	ctx   context.Context
	orch  *runner.Orchestrator
	fault *fault.Config

	dataPolicy *rl.PolicySpec
	ctrPolicy  *rl.PolicySpec

	mu  sync.Mutex
	err error
}

// LabOption configures NewLab.
type LabOption func(*labOptions)

type labOptions struct {
	ctx           context.Context
	workers       int
	store         *runner.Store
	observer      func(runner.Event)
	lifecycle     func(runner.Transition)
	fault         *fault.Config
	parallelCores int
	dataPolicy    *rl.PolicySpec
	ctrPolicy     *rl.PolicySpec
}

// WithContext binds every simulation the lab runs to ctx: on cancellation
// the in-flight simulation stops within sim.CancelCheckEvery steps and all
// subsequent runs short-circuit.
func WithContext(ctx context.Context) LabOption {
	return func(o *labOptions) { o.ctx = ctx }
}

// WithWorkers bounds the lab's concurrent simulations (default: NumCPU).
func WithWorkers(n int) LabOption {
	return func(o *labOptions) { o.workers = n }
}

// WithStore persists every executed simulation into st and consults it
// before executing, so a second lab over the same directory resumes the
// campaign executing only the missing cells.
func WithStore(st *runner.Store) LabOption {
	return func(o *labOptions) { o.store = st }
}

// WithObserver forwards every completed run request (source, queue wait,
// execution time, error) to f. May be called concurrently.
func WithObserver(f func(runner.Event)) LabOption {
	return func(o *labOptions) { o.observer = f }
}

// WithLifecycle forwards every run request's phase transitions (queued →
// running → done) to f — the feed behind live run tables and progress/ETA
// reporting. May be called concurrently.
func WithLifecycle(f func(runner.Transition)) LabOption {
	return func(o *labOptions) { o.lifecycle = f }
}

// WithFaults attaches the same fault campaign to every simulation the lab
// runs. The campaign enters each run's content hash, so faulty and
// fault-free sweeps over the same cells store separately.
func WithFaults(fc *fault.Config) LabOption {
	return func(o *labOptions) { o.fault = fc }
}

// WithPolicy swaps the predictors' decision engines for every simulation
// the lab runs: data/ctr select the data-location and CTR-locality policy
// (nil keeps the design's tabular default for that role). Policy-carrying
// runs hash differently from default runs — they are different machines —
// so stores keep both side by side; a lab with both policies nil produces
// byte-identical spec hashes to a lab without this option.
func WithPolicy(data, ctr *rl.PolicySpec) LabOption {
	return func(o *labOptions) {
		o.dataPolicy = data
		o.ctrPolicy = ctr
	}
}

// WithParallelCores runs every simulation on the deterministic epoch-barrier
// parallel engine with up to n worker goroutines (n > 1; see
// sim.System.SetParallelCores). Results are bit-identical to serial runs, so
// the knob does not enter the run's content hash — memoised and stored cells
// are shared across settings.
func WithParallelCores(n int) LabOption {
	return func(o *labOptions) { o.parallelCores = n }
}

// NewLab creates a result-sharing experiment context.
func NewLab(sc Scale, opts ...LabOption) *Lab {
	o := labOptions{ctx: context.Background()}
	for _, opt := range opts {
		opt(&o)
	}
	l := &Lab{Scale: sc, ctx: o.ctx, fault: o.fault, dataPolicy: o.dataPolicy, ctrPolicy: o.ctrPolicy}
	l.orch = runner.New(runner.Options{Workers: o.workers, Store: o.store, ParallelCores: o.parallelCores})
	l.orch.Observer = o.observer
	l.orch.Lifecycle = o.lifecycle
	l.orch.Instrument = func(label string, s *sim.System) func() {
		if f := l.Instrument; f != nil {
			return f(label, s)
		}
		return nil
	}
	return l
}

// Orchestrator exposes the lab's run orchestrator (stats, telemetry
// registration, store access).
func (l *Lab) Orchestrator() *runner.Orchestrator { return l.orch }

// Err returns the first error any of the lab's simulations produced (nil
// while everything has succeeded).
func (l *Lab) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// fail records the first error; later errors are dropped.
func (l *Lab) fail(err error) {
	if err == nil {
		return
	}
	l.mu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
}

// canceled reports whether the lab's context has ended.
func (l *Lab) canceled() bool { return l.ctx.Err() != nil }

// runOpts tweaks one simulation beyond the design defaults.
type runOpts struct {
	cores     int
	ctrBytes  int
	ctrPolicy string
	ctrPf     string
}

// spec translates (workload, design, opt) at the lab's scale into the
// orchestrator's canonical run spec.
func (l *Lab) spec(workload string, design secmem.Design, opt runOpts) runner.Spec {
	if opt.cores == 0 {
		opt.cores = 4
	}
	if opt.ctrBytes != 0 {
		design.CtrCacheBytes = opt.ctrBytes
	}
	if opt.ctrPolicy != "" {
		design.CtrPolicy = opt.ctrPolicy
	}
	if opt.ctrPf != "" {
		design.CtrPrefetcher = opt.ctrPf
	}
	spec := runner.Spec{
		Workload:    workload,
		Design:      design,
		Cores:       opt.cores,
		Accesses:    l.Scale.Accesses,
		GraphNodes:  l.Scale.GraphNodes,
		GraphDegree: l.Scale.GraphDegree,
		Seed:        l.Scale.Seed,
		Fault:       l.fault,
	}
	if l.dataPolicy != nil || l.ctrPolicy != nil {
		spec = l.withPolicies(spec, l.dataPolicy, l.ctrPolicy)
	}
	return spec
}

// withPolicies rewrites a spec to carry explicit policy selections: the
// machine configuration the runner would derive implicitly is materialised
// (so the policies have a Params to live in) and the label records the
// policy kinds. Leaving both policies nil would still change the hash —
// Config non-nil is a different spec — which is why spec() only calls this
// when a policy is actually set.
func (l *Lab) withPolicies(spec runner.Spec, data, ctr *rl.PolicySpec) runner.Spec {
	var cfg sim.Config
	if spec.Cores == 8 {
		cfg = sim.EightCore()
	} else {
		cfg = sim.DefaultConfig()
		cfg.Cores = spec.Cores
	}
	cfg.MC.Seed = spec.Seed
	cfg.MC.Params.Seed = spec.Seed
	cfg.MC.Params.DataPolicy = data
	cfg.MC.Params.CtrPolicy = ctr
	spec.Config = &cfg
	spec.Label = spec.Workload + "_" + spec.Design.Name + "_pol-" + policyTag(data, ctr)
	return spec
}

// policyTag summarises a policy pair for labels: kind names, "frozen:<kind>"
// for frozen deployments, "-" for a defaulted role.
func policyTag(data, ctr *rl.PolicySpec) string {
	one := func(sp *rl.PolicySpec) string {
		switch {
		case sp == nil:
			return "-"
		case sp.Frozen != nil:
			return "frozen." + sp.Frozen.Kind
		default:
			return sp.Kind
		}
	}
	return one(data) + "." + one(ctr)
}

// runSpec executes (or recalls) one simulation through the orchestrator.
// On failure the error is recorded on the lab and zero Results return; the
// table generator keeps going but Experiment.Run discards its output.
func (l *Lab) runSpec(spec runner.Spec) sim.Results {
	if l.Err() != nil {
		return sim.Results{}
	}
	r, err := l.orch.Run(l.ctx, spec)
	if err != nil {
		l.fail(err)
		return sim.Results{}
	}
	return r
}

// run executes (or recalls) one workload × design simulation.
func (l *Lab) run(workload string, design secmem.Design, opt runOpts) sim.Results {
	return l.runSpec(l.spec(workload, design, opt))
}

// runCfg executes one simulation under a fully custom machine configuration
// (the ablation studies): cfg is hashed into the run's identity, so these
// cells memoise, deduplicate and resume exactly like the standard ones.
// label names the run for progress and telemetry files.
func (l *Lab) runCfg(workload, label string, design secmem.Design, cfg sim.Config, accesses uint64) sim.Results {
	return l.runSpec(runner.Spec{
		Workload:    workload,
		Design:      design,
		Cores:       cfg.Cores,
		Accesses:    accesses,
		GraphNodes:  l.Scale.GraphNodes,
		GraphDegree: l.Scale.GraphDegree,
		Seed:        l.Scale.Seed,
		Config:      &cfg,
		Fault:       l.fault,
		Label:       label,
	})
}

// perf returns performance normalised to the non-protected system
// (cycles_NP / cycles_design, 1.0 = NP speed), the metric of Figs 10 and
// 15-17.
func (l *Lab) perf(workload string, design secmem.Design, opt runOpts) float64 {
	np := l.run(workload, secmem.DesignNP(), opt)
	d := l.run(workload, design, opt)
	if d.Cycles == 0 {
		return 0
	}
	return float64(np.Cycles) / float64(d.Cycles)
}

// Perf exposes the NP-normalised performance of a design on a workload at
// this lab's scale — the Fig 10 metric — for external tools and probes.
func (l *Lab) Perf(workload string, design secmem.Design) float64 {
	return l.perf(workload, design, runOpts{})
}

// Run exposes one memoised simulation for external consumers.
func (l *Lab) Run(workload string, design secmem.Design) sim.Results {
	return l.run(workload, design, runOpts{})
}

// Experiment binds an id to its table generator.
type Experiment struct {
	ID    string
	Title string
	// Gen renders the experiment's table from the lab. Generators report
	// simulation failures through the lab (they never panic on them);
	// Experiment.Run is the error-aware entry point.
	Gen func(l *Lab) *stats.Table
}

// Run regenerates the experiment's table on the lab. Any simulation error
// the lab hits — a bad workload spec, a worker panic (typed *runner.
// PanicError), or cancellation of the lab's context — is returned instead
// of a table. A lab that already failed returns that error immediately, so
// an interrupted `-exp all` campaign drains without starting new work.
func (e Experiment) Run(l *Lab) (*stats.Table, error) {
	if err := l.Err(); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	t := e.Gen(l)
	if err := l.Err(); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	return t, nil
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig2", "Memory traffic & CTR miss: NP vs MorphCtr (graph algorithms)", Fig2},
		{"fig3", "CTR cache size vs miss rate (DFS, PR, GC)", Fig3},
		{"fig4", "CTR access after L1 vs after LLC", Fig4},
		{"fig5", "Prefetchers & replacement policies on the CTR cache (DFS)", Fig5},
		{"tab1", "Reward values and hyper-parameters", Tab1},
		{"fig8", "Prediction correctness & CTR miss vs accesses (BFS, MLP)", Fig8},
		{"fig9", "CET size vs good-locality share & LCR-CTR miss rate (DFS)", Fig9},
		{"tab2", "Storage overhead of COSMOS", Tab2},
		{"tab3", "Simulation settings", Tab3},
		{"tab4", "COSMOS design variations", Tab4},
		{"fig10", "Performance normalised to NP (all designs)", Fig10},
		{"fig11", "CTR cache miss rate per design", Fig11},
		{"fig12", "Data location prediction distribution & accuracy", Fig12},
		{"fig13", "Good-locality CTR share: COSMOS vs COSMOS-CP", Fig13},
		{"fig14", "Secure Memory Access Time (SMAT)", Fig14},
		{"fig15", "Scalability: 4-core vs 8-core", Fig15},
		{"fig16", "COSMOS vs idealised EMCC", Fig16},
		{"fig17", "Regular ML workloads: MorphCtr vs COSMOS", Fig17},
		{"abl-layout", "Ablation: heap-scattered vs packed CSR layout", AblLayout},
		{"abl-traversal", "Ablation: MT traversal accounting", AblTraversal},
		{"abl-lcr", "Ablation: CTR replacement policies at equal capacity", AblLCR},
		{"abl-quant", "Ablation: float vs 8-bit Q-value decisions", AblQuantization},
		{"abl-mee", "Ablation: Bonsai/MorphCtr vs SGX-MEE-style metadata", AblMEE},
		{"abl-hyper", "Ablation: hyper-parameter sensitivity around Table 1", AblHyper},
		{"tab-power", "Area and power accounting (§4.6)", TabPower},
		{"ext-epc", "Extension: SGXv1-style secure-region sweep", ExtEPC},
		{"policy-matrix", "Policy zoo: train-on-A / serve-on-B generalization matrix", PolicyMatrix},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}
