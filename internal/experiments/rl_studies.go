package experiments

import (
	"fmt"

	"cosmos/internal/core"
	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
)

// Tab1 prints the tuned reward values and hyper-parameters.
func Tab1(*Lab) *stats.Table {
	p := core.DefaultParams()
	t := stats.NewTable("Table 1: reward values and hyper-parameters", "parameter", "value")
	t.Row("R_D_mo", p.DataRewards.Mo)
	t.Row("R_D_mi", p.DataRewards.Mi)
	t.Row("R_D_ho", p.DataRewards.Ho)
	t.Row("R_D_hi", p.DataRewards.Hi)
	t.Row("R_C_hg", p.CtrRewards.Hg)
	t.Row("R_C_hb", p.CtrRewards.Hb)
	t.Row("R_C_mg", p.CtrRewards.Mg)
	t.Row("R_C_mb", p.CtrRewards.Mb)
	t.Row("R_C_eg", p.CtrRewards.Eg)
	t.Row("R_C_eb", p.CtrRewards.Eb)
	t.Row("alpha_D / gamma_D / epsilon_D", fmt.Sprintf("%.2f / %.2f / %.3f", p.Data.Alpha, p.Data.Gamma, p.Data.Epsilon))
	t.Row("alpha_C / gamma_C / epsilon_C", fmt.Sprintf("%.2f / %.2f / %.3f", p.Ctr.Alpha, p.Ctr.Gamma, p.Ctr.Epsilon))
	return t
}

// Tab2 recomputes COSMOS's storage overhead from the structure sizes.
func Tab2(l *Lab) *stats.Table {
	p := core.DefaultParams()
	lcrLines := (128 << 10) / memsys.LineSize
	o := core.ComputeOverhead(p, lcrLines)
	t := stats.NewTable("Table 2: storage overhead of COSMOS", "component", "details", "bytes", "paper")
	t.Row("Data Q-Table", fmt.Sprintf("%d entries x 16 bits", p.QStates), o.DataQTableBytes, "32KB")
	t.Row("CTR Q-Table", fmt.Sprintf("%d entries x 16 bits", p.QStates), o.CtrQTableBytes, "32KB")
	t.Row("CET", fmt.Sprintf("%d entries x 65 bits", p.CETEntries), o.CETBytes, "66KB")
	t.Row("LCR-CTR cache", fmt.Sprintf("%d lines x 9 bits", lcrLines), o.LCRBytes, "17KB")
	t.Row("Total", "", o.Total(), "147KB")
	return t
}

// Tab3 prints the simulated machine (Table 3).
func Tab3(*Lab) *stats.Table {
	c := sim.DefaultConfig()
	t := stats.NewTable("Table 3: simulation settings", "parameter", "value")
	t.Row("Cores", fmt.Sprintf("%d cores, OoO model (MLP=%d), 3GHz", c.Cores, c.MLP))
	t.Row("L1 cache", fmt.Sprintf("%d cycles, %s, %d-way", c.L1Lat, memsys.Bytes(uint64(c.L1Bytes)), c.L1Ways))
	t.Row("L2 cache", fmt.Sprintf("%d cycles, %s, %d-way", c.L2Lat, memsys.Bytes(uint64(c.L2Bytes)), c.L2Ways))
	t.Row("LLC", fmt.Sprintf("%d cycles, %s, %d-way", c.LLCLat, memsys.Bytes(uint64(c.LLCBytes)), c.LLCWays))
	t.Row("Memory", fmt.Sprintf("DDR4-2400-like, %s", memsys.Bytes(c.MC.MemBytes)))
	t.Row("AES latency", fmt.Sprintf("%d cycles", c.MC.AESLat))
	t.Row("Authentication latency", fmt.Sprintf("%d cycles", c.MC.AuthLat))
	t.Row("MAC", "64 bits per 64B line")
	t.Row("CTR cache", fmt.Sprintf("LRU, %s per core", memsys.Bytes(uint64(c.MC.CtrCacheBytes))))
	t.Row("CTR combination", fmt.Sprintf("%d cycle", c.MC.CombineLat))
	t.Row("Re-encryption", "extra 64B DRAM request after 67 writes")
	t.Row("LCR-CTR cache", fmt.Sprintf("%s per core", memsys.Bytes(uint64(c.MC.LCRCacheBytes))))
	return t
}

// Tab4 lists the design variations of the ablation study.
func Tab4(*Lab) *stats.Table {
	t := stats.NewTable("Table 4: COSMOS design variations", "design", "description")
	t.Row("COSMOS-DP", "data location predictor only (128KB LRU CTR cache)")
	t.Row("COSMOS-CP", "CTR locality predictor + LCR-CTR cache (128KB)")
	t.Row("COSMOS", "full RL implementation (both predictors + LCR)")
	return t
}

// Fig8 tracks the data-location prediction correctness and the CTR cache
// miss rate as memory accesses accumulate, for BFS (graph, seen-like during
// tuning) and MLP (non-graph, unseen) under full COSMOS.
//
// Each checkpoint is its own orchestrator run (the simulator is
// deterministic, so a run capped at N accesses is exactly the N-access
// snapshot of a longer run): the curve memoises, deduplicates and resumes
// per point like every other cell.
func Fig8(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 8: prediction correctness and CTR miss rate vs accesses",
		"workload", "accesses", "pred-correct", "ctr-miss")
	for _, w := range []string{"BFS", "MLP"} {
		for _, point := range l.Scale.Fig8Points {
			sp := l.spec(w, secmem.DesignCosmos(), runOpts{})
			sp.Accesses = point
			r := l.runSpec(sp)
			acc := 0.0
			if r.DataPred != nil {
				acc = r.DataPred.Accuracy()
			}
			t.Row(w, r.Accesses, stats.Pct(acc), stats.Pct(r.CtrMissRate))
		}
	}
	return t
}

// Fig9 sweeps the CET entry count on DFS under full COSMOS: the share of
// CTR accesses classified good locality grows with the CET, while the
// LCR-CTR miss rate bottoms out around the paper's 8,192-entry choice.
func Fig9(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 9: CET size vs good-locality share and LCR-CTR miss rate",
		"cet-entries", "good-locality", "lcr-ctr-miss")
	for _, entries := range []int{512, 2048, 4096, 8192, 10240, 16384, 32768} {
		cfg := sim.DefaultConfig()
		cfg.MC.Seed = l.Scale.Seed
		cfg.MC.Params.Seed = l.Scale.Seed
		cfg.MC.Params.CETEntries = entries
		label := fmt.Sprintf("DFS_COSMOS_cet%d", entries)
		r := l.runCfg("DFS", label, secmem.DesignCosmos(), cfg, l.Scale.Accesses)
		good := 0.0
		if r.CtrPred != nil {
			good = r.CtrPred.GoodFraction()
		}
		t.Row(entries, stats.Pct(good), stats.Pct(r.CtrMissRate))
	}
	return t
}
