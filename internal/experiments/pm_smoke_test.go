package experiments

import (
	"strings"
	"testing"
)

// TestPolicyMatrixSmoke exercises the full train→freeze→deploy matrix at a
// tiny scale: it must run clean and produce one row per (train, serve) pair.
func TestPolicyMatrixSmoke(t *testing.T) {
	sc := Scale{GraphNodes: 50000, GraphDegree: 8, Accesses: 120000, Seed: 42}
	l := NewLab(sc)
	e, err := ByID("policy-matrix")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := e.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(tab.CSV()), "\n")
	if want := len(policyMatrixWorkloads) * len(policyMatrixWorkloads); lines != want {
		t.Errorf("matrix has %d rows, want %d", lines, want)
	}
	tab.Write(testWriter{t})
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) { w.t.Log(string(p)); return len(p), nil }
