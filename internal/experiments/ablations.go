package experiments

import (
	"fmt"

	"cosmos/internal/core"
	"cosmos/internal/graph"
	"cosmos/internal/memsys"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

// Ablations beyond the paper's figures: they isolate the modelling and
// design choices DESIGN.md calls out. Run with `cosmos-bench -exp abl-*`.

// AblLayout contrasts the heap-scattered workload layout (GraphBIG-style
// vertex objects) with a packed CSR layout: packing manufactures spatial
// locality that MorphCtr's 1:128 counter coverage absorbs, hiding the very
// problem the paper attacks.
func AblLayout(l *Lab) *stats.Table {
	t := stats.NewTable("Ablation: heap-scattered vs packed CSR layout (DFS, MorphCtr)",
		"layout", "ctr-miss", "llc-miss", "mt-reads")
	for _, scattered := range []bool{true, false} {
		if l.Err() != nil {
			break
		}
		g := cachedGraphForLab(l)
		var w *graph.Workspace
		name := "packed-CSR"
		if scattered {
			w = graph.NewWorkspace(g, 4, 1<<30)
			name = "heap-scattered"
		} else {
			w = graph.NewPackedWorkspace(g, 4, 1<<30)
		}
		// The packed workspace has no workloads.Build name, so this cell
		// bypasses the orchestrator; it still honours the lab's context.
		gen, _ := graph.DFS(w, l.Scale.Seed)
		cfg := sim.DefaultConfig()
		cfg.MC.Seed = l.Scale.Seed
		s := sim.New(cfg, secmem.DesignMorph())
		r, err := s.RunContext(l.ctx, trace.Limit(gen, l.Scale.Accesses), l.Scale.Accesses)
		if err != nil {
			l.fail(fmt.Errorf("experiments: abl-layout %s: %w", name, err))
			break
		}
		t.Row(name, stats.Pct(r.CtrMissRate), stats.Pct(r.LLCMissRate), r.Traffic.MTRead)
	}
	return t
}

func cachedGraphForLab(l *Lab) *graph.Graph {
	// Reuse the workloads package cache indirectly by building the graph
	// with the same parameters it would use.
	return graphForScale(l.Scale)
}

var graphMemo = map[string]*graph.Graph{}

func graphForScale(sc Scale) *graph.Graph {
	key := fmt.Sprintf("%d/%d/%d", sc.GraphNodes, sc.GraphDegree, sc.Seed)
	if g, ok := graphMemo[key]; ok {
		return g
	}
	g := graph.NewBarabasiAlbert(sc.GraphNodes, sc.GraphDegree, sc.Seed)
	graphMemo[key] = g
	return g
}

// AblTraversal compares stop-at-hit Merkle traversal (MT nodes cached in
// the metadata cache) with the paper's full log-depth accounting.
func AblTraversal(l *Lab) *stats.Table {
	t := stats.NewTable("Ablation: MT traversal accounting (DFS, MorphCtr)",
		"mode", "mt-reads", "total-traffic", "cycles")
	for _, full := range []bool{false, true} {
		cfg := sim.DefaultConfig()
		cfg.MC.Seed = l.Scale.Seed
		cfg.MC.FullTraversal = full
		name := "stop-at-hit"
		if full {
			name = "full-traversal"
		}
		r := l.runCfg("DFS", "DFS_MorphCtr_"+name, secmem.DesignMorph(), cfg, l.Scale.Accesses)
		t.Row(name, r.Traffic.MTRead, r.Traffic.Total(), r.Cycles)
	}
	return t
}

// AblLCR pits LCR against plain LRU and the Fig 5 policies at the same
// 128KB capacity under full COSMOS's early-access stream — the
// apples-to-apples replacement comparison Fig 11 implies.
func AblLCR(l *Lab) *stats.Table {
	t := stats.NewTable("Ablation: CTR replacement at equal 128KB capacity (DFS, early access)",
		"policy", "ctr-miss", "cycles")
	full := l.run("DFS", secmem.DesignCosmos(), runOpts{})
	t.Row("LCR (COSMOS)", stats.Pct(full.CtrMissRate), full.Cycles)
	dp := l.run("DFS", secmem.DesignCosmosDP(), runOpts{})
	t.Row("LRU (COSMOS-DP)", stats.Pct(dp.CtrMissRate), dp.Cycles)
	for _, pol := range []string{"RRIP", "SHiP", "Mockingjay", "Random"} {
		d := secmem.DesignCosmosDP()
		r := l.run("DFS", d, runOpts{ctrPolicy: pol, ctrBytes: 128 << 10})
		t.Row(pol, stats.Pct(r.CtrMissRate), r.Cycles)
	}
	return t
}

// AblQuantization checks that the 8-bit hardware Q-value representation
// (Table 2) agrees with the float learner on greedy decisions after
// training on a real stream — the fidelity claim behind the 16-bit/entry
// storage budget.
func AblQuantization(l *Lab) *stats.Table {
	t := stats.NewTable("Ablation: float vs 8-bit quantized Q decisions", "predictor", "agreement")
	p := core.DefaultParams()
	dp := core.NewDataPredictor(p)
	gen, err := buildWorkload(l, "DFS", 4)
	if err != nil {
		l.fail(fmt.Errorf("experiments: abl-quant: %w", err))
		return t
	}
	defer trace.CloseIfCloser(gen)
	n := l.Scale.Accesses / 4
	for i := uint64(0); i < n; i++ {
		a, ok := gen.Next()
		if !ok {
			break
		}
		pr := dp.Predict(uint64(a.Addr))
		// synthetic ground truth: large-region addresses are off-chip
		dp.Learn(pr, a.Addr.Line()%3 != 0)
	}
	t.Row("data location", stats.Pct(quantAgreement(p.QStates, dp)))
	return t
}

func quantAgreement(states int, dp *core.DataPredictor) float64 {
	agree := 0
	tbl := dp.Table()
	for s := 0; s < states; s++ {
		bestF, _ := tbl.Best(s)
		bestQ := 0
		if tbl.Quantize(s, 1) > tbl.Quantize(s, 0) {
			bestQ = 1
		}
		if bestF == bestQ {
			agree++
		}
	}
	return float64(agree) / float64(states)
}

// buildWorkload builds a workload with the lab's scale parameters.
func buildWorkload(l *Lab, name string, threads int) (trace.Generator, error) {
	return workloads.Build(name, workloads.Options{
		Threads:     threads,
		Seed:        l.Scale.Seed,
		GraphNodes:  l.Scale.GraphNodes,
		GraphDegree: l.Scale.GraphDegree,
	})
}

// AblMEE contrasts the Bonsai-style metadata organisation the paper builds
// on (MorphCtr counters as tree leaves, 1:128 coverage) with an
// SGX-MEE-style organisation (counters and tree over 8-line groups): the
// deeper tree and denser counters multiply metadata traffic — the cost that
// motivated split counters and MorphCtr in the first place (§2.2).
func AblMEE(l *Lab) *stats.Table {
	t := stats.NewTable("Ablation: Bonsai/MorphCtr metadata vs SGX-MEE-style tree (DFS, MorphCtr)",
		"organisation", "ctr-miss", "mt-reads", "total-traffic", "cycles")
	for _, mee := range []bool{false, true} {
		cfg := sim.DefaultConfig()
		cfg.MC.Seed = l.Scale.Seed
		cfg.MC.MEETree = mee
		name := "Bonsai + MorphCtr (1:128)"
		label := "DFS_MorphCtr_bonsai"
		if mee {
			name = "SGX-MEE style (1:8)"
			label = "DFS_MorphCtr_mee"
		}
		r := l.runCfg("DFS", label, secmem.DesignMorph(), cfg, l.Scale.Accesses)
		t.Row(name, stats.Pct(r.CtrMissRate), r.Traffic.MTRead, r.Traffic.Total(), r.Cycles)
	}
	return t
}

// AblHyper sweeps the CTR predictor's learning rate and discount around the
// tuned point (Table 1), reporting the LCR-CTR hit rate — the §4.5
// sensitivity picture: the tuned values should sit at or near the top.
func AblHyper(l *Lab) *stats.Table {
	t := stats.NewTable("Ablation: CTR-predictor hyper-parameter sensitivity (DFS)",
		"alpha_C", "gamma_C", "ctr-hit")
	for _, alpha := range []float64{0.01, 0.05, 0.2, 0.8} {
		for _, gamma := range []float64{0.05, 0.35, 0.9} {
			cfg := sim.DefaultConfig()
			cfg.MC.Seed = l.Scale.Seed
			cfg.MC.Params.Seed = l.Scale.Seed
			cfg.MC.Params.Ctr.Alpha = alpha
			cfg.MC.Params.Ctr.Gamma = gamma
			label := fmt.Sprintf("DFS_COSMOS_a%g_g%g", alpha, gamma)
			r := l.runCfg("DFS", label, secmem.DesignCosmos(), cfg, l.Scale.Accesses/2)
			t.Row(alpha, gamma, stats.Pct(1-r.CtrMissRate))
		}
	}
	return t
}

// TabPower reproduces the §4.6 area/power accounting.
func TabPower(*Lab) *stats.Table {
	t := stats.NewTable("§4.6: COSMOS area and power (28nm SRAM compiler, 0.9V, 25C, 3GHz)",
		"component", "area-mm2", "power-mW")
	for _, c := range core.PaperAreaPower() {
		t.Row(c.Component, c.AreaMM2, c.PowerMW)
	}
	a, p := core.TotalAreaPower()
	t.Row("Total", a, p)
	return t
}

// ExtEPC sweeps an SGXv1-style bounded secure region (§3.1 motivates the
// move beyond the <128MB EPC): with a small protected range most accesses
// skip the metadata machinery; as the region grows toward full-memory
// protection, the MorphCtr overhead emerges and COSMOS's gain with it.
func ExtEPC(l *Lab) *stats.Table {
	t := stats.NewTable("Extension: SGXv1-style secure-region size sweep (DFS)",
		"region", "Morph-vs-NP", "COSMOS-vs-NP", "COSMOS-gain")
	np := func() uint64 {
		cfg := sim.DefaultConfig()
		cfg.MC.Seed = l.Scale.Seed
		return l.runCfg("DFS", "DFS_NP_epc", secmem.DesignNP(), cfg, l.Scale.Accesses).Cycles
	}()
	// Workload heaps start at 1GB; the bound is the EPC's top, so a
	// region of 1GB+128MB protects the first 128MB of the heap.
	heapBase := uint64(1 << 30)
	for _, region := range []uint64{heapBase + 128<<20, heapBase + 1<<30, 0} {
		var cyc [2]uint64
		for i, d := range []secmem.Design{secmem.DesignMorph(), secmem.DesignCosmos()} {
			cfg := sim.DefaultConfig()
			cfg.MC.Seed = l.Scale.Seed
			cfg.MC.Params.Seed = l.Scale.Seed
			cfg.MC.SecureRegionBytes = region
			label := fmt.Sprintf("DFS_%s_region%d", d.Name, region)
			cyc[i] = l.runCfg("DFS", label, d, cfg, l.Scale.Accesses).Cycles
		}
		name := "all memory"
		if region != 0 {
			name = memsys.Bytes(region-heapBase) + " of heap"
		}
		if cyc[0] == 0 || cyc[1] == 0 {
			break // a run failed; Experiment.Run reports the lab's error
		}
		m := float64(np) / float64(cyc[0])
		c := float64(np) / float64(cyc[1])
		t.Row(name, m, c, fmt.Sprintf("%+.1f%%", 100*(c/m-1)))
	}
	return t
}
