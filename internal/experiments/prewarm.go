package experiments

import (
	"cosmos/internal/runner"
	"cosmos/internal/secmem"
)

// prewarmSpecs enumerates the (workload, design, opts) matrix shared by the
// evaluation figures (10-17) as orchestrator specs, so a parallel prewarm
// pass can populate the lab's memo (and results store) before the figures
// render serially.
func prewarmSpecs(l *Lab) []runner.Spec {
	var specs []runner.Spec
	designs4 := []secmem.Design{
		secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignEMCC(),
		secmem.DesignRMCC(), secmem.DesignCosmosDP(), secmem.DesignCosmosCP(),
		secmem.DesignCosmos(),
	}
	for _, w := range evalWorkloads() {
		for _, d := range designs4 {
			specs = append(specs, l.spec(w, d, runOpts{}))
		}
	}
	// Fig 15's 8-core runs.
	for _, w := range []string{"BFS", "DFS", "TC", "GC", "CC", "SP", "DC"} {
		for _, d := range []secmem.Design{secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignCosmos()} {
			specs = append(specs, l.spec(w, d, runOpts{cores: 8}))
		}
	}
	// Fig 17's ML runs.
	for _, w := range []string{"AlexNet", "ResNet", "VGG", "BERT", "Transformer", "DLRM"} {
		for _, d := range []secmem.Design{secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignCosmos()} {
			specs = append(specs, l.spec(w, d, runOpts{}))
		}
	}
	return specs
}

// Prewarm runs the evaluation-figure simulation matrix through the lab's
// orchestrator (its worker pool bounds parallelism), populating the memo —
// and the results store, when the lab has one — so the subsequent serial
// figure rendering is instant. Every simulation is still deterministic:
// parallelism only affects wall-clock, never results. The first simulation
// error (including cancellation) is recorded on the lab and returned.
func Prewarm(l *Lab) error {
	if err := l.Err(); err != nil {
		return err
	}
	if err := l.orch.RunAll(l.ctx, prewarmSpecs(l)); err != nil {
		l.fail(err)
		return err
	}
	return nil
}
