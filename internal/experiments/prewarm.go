package experiments

import (
	"sync"

	"cosmos/internal/secmem"
)

// prewarmJobs enumerates the (workload, design, opts) matrix shared by the
// evaluation figures (10-17), so a parallel prewarm pass can populate the
// lab's memo before the figures render serially.
func prewarmJobs() []func(l *Lab) {
	var jobs []func(l *Lab)
	designs4 := []secmem.Design{
		secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignEMCC(),
		secmem.DesignRMCC(), secmem.DesignCosmosDP(), secmem.DesignCosmosCP(),
		secmem.DesignCosmos(),
	}
	for _, w := range evalWorkloads() {
		for _, d := range designs4 {
			w, d := w, d
			jobs = append(jobs, func(l *Lab) { l.run(w, d, runOpts{}) })
		}
	}
	// Fig 15's 8-core runs.
	for _, w := range []string{"BFS", "DFS", "TC", "GC", "CC", "SP", "DC"} {
		for _, d := range []secmem.Design{secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignCosmos()} {
			w, d := w, d
			jobs = append(jobs, func(l *Lab) { l.run(w, d, runOpts{cores: 8}) })
		}
	}
	// Fig 17's ML runs.
	for _, w := range []string{"AlexNet", "ResNet", "VGG", "BERT", "Transformer", "DLRM"} {
		for _, d := range []secmem.Design{secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignCosmos()} {
			w, d := w, d
			jobs = append(jobs, func(l *Lab) { l.run(w, d, runOpts{}) })
		}
	}
	return jobs
}

// Prewarm runs the evaluation-figure simulation matrix with the given
// worker parallelism, populating the lab's memo so the subsequent serial
// figure rendering is instant. Every simulation is still deterministic —
// parallelism only affects wall-clock, never results.
func Prewarm(l *Lab, workers int) {
	if workers < 1 {
		workers = 1
	}
	jobs := prewarmJobs()
	ch := make(chan func(l *Lab))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range ch {
				job(l)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
}
