package experiments

import (
	"fmt"

	"cosmos/internal/secmem"
	"cosmos/internal/stats"
	"cosmos/internal/workloads"
)

// evalWorkloads are Fig 10's benchmarks: the eight graph algorithms plus
// the three irregular SPEC-like kernels.
func evalWorkloads() []string {
	return append(workloads.GraphNames(), workloads.SpecNames()...)
}

// evalDesigns are the Table 4 variants plus the baseline.
func evalDesigns() []secmem.Design {
	return []secmem.Design{
		secmem.DesignMorph(),
		secmem.DesignCosmosDP(),
		secmem.DesignCosmosCP(),
		secmem.DesignCosmos(),
	}
}

// Fig10 reports performance normalised to the non-protected system for
// MorphCtr and the three COSMOS variants across all irregular workloads.
func Fig10(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 10: performance normalised to NP (higher is better)",
		"workload", "MorphCtr", "COSMOS-DP", "COSMOS-CP", "COSMOS", "COSMOS-vs-Morph")
	var sumM, sumC float64
	n := 0
	for _, w := range evalWorkloads() {
		var vals []interface{}
		vals = append(vals, w)
		var morph, cos float64
		for _, d := range evalDesigns() {
			p := l.perf(w, d, runOpts{})
			vals = append(vals, p)
			switch d.Name {
			case "MorphCtr":
				morph = p
			case "COSMOS":
				cos = p
			}
		}
		gain := cos/morph - 1
		vals = append(vals, fmt.Sprintf("%+.1f%%", 100*gain))
		t.Row(vals...)
		sumM += morph
		sumC += cos
		n++
	}
	t.Row("geomean-ish avg", sumM/float64(n), "", "", sumC/float64(n),
		fmt.Sprintf("%+.1f%%", 100*(sumC/sumM-1)))
	return t
}

// Fig11 reports the CTR cache miss rate of each design variant on the
// graph algorithms.
func Fig11(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 11: CTR cache miss rate per design",
		"workload", "MorphCtr", "COSMOS-DP", "COSMOS-CP", "COSMOS")
	for _, w := range workloads.GraphNames() {
		row := []interface{}{w}
		for _, d := range evalDesigns() {
			row = append(row, stats.Pct(l.run(w, d, runOpts{}).CtrMissRate))
		}
		t.Row(row...)
	}
	return t
}

// Fig12 decomposes the data location predictor's decisions on each graph
// algorithm under full COSMOS: correct/incorrect on-chip and off-chip
// shares plus overall accuracy.
func Fig12(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 12: data location prediction distribution and accuracy",
		"workload", "on-ok", "on-wrong", "off-ok", "off-wrong", "accuracy")
	for _, w := range workloads.GraphNames() {
		r := l.run(w, secmem.DesignCosmos(), runOpts{})
		if r.DataPred == nil {
			continue
		}
		p := r.DataPred
		tot := float64(p.Total())
		f := func(v uint64) string { return stats.Pct(float64(v) / tot) }
		t.Row(w, f(p.PredOnCorrect), f(p.PredOnWrong), f(p.PredOffCorrect), f(p.PredOffWrong),
			stats.Pct(p.Accuracy()))
	}
	return t
}

// Fig13 compares the share of CTR accesses classified good locality under
// full COSMOS (early CTR stream) and COSMOS-CP (post-LLC stream): early
// access surfaces far more reusable counters.
func Fig13(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 13: share of CTR accesses classified good locality",
		"workload", "COSMOS-CP", "COSMOS")
	for _, w := range workloads.GraphNames() {
		cp := l.run(w, secmem.DesignCosmosCP(), runOpts{})
		full := l.run(w, secmem.DesignCosmos(), runOpts{})
		var a, b float64
		if cp.CtrPred != nil {
			a = cp.CtrPred.GoodFraction()
		}
		if full.CtrPred != nil {
			b = full.CtrPred.GoodFraction()
		}
		t.Row(w, stats.Pct(a), stats.Pct(b))
	}
	return t
}

// Fig14 reports SMAT (Eq 1-2) for every secure design across all irregular
// workloads.
func Fig14(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 14: Secure Memory Access Time (cycles, lower is better)",
		"workload", "MorphCtr", "COSMOS-CP", "COSMOS-DP", "COSMOS", "bypass-share")
	for _, w := range evalWorkloads() {
		m := l.run(w, secmem.DesignMorph(), runOpts{})
		cp := l.run(w, secmem.DesignCosmosCP(), runOpts{})
		dp := l.run(w, secmem.DesignCosmosDP(), runOpts{})
		full := l.run(w, secmem.DesignCosmos(), runOpts{})
		bypass := 0.0
		if full.OffChipReads > 0 {
			bypass = float64(full.Bypassed) / float64(full.OffChipReads)
		}
		t.Row(w, m.SMAT, cp.SMAT, dp.SMAT, full.SMAT, stats.Pct(bypass))
	}
	return t
}

// Fig15 compares COSMOS and MorphCtr at 4 and 8 cores (16MB LLC) on the
// seven scalability workloads.
func Fig15(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 15: scalability (performance normalised to NP)",
		"workload", "Morph-4c", "COSMOS-4c", "gain-4c", "Morph-8c", "COSMOS-8c", "gain-8c")
	ws := []string{"BFS", "DFS", "TC", "GC", "CC", "SP", "DC"}
	var g4, g8 float64
	for _, w := range ws {
		m4 := l.perf(w, secmem.DesignMorph(), runOpts{cores: 4})
		c4 := l.perf(w, secmem.DesignCosmos(), runOpts{cores: 4})
		m8 := l.perf(w, secmem.DesignMorph(), runOpts{cores: 8})
		c8 := l.perf(w, secmem.DesignCosmos(), runOpts{cores: 8})
		t.Row(w, m4, c4, fmt.Sprintf("%+.1f%%", 100*(c4/m4-1)),
			m8, c8, fmt.Sprintf("%+.1f%%", 100*(c8/m8-1)))
		g4 += c4 / m4
		g8 += c8 / m8
	}
	t.Row("average", "", "", fmt.Sprintf("%+.1f%%", 100*(g4/float64(len(ws))-1)),
		"", "", fmt.Sprintf("%+.1f%%", 100*(g8/float64(len(ws))-1)))
	return t
}

// Fig16 compares full COSMOS against the idealised EMCC implementation and
// the RMCC-like memoization baseline (§6.2).
func Fig16(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 16: COSMOS vs idealised EMCC and RMCC (normalised to NP)",
		"workload", "MorphCtr", "EMCC", "RMCC", "COSMOS", "COSMOS-vs-EMCC")
	var sumE, sumC float64
	n := 0
	for _, w := range workloads.GraphNames() {
		m := l.perf(w, secmem.DesignMorph(), runOpts{})
		e := l.perf(w, secmem.DesignEMCC(), runOpts{})
		rm := l.perf(w, secmem.DesignRMCC(), runOpts{})
		c := l.perf(w, secmem.DesignCosmos(), runOpts{})
		t.Row(w, m, e, rm, c, fmt.Sprintf("%+.1f%%", 100*(c/e-1)))
		sumE += e
		sumC += c
		n++
	}
	t.Row("average", "", sumE/float64(n), "", sumC/float64(n),
		fmt.Sprintf("%+.1f%%", 100*(sumC/sumE-1)))
	return t
}

// Fig17 runs the regular ML workloads: COSMOS must not regress and gains
// stay modest because re-encryption, not CTR misses, dominates.
func Fig17(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 17: ML workloads (normalised to NP)",
		"workload", "MorphCtr", "COSMOS", "gain", "reenc-share")
	for _, w := range workloads.MLNames() {
		m := l.perf(w, secmem.DesignMorph(), runOpts{})
		c := l.perf(w, secmem.DesignCosmos(), runOpts{})
		r := l.run(w, secmem.DesignMorph(), runOpts{})
		reenc := 0.0
		if tot := r.Traffic.DataWrite + r.Traffic.ReEncWrite; tot > 0 {
			reenc = float64(r.Traffic.ReEncWrite) / float64(tot)
		}
		t.Row(w, m, c, fmt.Sprintf("%+.1f%%", 100*(c/m-1)), stats.Pct(reenc))
	}
	return t
}
