package experiments

import (
	"fmt"

	"cosmos/internal/secmem"
	"cosmos/internal/stats"
	"cosmos/internal/workloads"
)

// The §3 characterisation studies use the 128KB-per-core CTR cache.
const charCtrBytes = 128 << 10

// Fig2 compares a non-protected system against secure memory with MorphCtr
// across the eight graph algorithms: DRAM traffic decomposition (normalised
// to NP) and the CTR cache miss rate.
func Fig2(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 2: memory traffic (normalised to NP) and CTR miss rate",
		"workload", "np-traffic", "data-rd", "data-wr", "ctr", "mt-read", "mac", "re-enc", "total-vs-np", "ctr-miss")
	for _, w := range workloads.GraphNames() {
		np := l.run(w, secmem.DesignNP(), runOpts{ctrBytes: charCtrBytes})
		m := l.run(w, secmem.DesignMorph(), runOpts{ctrBytes: charCtrBytes})
		npTotal := float64(np.Traffic.Total())
		tr := m.Traffic
		norm := func(v uint64) string { return fmt.Sprintf("%.2f", float64(v)/npTotal) }
		t.Row(w,
			np.Traffic.Total(),
			norm(tr.DataRead), norm(tr.DataWrite),
			norm(tr.CtrRead+tr.CtrWrite),
			norm(tr.MTRead),
			norm(tr.MACRead+tr.MACWrite),
			norm(tr.ReEncWrite),
			stats.Ratio(float64(tr.Total())/npTotal),
			stats.Pct(m.CtrMissRate),
		)
	}
	return t
}

// Fig3 sweeps the CTR cache from 128KB to 2MB on DFS, PR and GC: the paper
// finds an 8× capacity increase buys only ≈5 points of miss rate.
func Fig3(l *Lab) *stats.Table {
	sizes := []int{128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}
	t := stats.NewTable("Fig 3: CTR cache size vs miss rate",
		"workload", "128KB", "256KB", "512KB", "1MB", "2MB")
	for _, w := range []string{"DFS", "PR", "GC"} {
		row := []interface{}{w}
		for _, sz := range sizes {
			r := l.run(w, secmem.DesignMorph(), runOpts{ctrBytes: sz})
			row = append(row, stats.Pct(r.CtrMissRate))
		}
		t.Row(row...)
	}
	return t
}

// Fig4 contrasts CTR access after the LLC (baseline) with oracle CTR access
// after every L1 miss: miss rate and MT-read traffic drop, total read/write
// traffic rises slightly.
func Fig4(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 4: CTR after L1 vs after LLC",
		"workload", "miss@LLC", "miss@L1", "Δmiss", "mt@LLC", "mt@L1", "rw@LLC", "rw@L1")
	for _, w := range workloads.GraphNames() {
		base := l.run(w, secmem.DesignMorph(), runOpts{ctrBytes: charCtrBytes})
		early := l.run(w, secmem.DesignOracleL1(), runOpts{ctrBytes: charCtrBytes})
		rw := func(tr secmem.Traffic) uint64 {
			return tr.DataRead + tr.DataWrite + tr.CtrRead + tr.CtrWrite
		}
		t.Row(w,
			stats.Pct(base.CtrMissRate), stats.Pct(early.CtrMissRate),
			fmt.Sprintf("%+.1fpp", 100*(early.CtrMissRate-base.CtrMissRate)),
			base.Traffic.MTRead, early.Traffic.MTRead,
			rw(base.Traffic), rw(early.Traffic),
		)
	}
	return t
}

// Fig5 evaluates conventional CTR-cache optimisations on DFS with CTR
// access after L1 misses: three prefetchers and three replacement policies
// against the plain LRU baseline. The paper finds none helps.
func Fig5(l *Lab) *stats.Table {
	t := stats.NewTable("Fig 5: prefetchers and replacement policies on the CTR cache (DFS)",
		"variant", "ctr-miss", "IPC", "pf-accuracy")
	base := l.run("DFS", secmem.DesignOracleL1(), runOpts{ctrBytes: charCtrBytes})
	t.Row("LRU (baseline)", stats.Pct(base.CtrMissRate), base.IPC, "-")
	for _, pf := range []string{"nextline", "stride", "berti"} {
		r := l.run("DFS", secmem.DesignOracleL1(), runOpts{ctrBytes: charCtrBytes, ctrPf: pf})
		t.Row(pf, stats.Pct(r.CtrMissRate), r.IPC, stats.Pct(r.Prefetch.Accuracy()))
	}
	for _, pol := range []string{"RRIP", "SHiP", "Mockingjay"} {
		r := l.run("DFS", secmem.DesignOracleL1(), runOpts{ctrBytes: charCtrBytes, ctrPolicy: pol})
		t.Row(pol, stats.Pct(r.CtrMissRate), r.IPC, "-")
	}
	return t
}
