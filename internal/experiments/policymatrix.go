package experiments

import (
	"fmt"

	"cosmos/internal/policytrain"
	"cosmos/internal/rl"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/stats"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

// policyMatrixWorkloads are the workloads policies are trained on; every
// trained pair is then served on every one of them, so the diagonal is
// in-distribution and the off-diagonal cells measure generalization.
var policyMatrixWorkloads = []string{"mcf", "DFS"}

// PolicyMatrix runs the policy zoo's train-on-A/serve-on-B generalization
// matrix: an online-tabular COSMOS run on workload A records both
// predictors' transition streams, offline perceptrons are trained on them
// (one per role) and frozen, and the frozen pair is deployed on every
// workload B. Serve runs flow through the orchestrator (memoised, stored,
// resumable — the frozen weights enter the spec hash); baseline-perf is
// the same workload under COSMOS's default online tabular policies.
func PolicyMatrix(l *Lab) *stats.Table {
	t := stats.NewTable("Policy zoo: train-on-A / serve-on-B (COSMOS, frozen perceptrons, both roles)",
		"trained-on", "served-on", "data-agree", "ctr-agree", "perf-vs-NP", "baseline-perf", "ctr-miss")
	for _, trainOn := range policyMatrixWorkloads {
		if l.Err() != nil || l.canceled() {
			break
		}
		pair, err := l.trainPerceptrons(trainOn)
		if err != nil {
			l.fail(err)
			break
		}
		for _, serveOn := range policyMatrixWorkloads {
			if l.Err() != nil {
				break
			}
			base := l.spec(serveOn, secmem.DesignCosmos(), runOpts{})
			served := l.runSpec(l.withPolicies(base, pair.data.spec(), pair.ctr.spec()))
			np := l.run(serveOn, secmem.DesignNP(), runOpts{})
			perf := 0.0
			if served.Cycles != 0 {
				perf = float64(np.Cycles) / float64(served.Cycles)
			}
			t.Row(trainOn, serveOn,
				stats.Pct(pair.data.stats.Agreement), stats.Pct(pair.ctr.stats.Agreement),
				fmt.Sprintf("%.3f", perf),
				fmt.Sprintf("%.3f", l.perf(serveOn, secmem.DesignCosmos(), runOpts{})),
				stats.Pct(served.CtrMissRate))
		}
	}
	return t
}

// trainedPolicy is one frozen role of a trained pair.
type trainedPolicy struct {
	snapshot rl.Snapshot
	stats    policytrain.Stats
}

func (tp *trainedPolicy) spec() *rl.PolicySpec {
	return &rl.PolicySpec{Kind: tp.snapshot.Kind, Frozen: &tp.snapshot}
}

type trainedPair struct {
	data, ctr trainedPolicy
}

// trainPerceptrons records both predictors' transition streams from one
// online tabular COSMOS run on the workload, trains a perceptron per role
// offline, and returns the pair with provenance stamped. The recording run
// bypasses the orchestrator (its product is the transition streams, not
// Results) but honours the lab's context.
func (l *Lab) trainPerceptrons(workload string) (trainedPair, error) {
	var pair trainedPair
	gen, err := workloads.Build(workload, workloads.Options{
		Threads:     4,
		Seed:        l.Scale.Seed,
		GraphNodes:  l.Scale.GraphNodes,
		GraphDegree: l.Scale.GraphDegree,
	})
	if err != nil {
		return pair, fmt.Errorf("experiments: policy-matrix: %w", err)
	}
	cfg := sim.DefaultConfig()
	cfg.MC.Seed = l.Scale.Seed
	cfg.MC.Params.Seed = l.Scale.Seed
	s := sim.New(cfg, secmem.DesignCosmos())
	streams := map[string]*[]policytrain.Record{
		policytrain.RoleData: {},
		policytrain.RoleCtr:  {},
	}
	record := func(role string) func(rl.Transition) {
		recs := streams[role]
		return func(tr rl.Transition) {
			*recs = append(*recs, policytrain.Record{Role: role, Transition: tr})
		}
	}
	s.MC().DataPred.AttachRecorder(record(policytrain.RoleData))
	s.MC().CtrPred.AttachRecorder(record(policytrain.RoleCtr))
	if _, err := s.RunContext(l.ctx, trace.Limit(gen, l.Scale.Accesses), l.Scale.Accesses); err != nil {
		return pair, fmt.Errorf("experiments: policy-matrix: record %s: %w", workload, err)
	}
	for role, out := range map[string]*trainedPolicy{
		policytrain.RoleData: &pair.data,
		policytrain.RoleCtr:  &pair.ctr,
	} {
		recs := *streams[role]
		if len(recs) == 0 {
			return pair, fmt.Errorf("experiments: policy-matrix: %s produced no %s transitions", workload, role)
		}
		p, err := rl.NewPolicy(rl.PolicySpec{Kind: rl.KindPerceptron}, l.Scale.Seed)
		if err != nil {
			return pair, fmt.Errorf("experiments: policy-matrix: %w", err)
		}
		st := policytrain.Train(p, recs, 2)
		sn := p.Snapshot()
		sn.Meta.Role = role
		sn.Meta.TrainedOn = workload
		sn.Meta.Transitions = st.Transitions * st.Epochs
		*out = trainedPolicy{snapshot: sn, stats: st}
	}
	return pair, nil
}
