// Package rl provides the tabular reinforcement-learning primitives used by
// COSMOS's two predictors: a splitmix64-based state hash over physical
// addresses, Q-tables (floating point and hardware-faithful 8-bit fixed
// point), ε-greedy action selection, and the temporal-difference update rules
// from Algorithms 1 and 3 of the paper.
package rl

// SplitMix64 is the splitmix64 mixing function (Vigna, 2017). The paper uses
// a variant of it with prime multipliers to hash physical-address bits 6..47
// into a uniform state index.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HashState maps a physical address to a state index in [0, numStates).
// Bits 6..47 of the address (the cache-line number within a 256TB space) feed
// the hash, per §4.1.1 of the paper; numStates must be a power of two.
func HashState(addr uint64, numStates int) int {
	lineBits := (addr >> 6) & ((1 << 42) - 1)
	return int(SplitMix64(lineBits) & uint64(numStates-1))
}

// Rand is a small deterministic PRNG (splitmix64 stream) used for ε-greedy
// exploration so that simulations are exactly reproducible.
type Rand struct{ state uint64 }

// NewRand seeds a new deterministic generator.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next raw 64-bit value.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (r *Rand) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}
