package rl

import (
	"fmt"
	"strings"

	"cosmos/internal/telemetry"
)

// Policy is the learned-decision abstraction both COSMOS predictor roles
// (data location, CTR locality) are built on. A policy maps a raw key — the
// physical address for the data predictor, the counter-block index shifted
// to address form for the locality predictor — to a two-action decision,
// and learns from scalar-reward transitions.
//
// The key-based signature (rather than a pre-hashed state index) is what
// lets non-tabular policies derive multiple features from the same input:
// the tabular agent hashes the key into its single state index internally
// with exactly the arithmetic the predictors used to run, so refactoring
// them onto this interface is bit-identical; the perceptron and MLP hash
// the key several ways.
//
// All implementations are deterministic: the same construction parameters
// and the same call sequence produce the same decisions on every platform
// (the non-tabular policies use integer-only inference for exactly this
// reason).
type Policy interface {
	// Kind returns the registry name ("tabular", "perceptron", "mlp").
	Kind() string
	// Act returns the decision for a key: the derived state index (what the
	// CET records) and the chosen action.
	Act(key uint64) Decision
	// Learn applies one transition. Frozen policies ignore it.
	Learn(t Transition)
	// Value returns the policy's estimate for (key, state, action) — the
	// bootstrap term the predictors feed back into later transitions.
	Value(key uint64, state, action int) float64
	// Score maps the decision's confidence onto the unsigned 8-bit scale the
	// LCR-CTR cache stores per line (128 = neutral).
	Score(key uint64, state, action int) uint8
	// Freeze permanently disables learning and exploration: the policy
	// becomes a pure deterministic function of the key.
	Freeze()
	// Frozen reports whether Freeze was called (or the policy was built from
	// a frozen snapshot).
	Frozen() bool
	// Reset discards all learned weights (crash model: policy state lives in
	// volatile SRAM). Frozen policies keep their weights — a frozen policy
	// models a ROM/fuse deployment, not volatile state.
	Reset()
	// Snapshot serialises the policy into the versioned cosmos-policy-v1
	// form; Restore loads one previously produced by the same kind.
	Snapshot() Snapshot
	Restore(sn Snapshot) error
	// StorageBits reports the hardware cost of the policy's state in bits,
	// comparable across kinds (the tournament's x-axis).
	StorageBits() int
	// ExplorationRate reports the observed fraction of random decisions
	// (always 0 for the deterministic non-tabular policies).
	ExplorationRate() float64
	// RegisterMetrics exposes the policy's counters under a telemetry scope.
	RegisterMetrics(s *telemetry.Scope)
}

// Decision is one Act outcome: the state index derived from the key (stored
// in the CET so later grading can reference it) and the chosen action.
type Decision struct {
	State  int
	Action int
}

// Transition is one learning sample: the key and decision it grades, the
// scalar reward, and the bootstrap value of the successor decision. It is
// the unit the offline trainer (internal/policytrain) replays.
type Transition struct {
	Key    uint64  `json:"key"`
	State  int     `json:"state"`
	Action int     `json:"action"`
	Reward float64 `json:"reward"`
	Next   float64 `json:"next"`
}

// Policy kind names.
const (
	KindTabular    = "tabular"
	KindPerceptron = "perceptron"
	KindMLP        = "mlp"
)

// PolicyKinds lists the registered policy kinds in presentation order.
func PolicyKinds() []string {
	return []string{KindTabular, KindPerceptron, KindMLP}
}

// PolicyKindDescriptions maps each kind to its one-line description (the
// -list-policies output).
func PolicyKindDescriptions() []struct{ Kind, Desc string } {
	return []struct{ Kind, Desc string }{
		{KindTabular, "tabular Q-learning with ε-greedy exploration (the paper's design; Table 1/2)"},
		{KindPerceptron, "hashed multi-feature perceptron, saturating 8-bit integer weights"},
		{KindMLP, "fixed-point two-layer MLP, int16 weights, shift-based integer inference"},
	}
}

// PolicySpec selects and parameterises a Policy. A nil *PolicySpec in a
// configuration means "the tabular default built from the surrounding
// parameters" — and, because every embedding struct tags the pointer
// `json:",omitempty"`, the nil case encodes to nothing, keeping every
// pre-policy runner spec hash (and the result stores keyed by them) intact.
//
// Zero hyper-parameter fields take the kind's defaults, so {Kind:
// "perceptron"} is a complete spec.
type PolicySpec struct {
	Kind string `json:"kind"`

	// Tabular hyper-parameters (also the trainer's TD parameters when a
	// tabular policy is trained offline).
	Alpha   float64 `json:"alpha,omitempty"`
	Gamma   float64 `json:"gamma,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`
	// States sizes the tabular Q-table (power of two; default 16384).
	States int `json:"states,omitempty"`

	// Perceptron shape: Features hashed feature tables of Buckets entries
	// each; Theta is the training margin.
	Features int `json:"features,omitempty"`
	Buckets  int `json:"buckets,omitempty"`
	Theta    int `json:"theta,omitempty"`

	// MLP shape: Inputs hashed input features, Hidden units.
	Inputs int `json:"inputs,omitempty"`
	Hidden int `json:"hidden,omitempty"`

	// Frozen, when non-nil, deploys the inlined snapshot instead of a
	// freshly initialised policy: the policy is restored from it and frozen.
	// Inlining (rather than referencing a file path) keeps specs
	// self-contained, so the runner's content hash covers the exact weights
	// a run decided with.
	Frozen *Snapshot `json:"frozen,omitempty"`
}

// Validate rejects specs NewPolicy cannot build, with errors naming the
// offending field; an unknown kind lists every valid one (same UX as the
// design/workload registries).
func (sp *PolicySpec) Validate() error {
	if sp == nil {
		return nil
	}
	switch sp.Kind {
	case KindTabular, KindPerceptron, KindMLP:
	case "":
		if sp.Frozen == nil {
			return fmt.Errorf("rl: policy spec has empty kind (valid: %s)",
				strings.Join(PolicyKinds(), ", "))
		}
	default:
		return fmt.Errorf("rl: unknown policy kind %q (valid: %s)",
			sp.Kind, strings.Join(PolicyKinds(), ", "))
	}
	if sp.States != 0 && (sp.States < 0 || sp.States&(sp.States-1) != 0) {
		return fmt.Errorf("rl: policy states %d must be a positive power of two", sp.States)
	}
	if sp.Buckets != 0 && (sp.Buckets < 0 || sp.Buckets&(sp.Buckets-1) != 0) {
		return fmt.Errorf("rl: policy buckets %d must be a positive power of two", sp.Buckets)
	}
	for name, v := range map[string]int{
		"features": sp.Features, "theta": sp.Theta,
		"inputs": sp.Inputs, "hidden": sp.Hidden,
	} {
		if v < 0 {
			return fmt.Errorf("rl: policy %s %d must not be negative", name, v)
		}
	}
	if sp.Frozen != nil {
		if err := sp.Frozen.validate(); err != nil {
			return err
		}
		if sp.Kind != "" && sp.Kind != sp.Frozen.Kind {
			return fmt.Errorf("rl: policy kind %q does not match frozen snapshot kind %q",
				sp.Kind, sp.Frozen.Kind)
		}
	}
	return nil
}

// NewPolicy builds the policy a spec describes. seed feeds the kind's
// deterministic initialisation (exploration stream for tabular, weight
// init for the MLP). A spec carrying a Frozen snapshot restores it and
// returns the policy frozen.
func NewPolicy(sp PolicySpec, seed uint64) (Policy, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if sp.Frozen != nil {
		p, err := FromSnapshot(*sp.Frozen)
		if err != nil {
			return nil, err
		}
		p.Freeze()
		return p, nil
	}
	switch sp.Kind {
	case KindTabular:
		states := sp.States
		if states == 0 {
			states = 16384
		}
		alpha, gamma, eps := sp.Alpha, sp.Gamma, sp.Epsilon
		if alpha == 0 {
			alpha = 0.09
		}
		if gamma == 0 {
			gamma = 0.88
		}
		return NewAgent(NewQTable(states, 2), alpha, gamma, eps, seed), nil
	case KindPerceptron:
		return NewPerceptron(sp.Features, sp.Buckets, int32(sp.Theta)), nil
	case KindMLP:
		return NewMLP(sp.Inputs, sp.Hidden, seed), nil
	}
	return nil, fmt.Errorf("rl: unknown policy kind %q (valid: %s)",
		sp.Kind, strings.Join(PolicyKinds(), ", "))
}
