package rl

import (
	"fmt"

	"cosmos/internal/telemetry"
)

// MLP defaults. 16 inputs × 8 hidden × 2 outputs at 16-bit weights is
// (16·8 + 8 + 8·2 + 2) × 16 ≈ 2.5 Kbit — the cheapest policy in the zoo.
const (
	defaultMLPInputs = 16
	defaultMLPHidden = 8
	mlpActions       = 2
	mlpWeightMax     = 127 // saturation bound for every weight and bias
	mlpActShift      = 2   // hidden pre-activation >> shift, the "activation"
	mlpActMax        = 127 // post-shift activation clamp
	mlpStateMask     = 16383
)

// MLP is a small two-layer network evaluated entirely in fixed-point
// integer arithmetic: ±1 input features hashed from the key, a hidden layer
// whose ReLU is a right-shift plus clamp, and a two-way output argmax.
// Weights are int16, saturating at ±127; training is a sign-sign delta rule.
// No float ever enters inference or learning, so decisions are identical on
// every platform — the property the determinism tests pin.
//
// Weight initialisation is seeded through SplitMix64, so two MLPs built
// with the same (inputs, hidden, seed) triple are identical.
type MLP struct {
	inputs int
	hidden int
	seed   uint64
	// Parameters, all clamped to ±mlpWeightMax:
	w1     []int16 // [hidden][inputs]
	b1     []int16 // [hidden]
	w2     []int16 // [action][hidden]
	b2     []int16 // [action]
	frozen bool

	Decisions uint64
	Updates   uint64

	// scratch reused across calls to keep Act allocation-free.
	x []int8  // input features, ±1
	h []int32 // hidden pre-activations
	a []int32 // hidden activations
}

var _ Policy = (*MLP)(nil)

// NewMLP constructs a deterministically initialised MLP. Zero dimensions
// take the defaults.
func NewMLP(inputs, hidden int, seed uint64) *MLP {
	if inputs == 0 {
		inputs = defaultMLPInputs
	}
	if hidden == 0 {
		hidden = defaultMLPHidden
	}
	if inputs < 0 || hidden < 0 {
		panic(fmt.Sprintf("rl: mlp dimensions must be positive, got inputs=%d hidden=%d", inputs, hidden))
	}
	m := &MLP{inputs: inputs, hidden: hidden, seed: seed}
	m.alloc()
	m.init()
	return m
}

func (m *MLP) alloc() {
	m.w1 = make([]int16, m.hidden*m.inputs)
	m.b1 = make([]int16, m.hidden)
	m.w2 = make([]int16, mlpActions*m.hidden)
	m.b2 = make([]int16, mlpActions)
	m.x = make([]int8, m.inputs)
	m.h = make([]int32, m.hidden)
	m.a = make([]int32, m.hidden)
}

// init fills the first layer with small seeded weights in [-8, 7] (the
// second layer starts at zero, so an untrained MLP is unbiased between
// actions and ties break toward action 0).
func (m *MLP) init() {
	s := m.seed ^ 0x3117a9e5b1c60000
	for i := range m.w1 {
		s += 0x9e3779b97f4a7c15
		m.w1[i] = int16(SplitMix64(s)&15) - 8
	}
	clear(m.b1)
	clear(m.w2)
	clear(m.b2)
}

// feature extracts input i as ±1 from a salted hash of the key, each input
// looking at a different address granularity (same scheme as the
// perceptron's buckets, one bit instead of one counter).
func mlpFeature(i int, key uint64) int8 {
	shift := uint(6 + i%8)
	h := SplitMix64((key>>shift)*featureSalts[i%len(featureSalts)] + uint64(i))
	if h&1 == 0 {
		return -1
	}
	return 1
}

// forward runs integer inference for key, filling the scratch slices and
// returning the two output activations.
func (m *MLP) forward(key uint64) (o0, o1 int32) {
	for i := 0; i < m.inputs; i++ {
		m.x[i] = mlpFeature(i, key)
	}
	for j := 0; j < m.hidden; j++ {
		acc := int32(m.b1[j])
		row := j * m.inputs
		for i := 0; i < m.inputs; i++ {
			w := int32(m.w1[row+i])
			if m.x[i] >= 0 {
				acc += w
			} else {
				acc -= w
			}
		}
		m.h[j] = acc
		if acc < 0 {
			acc = 0
		}
		acc >>= mlpActShift
		if acc > mlpActMax {
			acc = mlpActMax
		}
		m.a[j] = acc
	}
	o0, o1 = int32(m.b2[0]), int32(m.b2[1])
	for j := 0; j < m.hidden; j++ {
		o0 += int32(m.w2[j]) * m.a[j]
		o1 += int32(m.w2[m.hidden+j]) * m.a[j]
	}
	return o0, o1
}

// Kind implements Policy.
func (m *MLP) Kind() string { return KindMLP }

// Act runs inference and returns the argmax action; ties break toward the
// lower action, matching the Q-table convention. The state is a stable
// hashed tag of the key.
func (m *MLP) Act(key uint64) Decision {
	m.Decisions++
	o0, o1 := m.forward(key)
	a := 0
	if o1 > o0 {
		a = 1
	}
	return Decision{State: int(SplitMix64(key) & mlpStateMask), Action: a}
}

// Learn applies a sign-sign update toward the reward-implied target action
// (taken action if rewarded, its complement if punished): the second layer
// moves each active hidden unit's weight toward the target output, and the
// first layer nudges active units' weights along the input signs.
func (m *MLP) Learn(t Transition) {
	if m.frozen || t.Reward == 0 {
		return
	}
	want := t.Action
	if t.Reward < 0 {
		want = 1 - want
	}
	o0, o1 := m.forward(t.Key)
	pred := 0
	if o1 > o0 {
		pred = 1
	}
	if pred == want {
		return
	}
	m.Updates++
	other := 1 - want
	for j := 0; j < m.hidden; j++ {
		if m.a[j] > 0 {
			m.w2[want*m.hidden+j] = satAdd16(m.w2[want*m.hidden+j], 1)
			m.w2[other*m.hidden+j] = satAdd16(m.w2[other*m.hidden+j], -1)
		}
		// First layer: push units the target output weights positively to
		// fire (and vice versa), following each input's sign.
		var d int16
		switch {
		case m.w2[want*m.hidden+j] > m.w2[other*m.hidden+j]:
			d = 1
		case m.w2[want*m.hidden+j] < m.w2[other*m.hidden+j]:
			d = -1
		default:
			continue
		}
		row := j * m.inputs
		for i := 0; i < m.inputs; i++ {
			if m.x[i] >= 0 {
				m.w1[row+i] = satAdd16(m.w1[row+i], d)
			} else {
				m.w1[row+i] = satAdd16(m.w1[row+i], -d)
			}
		}
		m.b1[j] = satAdd16(m.b1[j], d)
	}
	m.b2[want] = satAdd16(m.b2[want], 1)
	m.b2[other] = satAdd16(m.b2[other], -1)
}

// Value returns the chosen action's output margin scaled into the tabular Q
// range (state is ignored; the MLP re-derives everything from the key).
func (m *MLP) Value(key uint64, _, action int) float64 {
	o0, o1 := m.forward(key)
	diff := o0 - o1
	if action == 1 {
		diff = -diff
	}
	// Normalise by the maximum possible margin so Value stays within ±QClamp.
	max := float64(m.hidden*mlpWeightMax*mlpActMax + mlpWeightMax)
	return float64(diff) * QClamp / max
}

// Score maps the decision margin onto the unsigned 8-bit confidence scale.
func (m *MLP) Score(key uint64, _, action int) uint8 {
	o0, o1 := m.forward(key)
	diff := o0 - o1
	if action == 1 {
		diff = -diff
	}
	v := int64(128) + int64(diff)>>3
	if v < 0 {
		v = 0
	} else if v > 255 {
		v = 255
	}
	return uint8(v)
}

// Freeze disables learning.
func (m *MLP) Freeze() { m.frozen = true }

// Frozen reports whether Freeze was called.
func (m *MLP) Frozen() bool { return m.frozen }

// Reset re-initialises the weights from the seed unless frozen.
func (m *MLP) Reset() {
	if m.frozen {
		return
	}
	m.init()
}

// StorageBits reports the parameter cost at 16 bits per weight/bias.
func (m *MLP) StorageBits() int {
	return (len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2)) * 16
}

// ExplorationRate is always 0: the MLP never explores.
func (m *MLP) ExplorationRate() float64 { return 0 }

// Snapshot serialises all parameters as one int16 little-endian stream in
// w1, b1, w2, b2 order.
func (m *MLP) Snapshot() Snapshot {
	n := len(m.w1) + len(m.b1) + len(m.w2) + len(m.b2)
	w := make([]byte, 0, n*2)
	for _, layer := range [][]int16{m.w1, m.b1, m.w2, m.b2} {
		for _, v := range layer {
			w = appendInt16(w, v)
		}
	}
	return Snapshot{
		Version: SnapshotVersion,
		Kind:    KindMLP,
		Meta: SnapshotMeta{
			Inputs: m.inputs,
			Hidden: m.hidden,
			Seed:   m.seed,
		},
		Weights: w,
	}
}

// Restore loads an MLP snapshot.
func (m *MLP) Restore(sn Snapshot) error {
	if err := sn.validate(); err != nil {
		return err
	}
	if sn.Kind != KindMLP {
		return fmt.Errorf("rl: cannot restore %q snapshot into mlp", sn.Kind)
	}
	inputs, hidden := sn.Meta.Inputs, sn.Meta.Hidden
	if inputs <= 0 || hidden <= 0 {
		return fmt.Errorf("rl: mlp snapshot dimensions must be positive, got inputs=%d hidden=%d", inputs, hidden)
	}
	n := hidden*inputs + hidden + mlpActions*hidden + mlpActions
	if want := n * 2; len(sn.Weights) != want {
		return fmt.Errorf("rl: mlp snapshot has %d weight bytes, want %d", len(sn.Weights), want)
	}
	m.inputs, m.hidden, m.seed = inputs, hidden, sn.Meta.Seed
	m.alloc()
	k := 0
	for _, layer := range [][]int16{m.w1, m.b1, m.w2, m.b2} {
		for i := range layer {
			layer[i] = int16At(sn.Weights, k)
			k++
		}
	}
	return nil
}

// RegisterMetrics registers decision/update counters and the update rate.
func (m *MLP) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("decisions", &m.Decisions)
	s.Counter("updates", &m.Updates)
	s.RateOf("update_rate", &m.Updates, &m.Decisions)
}

// satAdd16 adds with saturation at ±mlpWeightMax.
func satAdd16(w, d int16) int16 {
	w += d
	if w > mlpWeightMax {
		return mlpWeightMax
	}
	if w < -mlpWeightMax {
		return -mlpWeightMax
	}
	return w
}
