package rl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values computed from the canonical splitmix64 algorithm.
	if SplitMix64(0) == 0 {
		t.Error("SplitMix64(0) should not be 0")
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Error("distinct inputs should not collide trivially")
	}
	// Determinism.
	if SplitMix64(42) != SplitMix64(42) {
		t.Error("SplitMix64 must be deterministic")
	}
}

func TestHashStateRange(t *testing.T) {
	f := func(addr uint64) bool {
		s := HashState(addr, 16384)
		return s >= 0 && s < 16384
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashStateUsesLineBitsOnly(t *testing.T) {
	// Two addresses in the same 64B line must map to the same state.
	a, b := uint64(0x12345678), uint64(0x12345678)|0x3f
	if HashState(a, 1024) != HashState(b&^63|a&^63|63, 1024) {
		// construct same line, different offset
	}
	if HashState(0x1000, 1024) != HashState(0x1001, 1024) {
		t.Error("offset bits must not affect state")
	}
	if HashState(0x1000, 1024) != HashState(0x103f, 1024) {
		t.Error("offset bits must not affect state")
	}
}

func TestHashStateDistribution(t *testing.T) {
	// Sequential lines should spread roughly uniformly over states.
	const states = 256
	counts := make([]int, states)
	const n = states * 200
	for i := 0; i < n; i++ {
		counts[HashState(uint64(i)*64, states)]++
	}
	mean := float64(n) / states
	for s, c := range counts {
		if float64(c) < mean*0.5 || float64(c) > mean*1.5 {
			t.Fatalf("state %d count %d far from mean %.1f — poor hash spread", s, c, mean)
		}
	}
}

func TestQTableUpdateConverges(t *testing.T) {
	tb := NewQTable(4, 2)
	// Repeatedly reward action 1 in state 0; its Q-value should dominate.
	for i := 0; i < 500; i++ {
		tb.Update(0, 1, 10, 0, 0.1, 0)
		tb.Update(0, 0, -10, 0, 0.1, 0)
	}
	a, q := tb.Best(0)
	if a != 1 {
		t.Fatalf("Best action = %d, want 1 (q=%v)", a, q)
	}
	if math.Abs(tb.Q(0, 1)-10) > 0.01 {
		t.Errorf("Q(0,1) = %v, want ≈10", tb.Q(0, 1))
	}
	if math.Abs(tb.Q(0, 0)+10) > 0.01 {
		t.Errorf("Q(0,0) = %v, want ≈-10", tb.Q(0, 0))
	}
}

func TestQTableClamp(t *testing.T) {
	tb := NewQTable(2, 2)
	for i := 0; i < 10000; i++ {
		tb.Update(0, 0, 100, 127, 0.5, 1)
	}
	if tb.Q(0, 0) > QClamp {
		t.Errorf("Q exceeded clamp: %v", tb.Q(0, 0))
	}
	for i := 0; i < 10000; i++ {
		tb.Update(0, 1, -100, -127, 0.5, 1)
	}
	if tb.Q(0, 1) < -QClamp {
		t.Errorf("Q below clamp: %v", tb.Q(0, 1))
	}
}

func TestQTableDiscountedBootstrap(t *testing.T) {
	tb := NewQTable(2, 2)
	// One update with α=1: Q = r + γ·next exactly.
	tb.Update(1, 0, 5, 10, 1.0, 0.5)
	if got := tb.Q(1, 0); math.Abs(got-10) > 1e-12 {
		t.Errorf("Q = %v, want 10 (5 + 0.5·10)", got)
	}
}

func TestQuantizeAndScore(t *testing.T) {
	tb := NewQTable(2, 2)
	tb.SetQ(0, 0, 3.7)
	if tb.Quantize(0, 0) != 3 {
		t.Errorf("Quantize(3.7) = %d, want 3", tb.Quantize(0, 0))
	}
	tb.SetQ(0, 1, -200)
	if tb.Quantize(0, 1) != -128 {
		t.Errorf("Quantize(-200) = %d, want -128", tb.Quantize(0, 1))
	}
	tb.SetQ(1, 0, 500)
	if tb.Quantize(1, 0) != 127 {
		t.Errorf("Quantize(500) = %d, want 127", tb.Quantize(1, 0))
	}
	if tb.Score(1, 0) != 255 {
		t.Errorf("Score(max) = %d, want 255", tb.Score(1, 0))
	}
	if tb.Score(0, 1) != 0 {
		t.Errorf("Score(min) = %d, want 0", tb.Score(0, 1))
	}
}

func TestQTableStorageBits(t *testing.T) {
	tb := NewQTable(16384, 2)
	// Table 2: 16384 entries × 16 bits = 32KB.
	if got := tb.StorageBits() / 8 / 1024; got != 32 {
		t.Errorf("storage = %dKB, want 32KB", got)
	}
}

func TestNewQTablePanics(t *testing.T) {
	for _, bad := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQTable(%d, 2) should panic", bad)
				}
			}()
			NewQTable(bad, 2)
		}()
	}
}

func TestAgentEpsilonGreedy(t *testing.T) {
	tb := NewQTable(2, 2)
	tb.SetQ(0, 1, 50) // greedy action is 1
	ag := NewAgent(tb, 0.1, 0.9, 0.0, 1)
	for i := 0; i < 100; i++ {
		if ag.ActState(0) != 1 {
			t.Fatal("ε=0 agent must always act greedily")
		}
	}
	if ag.ExplorationRate() != 0 {
		t.Error("ε=0 agent should never explore")
	}

	agExplore := NewAgent(tb, 0.1, 0.9, 1.0, 2)
	zeros := 0
	for i := 0; i < 1000; i++ {
		if agExplore.ActState(0) == 0 {
			zeros++
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("ε=1 agent picked action 0 %d/1000 times, want ≈500", zeros)
	}
	if agExplore.ExplorationRate() != 1 {
		t.Error("ε=1 agent should always explore")
	}
}

func TestAgentExplorationRateMatchesEpsilon(t *testing.T) {
	tb := NewQTable(2, 2)
	ag := NewAgent(tb, 0.1, 0.9, 0.1, 3)
	for i := 0; i < 20000; i++ {
		ag.ActState(0)
	}
	r := ag.ExplorationRate()
	if r < 0.08 || r > 0.12 {
		t.Errorf("exploration rate %v, want ≈0.1", r)
	}
}

func TestAgentLearnsBinaryTask(t *testing.T) {
	// States 0..63: even states reward action 0, odd states reward action 1.
	tb := NewQTable(64, 2)
	ag := NewAgent(tb, 0.2, 0.0, 0.1, 7)
	rng := NewRand(99)
	for i := 0; i < 50000; i++ {
		s := rng.Intn(64)
		a := ag.ActState(s)
		want := s & 1
		r := -10.0
		if a == want {
			r = 10
		}
		ag.Learn(Transition{State: s, Action: a, Reward: r})
	}
	correct := 0
	for s := 0; s < 64; s++ {
		a, _ := tb.Best(s)
		if a == s&1 {
			correct++
		}
	}
	if correct < 62 {
		t.Errorf("agent learned %d/64 states, want ≥62", correct)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(5), NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams must match")
		}
	}
	f := NewRand(9)
	for i := 0; i < 1000; i++ {
		v := f.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		n := f.Intn(17)
		if n < 0 || n >= 17 {
			t.Fatalf("Intn out of range: %v", n)
		}
	}
}

func TestQTablePropertyMonotoneTowardTarget(t *testing.T) {
	// Property: a single update moves Q(s,a) strictly toward r + γ·next.
	f := func(r8 int8, next8 int8, q8 int8) bool {
		tb := NewQTable(2, 2)
		r, next, q0 := float64(r8), float64(next8)/2, float64(q8)
		tb.SetQ(0, 0, q0)
		target := r + 0.5*next
		if target > QClamp {
			target = QClamp
		} else if target < -QClamp {
			target = -QClamp
		}
		tb.Update(0, 0, r, next, 0.3, 0.5)
		q1 := tb.Q(0, 0)
		d0 := math.Abs(target - q0)
		d1 := math.Abs(target - q1)
		return d1 <= d0+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
