package rl

import (
	"fmt"

	"cosmos/internal/telemetry"
)

// Perceptron defaults; chosen so the default shape's StorageBits (4 tables ×
// 1024 buckets × 16-bit weights = 64 Kbit) sits below the default tabular
// table (16384 × 2 × 8 = 256 Kbit).
const (
	defaultPerceptronFeatures = 4
	defaultPerceptronBuckets  = 1024
	defaultPerceptronTheta    = 24
	perceptronWeightMax       = 127
)

// Perceptron is a hashed multi-feature perceptron in the style of
// perceptron branch predictors: each of F feature tables is indexed by a
// differently-salted hash of the key, the indexed int16 weights are summed,
// and the sign of the sum picks the action (sum ≥ 0 ⇒ action 1). Training
// is the classic margin rule — update only on a wrong sign or a sum inside
// ±θ — with weights saturating at ±127, so inference and learning are both
// integer-only and platform-independent.
//
// There is no exploration and no randomness: a perceptron with the same
// weights always makes the same decisions, which is what makes frozen
// deployments bit-reproducible.
type Perceptron struct {
	features int
	buckets  int
	theta    int32
	w        []int16 // row-major [feature][bucket]
	frozen   bool

	Decisions uint64
	Updates   uint64
}

var _ Policy = (*Perceptron)(nil)

// NewPerceptron constructs a zero-weight perceptron. Zero arguments take the
// defaults; buckets must be a power of two (the hash is masked into it).
func NewPerceptron(features, buckets int, theta int32) *Perceptron {
	if features == 0 {
		features = defaultPerceptronFeatures
	}
	if buckets == 0 {
		buckets = defaultPerceptronBuckets
	}
	if theta == 0 {
		theta = defaultPerceptronTheta
	}
	if features < 0 {
		panic(fmt.Sprintf("rl: perceptron features must be positive, got %d", features))
	}
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		panic(fmt.Sprintf("rl: perceptron buckets must be a positive power of two, got %d", buckets))
	}
	return &Perceptron{
		features: features,
		buckets:  buckets,
		theta:    theta,
		w:        make([]int16, features*buckets),
	}
}

// featureSalts are fixed odd multipliers decorrelating the per-feature
// hashes of the same key (splitmix64 increments of different streams).
var featureSalts = [...]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb,
	0xd6e8feb86659fd93, 0xa0761d6478bd642f, 0xe7037ed1a0b428db,
	0x8ebc6af09c88c6e3, 0x589965cc75374cc3,
}

// bucketOf returns the weight index of feature f for key. The features look
// at progressively coarser address granularities (cache line, 4-line, page,
// 16-page …) so the summed weights can express both fine reuse and
// region-level locality.
func (pc *Perceptron) bucketOf(f int, key uint64) int {
	shift := uint(6 + 2*f)
	h := SplitMix64((key >> shift) * featureSalts[f%len(featureSalts)])
	return f*pc.buckets + int(h&uint64(pc.buckets-1))
}

// sum returns the integer activation for key. int32 cannot overflow: |w| ≤
// 127 and features is small.
func (pc *Perceptron) sum(key uint64) int32 {
	var y int32
	for f := 0; f < pc.features; f++ {
		y += int32(pc.w[pc.bucketOf(f, key)])
	}
	return y
}

// Kind implements Policy.
func (pc *Perceptron) Kind() string { return KindPerceptron }

// Act returns action 1 iff the summed weights are non-negative. The state
// reported is the first feature's bucket index — a stable per-key tag the
// CET can record, though the perceptron itself re-derives everything from
// the key on Learn.
func (pc *Perceptron) Act(key uint64) Decision {
	pc.Decisions++
	a := 0
	if pc.sum(key) >= 0 {
		a = 1
	}
	return Decision{State: pc.bucketOf(0, key) % pc.buckets, Action: a}
}

// Learn applies the margin rule. The target sign comes from the transition:
// a positive reward confirms the taken action, a negative reward votes for
// the opposite one (the predictors' reward tables are strictly
// positive-for-correct / negative-for-wrong, so the sign is the label).
func (pc *Perceptron) Learn(t Transition) {
	if pc.frozen || t.Reward == 0 {
		return
	}
	// Desired action: the taken one if rewarded, its complement if punished.
	want := t.Action
	if t.Reward < 0 {
		want = 1 - want
	}
	y := pc.sum(t.Key)
	pred := 0
	if y >= 0 {
		pred = 1
	}
	if pred == want && abs32(y) > pc.theta {
		return
	}
	pc.Updates++
	var d int16 = 1
	if want == 0 {
		d = -1
	}
	for f := 0; f < pc.features; f++ {
		i := pc.bucketOf(f, t.Key)
		w := pc.w[i] + d
		if w > perceptronWeightMax {
			w = perceptronWeightMax
		} else if w < -perceptronWeightMax {
			w = -perceptronWeightMax
		}
		pc.w[i] = w
	}
}

// Value returns the activation for key scaled into the tabular Q range, so
// bootstrap terms fed back through transitions stay commensurate. state and
// action are ignored — the perceptron's estimate is a function of the key.
func (pc *Perceptron) Value(key uint64, _, _ int) float64 {
	max := int32(pc.features) * perceptronWeightMax
	if max == 0 {
		return 0
	}
	return float64(pc.sum(key)) * QClamp / float64(max)
}

// Score maps the activation's magnitude onto the unsigned 8-bit confidence
// scale: 128 = neutral, saturating toward 0/255 with the margin.
func (pc *Perceptron) Score(key uint64, _, _ int) uint8 {
	y := pc.sum(key)
	v := int32(128) + y
	if v < 0 {
		v = 0
	} else if v > 255 {
		v = 255
	}
	return uint8(v)
}

// Freeze disables learning.
func (pc *Perceptron) Freeze() { pc.frozen = true }

// Frozen reports whether Freeze was called.
func (pc *Perceptron) Frozen() bool { return pc.frozen }

// Reset zeroes the weights unless frozen.
func (pc *Perceptron) Reset() {
	if pc.frozen {
		return
	}
	clear(pc.w)
}

// StorageBits reports the weight tables' hardware cost (16 bits/weight).
func (pc *Perceptron) StorageBits() int { return len(pc.w) * 16 }

// ExplorationRate is always 0: the perceptron never explores.
func (pc *Perceptron) ExplorationRate() float64 { return 0 }

// Snapshot serialises the weight tables (int16 little-endian).
func (pc *Perceptron) Snapshot() Snapshot {
	w := make([]byte, 0, len(pc.w)*2)
	for _, v := range pc.w {
		w = appendInt16(w, v)
	}
	return Snapshot{
		Version: SnapshotVersion,
		Kind:    KindPerceptron,
		Meta: SnapshotMeta{
			Features: pc.features,
			Buckets:  pc.buckets,
			Theta:    int(pc.theta),
		},
		Weights: w,
	}
}

// Restore loads a perceptron snapshot.
func (pc *Perceptron) Restore(sn Snapshot) error {
	if err := sn.validate(); err != nil {
		return err
	}
	if sn.Kind != KindPerceptron {
		return fmt.Errorf("rl: cannot restore %q snapshot into perceptron", sn.Kind)
	}
	features, buckets := sn.Meta.Features, sn.Meta.Buckets
	if features <= 0 {
		return fmt.Errorf("rl: perceptron snapshot features %d must be positive", features)
	}
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		return fmt.Errorf("rl: perceptron snapshot buckets %d must be a positive power of two", buckets)
	}
	if want := features * buckets * 2; len(sn.Weights) != want {
		return fmt.Errorf("rl: perceptron snapshot has %d weight bytes, want %d", len(sn.Weights), want)
	}
	w := make([]int16, features*buckets)
	for i := range w {
		w[i] = int16At(sn.Weights, i)
	}
	pc.features = features
	pc.buckets = buckets
	pc.theta = int32(sn.Meta.Theta)
	if pc.theta == 0 {
		pc.theta = defaultPerceptronTheta
	}
	pc.w = w
	return nil
}

// RegisterMetrics registers decision/update counters and the update rate.
func (pc *Perceptron) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("decisions", &pc.Decisions)
	s.Counter("updates", &pc.Updates)
	s.RateOf("update_rate", &pc.Updates, &pc.Decisions)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
