package rl

// Recorder decorates a Policy, teeing every Learn transition to a sink
// before forwarding it. It is how the sim side dumps transition logs for
// the offline trainer (internal/policytrain) without the predictors knowing
// logging exists — attach a Recorder, run, detach.
type Recorder struct {
	Policy
	Sink func(Transition)
}

// WithRecorder wraps p so every transition also reaches sink.
func WithRecorder(p Policy, sink func(Transition)) *Recorder {
	return &Recorder{Policy: p, Sink: sink}
}

// Learn tees the transition to the sink, then forwards it.
func (r *Recorder) Learn(t Transition) {
	if r.Sink != nil {
		r.Sink(t)
	}
	r.Policy.Learn(t)
}
