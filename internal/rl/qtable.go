package rl

import "fmt"

// QTable stores Q(s, a) for a discrete state/action space. Learning runs in
// float64 for numerical fidelity; Quantize and the Quantized type model the
// 8-bit saturating hardware representation from Table 2 (two 8-bit Q-values
// per 16-bit entry).
type QTable struct {
	states  int
	actions int
	q       []float64 // row-major [state][action]
}

// NewQTable allocates a zero-initialised table. states must be a power of
// two (it is indexed by HashState); actions is typically 2.
func NewQTable(states, actions int) *QTable {
	if states <= 0 || states&(states-1) != 0 {
		panic(fmt.Sprintf("rl: states must be a positive power of two, got %d", states))
	}
	if actions <= 0 {
		panic("rl: actions must be positive")
	}
	return &QTable{states: states, actions: actions, q: make([]float64, states*actions)}
}

// States returns the number of states.
func (t *QTable) States() int { return t.states }

// Actions returns the number of actions.
func (t *QTable) Actions() int { return t.actions }

// Q returns Q(s, a).
func (t *QTable) Q(s, a int) float64 { return t.q[s*t.actions+a] }

// SetQ overwrites Q(s, a); used by tests and by table import.
func (t *QTable) SetQ(s, a int, v float64) { t.q[s*t.actions+a] = v }

// Reset zeroes every Q-value, discarding all learned state (a power-loss
// model for unpersisted tables).
func (t *QTable) Reset() {
	clear(t.q)
}

// Best returns the greedy action for state s and its Q-value. Ties break
// toward the lower-numbered action, which keeps behaviour deterministic.
func (t *QTable) Best(s int) (action int, q float64) {
	base := s * t.actions
	action, q = 0, t.q[base]
	for a := 1; a < t.actions; a++ {
		if t.q[base+a] > q {
			action, q = a, t.q[base+a]
		}
	}
	return action, q
}

// MaxQ returns max_a Q(s, a).
func (t *QTable) MaxQ(s int) float64 {
	_, q := t.Best(s)
	return q
}

// Update applies the temporal-difference rule
//
//	Q(s,a) ← Q(s,a) + α [ r + γ·next − Q(s,a) ]
//
// where next is the caller's bootstrap value (Q(S2,A2) in Algorithm 1,
// max_a Q(S,a) in Algorithm 3). Values saturate at ±QClamp to mirror the
// bounded hardware registers.
func (t *QTable) Update(s, a int, r, next, alpha, gamma float64) {
	i := s*t.actions + a
	q := t.q[i]
	q += alpha * (r + gamma*next - q)
	if q > QClamp {
		q = QClamp
	} else if q < -QClamp {
		q = -QClamp
	}
	t.q[i] = q
}

// QClamp bounds learned Q-values. The hardware stores 8-bit signed scores;
// we clamp the float representation to the same dynamic range so the two
// implementations agree on decisions.
const QClamp = 127

// Quantize returns the 8-bit signed hardware representation of Q(s,a).
func (t *QTable) Quantize(s, a int) int8 {
	v := t.Q(s, a)
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// Score returns the locality score used by the LCR cache: the quantized
// Q-value of the chosen action rebased to an unsigned 8-bit magnitude
// (0..255). Higher means the predictor was more confident.
func (t *QTable) Score(s, a int) uint8 {
	return uint8(int16(t.Quantize(s, a)) + 128)
}

// Coverage reports the fraction of states whose Q-row has been touched by
// at least one update (any non-zero Q-value). It is the telemetry signal
// for "how much of the state space has the agent actually visited" —
// convergence shows up as coverage flattening out.
func (t *QTable) Coverage() float64 {
	if t.states == 0 {
		return 0
	}
	visited := 0
	for s := 0; s < t.states; s++ {
		base := s * t.actions
		for a := 0; a < t.actions; a++ {
			if t.q[base+a] != 0 {
				visited++
				break
			}
		}
	}
	return float64(visited) / float64(t.states)
}

// StorageBits reports the hardware storage cost of the table in bits,
// assuming 8 bits per Q-value as in Table 2 of the paper.
func (t *QTable) StorageBits() int { return t.states * t.actions * 8 }
