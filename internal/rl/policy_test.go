package rl

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// trainFor runs a deterministic synthetic workload through a policy: keys
// with bit 12 set should prefer action 1, others action 0.
func trainFor(p Policy, n int) {
	rng := NewRand(1234)
	for i := 0; i < n; i++ {
		key := rng.Uint64() &^ 63
		d := p.Act(key)
		want := 0
		if key&(1<<12) != 0 {
			want = 1
		}
		r := -10.0
		if d.Action == want {
			r = 10
		}
		p.Learn(Transition{Key: key, State: d.State, Action: d.Action, Reward: r})
	}
}

func allKinds(t *testing.T) map[string]Policy {
	t.Helper()
	return map[string]Policy{
		KindTabular:    NewAgent(NewQTable(1024, 2), 0.1, 0.5, 0.05, 7),
		KindPerceptron: NewPerceptron(0, 0, 0),
		KindMLP:        NewMLP(0, 0, 7),
	}
}

func TestPolicyKindsComplete(t *testing.T) {
	kinds := PolicyKinds()
	if len(kinds) != 3 {
		t.Fatalf("PolicyKinds = %v, want 3 kinds", kinds)
	}
	for name, p := range allKinds(t) {
		if p.Kind() != name {
			t.Errorf("policy %s reports Kind %q", name, p.Kind())
		}
		found := false
		for _, k := range kinds {
			if k == name {
				found = true
			}
		}
		if !found {
			t.Errorf("kind %s missing from PolicyKinds", name)
		}
	}
	if len(PolicyKindDescriptions()) != len(kinds) {
		t.Error("PolicyKindDescriptions out of sync with PolicyKinds")
	}
}

func TestPolicyRoundTripGolden(t *testing.T) {
	// Train each kind, snapshot, restore into a fresh policy, and require
	// identical frozen decisions on a probe set — the round-trip golden.
	for name, p := range allKinds(t) {
		t.Run(name, func(t *testing.T) {
			trainFor(p, 5000)
			sn := p.Snapshot()
			if sn.Version != SnapshotVersion || sn.Kind != name {
				t.Fatalf("snapshot header = %q/%q", sn.Version, sn.Kind)
			}
			b, err := json.Marshal(sn)
			if err != nil {
				t.Fatal(err)
			}
			sn2, err := DecodeSnapshot(b)
			if err != nil {
				t.Fatal(err)
			}
			q, err := FromSnapshot(sn2)
			if err != nil {
				t.Fatal(err)
			}
			p.Freeze()
			q.Freeze()
			rng := NewRand(99)
			for i := 0; i < 2000; i++ {
				key := rng.Uint64() &^ 63
				if got, want := q.Act(key), p.Act(key); got != want {
					t.Fatalf("restored %s diverged at key %#x: %v vs %v", name, key, got, want)
				}
				if got, want := q.Score(key, 0, 0), p.Score(key, 0, 0); got != want {
					t.Fatalf("restored %s score diverged at key %#x", name, key)
				}
			}
			if q.StorageBits() != p.StorageBits() {
				t.Errorf("StorageBits changed across round trip: %d vs %d", q.StorageBits(), p.StorageBits())
			}
		})
	}
}

func TestPolicyFileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	for name, p := range allKinds(t) {
		trainFor(p, 2000)
		path := filepath.Join(dir, name+".json")
		if err := SavePolicy(path, p, "ctr"); err != nil {
			t.Fatal(err)
		}
		sn, err := LoadSnapshot(path)
		if err != nil {
			t.Fatal(err)
		}
		if sn.Meta.Role != "ctr" {
			t.Errorf("%s: role not stamped, got %q", name, sn.Meta.Role)
		}
		q, err := LoadPolicy(path)
		if err != nil {
			t.Fatal(err)
		}
		if q.Kind() != name {
			t.Errorf("loaded kind %q, want %q", q.Kind(), name)
		}
	}
}

func TestPolicySpecValidate(t *testing.T) {
	var nilSpec *PolicySpec
	if err := nilSpec.Validate(); err != nil {
		t.Errorf("nil spec must validate: %v", err)
	}
	err := (&PolicySpec{Kind: "transformer"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "tabular, perceptron, mlp") {
		t.Errorf("unknown kind error should list valid kinds, got %v", err)
	}
	if err := (&PolicySpec{Kind: KindTabular, States: 1000}).Validate(); err == nil {
		t.Error("non-power-of-two states must be rejected")
	}
	if err := (&PolicySpec{Kind: KindPerceptron, Buckets: 48}).Validate(); err == nil {
		t.Error("non-power-of-two buckets must be rejected")
	}
	if err := (&PolicySpec{Kind: KindMLP, Hidden: -1}).Validate(); err == nil {
		t.Error("negative hidden must be rejected")
	}
	for _, k := range PolicyKinds() {
		if err := (&PolicySpec{Kind: k}).Validate(); err != nil {
			t.Errorf("bare kind %q should validate: %v", k, err)
		}
		if _, err := NewPolicy(PolicySpec{Kind: k}, 1); err != nil {
			t.Errorf("NewPolicy(%q): %v", k, err)
		}
	}
}

func TestNewPolicyFrozenSpec(t *testing.T) {
	p := NewPerceptron(0, 0, 0)
	trainFor(p, 3000)
	sn := p.Snapshot()
	q, err := NewPolicy(PolicySpec{Frozen: &sn}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Frozen() {
		t.Fatal("policy from frozen spec must be frozen")
	}
	// Learning must be inert and Reset must not clear weights.
	before := q.Act(1 << 12)
	q.Learn(Transition{Key: 1 << 12, Action: before.Action, Reward: -100})
	q.Reset()
	if after := q.Act(1 << 12); after != before {
		t.Error("frozen policy changed behaviour after Learn/Reset")
	}
	// Kind mismatch between spec and snapshot is rejected.
	if _, err := NewPolicy(PolicySpec{Kind: KindMLP, Frozen: &sn}, 0); err == nil {
		t.Error("kind/snapshot mismatch must be rejected")
	}
}

func TestPolicyDeterminismAcrossInstances(t *testing.T) {
	// Two identically-constructed policies fed the same sequence make the
	// same decisions at every step — including the learning phase.
	build := map[string]func() Policy{
		KindTabular:    func() Policy { return NewAgent(NewQTable(1024, 2), 0.1, 0.5, 0.05, 7) },
		KindPerceptron: func() Policy { return NewPerceptron(0, 0, 0) },
		KindMLP:        func() Policy { return NewMLP(0, 0, 7) },
	}
	for name, mk := range build {
		t.Run(name, func(t *testing.T) {
			a, b := mk(), mk()
			rng := NewRand(55)
			for i := 0; i < 5000; i++ {
				key := rng.Uint64() &^ 63
				da, db := a.Act(key), b.Act(key)
				if da != db {
					t.Fatalf("instances diverged at step %d", i)
				}
				r := 10.0
				if key&128 != 0 {
					r = -10
				}
				tr := Transition{Key: key, State: da.State, Action: da.Action, Reward: r}
				a.Learn(tr)
				b.Learn(tr)
			}
		})
	}
}

func TestRecorderTees(t *testing.T) {
	var got []Transition
	p := WithRecorder(NewPerceptron(0, 0, 0), func(t Transition) { got = append(got, t) })
	p.Learn(Transition{Key: 64, Action: 1, Reward: 5})
	p.Learn(Transition{Key: 128, Action: 0, Reward: -5})
	if len(got) != 2 || got[0].Key != 64 || got[1].Reward != -5 {
		t.Fatalf("recorder saw %v", got)
	}
	if p.Kind() != KindPerceptron {
		t.Error("recorder must delegate Kind")
	}
}

func TestLoadPolicyErrors(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]string{
		"garbage":    "not json at all {",
		"wrong-ver":  `{"version":"cosmos-policy-v0","kind":"tabular","meta":{},"weights":""}`,
		"bad-kind":   `{"version":"cosmos-policy-v1","kind":"transformer","meta":{},"weights":""}`,
		"truncated":  `{"version":"cosmos-policy-v1","kind":"mlp","meta":{"inputs":16,"hidden":8},"weights":"AAAA"}`,
		"bad-shape":  `{"version":"cosmos-policy-v1","kind":"tabular","meta":{"states":1000,"actions":2},"weights":""}`,
		"neg-shape":  `{"version":"cosmos-policy-v1","kind":"perceptron","meta":{"features":-1,"buckets":64},"weights":""}`,
		"zero-shape": `{"version":"cosmos-policy-v1","kind":"mlp","meta":{},"weights":""}`,
	}
	for name, content := range cases {
		if _, err := LoadPolicy(write(name+".json", content)); err == nil {
			t.Errorf("%s: LoadPolicy should error", name)
		}
	}
	if _, err := LoadPolicy(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func FuzzLoadPolicy(f *testing.F) {
	// Seed with a valid file of each kind plus assorted corruption.
	for _, p := range []Policy{
		NewAgent(NewQTable(64, 2), 0.1, 0.5, 0, 1),
		NewPerceptron(2, 64, 10),
		NewMLP(4, 2, 1),
	} {
		b, err := json.Marshal(p.Snapshot())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(b[:len(b)/2])
	}
	f.Add([]byte(`{"version":"cosmos-policy-v1","kind":"tabular"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the policy must be usable.
		sn, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		p, err := FromSnapshot(sn)
		if err != nil {
			return
		}
		d := p.Act(0x1000)
		if d.Action != 0 && d.Action != 1 {
			t.Fatalf("action out of range: %d", d.Action)
		}
		p.Score(0x1000, d.State, d.Action)
		rt := p.Snapshot()
		if rt.Kind != sn.Kind {
			t.Fatalf("round-trip kind changed: %q -> %q", sn.Kind, rt.Kind)
		}
	})
}

func TestAgentSnapshotPreservesTable(t *testing.T) {
	ag := NewAgent(NewQTable(64, 2), 0.2, 0.7, 0.05, 3)
	trainFor(ag, 3000)
	sn := ag.Snapshot()
	ag2 := NewAgent(NewQTable(64, 2), 0, 0, 0, 0)
	if err := ag2.Restore(sn); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ag.Table.q, ag2.Table.q) {
		t.Fatal("restored Q-table differs")
	}
	if ag2.Alpha != 0.2 || ag2.Gamma != 0.7 || ag2.Epsilon != 0.05 {
		t.Errorf("hyper-parameters not restored: %+v", ag2)
	}
}

func TestFreezeSemantics(t *testing.T) {
	for name, p := range allKinds(t) {
		trainFor(p, 2000)
		p.Freeze()
		if !p.Frozen() {
			t.Errorf("%s: Frozen() false after Freeze", name)
		}
		if p.ExplorationRate() != 0 && name != KindTabular {
			t.Errorf("%s: deterministic policy reports exploration", name)
		}
		before := p.Snapshot()
		p.Learn(Transition{Key: 4096, Action: 0, Reward: 100})
		p.Reset()
		after := p.Snapshot()
		if !reflect.DeepEqual(before.Weights, after.Weights) {
			t.Errorf("%s: frozen weights changed after Learn/Reset", name)
		}
	}
	// Tabular freeze zeroes ε so the rng is never consumed again.
	ag := NewAgent(NewQTable(64, 2), 0.1, 0.5, 0.9, 1)
	ag.Freeze()
	if ag.Epsilon != 0 {
		t.Error("freeze must zero ε")
	}
}
