package rl

import "cosmos/internal/telemetry"

// Agent couples a Q-table with ε-greedy action selection and a fixed
// (α, γ, ε) hyper-parameter triple. Both COSMOS predictors are Agents over a
// two-action space.
type Agent struct {
	Table   *QTable
	Alpha   float64
	Gamma   float64
	Epsilon float64

	rng *Rand

	// Explorations counts how many actions were chosen randomly rather
	// than greedily — exposed for the effectiveness studies (§6.1.2).
	Explorations uint64
	Decisions    uint64
}

// NewAgent constructs an agent with its own deterministic exploration stream.
func NewAgent(table *QTable, alpha, gamma, epsilon float64, seed uint64) *Agent {
	return &Agent{Table: table, Alpha: alpha, Gamma: gamma, Epsilon: epsilon, rng: NewRand(seed)}
}

// Act returns the ε-greedy action for state s: with probability ε a uniform
// random action (exploration), otherwise the argmax of the Q-row.
func (ag *Agent) Act(s int) int {
	ag.Decisions++
	if ag.Epsilon > 0 && ag.rng.Float64() < ag.Epsilon {
		ag.Explorations++
		return ag.rng.Intn(ag.Table.Actions())
	}
	a, _ := ag.Table.Best(s)
	return a
}

// Learn applies the TD update with the agent's α and γ. next is the
// bootstrap value from the successor state (see QTable.Update).
func (ag *Agent) Learn(s, a int, reward, next float64) {
	ag.Table.Update(s, a, reward, next, ag.Alpha, ag.Gamma)
}

// RegisterMetrics registers the agent's decision counters, the observed
// per-interval exploration rate, the configured ε, and the Q-table state
// coverage under the given telemetry scope.
func (ag *Agent) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("decisions", &ag.Decisions)
	s.Counter("explorations", &ag.Explorations)
	s.RateOf("exploration_rate", &ag.Explorations, &ag.Decisions)
	s.Gauge("epsilon", func() float64 { return ag.Epsilon })
	s.Gauge("q_coverage", ag.Table.Coverage)
}

// ExplorationRate reports the observed fraction of random actions.
func (ag *Agent) ExplorationRate() float64 {
	if ag.Decisions == 0 {
		return 0
	}
	return float64(ag.Explorations) / float64(ag.Decisions)
}
