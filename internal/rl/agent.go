package rl

import (
	"fmt"

	"cosmos/internal/telemetry"
)

// Agent couples a Q-table with ε-greedy action selection and a fixed
// (α, γ, ε) hyper-parameter triple. Both COSMOS predictors default to Agents
// over a two-action space; Agent is the "tabular" Policy kind.
type Agent struct {
	Table   *QTable
	Alpha   float64
	Gamma   float64
	Epsilon float64

	rng    *Rand
	frozen bool

	// Explorations counts how many actions were chosen randomly rather
	// than greedily — exposed for the effectiveness studies (§6.1.2).
	Explorations uint64
	Decisions    uint64
}

var _ Policy = (*Agent)(nil)

// NewAgent constructs an agent with its own deterministic exploration stream.
func NewAgent(table *QTable, alpha, gamma, epsilon float64, seed uint64) *Agent {
	return &Agent{Table: table, Alpha: alpha, Gamma: gamma, Epsilon: epsilon, rng: NewRand(seed)}
}

// Kind implements Policy.
func (ag *Agent) Kind() string { return KindTabular }

// Act hashes the key into the table's state space and returns the ε-greedy
// decision for it.
func (ag *Agent) Act(key uint64) Decision {
	s := HashState(key, ag.Table.States())
	return Decision{State: s, Action: ag.ActState(s)}
}

// ActState returns the ε-greedy action for an already-derived state index s:
// with probability ε a uniform random action (exploration), otherwise the
// argmax of the Q-row. Act is ActState after HashState; callers that need
// the classic state-indexed form (tests, the quantization ablation) use this
// directly.
func (ag *Agent) ActState(s int) int {
	ag.Decisions++
	if ag.Epsilon > 0 && ag.rng.Float64() < ag.Epsilon {
		ag.Explorations++
		return ag.rng.Intn(ag.Table.Actions())
	}
	a, _ := ag.Table.Best(s)
	return a
}

// Learn applies the TD update with the agent's α and γ. t.Next is the
// bootstrap value from the successor state (see QTable.Update). Frozen
// agents ignore it.
func (ag *Agent) Learn(t Transition) {
	if ag.frozen {
		return
	}
	ag.Table.Update(t.State, t.Action, t.Reward, t.Next, ag.Alpha, ag.Gamma)
}

// Value returns Q(state, action); the key is unused (the tabular policy's
// estimate depends only on the derived state).
func (ag *Agent) Value(_ uint64, state, action int) float64 {
	return ag.Table.Q(state, action)
}

// Score returns the quantized unsigned confidence of (state, action).
func (ag *Agent) Score(_ uint64, state, action int) uint8 {
	return ag.Table.Score(state, action)
}

// Freeze disables learning and exploration: the agent becomes a pure greedy
// function of its current table. ε is forced to 0 so the exploration rng is
// no longer consumed.
func (ag *Agent) Freeze() {
	ag.frozen = true
	ag.Epsilon = 0
}

// Frozen reports whether Freeze was called.
func (ag *Agent) Frozen() bool { return ag.frozen }

// Reset zeroes the Q-table (crash model: the table lives in volatile SRAM).
// Frozen agents keep their weights — a frozen policy models a ROM deployment.
func (ag *Agent) Reset() {
	if ag.frozen {
		return
	}
	ag.Table.Reset()
}

// StorageBits reports the table's hardware cost.
func (ag *Agent) StorageBits() int { return ag.Table.StorageBits() }

// Snapshot serialises the agent's table and hyper-parameters.
func (ag *Agent) Snapshot() Snapshot {
	t := ag.Table
	w := make([]byte, 0, len(t.q)*8)
	for _, v := range t.q {
		w = appendFloat64(w, v)
	}
	return Snapshot{
		Version: SnapshotVersion,
		Kind:    KindTabular,
		Meta: SnapshotMeta{
			States:  t.states,
			Actions: t.actions,
			Alpha:   ag.Alpha,
			Gamma:   ag.Gamma,
			Epsilon: ag.Epsilon,
		},
		Weights: w,
	}
}

// Restore loads a tabular snapshot produced by Snapshot, replacing the
// agent's table and hyper-parameters.
func (ag *Agent) Restore(sn Snapshot) error {
	if err := sn.validate(); err != nil {
		return err
	}
	if sn.Kind != KindTabular {
		return fmt.Errorf("rl: cannot restore %q snapshot into tabular agent", sn.Kind)
	}
	states, actions := sn.Meta.States, sn.Meta.Actions
	if states <= 0 || states&(states-1) != 0 {
		return fmt.Errorf("rl: tabular snapshot states %d must be a positive power of two", states)
	}
	if actions <= 0 {
		return fmt.Errorf("rl: tabular snapshot actions %d must be positive", actions)
	}
	if want := states * actions * 8; len(sn.Weights) != want {
		return fmt.Errorf("rl: tabular snapshot has %d weight bytes, want %d", len(sn.Weights), want)
	}
	t := NewQTable(states, actions)
	for i := range t.q {
		t.q[i] = float64At(sn.Weights, i)
	}
	ag.Table = t
	ag.Alpha = sn.Meta.Alpha
	ag.Gamma = sn.Meta.Gamma
	ag.Epsilon = sn.Meta.Epsilon
	return nil
}

// RegisterMetrics registers the agent's decision counters, the observed
// per-interval exploration rate, the configured ε, and the Q-table state
// coverage under the given telemetry scope.
func (ag *Agent) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("decisions", &ag.Decisions)
	s.Counter("explorations", &ag.Explorations)
	s.RateOf("exploration_rate", &ag.Explorations, &ag.Decisions)
	s.Gauge("epsilon", func() float64 { return ag.Epsilon })
	s.Gauge("q_coverage", ag.Table.Coverage)
}

// ExplorationRate reports the observed fraction of random actions.
func (ag *Agent) ExplorationRate() float64 {
	if ag.Decisions == 0 {
		return 0
	}
	return float64(ag.Explorations) / float64(ag.Decisions)
}
