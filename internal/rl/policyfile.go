package rl

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// SnapshotVersion is the on-disk policy format identifier. The loader
// rejects any other value, so the format can evolve without silently
// misreading old files.
const SnapshotVersion = "cosmos-policy-v1"

// Snapshot is the serialised form of a Policy: a versioned header, the kind
// and its shape/hyper-parameters, and the weights as one little-endian byte
// stream (float64 per value for tabular, int16 for perceptron and MLP —
// each kind documents its own layout). JSON encodes Weights as base64,
// which keeps the files greppable headers-first while the bulk stays
// compact.
type Snapshot struct {
	Version string       `json:"version"`
	Kind    string       `json:"kind"`
	Meta    SnapshotMeta `json:"meta"`
	Weights []byte       `json:"weights"`
}

// SnapshotMeta carries the kind-specific shape and hyper-parameters, plus
// provenance the trainer stamps so a deploy step can route the file without
// out-of-band knowledge.
type SnapshotMeta struct {
	// Tabular shape and TD hyper-parameters.
	States  int     `json:"states,omitempty"`
	Actions int     `json:"actions,omitempty"`
	Alpha   float64 `json:"alpha,omitempty"`
	Gamma   float64 `json:"gamma,omitempty"`
	Epsilon float64 `json:"epsilon,omitempty"`

	// Perceptron shape.
	Features int `json:"features,omitempty"`
	Buckets  int `json:"buckets,omitempty"`
	Theta    int `json:"theta,omitempty"`

	// MLP shape.
	Inputs int    `json:"inputs,omitempty"`
	Hidden int    `json:"hidden,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`

	// Role records which predictor the policy was trained for: "data"
	// (Algorithm 3 location predictor) or "ctr" (Algorithm 1 locality
	// predictor). Empty means unspecified.
	Role string `json:"role,omitempty"`

	// Trainer provenance (informational).
	TrainedOn   string `json:"trained_on,omitempty"`
	Transitions int    `json:"transitions,omitempty"`
}

// validate checks the snapshot header without interpreting weights; the
// kind-specific Restore validates shapes and lengths.
func (sn *Snapshot) validate() error {
	if sn.Version != SnapshotVersion {
		return fmt.Errorf("rl: unsupported policy file version %q (want %s)", sn.Version, SnapshotVersion)
	}
	switch sn.Kind {
	case KindTabular, KindPerceptron, KindMLP:
		return nil
	}
	return fmt.Errorf("rl: unknown policy kind %q (valid: %s)",
		sn.Kind, strings.Join(PolicyKinds(), ", "))
}

// FromSnapshot constructs a fresh policy of the snapshot's kind and restores
// the snapshot into it. The result is NOT frozen; callers deploying frozen
// weights (NewPolicy with Frozen, the CLIs) freeze it themselves.
func FromSnapshot(sn Snapshot) (Policy, error) {
	if err := sn.validate(); err != nil {
		return nil, err
	}
	var p Policy
	switch sn.Kind {
	case KindTabular:
		p = NewAgent(NewQTable(16384, 2), 0, 0, 0, 0)
	case KindPerceptron:
		p = NewPerceptron(0, 0, 0)
	case KindMLP:
		p = NewMLP(0, 0, 0)
	}
	if err := p.Restore(sn); err != nil {
		return nil, err
	}
	return p, nil
}

// SavePolicy writes a policy's snapshot to path as indented cosmos-policy-v1
// JSON. role, if non-empty, is stamped into the snapshot's Meta.Role.
func SavePolicy(path string, p Policy, role string) error {
	sn := p.Snapshot()
	if role != "" {
		sn.Meta.Role = role
	}
	return SaveSnapshot(path, sn)
}

// SaveSnapshot writes a snapshot to path.
func SaveSnapshot(path string, sn Snapshot) error {
	b, err := json.MarshalIndent(sn, "", "  ")
	if err != nil {
		return fmt.Errorf("rl: encode policy file: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("rl: write policy file: %w", err)
	}
	return nil
}

// LoadSnapshot reads and validates a cosmos-policy-v1 file's header. It
// never panics on malformed input: corrupt JSON, wrong versions, unknown
// kinds, and truncated weight streams all surface as errors (the latter
// from the kind's Restore when the snapshot is instantiated).
func LoadSnapshot(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("rl: read policy file: %w", err)
	}
	return DecodeSnapshot(b)
}

// DecodeSnapshot parses cosmos-policy-v1 JSON bytes and validates the header.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var sn Snapshot
	if err := json.Unmarshal(b, &sn); err != nil {
		return Snapshot{}, fmt.Errorf("rl: parse policy file: %w", err)
	}
	if err := sn.validate(); err != nil {
		return Snapshot{}, err
	}
	return sn, nil
}

// LoadPolicy reads a policy file and instantiates its kind with the saved
// weights. The result is not frozen.
func LoadPolicy(path string) (Policy, error) {
	sn, err := LoadSnapshot(path)
	if err != nil {
		return nil, err
	}
	return FromSnapshot(sn)
}

// Little-endian weight-stream helpers shared by the policy kinds.

func appendFloat64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func float64At(b []byte, i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
}

func appendInt16(b []byte, v int16) []byte {
	return binary.LittleEndian.AppendUint16(b, uint16(v))
}

func int16At(b []byte, i int) int16 {
	return int16(binary.LittleEndian.Uint16(b[i*2:]))
}
