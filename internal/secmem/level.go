package secmem

import (
	"cosmos/internal/memsys"
	"cosmos/internal/telemetry"
)

// Level is the terminal of the memory hierarchy: the secure-memory
// controller presented through the memsys.Level interface. A demand Access
// is a data DRAM read; a Writeback absorbs an LLC dirty victim as a data
// DRAM write plus — for protected addresses — the counter bump and MAC
// update the write entails. The critical-path metadata work for demand
// fetches (counter lookup, OTP, MAC verify, integrity walk) stays on the
// Engine's explicit API, driven by the simulator's fetch-path composer:
// those chains race the data access rather than serialize behind it, so
// they cannot hide inside a single Access call.
type Level struct {
	e *Engine
}

// NewLevel wraps e as the hierarchy terminal.
func NewLevel(e *Engine) *Level { return &Level{e: e} }

// Engine exposes the underlying secure-memory controller.
func (l *Level) Engine() *Engine { return l.e }

// Name implements memsys.Level.
func (l *Level) Name() string { return "mem" }

// Latency implements memsys.Level: the best-case DRAM read cost; the
// actual per-request cost is returned by Access.
func (l *Level) Latency() uint64 { return l.e.dram.MinReadLatency() }

// Access implements memsys.Level: a demand data read from DRAM. Memory
// never misses, but a read that lands on a line the fault plane quarantined
// comes back flagged Poisoned.
func (l *Level) Access(r memsys.Request) memsys.Response {
	lat, poisoned := l.e.dataAccess(r.Now, memsys.LineToAddr(r.Line), r.Write)
	return memsys.Response{Hit: true, Latency: lat, Poisoned: poisoned}
}

// Writeback absorbs a dirty victim: the data write goes to DRAM, and if
// the line is protected the counter is bumped (write-allocate in the CTR
// cache) and the MAC is recomputed. Writebacks are off the critical path,
// so only traffic and cache state matter, not the returned latencies.
func (l *Level) Writeback(r memsys.Request) {
	addr := memsys.LineToAddr(r.Line)
	l.e.DataDRAM(r.Now, addr, true)
	if l.e.design.Secure && l.e.InSecureRegion(addr) {
		l.e.CtrAccess(r.Core, r.Now, r.Line, true)
		l.e.MACAccess(r.Core, r.Now, r.Line, true)
	}
}

// RegisterMetrics implements memsys.Level.
func (l *Level) RegisterMetrics(s *telemetry.Scope) { l.e.RegisterMetrics(s) }

// ResetStats implements memsys.Level.
func (l *Level) ResetStats() { l.e.ResetStats() }
