package secmem

import (
	"testing"

	"cosmos/internal/memsys"
	"cosmos/internal/rl"
)

// TestTrafficConservation drives the engine with a random metadata workload
// and checks the bookkeeping identities that every figure depends on:
// hits+misses = accesses, each miss produced exactly one CTR DRAM read, and
// DRAM model reads cover every traffic category.
func TestTrafficConservation(t *testing.T) {
	cfg := testConfig()
	e := NewEngine(cfg, DesignMorph())
	rng := rl.NewRand(77)
	const n = 50000
	for i := 0; i < n; i++ {
		line := rng.Uint64() % (cfg.MemBytes / 64)
		e.CtrAccess(0, uint64(i)*10, line, rng.Intn(4) == 0)
	}
	if e.CtrHits+e.CtrMisses != n {
		t.Fatalf("hits %d + misses %d != %d accesses", e.CtrHits, e.CtrMisses, n)
	}
	if e.Traffic.CtrRead != e.CtrMisses {
		t.Fatalf("ctr DRAM reads %d != ctr misses %d", e.Traffic.CtrRead, e.CtrMisses)
	}
	d := e.DRAMStats()
	if d.Reads != e.Traffic.CtrRead+e.Traffic.MTRead {
		t.Fatalf("DRAM reads %d != ctr %d + mt %d", d.Reads, e.Traffic.CtrRead, e.Traffic.MTRead)
	}
	if d.Writes != e.Traffic.CtrWrite+e.Traffic.ReEncWrite {
		t.Fatalf("DRAM writes %d != ctrWB %d + reenc %d", d.Writes, e.Traffic.CtrWrite, e.Traffic.ReEncWrite)
	}
}

func TestResetStatsKeepsLearnedState(t *testing.T) {
	e := NewEngine(testConfig(), DesignCosmos())
	for i := uint64(0); i < 2000; i++ {
		e.CtrAccess(0, i, i%512, false)
		p := e.DataPred.Predict(i * 64)
		e.DataPred.Learn(p, i%2 == 0)
	}
	e.ResetStats()
	if e.CtrHits != 0 || e.CtrMisses != 0 || e.Traffic.Total() != 0 {
		t.Fatal("counters not reset")
	}
	if e.DataPred.Stats.Total() != 0 {
		t.Fatal("predictor stats not reset")
	}
	// Learned state survives: a previously-cached counter still hits.
	r := e.CtrAccess(0, 99999, 1, false)
	if !r.Hit {
		t.Fatal("ctr cache contents were lost by ResetStats")
	}
}

func TestMEETreeIsDeeper(t *testing.T) {
	base := testConfig()
	mee := base
	mee.MEETree = true
	eb := NewEngine(base, DesignMorph())
	em := NewEngine(mee, DesignMorph())
	// Same cold miss: the MEE-style tree must fetch more path nodes.
	eb.CtrAccess(0, 0, 4096, false)
	em.CtrAccess(0, 0, 4096, false)
	if em.Traffic.MTRead <= eb.Traffic.MTRead {
		t.Fatalf("MEE tree MT reads %d should exceed Bonsai %d",
			em.Traffic.MTRead, eb.Traffic.MTRead)
	}
}

func TestRMCCUsesLFU(t *testing.T) {
	e := NewEngine(testConfig(), DesignRMCC())
	if got := e.ctrCaches[0].Policy().Name(); got != "LFU" {
		t.Fatalf("RMCC ctr policy = %s, want LFU", got)
	}
	// RMCC is a baseline: it must not instantiate COSMOS predictors.
	if e.DataPred != nil || e.CtrPred != nil {
		t.Fatal("RMCC must not use RL predictors")
	}
}

func TestWriteAccessMarksCtrDirty(t *testing.T) {
	cfg := testConfig()
	cfg.CtrCacheBytes = 2048 // tiny to force the writeback quickly
	e := NewEngine(cfg, DesignMorph())
	e.CtrAccess(0, 0, 0, true) // dirty fill
	// Evict it by filling the set with conflicting counter blocks.
	wb0 := e.Traffic.CtrWrite
	for i := uint64(1); i < 64; i++ {
		e.CtrAccess(0, i, i*128*32, false)
	}
	if e.Traffic.CtrWrite == wb0 {
		t.Fatal("dirty counter line never written back")
	}
}

func TestSecureFetchMACCached(t *testing.T) {
	e := NewEngine(testConfig(), DesignMorph())
	res := e.CtrAccess(0, 0, 0, false)
	e.SecureFetch(0, 0, memsys.LineToAddr(0), false, res, 0)
	macReads := e.Traffic.MACRead
	// Lines 1..7 share line 0's MAC block: no further MAC DRAM reads.
	for l := uint64(1); l < 8; l++ {
		r := e.CtrAccess(0, uint64(l)*100, l, false)
		e.SecureFetch(0, uint64(l)*100, memsys.LineToAddr(l), false, r, 0)
	}
	if e.Traffic.MACRead != macReads {
		t.Fatalf("MAC block covering 8 lines re-fetched: %d → %d", macReads, e.Traffic.MACRead)
	}
}
