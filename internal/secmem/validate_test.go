package secmem

import "testing"

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutate := func(f func(*Config)) error {
		cfg := DefaultConfig()
		f(&cfg)
		return cfg.Validate()
	}
	cases := []struct {
		name string
		f    func(*Config)
	}{
		{"zero cores", func(c *Config) { c.Cores = 0 }},
		{"zero memory", func(c *Config) { c.MemBytes = 0 }},
		{"bad ctr geometry", func(c *Config) { c.CtrCacheBytes = 100 }},
		{"zero ctr ways", func(c *Config) { c.CtrCacheWays = 0 }},
		{"bad lcr geometry", func(c *Config) { c.LCRCacheBytes = 7 }},
		{"bad mac geometry", func(c *Config) { c.MACCacheBytes = 48 << 10 }},
		{"bad dram rows", func(c *Config) { c.DRAM.RowBytes = 100 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := mutate(tc.f); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}
