package secmem

import (
	"fmt"

	"cosmos/internal/cache"
	"cosmos/internal/core"
	"cosmos/internal/ctr"
	"cosmos/internal/dram"
	"cosmos/internal/fault"
	"cosmos/internal/integrity"
	"cosmos/internal/memsys"
	"cosmos/internal/prefetch"
	"cosmos/internal/telemetry"
)

// NewEngine builds the controller for a design point.
func NewEngine(cfg Config, design Design) *Engine {
	e := &Engine{cfg: cfg, design: design}
	e.dram = dram.New(cfg.DRAM)
	if !design.Secure {
		return e
	}
	coverage := ctr.Morph().LinesPerBlock
	if cfg.MEETree {
		coverage = 8 // tree leaves cover 8-line groups, SGX-MEE style
	}
	e.layout = integrity.NewSecureLayout(cfg.MemBytes, coverage)
	e.ctrStore = ctr.NewStore(ctr.Morph())

	ctrBytes := design.CtrCacheBytes
	if ctrBytes == 0 {
		// Every COSMOS variant runs the small 128KB cache (its 147KB of
		// predictor state is the rest of its budget); baselines get the
		// budget-matched 512KB cache (§5).
		if design.UseLCR || design.Early == EarlyPredicted {
			ctrBytes = cfg.LCRCacheBytes
		} else {
			ctrBytes = cfg.CtrCacheBytes
		}
	}
	for c := 0; c < cfg.Cores; c++ {
		var pol cache.Policy
		var lcr *cache.LCR
		switch {
		case design.UseLCR:
			lcr = cache.NewLCR()
			pol = lcr
		case design.CtrPolicy != "":
			pol = policyByName(design.CtrPolicy, cfg.Seed)
		default:
			pol = cache.NewLRU()
		}
		e.ctrCaches = append(e.ctrCaches, cache.New("ctr", ctrBytes, cfg.CtrCacheWays, pol))
		e.lcrPols = append(e.lcrPols, lcr)
		e.macCaches = append(e.macCaches, cache.New("mac", cfg.MACCacheBytes, 8, cache.NewLRU()))
	}

	switch design.Early {
	case EarlyPredicted:
		e.DataPred = core.NewDataPredictor(cfg.Params)
	}
	if design.UseLCR {
		e.CtrPred = core.NewLocalityPredictor(cfg.Params)
	}
	switch design.CtrPrefetcher {
	case "nextline":
		e.pf = prefetch.NewNextLine()
	case "stride":
		e.pf = prefetch.NewStride(1)
	case "berti":
		e.pf = prefetch.NewBerti()
	case "":
	default:
		panic(fmt.Sprintf("secmem: unknown prefetcher %q", design.CtrPrefetcher))
	}
	if e.pf != nil {
		e.pfMark = make(map[uint64]bool)
	}
	return e
}

func policyByName(name string, seed uint64) cache.Policy {
	switch name {
	case "LRU":
		return cache.NewLRU()
	case "Random":
		return cache.NewRandom(seed | 1)
	case "RRIP":
		return cache.NewRRIP()
	case "SHiP":
		return cache.NewSHiP()
	case "Mockingjay":
		return cache.NewMockingjay()
	case "LFU":
		return cache.NewLFU()
	case "DRRIP":
		return cache.NewDRRIP()
	}
	panic(fmt.Sprintf("secmem: unknown ctr policy %q", name))
}

// RegisterMetrics registers the full memory-controller metric set under the
// given telemetry scope: aggregate CTR cache behaviour, the Fig 2 traffic
// decomposition, the DRAM model, per-core metadata caches, the RL
// predictors, the prefetcher, and a histogram of MT verification walk depth
// (DRAM node fetches per walk). Registration is sample-pull only except the
// walk-depth histogram, which is nil-guarded on the hot path.
func (e *Engine) RegisterMetrics(s *telemetry.Scope) {
	ctrS := s.Scope("ctr")
	ctrS.Counter("hits", &e.CtrHits)
	ctrS.Counter("misses", &e.CtrMisses)
	ctrS.Rate("hit_rate",
		func() uint64 { return e.CtrHits },
		func() uint64 { return e.CtrHits + e.CtrMisses })
	ctrS.Rate("miss_rate",
		func() uint64 { return e.CtrMisses },
		func() uint64 { return e.CtrHits + e.CtrMisses })

	t := s.Scope("traffic")
	t.Counter("data_read", &e.Traffic.DataRead)
	t.Counter("data_write", &e.Traffic.DataWrite)
	t.Counter("ctr_read", &e.Traffic.CtrRead)
	t.Counter("ctr_write", &e.Traffic.CtrWrite)
	t.Counter("mt_read", &e.Traffic.MTRead)
	t.Counter("mac_read", &e.Traffic.MACRead)
	t.Counter("mac_write", &e.Traffic.MACWrite)
	t.Counter("reenc_write", &e.Traffic.ReEncWrite)
	t.Counter("wasted_fetch", &e.Traffic.WastedDataFetch)
	t.CounterFunc("total", func() uint64 { return e.Traffic.Total() })

	re := s.Scope("reenc")
	re.Counter("overflow_events", &e.ReEnc.OverflowEvents)
	re.Counter("overflow_lines", &e.ReEnc.OverflowLines)
	re.Counter("fault_lines", &e.ReEnc.FaultLines)
	re.Counter("crash_lines", &e.ReEnc.CrashLines)
	re.Counter("stall_cycles", &e.ReEnc.StallCycles)

	e.dram.RegisterMetrics(s.Scope("dram"))

	for i, cc := range e.ctrCaches {
		cc.RegisterMetrics(s.Scope(fmt.Sprintf("ctr_cache%d", i)))
	}
	for i, mc := range e.macCaches {
		mc.RegisterMetrics(s.Scope(fmt.Sprintf("mac_cache%d", i)))
	}

	if e.DataPred != nil {
		e.DataPred.RegisterMetrics(s.Scope("data_pred"))
	}
	if e.CtrPred != nil {
		e.CtrPred.RegisterMetrics(s.Scope("ctr_pred"))
	}
	if e.pf != nil {
		pfS := s.Scope("prefetch")
		pfS.Counter("issued", &e.pfStats.Issued)
		pfS.Counter("useful", &e.pfStats.Useful)
		pfS.RateOf("accuracy", &e.pfStats.Useful, &e.pfStats.Issued)
	}
	if e.design.Secure {
		e.walkHist = s.Histogram("mt.walk_depth")
	}
}

// Design returns the configured design point.
func (e *Engine) Design() Design { return e.design }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// DRAMStats exposes the DRAM model's counters.
func (e *Engine) DRAMStats() dram.Stats { return e.dram.Stats }

// CtrMissRate is the aggregate CTR-cache miss rate across cores.
func (e *Engine) CtrMissRate() float64 {
	t := e.CtrHits + e.CtrMisses
	if t == 0 {
		return 0
	}
	return float64(e.CtrMisses) / float64(t)
}

// PrefetchStats returns CTR-prefetcher accuracy counters (Fig 5).
func (e *Engine) PrefetchStats() prefetch.Stats { return e.pfStats }

// AttachFaults connects a fault injector to the engine. Must be called
// before the first access; a nil injector (the default) leaves every fetch
// path bit-identical to a fault-free build.
func (e *Engine) AttachFaults(in *fault.Injector) { e.faults = in }

// Faults returns the attached injector (nil when faults are disabled).
func (e *Engine) Faults() *fault.Injector { return e.faults }

// AttachSpans connects a span recorder: the engine's metadata-path events
// annotate it with typed causes (see telemetry.SpanCause). Nil (the
// default) keeps every path bit-identical and allocation-free.
func (e *Engine) AttachSpans(rec *telemetry.SpanRecorder) { e.spans = rec }

// faultProbe rolls the fault stream for one DRAM fetch and charges the
// resulting re-fetch/re-verify retries: each retry is a real DRAM re-read of
// the same object plus an integrity re-check (AuthLat), booked both on the
// returned latency and in the traffic decomposition. A persistent counter
// fault additionally forces the block's data lines to be re-encrypted under
// a fresh counter (the line is retired; its old counter can't be trusted).
func (e *Engine) faultProbe(k fault.Kind, now uint64, addr memsys.Addr, detectable bool) (lat uint64, poisoned bool) {
	out := e.faults.OnFetch(k, addr.Line(), detectable)
	if !out.Injected {
		return 0, false
	}
	for i := uint64(0); i < out.Retries; i++ {
		switch k {
		case fault.KindData:
			e.Traffic.DataRead++
		case fault.KindCtr:
			e.Traffic.CtrRead++
		case fault.KindMAC:
			e.Traffic.MACRead++
		case fault.KindMT:
			e.Traffic.MTRead++
		}
		lat += e.dram.Access(now+lat, uint64(addr), false) + e.cfg.AuthLat
	}
	e.faults.AddRetryCycles(lat)
	if e.spans != nil {
		e.spans.Note(telemetry.CauseFaultRetry, lat, out.Retries)
	}
	if out.Poisoned && k == fault.KindCtr {
		e.reencryptBlock(now+lat, addr.Line())
	}
	return lat, out.Poisoned
}

// reencryptBlock re-encrypts every data line covered by the counter at
// ctrLine under a fresh counter — the recovery storm a poisoned counter
// forces. The writes are background traffic (bank occupancy, no
// critical-path latency), mirroring the overflow re-encryption model.
func (e *Engine) reencryptBlock(now uint64, ctrLine uint64) {
	if e.layout == nil {
		return
	}
	ctrBase, macBase := e.layout.CtrBase.Line(), e.layout.MACBase.Line()
	if ctrLine < ctrBase || ctrLine >= macBase {
		return
	}
	block := ctrLine - ctrBase
	lines := e.layout.LinesPerBlock()
	base := block * lines
	var stall uint64
	for i := uint64(0); i < lines; i++ {
		e.Traffic.ReEncWrite++
		e.ReEnc.FaultLines++
		stall += e.dram.Access(now, (base+i)<<memsys.LineOffsetBits, true)
	}
	e.ReEnc.StallCycles += stall
	if e.spans != nil {
		e.spans.Note(telemetry.CauseReEnc, stall, lines)
	}
}

// DataDRAM performs a demand 64B data access in DRAM and returns its
// latency. Wasted (killed) fetches from mispredictions use WastedFetch.
func (e *Engine) DataDRAM(now uint64, addr memsys.Addr, write bool) uint64 {
	lat, _ := e.dataAccess(now, addr, write)
	return lat
}

// dataAccess is DataDRAM plus fault semantics: demand reads roll the fault
// stream (a data corruption is detectable only when the design's MAC covers
// the address) and report whether the returned value comes from a poisoned
// line.
func (e *Engine) dataAccess(now uint64, addr memsys.Addr, write bool) (lat uint64, poisoned bool) {
	if write {
		e.Traffic.DataWrite++
	} else {
		e.Traffic.DataRead++
	}
	lat = e.dram.Access(now, uint64(addr), write)
	if e.faults != nil && !write {
		flat, p := e.faultProbe(fault.KindData, now+lat, addr, e.design.Secure && e.InSecureRegion(addr))
		lat += flat
		poisoned = p
	}
	return lat, poisoned
}

// WastedFetch charges DRAM for a speculative data fetch that was killed
// after the line turned out to be on-chip (Algorithm 3 line 11): the bank
// was occupied but no latency lands on the critical path.
func (e *Engine) WastedFetch(now uint64, addr memsys.Addr) {
	e.Traffic.WastedDataFetch++
	e.dram.Access(now, uint64(addr), false)
}

// CtrResult reports the outcome of a counter access.
type CtrResult struct {
	Hit bool
	// Latency is the time until the OTP could start: cache hit latency or
	// the CTR DRAM fetch (+combination). MT verification runs off the
	// critical path (§5) and contributes traffic, not latency.
	Latency uint64
	// Good/Score carry the locality classification for LCR designs.
	Good  bool
	Score uint8
}

// CtrAccess runs one counter access for a data line on core `c`: metadata
// cache lookup, locality classification (LCR designs), DRAM fetch plus MT
// traversal on a miss, counter increment on writes (with MorphCtr overflow
// re-encryption), and optional prefetching (Fig 5 study).
func (e *Engine) CtrAccess(c int, now uint64, dataLine uint64, write bool) CtrResult {
	cc := e.ctrCaches[c]
	ctrAddr := e.layout.CtrAddr(dataLine)
	ctrLine := ctrAddr.Line()
	ctrBlock := e.layout.CtrBlockOf(dataLine)

	var res CtrResult
	// Locality classification happens on every CTR access (Algorithm 1).
	if e.CtrPred != nil {
		cls := e.CtrPred.Observe(ctrBlock)
		res.Good, res.Score = cls.Good, cls.Score
	}

	r := cc.Access(ctrLine, write, sigCtr)
	if r.Evicted && r.EvictedDirty {
		e.Traffic.CtrWrite++
		e.dram.Access(now, r.EvictedLine<<memsys.LineOffsetBits, true)
	}
	if r.Hit {
		e.CtrHits++
		res.Hit = true
		res.Latency = e.cfg.CtrHitLat + e.cfg.CombineLat
		if e.pfMark != nil && e.pfMark[ctrLine] {
			delete(e.pfMark, ctrLine)
			e.pfStats.Useful++
		}
		if e.spans != nil {
			e.spans.Note(telemetry.CauseCtrHit, res.Latency, 0)
		}
	} else {
		e.CtrMisses++
		lat := e.dram.Access(now, uint64(ctrAddr), false)
		e.Traffic.CtrRead++
		if e.faults != nil {
			flat, _ := e.faultProbe(fault.KindCtr, now+lat, ctrAddr, true)
			lat += flat
		}
		e.verifyPath(c, now, ctrBlock)
		res.Latency = lat + e.cfg.CombineLat
		if e.pfMark != nil {
			delete(e.pfMark, ctrLine)
		}
		if e.spans != nil {
			e.spans.Note(telemetry.CauseCtrMiss, res.Latency, 0)
		}
	}
	if e.lcrPols[c] != nil && e.CtrPred != nil {
		e.lcrPols[c].SetHint(r.Set, r.Way, res.Good, res.Score)
	}

	if write {
		e.incrementCounter(now, dataLine)
	}
	if e.pf != nil {
		e.prefetchCtr(c, now, ctrLine)
	}
	return res
}

// sigCtr / sigMT / sigMAC tag metadata accesses for PC-indexed policies.
const (
	sigCtr uint16 = 60001
	sigMT  uint16 = 60002
	sigMAC uint16 = 60003
)

// verifyPath walks the counter block's Merkle path leaf→root through the
// metadata cache, fetching missing nodes from DRAM. With stop-at-hit
// semantics the walk ends at the first cached node (its integrity is
// already established); FullTraversal fetches every node, matching the
// paper's accounting.
func (e *Engine) verifyPath(c int, now uint64, ctrBlock uint64) {
	e.pathBuf = e.layout.Tree.PathNodes(ctrBlock, e.pathBuf)
	if e.cfg.FullTraversal {
		// Paper-style accounting: every path node is fetched from DRAM
		// on every CTR miss (no MT caching assumed).
		for _, nodeAddr := range e.pathBuf {
			e.Traffic.MTRead++
			e.dram.Access(now, uint64(nodeAddr), false)
			if e.faults != nil {
				e.faultProbe(fault.KindMT, now, nodeAddr, true)
			}
		}
		if e.walkHist != nil {
			e.walkHist.Observe(uint64(len(e.pathBuf)))
		}
		if e.spans != nil {
			e.spans.Note(telemetry.CauseMTWalk, 0, uint64(len(e.pathBuf)))
		}
		return
	}
	cc := e.ctrCaches[c]
	var fetched uint64
	for depth, nodeAddr := range e.pathBuf {
		r := cc.Access(nodeAddr.Line(), false, sigMT)
		if r.Evicted && r.EvictedDirty {
			e.Traffic.CtrWrite++
			e.dram.Access(now, r.EvictedLine<<memsys.LineOffsetBits, true)
		}
		if e.lcrPols[c] != nil {
			// MT ancestors have structurally high reuse (a level-k
			// node covers 8^k counter blocks): pin them as good
			// locality, more strongly the higher the level.
			score := 200 + depth*8
			if score > 255 {
				score = 255
			}
			e.lcrPols[c].SetHint(r.Set, r.Way, true, uint8(score))
		}
		if r.Hit {
			break // ancestor already verified: trust established
		}
		fetched++
		e.Traffic.MTRead++
		e.dram.Access(now, uint64(nodeAddr), false)
		if e.faults != nil {
			e.faultProbe(fault.KindMT, now, nodeAddr, true)
		}
	}
	if e.walkHist != nil {
		e.walkHist.Observe(fetched)
	}
	if e.spans != nil {
		e.spans.Note(telemetry.CauseMTWalk, 0, fetched)
	}
}

// incrementCounter advances the line's counter for a DRAM write, handling
// MorphCtr overflow: re-encryption generates background 64B requests (§5).
func (e *Engine) incrementCounter(now uint64, dataLine uint64) {
	overflowed, reencLines := e.ctrStore.Increment(dataLine)
	if overflowed {
		e.ReEnc.OverflowEvents++
		var stall uint64
		for i := 0; i < reencLines; i++ {
			e.Traffic.ReEncWrite++
			e.ReEnc.OverflowLines++
			// Background queue slots: charge bank occupancy only.
			base := dataLine / uint64(ctr.Morph().LinesPerBlock) * uint64(ctr.Morph().LinesPerBlock)
			stall += e.dram.Access(now, (base+uint64(i))<<memsys.LineOffsetBits, true)
		}
		e.ReEnc.StallCycles += stall
		if e.spans != nil {
			e.spans.Note(telemetry.CauseReEnc, stall, uint64(reencLines))
		}
	}
}

// MACAccess models the MAC fetch/update for a DRAM data access through the
// per-core MAC cache: one 64B MAC block authenticates 8 data lines (§5).
// Returns the latency contribution (authentication overlaps the data burst;
// only a MAC-block DRAM fetch adds latency, and it overlaps the data fetch,
// so the returned value is traffic-only zero unless modelling strictness is
// desired).
func (e *Engine) MACAccess(c int, now uint64, dataLine uint64, write bool) {
	mc := e.macCaches[c]
	macAddr := e.layout.MACAddr(dataLine)
	r := mc.Access(macAddr.Line(), write, sigMAC)
	if r.Evicted && r.EvictedDirty {
		e.Traffic.MACWrite++
		e.dram.Access(now, r.EvictedLine<<memsys.LineOffsetBits, true)
	}
	if !r.Hit {
		e.Traffic.MACRead++
		lat := e.dram.Access(now, uint64(macAddr), false)
		if e.faults != nil {
			e.faultProbe(fault.KindMAC, now, macAddr, true)
		}
		if e.spans != nil {
			e.spans.Note(telemetry.CauseMACFetch, lat, 0)
		}
	}
}

// prefetchCtr issues CTR-cache prefetches proposed by the attached
// prefetcher, each costing a real DRAM fetch plus MT verification — the
// "incorrect prefetches still trigger integrity checks" effect of §3.3.
func (e *Engine) prefetchCtr(c int, now uint64, ctrLine uint64) {
	cc := e.ctrCaches[c]
	for _, cand := range e.pf.OnAccess(ctrLine, sigCtr) {
		if cc.Contains(cand) {
			continue
		}
		e.pfStats.Issued++
		r := cc.Access(cand, false, sigCtr)
		if r.Evicted && r.EvictedDirty {
			e.Traffic.CtrWrite++
			e.dram.Access(now, r.EvictedLine<<memsys.LineOffsetBits, true)
		}
		e.Traffic.CtrRead++
		e.dram.Access(now, cand<<memsys.LineOffsetBits, false)
		// integrity check for the prefetched counter
		if cand >= e.layout.CtrBase.Line() && cand < e.layout.MACBase.Line() {
			block := cand - e.layout.CtrBase.Line()
			e.verifyPath(c, now, block)
		}
		e.pfMark[cand] = true
	}
}

// SecureFetch computes the critical-path latency of an off-chip data access
// under this design: the data DRAM fetch in parallel with the counter
// pipeline (CTR ready → OTP generation), plus the final XOR. ctrLeadCycles
// is how many cycles earlier the CTR access started relative to `now` (0
// for the baseline; the L2+LLC lookup time for early designs).
func (e *Engine) SecureFetch(c int, now uint64, addr memsys.Addr, write bool, ctrDone CtrResult, ctrLeadCycles uint64) uint64 {
	dataLat := e.DataDRAM(now, addr, write)
	if !e.design.Secure {
		return dataLat
	}
	e.MACAccess(c, now, addr.Line(), write)
	ctrLat := ctrDone.Latency
	if ctrLat > ctrLeadCycles {
		ctrLat -= ctrLeadCycles
	} else {
		ctrLat = 0
	}
	otpReady := ctrLat + e.cfg.AESLat
	lat := dataLat
	if otpReady > lat {
		lat = otpReady
	}
	return lat + 1 // final XOR
}

// Crash models a power loss at the memory controller: every volatile
// metadata structure (CTR caches including resident MT nodes, MAC caches,
// prefetch marks, optionally the RL tables) is dropped, and the recovery
// protocol replays — each dirty metadata line must be re-read from DRAM,
// re-verified against the integrity tree, and written back consistent.
// Recovery runs serially at the controller; the summed cost is returned so
// the simulator can stall every thread behind it.
func (e *Engine) Crash(now uint64, dropRL bool) (cycles, fetches, linesLost uint64) {
	if e.design.Secure {
		ctrBase, macBase := e.layout.CtrBase.Line(), e.layout.MACBase.Line()
		for ci, cc := range e.ctrCaches {
			cc.FlushLines(func(line uint64, dirty bool) {
				linesLost++
				if !dirty {
					return
				}
				// Re-read the stale DRAM copy, re-verify it against the
				// tree, then write the reconstructed line back.
				cycles += e.dram.Access(now+cycles, line<<memsys.LineOffsetBits, false)
				e.Traffic.CtrRead++
				fetches++
				if line >= ctrBase && line < macBase {
					e.verifyPath(ci, now+cycles, line-ctrBase)
				}
				cycles += e.cfg.AuthLat
				cycles += e.dram.Access(now+cycles, line<<memsys.LineOffsetBits, true)
				e.Traffic.CtrWrite++
				e.ReEnc.CrashLines++
			})
		}
		for _, mc := range e.macCaches {
			mc.FlushLines(func(line uint64, dirty bool) {
				linesLost++
				if !dirty {
					return
				}
				cycles += e.dram.Access(now+cycles, line<<memsys.LineOffsetBits, false)
				e.Traffic.MACRead++
				fetches++
				cycles += e.cfg.AuthLat
				cycles += e.dram.Access(now+cycles, line<<memsys.LineOffsetBits, true)
				e.Traffic.MACWrite++
				e.ReEnc.CrashLines++
			})
		}
	}
	clear(e.pfMark)
	if dropRL {
		if e.DataPred != nil {
			e.DataPred.Reset()
		}
		if e.CtrPred != nil {
			e.CtrPred.Reset()
		}
	}
	return cycles, fetches, linesLost
}

// ResetStats zeroes every measurement while keeping all learned state
// (Q-tables, CET, cache contents) — called at the end of a warmup phase.
func (e *Engine) ResetStats() {
	e.Traffic = Traffic{}
	e.ReEnc = ReEncStats{}
	e.CtrHits, e.CtrMisses = 0, 0
	if e.faults != nil {
		e.faults.ResetStats()
	}
	e.pfStats = prefetch.Stats{}
	e.dram.Stats = dram.Stats{}
	for _, c := range e.ctrCaches {
		c.Stats = cache.Stats{}
	}
	for _, c := range e.macCaches {
		c.Stats = cache.Stats{}
	}
	if e.DataPred != nil {
		e.DataPred.Stats = core.DataStats{}
	}
	if e.CtrPred != nil {
		e.CtrPred.Stats = core.CtrStats{}
	}
}

// InSecureRegion reports whether an address falls inside the protected
// range (always true when no SGXv1-style bound is configured).
func (e *Engine) InSecureRegion(addr memsys.Addr) bool {
	if !e.design.Secure {
		return false
	}
	if e.cfg.SecureRegionBytes == 0 {
		return true
	}
	return uint64(addr) < e.cfg.SecureRegionBytes
}
