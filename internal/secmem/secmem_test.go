package secmem

import (
	"testing"

	"cosmos/internal/memsys"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.MemBytes = 1 << 30 // smaller tree for tests
	cfg.CtrCacheBytes = 16 << 10
	cfg.LCRCacheBytes = 16 << 10
	return cfg
}

func TestDesignRegistry(t *testing.T) {
	for _, name := range []string{"NP", "MorphCtr", "EMCC", "Morph@L1", "COSMOS-DP", "COSMOS-CP", "COSMOS"} {
		d, err := DesignByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name != name {
			t.Fatalf("resolved %q for %q", d.Name, name)
		}
	}
	if _, err := DesignByName("bogus"); err == nil {
		t.Fatal("unknown design must error")
	}
	if DesignNP().Secure {
		t.Fatal("NP must be insecure")
	}
	if !DesignCosmos().UseLCR || DesignCosmos().Early != EarlyPredicted {
		t.Fatal("COSMOS must combine both predictors")
	}
	if DesignCosmosDP().UseLCR || DesignCosmosDP().Early != EarlyPredicted {
		t.Fatal("COSMOS-DP is data predictor only")
	}
	if !DesignCosmosCP().UseLCR || DesignCosmosCP().Early != EarlyNone {
		t.Fatal("COSMOS-CP is locality predictor only")
	}
}

func TestEnginePredictorsPerDesign(t *testing.T) {
	cfg := testConfig()
	if e := NewEngine(cfg, DesignMorph()); e.DataPred != nil || e.CtrPred != nil {
		t.Fatal("MorphCtr must not instantiate predictors")
	}
	if e := NewEngine(cfg, DesignCosmos()); e.DataPred == nil || e.CtrPred == nil {
		t.Fatal("COSMOS needs both predictors")
	}
	if e := NewEngine(cfg, DesignCosmosDP()); e.DataPred == nil || e.CtrPred != nil {
		t.Fatal("COSMOS-DP predictor set wrong")
	}
	if e := NewEngine(cfg, DesignCosmosCP()); e.DataPred != nil || e.CtrPred == nil {
		t.Fatal("COSMOS-CP predictor set wrong")
	}
}

func TestCtrAccessHitMiss(t *testing.T) {
	e := NewEngine(testConfig(), DesignMorph())
	r1 := e.CtrAccess(0, 0, 1000, false)
	if r1.Hit {
		t.Fatal("cold CTR access must miss")
	}
	if e.Traffic.CtrRead != 1 {
		t.Fatalf("ctr reads = %d", e.Traffic.CtrRead)
	}
	if e.Traffic.MTRead == 0 {
		t.Fatal("CTR miss must fetch MT nodes")
	}
	// Any line in the same counter block (128 lines) shares the CTR.
	r2 := e.CtrAccess(0, 0, 1001, false)
	if !r2.Hit {
		t.Fatal("same-block CTR access must hit")
	}
	if r2.Latency >= r1.Latency {
		t.Fatalf("hit latency %d should beat miss latency %d", r2.Latency, r1.Latency)
	}
	if e.CtrHits != 1 || e.CtrMisses != 1 {
		t.Fatalf("hits=%d misses=%d", e.CtrHits, e.CtrMisses)
	}
}

func TestMTStopAtHitVsFullTraversal(t *testing.T) {
	run := func(full bool) uint64 {
		cfg := testConfig()
		cfg.FullTraversal = full
		e := NewEngine(cfg, DesignMorph())
		// Two CTR misses to adjacent counter blocks: their MT paths
		// share ancestors, so stop-at-hit fetches fewer nodes the
		// second time.
		e.CtrAccess(0, 0, 0, false)
		e.CtrAccess(0, 0, 128, false)
		return e.Traffic.MTRead
	}
	partial := run(false)
	full := run(true)
	if partial >= full {
		t.Fatalf("stop-at-hit MT reads (%d) should be below full traversal (%d)", partial, full)
	}
}

func TestCounterIncrementAndOverflow(t *testing.T) {
	e := NewEngine(testConfig(), DesignMorph())
	for i := 0; i < 70; i++ { // MorphCtr capacity is 67
		e.CtrAccess(0, 0, 42, true)
	}
	if e.Traffic.ReEncWrite == 0 {
		t.Fatal("68+ writes to one line must trigger re-encryption traffic")
	}
}

func TestMACCaching(t *testing.T) {
	e := NewEngine(testConfig(), DesignMorph())
	e.MACAccess(0, 0, 0, false)
	if e.Traffic.MACRead != 1 {
		t.Fatalf("MAC reads = %d", e.Traffic.MACRead)
	}
	// The same MAC block covers lines 0..7.
	for l := uint64(1); l < 8; l++ {
		e.MACAccess(0, 0, l, false)
	}
	if e.Traffic.MACRead != 1 {
		t.Fatalf("MAC block covering 8 lines fetched %d times", e.Traffic.MACRead)
	}
}

func TestSecureFetchLatencyOrdering(t *testing.T) {
	e := NewEngine(testConfig(), DesignMorph())
	// Space the operations far apart in time so bank-busy effects from
	// earlier metadata fetches don't confound the comparison.
	missRes := e.CtrAccess(0, 0, 5000, false)
	latMiss := e.SecureFetch(0, 1_000_000, memsys.LineToAddr(5000), false, missRes, 0)

	hitRes := e.CtrAccess(0, 2_000_000, 5001, false)
	latHit := e.SecureFetch(0, 3_000_000, memsys.LineToAddr(5001), false, hitRes, 0)
	if latHit >= latMiss {
		t.Fatalf("CTR-hit fetch %d should beat CTR-miss fetch %d", latHit, latMiss)
	}

	// A head start on the counter pipeline must never increase latency:
	// run the identical sequence on two fresh engines, varying only the
	// lead.
	fetchWithLead := func(lead uint64) uint64 {
		eng := NewEngine(testConfig(), DesignMorph())
		res := eng.CtrAccess(0, 0, 90000, false)
		return eng.SecureFetch(0, 1_000_000, memsys.LineToAddr(90001), false, res, lead)
	}
	lat0 := fetchWithLead(0)
	latLead := fetchWithLead(148)
	if latLead > lat0 {
		t.Fatalf("ctr lead increased latency: %d > %d", latLead, lat0)
	}
}

func TestNPSecureFetchIsJustDRAM(t *testing.T) {
	e := NewEngine(testConfig(), DesignNP())
	lat := e.SecureFetch(0, 0, 0x4000, false, CtrResult{}, 0)
	if lat == 0 {
		t.Fatal("NP fetch must still cost DRAM time")
	}
	if e.Traffic.CtrRead != 0 || e.Traffic.MTRead != 0 {
		t.Fatal("NP must not touch metadata")
	}
	if e.Traffic.DataRead != 1 {
		t.Fatal("data read not counted")
	}
}

func TestWastedFetchCounted(t *testing.T) {
	e := NewEngine(testConfig(), DesignCosmos())
	e.WastedFetch(0, 0x1000)
	if e.Traffic.WastedDataFetch != 1 {
		t.Fatal("wasted fetch not counted")
	}
}

func TestLCRHintsApplied(t *testing.T) {
	e := NewEngine(testConfig(), DesignCosmos())
	res := e.CtrAccess(0, 0, 777, false)
	// The LCR policy must hold the classification for the filled line.
	lcr := e.lcrPols[0]
	ctrLine := e.layout.CtrAddr(777).Line()
	set := int(ctrLine) & (e.ctrCaches[0].Sets() - 1)
	found := false
	for w := 0; w < e.ctrCaches[0].Ways(); w++ {
		good, score := lcr.Hint(set, w)
		if good == res.Good && score == res.Score {
			found = true
		}
	}
	if !found {
		t.Fatal("locality hint not propagated to the LCR cache")
	}
}

func TestPrefetcherIssuesAndVerifies(t *testing.T) {
	cfg := testConfig()
	d := DesignMorph()
	d.CtrPrefetcher = "nextline"
	e := NewEngine(cfg, d)
	mt0 := e.Traffic.MTRead
	e.CtrAccess(0, 0, 0, false) // prefetches the next CTR line
	if e.pfStats.Issued == 0 {
		t.Fatal("next-line prefetcher must issue")
	}
	if e.Traffic.CtrRead < 2 {
		t.Fatalf("prefetch must cost a CTR DRAM read, got %d", e.Traffic.CtrRead)
	}
	if e.Traffic.MTRead <= mt0 {
		t.Fatal("prefetched CTRs still need integrity checks (§3.3)")
	}
	// Demand access to the prefetched block: useful prefetch.
	e.CtrAccess(0, 0, 128, false)
	if e.pfStats.Useful == 0 {
		t.Fatal("useful prefetch not recognised")
	}
	if acc := e.PrefetchStats().Accuracy(); acc <= 0 || acc > 1 {
		t.Fatalf("accuracy %v out of range", acc)
	}
}

func TestDirtyCtrWriteback(t *testing.T) {
	cfg := testConfig()
	cfg.CtrCacheBytes = 4 << 10 // tiny: force evictions
	e := NewEngine(cfg, DesignMorph())
	for i := uint64(0); i < 4096; i++ {
		e.CtrAccess(0, 0, i*128, i%2 == 0) // every other access writes
	}
	if e.Traffic.CtrWrite == 0 {
		t.Fatal("dirty counter evictions must write back to DRAM")
	}
}

func TestTrafficTotal(t *testing.T) {
	tr := Traffic{DataRead: 1, DataWrite: 2, CtrRead: 3, CtrWrite: 4, MTRead: 5, MACRead: 6, MACWrite: 7, ReEncWrite: 8, WastedDataFetch: 9}
	if tr.Total() != 45 {
		t.Fatalf("total = %d", tr.Total())
	}
}
