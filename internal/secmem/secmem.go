// Package secmem models the memory-controller side of an AES-CTR secure
// memory system: the counter (CTR) cache, the MAC cache, Merkle-tree
// traversal traffic, counter increments with MorphCtr overflow
// re-encryption, and the latency of the secure fetch path. It parameterises
// the design points the paper evaluates (Table 4 plus the baselines):
// non-protected, MorphCtr, EMCC-like early access, COSMOS-DP, COSMOS-CP and
// full COSMOS.
package secmem

import (
	"fmt"
	"strings"

	"cosmos/internal/cache"
	"cosmos/internal/core"
	"cosmos/internal/ctr"
	"cosmos/internal/dram"
	"cosmos/internal/fault"
	"cosmos/internal/integrity"
	"cosmos/internal/memsys"
	"cosmos/internal/prefetch"
	"cosmos/internal/telemetry"
)

// EarlyMode says when the CTR cache is consulted relative to the data
// access.
type EarlyMode int

const (
	// EarlyNone: CTR access only after an LLC miss (MorphCtr baseline).
	EarlyNone EarlyMode = iota
	// EarlyAll: CTR access on every L1 miss (the Fig 4 oracle study and
	// the idealised EMCC design, which embeds the CTR cache at L2).
	EarlyAll
	// EarlyPredicted: CTR access on L1 misses the RL data location
	// predictor classifies as off-chip (COSMOS-DP, COSMOS).
	EarlyPredicted
)

// Design selects a secure-memory configuration.
type Design struct {
	Name   string
	Secure bool
	Early  EarlyMode
	// UseLCR enables the CTR locality predictor + LCR replacement in the
	// CTR cache (COSMOS-CP, COSMOS).
	UseLCR bool
	// CtrCacheBytes overrides the per-core CTR cache size (0 = config
	// default: 512KB for baselines, 128KB for LCR designs per Table 3).
	CtrCacheBytes int
	// CtrPolicy optionally overrides the CTR cache replacement policy
	// (Fig 5 study); empty = LRU (or LCR when UseLCR).
	CtrPolicy string
	// CtrPrefetcher optionally attaches a prefetcher to the CTR cache
	// (Fig 5 study): "", "nextline", "stride", "berti".
	CtrPrefetcher string
}

// The named design points.
func DesignNP() Design       { return Design{Name: "NP"} }
func DesignMorph() Design    { return Design{Name: "MorphCtr", Secure: true, Early: EarlyNone} }
func DesignEMCC() Design     { return Design{Name: "EMCC", Secure: true, Early: EarlyAll} }
func DesignOracleL1() Design { return Design{Name: "Morph@L1", Secure: true, Early: EarlyAll} }
func DesignCosmosDP() Design {
	return Design{Name: "COSMOS-DP", Secure: true, Early: EarlyPredicted}
}
func DesignCosmosCP() Design {
	return Design{Name: "COSMOS-CP", Secure: true, Early: EarlyNone, UseLCR: true}
}
func DesignCosmos() Design {
	return Design{Name: "COSMOS", Secure: true, Early: EarlyPredicted, UseLCR: true}
}

// DesignRMCC approximates RMCC (Wang et al., MICRO'22 — §6.2 of the paper):
// frequently accessed counters are retained near the memory controller via
// memoization. We model the retention with an aged-LFU metadata cache at
// the baseline's capacity; like RMCC, counter handling stays at the
// post-LLC-miss point.
func DesignRMCC() Design {
	return Design{Name: "RMCC", Secure: true, Early: EarlyNone, CtrPolicy: "LFU"}
}

// AllDesigns is the design registry: every named design point, in the
// paper's presentation order (baselines first, COSMOS variants, then the
// related-work comparison point). DesignByName and the public
// cosmos.Designs list both derive from it, so they cannot drift.
func AllDesigns() []Design {
	return []Design{
		DesignNP(), DesignMorph(), DesignEMCC(), DesignOracleL1(),
		DesignCosmosDP(), DesignCosmosCP(), DesignCosmos(), DesignRMCC(),
	}
}

// DesignNames lists the registry's design names in presentation order.
func DesignNames() []string {
	ds := AllDesigns()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return names
}

// DesignByName resolves the standard designs; the error for an unknown
// name lists every valid one.
func DesignByName(name string) (Design, error) {
	for _, d := range AllDesigns() {
		if d.Name == name {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("secmem: unknown design %q (valid: %s)",
		name, strings.Join(DesignNames(), ", "))
}

// Config carries the Table 3 machine parameters relevant to the MC.
type Config struct {
	Cores      int
	MemBytes   uint64
	AESLat     uint64 // OTP generation (40 cycles)
	AuthLat    uint64 // MAC authentication (40 cycles)
	CtrHitLat  uint64 // CTR cache hit latency
	CombineLat uint64 // MorphCtr major+minor combination (1 cycle)

	CtrCacheBytes int // per core (512KB baseline)
	LCRCacheBytes int // per core for LCR designs (128KB)
	CtrCacheWays  int
	MACCacheBytes int

	// FullTraversal fetches every MT path node regardless of caching
	// (the paper's log-depth accounting); default stops at the first
	// cached node.
	FullTraversal bool
	// SecureRegionBytes bounds the protected range, SGXv1-style (the
	// <128MB EPC of §3.1): accesses at or above the bound skip all
	// metadata handling. 0 protects all of memory (SGXv2/SEV style).
	SecureRegionBytes uint64
	// MEETree builds the integrity tree over 8-line data groups
	// (SGX-MEE style) instead of over counter blocks (Bonsai style, the
	// default): a far deeper tree whose traffic the Bonsai organisation
	// — and MorphCtr's 1:128 coverage — exists to avoid.
	MEETree bool

	DRAM   dram.Config
	Params core.Params
	Seed   uint64
}

// DefaultConfig returns the Table 3 MC parameters.
func DefaultConfig() Config {
	return Config{
		Cores:         4,
		MemBytes:      32 << 30,
		AESLat:        40,
		AuthLat:       40,
		CtrHitLat:     2,
		CombineLat:    1,
		CtrCacheBytes: 512 << 10,
		LCRCacheBytes: 128 << 10,
		CtrCacheWays:  16,
		MACCacheBytes: 32 << 10,
		DRAM:          dram.DefaultConfig(),
		Params:        core.DefaultParams(),
		Seed:          1,
	}
}

// Validate rejects memory-controller parameters that would panic deep in
// NewEngine or Step, with errors that name the offending field.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("secmem: cores %d must be at least 1", c.Cores)
	}
	if c.MemBytes == 0 {
		return fmt.Errorf("secmem: zero memory size")
	}
	if err := cache.ValidateGeometry("ctr", c.CtrCacheBytes, c.CtrCacheWays); err != nil {
		return fmt.Errorf("secmem: %w", err)
	}
	if err := cache.ValidateGeometry("lcr-ctr", c.LCRCacheBytes, c.CtrCacheWays); err != nil {
		return fmt.Errorf("secmem: %w", err)
	}
	if err := cache.ValidateGeometry("mac", c.MACCacheBytes, 8); err != nil {
		return fmt.Errorf("secmem: %w", err)
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	return nil
}

// Traffic decomposes DRAM requests the way Fig 2 does.
type Traffic struct {
	DataRead        uint64
	DataWrite       uint64
	CtrRead         uint64
	CtrWrite        uint64 // dirty counter-block writebacks
	MTRead          uint64
	MACRead         uint64
	MACWrite        uint64
	ReEncWrite      uint64 // background re-encryption requests
	WastedDataFetch uint64 // killed DRAM fetches from off-chip mispredictions
}

// Total sums all DRAM requests.
func (t Traffic) Total() uint64 {
	return t.DataRead + t.DataWrite + t.CtrRead + t.CtrWrite +
		t.MTRead + t.MACRead + t.MACWrite + t.ReEncWrite + t.WastedDataFetch
}

// ReEncStats decomposes re-encryption activity by cause: MorphCtr minor-
// counter overflow (the normal storm), unrecoverable counter faults
// (poisoned lines force the block under a fresh counter), and crash
// recovery (lost dirty counter lines rebuilt on restart).
type ReEncStats struct {
	OverflowEvents uint64 // counter-block overflows observed
	OverflowLines  uint64 // lines re-encrypted because of overflows
	FaultLines     uint64 // lines re-encrypted because of poisoned counters
	CrashLines     uint64 // dirty counter lines rebuilt by crash recovery
	StallCycles    uint64 // summed DRAM occupancy of re-encryption writes
}

// Engine is the secure memory controller.
type Engine struct {
	cfg    Config
	design Design

	dram      *dram.Model
	layout    *integrity.SecureLayout
	ctrStore  *ctr.Store
	ctrCaches []*cache.Cache
	lcrPols   []*cache.LCR // non-nil when UseLCR
	macCaches []*cache.Cache

	// COSMOS predictors (shared structures in the MC).
	DataPred *core.DataPredictor
	CtrPred  *core.LocalityPredictor

	pf      prefetch.Prefetcher
	pfStats prefetch.Stats
	pfMark  map[uint64]bool // ctr cache lines filled by prefetch, not yet used

	pathBuf []memsys.Addr

	// walkHist, when non-nil, receives the number of MT path nodes fetched
	// from DRAM per verification walk (telemetry; see RegisterMetrics).
	walkHist *telemetry.Histogram

	// faults, when non-nil, is the attached fault plane: every demand
	// fetch of a covered object consults it and charges the resulting
	// retry latency. Nil (the default) costs one branch per fetch and
	// keeps the engine bit-identical to a fault-free build.
	faults *fault.Injector

	// spans, when non-nil, is the attached span recorder: metadata-path
	// events (counter hits/misses, MT walks, MAC fetches, fault retries,
	// re-encryption storms) feed its per-cause histograms and, for
	// sampled accesses, its span trees. Nil (the default) costs one
	// branch per site.
	spans *telemetry.SpanRecorder

	Traffic   Traffic
	ReEnc     ReEncStats
	CtrHits   uint64
	CtrMisses uint64
}
