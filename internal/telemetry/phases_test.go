package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestPhasesAccumulateAndBreakdown(t *testing.T) {
	p := NewPhases()
	p.Add(PhaseDecode, 100*time.Millisecond)
	p.Add(PhaseStep, 2*time.Second)
	p.Add(PhaseStep, 500*time.Millisecond)
	p.Add(PhaseReport, -time.Second) // negative durations are dropped
	p.AddAccesses(1_000)

	if got := p.Seconds(PhaseStep); got != 2.5 {
		t.Fatalf("step seconds = %v, want 2.5", got)
	}
	if got := p.Seconds(PhaseReport); got != 0 {
		t.Fatalf("negative add booked time: %v", got)
	}
	b := p.Breakdown()
	if b.DecodeMS != 100 || b.StepMS != 2500 || b.StoreMS != 0 || b.Accesses != 1_000 {
		t.Fatalf("breakdown = %+v", b)
	}
	if b.WallMS < 0 || b.AccessesPerSec <= 0 {
		t.Fatalf("wall/rate = %+v", b)
	}
}

func TestPhasesMerge(t *testing.T) {
	campaign := NewPhases()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			child := NewPhases()
			child.Add(PhaseStep, time.Second)
			child.Add(PhaseStore, time.Millisecond)
			child.AddAccesses(100)
			campaign.Merge(child)
		}()
	}
	wg.Wait()
	if got := campaign.Seconds(PhaseStep); got != 8 {
		t.Fatalf("merged step seconds = %v, want 8", got)
	}
	if got := campaign.Accesses(); got != 800 {
		t.Fatalf("merged accesses = %v, want 800", got)
	}
}

func TestPhasesRegisterMetrics(t *testing.T) {
	p := NewPhases()
	p.Add(PhaseDecode, time.Second)
	p.AddAccesses(42)

	reg := NewRegistry()
	p.RegisterMetrics(reg.Root().Scope("perf"))
	byName := map[string]Sample{}
	for _, s := range reg.Snapshot() {
		byName[s.Name] = s
	}
	want := map[string]float64{
		"perf.decode_seconds":     1,
		"perf.step_seconds":       0,
		"perf.store_seconds":      0,
		"perf.report_seconds":     0,
		"perf.simulated_accesses": 42,
	}
	for name, v := range want {
		s, ok := byName[name]
		if !ok {
			t.Fatalf("metric %s missing from snapshot", name)
		}
		if got := s.Value(); got != v {
			t.Fatalf("%s = %v, want %v", name, got, v)
		}
	}
	if _, ok := byName["perf.accesses_per_sec"]; !ok {
		t.Fatal("rate gauge missing")
	}
}

func TestPhaseIDString(t *testing.T) {
	names := map[PhaseID]string{
		PhaseDecode: "decode", PhaseStep: "step",
		PhaseStore: "store", PhaseReport: "report",
		NumPhases: "unknown",
	}
	for id, want := range names {
		if id.String() != want {
			t.Fatalf("%d.String() = %q, want %q", id, id.String(), want)
		}
	}
}
