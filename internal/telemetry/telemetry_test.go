package telemetry

import (
	"strings"
	"testing"
)

func TestRegistryScopesAndNames(t *testing.T) {
	r := NewRegistry()
	var hits, accesses uint64
	core := r.Scope("core0")
	l1 := core.Scope("l1")
	l1.Counter("hits", &hits)
	l1.RateOf("hit_rate", &hits, &accesses)
	r.Root().Gauge("ipc", func() float64 { return 1.5 })

	want := []string{"core0.l1.hits", "core0.l1.hit_rate", "ipc"}
	got := r.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if r.Len() != 3 {
		t.Errorf("Len() = %d, want 3", r.Len())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var v uint64
	s := r.Scope("sim")
	s.Counter("accesses", &v)

	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("duplicate registration did not panic")
		}
		if msg, ok := p.(string); !ok || !strings.Contains(msg, "sim.accesses") {
			t.Errorf("panic %v does not name the colliding metric", p)
		}
	}()
	s.Counter("accesses", &v)
}

func TestRegistryEmptyNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("empty metric name did not panic")
		}
	}()
	var v uint64
	r.Root().Counter("", &v)
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Value → expected bucket index: bucket 0 is exactly 0, bucket i holds
	// [2^(i-1), 2^i).
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 10, 11},
		{1<<11 - 1, 11},
		{1 << 38, 39},              // last regular bucket
		{1 << 50, HistBuckets - 1}, // clamped overflow
		{^uint64(0), HistBuckets - 1},
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.v)
		b := h.Buckets()
		for i, n := range b {
			want := uint64(0)
			if i == c.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%d): bucket[%d] = %d, want %d", c.v, i, n, want)
			}
		}
	}
}

func TestHistogramBoundsMatchObserve(t *testing.T) {
	// Every bucket's reported bounds must route back to that bucket.
	for i := 0; i < HistBuckets; i++ {
		lo, hi := BucketBounds(i)
		for _, v := range []uint64{lo, hi} {
			var h Histogram
			h.Observe(v)
			if h.Buckets()[i] != 1 {
				t.Errorf("bucket %d bounds [%d,%d]: Observe(%d) landed elsewhere", i, lo, hi, v)
			}
		}
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 20, 300} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 330 || h.Max() != 300 {
		t.Errorf("count/sum/max = %d/%d/%d, want 3/330/300", h.Count(), h.Sum(), h.Max())
	}
	if got, want := h.Mean(), 110.0; got != want {
		t.Errorf("Mean() = %g, want %g", got, want)
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Errorf("empty Mean() = %g, want 0", empty.Mean())
	}
}
