package telemetry

import "testing"

func TestSnapshotReadsEveryKind(t *testing.T) {
	reg := NewRegistry()
	root := reg.Root()

	var hits uint64 = 3
	root.Scope("ctr").Counter("hits", &hits)
	root.Gauge("occupancy", func() float64 { return 0.25 })
	var num, den uint64 = 1, 4
	root.RateOf("miss_rate", &num, &den)
	h := root.Histogram("latency")
	h.Observe(4)
	h.Observe(12)

	snap := reg.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d", len(snap))
	}
	// Registration order is preserved.
	names := []string{"ctr.hits", "occupancy", "miss_rate", "latency"}
	kinds := []Kind{KindCounter, KindGauge, KindRate, KindHistogram}
	for i, s := range snap {
		if s.Name != names[i] || s.Kind != kinds[i] {
			t.Fatalf("snap[%d] = {%s %s}, want {%s %s}", i, s.Name, s.Kind, names[i], kinds[i])
		}
	}

	if snap[0].Counter != 3 || snap[0].Value() != 3 {
		t.Errorf("counter = %+v", snap[0])
	}
	if snap[1].Gauge != 0.25 {
		t.Errorf("gauge = %+v", snap[1])
	}
	if snap[2].Num != 1 || snap[2].Den != 4 || snap[2].Value() != 0.25 {
		t.Errorf("rate = %+v", snap[2])
	}
	hs := snap[3].Hist
	if hs.Count != 2 || hs.Sum != 16 || hs.Max != 12 {
		t.Errorf("hist = %+v", hs)
	}
	if snap[3].Value() != 8 { // histogram folds to its mean
		t.Errorf("hist value = %v", snap[3].Value())
	}

	// Snapshot is cumulative and point-in-time: mutating the sources and
	// reading again shows the new values without touching the old snapshot.
	hits = 10
	num = 2
	again := reg.Snapshot()
	if again[0].Counter != 10 || again[2].Value() != 0.5 {
		t.Errorf("second snapshot = %+v / %+v", again[0], again[2])
	}
	if snap[0].Counter != 3 {
		t.Error("first snapshot must be immutable")
	}
}

func TestSnapshotRateZeroDenominator(t *testing.T) {
	reg := NewRegistry()
	var num, den uint64
	reg.Root().RateOf("rate", &num, &den)
	if v := reg.Snapshot()[0].Value(); v != 0 {
		t.Fatalf("0/0 rate = %v, want 0", v)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindCounter: "counter", KindGauge: "gauge",
		KindRate: "rate", KindHistogram: "histogram", Kind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}
