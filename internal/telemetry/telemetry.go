// Package telemetry is the simulator's observability layer: a typed metric
// registry (counters, gauges, log2-bucketed histograms and derived
// per-interval rates) organised into named hierarchical scopes, an interval
// Sampler that snapshots every registered metric each N accesses and emits a
// gem5-style stats time-series (JSONL and CSV), and an event Tracer that
// records the racing chains of off-chip accesses as Chrome trace_event JSON
// loadable in about://tracing and Perfetto.
//
// The design principle is that registration is cheap and sampling is pull:
// metrics reference counters the simulator already maintains (by pointer or
// closure), so the hot path is untouched, and a nil *Sampler / nil *Tracer
// costs exactly one predictable branch per access. Only Histograms are
// push-style, and they are guarded by the same nil check.
//
// Metric names are dot-separated paths, e.g. "core0.l1.miss_rate" or
// "secmem.ctr.hit_rate". See README.md "Observability" for the naming scheme
// and the JSONL schema.
package telemetry

import (
	"fmt"
	"sort"
)

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindRate
	kindHist
)

// metric is one registered entry: a name plus exactly one source according
// to its kind.
type metric struct {
	name  string
	kind  metricKind
	count func() uint64 // kindCounter
	gauge func() float64
	num   func() uint64 // kindRate numerator / denominator
	den   func() uint64
	hist  *Histogram
}

// Registry holds the full metric set of one simulated system. Metrics are
// registered once (between construction and the first sample) through Scopes
// and then sampled repeatedly. Registration of a duplicate name panics: the
// name space is the API between the instrumented packages and the output
// files, and a silent collision would corrupt both.
type Registry struct {
	metrics []metric
	index   map[string]int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// Root returns the unprefixed scope.
func (r *Registry) Root() *Scope { return &Scope{r: r} }

// Scope returns a named top-level scope.
func (r *Registry) Scope(name string) *Scope { return &Scope{r: r, prefix: name} }

// Len reports the number of registered metrics.
func (r *Registry) Len() int { return len(r.metrics) }

// Names returns every registered metric name in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.name
	}
	return out
}

// SortedNames returns every registered metric name sorted.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

func (r *Registry) register(m metric) {
	if m.name == "" {
		panic("telemetry: empty metric name")
	}
	if _, dup := r.index[m.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	r.index[m.name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Scope is a named prefix in the registry's hierarchical name space. Scopes
// are cheap handles; they can be created freely and passed down to the
// component that owns the metrics.
type Scope struct {
	r      *Registry
	prefix string
}

// Scope derives a child scope ("core0" → "core0.l1").
func (s *Scope) Scope(name string) *Scope {
	return &Scope{r: s.r, prefix: s.join(name)}
}

func (s *Scope) join(name string) string {
	if s.prefix == "" {
		return name
	}
	return s.prefix + "." + name
}

// Counter registers a monotonic counter read from an existing uint64 the
// simulator already maintains. The sampler emits the per-interval delta.
// The pointer must stay valid for the registry's lifetime (a struct field,
// not a loop variable).
func (s *Scope) Counter(name string, v *uint64) {
	s.CounterFunc(name, func() uint64 { return *v })
}

// CounterFunc registers a monotonic counter computed by f (e.g. a sum of
// several raw counters). The sampler emits the per-interval delta.
func (s *Scope) CounterFunc(name string, f func() uint64) {
	s.r.register(metric{name: s.join(name), kind: kindCounter, count: f})
}

// Gauge registers an instantaneous value sampled as-is each interval
// (an exploration rate, a Q-table coverage fraction, a queue depth).
func (s *Scope) Gauge(name string, f func() float64) {
	s.r.register(metric{name: s.join(name), kind: kindGauge, gauge: f})
}

// Rate registers a derived per-interval ratio: at each sample the sampler
// computes Δnum/Δden over the interval (0 when Δden is 0). This is how
// time-local miss rates and predictor accuracies are expressed on top of
// cumulative counters.
func (s *Scope) Rate(name string, num, den func() uint64) {
	s.r.register(metric{name: s.join(name), kind: kindRate, num: num, den: den})
}

// RateOf is Rate over two existing counters.
func (s *Scope) RateOf(name string, num, den *uint64) {
	s.Rate(name, func() uint64 { return *num }, func() uint64 { return *den })
}

// Histogram registers and returns a log2-bucketed histogram. Unlike the
// other kinds it is push-style: the owner calls Observe on the hot path,
// guarded by its own enable check.
func (s *Scope) Histogram(name string) *Histogram {
	h := &Histogram{}
	s.r.register(metric{name: s.join(name), kind: kindHist, hist: h})
	return h
}

// HistogramVar registers an existing histogram the owner already maintains
// (e.g. a SpanRecorder's per-cause array), so externally-owned
// distributions ride the sampler and /metrics without double bookkeeping.
func (s *Scope) HistogramVar(name string, h *Histogram) {
	s.r.register(metric{name: s.join(name), kind: kindHist, hist: h})
}
