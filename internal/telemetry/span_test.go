package telemetry

import (
	"encoding/json"
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", h.Quantile(0.5))
	}
	// 100 samples of value 8: every quantile lands in bucket [8,15] and
	// is clamped at the observed max.
	for i := 0; i < 100; i++ {
		h.Observe(8)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		v := h.Quantile(q)
		if v < 8 || v > 8 {
			t.Errorf("q%v of constant-8 = %v, want 8", q, v)
		}
	}

	// 99 fast + 1 slow: p50 stays in the fast bucket, p999 reaches the
	// slow one.
	var h2 Histogram
	for i := 0; i < 99; i++ {
		h2.Observe(10)
	}
	h2.Observe(5000)
	if p50 := h2.Quantile(0.5); p50 < 8 || p50 > 15 {
		t.Errorf("p50 = %v, want within bucket [8,15]", p50)
	}
	if p999 := h2.Quantile(0.999); p999 < 4096 || p999 > 5000 {
		t.Errorf("p999 = %v, want in (4096, 5000]", p999)
	}
	if mx := h2.Quantile(1); mx != 5000 {
		t.Errorf("q1 = %v, want max 5000", mx)
	}
	// Quantiles are monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h2.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestSpanRecorderSamplingDeterminism(t *testing.T) {
	run := func() *SpanRecorder {
		r := NewSpanRecorder(4, 8)
		for i := uint64(0); i < 20; i++ {
			r.MaybeBegin(i, int(i%2), 100+i)
			r.Note(CauseCtrMiss, 50+i, 0)
			r.NoteFetch(2, 148, 148, 60, 148, 40+i, 250+i, true, false, false)
			r.EndAccess(252 + i)
		}
		return r
	}
	a, b := run(), run()
	if a.Sampled() != 5 {
		t.Fatalf("sampled %d trees from 20 accesses at 1-in-4, want 5", a.Sampled())
	}
	aj, _ := json.Marshal(a.TopSpans())
	bj, _ := json.Marshal(b.TopSpans())
	if string(aj) != string(bj) {
		t.Fatalf("identical runs produced different span trees:\n%s\n%s", aj, bj)
	}
	top := a.TopSpans()
	if len(top) != 5 {
		t.Fatalf("topK kept %d trees, want 5", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Total < top[i].Total {
			t.Fatalf("TopSpans not sorted slowest-first: %d before %d",
				top[i-1].Total, top[i].Total)
		}
	}
	// Latency rises with index, so the slowest exemplar is access 16.
	if top[0].Index != 16 || top[0].Total != 252+16 {
		t.Fatalf("slowest exemplar = access %d total %d, want 16/%d",
			top[0].Index, top[0].Total, 252+16)
	}
}

func TestSpanRecorderTopKBounded(t *testing.T) {
	r := NewSpanRecorder(1, 3)
	for i := uint64(0); i < 100; i++ {
		r.MaybeBegin(i, 0, i)
		r.EndAccess(i)
	}
	top := r.TopSpans()
	if len(top) != 3 {
		t.Fatalf("reservoir holds %d, want 3", len(top))
	}
	for i, want := range []uint64{99, 98, 97} {
		if top[i].Total != want {
			t.Fatalf("top[%d].Total = %d, want %d", i, top[i].Total, want)
		}
	}
}

func TestSpanRecorderCtrNesting(t *testing.T) {
	r := NewSpanRecorder(1, 1)
	r.MaybeBegin(0, 2, 7)
	r.LevelMiss("l2", 2, 20)
	// Engine-side order on a secure counter miss with a data-side fault:
	// ctr fault retry, the MT walk, then the data retry and the MAC fetch.
	r.Note(CauseFaultRetry, 30, 1)
	r.Note(CauseMTWalk, 0, 3)
	r.Note(CauseCtrMiss, 90, 0)
	r.Note(CauseFaultRetry, 25, 1)
	r.Note(CauseMACFetch, 18, 0)
	r.NoteFetch(2, 148, 148, 130, 148, 40, 300, true, false, false)
	r.EndAccess(302)

	top := r.TopSpans()
	if len(top) != 1 {
		t.Fatalf("want 1 exemplar, got %d", len(top))
	}
	root := top[0].Root
	if root.Cause != CauseAccess || root.Dur != 302 {
		t.Fatalf("root = %+v, want access/302", root)
	}
	// Children: the level miss then the fetch.
	if len(root.Children) != 2 || root.Children[0].Cause != CauseLevelMiss {
		t.Fatalf("root children = %+v", root.Children)
	}
	fetch := root.Children[1]
	if fetch.Cause != CauseFetch {
		t.Fatalf("second child = %v, want fetch", fetch.Cause)
	}
	// Fetch children: walk, ctr (with the ctr-chain prefix nested), data,
	// then the remaining engine notes in order.
	var ctr *Span
	for i := range fetch.Children {
		if fetch.Children[i].Cause == CauseCtrMiss {
			ctr = &fetch.Children[i]
		}
	}
	if ctr == nil {
		t.Fatalf("no ctr node in fetch children: %+v", fetch.Children)
	}
	if len(ctr.Children) != 2 ||
		ctr.Children[0].Cause != CauseFaultRetry || ctr.Children[1].Cause != CauseMTWalk {
		t.Fatalf("ctr children = %+v, want [fault_retry, mt_walk]", ctr.Children)
	}
	if ctr.Children[1].Value != 3 {
		t.Fatalf("mt walk depth = %d, want 3", ctr.Children[1].Value)
	}
	tail := fetch.Children[len(fetch.Children)-2:]
	if tail[0].Cause != CauseFaultRetry || tail[1].Cause != CauseMACFetch {
		t.Fatalf("trailing fetch children = %+v, want [fault_retry, mac_fetch]", tail)
	}

	// The histograms observed every note regardless of nesting.
	if r.Hist(CauseMTWalk).Count() != 1 || r.Hist(CauseMTWalk).Max() != 3 {
		t.Fatalf("mt_walk hist count/max = %d/%d",
			r.Hist(CauseMTWalk).Count(), r.Hist(CauseMTWalk).Max())
	}
	if r.Hist(CauseFaultRetry).Count() != 2 {
		t.Fatalf("fault_retry hist count = %d, want 2", r.Hist(CauseFaultRetry).Count())
	}
}

func TestSpanRecorderReport(t *testing.T) {
	r := NewSpanRecorder(2, 4)
	for i := uint64(0); i < 10; i++ {
		r.MaybeBegin(i, 0, i)
		r.Note(CauseCtrHit, 14, 0)
		r.EndAccess(100 + i*10)
	}
	rep := r.Report()
	if rep.SampleEvery != 2 || rep.Sampled != 5 {
		t.Fatalf("report header = %+v", rep)
	}
	acc := rep.Stat("access")
	if acc == nil || acc.Count != 10 {
		t.Fatalf("access stat = %+v, want count 10", acc)
	}
	if acc.P50 <= 0 || acc.P99 < acc.P50 || math.IsNaN(acc.P999) {
		t.Fatalf("bad percentiles: %+v", acc)
	}
	if rep.Stat("ctr_hit") == nil {
		t.Fatal("ctr_hit stat missing")
	}
	if rep.Stat("fetch") != nil {
		t.Fatal("fetch stat present despite no fetches")
	}
	if rep.Stat("nope") != nil || (*TailReport)(nil).Stat("access") != nil {
		t.Fatal("Stat on missing cause / nil report must return nil")
	}
}

func TestSamplerObserver(t *testing.T) {
	reg := NewRegistry()
	var ctr uint64
	reg.Root().Scope("sim").Counter("offchip_reads", &ctr)
	h := reg.Root().Scope("sim").Histogram("fetch_latency")

	var rows []Row
	sp, err := NewSampler(reg, SamplerConfig{
		Interval: 10,
		Observer: func(r Row) { rows = append(rows, r) },
	})
	if err != nil {
		t.Fatalf("observer-only sampler rejected: %v", err)
	}
	for i := uint64(1); i <= 25; i++ {
		ctr++
		h.Observe(100)
		sp.MaybeSample(i)
	}
	sp.Flush(25)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (two full intervals + flush)", len(rows))
	}
	r0, r2 := rows[0], rows[2]
	if r0.Accesses != 10 || r0.Delta != 10 || r0.Values["sim.offchip_reads"] != 10 {
		t.Fatalf("row0 = %+v", r0)
	}
	if r2.Accesses != 25 || r2.Delta != 5 || r2.Values["sim.offchip_reads"] != 5 {
		t.Fatalf("flush row = %+v", r2)
	}
	if r0.Values["sim.fetch_latency.mean"] != 100 || r0.Values["sim.fetch_latency.count"] != 10 {
		t.Fatalf("hist values = %+v", r0.Values)
	}
	if k, ok := reg.Kind("sim.offchip_reads"); !ok || k != KindCounter {
		t.Fatalf("Kind(counter) = %v/%v", k, ok)
	}
	if k, ok := reg.Kind("sim.fetch_latency"); !ok || k != KindHistogram {
		t.Fatalf("Kind(hist) = %v/%v", k, ok)
	}
	if _, ok := reg.Kind("missing"); ok {
		t.Fatal("Kind on unknown metric must report !ok")
	}
}
