package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// TraceEvent is one Chrome trace_event entry. Only the fields the viewers
// need are modelled: complete slices ("X") and metadata records ("M").
// Timestamps and durations are in the simulator's cycle domain, written into
// the microsecond fields the Trace Event Format defines — viewers only care
// about relative magnitudes.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer accumulates trace events up to a cap and serialises them as Chrome
// trace_event JSON ({"traceEvents": [...]}), the format about://tracing and
// Perfetto load directly. A nil *Tracer is the disabled state; callers guard
// with one branch. The tracer is not safe for concurrent use.
type Tracer struct {
	events  []TraceEvent
	max     int
	dropped uint64

	procNames   map[int]string
	threadNames map[int64]string
}

// DefaultTraceEvents caps an unconfigured tracer at ~1M slices, roughly
// 100MB of JSON — enough for hundreds of thousands of off-chip accesses.
const DefaultTraceEvents = 1 << 20

// NewTracer builds a tracer holding at most maxEvents slices
// (0 = DefaultTraceEvents). Once full, further slices are counted as
// dropped but not stored, so a long run degrades to a truncated trace
// instead of unbounded memory.
func NewTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultTraceEvents
	}
	return &Tracer{
		max:         maxEvents,
		procNames:   make(map[int]string),
		threadNames: make(map[int64]string),
	}
}

// Events reports how many slices have been recorded.
func (t *Tracer) Events() int { return len(t.events) }

// Dropped reports how many slices were discarded after the cap was hit.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// SetProcessName labels a pid lane (e.g. "core0"). Idempotent.
func (t *Tracer) SetProcessName(pid int, name string) {
	t.procNames[pid] = name
}

// SetThreadName labels a (pid, tid) track (e.g. "ctr chain"). Idempotent.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	t.threadNames[int64(pid)<<32|int64(uint32(tid))] = name
}

// Slice records one complete event: a named span [ts, ts+dur) on track
// (pid, tid).
func (t *Tracer) Slice(pid, tid int, name, cat string, ts, dur uint64) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid,
	})
}

// Instant records a zero-duration marker on track (pid, tid).
func (t *Tracer) Instant(pid, tid int, name, cat string, ts uint64) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, TraceEvent{
		Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: pid, Tid: tid,
		Args: map[string]any{"s": "t"},
	})
}

// WriteJSON serialises the trace. Metadata events (process/thread names)
// come first, then every slice in record order.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev TraceEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}

	// Deterministic metadata order: pids ascending, then tids.
	for _, pid := range sortedKeysInt(t.procNames) {
		if err := emit(TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": t.procNames[pid]},
		}); err != nil {
			return err
		}
	}
	for _, key := range sortedKeysInt64(t.threadNames) {
		if err := emit(TraceEvent{
			Name: "thread_name", Ph: "M",
			Pid:  int(key >> 32),
			Tid:  int(int32(key)),
			Args: map[string]any{"name": t.threadNames[key]},
		}); err != nil {
			return err
		}
	}
	for _, ev := range t.events {
		if err := emit(ev); err != nil {
			return err
		}
	}
	suffix := "\n]}"
	if t.dropped > 0 {
		suffix = fmt.Sprintf("\n],\"otherData\":{\"dropped\":%d}}", t.dropped)
	}
	_, err := io.WriteString(w, suffix)
	return err
}

func sortedKeysInt(m map[int]string) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

func sortedKeysInt64(m map[int64]string) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortInt64s(out)
	return out
}

// Tiny insertion sorts: key sets are a handful of cores × chains; avoids
// pulling sort.Slice's reflection into the package for them.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
