package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// decodeJSONL parses every line of a JSONL buffer.
func decodeJSONL(t *testing.T, s string) []map[string]any {
	t.Helper()
	var rows []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(s), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		rows = append(rows, m)
	}
	return rows
}

func TestSamplerIntervalAlignmentAndFlush(t *testing.T) {
	r := NewRegistry()
	var ctr uint64
	r.Root().Counter("ctr", &ctr)

	var out strings.Builder
	sp, err := NewSampler(r, SamplerConfig{Interval: 100, JSONL: &out})
	if err != nil {
		t.Fatal(err)
	}

	// Drive 250 accesses, one at a time, the counter advancing by 2 per
	// access. Samples must land exactly at 100 and 200; Flush emits the
	// partial [200, 250] interval.
	for n := uint64(1); n <= 250; n++ {
		ctr += 2
		sp.MaybeSample(n)
	}
	sp.Flush(250)
	if err := sp.Err(); err != nil {
		t.Fatal(err)
	}

	rows := decodeJSONL(t, out.String())
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (two full intervals + final partial)", len(rows))
	}
	wantAcc := []float64{100, 200, 250}
	wantDelta := []float64{100, 100, 50}
	wantCtr := []float64{200, 200, 100}
	for i, row := range rows {
		if row["interval"].(float64) != float64(i) {
			t.Errorf("row %d: interval = %v", i, row["interval"])
		}
		if row["accesses"].(float64) != wantAcc[i] {
			t.Errorf("row %d: accesses = %v, want %v", i, row["accesses"], wantAcc[i])
		}
		if row["delta"].(float64) != wantDelta[i] {
			t.Errorf("row %d: delta = %v, want %v", i, row["delta"], wantDelta[i])
		}
		if row["ctr"].(float64) != wantCtr[i] {
			t.Errorf("row %d: ctr delta = %v, want %v", i, row["ctr"], wantCtr[i])
		}
	}
}

func TestSamplerSkippedBoundariesRealign(t *testing.T) {
	r := NewRegistry()
	var ctr uint64
	r.Root().Counter("ctr", &ctr)
	var out strings.Builder
	sp, _ := NewSampler(r, SamplerConfig{Interval: 100, JSONL: &out})

	// A caller jumping straight to 450 gets one sample and the next
	// boundary realigns to 500, not 550.
	sp.MaybeSample(450)
	sp.MaybeSample(460) // below 500: no sample
	sp.MaybeSample(500)
	sp.Flush(500) // nothing since last sample: no extra row

	rows := decodeJSONL(t, out.String())
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0]["accesses"].(float64) != 450 || rows[1]["accesses"].(float64) != 500 {
		t.Errorf("sample points = %v, %v; want 450, 500", rows[0]["accesses"], rows[1]["accesses"])
	}
}

func TestSamplerFlushWithoutNewAccessesEmitsNothing(t *testing.T) {
	r := NewRegistry()
	var ctr uint64
	r.Root().Counter("ctr", &ctr)
	var out strings.Builder
	sp, _ := NewSampler(r, SamplerConfig{Interval: 10, JSONL: &out})
	sp.Flush(0)
	if out.Len() != 0 {
		t.Errorf("Flush(0) wrote %q, want nothing", out.String())
	}
}

func TestSamplerRatesAndGauges(t *testing.T) {
	r := NewRegistry()
	var miss, acc uint64
	g := 1.0
	root := r.Root()
	root.RateOf("miss_rate", &miss, &acc)
	root.Gauge("gauge", func() float64 { return g })

	var out strings.Builder
	sp, _ := NewSampler(r, SamplerConfig{Interval: 10, JSONL: &out})

	miss, acc, g = 5, 10, 2.5
	sp.MaybeSample(10)
	// Second interval: 1 more miss in 10 more accesses → interval rate 0.1,
	// not the cumulative 6/20.
	miss, acc, g = 6, 20, 7.5
	sp.MaybeSample(20)

	rows := decodeJSONL(t, out.String())
	if got := rows[0]["miss_rate"].(float64); got != 0.5 {
		t.Errorf("interval 0 miss_rate = %v, want 0.5", got)
	}
	if got := rows[1]["miss_rate"].(float64); got != 0.1 {
		t.Errorf("interval 1 miss_rate = %v, want 0.1 (per-interval, not cumulative)", got)
	}
	if got := rows[1]["gauge"].(float64); got != 7.5 {
		t.Errorf("gauge = %v, want 7.5 (instantaneous)", got)
	}
}

func TestSamplerRateZeroDenominator(t *testing.T) {
	r := NewRegistry()
	var num, den uint64
	r.Root().RateOf("rate", &num, &den)
	var out strings.Builder
	sp, _ := NewSampler(r, SamplerConfig{Interval: 10, JSONL: &out})
	sp.MaybeSample(10)
	if got := decodeJSONL(t, out.String())[0]["rate"].(float64); got != 0 {
		t.Errorf("rate with zero denominator = %v, want 0", got)
	}
}

func TestSamplerCounterResetTolerated(t *testing.T) {
	r := NewRegistry()
	var ctr uint64
	r.Root().Counter("ctr", &ctr)
	var out strings.Builder
	sp, _ := NewSampler(r, SamplerConfig{Interval: 10, JSONL: &out})

	ctr = 100
	sp.MaybeSample(10)
	ctr = 7 // stats reset mid-run (e.g. warmup boundary)
	sp.MaybeSample(20)

	rows := decodeJSONL(t, out.String())
	if got := rows[1]["ctr"].(float64); got != 7 {
		t.Errorf("post-reset delta = %v, want 7", got)
	}
}

func TestSamplerHistogramColumns(t *testing.T) {
	r := NewRegistry()
	h := r.Root().Histogram("lat")
	var out strings.Builder
	sp, _ := NewSampler(r, SamplerConfig{Interval: 10, JSONL: &out})

	h.Observe(100)
	h.Observe(300)
	sp.MaybeSample(10)
	h.Observe(50)
	sp.MaybeSample(20)

	rows := decodeJSONL(t, out.String())
	if got := rows[0]["lat.count"].(float64); got != 2 {
		t.Errorf("interval 0 lat.count = %v, want 2", got)
	}
	if got := rows[0]["lat.mean"].(float64); got != 200 {
		t.Errorf("interval 0 lat.mean = %v, want 200", got)
	}
	if got := rows[1]["lat.count"].(float64); got != 1 {
		t.Errorf("interval 1 lat.count = %v, want 1 (delta)", got)
	}
	if got := rows[1]["lat.mean"].(float64); got != 50 {
		t.Errorf("interval 1 lat.mean = %v, want 50 (interval mean)", got)
	}
	if _, ok := rows[0]["lat.buckets"]; !ok {
		t.Error("JSONL row missing lat.buckets array")
	}
}

func TestSamplerCSV(t *testing.T) {
	r := NewRegistry()
	var ctr uint64
	root := r.Root()
	root.Counter("a,weird \"name\"", &ctr) // must survive CSV quoting
	root.Gauge("g", func() float64 { return 0.25 })

	var out strings.Builder
	sp, err := NewSampler(r, SamplerConfig{Interval: 10, CSV: &out})
	if err != nil {
		t.Fatal(err)
	}
	ctr = 3
	sp.MaybeSample(10)
	sp.Flush(10)
	if err := sp.Err(); err != nil {
		t.Fatal(err)
	}

	recs, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not re-parse: %v\n%s", err, out.String())
	}
	if len(recs) != 2 {
		t.Fatalf("got %d CSV records, want header + 1 row", len(recs))
	}
	if recs[0][3] != `a,weird "name"` {
		t.Errorf("header cell = %q, want the raw metric name", recs[0][3])
	}
	if recs[1][3] != "3" || recs[1][4] != "0.25" {
		t.Errorf("row = %v, want counter 3 and gauge 0.25", recs[1])
	}
}

func TestSamplerConfigValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := NewSampler(r, SamplerConfig{Interval: 0, JSONL: &strings.Builder{}}); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewSampler(r, SamplerConfig{Interval: 10}); err == nil {
		t.Error("sink-less sampler accepted")
	}
}
