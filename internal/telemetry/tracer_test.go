package telemetry

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds the reference trace: two cores, the standard chain
// tracks, one off-chip access on each core plus an instant marker.
func goldenTrace() *Tracer {
	tr := NewTracer(0)
	for pid := 0; pid < 2; pid++ {
		tr.SetProcessName(pid, "core"+string(rune('0'+pid)))
		tr.SetThreadName(pid, 0, "fetch")
		tr.SetThreadName(pid, 1, "walk")
		tr.SetThreadName(pid, 2, "ctr")
		tr.SetThreadName(pid, 3, "data")
	}
	tr.Slice(0, 0, "fetch", "offchip", 100, 260)
	tr.Slice(0, 1, "l2+llc walk", "offchip", 100, 148)
	tr.Slice(0, 2, "ctr+otp", "offchip", 100, 110)
	tr.Slice(0, 3, "dram (speculative)", "offchip", 100, 102)
	tr.Slice(1, 0, "fetch", "offchip", 500, 300)
	tr.Slice(1, 3, "dram", "offchip", 648, 102)
	tr.Instant(1, 0, "wasted fetch", "offchip", 700)
	return tr
}

func TestTracerGoldenJSON(t *testing.T) {
	var out strings.Builder
	if err := goldenTrace().WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	path := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -run Golden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("trace JSON diverged from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTracerJSONShape(t *testing.T) {
	var out strings.Builder
	if err := goldenTrace().WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	// The file must be one JSON object with a traceEvents array — the
	// shape about://tracing and Perfetto ingest.
	var doc struct {
		DisplayTimeUnit string       `json:"displayTimeUnit"`
		TraceEvents     []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	// 2 process_name + 8 thread_name metadata + 7 recorded events.
	if len(doc.TraceEvents) != 17 {
		t.Fatalf("got %d events, want 17", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Name != "process_name" {
		t.Errorf("first event = %+v, want process_name metadata", doc.TraceEvents[0])
	}
	var slices, metas, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Dur == 0 {
				t.Errorf("slice %q has zero duration", ev.Name)
			}
		case "M":
			metas++
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if slices != 6 || metas != 10 || instants != 1 {
		t.Errorf("slices/metas/instants = %d/%d/%d, want 6/10/1", slices, metas, instants)
	}
}

func TestTracerCapDrops(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Slice(0, 0, "s", "c", uint64(i), 1)
	}
	if tr.Events() != 2 {
		t.Errorf("Events() = %d, want 2", tr.Events())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", tr.Dropped())
	}
	var out strings.Builder
	if err := tr.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("capped trace is not valid JSON: %v", err)
	}
	other, ok := doc["otherData"].(map[string]any)
	if !ok || other["dropped"].(float64) != 3 {
		t.Errorf("otherData.dropped missing or wrong: %v", doc["otherData"])
	}
}

func TestTracerEmpty(t *testing.T) {
	var out strings.Builder
	if err := NewTracer(0).WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, out.String())
	}
}
