package telemetry

import (
	"container/heap"
	"fmt"
	"sync"
)

// This file is the access-level span layer: a SpanRecorder that (a) feeds
// per-cause log2 histograms on every occurrence — full latency
// distributions, not means — and (b) builds a complete span tree for a
// deterministic 1-in-N subset of accesses, keeping the slowest K trees in a
// bounded reservoir. The simulator and the secure-memory engine annotate
// the recorder from their existing hot-path sites; a nil recorder costs one
// predictable branch per site, preserving the zero-alloc disabled contract.

// SpanCause classifies one node of an access span tree. The same enum
// indexes the recorder's per-cause histograms, so the tree labels and the
// tail percentiles cannot drift apart.
type SpanCause uint8

const (
	// CauseAccess is the root of every span tree: one sampled access,
	// Dur = its critical-path latency. Its histogram sees every access.
	CauseAccess SpanCause = iota
	// CauseLevelMiss is an on-chip lookup that missed (Label = the level
	// name); its duration is the level's lookup latency.
	CauseLevelMiss
	// CauseFetch is the whole off-chip fetch, from the L1-miss point to
	// data ready.
	CauseFetch
	// CauseWalk is the serial lower on-chip confirmation walk (L2+LLC).
	CauseWalk
	// CauseCtrHit / CauseCtrMiss is the counter pipeline: the histogram
	// value is the counter access latency, the tree node spans ctr+OTP.
	CauseCtrHit
	CauseCtrMiss
	// CauseMTWalk is one Merkle-path verification; Value (and the
	// histogram) is the number of tree nodes fetched from DRAM.
	CauseMTWalk
	// CauseMACFetch is a MAC-block DRAM fetch on a MAC-cache miss.
	CauseMACFetch
	// CauseFaultRetry is the re-fetch/re-verify latency a detected fault
	// charged; Value is the retry count.
	CauseFaultRetry
	// CauseReEnc is a re-encryption storm (counter overflow or poisoned
	// counter); Dur is the DRAM stall booked, Value the lines rewritten.
	CauseReEnc
	// CauseDataDRAM is the demand data read in DRAM.
	CauseDataDRAM

	numSpanCauses
)

var spanCauseNames = [numSpanCauses]string{
	"access", "level_miss", "fetch", "walk", "ctr_hit", "ctr_miss",
	"mt_walk", "mac_fetch", "fault_retry", "reenc_stall", "data_dram",
}

// String returns the cause's stable snake_case name (used in JSON, metric
// names and the stats table).
func (c SpanCause) String() string {
	if int(c) < len(spanCauseNames) {
		return spanCauseNames[c]
	}
	return "unknown"
}

// MarshalText makes causes render as names in JSON span trees.
func (c SpanCause) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a cause name back (round-tripping /spans documents).
func (c *SpanCause) UnmarshalText(text []byte) error {
	for i, name := range spanCauseNames {
		if name == string(text) {
			*c = SpanCause(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown span cause %q", text)
}

// Span is one node of an access span tree. Start is in cycles relative to
// the access's own t0 (the moment the core issued it); Dur is the node's
// extent, Value a cause-specific annotation (MT nodes fetched, retry count,
// re-encrypted lines).
type Span struct {
	Cause    SpanCause `json:"cause"`
	Label    string    `json:"label,omitempty"`
	Start    uint64    `json:"start"`
	Dur      uint64    `json:"dur"`
	Value    uint64    `json:"value,omitempty"`
	Children []Span    `json:"children,omitempty"`
}

// AccessSpan is one sampled access with its full span tree.
type AccessSpan struct {
	// Index is the access's position in the run's global access stream
	// (0-based) — the deterministic sampling key.
	Index uint64 `json:"access"`
	Core  int    `json:"core"`
	Line  uint64 `json:"line"`
	// Total is the access's critical-path latency in cycles.
	Total uint64 `json:"total"`
	Root  Span   `json:"root"`
}

// TailStat is one cause's distribution summary.
type TailStat struct {
	Cause string  `json:"cause"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// TailReport is the Results.Tail block: per-cause latency distributions
// condensed to percentiles. Units are cycles except mt_walk (nodes fetched)
// and the Value annotations.
type TailReport struct {
	// SampleEvery is the span-tree sampling stride (1 in N accesses);
	// the histograms behind the percentiles see every occurrence.
	SampleEvery uint64 `json:"sample_every"`
	// Sampled counts the span trees built.
	Sampled uint64     `json:"sampled"`
	Causes  []TailStat `json:"causes"`
}

// Stat returns the named cause's entry (nil when absent).
func (t *TailReport) Stat(cause string) *TailStat {
	if t == nil {
		return nil
	}
	for i := range t.Causes {
		if t.Causes[i].Cause == cause {
			return &t.Causes[i]
		}
	}
	return nil
}

// SpanRecorder samples access span trees and accumulates per-cause latency
// histograms. It is single-writer (the simulation goroutine); the top-K
// reservoir is mutex-guarded so the obs plane can snapshot exemplars from a
// live run, and the histograms follow the registry's torn-read scrape
// contract (fixed arrays of monotone uint64s, no pointers).
type SpanRecorder struct {
	every uint64
	topK  int

	hists   [numSpanCauses]Histogram
	sampled uint64

	// cur is the in-flight sampled access (nil between samples); pending
	// collects engine-side notes until NoteFetch assembles the fetch node.
	cur     *AccessSpan
	pending []Span

	mu  sync.Mutex
	top spanHeap // min-heap on Total: the slowest K sampled accesses
}

// NewSpanRecorder samples a full span tree for 1 in every `every` accesses
// (the first access of the run is always sampled) and keeps the slowest
// topK trees. every must be ≥ 1 and topK ≥ 1.
func NewSpanRecorder(every uint64, topK int) *SpanRecorder {
	if every == 0 {
		every = 1
	}
	if topK < 1 {
		topK = 1
	}
	return &SpanRecorder{every: every, topK: topK}
}

// SampleEvery returns the configured sampling stride.
func (r *SpanRecorder) SampleEvery() uint64 { return r.every }

// Sampled counts the span trees built so far.
func (r *SpanRecorder) Sampled() uint64 { return r.sampled }

// MaybeBegin opens a span tree when the access index lands on the sampling
// grid (index % every == 0). Index is the 0-based global access number, so
// sampling is a pure function of the access stream — reruns sample the
// same accesses.
func (r *SpanRecorder) MaybeBegin(index uint64, core int, line uint64) {
	if index%r.every != 0 {
		return
	}
	r.sampled++
	r.cur = &AccessSpan{Index: index, Core: core, Line: line}
	r.pending = r.pending[:0]
}

// LevelMiss records an on-chip lookup miss (sim side): the histogram is
// untouched — per-level miss latencies are config constants — but a sampled
// access gets a child span per missed level.
func (r *SpanRecorder) LevelMiss(name string, start, dur uint64) {
	if r.cur == nil {
		return
	}
	r.cur.Root.Children = append(r.cur.Root.Children,
		Span{Cause: CauseLevelMiss, Label: name, Start: start, Dur: dur})
}

// Note records one engine-side event: the cause's histogram always observes
// it (dur, except mt_walk which observes value), and when an access is
// being sampled the event is queued as a pending child for the next
// NoteFetch assembly. Counter hit/miss notes feed the histogram only — the
// tree's counter node is synthesised from the fetch-path geometry, which
// also carries the OTP cost.
func (r *SpanRecorder) Note(cause SpanCause, dur, value uint64) {
	obs := dur
	if cause == CauseMTWalk {
		obs = value
	}
	r.hists[cause].Observe(obs)
	if r.cur == nil || cause == CauseCtrHit || cause == CauseCtrMiss {
		return
	}
	r.pending = append(r.pending, Span{Cause: cause, Dur: dur, Value: value})
}

// NoteFetch records the resolved off-chip fetch: the walk/data/fetch
// histograms observe the chain lengths, and a sampled access gets its fetch
// node assembled — walk, counter and data children from the path geometry
// (starts relative to the access's t0; `start` is the L1 lookup cost) plus
// the pending engine notes. A leading run of fault-retry notes ending in an
// MT walk can only have come from the counter chain, so it nests under the
// counter node; everything else attaches to the fetch node in event order.
func (r *SpanRecorder) NoteFetch(start, walkLat, ctrStart, ctrLat, dataStart, dataLat, end uint64,
	secure, ctrHit, predictedOff bool) {
	r.hists[CauseWalk].Observe(walkLat)
	r.hists[CauseDataDRAM].Observe(dataLat)
	r.hists[CauseFetch].Observe(end)
	if r.cur == nil {
		return
	}
	fetch := Span{Cause: CauseFetch, Start: start, Dur: end}
	fetch.Children = append(fetch.Children,
		Span{Cause: CauseWalk, Label: "l2+llc walk", Start: start, Dur: walkLat})
	pending := r.pending
	if secure {
		cause := CauseCtrMiss
		if ctrHit {
			cause = CauseCtrHit
		}
		ctr := Span{Cause: cause, Label: "ctr+otp", Start: start + ctrStart, Dur: ctrLat}
		if !ctrHit {
			if n := ctrChainPrefix(pending); n > 0 {
				ctr.Children = append(ctr.Children, pending[:n]...)
				pending = pending[n:]
			}
		}
		fetch.Children = append(fetch.Children, ctr)
	}
	dataLabel := "dram"
	if predictedOff {
		dataLabel = "dram (speculative)"
	}
	fetch.Children = append(fetch.Children,
		Span{Cause: CauseDataDRAM, Label: dataLabel, Start: start + dataStart, Dur: dataLat})
	fetch.Children = append(fetch.Children, pending...)
	r.pending = r.pending[:0]
	r.cur.Root.Children = append(r.cur.Root.Children, fetch)
}

// ctrChainPrefix finds the counter chain's note prefix: fault retries
// followed by exactly one MT walk (the verification always concludes a
// counter miss, and no other chain emits an MT walk before it).
func ctrChainPrefix(pending []Span) int {
	for i, sp := range pending {
		switch sp.Cause {
		case CauseFaultRetry:
			continue
		case CauseMTWalk:
			return i + 1
		default:
			return 0
		}
	}
	return 0
}

// EndAccess closes the access: the access-latency histogram observes every
// access, and a sampled access's finished tree enters the top-K reservoir.
func (r *SpanRecorder) EndAccess(lat uint64) {
	r.hists[CauseAccess].Observe(lat)
	if r.cur == nil {
		return
	}
	a := r.cur
	r.cur = nil
	r.pending = r.pending[:0]
	a.Total = lat
	a.Root.Cause = CauseAccess
	a.Root.Dur = lat
	r.mu.Lock()
	if len(r.top) < r.topK {
		heap.Push(&r.top, a)
	} else if a.Total > r.top[0].Total {
		r.top[0] = a
		heap.Fix(&r.top, 0)
	}
	r.mu.Unlock()
}

// TopSpans returns the slowest sampled accesses, slowest first. Safe to
// call from another goroutine while the run executes.
func (r *SpanRecorder) TopSpans() []AccessSpan {
	r.mu.Lock()
	out := make([]AccessSpan, len(r.top))
	for i, a := range r.top {
		out[i] = *a
	}
	r.mu.Unlock()
	// Sort slowest-first, breaking latency ties by access index so the
	// exemplar order is deterministic.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j-1], out[j]); j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

func less(a, b AccessSpan) bool {
	if a.Total != b.Total {
		return a.Total < b.Total
	}
	return a.Index > b.Index
}

// Report condenses the per-cause histograms into the Results.Tail block.
// Causes nothing observed are omitted.
func (r *SpanRecorder) Report() *TailReport {
	rep := &TailReport{SampleEvery: r.every, Sampled: r.sampled}
	for c := SpanCause(0); c < numSpanCauses; c++ {
		h := &r.hists[c]
		if h.Count() == 0 {
			continue
		}
		rep.Causes = append(rep.Causes, TailStat{
			Cause: c.String(),
			Count: h.Count(),
			Mean:  h.Mean(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
			P999:  h.Quantile(0.999),
		})
	}
	return rep
}

// Hist exposes the cause's histogram (tests and metric registration).
func (r *SpanRecorder) Hist(c SpanCause) *Histogram { return &r.hists[c] }

// RegisterMetrics registers the recorder's per-cause histograms and the
// sampled-tree counter under the scope (conventionally "span"), so the
// distributions ride the interval sampler and /metrics like every other
// metric. Level-miss durations are config constants and are skipped.
func (r *SpanRecorder) RegisterMetrics(s *Scope) {
	s.Counter("sampled", &r.sampled)
	for c := SpanCause(0); c < numSpanCauses; c++ {
		if c == CauseLevelMiss {
			continue
		}
		s.HistogramVar(c.String(), &r.hists[c])
	}
}

// spanHeap is a min-heap of sampled accesses keyed on Total (ties broken
// toward evicting the later access), so the root is always the cheapest
// exemplar to displace.
type spanHeap []*AccessSpan

func (h spanHeap) Len() int { return len(h) }
func (h spanHeap) Less(i, j int) bool {
	if h[i].Total != h[j].Total {
		return h[i].Total < h[j].Total
	}
	return h[i].Index > h[j].Index
}
func (h spanHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *spanHeap) Push(x any)   { *h = append(*h, x.(*AccessSpan)) }
func (h *spanHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
