package telemetry

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// SamplerConfig configures an interval Sampler. Interval is in accesses
// (the simulator's logical clock); JSONL, CSV and Observer are optional
// sinks — at least one must be set.
type SamplerConfig struct {
	Interval uint64
	JSONL    io.Writer
	CSV      io.Writer
	// Observer, when non-nil, receives every emitted row in-process —
	// the hook the online watchdog consumes the time-series through
	// without a serialisation round-trip. It runs on the simulation
	// goroutine, synchronously, once per interval.
	Observer func(Row)
}

// Row is one interval sample delivered to an Observer: counters and
// histogram counts as per-interval deltas, rates and gauges as emitted,
// histogram means as the interval mean (name+".count", name+".mean") —
// exactly the values the JSONL sink writes.
type Row struct {
	Interval int
	Accesses uint64
	Delta    uint64
	Values   map[string]float64
}

// Sampler snapshots every metric of a Registry each Interval accesses and
// appends one row per interval to its sinks: a gem5-style stats time-series.
// Counters and histograms are emitted as per-interval deltas, rates as
// Δnum/Δden over the interval, gauges as instantaneous values.
//
// Drive it with MaybeSample(accesses) after each access (the call is a
// single comparison until an interval boundary is crossed) and Flush at the
// end of the run to emit the final partial interval.
type Sampler struct {
	reg      *Registry
	interval uint64

	jsonl    io.Writer
	csvw     *csv.Writer
	observer func(Row)

	nextAt      uint64
	lastSampled uint64
	rows        int

	// prev holds the previous cumulative values per metric: one slot for
	// counters, two (num, den) for rates, two (count, sum) for histograms.
	prev [][2]uint64

	wroteHeader bool
	csvRecord   []string
	err         error
}

// NewSampler builds a sampler over reg. The registry's metric set must be
// complete before the first sample; registering after that point panics at
// sample time via index mismatch, so register first, then sample.
func NewSampler(reg *Registry, cfg SamplerConfig) (*Sampler, error) {
	if cfg.Interval == 0 {
		return nil, fmt.Errorf("telemetry: sampler interval must be > 0")
	}
	if cfg.JSONL == nil && cfg.CSV == nil && cfg.Observer == nil {
		return nil, fmt.Errorf("telemetry: sampler needs at least one sink")
	}
	s := &Sampler{reg: reg, interval: cfg.Interval, jsonl: cfg.JSONL,
		observer: cfg.Observer, nextAt: cfg.Interval}
	if cfg.CSV != nil {
		s.csvw = csv.NewWriter(cfg.CSV)
	}
	return s, nil
}

// Interval returns the configured sampling interval in accesses.
func (s *Sampler) Interval() uint64 { return s.interval }

// Rows reports how many sample rows have been emitted.
func (s *Sampler) Rows() int { return s.rows }

// Err returns the first sink write error, if any.
func (s *Sampler) Err() error { return s.err }

// MaybeSample emits a sample if the access count has reached the next
// interval boundary. Boundaries are aligned to multiples of the interval:
// with Interval=N the rows land at accesses N, 2N, 3N, … regardless of call
// granularity.
func (s *Sampler) MaybeSample(accesses uint64) {
	if accesses < s.nextAt {
		return
	}
	s.sample(accesses)
	// Realign: skip boundaries the caller jumped over.
	s.nextAt = (accesses/s.interval + 1) * s.interval
}

// Flush emits the final partial interval (if any accesses happened since
// the last sample) and flushes the CSV sink. Call it once at the end of a
// run.
func (s *Sampler) Flush(accesses uint64) {
	if accesses > s.lastSampled {
		s.sample(accesses)
	}
	if s.csvw != nil {
		s.csvw.Flush()
		if err := s.csvw.Error(); err != nil && s.err == nil {
			s.err = err
		}
	}
}

// sample reads every metric, computes interval deltas, and writes one row
// to each sink.
func (s *Sampler) sample(accesses uint64) {
	if s.prev == nil {
		s.prev = make([][2]uint64, len(s.reg.metrics))
	}
	if len(s.prev) != len(s.reg.metrics) {
		panic("telemetry: metrics registered after sampling started")
	}
	delta := accesses - s.lastSampled

	var obj map[string]any
	if s.jsonl != nil {
		obj = make(map[string]any, len(s.reg.metrics)+3)
	}
	var vals map[string]float64
	if s.observer != nil {
		vals = make(map[string]float64, len(s.reg.metrics))
	}
	if s.csvw != nil && !s.wroteHeader {
		s.writeCSVHeader()
	}
	if s.csvw != nil {
		s.csvRecord = s.csvRecord[:0]
		s.csvRecord = append(s.csvRecord,
			strconv.Itoa(s.rows),
			strconv.FormatUint(accesses, 10),
			strconv.FormatUint(delta, 10))
	}

	emitU := func(name string, v uint64) {
		if obj != nil {
			obj[name] = v
		}
		if vals != nil {
			vals[name] = float64(v)
		}
		if s.csvw != nil {
			s.csvRecord = append(s.csvRecord, strconv.FormatUint(v, 10))
		}
	}
	emitF := func(name string, v float64) {
		if obj != nil {
			obj[name] = v
		}
		if vals != nil {
			vals[name] = v
		}
		if s.csvw != nil {
			s.csvRecord = append(s.csvRecord, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}

	for i, m := range s.reg.metrics {
		switch m.kind {
		case kindCounter:
			cur := m.count()
			emitU(m.name, counterDelta(cur, s.prev[i][0]))
			s.prev[i][0] = cur
		case kindGauge:
			emitF(m.name, m.gauge())
		case kindRate:
			cn, cd := m.num(), m.den()
			dn := counterDelta(cn, s.prev[i][0])
			dd := counterDelta(cd, s.prev[i][1])
			var v float64
			if dd > 0 {
				v = float64(dn) / float64(dd)
			}
			emitF(m.name, v)
			s.prev[i][0], s.prev[i][1] = cn, cd
		case kindHist:
			h := m.hist
			dc := counterDelta(h.count, s.prev[i][0])
			ds := counterDelta(h.sum, s.prev[i][1])
			emitU(m.name+".count", dc)
			var mean float64
			if dc > 0 {
				mean = float64(ds) / float64(dc)
			}
			emitF(m.name+".mean", mean)
			emitU(m.name+".max", h.max)
			if obj != nil {
				obj[m.name+".buckets"] = h.counts
			}
			s.prev[i][0], s.prev[i][1] = h.count, h.sum
		}
	}

	if s.jsonl != nil {
		obj["interval"] = s.rows
		obj["accesses"] = accesses
		obj["delta"] = delta
		b, err := json.Marshal(obj)
		if err == nil {
			b = append(b, '\n')
			_, err = s.jsonl.Write(b)
		}
		if err != nil && s.err == nil {
			s.err = err
		}
	}
	if s.csvw != nil {
		if err := s.csvw.Write(s.csvRecord); err != nil && s.err == nil {
			s.err = err
		}
	}
	if s.observer != nil {
		s.observer(Row{Interval: s.rows, Accesses: accesses, Delta: delta, Values: vals})
	}

	s.lastSampled = accesses
	s.rows++
}

func (s *Sampler) writeCSVHeader() {
	header := []string{"interval", "accesses", "delta"}
	for _, m := range s.reg.metrics {
		if m.kind == kindHist {
			header = append(header, m.name+".count", m.name+".mean", m.name+".max")
			continue
		}
		header = append(header, m.name)
	}
	if err := s.csvw.Write(header); err != nil && s.err == nil {
		s.err = err
	}
	s.wroteHeader = true
}

// counterDelta is reset-tolerant: if a counter went backwards (stats were
// reset mid-run, e.g. after a warmup), the new cumulative value is the
// delta.
func counterDelta(cur, prev uint64) uint64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}
