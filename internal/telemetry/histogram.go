package telemetry

import "math/bits"

// HistBuckets is the fixed bucket count of a Histogram. Bucket 0 holds the
// value 0 and bucket i (i ≥ 1) holds values in [2^(i-1), 2^i), so 63-bit
// latencies fit without saturation in 64 buckets; we keep 40, enough for
// ~5·10^11 cycles, and clamp anything above into the last bucket.
const HistBuckets = 40

// Histogram is a log2-bucketed distribution of uint64 samples (latencies in
// cycles). Observe is allocation-free and O(1): a fixed array increment, a
// sum and a max. It is not safe for concurrent use, matching the
// single-threaded simulator.
type Histogram struct {
	counts [HistBuckets]uint64
	count  uint64
	sum    uint64
	max    uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	b := bits.Len64(v) // 0→0, 1→1, 2..3→2, 4..7→3, ...
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.counts[b]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest sample observed (0 if none).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average sample (0 if none).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Buckets returns a copy of the per-bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 { return h.counts }

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) of the observed
// distribution: the cumulative bucket counts locate the target rank's
// bucket and the position inside it is linearly interpolated across the
// bucket's value range. The log2 buckets bound the relative error at 2x —
// good enough for tail reporting (p50/p95/p99/p999), deliberately not for
// exact arithmetic. Returns 0 when nothing was observed; the top estimate
// is clamped at Max so the widest bucket cannot overshoot the data.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum float64
	for i := 0; i < HistBuckets; i++ {
		c := float64(h.counts[i])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := BucketBounds(i)
			frac := (rank - cum) / c
			v := float64(lo) + frac*float64(hi-lo+1)
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
		cum += c
	}
	return float64(h.max)
}

// BucketBounds reports the inclusive value range [lo, hi] covered by bucket
// i. The last bucket additionally absorbs every larger value.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return 1 << uint(i-1), 1<<uint(i) - 1
}
