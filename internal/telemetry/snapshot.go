package telemetry

// The pull side of the registry: Snapshot reads every registered metric's
// cumulative value at a point in time. The interval Sampler consumes deltas
// between its own samples; exposition layers (the Prometheus bridge in
// internal/obs) consume Snapshot, which carries cumulative values — the
// shape scrape-based systems expect.

// Kind classifies one registered metric for consumers of Snapshot.
type Kind int

const (
	// KindCounter is a monotonic cumulative counter.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value.
	KindGauge
	// KindRate is a derived ratio over two cumulative counters.
	KindRate
	// KindHistogram is a log2-bucketed distribution.
	KindHistogram
)

// String names the kind ("counter", "gauge", "rate", "histogram").
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindRate:
		return "rate"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// HistSnapshot is the state of one Histogram at snapshot time.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [HistBuckets]uint64
}

// Sample is one metric's cumulative reading. Exactly the fields implied by
// Kind are meaningful: Counter for KindCounter, Gauge for KindGauge,
// Num/Den for KindRate, Hist for KindHistogram.
type Sample struct {
	Name string
	Kind Kind

	Counter  uint64
	Gauge    float64
	Num, Den uint64
	Hist     HistSnapshot
}

// Value folds the sample into one float64: the counter value, the gauge,
// the cumulative ratio Num/Den (0 when Den is 0), or the histogram mean.
func (s Sample) Value() float64 {
	switch s.Kind {
	case KindCounter:
		return float64(s.Counter)
	case KindGauge:
		return s.Gauge
	case KindRate:
		if s.Den == 0 {
			return 0
		}
		return float64(s.Num) / float64(s.Den)
	case KindHistogram:
		if s.Hist.Count == 0 {
			return 0
		}
		return float64(s.Hist.Sum) / float64(s.Hist.Count)
	}
	return 0
}

// Kind reports the named metric's kind; ok is false when no metric with
// that name is registered. Consumers that post-process sampler rows (the
// watchdog normalising counter deltas by interval length) use it to decide
// per-signal treatment without re-deriving the registry's layout.
func (r *Registry) Kind(name string) (Kind, bool) {
	i, ok := r.index[name]
	if !ok {
		return 0, false
	}
	switch r.metrics[i].kind {
	case kindCounter:
		return KindCounter, true
	case kindGauge:
		return KindGauge, true
	case kindRate:
		return KindRate, true
	default:
		return KindHistogram, true
	}
}

// Snapshot reads every registered metric once, in registration order.
// Registration must be complete before the first call (the same contract as
// the Sampler); the read itself takes whatever locks the registered closures
// take, so a registry whose sources are mutex- or atomically-guarded is safe
// to snapshot concurrently with the system that updates it.
func (r *Registry) Snapshot() []Sample {
	out := make([]Sample, len(r.metrics))
	for i, m := range r.metrics {
		s := Sample{Name: m.name}
		switch m.kind {
		case kindCounter:
			s.Kind = KindCounter
			s.Counter = m.count()
		case kindGauge:
			s.Kind = KindGauge
			s.Gauge = m.gauge()
		case kindRate:
			s.Kind = KindRate
			s.Num, s.Den = m.num(), m.den()
		case kindHist:
			s.Kind = KindHistogram
			s.Hist = HistSnapshot{
				Count:   m.hist.count,
				Sum:     m.hist.sum,
				Max:     m.hist.max,
				Buckets: m.hist.counts,
			}
		}
		out[i] = s
	}
	return out
}
