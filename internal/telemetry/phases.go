package telemetry

import (
	"sync/atomic"
	"time"
)

// PhaseID enumerates the wall-time phases a simulation run decomposes into.
// The attribution question they answer is "where did the real time of this
// run (or campaign) go": decoding the access stream, stepping the simulator,
// result-store I/O, or assembling the report.
type PhaseID int

const (
	// PhaseDecode: producing the access stream (workload generators, trace
	// file decode).
	PhaseDecode PhaseID = iota
	// PhaseStep: the simulator step loop itself.
	PhaseStep
	// PhaseStore: persistent result-store reads and writes.
	PhaseStore
	// PhaseReport: sampler flush, Results assembly and encoding.
	PhaseReport
	// NumPhases is the number of phases (array sizing).
	NumPhases
)

func (p PhaseID) String() string {
	switch p {
	case PhaseDecode:
		return "decode"
	case PhaseStep:
		return "step"
	case PhaseStore:
		return "store"
	case PhaseReport:
		return "report"
	}
	return "unknown"
}

// Phases accumulates per-phase wall time and a simulated-access count for
// one run or one whole campaign. All methods are safe for concurrent use
// (atomic adds), so one campaign-level instance can be fed by every worker
// of a parallel sweep. The live accesses/sec rate is measured against wall
// time since construction.
type Phases struct {
	start    time.Time
	ns       [NumPhases]atomic.Int64
	accesses atomic.Uint64
}

// NewPhases creates a phase accumulator; its rate clock starts now.
func NewPhases() *Phases {
	return &Phases{start: time.Now()}
}

// Add books wall time against one phase.
func (p *Phases) Add(id PhaseID, d time.Duration) {
	if d > 0 {
		p.ns[id].Add(int64(d))
	}
}

// AddAccesses books n simulated accesses.
func (p *Phases) AddAccesses(n uint64) { p.accesses.Add(n) }

// Merge folds a child accumulator (one run) into this one (the campaign).
func (p *Phases) Merge(child *Phases) {
	for i := PhaseID(0); i < NumPhases; i++ {
		p.ns[i].Add(child.ns[i].Load())
	}
	p.accesses.Add(child.accesses.Load())
}

// Seconds returns the wall time booked against one phase.
func (p *Phases) Seconds(id PhaseID) float64 {
	return time.Duration(p.ns[id].Load()).Seconds()
}

// Accesses returns the simulated accesses booked so far.
func (p *Phases) Accesses() uint64 { return p.accesses.Load() }

// Wall returns the wall time since construction.
func (p *Phases) Wall() time.Duration { return time.Since(p.start) }

// Rate returns the live simulated-accesses/sec rate: accesses booked so far
// over wall time since construction. Zero until the first access.
func (p *Phases) Rate() float64 {
	w := p.Wall().Seconds()
	if w <= 0 {
		return 0
	}
	return float64(p.accesses.Load()) / w
}

// PhaseBreakdown is the JSON snapshot of a Phases accumulator, embedded in
// /runs cells, run transitions and CLI -json summaries.
type PhaseBreakdown struct {
	DecodeMS       float64 `json:"decode_ms"`
	StepMS         float64 `json:"step_ms"`
	StoreMS        float64 `json:"store_ms"`
	ReportMS       float64 `json:"report_ms"`
	Accesses       uint64  `json:"simulated_accesses"`
	WallMS         float64 `json:"wall_ms"`
	AccessesPerSec float64 `json:"accesses_per_sec"`
}

// Breakdown snapshots the accumulator.
func (p *Phases) Breakdown() PhaseBreakdown {
	ms := func(id PhaseID) float64 {
		return float64(p.ns[id].Load()) / float64(time.Millisecond)
	}
	return PhaseBreakdown{
		DecodeMS:       ms(PhaseDecode),
		StepMS:         ms(PhaseStep),
		StoreMS:        ms(PhaseStore),
		ReportMS:       ms(PhaseReport),
		Accesses:       p.accesses.Load(),
		WallMS:         float64(p.Wall()) / float64(time.Millisecond),
		AccessesPerSec: p.Rate(),
	}
}

// RegisterMetrics exposes the accumulator under scope (conventionally
// root.Scope("perf"), so the Prometheus bridge emits cosmos_perf_* families):
// per-phase seconds gauges, the simulated-access counter and the live
// accesses/sec rate.
func (p *Phases) RegisterMetrics(s *Scope) {
	for i := PhaseID(0); i < NumPhases; i++ {
		i := i
		s.Gauge(i.String()+"_seconds", func() float64 { return p.Seconds(i) })
	}
	s.CounterFunc("simulated_accesses", p.Accesses)
	s.Gauge("accesses_per_sec", p.Rate)
}
