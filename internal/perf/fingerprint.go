// Package perf is the performance-observability harness: a repeatable
// benchmark suite over the simulator's hot paths (per-design Step ns/op and
// allocs/op, trace-file decode throughput, end-to-end campaign simulated
// accesses/sec), a versioned machine-readable report format (BENCH_<n>.json)
// stamped with an environment fingerprint, and a statistical comparator
// (median + IQR per metric, Mann–Whitney U significance, configurable noise
// threshold) that turns two reports into per-metric verdicts — improved,
// regressed or indistinguishable — so every speed claim in this repo is
// machine-checked instead of asserted. cmd/cosmos-perf is the CLI; the CI
// ratchet compares each build against the committed baseline.
package perf

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"strings"
)

// Fingerprint records the environment a report was measured on. Comparing
// reports from different fingerprints is allowed but flagged: wall-clock
// metrics only transfer between identical machines, so the ratchet policy
// (DESIGN.md §10) uses a loose threshold across machines and a tight one on
// the same machine.
type Fingerprint struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUModel is the "model name" line of /proc/cpuinfo ("" when
	// unreadable, e.g. non-Linux).
	CPUModel string `json:"cpu_model,omitempty"`
	// Governor is the cpufreq scaling governor of cpu0 ("" when
	// unreadable). "performance" means stable clocks; "powersave" and
	// friends warn that samples may be noisy.
	Governor string `json:"governor,omitempty"`
}

// CollectFingerprint reads the current environment. Unreadable fields stay
// empty rather than failing: the fingerprint is descriptive, not load-
// bearing.
func CollectFingerprint() Fingerprint {
	return Fingerprint{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
		Governor:   readTrimmed("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor"),
	}
}

// ID is a short stable hash of the fingerprint, used by the history
// trajectory to mark machine changes without repeating every field.
func (f Fingerprint) ID() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%d|%d|%s|%s",
		f.GoVersion, f.GOOS, f.GOARCH, f.NumCPU, f.GOMAXPROCS, f.CPUModel, f.Governor)))
	return hex.EncodeToString(h[:6])
}

// Diff lists the fields where two fingerprints disagree (empty = same
// environment).
func (f Fingerprint) Diff(other Fingerprint) []string {
	var out []string
	add := func(field, a, b string) {
		if a != b {
			out = append(out, fmt.Sprintf("%s: %q vs %q", field, a, b))
		}
	}
	add("go_version", f.GoVersion, other.GoVersion)
	add("goos", f.GOOS, other.GOOS)
	add("goarch", f.GOARCH, other.GOARCH)
	add("num_cpu", fmt.Sprint(f.NumCPU), fmt.Sprint(other.NumCPU))
	add("gomaxprocs", fmt.Sprint(f.GOMAXPROCS), fmt.Sprint(other.GOMAXPROCS))
	add("cpu_model", f.CPUModel, other.CPUModel)
	add("governor", f.Governor, other.Governor)
	return out
}

func (f Fingerprint) String() string {
	cpu := f.CPUModel
	if cpu == "" {
		cpu = "unknown cpu"
	}
	s := fmt.Sprintf("%s %s/%s, %s, %d cpus (gomaxprocs %d)",
		f.GoVersion, f.GOOS, f.GOARCH, cpu, f.NumCPU, f.GOMAXPROCS)
	if f.Governor != "" {
		s += ", governor " + f.Governor
	}
	return s
}

// cpuModel extracts the first "model name" value from /proc/cpuinfo.
func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if k, v, ok := strings.Cut(line, ":"); ok {
			if strings.TrimSpace(k) == "model name" {
				return strings.TrimSpace(v)
			}
		}
	}
	return ""
}

func readTrimmed(path string) string {
	b, err := os.ReadFile(path)
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(b))
}
