package perf

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cosmos/internal/experiments"
	"cosmos/internal/memsys"
	"cosmos/internal/rl"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
)

// SuiteConfig sizes the benchmark suite. The suite takes Samples repeated
// measurements of every metric in interleaved rounds (round-robin across
// benchmarks, not back-to-back per benchmark), so slow environmental drift
// — thermal throttling, a background process — spreads across all metrics
// instead of biasing whichever benchmark ran last.
type SuiteConfig struct {
	// Samples per metric. Statistical floor: the Mann–Whitney test cannot
	// reach significance at alpha 0.05 with fewer than 4 samples per side.
	Samples int
	// StepOps is the number of timed Step calls per sample; WarmSteps
	// drives each system to a steady state first (counter blocks and DRAM
	// rows materialised, caches warm).
	StepOps   int
	WarmSteps int
	// DecodeOps is the length (records) of the trace file the decode
	// benchmark reads back per sample.
	DecodeOps int
	// E2E enables the end-to-end campaign benchmark: one full experiment
	// per sample on a fresh Lab (no memoisation across samples), measuring
	// simulated accesses per wall-clock second.
	E2E           bool
	E2EExperiment string  // default "fig10"
	E2EScale      float64 // experiments.Scaled factor (0 = SmallScale)
	Workers       int     // campaign worker pool (default GOMAXPROCS)
	// ParallelCores is the worker budget of the parallel-engine benchmark
	// (engine.parallel.accesses_per_sec) — the epoch-barrier engine runs
	// the same workload as the serial engine with up to this many
	// goroutines. Default: the machine's core count, capped at the
	// simulated core count (4).
	ParallelCores int
	// Handicap artificially inflates every measured time (and deflates
	// every throughput) by this factor. It exists to prove the ratchet
	// trips: `cosmos-perf -handicap 2` must fail against a clean baseline.
	// 0 or 1 = off; the value is recorded in the report.
	Handicap float64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// QuickConfig is the CI regime: the fewest samples that still give the
// significance test teeth, and small per-sample op counts.
func QuickConfig() SuiteConfig {
	return SuiteConfig{
		Samples:   5,
		StepOps:   100_000,
		WarmSteps: 400_000,
		DecodeOps: 300_000,
		E2E:       true,
	}
}

// DefaultConfig is the local-baseline regime.
func DefaultConfig() SuiteConfig {
	return SuiteConfig{
		Samples:   10,
		StepOps:   300_000,
		WarmSteps: 400_000,
		DecodeOps: 1_000_000,
		E2E:       true,
	}
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	d := QuickConfig()
	if c.Samples <= 0 {
		c.Samples = d.Samples
	}
	if c.StepOps <= 0 {
		c.StepOps = d.StepOps
	}
	if c.WarmSteps < 0 {
		c.WarmSteps = 0
	}
	if c.DecodeOps <= 0 {
		c.DecodeOps = d.DecodeOps
	}
	if c.E2EExperiment == "" {
		c.E2EExperiment = "fig10"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ParallelCores <= 0 {
		c.ParallelCores = runtime.GOMAXPROCS(0)
		if c.ParallelCores > 4 {
			c.ParallelCores = 4
		}
		if c.ParallelCores < 2 {
			c.ParallelCores = 2
		}
	}
	if c.Handicap <= 0 {
		c.Handicap = 1
	}
	return c
}

func (c SuiteConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// stepDesigns are the representative design points the Step benchmark
// covers: the unprotected baseline, the serialised secure path, and COSMOS.
func stepDesigns() []secmem.Design {
	return []secmem.Design{secmem.DesignNP(), secmem.DesignMorph(), secmem.DesignCosmos()}
}

// benchmark is one suite member: run() takes a single sample of each of its
// metrics (parallel slices with names/units/better).
type benchmark struct {
	label   string
	names   []string
	units   []string
	betters []string
	run     func(ctx context.Context) ([]float64, error)
}

// RunSuite measures the full suite and assembles the report (Seq left to
// the caller). Cancellation via ctx aborts between samples.
func RunSuite(ctx context.Context, cfg SuiteConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	var benches []benchmark

	// Per-design Step latency and allocation rate over a steady-state
	// system — the same code path BenchmarkStep pins in CI.
	for _, d := range stepDesigns() {
		d := d
		cfg.logf("warming %s (%d steps)", d.Name, cfg.WarmSteps)
		s, gen := warmedSystem(d, cfg.WarmSteps)
		benches = append(benches, benchmark{
			label:   "step." + d.Name,
			names:   []string{"step." + d.Name + ".ns_per_op", "step." + d.Name + ".allocs_per_op"},
			units:   []string{"ns/op", "allocs/op"},
			betters: []string{BetterLower, BetterLower},
			run: func(context.Context) ([]float64, error) {
				ns, allocs := measureSteps(s, gen, cfg.StepOps)
				return []float64{ns, allocs}, nil
			},
		})
	}

	// Step latency under the non-default policy kinds, COSMOS only (the
	// only design running both predictors): tabular is the step.COSMOS
	// figure above, so these isolate what swapping the decision engine
	// costs on the hot path.
	for _, kind := range []string{rl.KindPerceptron, rl.KindMLP} {
		kind := kind
		label := "step.COSMOS.policy=" + kind
		cfg.logf("warming %s (%d steps)", label, cfg.WarmSteps)
		s, gen := warmedPolicySystem(kind, cfg.WarmSteps)
		benches = append(benches, benchmark{
			label:   label,
			names:   []string{label + ".ns_per_op", label + ".allocs_per_op"},
			units:   []string{"ns/op", "allocs/op"},
			betters: []string{BetterLower, BetterLower},
			run: func(context.Context) ([]float64, error) {
				ns, allocs := measureSteps(s, gen, cfg.StepOps)
				return []float64{ns, allocs}, nil
			},
		})
	}

	// Trace-file decode throughput: a frozen access stream read back
	// through the CTRC parser, the ingest path of replayed captures.
	tmp, err := os.MkdirTemp("", "cosmos-perf-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	tracePath := filepath.Join(tmp, "decode.ctrc")
	gen := trace.NewUniform(memsys.Region{Base: 1 << 28, Size: 256 << 20, Elem: 1}, 20, 7, 1)
	if _, err := trace.WriteFile(tracePath, gen, uint64(cfg.DecodeOps)); err != nil {
		return nil, fmt.Errorf("perf: write decode trace: %w", err)
	}
	benches = append(benches, benchmark{
		label:   "decode",
		names:   []string{"decode.tracefile.accesses_per_sec"},
		units:   []string{"accesses/sec"},
		betters: []string{BetterHigher},
		run: func(context.Context) ([]float64, error) {
			rate, err := measureDecode(tracePath, cfg.DecodeOps)
			if err != nil {
				return nil, err
			}
			return []float64{rate}, nil
		},
	})

	// Batched step engine: the same interleaved multi-core workload driven
	// through RunContext serially and through the epoch-barrier parallel
	// engine. Both figures use a fresh system per sample; the pair shows
	// what the parallel mode buys on this machine (identical on a 1-CPU
	// host, by design — the engines are bit-identical).
	benches = append(benches, benchmark{
		label:   "engine",
		names:   []string{"engine.serial.accesses_per_sec", "engine.parallel.accesses_per_sec"},
		units:   []string{"accesses/sec", "accesses/sec"},
		betters: []string{BetterHigher, BetterHigher},
		run: func(ctx context.Context) ([]float64, error) {
			serial, err := measureEngine(ctx, cfg, 1)
			if err != nil {
				return nil, err
			}
			par, err := measureEngine(ctx, cfg, cfg.ParallelCores)
			if err != nil {
				return nil, err
			}
			return []float64{serial, par}, nil
		},
	})

	// End-to-end campaign throughput: a fresh Lab per sample (nothing
	// memoised between samples) running one whole experiment, measured in
	// simulated accesses per wall-clock second — the number every
	// batching/parallelism PR claims to move.
	if cfg.E2E {
		if _, err := experiments.ByID(cfg.E2EExperiment); err != nil {
			return nil, err
		}
		benches = append(benches, benchmark{
			label:   "e2e." + cfg.E2EExperiment,
			names:   []string{"e2e." + cfg.E2EExperiment + ".accesses_per_sec"},
			units:   []string{"accesses/sec"},
			betters: []string{BetterHigher},
			run: func(ctx context.Context) ([]float64, error) {
				rate, err := measureCampaign(ctx, cfg)
				if err != nil {
					return nil, err
				}
				return []float64{rate}, nil
			},
		})
	}

	report := &Report{
		Schema:      SchemaVersion,
		CreatedUnix: time.Now().Unix(),
		Fingerprint: CollectFingerprint(),
		Suite: SuiteInfo{
			Samples:       cfg.Samples,
			StepOps:       cfg.StepOps,
			WarmSteps:     cfg.WarmSteps,
			DecodeOps:     cfg.DecodeOps,
			E2EScale:      cfg.E2EScale,
			ParallelCores: cfg.ParallelCores,
		},
	}
	if cfg.Handicap != 1 {
		report.Suite.Handicap = cfg.Handicap
	}
	// Indices, not pointers: appending to report.Metrics reallocates.
	metricIdx := map[string]int{}
	for _, b := range benches {
		for i := range b.names {
			metricIdx[b.names[i]] = len(report.Metrics)
			report.Metrics = append(report.Metrics, Metric{
				Name: b.names[i], Unit: b.units[i], Better: b.betters[i],
			})
		}
	}

	for round := 0; round < cfg.Samples; round++ {
		for _, b := range benches {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			vals, err := b.run(ctx)
			if err != nil {
				return nil, fmt.Errorf("perf: %s sample %d: %w", b.label, round+1, err)
			}
			for i, v := range vals {
				m := &report.Metrics[metricIdx[b.names[i]]]
				m.Samples = append(m.Samples, applyHandicap(v, m.Unit, cfg.Handicap))
			}
		}
		cfg.logf("sample round %d/%d done", round+1, cfg.Samples)
	}
	report.finalize()
	return report, nil
}

// applyHandicap inflates times / deflates throughputs by the self-test
// factor; counts (allocs) are left alone.
func applyHandicap(v float64, unit string, h float64) float64 {
	if h == 1 {
		return v
	}
	switch unit {
	case "ns/op":
		return v * h
	case "accesses/sec":
		return v / h
	}
	return v
}

// warmedSystem builds one system for the step benchmark and drives it to a
// steady state: the zero-alloc guard's regime (default machine, 32MB uniform
// footprint), where warm steps materialise the lazily-allocated structures so
// timed steps measure pure steady-state work.
func warmedSystem(d secmem.Design, warmSteps int) (*sim.System, trace.Generator) {
	s := sim.New(sim.DefaultConfig(), d)
	gen := trace.NewUniform(memsys.Region{Base: 0, Size: 32 << 20, Elem: 1}, 20, 3, 1)
	for i := 0; i < warmSteps; i++ {
		a, _ := gen.Next()
		s.Step(a)
	}
	return s, gen
}

// warmedPolicySystem is warmedSystem with both predictor roles running the
// given online policy kind on the COSMOS design.
func warmedPolicySystem(kind string, warmSteps int) (*sim.System, trace.Generator) {
	cfg := sim.DefaultConfig()
	spec := &rl.PolicySpec{Kind: kind}
	cfg.MC.Params.DataPolicy = spec
	cfg.MC.Params.CtrPolicy = spec
	s := sim.New(cfg, secmem.DesignCosmos())
	gen := trace.NewUniform(memsys.Region{Base: 0, Size: 32 << 20, Elem: 1}, 20, 3, 1)
	for i := 0; i < warmSteps; i++ {
		a, _ := gen.Next()
		s.Step(a)
	}
	return s, gen
}

// measureSteps times ops Step calls and counts heap allocations across
// them. Allocations are rounded to 1/1000th per op: the guard is "Step does
// not allocate", and a stray runtime allocation across hundreds of
// thousands of ops must not read as a regression against a 0 baseline.
func measureSteps(s *sim.System, gen trace.Generator, ops int) (nsPerOp, allocsPerOp float64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < ops; i++ {
		a, _ := gen.Next()
		s.Step(a)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(ops)
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	allocsPerOp = math.Round(allocsPerOp*1000) / 1000
	return nsPerOp, allocsPerOp
}

// measureDecode reads the whole trace file back and returns records/sec.
func measureDecode(path string, want int) (float64, error) {
	fg, err := trace.OpenFile(path)
	if err != nil {
		return 0, err
	}
	defer fg.Close()
	start := time.Now()
	n := 0
	for {
		if _, ok := fg.Next(); !ok {
			break
		}
		n++
	}
	elapsed := time.Since(start)
	if n != want {
		return 0, fmt.Errorf("decoded %d records, want %d", n, want)
	}
	if elapsed <= 0 {
		return 0, fmt.Errorf("decode finished in non-positive time %v", elapsed)
	}
	return float64(n) / elapsed.Seconds(), nil
}

// engineWorkload is the engine benchmark's access stream: four threads of
// uniform traffic over a shared region, interleaved in small chunks so the
// parallel engine's per-core lanes all stay busy within every epoch.
func engineWorkload() trace.Generator {
	region := memsys.Region{Base: 1 << 28, Size: 64 << 20, Elem: 1}
	return trace.NewInterleave("engine-mix", []trace.Generator{
		trace.NewUniform(region, 20, 3, 1),
		trace.NewUniform(region, 20, 5, 1),
		trace.NewUniform(region, 20, 7, 1),
		trace.NewUniform(region, 20, 9, 1),
	}, 8)
}

// measureEngine runs StepOps accesses of the engine workload through a fresh
// COSMOS system with the given parallel-core budget (1 = serial engine) and
// returns simulated accesses per wall second.
func measureEngine(ctx context.Context, cfg SuiteConfig, parallelCores int) (float64, error) {
	s := sim.New(sim.DefaultConfig(), secmem.DesignCosmos())
	s.SetParallelCores(parallelCores)
	ops := uint64(cfg.StepOps)
	start := time.Now()
	if _, err := s.RunContext(ctx, trace.Limit(engineWorkload(), ops), ops); err != nil {
		return 0, err
	}
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		return 0, fmt.Errorf("engine run finished in non-positive time")
	}
	return float64(ops) / wall, nil
}

// measureCampaign runs one whole experiment on a fresh Lab and returns
// simulated accesses per wall second, counted by the campaign-level phase
// accumulator (so the figure matches what cosmos-bench reports live).
func measureCampaign(ctx context.Context, cfg SuiteConfig) (float64, error) {
	lab := experiments.NewLab(experiments.Scaled(cfg.E2EScale),
		experiments.WithContext(ctx),
		experiments.WithWorkers(cfg.Workers))
	ph := telemetry.NewPhases()
	lab.Orchestrator().Phases = ph
	e, err := experiments.ByID(cfg.E2EExperiment)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := e.Run(lab); err != nil {
		return 0, err
	}
	wall := time.Since(start).Seconds()
	if wall <= 0 {
		return 0, fmt.Errorf("campaign finished in non-positive time")
	}
	acc := ph.Accesses()
	if acc == 0 {
		return 0, fmt.Errorf("campaign simulated zero accesses")
	}
	return float64(acc) / wall, nil
}
