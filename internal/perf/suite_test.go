package perf

import (
	"context"
	"testing"
)

// TestRunSuiteSmoke runs a miniature suite (E2E off — the campaign benchmark
// is exercised by cmd/cosmos-perf and CI) and checks the report shape: every
// expected metric present, correct sample counts, sane values.
func TestRunSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("suite smoke is slow")
	}
	// WarmSteps matches the zero-alloc guard's regime: a cold system still
	// materialises counter blocks for a while, and an under-warmed suite
	// would report phantom allocations.
	cfg := SuiteConfig{
		Samples:   3,
		StepOps:   5_000,
		WarmSteps: 400_000,
		DecodeOps: 5_000,
		E2E:       false,
	}
	r, err := RunSuite(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != SchemaVersion {
		t.Fatalf("schema = %q", r.Schema)
	}
	want := []string{
		"step.NP.ns_per_op", "step.NP.allocs_per_op",
		"step.MorphCtr.ns_per_op", "step.MorphCtr.allocs_per_op",
		"step.COSMOS.ns_per_op", "step.COSMOS.allocs_per_op",
		"step.COSMOS.policy=perceptron.ns_per_op", "step.COSMOS.policy=perceptron.allocs_per_op",
		"step.COSMOS.policy=mlp.ns_per_op", "step.COSMOS.policy=mlp.allocs_per_op",
		"decode.tracefile.accesses_per_sec",
		"engine.serial.accesses_per_sec",
		"engine.parallel.accesses_per_sec",
	}
	if len(r.Metrics) != len(want) {
		t.Fatalf("got %d metrics, want %d: %+v", len(r.Metrics), len(want), MetricNames(r))
	}
	for _, name := range want {
		m := r.Metric(name)
		if m == nil {
			t.Fatalf("metric %s missing", name)
		}
		if len(m.Samples) != cfg.Samples {
			t.Fatalf("%s has %d samples, want %d", name, len(m.Samples), cfg.Samples)
		}
		for _, v := range m.Samples {
			if v < 0 {
				t.Fatalf("%s has negative sample %v", name, v)
			}
		}
	}
	// Steady-state Step must not allocate; the suite must agree with the
	// zero-alloc guard tests.
	for _, d := range []string{"NP", "MorphCtr", "COSMOS", "COSMOS.policy=perceptron", "COSMOS.policy=mlp"} {
		m := r.Metric("step." + d + ".allocs_per_op")
		if med := Median(m.Samples); med != 0 {
			t.Fatalf("step.%s allocates: %v allocs/op", d, med)
		}
	}
	if m := r.Metric("decode.tracefile.accesses_per_sec"); Median(m.Samples) <= 0 {
		t.Fatalf("decode throughput not positive: %v", m.Samples)
	}
}

// TestRunSuiteHandicap checks the self-test knob scales timings and rates
// the way the ratchet self-test relies on.
func TestRunSuiteHandicap(t *testing.T) {
	if got := applyHandicap(100, "ns/op", 2); got != 200 {
		t.Fatalf("ns handicap = %v, want 200", got)
	}
	if got := applyHandicap(100, "accesses/sec", 2); got != 50 {
		t.Fatalf("rate handicap = %v, want 50", got)
	}
	if got := applyHandicap(3, "allocs/op", 2); got != 3 {
		t.Fatalf("alloc handicap = %v, want unchanged 3", got)
	}
}

func TestRunSuiteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunSuite(ctx, SuiteConfig{Samples: 2, StepOps: 10, WarmSteps: 0, DecodeOps: 10, E2E: false})
	if err == nil {
		t.Fatal("cancelled suite returned nil error")
	}
}
