package perf

import (
	"fmt"
	"math"

	"cosmos/internal/stats"
)

// Verdict is the typed outcome of comparing one metric across two reports.
type Verdict int

const (
	// Indistinguishable: the difference is within noise or below the
	// threshold — the default, and the required answer for identical
	// machines doing identical work.
	Indistinguishable Verdict = iota
	// Improved: statistically significant change in the metric's better
	// direction, beyond the noise threshold.
	Improved
	// Regressed: statistically significant change in the worse direction,
	// beyond the noise threshold. Any regressed metric fails the ratchet.
	Regressed
)

func (v Verdict) String() string {
	switch v {
	case Improved:
		return "improved"
	case Regressed:
		return "regressed"
	}
	return "indistinguishable"
}

// CompareOpts tunes the comparison.
type CompareOpts struct {
	// Alpha is the significance level of the Mann–Whitney test (default
	// 0.05): differences with p ≥ Alpha are noise regardless of size.
	Alpha float64
	// Threshold is the minimum relative median delta (default 0.05 = 5%)
	// for a significant difference to count: a statistically real but tiny
	// shift stays indistinguishable. The CI ratchet uses a loose threshold
	// because baseline and build run on different machines; local ratchets
	// use a tight one.
	Threshold float64
}

func (o CompareOpts) withDefaults() CompareOpts {
	if o.Alpha <= 0 {
		o.Alpha = 0.05
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.05
	}
	return o
}

// MetricDelta is the per-metric comparison outcome.
type MetricDelta struct {
	Name       string  `json:"name"`
	Unit       string  `json:"unit"`
	Better     string  `json:"better"`
	BaseMedian float64 `json:"base_median"`
	CurMedian  float64 `json:"cur_median"`
	// RelDelta is (cur−base)/|base|; ±Inf when base is 0 and cur is not.
	RelDelta float64 `json:"rel_delta"`
	// P is the two-sided Mann–Whitney p-value of the sample sets.
	P       float64 `json:"p"`
	Verdict Verdict `json:"-"`
	// VerdictName mirrors Verdict for JSON consumers.
	VerdictName string `json:"verdict"`
	// Note marks one-sided metrics ("only in baseline"/"only in current");
	// such rows never carry a verdict other than Indistinguishable.
	Note string `json:"note,omitempty"`
}

// Comparison is the full outcome of comparing a current report against a
// baseline.
type Comparison struct {
	Opts            CompareOpts   `json:"opts"`
	FingerprintDiff []string      `json:"fingerprint_diff,omitempty"`
	Deltas          []MetricDelta `json:"deltas"`
}

// CompareMetric compares one metric's samples across two reports.
func CompareMetric(base, cur Metric, opts CompareOpts) MetricDelta {
	opts = opts.withDefaults()
	d := MetricDelta{
		Name:       base.Name,
		Unit:       base.Unit,
		Better:     base.Better,
		BaseMedian: Median(base.Samples),
		CurMedian:  Median(cur.Samples),
	}
	d.P = MannWhitneyP(base.Samples, cur.Samples)
	switch {
	case d.BaseMedian != 0:
		d.RelDelta = (d.CurMedian - d.BaseMedian) / math.Abs(d.BaseMedian)
	case d.CurMedian == 0:
		d.RelDelta = 0
	case d.CurMedian > 0:
		d.RelDelta = math.Inf(1)
	default:
		d.RelDelta = math.Inf(-1)
	}

	if d.P < opts.Alpha && math.Abs(d.RelDelta) > opts.Threshold {
		worse := d.RelDelta > 0
		if base.Better == BetterHigher {
			worse = !worse
		}
		if worse {
			d.Verdict = Regressed
		} else {
			d.Verdict = Improved
		}
	}
	d.VerdictName = d.Verdict.String()
	return d
}

// Compare evaluates every metric of the current report against the
// baseline. Metrics present on only one side are reported with a note and
// no verdict (a renamed or new benchmark must not read as a regression).
func Compare(base, cur *Report, opts CompareOpts) *Comparison {
	opts = opts.withDefaults()
	c := &Comparison{
		Opts:            opts,
		FingerprintDiff: base.Fingerprint.Diff(cur.Fingerprint),
	}
	for _, name := range MetricNames(base, cur) {
		bm, cm := base.Metric(name), cur.Metric(name)
		switch {
		case bm == nil:
			c.Deltas = append(c.Deltas, MetricDelta{
				Name: name, Unit: cm.Unit, Better: cm.Better,
				CurMedian: Median(cm.Samples), P: 1,
				VerdictName: Indistinguishable.String(), Note: "only in current",
			})
		case cm == nil:
			c.Deltas = append(c.Deltas, MetricDelta{
				Name: name, Unit: bm.Unit, Better: bm.Better,
				BaseMedian: Median(bm.Samples), P: 1,
				VerdictName: Indistinguishable.String(), Note: "only in baseline",
			})
		default:
			c.Deltas = append(c.Deltas, CompareMetric(*bm, *cm, opts))
		}
	}
	return c
}

// Regressed reports whether any metric regressed — the ratchet's fail bit.
func (c *Comparison) Regressed() bool {
	for _, d := range c.Deltas {
		if d.Verdict == Regressed {
			return true
		}
	}
	return false
}

// Counts tallies verdicts.
func (c *Comparison) Counts() (improved, regressed, indistinguishable int) {
	for _, d := range c.Deltas {
		switch d.Verdict {
		case Improved:
			improved++
		case Regressed:
			regressed++
		default:
			indistinguishable++
		}
	}
	return
}

// Table renders the human-readable delta table: one row per metric with
// medians, relative delta, p-value and verdict.
func (c *Comparison) Table() *stats.Table {
	t := stats.NewTable(
		fmt.Sprintf("perf delta (alpha %.3g, threshold %.1f%%)", c.Opts.Alpha, 100*c.Opts.Threshold),
		"metric", "unit", "base median", "cur median", "delta", "p", "verdict")
	for _, d := range c.Deltas {
		verdict := d.VerdictName
		if d.Note != "" {
			verdict = d.Note
		}
		t.Row(d.Name, d.Unit,
			fmt.Sprintf("%.4g", d.BaseMedian),
			fmt.Sprintf("%.4g", d.CurMedian),
			fmtDelta(d.RelDelta),
			fmt.Sprintf("%.3f", d.P),
			verdict)
	}
	return t
}

func fmtDelta(rel float64) string {
	if math.IsInf(rel, 1) {
		return "+inf"
	}
	if math.IsInf(rel, -1) {
		return "-inf"
	}
	return fmt.Sprintf("%+.1f%%", 100*rel)
}
