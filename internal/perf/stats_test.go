package perf

import (
	"math"
	"testing"
)

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
	if got := Median(nil); !math.IsNaN(got) {
		t.Fatalf("empty median = %v, want NaN", got)
	}
	// Input must not be reordered.
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestIQR(t *testing.T) {
	// 1..5: Q1=2, Q3=4 under R-7.
	if got := IQR([]float64{5, 4, 3, 2, 1}); got != 2 {
		t.Fatalf("IQR(1..5) = %v, want 2", got)
	}
	if got := IQR([]float64{7}); got != 0 {
		t.Fatalf("IQR(single) = %v, want 0", got)
	}
	if got := IQR([]float64{3, 3, 3, 3}); got != 0 {
		t.Fatalf("IQR(ties) = %v, want 0", got)
	}
}

func TestMannWhitneyP(t *testing.T) {
	// Identical samples: all ranks tied, no evidence.
	same := []float64{5, 5, 5, 5, 5}
	if p := MannWhitneyP(same, same); p != 1 {
		t.Fatalf("identical samples p = %v, want 1", p)
	}
	// Perfect separation at n=m=5 must reject at alpha 0.05.
	lo := []float64{100, 101, 99, 100, 102}
	hi := []float64{150, 151, 149, 152, 150}
	if p := MannWhitneyP(lo, hi); p >= 0.05 {
		t.Fatalf("separated samples p = %v, want < 0.05", p)
	}
	// Symmetric in argument order.
	if p1, p2 := MannWhitneyP(lo, hi), MannWhitneyP(hi, lo); math.Abs(p1-p2) > 1e-12 {
		t.Fatalf("asymmetric p: %v vs %v", p1, p2)
	}
	// Interleaved noise: high p.
	a := []float64{10, 12, 11, 13, 10.5}
	b := []float64{11.5, 10.2, 12.5, 10.8, 12.1}
	if p := MannWhitneyP(a, b); p < 0.3 {
		t.Fatalf("interleaved noise p = %v, want well above alpha", p)
	}
	// Degenerate inputs.
	if p := MannWhitneyP(nil, hi); p != 1 {
		t.Fatalf("empty side p = %v, want 1", p)
	}
}

func deltaFor(t *testing.T, base, cur []float64, better string, opts CompareOpts) MetricDelta {
	t.Helper()
	bm := Metric{Name: "m", Unit: "ns/op", Better: better, Samples: base}
	cm := Metric{Name: "m", Unit: "ns/op", Better: better, Samples: cur}
	return CompareMetric(bm, cm, opts)
}

func TestCompareMetricGoldenRegression(t *testing.T) {
	// ~50% slowdown with tight samples: unambiguous regression.
	d := deltaFor(t,
		[]float64{100, 101, 99, 100, 102},
		[]float64{150, 151, 149, 152, 150},
		BetterLower, CompareOpts{})
	if d.Verdict != Regressed {
		t.Fatalf("verdict = %v (p=%v rel=%v), want regressed", d.Verdict, d.P, d.RelDelta)
	}
	if d.RelDelta < 0.4 || d.RelDelta > 0.6 {
		t.Fatalf("rel delta = %v, want ~0.5", d.RelDelta)
	}
}

func TestCompareMetricGoldenImprovement(t *testing.T) {
	d := deltaFor(t,
		[]float64{150, 151, 149, 152, 150},
		[]float64{100, 101, 99, 100, 102},
		BetterLower, CompareOpts{})
	if d.Verdict != Improved {
		t.Fatalf("verdict = %v, want improved", d.Verdict)
	}
}

func TestCompareMetricPureNoise(t *testing.T) {
	// Overlapping samples from the same distribution MUST stay
	// indistinguishable — a ratchet that fails on noise is worse than none.
	d := deltaFor(t,
		[]float64{10, 12, 11, 13, 10.5},
		[]float64{11.5, 10.2, 12.5, 10.8, 12.1},
		BetterLower, CompareOpts{})
	if d.Verdict != Indistinguishable {
		t.Fatalf("noise verdict = %v (p=%v rel=%v), want indistinguishable", d.Verdict, d.P, d.RelDelta)
	}
}

func TestCompareMetricSubThresholdDrift(t *testing.T) {
	// Statistically real but only 2%: below the 5% noise threshold, so no
	// verdict.
	d := deltaFor(t,
		[]float64{100, 100.1, 99.9, 100, 100.05},
		[]float64{102, 102.1, 101.9, 102, 102.05},
		BetterLower, CompareOpts{})
	if d.P >= 0.05 {
		t.Fatalf("drift should be significant, p = %v", d.P)
	}
	if d.Verdict != Indistinguishable {
		t.Fatalf("sub-threshold verdict = %v, want indistinguishable", d.Verdict)
	}
	// Tightening the threshold below the drift flips it to regressed.
	d = deltaFor(t,
		[]float64{100, 100.1, 99.9, 100, 100.05},
		[]float64{102, 102.1, 101.9, 102, 102.05},
		BetterLower, CompareOpts{Threshold: 0.01})
	if d.Verdict != Regressed {
		t.Fatalf("tight-threshold verdict = %v, want regressed", d.Verdict)
	}
}

func TestCompareMetricHigherBetter(t *testing.T) {
	// Throughput dropping by half is a regression even though the number
	// went down.
	d := deltaFor(t,
		[]float64{1000, 1010, 990, 1000, 1020},
		[]float64{500, 510, 490, 500, 520},
		BetterHigher, CompareOpts{})
	if d.Verdict != Regressed {
		t.Fatalf("throughput drop verdict = %v, want regressed", d.Verdict)
	}
	d = deltaFor(t,
		[]float64{500, 510, 490, 500, 520},
		[]float64{1000, 1010, 990, 1000, 1020},
		BetterHigher, CompareOpts{})
	if d.Verdict != Improved {
		t.Fatalf("throughput rise verdict = %v, want improved", d.Verdict)
	}
}

func TestCompareMetricZeroBaseline(t *testing.T) {
	// 0 → 0 allocs: fine.
	d := deltaFor(t,
		[]float64{0, 0, 0, 0, 0},
		[]float64{0, 0, 0, 0, 0},
		BetterLower, CompareOpts{})
	if d.Verdict != Indistinguishable {
		t.Fatalf("0→0 verdict = %v, want indistinguishable", d.Verdict)
	}
	// 0 → 1 alloc/op: the delta is infinite and must regress — this is the
	// "Step started allocating" tripwire.
	d = deltaFor(t,
		[]float64{0, 0, 0, 0, 0},
		[]float64{1, 1, 1, 1, 1},
		BetterLower, CompareOpts{})
	if !math.IsInf(d.RelDelta, 1) {
		t.Fatalf("0→1 rel delta = %v, want +Inf", d.RelDelta)
	}
	if d.Verdict != Regressed {
		t.Fatalf("0→1 verdict = %v, want regressed", d.Verdict)
	}
}

func TestCompareReports(t *testing.T) {
	base := &Report{Schema: SchemaVersion, Metrics: []Metric{
		{Name: "a.ns", Unit: "ns/op", Better: BetterLower, Samples: []float64{100, 101, 99, 100, 102}},
		{Name: "gone", Unit: "ns/op", Better: BetterLower, Samples: []float64{5, 5, 5, 5, 5}},
	}}
	cur := &Report{Schema: SchemaVersion, Metrics: []Metric{
		{Name: "a.ns", Unit: "ns/op", Better: BetterLower, Samples: []float64{150, 151, 149, 152, 150}},
		{Name: "new", Unit: "ns/op", Better: BetterLower, Samples: []float64{7, 7, 7, 7, 7}},
	}}
	c := Compare(base, cur, CompareOpts{})
	if !c.Regressed() {
		t.Fatal("comparison should report a regression")
	}
	improved, regressed, indist := c.Counts()
	if improved != 0 || regressed != 1 || indist != 2 {
		t.Fatalf("counts = %d/%d/%d, want 0/1/2", improved, regressed, indist)
	}
	// One-sided metrics carry notes, never verdicts.
	for _, d := range c.Deltas {
		if (d.Name == "gone" || d.Name == "new") && (d.Verdict != Indistinguishable || d.Note == "") {
			t.Fatalf("one-sided metric %s: verdict=%v note=%q", d.Name, d.Verdict, d.Note)
		}
	}
	if c.Table().String() == "" {
		t.Fatal("delta table rendered empty")
	}
}

func TestRatchetSelfTest(t *testing.T) {
	// The handicap trick the CLI uses: doubling every timing sample of a
	// clean report must trip the ratchet; comparing a report against itself
	// must not.
	base := &Report{Schema: SchemaVersion, Metrics: []Metric{
		{Name: "step.ns", Unit: "ns/op", Better: BetterLower, Samples: []float64{200, 203, 199, 201, 202}},
		{Name: "decode.rate", Unit: "accesses/sec", Better: BetterHigher, Samples: []float64{9e6, 9.1e6, 8.9e6, 9.05e6, 9.02e6}},
	}}
	if Compare(base, base, CompareOpts{}).Regressed() {
		t.Fatal("self-comparison regressed")
	}
	slow := &Report{Schema: SchemaVersion}
	for _, m := range base.Metrics {
		hm := m
		hm.Samples = nil
		for _, v := range m.Samples {
			hm.Samples = append(hm.Samples, applyHandicap(v, m.Unit, 2))
		}
		slow.Metrics = append(slow.Metrics, hm)
	}
	c := Compare(base, slow, CompareOpts{})
	if !c.Regressed() {
		t.Fatal("2x handicap did not trip the ratchet")
	}
	_, regressed, _ := c.Counts()
	if regressed != 2 {
		t.Fatalf("handicap regressed %d metrics, want 2", regressed)
	}
}
