package perf

import (
	"math"
	"sort"
)

// Median returns the sample median (mean of the middle pair for even n, NaN
// for empty input). The input is not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// IQR returns the interquartile range Q3−Q1 (linear interpolation between
// order statistics, the R-7 / spreadsheet convention). 0 for n < 2.
func IQR(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, 0.75) - quantileSorted(s, 0.25)
}

func quantileSorted(s []float64, q float64) float64 {
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MannWhitneyP returns the two-sided p-value of the Mann–Whitney U test on
// two independent samples, via the normal approximation with tie correction
// and continuity correction. It answers "could these two sample sets come
// from the same distribution": small p means a real location shift, p near 1
// means the difference is indistinguishable from noise. Degenerate inputs
// (an empty sample, or all values tied) return 1 — never a false positive.
//
// The approximation is accurate enough for the suite's regime (n ≥ 4 per
// side): at n = m = 5, perfect separation yields p ≈ 0.012, matching the
// exact test's rejection at α = 0.05.
func MannWhitneyP(a, b []float64) float64 {
	n1, n2 := len(a), len(b)
	if n1 == 0 || n2 == 0 {
		return 1
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Average ranks over tie groups; accumulate the tie-correction term.
	n := n1 + n2
	var r1, tieTerm float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		t := float64(j - i)
		rank := (float64(i+1) + float64(j)) / 2 // average 1-based rank of the group
		for k := i; k < j; k++ {
			if all[k].first {
				r1 += rank
			}
		}
		tieTerm += t*t*t - t
		i = j
	}

	u1 := r1 - float64(n1)*float64(n1+1)/2
	mu := float64(n1) * float64(n2) / 2
	nf := float64(n)
	sigma2 := float64(n1) * float64(n2) / 12 * ((nf + 1) - tieTerm/(nf*(nf-1)))
	if sigma2 <= 0 {
		return 1 // every observation tied: no evidence of any difference
	}
	z := (math.Abs(u1-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	return math.Erfc(z / math.Sqrt2) // == 2·(1−Φ(z))
}
