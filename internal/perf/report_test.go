package perf

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport(seq int) *Report {
	r := &Report{
		Schema:      SchemaVersion,
		Seq:         seq,
		CreatedUnix: 1_700_000_000,
		Fingerprint: CollectFingerprint(),
		Suite:       SuiteInfo{Samples: 5, StepOps: 1000, DecodeOps: 1000},
		Metrics: []Metric{
			{Name: "step.COSMOS.ns_per_op", Unit: "ns/op", Better: BetterLower, Samples: []float64{100, 101, 99, 100, 102}},
			{Name: "decode.tracefile.accesses_per_sec", Unit: "accesses/sec", Better: BetterHigher, Samples: []float64{9e6, 9.1e6, 8.9e6, 9.05e6, 9.02e6}},
		},
	}
	r.finalize()
	return r
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	r := sampleReport(6)
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != r.Seq || got.Schema != SchemaVersion || len(got.Metrics) != len(r.Metrics) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	m := got.Metric("step.COSMOS.ns_per_op")
	if m == nil {
		t.Fatal("metric lost in round trip")
	}
	if m.Median != 100 {
		t.Fatalf("median = %v, want 100", m.Median)
	}
	if got.Fingerprint != r.Fingerprint {
		t.Fatalf("fingerprint changed in round trip: %+v vs %+v", got.Fingerprint, r.Fingerprint)
	}
	if got.Metric("no.such.metric") != nil {
		t.Fatal("lookup of absent metric should be nil")
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	r := sampleReport(1)
	r.Schema = "cosmos-perf-v999"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: err=%v", err)
	}
}

func TestHistoryAppendRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "perf", "HISTORY.jsonl")
	for seq := 1; seq <= 3; seq++ {
		if err := AppendHistory(path, HistoryEntryOf(sampleReport(seq))); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("read %d entries, want 3", len(entries))
	}
	for i, e := range entries {
		if e.Seq != i+1 {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
		if e.FingerprintID == "" || len(e.Medians) != 2 {
			t.Fatalf("entry %d incomplete: %+v", i, e)
		}
		if e.Medians["step.COSMOS.ns_per_op"] != 100 {
			t.Fatalf("entry %d median = %v", i, e.Medians["step.COSMOS.ns_per_op"])
		}
	}
}

func TestFingerprintStability(t *testing.T) {
	a, b := CollectFingerprint(), CollectFingerprint()
	if a != b {
		t.Fatalf("fingerprint not stable across calls: %+v vs %+v", a, b)
	}
	if a.ID() != b.ID() || len(a.ID()) != 12 {
		t.Fatalf("fingerprint ID unstable or wrong length: %q vs %q", a.ID(), b.ID())
	}
	if diff := a.Diff(b); len(diff) != 0 {
		t.Fatalf("self diff not empty: %v", diff)
	}
	c := a
	c.GoVersion = "go0.0"
	c.NumCPU++
	if diff := a.Diff(c); len(diff) != 2 {
		t.Fatalf("diff = %v, want 2 fields", diff)
	}
	if a.GoVersion == "" || a.GOOS == "" || a.NumCPU < 1 {
		t.Fatalf("fingerprint missing required fields: %+v", a)
	}
	if !strings.Contains(a.String(), a.GoVersion) {
		t.Fatalf("String() omits go version: %q", a.String())
	}
}

func TestMetricNamesUnion(t *testing.T) {
	a := &Report{Metrics: []Metric{{Name: "b"}, {Name: "a"}}}
	b := &Report{Metrics: []Metric{{Name: "c"}, {Name: "a"}}}
	got := MetricNames(a, b)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}
