package perf

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SchemaVersion identifies the report format. Readers reject other schemas
// instead of misinterpreting them.
const SchemaVersion = "cosmos-perf-v1"

// Directions a metric can prefer.
const (
	BetterLower  = "lower"  // latencies, allocations
	BetterHigher = "higher" // throughputs
)

// Metric is one measured quantity: N repeated samples plus the derived
// median and IQR (stored redundantly so reports are human-skimmable, but
// always recomputed from Samples when comparing).
type Metric struct {
	Name    string    `json:"name"`
	Unit    string    `json:"unit"`
	Better  string    `json:"better"` // BetterLower | BetterHigher
	Samples []float64 `json:"samples"`
	Median  float64   `json:"median"`
	IQR     float64   `json:"iqr"`
}

// SuiteInfo records the suite regime a report was measured under, so two
// reports are only trusted comparable when the regime matches.
type SuiteInfo struct {
	Samples   int     `json:"samples"`
	StepOps   int     `json:"step_ops"`
	WarmSteps int     `json:"warm_steps"`
	DecodeOps int     `json:"decode_ops"`
	E2EScale  float64 `json:"e2e_scale"`
	Handicap  float64 `json:"handicap,omitempty"` // ratchet self-test knob; 0/1 = none
	// ParallelCores is the worker budget of the parallel-engine benchmark
	// (engine.parallel.*); omitted on reports predating that benchmark.
	ParallelCores int `json:"parallel_cores,omitempty"`
}

// Report is one BENCH_<n>.json: the committed perf-trajectory unit.
type Report struct {
	Schema      string      `json:"schema"`
	Seq         int         `json:"seq,omitempty"`
	CreatedUnix int64       `json:"created_unix"`
	Fingerprint Fingerprint `json:"fingerprint"`
	Suite       SuiteInfo   `json:"suite"`
	Metrics     []Metric    `json:"metrics"`
}

// Metric returns the named metric (nil when absent).
func (r *Report) Metric(name string) *Metric {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			return &r.Metrics[i]
		}
	}
	return nil
}

// finalize recomputes the derived fields of every metric.
func (r *Report) finalize() {
	for i := range r.Metrics {
		m := &r.Metrics[i]
		m.Median = Median(m.Samples)
		m.IQR = IQR(m.Samples)
	}
}

// WriteFile writes the report as indented JSON (trailing newline, so the
// committed file is diff-friendly).
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadReport loads and schema-checks a report file.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: parse %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s has schema %q, want %q", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// HistoryEntry is one line of perf/HISTORY.jsonl: the append-only perf
// trajectory. Each committed BENCH_<n>.json adds one line holding just the
// per-metric medians, so the whole speed history of the repo reads as a
// time-series without opening every report.
type HistoryEntry struct {
	Seq           int                `json:"seq"`
	CreatedUnix   int64              `json:"created_unix"`
	FingerprintID string             `json:"fingerprint_id"`
	Medians       map[string]float64 `json:"medians"`
}

// HistoryEntryOf summarises a report for the trajectory.
func HistoryEntryOf(r *Report) HistoryEntry {
	e := HistoryEntry{
		Seq:           r.Seq,
		CreatedUnix:   r.CreatedUnix,
		FingerprintID: r.Fingerprint.ID(),
		Medians:       make(map[string]float64, len(r.Metrics)),
	}
	for _, m := range r.Metrics {
		e.Medians[m.Name] = m.Median
	}
	return e
}

// AppendHistory appends one entry to the trajectory file, creating it (and
// its directory) if needed.
func AppendHistory(path string, e HistoryEntry) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(b, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ReadHistory parses a trajectory file into entries (in file order).
func ReadHistory(path string) ([]HistoryEntry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []HistoryEntry
	dec := json.NewDecoder(bytes.NewReader(b))
	for dec.More() {
		var e HistoryEntry
		if err := dec.Decode(&e); err != nil {
			return out, fmt.Errorf("perf: parse %s entry %d: %w", path, len(out)+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// MetricNames returns the sorted union of metric names across reports.
func MetricNames(reports ...*Report) []string {
	seen := map[string]bool{}
	for _, r := range reports {
		for _, m := range r.Metrics {
			seen[m.Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
