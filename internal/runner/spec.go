package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cosmos/internal/fault"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
)

// hashVersion prefixes every canonical encoding. Bump it whenever the Spec
// schema or the simulator's semantics change in a way that invalidates
// stored results: old store entries then simply miss and are recomputed.
const hashVersion = "cosmos-run-v1"

// Spec fully describes one simulation: everything that can influence its
// Results is in here, and nothing else. Two Specs with equal canonical
// hashes (Key) are guaranteed to produce bit-identical Results — the
// simulator is deterministic — which is what lets the orchestrator memoise,
// deduplicate and persist runs without ever changing a number.
type Spec struct {
	// Workload is a workloads.Build name (including "file:<path>" replays).
	Workload string `json:"workload"`
	// Design is the fully resolved design point, including any per-run
	// tweaks (CTR cache size, policy, prefetcher).
	Design secmem.Design `json:"design"`
	// Cores selects the machine: 8 picks the Fig 15 8-core config, any
	// other non-zero value adjusts the default 4-core config. 0 means 4.
	// Ignored when Config is set.
	Cores int `json:"cores"`
	// Accesses caps the simulation length.
	Accesses uint64 `json:"accesses"`
	// GraphNodes / GraphDegree size the synthetic graph workloads.
	GraphNodes  int `json:"graph_nodes"`
	GraphDegree int `json:"graph_degree"`
	// Seed fixes all randomness (machine and workload). Ignored for the
	// machine side when Config is set — Config carries its own seeds.
	Seed uint64 `json:"seed"`

	// Config, when non-nil, overrides the whole machine configuration
	// verbatim (ablation studies that tweak MC parameters). The caller is
	// responsible for setting Config.MC.Seed and friends; the spec's Seed
	// then only feeds the workload generator.
	Config *sim.Config `json:"config,omitempty"`

	// Fault, when non-nil, attaches a fault campaign to the run. It is part
	// of the hash — the same workload with and without faults are different
	// runs — and a nil Fault encodes to nothing, so pre-fault store entries
	// keep their keys.
	Fault *fault.Config `json:"fault,omitempty"`

	// Label optionally overrides DisplayLabel for progress reporting and
	// telemetry file names. It never enters the hash.
	Label string `json:"label,omitempty"`
}

// normalized returns the canonical form: defaults applied, display-only
// fields cleared. Key and the executor both operate on this form, so a
// caller writing Cores: 0 and one writing Cores: 4 share a cache cell.
func (s Spec) normalized() Spec {
	if s.Cores == 0 {
		s.Cores = 4
	}
	if s.Config != nil && s.Config.Cores != 0 {
		s.Cores = s.Config.Cores
	}
	s.Label = ""
	return s
}

// Key returns the canonical content hash of the spec: a SHA-256 over the
// versioned JSON encoding of the normalized spec. JSON struct encoding is
// deterministic (fields in declaration order, no maps involved), so equal
// specs always produce equal keys, across processes and runs. The key is
// the identity used for memoisation, singleflight deduplication and the
// on-disk result store.
func (s Spec) Key() string {
	n := s.normalized()
	b, err := json.Marshal(struct {
		Version string `json:"v"`
		Spec    Spec   `json:"spec"`
	}{hashVersion, n})
	if err != nil {
		// Spec is plain data (no channels, funcs or cycles); Marshal
		// cannot fail. A failure here is a programming error.
		panic(fmt.Sprintf("runner: cannot hash spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// DisplayLabel returns a filename-safe identifier for the run: workload and
// design plus any non-default tweaks (matching the historical telemetry
// file naming), or the sanitised Label override when set.
func (s Spec) DisplayLabel() string {
	if s.Label != "" {
		return sanitizeLabel(s.Label)
	}
	n := s.normalized()
	label := n.Workload + "_" + n.Design.Name
	if n.Cores != 4 {
		label += fmt.Sprintf("_c%d", n.Cores)
	}
	// Only tweaks relative to the named design's defaults are appended, so
	// e.g. RMCC (whose LFU policy is part of the design) keeps its plain
	// label while a Fig 5 policy-override run is distinguishable.
	base, err := secmem.DesignByName(n.Design.Name)
	if err != nil {
		base = secmem.Design{}
	}
	if n.Design.CtrCacheBytes != 0 && n.Design.CtrCacheBytes != base.CtrCacheBytes {
		label += fmt.Sprintf("_ctr%dk", n.Design.CtrCacheBytes>>10)
	}
	if n.Design.CtrPolicy != "" && n.Design.CtrPolicy != base.CtrPolicy {
		label += "_" + n.Design.CtrPolicy
	}
	if n.Design.CtrPrefetcher != "" && n.Design.CtrPrefetcher != base.CtrPrefetcher {
		label += "_" + n.Design.CtrPrefetcher
	}
	if n.Config != nil {
		label += "_cfg" + s.Key()[:8]
	} else if n.Fault != nil {
		label += "_fault" + s.Key()[:8]
	}
	return sanitizeLabel(label)
}

func sanitizeLabel(label string) string {
	b := make([]byte, 0, len(label))
	for _, r := range label {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
			b = append(b, byte(r))
		default:
			b = append(b, '-')
		}
	}
	return string(b)
}

// config materialises the machine configuration the spec describes,
// mirroring what cosmos.Run and experiments.Lab historically built.
func (s Spec) config() sim.Config {
	var cfg sim.Config
	if s.Config != nil {
		cfg = *s.Config
	} else {
		if s.Cores == 8 {
			cfg = sim.EightCore()
		} else {
			cfg = sim.DefaultConfig()
			cfg.Cores = s.Cores
		}
		cfg.MC.Seed = s.Seed
		cfg.MC.Params.Seed = s.Seed
	}
	if s.Fault != nil && cfg.Fault == nil {
		cfg.Fault = s.Fault
	}
	return cfg
}

// Validate rejects specs the executor cannot run, before any simulation
// state is built: an empty workload name, a zero access budget, negative
// core counts, bad machine geometry or an unusable fault campaign. The
// orchestrator calls it at the head of every simulate, so a malformed spec
// fails fast with a named field instead of panicking deep in Step.
func (s Spec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("runner: spec has empty workload (pick a workloads.Build name)")
	}
	if s.Design.Name == "" {
		return fmt.Errorf("runner: spec has empty design name")
	}
	if s.Accesses == 0 {
		return fmt.Errorf("runner: spec has zero accesses — nothing to simulate")
	}
	if s.Cores < 0 {
		return fmt.Errorf("runner: negative core count %d", s.Cores)
	}
	n := s.normalized()
	return n.config().Validate()
}
