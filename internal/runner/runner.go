// Package runner is the run-orchestration subsystem: the single path every
// simulation takes, whether it comes from the public cosmos API, the
// experiments harness or the cosmos-bench campaign driver.
//
// The orchestrator provides, around a deterministic simulator:
//
//   - a bounded worker pool (Options.Workers) so arbitrarily wide campaign
//     fan-out never oversubscribes the machine;
//   - singleflight deduplication keyed by a canonical content hash of the
//     Spec (workload, design, config, scale, seed): two concurrent requests
//     for the same cell execute one simulation and share its Results;
//   - in-memory memoisation of completed runs (what experiments.Lab used to
//     carry) plus an optional persistent Store, so a killed campaign resumes
//     executing only the missing cells;
//   - context cancellation plumbed into the simulation loop itself
//     (sim.System.RunContext), so SIGINT and timeouts land mid-run within a
//     bounded number of steps;
//   - panic recovery in workers, converted to typed *PanicError values
//     instead of tearing down the whole campaign;
//   - per-run queue-wait and execution-time accounting, exposed through
//     Stats, the Observer callback and telemetry counters.
//
// Determinism contract: identical Specs yield bit-identical Results
// regardless of worker count, arrival order, or whether the result was
// executed, memoised, deduplicated or restored from disk.
package runner

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
	"cosmos/internal/trace"
	"cosmos/internal/workloads"
)

// PanicError is a worker panic converted to a value: the campaign keeps
// draining, the failing cell reports what blew up and where.
type PanicError struct {
	Label string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: panic in run %s: %v", e.Label, e.Value)
}

// Source says where a completed run's Results came from.
type Source int

const (
	// SourceExecuted: this request ran the simulation.
	SourceExecuted Source = iota
	// SourceMemoised: served from the in-memory result cache.
	SourceMemoised
	// SourceRestored: loaded from the persistent Store.
	SourceRestored
	// SourceDeduplicated: waited on an identical in-flight run.
	SourceDeduplicated
)

func (s Source) String() string {
	switch s {
	case SourceExecuted:
		return "executed"
	case SourceMemoised:
		return "memoised"
	case SourceRestored:
		return "restored"
	case SourceDeduplicated:
		return "deduplicated"
	}
	return "unknown"
}

// Event describes one completed (or failed) Run request.
type Event struct {
	Key    string
	Label  string
	Source Source
	// QueueWait is the time spent waiting for a worker slot; ExecTime the
	// simulation wall time. Both are zero unless Source is SourceExecuted.
	QueueWait time.Duration
	ExecTime  time.Duration
	// Perf is the run's wall-time attribution (decode / step / store /
	// report plus simulated accesses/sec). Non-nil only for executed runs
	// of an orchestrator with Phases attached.
	Perf *telemetry.PhaseBreakdown
	Err  error
}

// Phase is one stage of a run request's lifecycle, reported through the
// Lifecycle hook so an observability plane can maintain a live run table.
type Phase int

const (
	// PhaseQueued: the request became the leader for its key and entered
	// the store-lookup / worker-slot pipeline.
	PhaseQueued Phase = iota
	// PhaseRunning: a worker slot was acquired and the simulation is about
	// to execute.
	PhaseRunning
	// PhaseDone: the request completed (any Source, or with an error).
	PhaseDone
)

func (p Phase) String() string {
	switch p {
	case PhaseQueued:
		return "queued"
	case PhaseRunning:
		return "running"
	case PhaseDone:
		return "done"
	}
	return "unknown"
}

// Transition is one lifecycle phase change of a run request. Source,
// QueueWait, ExecTime and Err are meaningful at PhaseDone; QueueWait is also
// set at PhaseRunning (the wait that just ended).
type Transition struct {
	Key       string
	Label     string
	Phase     Phase
	Source    Source
	QueueWait time.Duration
	ExecTime  time.Duration
	// Perf is the executed run's wall-time attribution at PhaseDone (see
	// Event.Perf); nil otherwise.
	Perf *telemetry.PhaseBreakdown
	Err  error
}

// Stats is a snapshot of the orchestrator's run accounting.
type Stats struct {
	Executed     uint64 // simulations actually run
	Memoised     uint64 // served from the in-memory cache
	Restored     uint64 // served from the persistent store
	Deduplicated uint64 // coalesced onto an identical in-flight run
	Failed       uint64 // requests that returned an error
	// QueueWait / ExecTime accumulate over executed runs.
	QueueWait time.Duration
	ExecTime  time.Duration
}

// Options configures an Orchestrator.
type Options struct {
	// Workers bounds concurrent simulations (default: runtime.NumCPU()).
	Workers int
	// Store, when non-nil, persists every executed run and is consulted
	// before executing.
	Store *Store
	// ParallelCores > 1 runs each simulation on the deterministic
	// epoch-barrier parallel engine with up to that many worker goroutines
	// (see sim.System.SetParallelCores). It is an execution knob — Results
	// stay bit-identical — so it is deliberately not part of the spec hash:
	// runs memoised or restored under one setting satisfy requests under
	// any other.
	ParallelCores int
}

// Executor delegates the execution of a leader run request to an external
// fabric — the coord package's lease queue is the canonical implementation.
// Execute is called once per cache-missing key (after the store lookup and
// singleflight coalescing have already happened) and must return the
// deterministic Results of the spec, persisting them itself if durability
// is wanted: the orchestrator skips its own Store.Put for delegated runs so
// the fabric controls the write order (persist, then acknowledge).
//
// started, when invoked (at most once, from any goroutine), marks the
// moment real work began — the orchestrator turns it into the PhaseRunning
// lifecycle transition and splits queue-wait from execution time around it.
type Executor interface {
	Execute(ctx context.Context, key, label string, spec Spec, started func()) (sim.Results, error)
}

// Orchestrator runs simulations. Safe for concurrent use.
type Orchestrator struct {
	store *Store
	sem   chan struct{}

	// Executor, when non-nil, replaces local simulation for every leader
	// request: instead of taking a worker-pool slot and calling the
	// simulator, the orchestrator hands the spec to the executor and waits.
	// Store lookups, memoisation, singleflight dedup, lifecycle transitions
	// and stats accounting all still happen here, so campaign code cannot
	// tell a delegated run from a local one.
	Executor Executor

	// Instrument, when non-nil, is invoked for every simulation actually
	// executed (not for memoised/restored/deduplicated results), after the
	// System is built and before it runs; the returned cleanup, if non-nil,
	// runs after the simulation finishes. It may be called concurrently.
	Instrument func(label string, s *sim.System) func()

	// Observer, when non-nil, receives an Event for every completed Run
	// request, including failures. It may be called concurrently.
	Observer func(Event)

	// Lifecycle, when non-nil, receives a Transition at every phase change
	// of every run request: queued → running → done for executed leaders,
	// a bare done for memoised/restored/deduplicated results. It may be
	// called concurrently; nil costs one branch per transition.
	Lifecycle func(Transition)

	// Phases, when non-nil, accumulates campaign-level wall-time
	// attribution: every executed simulation runs the attributed loop
	// (decode/step/report, see sim.System.AttachPhases) and store I/O is
	// timed, all folded into this shared accumulator. Each executed run's
	// own breakdown additionally rides on its PhaseDone Transition and
	// Event. Nil keeps runs on the untimed loop.
	Phases *telemetry.Phases

	workers       int
	parallelCores int

	mu       sync.Mutex
	inflight map[string]*call
	memo     map[string]sim.Results
	stats    Stats
}

// call is one in-flight execution that followers can wait on.
type call struct {
	done chan struct{}
	res  sim.Results
	err  error
}

// New creates an orchestrator.
func New(opts Options) *Orchestrator {
	if opts.Workers < 1 {
		opts.Workers = runtime.NumCPU()
	}
	return &Orchestrator{
		store:         opts.Store,
		sem:           make(chan struct{}, opts.Workers),
		workers:       opts.Workers,
		parallelCores: opts.ParallelCores,
		inflight:      make(map[string]*call),
		memo:          make(map[string]sim.Results),
	}
}

// Store returns the persistent store the orchestrator writes to (nil when
// running memory-only).
func (o *Orchestrator) Store() *Store { return o.store }

// Workers returns the worker-pool capacity (concurrent simulations).
func (o *Orchestrator) Workers() int { return o.workers }

// MemoLen reports how many completed runs the in-memory memo holds.
func (o *Orchestrator) MemoLen() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.memo)
}

func (o *Orchestrator) transition(t Transition) {
	if o.Lifecycle != nil {
		o.Lifecycle(t)
	}
}

// Stats returns a snapshot of the run accounting.
func (o *Orchestrator) Stats() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// RegisterMetrics exposes the orchestrator's accounting as telemetry
// counters under scope: runs_{executed,memoised,restored,deduplicated,
// failed} and the accumulated queue_wait_us / exec_time_us, plus the result
// reuse outcomes under runner.store.* (persistent-store hits, misses and
// corrupt-record recomputes, and in-memory memo hits).
func (o *Orchestrator) RegisterMetrics(scope *telemetry.Scope) {
	s := scope.Scope("runner")
	get := func(f func(st Stats) uint64) func() uint64 {
		return func() uint64 {
			o.mu.Lock()
			defer o.mu.Unlock()
			return f(o.stats)
		}
	}
	s.CounterFunc("runs_executed", get(func(st Stats) uint64 { return st.Executed }))
	s.CounterFunc("runs_memoised", get(func(st Stats) uint64 { return st.Memoised }))
	s.CounterFunc("runs_restored", get(func(st Stats) uint64 { return st.Restored }))
	s.CounterFunc("runs_deduplicated", get(func(st Stats) uint64 { return st.Deduplicated }))
	s.CounterFunc("runs_failed", get(func(st Stats) uint64 { return st.Failed }))
	s.CounterFunc("queue_wait_us", get(func(st Stats) uint64 { return uint64(st.QueueWait.Microseconds()) }))
	s.CounterFunc("exec_time_us", get(func(st Stats) uint64 { return uint64(st.ExecTime.Microseconds()) }))

	sc := s.Scope("store")
	sc.CounterFunc("memo_hits", get(func(st Stats) uint64 { return st.Memoised }))
	if o.store != nil {
		sc.CounterFunc("hits", func() uint64 { h, _, _ := o.store.Counters(); return h })
		sc.CounterFunc("misses", func() uint64 { _, m, _ := o.store.Counters(); return m })
		sc.CounterFunc("corrupt_recomputed", func() uint64 { _, _, c := o.store.Counters(); return c })
		sc.CounterFunc("retries", o.store.Retries)
	}
}

// Run executes (or recalls) the simulation the spec describes. Identical
// concurrent calls coalesce onto one execution; completed results are
// memoised in memory and, when a Store is configured, persisted so a later
// process can resume without re-simulating. On cancellation the error wraps
// ctx.Err(), so errors.Is(err, context.Canceled) works.
func (o *Orchestrator) Run(ctx context.Context, spec Spec) (sim.Results, error) {
	// Label must be read before normalizing — normalized() clears it (it is
	// display-only and must stay out of the hash).
	label := spec.DisplayLabel()
	spec = spec.normalized()
	key := spec.Key()

	o.mu.Lock()
	if r, ok := o.memo[key]; ok {
		o.stats.Memoised++
		o.mu.Unlock()
		o.transition(Transition{Key: key, Label: label, Phase: PhaseDone, Source: SourceMemoised})
		o.notify(Event{Key: key, Label: label, Source: SourceMemoised})
		return cloneResults(r), nil
	}
	if c, ok := o.inflight[key]; ok {
		o.stats.Deduplicated++
		o.mu.Unlock()
		select {
		case <-c.done:
			if c.err != nil {
				o.transition(Transition{Key: key, Label: label, Phase: PhaseDone, Source: SourceDeduplicated, Err: c.err})
				o.fail(Event{Key: key, Label: label, Source: SourceDeduplicated, Err: c.err})
				return sim.Results{}, c.err
			}
			o.transition(Transition{Key: key, Label: label, Phase: PhaseDone, Source: SourceDeduplicated})
			o.notify(Event{Key: key, Label: label, Source: SourceDeduplicated})
			return cloneResults(c.res), nil
		case <-ctx.Done():
			err := fmt.Errorf("runner: run %s: %w", label, ctx.Err())
			o.transition(Transition{Key: key, Label: label, Phase: PhaseDone, Source: SourceDeduplicated, Err: err})
			o.fail(Event{Key: key, Label: label, Source: SourceDeduplicated, Err: err})
			return sim.Results{}, err
		}
	}
	c := &call{done: make(chan struct{})}
	o.inflight[key] = c
	o.mu.Unlock()
	o.transition(Transition{Key: key, Label: label, Phase: PhaseQueued})

	res, ev, err := o.execute(ctx, key, label, spec)
	c.res, c.err = res, err

	o.mu.Lock()
	delete(o.inflight, key)
	if err == nil {
		o.memo[key] = res
	}
	o.mu.Unlock()
	close(c.done)

	ev.Key, ev.Label, ev.Err = key, label, err
	o.transition(Transition{Key: key, Label: label, Phase: PhaseDone,
		Source: ev.Source, QueueWait: ev.QueueWait, ExecTime: ev.ExecTime, Perf: ev.Perf, Err: err})
	if err != nil {
		slog.Debug("run failed", "label", label, "source", ev.Source.String(), "err", err)
		o.fail(ev)
		return sim.Results{}, err
	}
	slog.Debug("run finished", "label", label, "source", ev.Source.String(),
		"queue_wait", ev.QueueWait, "exec_time", ev.ExecTime)
	o.notify(ev)
	return cloneResults(res), nil
}

// RunAll submits every spec concurrently (the worker pool bounds actual
// parallelism) and waits for all of them, returning the first error. This
// is the campaign-prewarm entry point: parallelism affects wall-clock only,
// never results.
func (o *Orchestrator) RunAll(ctx context.Context, specs []Spec) error {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, sp := range specs {
		sp := sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := o.Run(ctx, sp); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// execute resolves one leader request: store lookup, worker-slot wait,
// simulation, store write-back — or, with an Executor attached, store
// lookup followed by delegation to the external fabric.
func (o *Orchestrator) execute(ctx context.Context, key, label string, spec Spec) (sim.Results, Event, error) {
	if o.store != nil {
		lookup := time.Now()
		r, ok := o.store.Get(ctx, key)
		if o.Phases != nil {
			o.Phases.Add(telemetry.PhaseStore, time.Since(lookup))
		}
		if ok {
			o.mu.Lock()
			o.stats.Restored++
			o.mu.Unlock()
			return r, Event{Source: SourceRestored}, nil
		}
	}

	if o.Executor != nil {
		return o.delegate(ctx, key, label, spec)
	}

	queued := time.Now()
	select {
	case o.sem <- struct{}{}:
	case <-ctx.Done():
		return sim.Results{}, Event{Source: SourceExecuted}, fmt.Errorf("runner: run %s: %w", label, ctx.Err())
	}
	defer func() { <-o.sem }()
	queueWait := time.Since(queued)
	o.transition(Transition{Key: key, Label: label, Phase: PhaseRunning, QueueWait: queueWait})

	started := time.Now()
	res, ph, err := o.simulate(ctx, label, spec)
	execTime := time.Since(started)

	ev := Event{Source: SourceExecuted, QueueWait: queueWait, ExecTime: execTime}
	if err != nil {
		if ph != nil {
			o.Phases.Merge(ph)
		}
		return sim.Results{}, ev, err
	}
	o.mu.Lock()
	o.stats.Executed++
	o.stats.QueueWait += queueWait
	o.stats.ExecTime += execTime
	o.mu.Unlock()

	var putErr error
	if o.store != nil {
		put := time.Now()
		putErr = o.store.Put(ctx, key, spec, res)
		if ph != nil {
			ph.Add(telemetry.PhaseStore, time.Since(put))
		}
	}
	if ph != nil {
		o.Phases.Merge(ph)
		b := ph.Breakdown()
		ev.Perf = &b
	}
	if putErr != nil {
		return sim.Results{}, ev, fmt.Errorf("runner: persist run %s: %w", label, putErr)
	}
	return res, ev, nil
}

// delegate hands a leader request to the attached Executor and books the
// outcome exactly like a local execution: the started callback becomes the
// PhaseRunning transition and splits queue-wait (time on the fabric's queue
// before a worker leased the cell) from execution time. The executor is
// responsible for persistence — no Store.Put happens here, so the fabric's
// persist-then-acknowledge ordering is the only write path.
func (o *Orchestrator) delegate(ctx context.Context, key, label string, spec Spec) (sim.Results, Event, error) {
	queued := time.Now()
	var (
		mu        sync.Mutex
		startedAt time.Time
	)
	started := func() {
		mu.Lock()
		startedAt = time.Now()
		wait := startedAt.Sub(queued)
		mu.Unlock()
		o.transition(Transition{Key: key, Label: label, Phase: PhaseRunning, QueueWait: wait})
	}

	res, err := o.Executor.Execute(ctx, key, label, spec, started)

	finished := time.Now()
	mu.Lock()
	queueWait := finished.Sub(queued)
	var execTime time.Duration
	if !startedAt.IsZero() {
		queueWait = startedAt.Sub(queued)
		execTime = finished.Sub(startedAt)
	}
	mu.Unlock()

	ev := Event{Source: SourceExecuted, QueueWait: queueWait, ExecTime: execTime}
	if err != nil {
		return sim.Results{}, ev, err
	}
	o.mu.Lock()
	o.stats.Executed++
	o.stats.QueueWait += queueWait
	o.stats.ExecTime += execTime
	o.mu.Unlock()
	return res, ev, nil
}

// simulate builds and runs one simulation with panic recovery: a panicking
// workload or model component fails this cell with a *PanicError instead of
// killing the process.
func (o *Orchestrator) simulate(ctx context.Context, label string, spec Spec) (res sim.Results, ph *telemetry.Phases, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Label: label, Value: p, Stack: debug.Stack()}
		}
	}()

	if err := spec.Validate(); err != nil {
		return sim.Results{}, nil, err
	}

	var decodeStart time.Time
	if o.Phases != nil {
		ph = telemetry.NewPhases()
		decodeStart = time.Now()
	}
	gen, err := workloads.Build(spec.Workload, workloads.Options{
		Threads:     spec.Cores,
		Seed:        spec.Seed,
		GraphNodes:  spec.GraphNodes,
		GraphDegree: spec.GraphDegree,
	})
	if ph != nil {
		// Workload construction (graph building, footprint layout) counts
		// as decode: it is the cost of producing the access stream.
		ph.Add(telemetry.PhaseDecode, time.Since(decodeStart))
	}
	if err != nil {
		return sim.Results{}, ph, fmt.Errorf("runner: build workload for %s: %w", label, err)
	}

	s := sim.New(spec.config(), spec.Design)
	s.SetParallelCores(o.parallelCores)
	if ph != nil {
		s.AttachPhases(ph)
	}
	if o.Instrument != nil {
		if cleanup := o.Instrument(label, s); cleanup != nil {
			defer cleanup()
		}
	}
	res, err = s.RunContext(ctx, trace.Limit(gen, spec.Accesses), spec.Accesses)
	if err != nil {
		return sim.Results{}, ph, fmt.Errorf("runner: run %s: %w", label, err)
	}
	return res, ph, nil
}

func (o *Orchestrator) notify(ev Event) {
	if o.Observer != nil {
		o.Observer(ev)
	}
}

func (o *Orchestrator) fail(ev Event) {
	o.mu.Lock()
	o.stats.Failed++
	o.mu.Unlock()
	o.notify(ev)
}

// cloneResults deep-copies the pointer-valued fields so callers can never
// mutate a shared memo entry through the returned value.
func cloneResults(r sim.Results) sim.Results {
	if r.DataPred != nil {
		cp := *r.DataPred
		r.DataPred = &cp
	}
	if r.CtrPred != nil {
		cp := *r.CtrPred
		r.CtrPred = &cp
	}
	if r.Fault != nil {
		cp := *r.Fault
		r.Fault = &cp
	}
	return r
}
