package runner

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := New(Options{Workers: 1, Store: st})
	sp := testSpec()
	a, err := o.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("store holds %d runs, want 1", st.Len())
	}

	// A fresh process over the same directory restores without executing.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("reopened store lists %d runs, want 1", st2.Len())
	}
	idx := st2.Index()
	if idx[0].Key != sp.Key() || idx[0].Workload != "mcf" {
		t.Fatalf("index entry = %+v", idx[0])
	}
	o2 := New(Options{Workers: 1, Store: st2})
	b, err := o2.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	stats := o2.Stats()
	if stats.Executed != 0 || stats.Restored != 1 {
		t.Fatalf("resume stats = %+v, want pure restore", stats)
	}
	// The JSON round trip must be exact: restored results are bit-identical
	// to the originally computed ones.
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("restored results differ:\n%+v\nvs\n%+v", a, b)
	}
}

func TestStoreCorruptRecordRecomputes(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec()
	o := New(Options{Workers: 1, Store: st})
	if _, err := o.Run(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	// Truncate the record mid-file, as a kill -9 during a non-atomic write
	// would. The store must treat it as absent.
	path := filepath.Join(dir, "runs", sp.Key()+".json")
	if err := os.WriteFile(path, []byte("{\"version\":\"cosmos-results-v1\""), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get(context.Background(), sp.Key()); ok {
		t.Fatal("corrupt record must read as a miss")
	}
	o2 := New(Options{Workers: 1, Store: st2})
	if _, err := o2.Run(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	if stats := o2.Stats(); stats.Executed != 1 || stats.Restored != 0 {
		t.Fatalf("stats = %+v, want recompute", stats)
	}
	// The recompute healed the store.
	if _, ok := st2.Get(context.Background(), sp.Key()); !ok {
		t.Fatal("recomputed run was not re-persisted")
	}
}

func TestStoreVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec()
	o := New(Options{Workers: 1, Store: st})
	if _, err := o.Run(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "runs", sp.Key()+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangled := []byte(string(b))
	mangled = []byte(replaceOnce(string(mangled), storeVersion, "cosmos-results-v0"))
	if err := os.WriteFile(path, mangled, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get(context.Background(), sp.Key()); ok {
		t.Fatal("version-mismatched record must read as a miss")
	}
}

func TestStoreIndexToleratesPartialLine(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := testSpec()
	o := New(Options{Workers: 1, Store: st})
	if _, err := o.Run(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: a trailing partial line.
	f, err := os.OpenFile(filepath.Join(dir, "index.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"key\":\"deadbeef\","); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != 1 {
		t.Fatalf("index lists %d runs, want the 1 intact entry", st2.Len())
	}
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}
