package runner

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"cosmos/internal/flock"
	"cosmos/internal/sim"
)

// Store layout under its root directory:
//
//	runs/<key>.json   one runRecord per completed simulation, where <key>
//	                  is the spec's canonical content hash (Spec.Key)
//	index.jsonl       one IndexEntry per stored run, append-only
//
// Result files are written atomically (temp file + rename), so a campaign
// killed mid-write never leaves a truncated record behind — at worst the
// cell is missing and gets re-simulated on resume. The index is a cheap,
// human-greppable catalogue; Get reads the result file directly, so a
// missing or stale index line never loses data.

// storeVersion is embedded in every record; mismatching records are treated
// as absent (and recomputed) rather than misread.
const storeVersion = "cosmos-results-v1"

// IndexEntry is one line of index.jsonl: enough to identify the run without
// opening its result file.
type IndexEntry struct {
	Key      string `json:"key"`
	Label    string `json:"label"`
	Workload string `json:"workload"`
	Design   string `json:"design"`
	Accesses uint64 `json:"accesses"`
	Seed     uint64 `json:"seed"`
}

// runRecord is the on-disk form of one completed simulation.
type runRecord struct {
	Version string      `json:"version"`
	Key     string      `json:"key"`
	Spec    Spec        `json:"spec"`
	Results sim.Results `json:"results"`
}

// Store is a persistent, content-addressed result store. Safe for
// concurrent use within a process; across processes it is safe for the
// resume pattern (a reader never observes a partial record).
type Store struct {
	dir string

	// Get outcome counters (atomic: Get runs concurrently from workers,
	// the observability plane reads them live).
	hits    atomic.Uint64 // valid record found and loaded
	misses  atomic.Uint64 // no record on disk
	corrupt atomic.Uint64 // record present but unreadable → recompute
	retries atomic.Uint64 // I/O attempts retried after a transient error

	mu    sync.Mutex
	index map[string]IndexEntry
}

// Transient result-store I/O (a network filesystem hiccup, an EINTR, a
// briefly locked file) is retried with jittered exponential backoff before
// the error is surfaced: storeAttempts tries total, sleeping
// storeRetryBase<<attempt plus up to that much jitter between them.
const storeAttempts = 3

var (
	storeRetryBase = 5 * time.Millisecond
	storeSleep     = sleepCtx // swapped out by tests
)

// sleepCtx sleeps for d or until ctx ends, whichever comes first, so a
// SIGTERM landing during a retry backoff cancels the wait immediately
// instead of sleeping out the jittered delay.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// withRetry runs op up to storeAttempts times, backing off between
// attempts. retryable filters which errors are worth retrying (a missing
// file never is); a nil filter retries everything. Each retried attempt is
// counted in the store's retries counter. Cancelling ctx during a backoff
// aborts the wait at once and surfaces the context error.
func (st *Store) withRetry(ctx context.Context, op func() error, retryable func(error) bool) error {
	var err error
	for attempt := 0; attempt < storeAttempts; attempt++ {
		if attempt > 0 {
			st.retries.Add(1)
			back := storeRetryBase << (attempt - 1)
			if serr := storeSleep(ctx, back+rand.N(back)); serr != nil {
				return fmt.Errorf("runner: store retry aborted: %w", serr)
			}
		}
		if err = op(); err == nil || (retryable != nil && !retryable(err)) {
			return err
		}
	}
	return err
}

// Retries reports how many I/O attempts were retried after transient
// errors (exported to telemetry as runner.store.retries).
func (st *Store) Retries() uint64 { return st.retries.Load() }

// OpenStore opens (creating if needed) a result store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
		return nil, fmt.Errorf("runner: open store: %w", err)
	}
	st := &Store{dir: dir, index: make(map[string]IndexEntry)}
	if err := st.loadIndex(); err != nil {
		return nil, err
	}
	return st, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Len reports how many runs the index lists.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.index)
}

// Index returns a copy of the index entries (unspecified order).
func (st *Store) Index() []IndexEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]IndexEntry, 0, len(st.index))
	for _, e := range st.index {
		out = append(out, e)
	}
	return out
}

func (st *Store) indexPath() string { return filepath.Join(st.dir, "index.jsonl") }

// lockPath is the advisory cross-process lock serialising index.jsonl
// appends: two processes sharing a results dir (a resumed campaign racing a
// straggler, a coordinator next to a stray single-node run) each append
// whole lines instead of interleaving torn ones. flock(2) is released by
// the kernel on process death, so a SIGKILLed writer never wedges the dir.
func (st *Store) lockPath() string { return filepath.Join(st.dir, "index.lock") }

func (st *Store) runPath(key string) string {
	return filepath.Join(st.dir, "runs", key+".json")
}

// loadIndex reads index.jsonl, tolerating a missing file and skipping
// malformed lines (e.g. a partial line from a killed process).
func (st *Store) loadIndex() error {
	f, err := os.Open(st.indexPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("runner: open store index: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var e IndexEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil || e.Key == "" {
			continue
		}
		st.index[e.Key] = e
	}
	if err := sc.Err(); err != nil {
		// A truncated or unreadable tail (killed writer, oversized line)
		// costs only the unparsed entries: Get reads result files directly,
		// so the affected runs recompute instead of failing the open.
		slog.Warn("result store: index read stopped early, keeping parsed prefix",
			"path", st.indexPath(), "entries", len(st.index), "err", err)
	}
	return nil
}

// Get loads the results stored under key. A missing, truncated, corrupt or
// version-mismatched record reports !ok — the orchestrator then simply
// re-simulates, so a damaged store degrades to a slower campaign, never a
// wrong one. Outcomes are counted (see Counters). ctx bounds retry
// backoffs only; a read already in flight finishes.
func (st *Store) Get(ctx context.Context, key string) (sim.Results, bool) {
	var b []byte
	err := st.withRetry(ctx, func() (e error) {
		b, e = os.ReadFile(st.runPath(key))
		return e
	}, func(e error) bool { return !os.IsNotExist(e) })
	if err != nil {
		if os.IsNotExist(err) {
			st.misses.Add(1)
		} else {
			st.recordCorrupt(key, err)
		}
		return sim.Results{}, false
	}
	var rec runRecord
	if err := json.Unmarshal(b, &rec); err != nil {
		st.recordCorrupt(key, err)
		return sim.Results{}, false
	}
	if rec.Version != storeVersion || rec.Key != key {
		st.recordCorrupt(key, fmt.Errorf("version %q / key %q mismatch", rec.Version, rec.Key))
		return sim.Results{}, false
	}
	st.hits.Add(1)
	return rec.Results, true
}

func (st *Store) recordCorrupt(key string, err error) {
	st.corrupt.Add(1)
	slog.Warn("result store: corrupt record, recomputing",
		"path", st.runPath(key), "err", err)
}

// Counters reports the cumulative Get outcomes: valid records loaded,
// absent records, and corrupt records that forced a recompute.
func (st *Store) Counters() (hits, misses, corrupt uint64) {
	return st.hits.Load(), st.misses.Load(), st.corrupt.Load()
}

// Put persists one completed run: the result file is written atomically,
// then the index gains a line under the cross-process index lock.
// Overwriting an existing key is idempotent (identical specs produce
// identical results). ctx bounds retry backoffs only.
func (st *Store) Put(ctx context.Context, key string, spec Spec, r sim.Results) error {
	rec := runRecord{Version: storeVersion, Key: key, Spec: spec, Results: r}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encode run %s: %w", key, err)
	}
	path := st.runPath(key)
	tmp := path + ".tmp"
	if err := st.withRetry(ctx, func() error {
		if e := os.WriteFile(tmp, append(b, '\n'), 0o644); e != nil {
			return e
		}
		return os.Rename(tmp, path)
	}, nil); err != nil {
		os.Remove(tmp)
		return err
	}

	entry := IndexEntry{
		Key:      key,
		Label:    spec.DisplayLabel(),
		Workload: spec.Workload,
		Design:   spec.Design.Name,
		Accesses: spec.Accesses,
		Seed:     spec.Seed,
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.index[key]; dup {
		return nil // already catalogued; result file was refreshed above
	}
	line, err := json.Marshal(entry)
	if err != nil {
		return fmt.Errorf("runner: encode index entry %s: %w", key, err)
	}
	if err := st.withRetry(ctx, func() error {
		return flock.With(st.lockPath(), func() error {
			f, e := os.OpenFile(st.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if e != nil {
				return e
			}
			defer f.Close()
			_, e = f.Write(append(line, '\n'))
			return e
		})
	}, nil); err != nil {
		return err
	}
	st.index[key] = entry
	return nil
}
