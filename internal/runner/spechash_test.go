package runner

import (
	"testing"

	"cosmos/internal/rl"
	"cosmos/internal/secmem"
	"cosmos/internal/sim"
)

// The store keys below were captured before the policy-zoo refactor. They
// must never change for specs that don't use policies: every campaign
// result persisted under runs/<key>.json would otherwise be silently
// recomputed. If one of these fails, a schema change leaked into the
// canonical encoding — make the new field omitempty (or bump hashVersion
// deliberately and accept the store invalidation).
func TestSpecKeyStability(t *testing.T) {
	plain := Spec{
		Workload:   "DFS",
		Design:     secmem.DesignCosmos(),
		Accesses:   300000,
		GraphNodes: 300000,
		Seed:       42,
	}
	if got, want := plain.Key(), "4a8e342aa57a63bb5629b084c76d40617caee148ac7ed7829c4dcf26452520d1"; got != want {
		t.Errorf("plain spec key drifted:\n got %s\nwant %s", got, want)
	}

	cfg := sim.DefaultConfig()
	cfg.MC.Seed = 42
	cfg.MC.Params.Seed = 42
	withCfg := Spec{
		Workload: "mcf",
		Design:   secmem.DesignMorph(),
		Accesses: 100000,
		Seed:     42,
		Config:   &cfg,
	}
	if got, want := withCfg.Key(), "e715ad375968e86b941224029c7bd7b770862715cfae6b82b1aa64e48bd94268"; got != want {
		t.Errorf("config spec key drifted:\n got %s\nwant %s", got, want)
	}

	// A policy spec must change the key (different machine, different run)…
	polCfg := cfg
	polCfg.MC.Params.CtrPolicy = &rl.PolicySpec{Kind: rl.KindPerceptron}
	withPol := withCfg
	withPol.Config = &polCfg
	if withPol.Key() == withCfg.Key() {
		t.Error("policy spec did not enter the hash")
	}
	// …and an explicitly nil policy must not (omitempty keeps it invisible).
	nilPol := cfg
	nilPol.MC.Params.CtrPolicy = nil
	withNil := withCfg
	withNil.Config = &nilPol
	if withNil.Key() != withCfg.Key() {
		t.Error("nil policy changed the hash — omitempty broken")
	}
}
