package runner

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadIndex feeds arbitrary bytes to the store's index.jsonl parser.
// The contract under corruption is graceful degradation: OpenStore never
// panics and never errors on a damaged index (damaged entries just
// recompute), and any well-formed line that survived the damage is kept.
func FuzzLoadIndex(f *testing.F) {
	f.Add([]byte(`{"key":"abc","label":"l","workload":"mcf","design":"NP","accesses":1,"seed":7}` + "\n"))
	f.Add([]byte(`{"key":"abc"`))                           // truncated mid-object
	f.Add([]byte("{\"key\":\"a\"}\n{\"key\":"))             // valid line + partial tail
	f.Add([]byte("\x00\xff\xfe garbage \n not json \n"))    // binary noise
	f.Add([]byte(`{"key":""}` + "\n"))                      // empty key: skipped
	f.Add([]byte(`[1,2,3]` + "\n" + `{"key":"ok"}` + "\n")) // wrong JSON shape then valid
	f.Add([]byte{})
	// Torn concurrent appends: two unlocked writers interleaving their
	// lines mid-record, the failure mode the index flock exists to prevent.
	f.Add([]byte(`{"key":"a","lab{"key":"b","label":"w2"}` + "\n" + `el":"w1"}` + "\n"))
	f.Add([]byte(`{"key":"a"}{"key":"b"}` + "\n"))  // two records fused on one line
	f.Add([]byte(`{"key":"a"}` + "\n{\"key\":\"b")) // second writer killed mid-line
	f.Fuzz(func(t *testing.T, index []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "index.jsonl"), index, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("OpenStore must tolerate a corrupt index: %v", err)
		}
		// The parsed entries must be internally consistent, whatever survived.
		if got := len(st.Index()); got != st.Len() {
			t.Fatalf("Index() lists %d entries, Len() says %d", got, st.Len())
		}
		for _, e := range st.Index() {
			if e.Key == "" {
				t.Fatal("empty-key entry kept")
			}
		}
	})
}

// FuzzIndexTornAppend sandwiches arbitrary torn-write garbage between two
// intact index lines — the shape a crashed or unlocked concurrent writer
// leaves behind. Whatever the garbage, the two whole lines must survive:
// corruption costs only the damaged entries, never the healthy prefix or
// suffix.
func FuzzIndexTornAppend(f *testing.F) {
	f.Add([]byte(`{"key":"c","lab`))                        // half a record
	f.Add([]byte(`{"key":"c","lab{"key":"d","label":"x"}`)) // interleaved pair
	f.Add([]byte("\x00\xff torn binary"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, torn []byte) {
		// Keep the torn chunk on its own line(s) — that is exactly what the
		// flock guarantees for the intact writers around it.
		torn = bytes.TrimRight(torn, "\n")
		index := []byte(`{"key":"first","label":"w1","workload":"mcf","design":"NP","accesses":1,"seed":7}` + "\n")
		index = append(index, torn...)
		index = append(index, '\n')
		index = append(index, []byte(`{"key":"last","label":"w2","workload":"DFS","design":"COSMOS","accesses":2,"seed":8}`+"\n")...)

		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "index.jsonl"), index, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("OpenStore must tolerate torn appends: %v", err)
		}
		seen := map[string]bool{}
		for _, e := range st.Index() {
			seen[e.Key] = true
		}
		if !seen["first"] || !seen["last"] {
			t.Fatalf("intact lines lost around torn append: kept %v", seen)
		}
	})
}
