package runner

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadIndex feeds arbitrary bytes to the store's index.jsonl parser.
// The contract under corruption is graceful degradation: OpenStore never
// panics and never errors on a damaged index (damaged entries just
// recompute), and any well-formed line that survived the damage is kept.
func FuzzLoadIndex(f *testing.F) {
	f.Add([]byte(`{"key":"abc","label":"l","workload":"mcf","design":"NP","accesses":1,"seed":7}` + "\n"))
	f.Add([]byte(`{"key":"abc"`))                           // truncated mid-object
	f.Add([]byte("{\"key\":\"a\"}\n{\"key\":"))             // valid line + partial tail
	f.Add([]byte("\x00\xff\xfe garbage \n not json \n"))    // binary noise
	f.Add([]byte(`{"key":""}` + "\n"))                      // empty key: skipped
	f.Add([]byte(`[1,2,3]` + "\n" + `{"key":"ok"}` + "\n")) // wrong JSON shape then valid
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, index []byte) {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "runs"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "index.jsonl"), index, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatalf("OpenStore must tolerate a corrupt index: %v", err)
		}
		// The parsed entries must be internally consistent, whatever survived.
		if got := len(st.Index()); got != st.Len() {
			t.Fatalf("Index() lists %d entries, Len() says %d", got, st.Len())
		}
		for _, e := range st.Index() {
			if e.Key == "" {
				t.Fatal("empty-key entry kept")
			}
		}
	})
}
