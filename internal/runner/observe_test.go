package runner

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cosmos/internal/telemetry"
)

// transitionLog collects Lifecycle transitions thread-safely.
type transitionLog struct {
	mu sync.Mutex
	ts []Transition
}

func (l *transitionLog) observe(t Transition) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ts = append(l.ts, t)
}

func (l *transitionLog) phases() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, len(l.ts))
	for i, t := range l.ts {
		out[i] = t.Phase.String() + "/" + t.Source.String()
	}
	return out
}

func TestLifecycleExecutedThenMemoised(t *testing.T) {
	o := New(Options{Workers: 1})
	var lg transitionLog
	o.Lifecycle = lg.observe

	if _, err := o.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}

	got := lg.phases()
	want := []string{
		"queued/executed", // Source is zero-valued before Done
		"running/executed",
		"done/executed",
		"done/memoised",
	}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, got[i], want[i], got)
		}
	}

	lg.mu.Lock()
	exec := lg.ts[2]
	lg.mu.Unlock()
	if exec.Key == "" || exec.Label != "mcf_COSMOS" || exec.ExecTime <= 0 {
		t.Fatalf("executed Done transition = %+v", exec)
	}
}

func TestLifecycleDedupFollower(t *testing.T) {
	o := New(Options{Workers: 1})
	var lg transitionLog
	o.Lifecycle = lg.observe

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := o.Run(context.Background(), testSpec()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	var done, dedup int
	for _, p := range lg.phases() {
		if strings.HasPrefix(p, "done/") {
			done++
		}
		if p == "done/deduplicated" {
			dedup++
		}
	}
	// Every request terminates exactly once; followers (if any coalesced)
	// emit only a bare Done.
	if done != 3 {
		t.Fatalf("done transitions = %d, want 3 (%v)", done, lg.phases())
	}
	st := o.Stats()
	if uint64(dedup) != st.Deduplicated {
		t.Fatalf("dedup transitions = %d, stats say %d", dedup, st.Deduplicated)
	}
}

func TestLifecycleFailurePhases(t *testing.T) {
	o := New(Options{Workers: 1})
	var lg transitionLog
	o.Lifecycle = lg.observe
	sp := testSpec()
	sp.Workload = "no-such-workload"
	if _, err := o.Run(context.Background(), sp); err == nil {
		t.Fatal("want error")
	}
	got := lg.phases()
	last := got[len(got)-1]
	if last != "done/executed" {
		t.Fatalf("terminal transition = %q (%v)", last, got)
	}
	lg.mu.Lock()
	if lg.ts[len(lg.ts)-1].Err == nil {
		t.Fatal("terminal transition must carry the error")
	}
	lg.mu.Unlock()
}

func TestStoreCountersThroughOrchestrator(t *testing.T) {
	dir := t.TempDir()
	store1, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o1 := New(Options{Workers: 1, Store: store1})
	if _, err := o1.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	if h, m, c := store1.Counters(); h != 0 || m != 1 || c != 0 {
		t.Fatalf("first run counters = %d/%d/%d, want 0/1/0", h, m, c)
	}

	// A fresh orchestrator over the same dir restores from disk: one hit.
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o2 := New(Options{Workers: 1, Store: store2})
	if _, err := o2.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	if h, m, c := store2.Counters(); h != 1 || m != 0 || c != 0 {
		t.Fatalf("resume counters = %d/%d/%d, want 1/0/0", h, m, c)
	}

	// Truncate the record: the next process sees a corrupt file, counts it
	// and recomputes.
	key := testSpec().normalized().Key()
	path := filepath.Join(dir, "runs", key+".json")
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	store3, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	o3 := New(Options{Workers: 1, Store: store3})
	if _, err := o3.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	if h, m, c := store3.Counters(); h != 0 || c != 1 {
		t.Fatalf("corrupt counters = %d/%d/%d, want 0 hits, 1 corrupt", h, m, c)
	}
	if st := o3.Stats(); st.Executed != 1 {
		t.Fatalf("corrupt record must recompute, stats = %+v", st)
	}
}

func TestRegisterMetricsStoreScope(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := New(Options{Workers: 1, Store: store})
	reg := telemetry.NewRegistry()
	o.RegisterMetrics(reg.Root())

	if _, err := o.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Run(context.Background(), testSpec()); err != nil { // memo hit
		t.Fatal(err)
	}

	want := map[string]uint64{
		"runner.store.memo_hits":          1,
		"runner.store.hits":               0,
		"runner.store.misses":             1,
		"runner.store.corrupt_recomputed": 0,
		"runner.runs_executed":            1,
	}
	got := map[string]uint64{}
	for _, s := range reg.Snapshot() {
		got[s.Name] = s.Counter
	}
	for name, v := range want {
		cur, ok := got[name]
		if !ok {
			t.Errorf("metric %s not registered", name)
			continue
		}
		if cur != v {
			t.Errorf("%s = %d, want %d", name, cur, v)
		}
	}
}
