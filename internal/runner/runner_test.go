package runner

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cosmos/internal/secmem"
	"cosmos/internal/sim"
	"cosmos/internal/telemetry"
)

// testSpec is a fast cell (a SPEC-like kernel, no graph build).
func testSpec() Spec {
	return Spec{Workload: "mcf", Design: secmem.DesignCosmos(), Accesses: 20_000, Seed: 7}
}

func TestSpecKeyCanonical(t *testing.T) {
	a := testSpec()
	b := testSpec()
	b.Label = "custom-label" // display only: must not enter the hash
	if a.Key() != b.Key() {
		t.Fatal("label must not change the key")
	}
	c := testSpec()
	c.Cores = 4 // normalisation: 0 means 4
	if a.Key() != c.Key() {
		t.Fatal("cores 0 and 4 must share a key")
	}
	d := testSpec()
	d.Seed = 8
	if a.Key() == d.Key() {
		t.Fatal("different seeds must hash differently")
	}
	e := testSpec()
	cfg := sim.DefaultConfig()
	e.Config = &cfg
	if a.Key() == e.Key() {
		t.Fatal("a custom config must hash differently")
	}
}

func TestSpecDisplayLabel(t *testing.T) {
	sp := testSpec()
	if got := sp.DisplayLabel(); got != "mcf_COSMOS" {
		t.Fatalf("label = %q", got)
	}
	// RMCC's LFU policy is part of the design, not a tweak: plain label.
	sp.Design = secmem.DesignRMCC()
	if got := sp.DisplayLabel(); got != "mcf_RMCC" {
		t.Fatalf("RMCC label = %q", got)
	}
	// An actual override shows up.
	sp.Design = secmem.DesignCosmosDP()
	sp.Design.CtrPolicy = "SHiP"
	if got := sp.DisplayLabel(); got != "mcf_COSMOS-DP_SHiP" {
		t.Fatalf("tweaked label = %q", got)
	}
	sp.Label = "my run!"
	if got := sp.DisplayLabel(); got != "my-run-" {
		t.Fatalf("sanitised override = %q", got)
	}
}

func TestRunMemoises(t *testing.T) {
	o := New(Options{Workers: 1})
	a, err := o.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := o.Run(context.Background(), testSpec())
	if err != nil {
		t.Fatal(err)
	}
	st := o.Stats()
	if st.Executed != 1 || st.Memoised != 1 {
		t.Fatalf("stats = %+v, want one executed + one memoised", st)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("memoised result differs from executed one")
	}
	// Memoised returns must not alias the cached predictor stats.
	if a.DataPred != nil && a.DataPred == b.DataPred {
		t.Fatal("memo returned an aliased pointer")
	}
}

func TestRunSingleflight(t *testing.T) {
	o := New(Options{Workers: 4})
	release := make(chan struct{})
	o.Instrument = func(label string, s *sim.System) func() {
		<-release // hold the leader mid-execution
		return nil
	}

	var wg sync.WaitGroup
	results := make([]sim.Results, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = o.Run(context.Background(), testSpec())
		}()
	}
	// Wait until the second request has coalesced onto the first, then let
	// the leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for o.Stats().Deduplicated == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never deduplicated")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	st := o.Stats()
	if st.Executed != 1 {
		t.Fatalf("executed %d simulations, want 1", st.Executed)
	}
	if st.Deduplicated != 1 {
		t.Fatalf("deduplicated %d requests, want 1", st.Deduplicated)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("deduplicated result differs from executed one")
	}
}

func TestRunCancelled(t *testing.T) {
	o := New(Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := o.Run(ctx, testSpec())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := o.Stats(); st.Failed != 1 {
		t.Fatalf("stats = %+v, want one failure", st)
	}
	// A failed run is not memoised: a fresh context re-executes it.
	if _, err := o.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	if st := o.Stats(); st.Executed != 1 {
		t.Fatalf("retry after cancellation executed %d, want 1", st.Executed)
	}
}

func TestRunPanicBecomesError(t *testing.T) {
	o := New(Options{Workers: 1})
	o.Instrument = func(label string, s *sim.System) func() {
		panic("instrument blew up")
	}
	_, err := o.Run(context.Background(), testSpec())
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Label != "mcf_COSMOS" || len(pe.Stack) == 0 {
		t.Fatalf("panic error incomplete: %+v", pe)
	}
	// The failed cell stays retryable.
	o.Instrument = nil
	if _, err := o.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	o := New(Options{Workers: 1})
	sp := testSpec()
	sp.Workload = "no-such-workload"
	if _, err := o.Run(context.Background(), sp); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	specs := []Spec{testSpec()}
	second := testSpec()
	second.Seed = 9
	specs = append(specs, second)

	run := func(workers int) []sim.Results {
		o := New(Options{Workers: workers})
		var out []sim.Results
		for _, sp := range specs {
			r, err := o.Run(context.Background(), sp)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, r)
		}
		return out
	}
	if !reflect.DeepEqual(run(1), run(8)) {
		t.Fatal("results depend on worker count")
	}
}

func TestRegisterMetrics(t *testing.T) {
	o := New(Options{Workers: 1})
	reg := telemetry.NewRegistry()
	o.RegisterMetrics(reg.Root())
	want := []string{
		"runner.exec_time_us", "runner.queue_wait_us",
		"runner.runs_deduplicated", "runner.runs_executed",
		"runner.runs_failed", "runner.runs_memoised", "runner.runs_restored",
		"runner.store.memo_hits",
	}
	if got := reg.SortedNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("metric names = %v, want %v", got, want)
	}
	if _, err := o.Run(context.Background(), testSpec()); err != nil {
		t.Fatal(err)
	}
	// One executed run must be visible through a sampler flush.
	var buf bytes.Buffer
	sp, err := telemetry.NewSampler(reg, telemetry.SamplerConfig{Interval: 1, JSONL: &buf})
	if err != nil {
		t.Fatal(err)
	}
	sp.Flush(1)
	if !strings.Contains(buf.String(), `"runner.runs_executed":1`) {
		t.Fatalf("sampled row missing executed count: %s", buf.String())
	}
}

func TestRunAllReturnsFirstError(t *testing.T) {
	o := New(Options{Workers: 2})
	bad := testSpec()
	bad.Workload = "no-such-workload"
	err := o.RunAll(context.Background(), []Spec{testSpec(), bad})
	if err == nil {
		t.Fatal("RunAll must surface the failing spec")
	}
	if st := o.Stats(); st.Executed != 1 {
		t.Fatalf("good spec should still execute, stats = %+v", st)
	}
}
