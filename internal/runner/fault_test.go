package runner

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cosmos/internal/fault"
	"cosmos/internal/sim"
)

// faultSpec is testSpec plus a fault campaign.
func faultSpec(seed uint64) Spec {
	sp := testSpec()
	sp.Seed = seed
	sp.Fault = &fault.Config{Seed: 17, Rate: 2e-4}
	return sp
}

func TestSpecFaultEntersHash(t *testing.T) {
	plain := testSpec()
	faulted := faultSpec(plain.Seed)
	if plain.Key() == faulted.Key() {
		t.Fatal("a fault campaign must change the spec key")
	}
	reseeded := faulted
	reseeded.Fault = &fault.Config{Seed: 18, Rate: 2e-4}
	if faulted.Key() == reseeded.Key() {
		t.Fatal("the fault seed must enter the hash")
	}
	if !strings.Contains(faulted.DisplayLabel(), "_fault") {
		t.Fatalf("fault run label %q should be distinguishable", faulted.DisplayLabel())
	}
}

func TestSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		f    func(*Spec)
		want string
	}{
		{"empty workload", func(s *Spec) { s.Workload = "" }, "empty workload"},
		{"empty design", func(s *Spec) { s.Design.Name = "" }, "empty design"},
		{"zero accesses", func(s *Spec) { s.Accesses = 0 }, "zero accesses"},
		{"negative cores", func(s *Spec) { s.Cores = -2 }, "negative core count"},
		{"bad fault", func(s *Spec) { s.Fault = &fault.Config{Rate: 7} }, "outside [0, 1]"},
		{"bad config", func(s *Spec) {
			cfg := sim.DefaultConfig()
			cfg.MC.MemBytes = 0
			s.Config = &cfg
		}, "memory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := testSpec()
			tc.f(&sp)
			err := sp.Validate()
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestMalformedSpecFailsAsError(t *testing.T) {
	o := New(Options{Workers: 1})
	sp := testSpec()
	sp.Workload = ""
	if _, err := o.Run(context.Background(), sp); err == nil {
		t.Fatal("orchestrator executed a malformed spec")
	}
}

// TestFaultResultsDeterministicAcrossWorkers is the cross-worker leg of the
// fault determinism contract: the same fault specs produce bit-identical
// Results (fault report included) whether the campaign runs on one worker or
// many in parallel.
func TestFaultResultsDeterministicAcrossWorkers(t *testing.T) {
	specs := []Spec{faultSpec(7), faultSpec(8), faultSpec(9)}
	run := func(workers int) []sim.Results {
		o := New(Options{Workers: workers})
		out := make([]sim.Results, len(specs))
		var wg sync.WaitGroup
		for i, sp := range specs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r, err := o.Run(context.Background(), sp)
				if err != nil {
					t.Error(err)
					return
				}
				out[i] = r
			}()
		}
		wg.Wait()
		return out
	}
	serial := run(1)
	parallel := run(4)
	if t.Failed() {
		t.FailNow()
	}
	for i := range specs {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("spec %d results diverge across worker counts:\n%+v\nvs\n%+v",
				i, serial[i], parallel[i])
		}
		if serial[i].Fault == nil || serial[i].Fault.Injected == 0 {
			t.Fatalf("spec %d injected nothing: %+v", i, serial[i].Fault)
		}
	}
}

// TestFaultResultsSurviveStoreRoundTrip: the fault report persists and
// restores bit-identically, and the faulted key never collides with the
// fault-free one.
func TestFaultResultsSurviveStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp := faultSpec(7)
	o := New(Options{Workers: 1, Store: st})
	a, err := o.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	o2 := New(Options{Workers: 1, Store: st})
	b, err := o2.Run(context.Background(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if stats := o2.Stats(); stats.Restored != 1 || stats.Executed != 0 {
		t.Fatalf("stats = %+v, want pure restore", stats)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("restored fault results differ from computed ones")
	}
	if b.Fault == nil || b.Fault.Injected == 0 {
		t.Fatalf("fault report lost in the store round trip: %+v", b.Fault)
	}
}

func TestWithRetryTransient(t *testing.T) {
	defer func(s func(context.Context, time.Duration) error) { storeSleep = s }(storeSleep)
	var slept []time.Duration
	storeSleep = func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil }

	ctx := context.Background()
	st := &Store{}
	fails := 2
	err := st.withRetry(ctx, func() error {
		if fails > 0 {
			fails--
			return errors.New("transient")
		}
		return nil
	}, nil)
	if err != nil {
		t.Fatalf("retryable op failed despite recovery: %v", err)
	}
	if st.Retries() != 2 || len(slept) != 2 {
		t.Fatalf("retries = %d, sleeps = %d, want 2 each", st.Retries(), len(slept))
	}
	// Exponential backoff: the second wait draws from a doubled base.
	if slept[1] < storeRetryBase<<1 || slept[1] > storeRetryBase<<2 {
		t.Fatalf("second backoff %v outside [2x, 4x) base", slept[1])
	}

	// A permanent failure is retried to the attempt budget, then surfaced.
	st2 := &Store{}
	calls := 0
	if err := st2.withRetry(ctx, func() error { calls++; return errors.New("down") }, nil); err == nil {
		t.Fatal("permanent failure swallowed")
	}
	if calls != storeAttempts {
		t.Fatalf("op ran %d times, want %d", calls, storeAttempts)
	}

	// A non-retryable error surfaces immediately.
	st3 := &Store{}
	calls = 0
	sentinel := errors.New("missing")
	err = st3.withRetry(ctx, func() error { calls++; return sentinel }, func(error) bool { return false })
	if !errors.Is(err, sentinel) || calls != 1 || st3.Retries() != 0 {
		t.Fatalf("non-retryable error retried: calls=%d retries=%d err=%v", calls, st3.Retries(), err)
	}
}

// TestWithRetryCancelDuringBackoff proves a context cancelled while the
// retry loop is backing off aborts the wait immediately: the op does not
// run again and the surfaced error is the context's.
func TestWithRetryCancelDuringBackoff(t *testing.T) {
	st := &Store{}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := st.withRetry(ctx, func() error {
		calls++
		cancel() // the SIGTERM lands while the first backoff is pending
		return errors.New("transient")
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times after cancellation, want 1", calls)
	}
}
