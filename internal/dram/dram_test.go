package dram

import "testing"

func TestRowBufferHit(t *testing.T) {
	m := New(Config{})
	l1 := m.Access(0, 0, false)      // cold: activate + CAS
	l2 := m.Access(10000, 64, false) // same row, idle bank: CAS only
	if l2 >= l1 {
		t.Fatalf("row hit latency %d should be below cold access %d", l2, l1)
	}
	if m.Stats.RowHits != 1 || m.Stats.RowMisses != 1 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

func TestRowConflict(t *testing.T) {
	m := New(Config{})
	nbanks := uint64(len(m.freeAt))
	rowBytes := m.cfg.RowBytes
	m.Access(0, 0, false)
	// Same bank, different row: needs precharge + activate + CAS.
	conflictAddr := rowBytes * nbanks
	l := m.Access(100000, conflictAddr, false)
	want := m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS + m.cfg.TBus + m.cfg.Queue
	if l != want {
		t.Fatalf("conflict latency %d, want %d", l, want)
	}
}

func TestBankBusyQueueing(t *testing.T) {
	m := New(Config{})
	l1 := m.Access(0, 0, false)
	// Immediate second access to the same bank must wait for the first.
	l2 := m.Access(0, 64, false)
	if l2 <= m.MinReadLatency() {
		t.Fatalf("back-to-back same-bank access latency %d should include queueing (>%d)", l2, m.MinReadLatency())
	}
	if l2 != l1+m.MinReadLatency() {
		t.Fatalf("expected wait %d + service %d, got %d", l1, m.MinReadLatency(), l2)
	}
	if m.Stats.BusyStalls == 0 {
		t.Fatal("busy stalls not recorded")
	}
}

func TestBankParallelism(t *testing.T) {
	m := New(Config{})
	// Accesses to different banks at the same instant don't queue.
	l1 := m.Access(0, 0, false)
	l2 := m.Access(0, m.cfg.RowBytes, false) // next row → different bank
	if l2 != l1 {
		t.Fatalf("parallel banks should see equal cold latency: %d vs %d", l1, l2)
	}
}

func TestReadWriteCounting(t *testing.T) {
	m := New(Config{})
	m.Access(0, 0, false)
	m.Access(0, 1<<20, true)
	m.Access(0, 2<<20, true)
	if m.Stats.Reads != 1 || m.Stats.Writes != 2 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

func TestRowHitRate(t *testing.T) {
	m := New(Config{})
	for i := uint64(0); i < 128; i++ {
		m.Access(i*1000, i*64, false) // sequential within one row (8KB)
	}
	if r := m.Stats.RowHitRate(); r < 0.9 {
		t.Fatalf("sequential stream row-hit rate = %v, want ≥0.9", r)
	}
	var empty Stats
	if empty.RowHitRate() != 0 {
		t.Fatal("empty stats should report 0")
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	m := New(Config{Channels: 1})
	if m.cfg.TCAS == 0 || m.cfg.RowBytes == 0 || m.cfg.BanksPer == 0 {
		t.Fatalf("defaults not applied: %+v", m.cfg)
	}
	if m.MinReadLatency() != m.cfg.TCAS+m.cfg.TBus+m.cfg.Queue {
		t.Fatal("MinReadLatency inconsistent")
	}
}
