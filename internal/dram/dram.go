// Package dram models a DDR4-2400-like main memory: channels, banks, open
// row buffers, and bank busy times, matching the DDR4_2400_16x4 device the
// paper configures in Table 3. Latencies are expressed in 3GHz core cycles
// so the rest of the simulator works in a single clock domain.
package dram

import (
	"fmt"

	"cosmos/internal/telemetry"
)

// Config describes the device geometry and timing (all times in core
// cycles at 3GHz; DDR4-2400 CL17 ≈ 14.2ns ≈ 42 cycles).
type Config struct {
	Channels int
	BanksPer int // banks per channel (rank×bankgroup×bank flattened)
	RowBytes uint64

	TCAS  uint64 // column access (row-buffer hit)
	TRCD  uint64 // activate
	TRP   uint64 // precharge
	TBus  uint64 // data burst on the bus
	Queue uint64 // fixed controller queueing/processing overhead
}

// DefaultConfig returns the Table 3 device: DDR4_2400_16x4, 32GB.
func DefaultConfig() Config {
	return Config{
		Channels: 2,
		BanksPer: 16,
		RowBytes: 8192,
		TCAS:     42,
		TRCD:     42,
		TRP:      42,
		TBus:     8,
		Queue:    10,
	}
}

// Validate rejects geometry New cannot model sensibly. Zero-valued fields
// are legal (New substitutes the Table 3 defaults); negative counts and
// non-power-of-two row sizes are not.
func (c Config) Validate() error {
	if c.Channels < 0 {
		return fmt.Errorf("dram: negative channel count %d", c.Channels)
	}
	if c.BanksPer < 0 {
		return fmt.Errorf("dram: negative banks-per-channel %d", c.BanksPer)
	}
	if c.RowBytes != 0 && (c.RowBytes < 64 || c.RowBytes&(c.RowBytes-1) != 0) {
		return fmt.Errorf("dram: row size %d not a power of two >= 64", c.RowBytes)
	}
	return nil
}

// Stats accumulates DRAM behaviour counters.
type Stats struct {
	Reads      uint64
	Writes     uint64
	RowHits    uint64
	RowMisses  uint64
	BusyStalls uint64 // cycles spent waiting for a busy bank
}

// RowHitRate reports the fraction of accesses that hit an open row.
func (s Stats) RowHitRate() float64 {
	n := s.Reads + s.Writes
	if n == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(n)
}

// Model is the DRAM timing model. It is driven with (now, address) pairs and
// returns per-access latency, tracking open rows and bank availability.
type Model struct {
	cfg     Config
	openRow []int64  // per-bank open row (-1 = closed)
	freeAt  []uint64 // per-bank earliest next-command time

	Stats Stats
}

// New builds a model from cfg (zero-valued fields fall back to defaults).
func New(cfg Config) *Model {
	def := DefaultConfig()
	if cfg.Channels <= 0 {
		cfg.Channels = def.Channels
	}
	if cfg.BanksPer <= 0 {
		cfg.BanksPer = def.BanksPer
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = def.RowBytes
	}
	if cfg.TCAS == 0 {
		cfg.TCAS = def.TCAS
	}
	if cfg.TRCD == 0 {
		cfg.TRCD = def.TRCD
	}
	if cfg.TRP == 0 {
		cfg.TRP = def.TRP
	}
	if cfg.TBus == 0 {
		cfg.TBus = def.TBus
	}
	nbanks := cfg.Channels * cfg.BanksPer
	m := &Model{cfg: cfg, openRow: make([]int64, nbanks), freeAt: make([]uint64, nbanks)}
	for i := range m.openRow {
		m.openRow[i] = -1
	}
	return m
}

// RegisterMetrics registers the DRAM behaviour counters and the
// per-interval row-hit rate under the given telemetry scope.
func (m *Model) RegisterMetrics(s *telemetry.Scope) {
	s.Counter("reads", &m.Stats.Reads)
	s.Counter("writes", &m.Stats.Writes)
	s.Counter("row_hits", &m.Stats.RowHits)
	s.Counter("row_misses", &m.Stats.RowMisses)
	s.Counter("busy_stalls", &m.Stats.BusyStalls)
	s.Rate("row_hit_rate",
		func() uint64 { return m.Stats.RowHits },
		func() uint64 { return m.Stats.Reads + m.Stats.Writes })
}

// bankOf maps an address to a bank using row-interleaved placement: bits
// above the row select channel and bank so sequential rows spread across
// banks.
func (m *Model) bankOf(addr uint64) (bank int, row int64) {
	rowNum := addr / m.cfg.RowBytes
	nbanks := uint64(len(m.freeAt))
	return int(rowNum % nbanks), int64(rowNum / nbanks)
}

// Access simulates one 64B read or write beginning no earlier than `now`,
// returning the access latency in cycles (including any wait for the bank).
func (m *Model) Access(now uint64, addr uint64, write bool) uint64 {
	if write {
		m.Stats.Writes++
	} else {
		m.Stats.Reads++
	}
	bank, row := m.bankOf(addr)

	start := now
	if m.freeAt[bank] > start {
		m.Stats.BusyStalls += m.freeAt[bank] - start
		start = m.freeAt[bank]
	}

	var service uint64
	if m.openRow[bank] == row {
		m.Stats.RowHits++
		service = m.cfg.TCAS
	} else {
		m.Stats.RowMisses++
		if m.openRow[bank] >= 0 {
			service = m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS
		} else {
			service = m.cfg.TRCD + m.cfg.TCAS
		}
		m.openRow[bank] = row
	}
	service += m.cfg.TBus + m.cfg.Queue

	m.freeAt[bank] = start + service
	return (start - now) + service
}

// MinReadLatency reports the best-case (row hit, idle bank) read latency.
func (m *Model) MinReadLatency() uint64 {
	return m.cfg.TCAS + m.cfg.TBus + m.cfg.Queue
}
