package dram

import (
	"cosmos/internal/memsys"
	"cosmos/internal/telemetry"
)

// Level adapts the DRAM timing model to the memsys.Level interface: a flat
// memory terminal with no metadata machinery. It is the end of the chain
// for non-protected hierarchies (the secure terminal is secmem.Level) —
// every access reaches the device, writebacks are absorbed as row writes.
type Level struct {
	m *Model
}

// NewLevel wraps m as a hierarchy terminal.
func NewLevel(m *Model) *Level { return &Level{m: m} }

// Model exposes the underlying timing model.
func (l *Level) Model() *Model { return l.m }

// Name implements memsys.Level.
func (l *Level) Name() string { return "dram" }

// Latency implements memsys.Level: the best-case (row hit, idle bank) read
// latency; actual access cost is reported per request by Access.
func (l *Level) Latency() uint64 { return l.m.MinReadLatency() }

// Access implements memsys.Level: memory never misses.
func (l *Level) Access(r memsys.Request) memsys.Response {
	return memsys.Response{
		Hit:     true,
		Latency: l.m.Access(r.Now, r.Line<<memsys.LineOffsetBits, r.Write),
	}
}

// Writeback absorbs a dirty victim as a DRAM write.
func (l *Level) Writeback(r memsys.Request) {
	l.m.Access(r.Now, r.Line<<memsys.LineOffsetBits, true)
}

// RegisterMetrics implements memsys.Level.
func (l *Level) RegisterMetrics(s *telemetry.Scope) { l.m.RegisterMetrics(s) }

// ResetStats implements memsys.Level.
func (l *Level) ResetStats() { l.m.Stats = Stats{} }
