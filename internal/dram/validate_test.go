package dram

import "testing"

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must be valid (New substitutes defaults): %v", err)
	}
	if err := (Config{Channels: 4, BanksPer: 16, RowBytes: 8192}).Validate(); err != nil {
		t.Fatalf("explicit valid config rejected: %v", err)
	}
	bad := []Config{
		{Channels: -1},
		{BanksPer: -8},
		{RowBytes: 100},
		{RowBytes: 32}, // below one line
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}
