package memsys

import "cosmos/internal/telemetry"

// This file defines the request/port vocabulary of the memory hierarchy:
// every storage layer a memory access can visit — data caches, metadata
// caches, the secure-memory terminal, raw DRAM — speaks the same Level
// interface, so the simulator's access path is a composed chain of levels
// rather than a set of hard-wired fields (gem5's cpu_side/mem_side port
// style). A demand access walks the chain top-down via Access; dirty
// victims cascade down the chain via Writeback, each level deciding only
// where its own victims go.

// SigWriteback is the region signature carried by writeback installs, so
// PC-indexed replacement policies (SHiP, Mockingjay) can distinguish dirty
// victims arriving from above from demand fills.
const SigWriteback uint16 = 59999

// Request is one command sent to a Level: a demand lookup (Write marks
// stores), or — when Sig is SigWriteback — the installation of a dirty
// victim evicted by the level above.
type Request struct {
	// Line is the cache-line number (Addr >> 6).
	Line uint64
	// Write marks stores (demand) or dirty installs (writebacks).
	Write bool
	// Sig tags the access's code region for PC-indexed structures.
	Sig uint16
	// Core is the issuing core, selecting per-core metadata structures
	// (CTR/MAC caches) at the secure-memory terminal.
	Core int
	// Now is the issuing thread's clock, feeding DRAM bank timing.
	Now uint64
}

// Response reports the outcome of a Level access.
type Response struct {
	// Hit reports whether the line was present at this level.
	Hit bool
	// Latency is what the access cost at this level: the fixed lookup
	// latency for on-chip caches, the modelled DRAM latency for memory
	// terminals.
	Latency uint64
	// Evicted/EvictedLine/EvictedDirty describe the victim this access
	// displaced, after any writeback cascade it triggered has completed.
	Evicted      bool
	EvictedLine  uint64
	EvictedDirty bool
	// Poisoned marks data returned from a line the fault plane quarantined
	// after exhausting its retry budget: the value is not trustworthy, but
	// the access completes (graceful degradation rather than a halt).
	Poisoned bool
}

// Level is one layer of the memory hierarchy. Implementations: cache.Level
// (set-associative on-chip caches), secmem.Level (the secure-memory
// terminal: data DRAM plus counter/MAC/Merkle metadata) and dram.Level (a
// bare DRAM terminal). A level owns its downstream link: Access installs
// the line and forwards any dirty victim to the level below via Writeback,
// so callers never see a writeback escape the chain.
type Level interface {
	// Name labels the level ("l1", "llc", "mem"); it also names the
	// level's telemetry scope.
	Name() string
	// Latency is the fixed lookup cost of probing this level, charged
	// whether the access hits or misses.
	Latency() uint64
	// Access performs a demand lookup, filling on miss and cascading any
	// dirty victim down the chain before returning.
	Access(Request) Response
	// Writeback installs a dirty victim evicted by the level above,
	// cascading its own victim further down. Terminal levels absorb the
	// write (data DRAM write plus secure-metadata updates).
	Writeback(Request)
	// RegisterMetrics registers the level's counters under the scope.
	RegisterMetrics(*telemetry.Scope)
	// ResetStats zeroes measurements while keeping learned state.
	ResetStats()
}
