// Package memsys defines the fundamental memory-system vocabulary shared by
// every other package in this repository: physical addresses, cache-line
// geometry, memory accesses, and address-space layout helpers used by the
// workload generators to emit realistic virtual address streams.
package memsys

import "fmt"

// Cache-line geometry. The entire simulator works in units of 64-byte lines,
// matching the paper's configuration (Table 3).
const (
	LineSize       = 64
	LineOffsetBits = 6
	PageSize       = 4096
	PageOffsetBits = 12
)

// Addr is a physical byte address.
type Addr uint64

// Line returns the cache-line index of the address (addr / 64).
func (a Addr) Line() uint64 { return uint64(a) >> LineOffsetBits }

// LineAddr returns the address rounded down to its cache-line boundary.
func (a Addr) LineAddr() Addr { return a &^ (LineSize - 1) }

// Page returns the 4KB page number of the address.
func (a Addr) Page() uint64 { return uint64(a) >> PageOffsetBits }

// LineToAddr converts a cache-line index back to a byte address.
func LineToAddr(line uint64) Addr { return Addr(line << LineOffsetBits) }

// AccessType distinguishes loads from stores.
type AccessType uint8

const (
	Read AccessType = iota
	Write
)

func (t AccessType) String() string {
	if t == Write {
		return "W"
	}
	return "R"
}

// Access is one memory reference emitted by a workload: the address touched,
// whether it is a load or a store, the logical thread that issued it, and a
// region tag that plays the role of the program counter for PC-indexed
// structures (stride prefetcher, SHiP signatures). Workload generators tag
// each distinct data structure / code site with a distinct Region.
//
// Dep marks serialising loads — the next instruction needs this value
// before it can compute its own address (pointer chasing). The timing model
// denies such loads memory-level parallelism.
type Access struct {
	Addr   Addr
	Type   AccessType
	Thread uint8
	Region uint16
	Dep    bool
}

func (a Access) String() string {
	return fmt.Sprintf("%s t%d r%d 0x%x", a.Type, a.Thread, a.Region, uint64(a.Addr))
}

// Layout hands out non-overlapping address regions, so that a workload can
// place its arrays in a synthetic physical address space the way a real
// allocator would. Regions are page-aligned and separated by a guard page to
// keep distinct structures in distinct counter blocks.
type Layout struct {
	next Addr
}

// NewLayout starts allocating at base (rounded up to a page).
func NewLayout(base Addr) *Layout {
	return &Layout{next: roundUpPage(base)}
}

func roundUpPage(a Addr) Addr {
	return (a + PageSize - 1) &^ (PageSize - 1)
}

// Region is a contiguous span of the synthetic address space backing one
// logical array.
type Region struct {
	Name string
	Base Addr
	Size uint64
	Elem uint64 // element size in bytes
}

// Alloc reserves size bytes for an array of elem-byte elements.
func (l *Layout) Alloc(name string, count, elem uint64) Region {
	r := Region{Name: name, Base: l.next, Size: count * elem, Elem: elem}
	l.next = roundUpPage(l.next+Addr(r.Size)) + PageSize // guard page
	return r
}

// End reports the first address past everything allocated so far.
func (l *Layout) End() Addr { return l.next }

// At returns the address of element i.
func (r Region) At(i uint64) Addr { return r.Base + Addr(i*r.Elem) }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(a Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// Footprint helpers -----------------------------------------------------------

// Bytes pretty-prints a byte count using binary units.
func Bytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
