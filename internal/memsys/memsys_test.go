package memsys

import "testing"

func TestAddrLineAndPage(t *testing.T) {
	cases := []struct {
		addr Addr
		line uint64
		page uint64
	}{
		{0, 0, 0},
		{63, 0, 0},
		{64, 1, 0},
		{4095, 63, 0},
		{4096, 64, 1},
		{0xdeadbeef, 0xdeadbeef >> 6, 0xdeadbeef >> 12},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("Line(%#x) = %d, want %d", uint64(c.addr), got, c.line)
		}
		if got := c.addr.Page(); got != c.page {
			t.Errorf("Page(%#x) = %d, want %d", uint64(c.addr), got, c.page)
		}
	}
}

func TestLineAddrRoundTrip(t *testing.T) {
	for _, a := range []Addr{0, 1, 63, 64, 65, 1 << 20, 1<<20 + 33} {
		la := a.LineAddr()
		if la%LineSize != 0 {
			t.Fatalf("LineAddr(%d) = %d not line aligned", a, la)
		}
		if la > a || a-la >= LineSize {
			t.Fatalf("LineAddr(%d) = %d out of range", a, la)
		}
		if LineToAddr(a.Line()) != la {
			t.Fatalf("LineToAddr(Line(%d)) != LineAddr", a)
		}
	}
}

func TestLayoutNonOverlapping(t *testing.T) {
	l := NewLayout(1 << 30)
	a := l.Alloc("a", 1000, 8)
	b := l.Alloc("b", 5, 4)
	c := l.Alloc("c", 1, 1)
	regs := []Region{a, b, c}
	for i := range regs {
		if regs[i].Base%PageSize != 0 {
			t.Errorf("region %s base not page aligned", regs[i].Name)
		}
		for j := i + 1; j < len(regs); j++ {
			lo, hi := regs[i], regs[j]
			if lo.Base+Addr(lo.Size) > hi.Base {
				t.Errorf("regions %s and %s overlap", lo.Name, hi.Name)
			}
		}
	}
	if !a.Contains(a.At(999)) {
		t.Error("At(last) should be inside region")
	}
	if a.Contains(a.Base + Addr(a.Size)) {
		t.Error("one-past-end should be outside region")
	}
	if a.At(1)-a.At(0) != 8 {
		t.Error("element stride wrong")
	}
}

func TestBytesFormatting(t *testing.T) {
	cases := map[uint64]string{
		512:       "512B",
		2048:      "2.0KiB",
		1 << 20:   "1.0MiB",
		3 << 30:   "3.0GiB",
		147 << 10: "147.0KiB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Addr: 0x40, Type: Write, Thread: 2, Region: 7}
	if got := a.String(); got != "W t2 r7 0x40" {
		t.Errorf("Access.String() = %q", got)
	}
	if Read.String() != "R" || Write.String() != "W" {
		t.Error("AccessType.String wrong")
	}
}
