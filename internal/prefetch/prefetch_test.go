package prefetch

import "testing"

func TestNextLine(t *testing.T) {
	p := NewNextLine()
	for _, line := range []uint64{0, 7, 1000} {
		got := p.OnAccess(line, 0)
		if len(got) != 1 || got[0] != line+1 {
			t.Fatalf("OnAccess(%d) = %v, want [%d]", line, got, line+1)
		}
	}
}

func TestStrideLearnsConstantStride(t *testing.T) {
	p := NewStride(1)
	var issued []uint64
	for i := uint64(0); i < 10; i++ {
		issued = p.OnAccess(100+i*4, 1)
	}
	if len(issued) != 1 || issued[0] != 100+9*4+4 {
		t.Fatalf("stride prefetch = %v, want [%d]", issued, 100+10*4)
	}
}

func TestStrideNeedsConfidence(t *testing.T) {
	p := NewStride(1)
	if got := p.OnAccess(10, 1); got != nil {
		t.Fatal("first access must not prefetch")
	}
	if got := p.OnAccess(14, 1); got != nil {
		t.Fatal("single stride observation must not prefetch")
	}
}

func TestStrideResetsOnChange(t *testing.T) {
	p := NewStride(1)
	for i := uint64(0); i < 5; i++ {
		p.OnAccess(i*2, 1)
	}
	// Break the pattern: confidence must reset.
	if got := p.OnAccess(1000, 1); got != nil {
		t.Fatalf("prefetch after stride break: %v", got)
	}
	if got := p.OnAccess(1007, 1); got != nil {
		t.Fatalf("prefetch after one new stride: %v", got)
	}
}

func TestStridePerSignatureIsolation(t *testing.T) {
	p := NewStride(1)
	for i := uint64(0); i < 6; i++ {
		p.OnAccess(i*3, 1)   // stream A, stride 3
		p.OnAccess(i*5+1, 2) // stream B, stride 5
	}
	a := p.OnAccess(18, 1)
	if len(a) != 1 || a[0] != 21 {
		t.Fatalf("stream A prefetch = %v, want [21]", a)
	}
	b := p.OnAccess(31, 2)
	if len(b) != 1 || b[0] != 36 {
		t.Fatalf("stream B prefetch = %v, want [36]", b)
	}
}

func TestStrideDegree(t *testing.T) {
	p := NewStride(3)
	var got []uint64
	for i := uint64(0); i < 8; i++ {
		got = p.OnAccess(i*2, 0)
	}
	want := []uint64{16, 18, 20}
	if len(got) != 3 {
		t.Fatalf("degree-3 issued %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degree-3 issued %v, want %v", got, want)
		}
	}
}

func TestBertiLearnsDominantDelta(t *testing.T) {
	p := NewBerti()
	var got []uint64
	for i := uint64(0); i < 30; i++ {
		got = p.OnAccess(i*7, 3)
	}
	if len(got) != 1 || got[0] != 29*7+7 {
		t.Fatalf("berti = %v, want [%d]", got, 30*7)
	}
}

func TestBertiSilentOnRandom(t *testing.T) {
	p := NewBerti()
	// Deltas far outside ±64 lines never train; Berti should stay quiet.
	state := uint64(99)
	issued := 0
	for i := 0; i < 500; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		if p.OnAccess(state%(1<<30), 1) != nil {
			issued++
		}
	}
	if issued > 50 {
		t.Errorf("berti issued %d prefetches on a random stream", issued)
	}
}

func TestNonePrefetcher(t *testing.T) {
	p := NewNone()
	if p.OnAccess(1, 0) != nil {
		t.Fatal("None must never prefetch")
	}
	if p.Name() != "None" {
		t.Fatal("name")
	}
}

func TestAccuracy(t *testing.T) {
	var s Stats
	if s.Accuracy() != 0 {
		t.Fatal("empty accuracy should be 0")
	}
	s = Stats{Issued: 200, Useful: 11}
	if acc := s.Accuracy(); acc != 0.055 {
		t.Fatalf("accuracy = %v", acc)
	}
}
