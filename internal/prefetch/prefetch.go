// Package prefetch implements the three prefetchers the paper evaluates
// against the CTR cache in Fig 5 — Next-Line, Stride, and a simplified
// Berti local-delta prefetcher — together with accuracy accounting (issued
// vs useful prefetches), which the paper reports (1.02%, 0.54% and 5.43%
// accuracy respectively on DFS CTR streams).
package prefetch

// Prefetcher observes demand accesses (cache-line numbers) and proposes
// lines to prefetch. Implementations must be deterministic.
type Prefetcher interface {
	Name() string
	// OnAccess observes a demand access and returns candidate lines to
	// prefetch. sig tags the code region (stands in for the PC).
	OnAccess(line uint64, sig uint16) []uint64
}

// Stats tracks prefetcher effectiveness. The consumer (the CTR-cache
// front-end) records issues and, on later demand hits to prefetched lines,
// usefulness.
type Stats struct {
	Issued uint64
	Useful uint64
}

// Accuracy is Useful/Issued.
func (s Stats) Accuracy() float64 {
	if s.Issued == 0 {
		return 0
	}
	return float64(s.Useful) / float64(s.Issued)
}

// NextLine prefetches line+1 on every access.
type NextLine struct{ buf [1]uint64 }

// NewNextLine returns the next-line prefetcher.
func NewNextLine() *NextLine { return &NextLine{} }

// Name implements Prefetcher.
func (p *NextLine) Name() string { return "NextLine" }

// OnAccess implements Prefetcher.
func (p *NextLine) OnAccess(line uint64, _ uint16) []uint64 {
	p.buf[0] = line + 1
	return p.buf[:]
}

// Stride is a classic region-indexed stride prefetcher (Fu & Patel): a table
// keyed by signature tracks the last address and last stride; two
// consecutive identical strides arm the entry and the prefetcher issues
// line + stride.
type Stride struct {
	last      map[uint16]uint64
	stride    map[uint16]int64
	confident map[uint16]uint8
	degree    int
	buf       []uint64
}

// NewStride returns a stride prefetcher with the given degree (lines issued
// per trigger; the paper's setup uses degree 1).
func NewStride(degree int) *Stride {
	if degree < 1 {
		degree = 1
	}
	return &Stride{
		last:      make(map[uint16]uint64),
		stride:    make(map[uint16]int64),
		confident: make(map[uint16]uint8),
		degree:    degree,
		buf:       make([]uint64, 0, degree),
	}
}

// Name implements Prefetcher.
func (p *Stride) Name() string { return "Stride" }

// OnAccess implements Prefetcher.
func (p *Stride) OnAccess(line uint64, sig uint16) []uint64 {
	p.buf = p.buf[:0]
	prev, seen := p.last[sig]
	p.last[sig] = line
	if !seen {
		return nil
	}
	s := int64(line) - int64(prev)
	if s == 0 {
		return nil
	}
	if s == p.stride[sig] {
		if p.confident[sig] < 3 {
			p.confident[sig]++
		}
	} else {
		p.stride[sig] = s
		p.confident[sig] = 0
	}
	if p.confident[sig] >= 2 {
		next := int64(line)
		for d := 0; d < p.degree; d++ {
			next += s
			if next > 0 {
				p.buf = append(p.buf, uint64(next))
			}
		}
	}
	if len(p.buf) == 0 {
		return nil
	}
	return p.buf
}

// Berti is a simplified rendition of the Berti local-delta prefetcher
// (Navarro-Torres et al., MICRO'22): per signature it keeps a short history
// of recent lines, scores candidate deltas by how often they would have
// predicted a later access (coverage), and issues the best-scoring delta
// once it clears a confidence threshold.
type Berti struct {
	hist    map[uint16][]uint64 // recent lines per signature (bounded)
	deltas  map[uint16]map[int64]int
	histLen int
	minConf int
	buf     [1]uint64
}

// NewBerti returns the simplified Berti prefetcher.
func NewBerti() *Berti {
	return &Berti{
		hist:    make(map[uint16][]uint64),
		deltas:  make(map[uint16]map[int64]int),
		histLen: 16,
		minConf: 4,
	}
}

// Name implements Prefetcher.
func (p *Berti) Name() string { return "Berti" }

// OnAccess implements Prefetcher.
func (p *Berti) OnAccess(line uint64, sig uint16) []uint64 {
	h := p.hist[sig]
	dm := p.deltas[sig]
	if dm == nil {
		dm = make(map[int64]int)
		p.deltas[sig] = dm
	}
	// Train: every delta from history to the current access that lands
	// exactly on it gains a point (it would have been a timely prefetch).
	for _, old := range h {
		d := int64(line) - int64(old)
		if d != 0 && d >= -64 && d <= 64 {
			dm[d]++
		}
	}
	// Decay so the best delta can change across phases.
	if len(dm) > 64 {
		for k := range dm {
			dm[k] /= 2
			if dm[k] == 0 {
				delete(dm, k)
			}
		}
	}
	h = append(h, line)
	if len(h) > p.histLen {
		h = h[len(h)-p.histLen:]
	}
	p.hist[sig] = h

	best, bestScore := int64(0), 0
	for d, score := range dm {
		if score > bestScore || (score == bestScore && d < best) {
			best, bestScore = d, score
		}
	}
	if bestScore >= p.minConf && best != 0 {
		next := int64(line) + best
		if next > 0 {
			p.buf[0] = uint64(next)
			return p.buf[:]
		}
	}
	return nil
}

// None is a null prefetcher used as the baseline in Fig 5.
type None struct{}

// NewNone returns the null prefetcher.
func NewNone() *None { return &None{} }

// Name implements Prefetcher.
func (None) Name() string { return "None" }

// OnAccess implements Prefetcher.
func (None) OnAccess(uint64, uint16) []uint64 { return nil }
