package flock

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestMutualExclusion hammers a shared counter file from many goroutines,
// each doing a read-modify-write under the lock. Lost updates would show a
// final count below goroutines×rounds.
func TestMutualExclusion(t *testing.T) {
	dir := t.TempDir()
	lockPath := filepath.Join(dir, "l.lock")
	dataPath := filepath.Join(dir, "counter")
	if err := os.WriteFile(dataPath, []byte("0"), 0o644); err != nil {
		t.Fatal(err)
	}

	const goroutines, rounds = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := With(lockPath, func() error {
					b, err := os.ReadFile(dataPath)
					if err != nil {
						return err
					}
					n := 0
					for _, c := range strings.TrimSpace(string(b)) {
						n = n*10 + int(c-'0')
					}
					return os.WriteFile(dataPath, []byte(itoa(n+1)), 0o644)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	b, err := os.ReadFile(dataPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(b)); got != itoa(goroutines*rounds) {
		t.Fatalf("lost updates: counter = %s, want %d", got, goroutines*rounds)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestLockCreatesFile verifies the lock file is created on demand and the
// unlock function is idempotent enough to call exactly once per Lock.
func TestLockCreatesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested.lock")
	unlock, err := Lock(path)
	if err != nil {
		t.Fatal(err)
	}
	unlock()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("lock file not created: %v", err)
	}
	// Re-acquirable after release.
	unlock2, err := Lock(path)
	if err != nil {
		t.Fatal(err)
	}
	unlock2()
}
