// Package flock provides an advisory file lock for serialising appends to
// shared files (the result store's index.jsonl, the coordinator's journal)
// across processes. The lock is a kernel flock(2): it is released
// automatically when the holding process exits — including SIGKILL — so a
// crashed writer can never wedge the store the way a stale lock file would.
package flock

import "fmt"

// Lock acquires an exclusive advisory lock on path (creating the file if
// needed), blocking until the lock is available, and returns the function
// that releases it. On platforms without flock(2) it degrades to a no-op:
// in-process writers are still serialised by their own mutexes, only the
// cross-process guarantee is lost.
func Lock(path string) (unlock func(), err error) {
	unlock, err = lock(path)
	if err != nil {
		return nil, fmt.Errorf("flock: lock %s: %w", path, err)
	}
	return unlock, nil
}

// With runs fn while holding the exclusive lock on path.
func With(path string, fn func() error) error {
	unlock, err := Lock(path)
	if err != nil {
		return err
	}
	defer unlock()
	return fn()
}
