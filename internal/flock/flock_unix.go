//go:build unix

package flock

import (
	"os"
	"syscall"
)

func lock(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		// Closing the descriptor drops the flock; the explicit unlock just
		// surfaces it earlier when the file object lingers.
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
