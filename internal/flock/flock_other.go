//go:build !unix

package flock

// Without flock(2) the lock degrades to a no-op: single-process callers are
// already serialised by their own mutexes, and the repo's supported CI and
// deployment targets are all unix.
func lock(string) (func(), error) { return func() {}, nil }
