package workloads

import (
	"fmt"
	"strings"
	"sync"

	"cosmos/internal/graph"
	"cosmos/internal/trace"
)

// GraphNames lists the eight GraphBIG algorithms in the paper's order.
func GraphNames() []string {
	return []string{"DFS", "BFS", "GC", "PR", "TC", "CC", "SP", "DC"}
}

// SpecNames lists the SPEC-like irregular kernels (§5).
func SpecNames() []string { return []string{"mcf", "canneal", "omnetpp"} }

// MLNames lists the regular ML workloads of Fig 17.
func MLNames() []string {
	return []string{"AlexNet", "ResNet", "VGG", "BERT", "Transformer", "DLRM"}
}

// AllNames lists every workload the harness can run.
func AllNames() []string {
	out := append([]string{}, GraphNames()...)
	out = append(out, SpecNames()...)
	out = append(out, MLNames()...)
	return append(out, "MLP")
}

// Options configures workload construction.
type Options struct {
	Threads int
	Seed    uint64
	// GraphNodes and GraphDegree size the synthetic scale-free graph used
	// by graph workloads. Zero values take the repro defaults.
	GraphNodes  int
	GraphDegree int
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = 4
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.GraphNodes <= 0 {
		// Default to the paper-regime graph: its counter working set far
		// exceeds every CTR cache (see DESIGN.md). Pass an explicit
		// smaller value for quick runs.
		o.GraphNodes = 2_000_000
	}
	if o.GraphDegree <= 0 {
		o.GraphDegree = 8
	}
	return o
}

// graphCache memoises generated graphs: building a large BA graph costs
// seconds and every experiment sweep reuses the same one.
var graphCache sync.Map // key string -> *graph.Graph

func cachedGraph(nodes, degree int, seed uint64) *graph.Graph {
	key := fmt.Sprintf("%d/%d/%d", nodes, degree, seed)
	if g, ok := graphCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	g := graph.NewBarabasiAlbert(nodes, degree, seed)
	graphCache.Store(key, g)
	return g
}

// BuildGraph constructs one of the eight graph workloads over a cached
// scale-free graph.
func BuildGraph(name string, o Options) (trace.Generator, error) {
	o = o.withDefaults()
	g := cachedGraph(o.GraphNodes, o.GraphDegree, o.Seed)
	w := graph.NewWorkspace(g, o.Threads, 1<<30)
	switch name {
	case "DFS":
		gen, _ := graph.DFS(w, o.Seed)
		return gen, nil
	case "BFS":
		gen, _ := graph.BFS(w, o.Seed)
		return gen, nil
	case "GC":
		gen, _ := graph.GraphColoring(w)
		return gen, nil
	case "PR":
		gen, _ := graph.PageRank(w, 20)
		return gen, nil
	case "TC":
		gen, _ := graph.TriangleCounting(w)
		return gen, nil
	case "CC":
		gen, _ := graph.ConnectedComponents(w, 50)
		return gen, nil
	case "SP":
		gen, _ := graph.ShortestPath(w, uint32(o.Seed%uint64(g.N)), 50)
		return gen, nil
	case "DC":
		gen, _ := graph.DegreeCentrality(w)
		return gen, nil
	}
	return nil, fmt.Errorf("workloads: unknown graph workload %q", name)
}

// Build constructs any registered workload by name. Names of the form
// "file:<path>" replay a trace previously captured with
// `cosmos-trace -export` (or trace.WriteFile).
func Build(name string, o Options) (trace.Generator, error) {
	o = o.withDefaults()
	if name == "" {
		return nil, fmt.Errorf("workloads: empty workload name (valid: %s, or file:<path>)",
			strings.Join(AllNames(), ", "))
	}
	if strings.HasPrefix(name, "file:") {
		g, err := trace.OpenFile(strings.TrimPrefix(name, "file:"))
		if err != nil {
			return nil, err
		}
		return g, nil
	}
	switch name {
	case "DFS", "BFS", "GC", "PR", "TC", "CC", "SP", "DC":
		return BuildGraph(name, o)
	case "mcf":
		return MCF(2_000_000, 8_000_000, o.Threads, o.Seed), nil
	case "canneal":
		return Canneal(4_000_000, o.Threads, o.Seed), nil
	case "omnetpp":
		return Omnetpp(4_000_000, o.Threads, o.Seed), nil
	case "MLP":
		return MLP(o.Threads, o.Seed), nil
	case "DLRM":
		return DLRM(8, 500_000, o.Threads, o.Seed), nil
	default:
		if m, ok := ModelByName(name); ok {
			return Inference(m, o.Threads, o.Seed), nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q (valid: %s, or file:<path>)",
		name, strings.Join(AllNames(), ", "))
}

// IsIrregular reports whether the workload belongs to the irregular class
// the paper targets (graph + SPEC) as opposed to the regular ML class.
func IsIrregular(name string) bool {
	for _, n := range append(GraphNames(), SpecNames()...) {
		if n == name {
			return true
		}
	}
	return false
}

// BuildMix runs one single-threaded instance of each named workload on its
// own core and interleaves their streams — the heterogeneous multi-program
// evaluation style of shared-MC studies. Thread i carries names[i].
func BuildMix(names []string, o Options) (trace.Generator, error) {
	o = o.withDefaults()
	gens := make([]trace.Generator, 0, len(names))
	for i, name := range names {
		sub := o
		sub.Threads = 1
		sub.Seed = o.Seed + uint64(i)*7919
		g, err := Build(name, sub)
		if err != nil {
			for _, prev := range gens {
				trace.CloseIfCloser(prev)
			}
			return nil, err
		}
		gens = append(gens, g)
	}
	return trace.NewInterleave("mix("+strings.Join(names, "+")+")", gens, 64), nil
}
