package workloads

import (
	"cosmos/internal/memsys"
	"cosmos/internal/rl"
	"cosmos/internal/trace"
)

// Region signatures for ML workloads.
const (
	sigWeights uint16 = 48
	sigActs    uint16 = 49
	sigEmbed   uint16 = 50
	sigDense   uint16 = 51
)

// Layer describes one inference layer's memory behaviour: the weight bytes
// streamed per inference and the activation bytes reused.
type Layer struct {
	Name        string
	WeightBytes uint64
	ActBytes    uint64
}

// Model is a neural network described as a layer list; inference streams
// weights sequentially (output-channel partitioned across threads) and
// re-touches activations — the regular, high-locality pattern of §6.3 whose
// counter writes trigger heavy re-encryption.
type Model struct {
	Name   string
	Layers []Layer
}

// The six models of Fig 17 plus the 3-layer MLP of Fig 8, with weight
// volumes derived from the architectures the paper cites (fp32).
func mlp3() Model {
	// 3-layer MLP: 784→512→256→10.
	return Model{Name: "MLP", Layers: []Layer{
		{"fc1", 784 * 512 * 4, 512 * 4},
		{"fc2", 512 * 256 * 4, 256 * 4},
		{"fc3", 256 * 10 * 4, 10 * 4},
	}}
}

func alexNet() Model {
	return Model{Name: "AlexNet", Layers: []Layer{
		{"conv1", 35 << 10, 1160 << 10}, {"conv2", 1200 << 10, 750 << 10},
		{"conv3", 3540 << 10, 260 << 10}, {"conv4", 2650 << 10, 260 << 10},
		{"conv5", 1770 << 10, 170 << 10}, {"fc6", 151 << 20, 16 << 10},
		{"fc7", 64 << 20, 16 << 10}, {"fc8", 16 << 20, 4 << 10},
	}}
}

func resNet() Model {
	// ResNet-18-ish: 11.7M params.
	ls := []Layer{{"conv1", 37 << 10, 3136 << 10}}
	blocks := []struct {
		n  int
		kb uint64
		ab uint64
	}{
		{4, 144, 784}, {4, 560, 392}, {4, 2240, 196}, {4, 8960, 98},
	}
	for si, s := range blocks {
		for b := 0; b < s.n; b++ {
			ls = append(ls, Layer{
				Name:        "block",
				WeightBytes: s.kb << 10,
				ActBytes:    s.ab << 10,
			})
			_ = si
		}
	}
	ls = append(ls, Layer{"fc", 2 << 20, 4 << 10})
	return Model{Name: "ResNet", Layers: ls}
}

func vgg() Model {
	return Model{Name: "VGG", Layers: []Layer{
		{"conv1", 7 << 10, 12 << 20}, {"conv2", 147 << 10, 12 << 20},
		{"conv3", 295 << 10, 6 << 20}, {"conv4", 590 << 10, 6 << 20},
		{"conv5", 1180 << 10, 3 << 20}, {"conv6", 2360 << 10, 3 << 20},
		{"conv7", 2360 << 10, 3 << 20}, {"conv8", 4720 << 10, 1536 << 10},
		{"conv9", 9440 << 10, 1536 << 10}, {"conv10", 9440 << 10, 1536 << 10},
		{"conv11", 9440 << 10, 384 << 10}, {"conv12", 9440 << 10, 384 << 10},
		{"conv13", 9440 << 10, 384 << 10},
		{"fc14", 392 << 20, 16 << 10}, {"fc15", 64 << 20, 16 << 10}, {"fc16", 16 << 20, 4 << 10},
	}}
}

func bert() Model {
	// BERT-base: 12 layers × (4·768² attention + 2·768·3072 FFN) params.
	ls := make([]Layer, 0, 24)
	for i := 0; i < 12; i++ {
		ls = append(ls,
			Layer{"attn", 4 * 768 * 768 * 4, 128 * 768 * 4},
			Layer{"ffn", 2 * 768 * 3072 * 4, 128 * 3072 * 4},
		)
	}
	return Model{Name: "BERT", Layers: ls}
}

func transformer() Model {
	ls := make([]Layer, 0, 12)
	for i := 0; i < 6; i++ {
		ls = append(ls,
			Layer{"attn", 4 * 512 * 512 * 4, 128 * 512 * 4},
			Layer{"ffn", 2 * 512 * 2048 * 4, 128 * 2048 * 4},
		)
	}
	return Model{Name: "Transformer", Layers: ls}
}

// MLModels returns the Fig 17 model set.
func MLModels() []Model {
	return []Model{alexNet(), resNet(), vgg(), bert(), transformer()}
}

// ModelByName resolves a model (including "MLP" and "DLRM" handled
// specially by the registry).
func ModelByName(name string) (Model, bool) {
	for _, m := range append(MLModels(), mlp3()) {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Inference streams the model's layers repeatedly: threads partition each
// layer's weights by output channel (contiguous slices); activations are
// read before and written after each layer.
func Inference(m Model, threads int, seed uint64) trace.Generator {
	l := memsys.NewLayout(1 << 30)
	wRegs := make([]memsys.Region, len(m.Layers))
	aRegs := make([]memsys.Region, len(m.Layers))
	for i, layer := range m.Layers {
		wRegs[i] = l.Alloc("w", (layer.WeightBytes+63)/64, 64)
		aRegs[i] = l.Alloc("a", (layer.ActBytes+63)/64+1, 64)
	}
	return interleaved(m.Name, threads, 64, func(t int) func(emit func(memsys.Access)) {
		return func(emit func(memsys.Access)) {
			for inference := 0; inference < 1<<30; inference++ {
				for li := range m.Layers {
					wLines := wRegs[li].Size / 64
					aLines := aRegs[li].Size / 64
					lo := wLines * uint64(t) / uint64(threads)
					hi := wLines * uint64(t+1) / uint64(threads)
					for w := lo; w < hi; w++ {
						emit(memsys.Access{Addr: wRegs[li].At(w), Type: memsys.Read, Region: sigWeights})
						// periodic activation reuse: read an input
						// activation line for each weight tile
						if w%8 == 0 {
							emit(memsys.Access{Addr: aRegs[li].At(w % aLines), Type: memsys.Read, Region: sigActs})
						}
					}
					// write this thread's output activation slice
					aLo := aLines * uint64(t) / uint64(threads)
					aHi := aLines * uint64(t+1) / uint64(threads)
					for a := aLo; a < aHi; a++ {
						emit(memsys.Access{Addr: aRegs[li].At(a), Type: memsys.Write, Region: sigActs})
					}
				}
			}
		}
	})
}

// DLRM models the recommendation workload: random embedding-table gathers
// (the irregular half) followed by small dense MLP streaming (the regular
// half), per the paper's description of DLRM processing 13 dense features
// and multiple categorical embeddings.
func DLRM(tables int, rowsPerTable int, threads int, seed uint64) trace.Generator {
	l := memsys.NewLayout(1 << 30)
	embRegs := make([]memsys.Region, tables)
	for i := range embRegs {
		embRegs[i] = l.Alloc("emb", uint64(rowsPerTable), 256) // 64-dim fp32 rows
	}
	mlpReg := l.Alloc("mlp", 4096, 64)

	return interleaved("DLRM", threads, 64, func(t int) func(emit func(memsys.Access)) {
		return func(emit func(memsys.Access)) {
			rng := rl.NewRand(seed + uint64(t)*41)
			for batch := 0; batch < 1<<30; batch++ {
				// embedding gathers: two random rows per table
				// (multi-hot categorical features), 4 lines each
				for _, reg := range embRegs {
					for h := 0; h < 2; h++ {
						row := uint64(rng.Intn(rowsPerTable))
						for k := memsys.Addr(0); k < 256; k += 64 {
							emit(memsys.Access{Addr: reg.At(row) + k, Type: memsys.Read, Region: sigEmbed})
						}
					}
				}
				// bottom + top MLP: stream the small dense weights
				for w := uint64(0); w < 4096; w += 16 {
					emit(memsys.Access{Addr: mlpReg.At(w), Type: memsys.Read, Region: sigDense})
				}
				// write the interaction output
				emit(memsys.Access{Addr: mlpReg.At(uint64(rng.Intn(4096))), Type: memsys.Write, Region: sigDense})
			}
		}
	})
}

// MLP returns the Fig 8 3-layer MLP generator.
func MLP(threads int, seed uint64) trace.Generator {
	return Inference(mlp3(), threads, seed)
}
