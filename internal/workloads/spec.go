// Package workloads implements the non-graph benchmarks the paper
// evaluates: SPEC-like irregular kernels (mcf, canneal, omnetpp) and the
// regular ML inference workloads of §6.3 (MLP, AlexNet, ResNet, VGG, BERT,
// Transformer, DLRM). Each emits its logical loads/stores against a
// synthetic address layout, 4-way threaded like the paper's runs.
package workloads

import (
	"cosmos/internal/memsys"
	"cosmos/internal/rl"
	"cosmos/internal/trace"
)

// Region signatures for the SPEC-like kernels.
const (
	sigNodes   uint16 = 32
	sigArcs    uint16 = 33
	sigElems   uint16 = 34
	sigNetlist uint16 = 35
	sigHeap    uint16 = 36
	sigMsgs    uint16 = 37
)

func interleaved(name string, threads int, chunk int, mk func(t int) func(emit func(memsys.Access))) trace.Generator {
	gens := make([]trace.Generator, threads)
	for t := 0; t < threads; t++ {
		prog := mk(t)
		th := uint8(t)
		gens[t] = trace.FromFunc(name, func(emit func(memsys.Access)) {
			prog(func(a memsys.Access) {
				a.Thread = th
				emit(a)
			})
		})
	}
	return trace.NewInterleave(name, gens, 64)
}

// MCF emulates SPEC mcf's network-simplex core: a large arc array and node
// array traversed by dependent pointer chains with low locality. Each thread
// walks its own chain over the shared arrays, reading arc records (cost,
// head, tail) and updating node potentials.
func MCF(nodes, arcs int, threads int, seed uint64) trace.Generator {
	l := memsys.NewLayout(1 << 30)
	nodeReg := l.Alloc("nodes", uint64(nodes), 64) // fat node records
	arcReg := l.Alloc("arcs", uint64(arcs), 32)

	// The arc chain is a single-cycle random permutation (Sattolo), so the
	// dependent walk covers the whole arc array instead of collapsing into
	// a short rho-cycle the caches would trivially absorb.
	next := make([]uint32, arcs)
	for i := range next {
		next[i] = uint32(i)
	}
	prng := rl.NewRand(seed ^ 0x5ca770)
	for i := arcs - 1; i > 0; i-- {
		j := prng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}

	return interleaved("mcf", threads, 64, func(t int) func(emit func(memsys.Access)) {
		return func(emit func(memsys.Access)) {
			rng := rl.NewRand(seed + uint64(t)*977)
			// Network simplex prices several arc chains concurrently;
			// two interleaved cursors model that instruction-level
			// parallelism, so only alternating hops serialise.
			curs := [2]uint64{uint64(rng.Intn(arcs)), uint64(rng.Intn(arcs))}
			for step := 0; step < 1<<30; step++ {
				cur := curs[step&1]
				// read arc record (two words); the chain's next hop
				// depends on this load
				emit(memsys.Access{Addr: arcReg.At(cur), Type: memsys.Read, Region: sigArcs, Dep: step&1 == 0})
				emit(memsys.Access{Addr: arcReg.At(cur) + 16, Type: memsys.Read, Region: sigArcs})
				// read the head and tail node potentials
				head := uint64(rl.SplitMix64(cur*2+1) % uint64(nodes))
				tail := uint64(rl.SplitMix64(cur*2+2) % uint64(nodes))
				emit(memsys.Access{Addr: nodeReg.At(head), Type: memsys.Read, Region: sigNodes})
				emit(memsys.Access{Addr: nodeReg.At(tail), Type: memsys.Read, Region: sigNodes})
				// occasionally update a potential (pivot)
				if rng.Intn(8) == 0 {
					emit(memsys.Access{Addr: nodeReg.At(head), Type: memsys.Write, Region: sigNodes})
				}
				// follow the chain: next arc depends on this arc
				curs[step&1] = uint64(next[cur])
			}
		}
	})
}

// Canneal emulates PARSEC/SPEC canneal's simulated annealing: random pairs
// of netlist elements are read, their neighbour lists scanned, and the pair
// swapped if it lowers cost — uniformly random reads with scattered writes.
func Canneal(elements int, threads int, seed uint64) trace.Generator {
	l := memsys.NewLayout(1 << 30)
	elemReg := l.Alloc("elements", uint64(elements), 64)
	netReg := l.Alloc("netlist", uint64(elements)*4, 4)

	return interleaved("canneal", threads, 64, func(t int) func(emit func(memsys.Access)) {
		return func(emit func(memsys.Access)) {
			rng := rl.NewRand(seed + uint64(t)*131)
			for step := 0; step < 1<<30; step++ {
				a := uint64(rng.Intn(elements))
				b := uint64(rng.Intn(elements))
				emit(memsys.Access{Addr: elemReg.At(a), Type: memsys.Read, Region: sigElems})
				emit(memsys.Access{Addr: elemReg.At(b), Type: memsys.Read, Region: sigElems})
				// scan 4 netlist neighbours of each
				for k := uint64(0); k < 4; k++ {
					emit(memsys.Access{Addr: netReg.At(a*4 + k), Type: memsys.Read, Region: sigNetlist})
					emit(memsys.Access{Addr: netReg.At(b*4 + k), Type: memsys.Read, Region: sigNetlist})
				}
				if rng.Intn(3) == 0 { // accepted swap
					emit(memsys.Access{Addr: elemReg.At(a), Type: memsys.Write, Region: sigElems})
					emit(memsys.Access{Addr: elemReg.At(b), Type: memsys.Write, Region: sigElems})
				}
			}
		}
	})
}

// Omnetpp emulates SPEC omnetpp's discrete-event simulation: a binary-heap
// event queue (pointer-ish hops through a heap array) plus scattered message
// payload touches.
func Omnetpp(events int, threads int, seed uint64) trace.Generator {
	l := memsys.NewLayout(1 << 30)
	heapReg := l.Alloc("heap", uint64(events), 16)
	msgReg := l.Alloc("messages", uint64(events), 128)

	return interleaved("omnetpp", threads, 64, func(t int) func(emit func(memsys.Access)) {
		return func(emit func(memsys.Access)) {
			rng := rl.NewRand(seed + uint64(t)*613)
			size := uint64(events)
			for step := 0; step < 1<<30; step++ {
				// pop: root read + sift-down path (log n heap hops)
				emit(memsys.Access{Addr: heapReg.At(0), Type: memsys.Read, Region: sigHeap})
				i := uint64(0)
				for 2*i+1 < size {
					child := 2*i + 1 + uint64(rng.Intn(2))
					if child >= size {
						child = 2*i + 1
					}
					emit(memsys.Access{Addr: heapReg.At(child), Type: memsys.Read, Region: sigHeap, Dep: true})
					emit(memsys.Access{Addr: heapReg.At(i), Type: memsys.Write, Region: sigHeap})
					i = child
					if i > size/2 {
						break
					}
				}
				// handle the message: read payload, write updated state
				m := uint64(rng.Intn(events))
				emit(memsys.Access{Addr: msgReg.At(m), Type: memsys.Read, Region: sigMsgs})
				emit(memsys.Access{Addr: msgReg.At(m) + 64, Type: memsys.Write, Region: sigMsgs})
				// push: sift-up path
				j := size - 1 - uint64(rng.Intn(int(size/4)+1))
				for j > 0 {
					parent := (j - 1) / 2
					emit(memsys.Access{Addr: heapReg.At(parent), Type: memsys.Read, Region: sigHeap})
					j = parent
					if rng.Intn(2) == 0 {
						break
					}
				}
			}
		}
	})
}
