package workloads

import (
	"testing"

	"cosmos/internal/memsys"
	"cosmos/internal/trace"
)

func take(t *testing.T, g trace.Generator, n int) []memsys.Access {
	t.Helper()
	out := make([]memsys.Access, 0, n)
	for len(out) < n {
		a, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	trace.CloseIfCloser(g)
	return out
}

func distinctLines(accs []memsys.Access) int {
	m := map[uint64]bool{}
	for _, a := range accs {
		m[a.Addr.Line()] = true
	}
	return len(m)
}

func TestSpecWorkloadsStreamEndlessly(t *testing.T) {
	for _, name := range SpecNames() {
		g, err := Build(name, Options{Threads: 4, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		accs := take(t, g, 20000)
		if len(accs) != 20000 {
			t.Fatalf("%s: stream ended after %d accesses", name, len(accs))
		}
		threads := map[uint8]bool{}
		for _, a := range accs {
			threads[a.Thread] = true
		}
		if len(threads) != 4 {
			t.Fatalf("%s: saw %d threads, want 4", name, len(threads))
		}
	}
}

func TestIrregularWorkloadsHaveLargeFootprint(t *testing.T) {
	// The whole point of mcf/canneal/omnetpp: the touched footprint keeps
	// growing (low reuse). 50k accesses must touch tens of thousands of
	// distinct lines.
	for _, name := range SpecNames() {
		g, _ := Build(name, Options{Threads: 4, Seed: 5})
		accs := take(t, g, 50000)
		if d := distinctLines(accs); d < 10000 {
			t.Errorf("%s: only %d distinct lines in 50k accesses — too regular", name, d)
		}
	}
}

func TestMLWorkloadsAreSequentialHeavy(t *testing.T) {
	g := Inference(alexNet(), 4, 1)
	accs := take(t, g, 50000)
	if len(accs) != 50000 {
		t.Fatal("inference should stream endlessly")
	}
	// Count +1-line deltas per thread: weight streaming should make
	// sequential steps dominate.
	lastByThread := map[uint8]uint64{}
	seq, tot := 0, 0
	for _, a := range accs {
		if last, ok := lastByThread[a.Thread]; ok {
			if a.Addr.Line() == last+1 {
				seq++
			}
			tot++
		}
		lastByThread[a.Thread] = a.Addr.Line()
	}
	if float64(seq)/float64(tot) < 0.5 {
		t.Errorf("ML stream only %.1f%% sequential", 100*float64(seq)/float64(tot))
	}
}

func TestMLWorkloadsWriteActivations(t *testing.T) {
	g := MLP(4, 1)
	accs := take(t, g, 200000)
	writes := 0
	for _, a := range accs {
		if a.Type == memsys.Write {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("inference must write activations")
	}
}

func TestDLRMGathersAreIrregular(t *testing.T) {
	g := DLRM(8, 100_000, 4, 3)
	accs := take(t, g, 50000)
	emb := 0
	for _, a := range accs {
		if a.Region == sigEmbed {
			emb++
		}
	}
	if emb == 0 {
		t.Fatal("DLRM must perform embedding gathers")
	}
	if d := distinctLines(accs); d < 5000 {
		t.Errorf("DLRM gathers touched only %d lines", d)
	}
}

func TestBuildAllNames(t *testing.T) {
	for _, name := range AllNames() {
		opts := Options{Threads: 2, Seed: 1, GraphNodes: 2000, GraphDegree: 4}
		g, err := Build(name, opts)
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		accs := take(t, g, 1000)
		if len(accs) == 0 {
			t.Fatalf("Build(%s): empty stream", name)
		}
	}
	if _, err := Build("nope", Options{}); err == nil {
		t.Fatal("unknown workload must error")
	}
}

func TestGraphCacheReuse(t *testing.T) {
	o := Options{Threads: 2, Seed: 1, GraphNodes: 3000, GraphDegree: 4}
	g1, err := BuildGraph("BFS", o)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildGraph("DFS", o)
	if err != nil {
		t.Fatal(err)
	}
	a1 := take(t, g1, 100)
	a2 := take(t, g2, 100)
	if len(a1) == 0 || len(a2) == 0 {
		t.Fatal("cached-graph workloads must stream")
	}
}

func TestIsIrregular(t *testing.T) {
	for _, n := range []string{"DFS", "mcf"} {
		if !IsIrregular(n) {
			t.Errorf("%s should be irregular", n)
		}
	}
	for _, n := range []string{"BERT", "MLP"} {
		if IsIrregular(n) {
			t.Errorf("%s should be regular", n)
		}
	}
}

func TestModelByName(t *testing.T) {
	if _, ok := ModelByName("BERT"); !ok {
		t.Fatal("BERT missing")
	}
	if _, ok := ModelByName("GPT-9"); ok {
		t.Fatal("unknown model resolved")
	}
	for _, m := range MLModels() {
		var total uint64
		for _, l := range m.Layers {
			total += l.WeightBytes
		}
		if total < 1<<20 {
			t.Errorf("%s weights %d bytes — too small to be the paper's model", m.Name, total)
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"mcf", "DLRM", "BFS"} {
		o := Options{Threads: 2, Seed: 9, GraphNodes: 2000, GraphDegree: 4}
		g1, _ := Build(name, o)
		g2, _ := Build(name, o)
		a1 := take(t, g1, 2000)
		a2 := take(t, g2, 2000)
		if len(a1) != len(a2) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a1 {
			if a1[i] != a2[i] {
				t.Fatalf("%s: streams diverge at %d: %v vs %v", name, i, a1[i], a2[i])
			}
		}
	}
}
