// Package ctr implements the encryption-counter organisations used by
// AES-CTR secure memory: the monolithic 64-bit counter, the split counter of
// Yan et al. (major + per-line minor counters), and MorphCtr (Saileshwar et
// al., MICRO'18) with its 1:128 counter-to-data ratio, 3-bit minors and
// zero-counter compression. The Store tracks counter values functionally and
// reports overflow (re-encryption) events.
package ctr

import "fmt"

// Scheme describes a counter organisation: how many 64-byte data lines one
// 64-byte counter block covers and how many writes a minor counter absorbs
// before the block must re-encrypt.
type Scheme struct {
	SchemeName string
	// LinesPerBlock is the counter-to-data mapping ratio (8, 64, 128).
	LinesPerBlock int
	// MinorCapacity is the number of writes to one line before the block
	// overflows and triggers re-encryption.
	MinorCapacity uint32
	// MajorBits and MinorBits document the block layout.
	MajorBits, MinorBits int
}

// Name returns the scheme's label.
func (s Scheme) Name() string { return s.SchemeName }

// Mono is the baseline: one 64-bit counter per line, eight counters per
// 64-byte block, effectively never overflowing.
func Mono() Scheme {
	return Scheme{SchemeName: "Mono", LinesPerBlock: 8, MinorCapacity: 1 << 30, MajorBits: 64, MinorBits: 0}
}

// Split is Yan et al.'s split counter: a 64-bit major plus 64 7-bit minors
// in one block (1:64 ratio, 127 writes per minor).
func Split() Scheme {
	return Scheme{SchemeName: "Split", LinesPerBlock: 64, MinorCapacity: 127, MajorBits: 64, MinorBits: 7}
}

// Morph is MorphCtr: 57-bit major, 7-bit format field, 128 3-bit minors
// (1:128 ratio). Thanks to morphable formats (including zero-counter
// compression) a counter absorbs 67 writes before re-encryption — the figure
// the paper uses for overflow handling (§5).
func Morph() Scheme {
	return Scheme{SchemeName: "MorphCtr", LinesPerBlock: 128, MinorCapacity: 67, MajorBits: 57, MinorBits: 3}
}

// Stats counts functional counter events.
type Stats struct {
	Increments    uint64
	Overflows     uint64 // block re-encryptions
	FormatToZCC   uint64 // MorphCtr format transitions (dense → sparse)
	FormatToDense uint64
}

// Store holds the counters for a data region. It is sparse: blocks
// materialise on first write, matching a zero-initialised memory.
type Store struct {
	scheme Scheme
	morph  bool // scheme is MorphCtr: format morphing applies
	blocks blockMap

	Stats Stats
}

// blockMap is a growable linear-probing open-addressed index from counter
// block number to its materialised state. Every counter access walks it (one
// lookup per Value/Increment), so it replaces the runtime map on that path:
// a hit is one or two array probes with no hashing dispatch, and blocks are
// never deleted, so there is no tombstone bookkeeping. Block numbers are
// line>>log2(LinesPerBlock) and stay far below the reserved empty sentinel.
type blockMap struct {
	keys []uint64
	vals []*block
	mask uint64
	n    int
}

const blockEmpty = ^uint64(0)

func (m *blockMap) init(size int) {
	m.keys = make([]uint64, size)
	m.vals = make([]*block, size)
	m.mask = uint64(size - 1)
	m.n = 0
	for i := range m.keys {
		m.keys[i] = blockEmpty
	}
}

func (m *blockMap) home(key uint64) uint64 {
	return (key * 0x9E3779B97F4A7C15) >> 32 & m.mask
}

// at returns the block for key, or nil when absent.
func (m *blockMap) at(key uint64) *block {
	for i := m.home(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case key:
			return m.vals[i]
		case blockEmpty:
			return nil
		}
	}
}

// put inserts key→b (key must be absent), growing at ¾ load.
func (m *blockMap) put(key uint64, b *block) {
	if 4*(m.n+1) > 3*len(m.keys) {
		old := *m
		m.init(2 * len(old.keys))
		for i, k := range old.keys {
			if k != blockEmpty {
				m.set(k, old.vals[i])
			}
		}
		m.n = old.n
	}
	m.set(key, b)
	m.n++
}

func (m *blockMap) set(key uint64, b *block) {
	i := m.home(key)
	for m.keys[i] != blockEmpty {
		i = (i + 1) & m.mask
	}
	m.keys[i], m.vals[i] = key, b
}

type block struct {
	major  uint64
	minors []uint32
	zero   int  // count of zero minors, maintained incrementally
	zcc    bool // MorphCtr: currently in zero-counter-compressed format
}

// NewStore builds a counter store for the given scheme.
func NewStore(s Scheme) *Store {
	if s.LinesPerBlock <= 0 || s.MinorCapacity == 0 {
		panic(fmt.Sprintf("ctr: invalid scheme %+v", s))
	}
	st := &Store{scheme: s, morph: s.SchemeName == "MorphCtr"}
	st.blocks.init(256)
	return st
}

// Scheme returns the store's counter organisation.
func (st *Store) Scheme() Scheme { return st.scheme }

// BlockOf maps a data cache-line number to its counter-block index.
func (st *Store) BlockOf(dataLine uint64) uint64 {
	return dataLine / uint64(st.scheme.LinesPerBlock)
}

// slotOf returns the minor-counter slot within the block.
func (st *Store) slotOf(dataLine uint64) int {
	return int(dataLine % uint64(st.scheme.LinesPerBlock))
}

func (st *Store) get(blockIdx uint64) *block {
	b := st.blocks.at(blockIdx)
	if b == nil {
		b = &block{minors: make([]uint32, st.scheme.LinesPerBlock), zero: st.scheme.LinesPerBlock, zcc: true}
		st.blocks.put(blockIdx, b)
	}
	return b
}

// Value returns the (major, minor) counter pair for a line — the value that
// feeds AES_Enc(PA ‖ CTR_M ‖ CTR_m).
func (st *Store) Value(dataLine uint64) (major uint64, minor uint32) {
	b := st.blocks.at(st.BlockOf(dataLine))
	if b == nil {
		return 0, 0
	}
	return b.major, b.minors[st.slotOf(dataLine)]
}

// Increment advances the line's counter for a memory write. It returns
// overflowed=true when the minor counter exceeded its capacity, forcing the
// whole block to re-encrypt (major++, minors reset); reencryptLines is the
// number of data lines whose ciphertext must be regenerated (the paper
// models this as background 64B DRAM requests).
func (st *Store) Increment(dataLine uint64) (overflowed bool, reencryptLines int) {
	st.Stats.Increments++
	bi := st.BlockOf(dataLine)
	b := st.get(bi)
	slot := st.slotOf(dataLine)
	if b.minors[slot] == 0 {
		b.zero--
	}
	b.minors[slot]++
	st.updateFormat(b)
	if b.minors[slot] > st.scheme.MinorCapacity {
		st.Stats.Overflows++
		b.major++
		live := 0
		for i := range b.minors {
			if b.minors[i] != 0 {
				live++
			}
			b.minors[i] = 0
		}
		b.minors[slot] = 1 // the write that caused the overflow
		b.zero = len(b.minors) - 1
		if !b.zcc && st.morph {
			st.Stats.FormatToZCC++
		}
		b.zcc = true
		return true, live
	}
	return false, 0
}

// updateFormat models MorphCtr's morphing between zero-counter-compressed
// and uniform formats: a block stays ZCC while at least half its minors are
// zero. Transitions are counted for the ablation study. The zero-minor
// count is maintained incrementally by the callers, so this is O(1) per
// write instead of a scan over all minors.
func (st *Store) updateFormat(b *block) {
	if !st.morph {
		return
	}
	sparse := b.zero*2 >= len(b.minors)
	if sparse != b.zcc {
		if sparse {
			st.Stats.FormatToZCC++
		} else {
			st.Stats.FormatToDense++
		}
		b.zcc = sparse
	}
}

// WillOverflow reports whether the next Increment of this line would trigger
// block re-encryption. The functional enclave uses it to decrypt live lines
// under the old counters before the reset.
func (st *Store) WillOverflow(dataLine uint64) bool {
	b := st.blocks.at(st.BlockOf(dataLine))
	if b == nil {
		return false
	}
	return b.minors[st.slotOf(dataLine)]+1 > st.scheme.MinorCapacity
}

// LiveLines returns the data-line numbers within a counter block whose minor
// counters are non-zero (i.e. lines holding ciphertext under this block's
// counters).
func (st *Store) LiveLines(blockIdx uint64) []uint64 {
	b := st.blocks.at(blockIdx)
	if b == nil {
		return nil
	}
	base := blockIdx * uint64(st.scheme.LinesPerBlock)
	var out []uint64
	for i, m := range b.minors {
		if m != 0 {
			out = append(out, base+uint64(i))
		}
	}
	return out
}

// BlockDigestInput serialises a counter block's contents (major + minors)
// for hashing into the integrity tree.
func (st *Store) BlockDigestInput(blockIdx uint64) []byte {
	out := make([]byte, 8+4*st.scheme.LinesPerBlock)
	b := st.blocks.at(blockIdx)
	if b == nil {
		return out
	}
	putU64(out, b.major)
	for i, m := range b.minors {
		putU32(out[8+4*i:], m)
	}
	return out
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putU32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// BlockExists reports whether the block has materialised (any write landed
// in it). Unmaterialised blocks are all-zero and absent from the MT.
func (st *Store) BlockExists(blockIdx uint64) bool {
	return st.blocks.at(blockIdx) != nil
}

// SnapshotBlock captures a counter block's values so tests can model a
// physical attacker rolling counters in DRAM back to a stale version.
func (st *Store) SnapshotBlock(blockIdx uint64) (major uint64, minors []uint32) {
	b := st.blocks.at(blockIdx)
	if b == nil {
		return 0, make([]uint32, st.scheme.LinesPerBlock)
	}
	return b.major, append([]uint32(nil), b.minors...)
}

// RestoreBlock overwrites a counter block with previously captured values —
// the counter half of a replay attack. Legitimate controllers never call
// this; it exists for fault-injection tests.
func (st *Store) RestoreBlock(blockIdx uint64, major uint64, minors []uint32) {
	b := st.get(blockIdx)
	b.major = major
	copy(b.minors, minors)
	b.zero = 0
	for _, m := range b.minors {
		if m == 0 {
			b.zero++
		}
	}
}

// BlocksTouched reports how many counter blocks have materialised.
func (st *Store) BlocksTouched() int { return st.blocks.n }

// CtrBlocksFor reports how many counter blocks cover a memory of the given
// size (bytes), e.g. 32GB/64B/128 ≈ 4.2M blocks for MorphCtr.
func (s Scheme) CtrBlocksFor(memBytes uint64) uint64 {
	lines := (memBytes + 63) / 64
	per := uint64(s.LinesPerBlock)
	return (lines + per - 1) / per
}
