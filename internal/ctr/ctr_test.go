package ctr

import (
	"testing"
	"testing/quick"
)

func TestSchemeRatios(t *testing.T) {
	if Mono().LinesPerBlock != 8 {
		t.Error("mono covers 8 lines per 64B block")
	}
	if Split().LinesPerBlock != 64 {
		t.Error("split covers 64 lines")
	}
	if Morph().LinesPerBlock != 128 {
		t.Error("morphctr covers 128 lines (1:128, §2.2)")
	}
	if Morph().MinorCapacity != 67 {
		t.Error("morphctr re-encrypts after 67 writes (§5)")
	}
}

func TestBlockMapping(t *testing.T) {
	st := NewStore(Morph())
	if st.BlockOf(0) != 0 || st.BlockOf(127) != 0 || st.BlockOf(128) != 1 {
		t.Fatal("128 lines must share one counter block")
	}
	f := func(line uint64) bool {
		line %= 1 << 40
		return st.BlockOf(line) == line/128
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueStartsZero(t *testing.T) {
	st := NewStore(Split())
	if maj, min := st.Value(12345); maj != 0 || min != 0 {
		t.Fatal("unwritten lines have zero counters")
	}
	if st.BlocksTouched() != 0 {
		t.Fatal("reads must not materialise blocks")
	}
}

func TestIncrementAdvancesMinor(t *testing.T) {
	st := NewStore(Morph())
	for i := 1; i <= 5; i++ {
		ov, _ := st.Increment(1000)
		if ov {
			t.Fatal("no overflow expected")
		}
		if _, min := st.Value(1000); min != uint32(i) {
			t.Fatalf("minor = %d after %d writes", min, i)
		}
	}
	if maj, _ := st.Value(1000); maj != 0 {
		t.Fatal("major must not advance before overflow")
	}
	// Sibling line in the same block has its own minor.
	if _, min := st.Value(1001); min != 0 {
		t.Fatal("sibling minor must be independent")
	}
}

func TestOverflowResetsBlock(t *testing.T) {
	st := NewStore(Morph())
	st.Increment(5) // line 5, same block as 0..127
	var overflowed bool
	var reenc int
	for i := uint32(0); i <= Morph().MinorCapacity; i++ {
		overflowed, reenc = st.Increment(0)
	}
	if !overflowed {
		t.Fatal("write past capacity must overflow")
	}
	if reenc != 2 {
		t.Fatalf("re-encrypt lines = %d, want 2 (lines 0 and 5 were live)", reenc)
	}
	maj, min := st.Value(0)
	if maj != 1 || min != 1 {
		t.Fatalf("after overflow: major=%d minor=%d, want 1/1", maj, min)
	}
	if _, min5 := st.Value(5); min5 != 0 {
		t.Fatal("sibling minors must reset on overflow")
	}
	if st.Stats.Overflows != 1 {
		t.Fatalf("overflow count %d", st.Stats.Overflows)
	}
}

func TestCounterValuesNeverRepeatAcrossOverflow(t *testing.T) {
	// Anti-replay invariant: the (major, minor) pair for a line must be
	// unique across every write. Violations would reuse a one-time pad.
	st := NewStore(Morph())
	seen := map[[2]uint64]bool{{0, 0}: true}
	for i := 0; i < 500; i++ {
		st.Increment(7)
		maj, min := st.Value(7)
		key := [2]uint64{maj, uint64(min)}
		if seen[key] {
			t.Fatalf("counter pair %v repeated at write %d — OTP reuse!", key, i)
		}
		seen[key] = true
	}
}

func TestMonoEffectivelyNeverOverflows(t *testing.T) {
	st := NewStore(Mono())
	for i := 0; i < 100000; i++ {
		if ov, _ := st.Increment(3); ov {
			t.Fatal("mono counter overflowed")
		}
	}
}

func TestMorphFormatTransitions(t *testing.T) {
	st := NewStore(Morph())
	// Write most lines in one block: the block densifies, then overflow
	// returns it to ZCC.
	for line := uint64(0); line < 100; line++ {
		st.Increment(line)
	}
	if st.Stats.FormatToDense == 0 {
		t.Error("dense block should leave ZCC format")
	}
	for i := uint32(0); i <= Morph().MinorCapacity+1; i++ {
		st.Increment(0)
	}
	if st.Stats.FormatToZCC == 0 {
		t.Error("overflow should restore ZCC format")
	}
}

func TestCtrBlocksFor(t *testing.T) {
	// 32GB / 64B lines / 128 per block = 4,194,304 blocks.
	if got := Morph().CtrBlocksFor(32 << 30); got != 4194304 {
		t.Fatalf("CtrBlocksFor(32GB) = %d", got)
	}
	if got := Mono().CtrBlocksFor(64 * 8); got != 1 {
		t.Fatalf("one block expected, got %d", got)
	}
	if got := Mono().CtrBlocksFor(64*8 + 1); got != 2 {
		t.Fatalf("rounding up expected, got %d", got)
	}
}

func TestInvalidSchemePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore should panic on an invalid scheme")
		}
	}()
	NewStore(Scheme{})
}

func TestSplitCapacity(t *testing.T) {
	st := NewStore(Split())
	for i := uint32(0); i < Split().MinorCapacity; i++ {
		if ov, _ := st.Increment(0); ov {
			t.Fatalf("overflow too early at write %d", i+1)
		}
	}
	if ov, _ := st.Increment(0); !ov {
		t.Fatal("split must overflow at capacity+1")
	}
}
