// Package policytrain closes the train→freeze→deploy loop: it replays
// transition logs recorded by a live simulation (cosmos-sim -policy-log)
// through any rl.Policy, producing frozen cosmos-policy-v1 files that a
// later run deploys via a PolicySpec. Because training happens offline, a
// cheap policy can be distilled from an expensive exploration run — and the
// train-on-A/serve-on-B generalization matrices fall out for free.
package policytrain

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"cosmos/internal/rl"
)

// Roles a transition log distinguishes: the data location predictor
// (Algorithm 3) and the CTR locality predictor (Algorithm 1).
const (
	RoleData = "data"
	RoleCtr  = "ctr"
)

// Roles lists the valid predictor roles.
func Roles() []string { return []string{RoleData, RoleCtr} }

// ValidateRole rejects unknown role names with the valid list (same UX as
// the design/workload/policy registries).
func ValidateRole(role string) error {
	for _, r := range Roles() {
		if role == r {
			return nil
		}
	}
	return fmt.Errorf("policytrain: unknown role %q (valid: %s)", role, strings.Join(Roles(), ", "))
}

// Record is one logged transition, tagged with the predictor role that
// produced it. The log is JSONL: one Record per line, in emission order —
// order matters for online learners, so both writer and reader preserve it.
type Record struct {
	Role string `json:"role"`
	rl.Transition
}

// LogWriter streams Records to JSONL. It is safe for use from the single
// simulation goroutine; Sink closures can be attached to both predictors at
// once (the engine serialises accesses, and parallel-core mode is rejected
// by the CLI when logging, so no interleaving hazard exists — the mutex is
// belt-and-braces for library users).
type LogWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	c   io.Closer
	err error

	Records uint64
}

// NewLogWriter wraps w; if w is also an io.Closer, Close closes it.
func NewLogWriter(w io.Writer) *LogWriter {
	lw := &LogWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		lw.c = c
	}
	return lw
}

// CreateLog creates path and returns a writer over it.
func CreateLog(path string) (*LogWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("policytrain: create log: %w", err)
	}
	return NewLogWriter(f), nil
}

// Write appends one record.
func (lw *LogWriter) Write(rec Record) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if lw.err != nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		lw.err = err
		return
	}
	b = append(b, '\n')
	if _, err := lw.bw.Write(b); err != nil {
		lw.err = err
		return
	}
	lw.Records++
}

// Sink returns a recorder sink (for core.*.AttachRecorder) that tags every
// transition with role.
func (lw *LogWriter) Sink(role string) func(rl.Transition) {
	return func(t rl.Transition) {
		lw.Write(Record{Role: role, Transition: t})
	}
}

// Close flushes and closes the underlying writer, reporting the first error
// seen anywhere in the stream.
func (lw *LogWriter) Close() error {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if err := lw.bw.Flush(); err != nil && lw.err == nil {
		lw.err = err
	}
	if lw.c != nil {
		if err := lw.c.Close(); err != nil && lw.err == nil {
			lw.err = err
		}
	}
	return lw.err
}

// ReadLog parses a JSONL transition log, keeping only records for role
// (empty role keeps everything). Unparseable lines are an error — a
// truncated final line is reported, not silently dropped.
func ReadLog(r io.Reader, role string) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("policytrain: log line %d: %w", line, err)
		}
		if role != "" && rec.Role != role {
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policytrain: read log: %w", err)
	}
	return recs, nil
}

// ReadLogFile reads a log from disk.
func ReadLogFile(path, role string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("policytrain: open log: %w", err)
	}
	defer f.Close()
	return ReadLog(f, role)
}

// Stats summarises a training run.
type Stats struct {
	Transitions int     `json:"transitions"` // records replayed per epoch
	Epochs      int     `json:"epochs"`
	Agreement   float64 `json:"agreement"` // post-training action agreement with reward-implied targets
}

// Train replays recs through p for the given number of epochs (min 1), then
// measures agreement: the fraction of transitions whose greedy post-training
// action matches the reward-implied target (the taken action if rewarded,
// its complement if punished). The policy is NOT frozen — callers freeze
// when they deploy.
func Train(p rl.Policy, recs []Record, epochs int) Stats {
	if epochs < 1 {
		epochs = 1
	}
	for e := 0; e < epochs; e++ {
		for _, rec := range recs {
			p.Learn(rec.Transition)
		}
	}
	agree := 0
	for _, rec := range recs {
		want := rec.Action
		if rec.Reward < 0 {
			want = 1 - want
		}
		if p.Act(rec.Key).Action == want {
			agree++
		}
	}
	st := Stats{Transitions: len(recs), Epochs: epochs}
	if len(recs) > 0 {
		st.Agreement = float64(agree) / float64(len(recs))
	}
	return st
}

// TrainFromLog builds the policy a spec describes, trains it on the log's
// records for the given role, and returns the trained (unfrozen) policy
// with its stats. The snapshot a caller saves afterwards should carry the
// role (rl.SavePolicy does this).
func TrainFromLog(logPath string, spec rl.PolicySpec, role string, epochs int, seed uint64) (rl.Policy, Stats, error) {
	if err := ValidateRole(role); err != nil {
		return nil, Stats{}, err
	}
	recs, err := ReadLogFile(logPath, role)
	if err != nil {
		return nil, Stats{}, err
	}
	if len(recs) == 0 {
		return nil, Stats{}, fmt.Errorf("policytrain: log %s has no %q transitions", logPath, role)
	}
	p, err := rl.NewPolicy(spec, seed)
	if err != nil {
		return nil, Stats{}, err
	}
	st := Train(p, recs, epochs)
	return p, st, nil
}

// FreezeToFile stamps provenance into the policy's snapshot and writes it
// as a cosmos-policy-v1 file.
func FreezeToFile(path string, p rl.Policy, role, trainedOn string, st Stats) error {
	sn := p.Snapshot()
	sn.Meta.Role = role
	sn.Meta.TrainedOn = trainedOn
	sn.Meta.Transitions = st.Transitions * st.Epochs
	return rl.SaveSnapshot(path, sn)
}
