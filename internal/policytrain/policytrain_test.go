package policytrain

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cosmos/internal/rl"
)

// synthetic emits n transitions over a small universe of cache lines
// (realistic: counter working sets are small): odd-indexed lines want
// action 1, even-indexed want action 0.
func synthetic(n int, role string) []Record {
	rng := rl.NewRand(77)
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		idx := rng.Intn(128)
		key := uint64(idx) << 6
		want := idx & 1
		// Half the log takes the right action (rewarded), half the wrong one
		// (punished) — both are informative.
		act := int(rng.Uint64() & 1)
		r := 10.0
		if act != want {
			r = -10
		}
		recs = append(recs, Record{Role: role, Transition: rl.Transition{
			Key: key, State: rl.HashState(key, 1024), Action: act, Reward: r,
		}})
	}
	return recs
}

func TestLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	lw := NewLogWriter(&buf)
	data := lw.Sink(RoleData)
	ctr := lw.Sink(RoleCtr)
	data(rl.Transition{Key: 64, Action: 1, Reward: 9})
	ctr(rl.Transition{Key: 128, Action: 0, Reward: -12, Next: 3.5})
	data(rl.Transition{Key: 192, Action: 0, Reward: -30})
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	if lw.Records != 3 {
		t.Fatalf("wrote %d records, want 3", lw.Records)
	}
	all, err := ReadLog(bytes.NewReader(buf.Bytes()), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("read %d records, want 3", len(all))
	}
	dataOnly, err := ReadLog(bytes.NewReader(buf.Bytes()), RoleData)
	if err != nil {
		t.Fatal(err)
	}
	if len(dataOnly) != 2 || dataOnly[0].Key != 64 || dataOnly[1].Key != 192 {
		t.Fatalf("role filter broken: %+v", dataOnly)
	}
	if dataOnly[0].Reward != 9 {
		t.Errorf("reward lost in round trip: %v", dataOnly[0].Reward)
	}
}

func TestReadLogRejectsCorruption(t *testing.T) {
	if _, err := ReadLog(strings.NewReader("{\"role\":\"data\"}\nnot json\n"), ""); err == nil {
		t.Error("corrupt line must error")
	}
	if _, err := ReadLog(strings.NewReader(`{"role":"data","key":1}`+"\n"+`{"trunc`), ""); err == nil {
		t.Error("truncated final line must error")
	}
}

func TestValidateRole(t *testing.T) {
	for _, r := range Roles() {
		if err := ValidateRole(r); err != nil {
			t.Errorf("role %q rejected: %v", r, err)
		}
	}
	err := ValidateRole("prefetch")
	if err == nil || !strings.Contains(err.Error(), "data, ctr") {
		t.Errorf("unknown role error should list valid roles, got %v", err)
	}
}

func TestTrainImprovesAgreement(t *testing.T) {
	// Table-style learners memorise the per-line pattern; the MLP's hashed
	// ±1 signatures cannot represent an arbitrary labeling (it is the
	// smallest policy in the zoo — that trade-off is the point), so it gets
	// a globally-biased pattern instead, which exercises the same training
	// loop end to end.
	recs := synthetic(20000, RoleCtr)
	for kind, min := range map[string]float64{rl.KindTabular: 0.9, rl.KindPerceptron: 0.95} {
		p, err := rl.NewPolicy(rl.PolicySpec{Kind: kind, States: 1024}, 5)
		if err != nil {
			t.Fatal(err)
		}
		st := Train(p, recs, 2)
		if st.Transitions != len(recs) || st.Epochs != 2 {
			t.Errorf("%s: stats %+v", kind, st)
		}
		if st.Agreement < min {
			t.Errorf("%s: agreement %.2f after training, want ≥%.2f", kind, st.Agreement, min)
		}
	}

	biased := make([]Record, 0, 5000)
	rng := rl.NewRand(9)
	for i := 0; i < 5000; i++ {
		key := uint64(rng.Intn(128)) << 6
		act := int(rng.Uint64() & 1)
		r := 10.0
		if act != 1 { // every key wants action 1
			r = -10
		}
		biased = append(biased, Record{Role: RoleCtr, Transition: rl.Transition{
			Key: key, Action: act, Reward: r,
		}})
	}
	p, err := rl.NewPolicy(rl.PolicySpec{Kind: rl.KindMLP}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st := Train(p, biased, 2); st.Agreement < 0.9 {
		t.Errorf("mlp: agreement %.2f on biased pattern, want ≥0.9", st.Agreement)
	}
}

func TestTrainFreezeDeployLoop(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "transitions.jsonl")
	lw, err := CreateLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range synthetic(10000, RoleCtr) {
		lw.Write(rec)
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}

	p, st, err := TrainFromLog(logPath, rl.PolicySpec{Kind: rl.KindPerceptron}, RoleCtr, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	frozenPath := filepath.Join(dir, "frozen.json")
	if err := FreezeToFile(frozenPath, p, RoleCtr, "synthetic", st); err != nil {
		t.Fatal(err)
	}
	sn, err := rl.LoadSnapshot(frozenPath)
	if err != nil {
		t.Fatal(err)
	}
	if sn.Meta.Role != RoleCtr || sn.Meta.TrainedOn != "synthetic" || sn.Meta.Transitions == 0 {
		t.Errorf("provenance not stamped: %+v", sn.Meta)
	}

	// Deploy twice; frozen decisions must agree everywhere.
	a, err := rl.NewPolicy(rl.PolicySpec{Frozen: &sn}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rl.NewPolicy(rl.PolicySpec{Frozen: &sn}, 99) // seed must not matter when frozen
	if err != nil {
		t.Fatal(err)
	}
	rng := rl.NewRand(3)
	for i := 0; i < 5000; i++ {
		key := rng.Uint64() &^ 63
		if a.Act(key) != b.Act(key) {
			t.Fatal("frozen deployments diverged")
		}
	}

	// Training from the wrong role errors (no ctr transitions under "data").
	if _, _, err := TrainFromLog(logPath, rl.PolicySpec{Kind: rl.KindMLP}, RoleData, 1, 1); err == nil {
		t.Error("empty role selection must error")
	}
	if _, _, err := TrainFromLog(logPath, rl.PolicySpec{Kind: rl.KindMLP}, "bogus", 1, 1); err == nil {
		t.Error("unknown role must error")
	}
	if _, _, err := TrainFromLog(filepath.Join(dir, "missing.jsonl"), rl.PolicySpec{Kind: rl.KindMLP}, RoleCtr, 1, 1); err == nil {
		t.Error("missing log must error")
	}
	_ = os.Remove(frozenPath)
}
