package trace

import (
	"os"
	"path/filepath"
	"testing"

	"cosmos/internal/memsys"
)

func TestTraceFileRoundTrip(t *testing.T) {
	for _, name := range []string{"plain.trc", "packed.trc.gz"} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), name)
			src := func() Generator {
				return FromFunc("src", func(emit func(memsys.Access)) {
					for i := 0; i < 5000; i++ {
						emit(memsys.Access{
							Addr:   memsys.Addr(i * 64),
							Type:   memsys.AccessType(i % 2),
							Thread: uint8(i % 4),
							Region: uint16(i % 7),
							Dep:    i%3 == 0,
						})
					}
				})
			}
			n, err := WriteFile(path, src(), 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			if n != 5000 {
				t.Fatalf("wrote %d records", n)
			}

			g, err := OpenFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer g.Close()
			ref := src()
			count := 0
			for {
				want, okW := ref.Next()
				got, okG := g.Next()
				if okW != okG {
					t.Fatalf("length mismatch at %d", count)
				}
				if !okW {
					break
				}
				if got != want {
					t.Fatalf("record %d: got %+v want %+v", count, got, want)
				}
				count++
			}
			if count != 5000 {
				t.Fatalf("replayed %d records", count)
			}
			CloseIfCloser(ref)
		})
	}
}

func TestTraceFileLimit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lim.trc")
	gen := NewSequential(memsys.Region{Base: 0, Size: 64 * 100, Elem: 1}, 0, 1)
	n, err := WriteFile(path, gen, 42)
	if err != nil || n != 42 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	g, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	count := 0
	for {
		if _, ok := g.Next(); !ok {
			break
		}
		count++
	}
	if count != 42 {
		t.Fatalf("replayed %d", count)
	}
}

func TestOpenFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.trc")
	os.WriteFile(bad, []byte("this is not a trace"), 0o644)
	if _, err := OpenFile(bad); err == nil {
		t.Fatal("garbage file must be rejected")
	}
	short := filepath.Join(dir, "short.trc")
	os.WriteFile(short, []byte("CT"), 0o644)
	if _, err := OpenFile(short); err == nil {
		t.Fatal("short file must be rejected")
	}
	if _, err := OpenFile(filepath.Join(dir, "missing.trc")); err == nil {
		t.Fatal("missing file must error")
	}
	wrongVer := filepath.Join(dir, "ver.trc")
	os.WriteFile(wrongVer, []byte("CTRC\x07\x00\x00\x00"), 0o644)
	if _, err := OpenFile(wrongVer); err == nil {
		t.Fatal("wrong version must be rejected")
	}
}
