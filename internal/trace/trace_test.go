package trace

import (
	"testing"

	"cosmos/internal/memsys"
)

func region(size uint64) memsys.Region {
	return memsys.Region{Name: "r", Base: 1 << 20, Size: size, Elem: 1}
}

func drain(g Generator, max int) []memsys.Access {
	var out []memsys.Access
	for len(out) < max {
		a, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

func TestSequentialWrapsAndWrites(t *testing.T) {
	g := NewSequential(region(64*4), 4, 9)
	got := drain(g, 8)
	if len(got) != 8 {
		t.Fatalf("sequential should be endless, got %d", len(got))
	}
	for i, a := range got {
		wantAddr := memsys.Addr(1<<20 + (i%4)*64)
		if a.Addr != wantAddr {
			t.Fatalf("access %d addr %#x, want %#x", i, uint64(a.Addr), uint64(wantAddr))
		}
		if a.Region != 9 {
			t.Fatal("region tag lost")
		}
	}
	writes := 0
	for _, a := range got {
		if a.Type == memsys.Write {
			writes++
		}
	}
	if writes != 2 {
		t.Fatalf("writeEvery=4 over 8 accesses: %d writes, want 2", writes)
	}
}

func TestLimit(t *testing.T) {
	g := Limit(NewSequential(region(64*100), 0, 0), 10)
	if got := drain(g, 1000); len(got) != 10 {
		t.Fatalf("Limit(10) yielded %d", len(got))
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted limit must stay exhausted")
	}
}

func TestUniformStaysInRegion(t *testing.T) {
	r := region(64 * 128)
	g := NewUniform(r, 30, 42, 0)
	writes := 0
	for i := 0; i < 5000; i++ {
		a, ok := g.Next()
		if !ok {
			t.Fatal("uniform must be endless")
		}
		if !r.Contains(a.Addr) {
			t.Fatalf("address %#x outside region", uint64(a.Addr))
		}
		if uint64(a.Addr)%64 != 0 {
			t.Fatal("unaligned access")
		}
		if a.Type == memsys.Write {
			writes++
		}
	}
	if writes < 1200 || writes > 1800 {
		t.Fatalf("writePct=30: %d/5000 writes", writes)
	}
}

func TestUniformDeterminism(t *testing.T) {
	r := region(64 * 64)
	a := NewUniform(r, 0, 7, 0)
	b := NewUniform(r, 0, 7, 0)
	for i := 0; i < 100; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x != y {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := region(64 * 1024)
	g := NewZipf(r, 1024, 0.99, 3, 0)
	counts := map[memsys.Addr]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		a, _ := g.Next()
		if !r.Contains(a.Addr) {
			t.Fatalf("zipf escaped region: %#x", uint64(a.Addr))
		}
		counts[a.Addr]++
	}
	// The most popular line should dominate: >2% of accesses with
	// theta=0.99 over 1024 items (expected ≈13%).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.02 {
		t.Fatalf("zipf max share %.4f, want skewed", float64(max)/n)
	}
	if len(counts) < 100 {
		t.Fatalf("zipf touched only %d distinct lines — tail missing", len(counts))
	}
}

func TestPointerChaseVisitsEverything(t *testing.T) {
	const n = 256
	r := region(64 * n)
	g := NewPointerChase(r, n, 11, 0)
	seen := map[memsys.Addr]bool{}
	for i := 0; i < n; i++ {
		a, _ := g.Next()
		seen[a.Addr] = true
	}
	// Sattolo permutation is a single cycle: n steps visit n lines.
	if len(seen) != n {
		t.Fatalf("cycle visited %d/%d lines", len(seen), n)
	}
	// And then repeats the same cycle.
	first, _ := NewPointerChase(r, n, 11, 0).Next()
	again, _ := g.Next()
	if first != again {
		t.Fatal("cycle must repeat deterministically")
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	mk := func(base uint64) Generator {
		return Limit(NewSequential(memsys.Region{Base: memsys.Addr(base), Size: 64 * 1000, Elem: 1}, 0, 0), 6)
	}
	iv := NewInterleave("mix", []Generator{mk(0), mk(1 << 30)}, 2)
	got := drain(iv, 100)
	if len(got) != 12 {
		t.Fatalf("merged %d accesses, want 12", len(got))
	}
	// chunk=2: threads alternate in pairs, thread IDs stamped.
	wantThreads := []uint8{0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1}
	for i, a := range got {
		if a.Thread != wantThreads[i] {
			t.Fatalf("access %d thread %d, want %d", i, a.Thread, wantThreads[i])
		}
	}
}

func TestInterleaveSurvivesUnevenStreams(t *testing.T) {
	short := Limit(NewSequential(region(64*10), 0, 0), 3)
	long := Limit(NewSequential(region(64*10), 0, 0), 9)
	iv := NewInterleave("mix", []Generator{short, long}, 2)
	got := drain(iv, 100)
	if len(got) != 12 {
		t.Fatalf("merged %d, want 12", len(got))
	}
	// Tail must be all thread 1 after thread 0 is exhausted.
	for _, a := range got[6:] {
		if a.Thread != 1 {
			t.Fatalf("after exhaustion only thread 1 should run, got t%d", a.Thread)
		}
	}
}

func TestFromFuncStreams(t *testing.T) {
	g := FromFunc("push", func(emit func(memsys.Access)) {
		for i := 0; i < 10000; i++ {
			emit(memsys.Access{Addr: memsys.Addr(i * 64)})
		}
	})
	got := drain(g, 20000)
	if len(got) != 10000 {
		t.Fatalf("got %d accesses", len(got))
	}
	for i, a := range got {
		if a.Addr != memsys.Addr(i*64) {
			t.Fatalf("order broken at %d", i)
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted FromFunc must report eof")
	}
}

func TestFromFuncCloseCancels(t *testing.T) {
	g := FromFunc("endless", func(emit func(memsys.Access)) {
		for i := uint64(0); ; i++ {
			emit(memsys.Access{Addr: memsys.Addr(i)})
			if i > 1<<22 {
				return // safety: cancellation must kick in long before
			}
		}
	})
	if _, ok := g.Next(); !ok {
		t.Fatal("first access should arrive")
	}
	CloseIfCloser(g) // must not deadlock
	if _, ok := g.Next(); ok {
		t.Fatal("closed generator must be exhausted")
	}
}

func TestCloseIfCloserOnPlainGenerator(t *testing.T) {
	// Sequential does not implement Closer — must be a no-op, not a panic.
	CloseIfCloser(NewSequential(region(64), 0, 0))
}

func TestConcatChainsPhases(t *testing.T) {
	mk := func() Generator {
		return Concat("mcf,DFS",
			Limit(NewSequential(region(64*100), 0, 0), 5),
			Limit(NewSequential(memsys.Region{Name: "r2", Base: 1 << 24, Size: 64 * 100, Elem: 1}, 0, 0), 5),
		)
	}
	g := mk()
	if g.Name() != "mcf,DFS" {
		t.Fatalf("name = %q", g.Name())
	}
	got := drain(g, 1000)
	if len(got) != 10 {
		t.Fatalf("concat of 5+5 yielded %d", len(got))
	}
	for i, a := range got {
		inSecond := uint64(a.Addr) >= 1<<24
		if (i >= 5) != inSecond {
			t.Fatalf("access %d at %#x crosses the phase seam wrong", i, uint64(a.Addr))
		}
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted concat must stay exhausted")
	}

	// Block decoding spans the seam and matches Next exactly.
	g2 := mk()
	buf := make([]memsys.Access, 8)
	if n := NextBlock(g2, buf); n != 8 {
		t.Fatalf("NextBlock across the seam = %d, want 8", n)
	}
	for i := range buf {
		if buf[i] != got[i] {
			t.Fatalf("block access %d = %+v, want %+v", i, buf[i], got[i])
		}
	}
	if n := NextBlock(g2, buf); n != 2 {
		t.Fatalf("tail block = %d, want 2", n)
	}
}
