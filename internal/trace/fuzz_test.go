package trace

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"cosmos/internal/memsys"
)

// FuzzTraceFile feeds arbitrary bytes to the trace-file parser: OpenFile
// must either fail with an error or produce a generator whose Next/Close
// never panic, whatever the input — truncated headers, bad magic, wrong
// versions, partial records, random garbage.
func FuzzTraceFile(f *testing.F) {
	// A valid file, produced by the writer itself.
	dir := f.TempDir()
	valid := filepath.Join(dir, "seed.trace")
	gen := NewUniform(memsys.Region{Base: 0, Size: 1 << 20, Elem: 1}, 25, 1, 1)
	if _, err := WriteFile(valid, gen, 16); err != nil {
		f.Fatal(err)
	}
	b, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)

	f.Add([]byte{})                            // empty
	f.Add([]byte("CTRC"))                      // magic only
	f.Add([]byte("CTRC\x01\x00\x00"))          // short header
	f.Add([]byte("XXXX\x01\x00\x00\x00"))      // bad magic
	f.Add([]byte("CTRC\x07\x00\x00\x00"))      // wrong version
	f.Add([]byte("CTRC\x01\x00\x00\x00\x01"))  // partial record
	f.Add(append(b, 0xff, 0xee))               // trailing partial record
	f.Add([]byte("\x1f\x8b\x08\x00garbage..")) // gzip magic, corrupt body

	rec := make([]byte, 8+12)
	copy(rec, "CTRC\x01\x00\x00\x00")
	binary.LittleEndian.PutUint64(rec[8:], 0xdeadbeef)
	rec[16] = 3 // write + dep
	f.Add(rec)

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range []string{"in.trace", "in.trace.gz"} {
			path := filepath.Join(t.TempDir(), name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			g, err := OpenFile(path)
			if err != nil {
				continue // rejected: that is a valid outcome
			}
			// Accepted: the stream must drain cleanly no matter how the
			// bytes were truncated or corrupted past the header.
			for i := 0; i < 1<<16; i++ {
				if _, ok := g.Next(); !ok {
					break
				}
			}
			g.Close()
			// Next after Close must keep reporting EOF, not panic.
			if _, ok := g.Next(); ok {
				t.Fatal("Next returned an access after Close")
			}
		}
	})
}
