package trace

import (
	"os"
	"path/filepath"
	"testing"

	"cosmos/internal/memsys"
)

// collectNext drains up to n accesses via scalar Next.
func collectNext(g Generator, n int) []memsys.Access {
	out := make([]memsys.Access, 0, n)
	for len(out) < n {
		a, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, a)
	}
	return out
}

// collectBlocks drains up to n accesses via NextBlock with an awkward block
// size to exercise short reads and mid-chunk boundaries.
func collectBlocks(g Generator, n, block int) []memsys.Access {
	out := make([]memsys.Access, 0, n)
	buf := make([]memsys.Access, block)
	for len(out) < n {
		want := n - len(out)
		if want > block {
			want = block
		}
		m := NextBlock(g, buf[:want])
		if m == 0 {
			break
		}
		out = append(out, buf[:m]...)
	}
	return out
}

// region for the synthetic generators under test.
var blkRegion = memsys.Region{Base: 1 << 20, Size: 8 << 20, Elem: 1}

// TestBlockDecodeMatchesScalar builds every generator twice with identical
// seeds and asserts the block-decoded stream is element-identical to the
// scalar stream, across block sizes that do and do not divide the total.
func TestBlockDecodeMatchesScalar(t *testing.T) {
	const n = 10_000
	mk := map[string]func() Generator{
		"sequential": func() Generator { return NewSequential(blkRegion, 4, 7) },
		"uniform":    func() Generator { return NewUniform(blkRegion, 30, 11, 7) },
		"zipf":       func() Generator { return NewZipf(blkRegion, 4096, 0.8, 13, 7) },
		"chase":      func() Generator { return NewPointerChase(blkRegion, 4096, 17, 7) },
		"limited":    func() Generator { return Limit(NewUniform(blkRegion, 30, 11, 7), 5000) },
		"funcgen": func() Generator {
			return FromFunc("push", func(emit func(memsys.Access)) {
				g := NewSequential(blkRegion, 3, 9)
				for i := 0; i < 7000; i++ {
					a, _ := g.Next()
					emit(a)
				}
			})
		},
		"interleave": func() Generator {
			return NewInterleave("mix", []Generator{
				NewSequential(blkRegion, 4, 1),
				Limit(NewUniform(blkRegion, 30, 5, 2), 777),
				NewPointerChase(blkRegion, 512, 3, 3),
			}, 10)
		},
	}
	for name, build := range mk {
		for _, block := range []int{1, 3, 64, 333, 4096} {
			a := build()
			b := build()
			want := collectNext(a, n)
			got := collectBlocks(b, n, block)
			CloseIfCloser(a)
			CloseIfCloser(b)
			if len(got) != len(want) {
				t.Fatalf("%s block=%d: got %d accesses, want %d", name, block, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s block=%d: access %d = %+v, want %+v", name, block, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFileBlockDecodeMatchesScalar covers the CTRC parser, including a
// truncated trailing record.
func TestFileBlockDecodeMatchesScalar(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ctrc")
	if _, err := WriteFile(path, NewUniform(blkRegion, 25, 42, 5), 4321); err != nil {
		t.Fatal(err)
	}
	// Append a partial record: both decode paths must stop before it.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ga, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ga.Close()
	gb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer gb.Close()

	want := collectNext(ga, 10_000)
	got := collectBlocks(gb, 10_000, 257)
	if len(want) != 4321 || len(got) != len(want) {
		t.Fatalf("got %d accesses, want %d (scalar %d)", len(got), 4321, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
