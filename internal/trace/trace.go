// Package trace defines the access-stream abstraction that connects workload
// generators to the simulator, plus synthetic pattern generators (sequential,
// random, zipf, pointer-chase) and a deterministic multi-thread interleaver.
// Workloads are streamed — traces are never materialised in memory.
package trace

import (
	"math"
	"sort"

	"cosmos/internal/memsys"
	"cosmos/internal/rl"
)

// Generator produces a stream of memory accesses. Next returns ok=false when
// the stream is exhausted. Implementations must be deterministic for a given
// construction seed.
type Generator interface {
	Name() string
	Next() (memsys.Access, bool)
}

// BlockGenerator is the optional block-decoding extension of Generator.
// NextBlock fills dst with the next accesses of the stream — exactly the
// sequence repeated Next calls would produce — and returns how many were
// written. Short reads (0 < n < len(dst)) are allowed mid-stream; 0 means
// the stream is exhausted. The simulator's batched engine decodes through
// this interface; generators that don't implement it fall back to Next via
// the NextBlock helper.
type BlockGenerator interface {
	Generator
	NextBlock(dst []memsys.Access) int
}

// NextBlock decodes up to len(dst) accesses from g: the block fast path
// when g implements BlockGenerator, a per-access Next loop otherwise.
// Callers must treat a short return like BlockGenerator.NextBlock does —
// keep calling until 0.
func NextBlock(g Generator, dst []memsys.Access) int {
	if bg, ok := g.(BlockGenerator); ok {
		return bg.NextBlock(dst)
	}
	n := 0
	for n < len(dst) {
		a, ok := g.Next()
		if !ok {
			break
		}
		dst[n] = a
		n++
	}
	return n
}

// Closer is implemented by generators that own background resources (the
// goroutine-backed FromFunc producer). Consumers that stop early should
// close them.
type Closer interface {
	Close()
}

// CloseIfCloser shuts a generator down if it needs shutting down.
func CloseIfCloser(g Generator) {
	if c, ok := g.(Closer); ok {
		c.Close()
	}
}

// --- limiting and composition ---

type limited struct {
	g    Generator
	left uint64
}

// Limit caps a stream at n accesses.
func Limit(g Generator, n uint64) Generator { return &limited{g: g, left: n} }

func (l *limited) Name() string { return l.g.Name() }

func (l *limited) Next() (memsys.Access, bool) {
	if l.left == 0 {
		return memsys.Access{}, false
	}
	l.left--
	a, ok := l.g.Next()
	if !ok {
		l.left = 0
	}
	return a, ok
}

// NextBlock implements BlockGenerator: the cap is applied to the block size
// and the wrapped generator decodes the rest.
func (l *limited) NextBlock(dst []memsys.Access) int {
	if l.left == 0 {
		return 0
	}
	if uint64(len(dst)) > l.left {
		dst = dst[:l.left]
	}
	n := NextBlock(l.g, dst)
	l.left -= uint64(n)
	if n == 0 {
		l.left = 0
	}
	return n
}

func (l *limited) Close() { CloseIfCloser(l.g) }

type concat struct {
	name string
	gens []Generator
	cur  int
}

// Concat chains streams back to back: the next generator starts when the
// previous one is exhausted (wrap phase-sized segments with Limit). The
// result models a workload switch mid-run — the access stream is still a
// pure function of its parts, so runs stay deterministic.
func Concat(name string, gens ...Generator) Generator {
	return &concat{name: name, gens: gens}
}

func (c *concat) Name() string { return c.name }

func (c *concat) Next() (memsys.Access, bool) {
	for c.cur < len(c.gens) {
		if a, ok := c.gens[c.cur].Next(); ok {
			return a, true
		}
		CloseIfCloser(c.gens[c.cur])
		c.cur++
	}
	return memsys.Access{}, false
}

// NextBlock implements BlockGenerator: each phase decodes in bulk, and a
// block may span the seam between two phases.
func (c *concat) NextBlock(dst []memsys.Access) int {
	n := 0
	for n < len(dst) && c.cur < len(c.gens) {
		m := NextBlock(c.gens[c.cur], dst[n:])
		if m == 0 {
			CloseIfCloser(c.gens[c.cur])
			c.cur++
			continue
		}
		n += m
	}
	return n
}

func (c *concat) Close() {
	for ; c.cur < len(c.gens); c.cur++ {
		CloseIfCloser(c.gens[c.cur])
	}
}

// Interleave merges per-thread streams deterministically: `chunk` accesses
// from thread 0, then thread 1, … wrapping around, skipping exhausted
// threads. Thread IDs are stamped onto the accesses.
type Interleave struct {
	name    string
	gens    []Generator
	chunk   int
	cur     int
	curLeft int
	done    []bool
	alive   int
}

// NewInterleave builds the merger. chunk controls the interleaving grain
// (how many consecutive accesses one thread issues before yielding).
func NewInterleave(name string, gens []Generator, chunk int) *Interleave {
	if chunk < 1 {
		chunk = 1
	}
	return &Interleave{
		name: name, gens: gens, chunk: chunk,
		curLeft: chunk, done: make([]bool, len(gens)), alive: len(gens),
	}
}

// Name implements Generator.
func (iv *Interleave) Name() string { return iv.name }

// Next implements Generator.
func (iv *Interleave) Next() (memsys.Access, bool) {
	for iv.alive > 0 {
		if iv.done[iv.cur] || iv.curLeft == 0 {
			if !iv.done[iv.cur] && iv.curLeft == 0 {
				// yield to the next thread
			}
			iv.cur = (iv.cur + 1) % len(iv.gens)
			iv.curLeft = iv.chunk
			continue
		}
		a, ok := iv.gens[iv.cur].Next()
		if !ok {
			iv.done[iv.cur] = true
			iv.alive--
			continue
		}
		iv.curLeft--
		a.Thread = uint8(iv.cur)
		return a, true
	}
	return memsys.Access{}, false
}

// NextBlock implements BlockGenerator: each iteration pulls up to the
// current thread's remaining chunk budget from that thread's stream in one
// block, stamps the thread id, and rotates — byte-identical to the scalar
// Next loop, which pulls the same accesses one at a time.
func (iv *Interleave) NextBlock(dst []memsys.Access) int {
	n := 0
	for n < len(dst) && iv.alive > 0 {
		if iv.done[iv.cur] || iv.curLeft == 0 {
			iv.cur = (iv.cur + 1) % len(iv.gens)
			iv.curLeft = iv.chunk
			continue
		}
		want := len(dst) - n
		if want > iv.curLeft {
			want = iv.curLeft
		}
		m := NextBlock(iv.gens[iv.cur], dst[n:n+want])
		if m == 0 {
			iv.done[iv.cur] = true
			iv.alive--
			continue
		}
		for i := n; i < n+m; i++ {
			dst[i].Thread = uint8(iv.cur)
		}
		iv.curLeft -= m
		n += m
	}
	return n
}

// Close implements Closer.
func (iv *Interleave) Close() {
	for _, g := range iv.gens {
		CloseIfCloser(g)
	}
}

// --- goroutine-backed producer ---

const producerBatch = 4096

// FromFunc adapts a push-style workload (a function that calls emit for each
// access) into a pull-style Generator. The workload runs in its own
// goroutine; batches flow over a channel. Close cancels the producer.
func FromFunc(name string, run func(emit func(memsys.Access))) Generator {
	return &funcGen{name: name, run: run}
}

type funcGen struct {
	name    string
	run     func(emit func(memsys.Access))
	ch      chan []memsys.Access
	free    chan []memsys.Access // consumed batches recycled to the producer
	done    chan struct{}
	started bool
	buf     []memsys.Access
	pos     int
	eof     bool
}

func (f *funcGen) Name() string { return f.name }

// errProducerCancelled is the sentinel panic value used to unwind a
// workload whose consumer closed the generator early. Workloads are often
// infinite loops, so cancellation must forcibly unwind them.
type producerCancelled struct{}

func (f *funcGen) start() {
	f.ch = make(chan []memsys.Access, 4)
	f.free = make(chan []memsys.Access, 8)
	f.done = make(chan struct{})
	f.started = true
	go func() {
		defer close(f.ch)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(producerCancelled); !ok {
					panic(r)
				}
			}
		}()
		batch := make([]memsys.Access, 0, producerBatch)
		flush := func() {
			if len(batch) == 0 {
				return
			}
			out := batch
			// Reuse a batch the consumer has drained; batch buffers are
			// handed over whole, so a recycled one is never still in use.
			select {
			case b := <-f.free:
				batch = b[:0]
			default:
				batch = make([]memsys.Access, 0, producerBatch)
			}
			select {
			case f.ch <- out:
			case <-f.done:
				panic(producerCancelled{})
			}
		}
		emit := func(a memsys.Access) {
			batch = append(batch, a)
			if len(batch) == producerBatch {
				flush()
			}
		}
		f.run(emit)
		flush()
	}()
}

func (f *funcGen) Next() (memsys.Access, bool) {
	if f.eof {
		return memsys.Access{}, false
	}
	if !f.started {
		f.start()
	}
	for f.pos >= len(f.buf) {
		f.recycle()
		b, ok := <-f.ch
		if !ok {
			f.eof = true
			return memsys.Access{}, false
		}
		f.buf, f.pos = b, 0
	}
	a := f.buf[f.pos]
	f.pos++
	return a, true
}

// recycle hands the drained batch back to the producer's free list.
func (f *funcGen) recycle() {
	if f.buf == nil {
		return
	}
	select {
	case f.free <- f.buf:
	default:
	}
	f.buf = nil
}

// NextBlock implements BlockGenerator: it bulk-copies from the producer's
// current batch, returning a short block at batch boundaries instead of
// blocking on the channel for more.
func (f *funcGen) NextBlock(dst []memsys.Access) int {
	if f.eof {
		return 0
	}
	if !f.started {
		f.start()
	}
	for f.pos >= len(f.buf) {
		f.recycle()
		b, ok := <-f.ch
		if !ok {
			f.eof = true
			return 0
		}
		f.buf, f.pos = b, 0
	}
	n := copy(dst, f.buf[f.pos:])
	f.pos += n
	return n
}

// Close implements Closer: it cancels the producer goroutine.
func (f *funcGen) Close() {
	if !f.started || f.eof {
		return
	}
	close(f.done)
	// Drain until the producer closes the channel.
	for range f.ch {
	}
	f.eof = true
}

// --- synthetic generators ---

// Sequential streams through a region front to back, one line at a time,
// with the given write ratio (writeEvery = 0 means read-only; 4 means every
// 4th access is a write).
type Sequential struct {
	region     memsys.Region
	line       uint64
	lines      uint64
	writeEvery uint64
	n          uint64
	region16   uint16
}

// NewSequential builds a sequential streamer over region.
func NewSequential(region memsys.Region, writeEvery uint64, sig uint16) *Sequential {
	return &Sequential{region: region, lines: (region.Size + memsys.LineSize - 1) / memsys.LineSize, writeEvery: writeEvery, region16: sig}
}

// Name implements Generator.
func (s *Sequential) Name() string { return "sequential" }

// Next implements Generator.
func (s *Sequential) Next() (memsys.Access, bool) {
	if s.lines == 0 {
		return memsys.Access{}, false
	}
	a := memsys.Access{Addr: s.region.Base + memsys.Addr(s.line*memsys.LineSize), Type: memsys.Read, Region: s.region16}
	s.n++
	if s.writeEvery != 0 && s.n%s.writeEvery == 0 {
		a.Type = memsys.Write
	}
	s.line = (s.line + 1) % s.lines
	return a, true
}

// NextBlock implements BlockGenerator.
func (s *Sequential) NextBlock(dst []memsys.Access) int {
	if s.lines == 0 {
		return 0
	}
	for i := range dst {
		a := memsys.Access{Addr: s.region.Base + memsys.Addr(s.line*memsys.LineSize), Type: memsys.Read, Region: s.region16}
		s.n++
		if s.writeEvery != 0 && s.n%s.writeEvery == 0 {
			a.Type = memsys.Write
		}
		s.line = (s.line + 1) % s.lines
		dst[i] = a
	}
	return len(dst)
}

// Uniform emits uniformly random lines within a region, endless.
type Uniform struct {
	region   memsys.Region
	lines    uint64
	rng      *rl.Rand
	writePct int
	sig      uint16
}

// NewUniform builds the random generator; writePct in [0,100].
func NewUniform(region memsys.Region, writePct int, seed uint64, sig uint16) *Uniform {
	return &Uniform{region: region, lines: region.Size / memsys.LineSize, rng: rl.NewRand(seed), writePct: writePct, sig: sig}
}

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Next implements Generator.
func (u *Uniform) Next() (memsys.Access, bool) {
	line := u.rng.Uint64() % u.lines
	a := memsys.Access{Addr: u.region.Base + memsys.Addr(line*memsys.LineSize), Type: memsys.Read, Region: u.sig}
	if u.rng.Intn(100) < u.writePct {
		a.Type = memsys.Write
	}
	return a, true
}

// NextBlock implements BlockGenerator.
func (u *Uniform) NextBlock(dst []memsys.Access) int {
	for i := range dst {
		line := u.rng.Uint64() % u.lines
		a := memsys.Access{Addr: u.region.Base + memsys.Addr(line*memsys.LineSize), Type: memsys.Read, Region: u.sig}
		if u.rng.Intn(100) < u.writePct {
			a.Type = memsys.Write
		}
		dst[i] = a
	}
	return len(dst)
}

// Zipf emits lines with a Zipfian popularity distribution (exponent theta),
// the canonical model for skewed, cache-friendly-but-heavy-tailed access.
type Zipf struct {
	region memsys.Region
	cum    []float64
	perm   []uint32
	rng    *rl.Rand
	sig    uint16
}

// NewZipf builds a Zipf generator over the first n lines of region. Ranks
// are permuted across the region so popularity is not address-correlated.
func NewZipf(region memsys.Region, n int, theta float64, seed uint64, sig uint16) *Zipf {
	if n < 1 {
		n = 1
	}
	maxLines := int(region.Size / memsys.LineSize)
	if n > maxLines {
		n = maxLines
	}
	z := &Zipf{region: region, rng: rl.NewRand(seed), sig: sig}
	z.cum = make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), theta)
		z.cum[i] = sum
	}
	for i := range z.cum {
		z.cum[i] /= sum
	}
	z.perm = make([]uint32, n)
	for i := range z.perm {
		z.perm[i] = uint32(i)
	}
	prng := rl.NewRand(seed ^ 0xabcdef)
	for i := n - 1; i > 0; i-- {
		j := prng.Intn(i + 1)
		z.perm[i], z.perm[j] = z.perm[j], z.perm[i]
	}
	return z
}

// Name implements Generator.
func (z *Zipf) Name() string { return "zipf" }

// Next implements Generator.
func (z *Zipf) Next() (memsys.Access, bool) {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cum, u)
	if i >= len(z.perm) {
		i = len(z.perm) - 1
	}
	line := uint64(z.perm[i])
	return memsys.Access{Addr: z.region.Base + memsys.Addr(line*memsys.LineSize), Type: memsys.Read, Region: z.sig}, true
}

// NextBlock implements BlockGenerator.
func (z *Zipf) NextBlock(dst []memsys.Access) int {
	for i := range dst {
		dst[i], _ = z.Next()
	}
	return len(dst)
}

// PointerChase emits a dependent chain of loads following a random
// permutation cycle through the region — the archetypal irregular pattern
// (mcf-style).
type PointerChase struct {
	region memsys.Region
	next   []uint32
	cur    uint32
	sig    uint16
}

// NewPointerChase builds a single-cycle random permutation over n lines.
func NewPointerChase(region memsys.Region, n int, seed uint64, sig uint16) *PointerChase {
	if n < 2 {
		n = 2
	}
	maxLines := int(region.Size / memsys.LineSize)
	if n > maxLines {
		n = maxLines
	}
	// Sattolo's algorithm: a uniform single-cycle permutation.
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	rng := rl.NewRand(seed)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	return &PointerChase{region: region, next: p, sig: sig}
}

// Name implements Generator.
func (p *PointerChase) Name() string { return "pointer-chase" }

// Next implements Generator.
func (p *PointerChase) Next() (memsys.Access, bool) {
	a := memsys.Access{Addr: p.region.Base + memsys.Addr(uint64(p.cur)*memsys.LineSize), Type: memsys.Read, Region: p.sig}
	p.cur = p.next[p.cur]
	return a, true
}

// NextBlock implements BlockGenerator.
func (p *PointerChase) NextBlock(dst []memsys.Access) int {
	cur := p.cur
	for i := range dst {
		dst[i] = memsys.Access{Addr: p.region.Base + memsys.Addr(uint64(cur)*memsys.LineSize), Type: memsys.Read, Region: p.sig}
		cur = p.next[cur]
	}
	p.cur = cur
	return len(dst)
}
